// Command tseattack replays an adversarial pcap against a simulated
// OVS-style switch and reports the damage: megaflow masks/entries spawned,
// per-path packet counts, and the modelled victim throughput before and
// after, per NIC configuration.
//
// Usage:
//
//	tsegen -use SipDp -out atk.pcap
//	tseattack -use SipDp -pcap atk.pcap
//	tseattack -use SipDp -pcap atk.pcap -serve :8080   # live /metrics,
//	        # /debug/vars and pprof during and after the replay; the
//	        # process blocks after printing so the endpoints stay up
package main

import (
	"flag"
	"fmt"
	"os"

	"tse/internal/bitvec"
	"tse/internal/dataplane"
	"tse/internal/flowtable"
	"tse/internal/packet"
	"tse/internal/pcap"
	"tse/internal/telemetry"
	"tse/internal/vswitch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tseattack:", err)
		os.Exit(1)
	}
}

func run() error {
	use := flag.String("use", "SipSpDp", "victim ACL use case: Dp, SpDp, SipDp, SipSpDp")
	pcapPath := flag.String("pcap", "", "adversarial pcap to replay (required)")
	verify := flag.Bool("verify-checksums", true, "reject frames with bad checksums")
	serve := flag.String("serve", "",
		"serve live telemetry (/metrics, /debug/vars, /debug/pprof/) on this address during the replay, then block")
	flag.Parse()
	if *pcapPath == "" {
		return fmt.Errorf("-pcap is required (generate one with tsegen)")
	}

	u, err := flowtable.ParseUseCase(*use)
	if err != nil {
		return err
	}
	tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		return err
	}

	// -serve exposes the switch's packet-path and megaflow-cache counters
	// live while the pcap replays (and afterwards, for inspection).
	var hub *telemetry.Hub
	if *serve != "" {
		hub = telemetry.NewHub()
		sw.AttachMetrics(hub.Reg)
		_, addr, err := telemetry.Serve(*serve, hub)
		if err != nil {
			return err
		}
		fmt.Printf("telemetry: http://%s/  (/metrics /debug/vars /debug/pprof/)\n", addr)
	}

	// Prime the victim flow (a web client hitting the allowed port).
	l := bitvec.IPv4Tuple
	victim := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	sip, _ := l.FieldIndex("ip_src")
	victim.SetField(l, dp, 80)
	victim.SetField(l, sip, 0x08080808)
	sw.Process(victim, 0)
	_, probesBefore, _ := sw.MFC().Lookup(victim, 0)

	f, err := os.Open(*pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	replayed, parseErrs := 0, 0
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		p, err := packet.Parse(rec.Data, packet.ParseOptions{VerifyChecksums: *verify})
		if err != nil {
			parseErrs++
			continue
		}
		key, err := p.FlowKey4()
		if err != nil {
			parseErrs++
			continue
		}
		sw.Process(key, int64(rec.TsSec))
		replayed++
	}

	masks, entries := sw.MFC().MaskCount(), sw.MFC().EntryCount()
	_, probesAfter, _ := sw.MFC().Lookup(victim, 0)
	c := sw.Counters()

	fmt.Printf("replayed %d packets (%d parse errors) against the %s ACL\n", replayed, parseErrs, u)
	fmt.Printf("MFC: %d masks, %d entries\n", masks, entries)
	fmt.Printf("paths: slow=%d megaflow=%d microflow=%d  verdicts: allow=%d deny=%d\n",
		c.Slow, c.Megaflow, c.Microflow, c.Allowed, c.Dropped)
	fmt.Printf("victim lookup probes: %d -> %d\n", probesBefore, probesAfter)
	fmt.Printf("modelled victim throughput (per NIC configuration):\n")
	for _, p := range dataplane.Profiles {
		m := dataplane.NewModel(p)
		before := m.ThroughputForMasks(1)
		after := m.ThroughputGbps(float64(probesAfter))
		fmt.Printf("  %-12s %6.2f -> %6.2f Gbps (%.1f%% of baseline)\n",
			p.Name, before, after, m.BaselinePct(after))
	}
	if hub != nil {
		fmt.Println("telemetry: replay complete, endpoints still live — ctrl-C to exit")
		select {}
	}
	return nil
}
