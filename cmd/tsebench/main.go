// Command tsebench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	tsebench -list           # show available experiment IDs
//	tsebench -fig fig9a      # regenerate one table/figure
//	tsebench -fig chaos      # fault-injection run: unsupervised wedge vs
//	                         # supervised self-healing under the flood
//	tsebench -fig fleetchaos # 4-node fleet: blast-radius containment under
//	                         # node death, controller partition, push errors
//	tsebench -fig all        # regenerate everything (takes ~1 min)
//	tsebench -workers 6      # PMD datapath scaling table for 1 vs 6 cores
//	tsebench -json BENCH.json  # write the perf suite as JSON (schema
//	                         # tse-bench/v7: hot-path benches + scenario
//	                         # rows incl. handler_restarts, breaker_trips,
//	                         # recovery_sec and the FleetChaos-* fleet rows
//	                         # with blast_radius_frac / failover_sec /
//	                         # acl_convergence_sec)
//	tsebench -compare OLD.json NEW.json  # CI regression gate over two
//	                         # committed BENCH files (>2x slowdown of the
//	                         # mask-scan/victim-lookup families fails)
//	tsebench -compare BENCH_pr2.json ... BENCH_pr9.json  # >2 files:
//	                         # trajectory mode, per-family sparkline across
//	                         # the whole committed series (informational)
//	tsebench -replay mix.trace  # replay a tsegen -emit-trace file through
//	                         # the datapath at wire rate; prints achieved Mpps
//	tsebench -serve :8080 -fig all  # live telemetry while the figures run:
//	                         # /metrics /journal /debug/vars /debug/pprof/
//	tsebench -trace out.json -fig portfairness  # export sampled flow-setup
//	                         # spans as chrome://tracing JSON
//
// Each experiment prints the same rows/series the paper reports plus the
// paper's published anchor values for comparison; EXPERIMENTS.md records
// the paper-vs-measured comparison produced by `tsebench -fig all`.
package main

import (
	"flag"
	"fmt"
	"os"

	"tse/internal/experiments"
	"tse/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	fig := flag.String("fig", "all", "experiment ID to run, or 'all'")
	workers := flag.Int("workers", 0,
		"run the multicore datapath scaling table comparing 1 worker against N")
	jsonPath := flag.String("json", "",
		"measure the hot-path benchmark suite and write machine-readable results to this path")
	compare := flag.Bool("compare", false,
		"compare BENCH json files: two = regression gate (exit non-zero on hot-path regressions), three or more = perf trajectory with sparklines")
	serve := flag.String("serve", "",
		"serve live telemetry (/metrics, /journal, /debug/vars, /debug/pprof/) on this address while running, then block")
	trace := flag.String("trace", "",
		"export sampled flow-setup spans from the run as chrome://tracing JSON to this path")
	replay := flag.String("replay", "",
		"replay a binary flow trace (tsegen -emit-trace) through the datapath at wire rate and report achieved Mpps")
	prefetch := flag.Int("prefetch", 0,
		"with -replay: cache lines of prefetch per burst (0 disables the prefetch pass)")
	flag.Parse()

	if *compare {
		switch {
		case flag.NArg() == 2:
			if err := experiments.CompareBenchFiles(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
				fmt.Fprintln(os.Stderr, "tsebench:", err)
				os.Exit(1)
			}
		case flag.NArg() > 2:
			if err := experiments.CompareBenchTrajectory(os.Stdout, flag.Args()); err != nil {
				fmt.Fprintln(os.Stderr, "tsebench:", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintln(os.Stderr, "tsebench: -compare needs two files (gate) or more (trajectory)")
			os.Exit(2)
		}
		return
	}

	if *jsonPath != "" {
		if err := experiments.WriteBenchJSON(os.Stdout, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "tsebench:", err)
			os.Exit(1)
		}
		return
	}

	if *replay != "" {
		if err := experiments.RunTraceReplay(os.Stdout, *replay, *workers, *prefetch); err != nil {
			fmt.Fprintln(os.Stderr, "tsebench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	// -serve / -trace install a process-wide hub the experiment runs thread
	// through their scenarios. Spans are opt-in (they allocate per sample),
	// so the tracer only exists when -trace asks for it.
	hub := (*telemetry.Hub)(nil)
	if *serve != "" || *trace != "" {
		hub = telemetry.NewHub()
		if *trace != "" {
			hub.Tracer = telemetry.NewTracer(16, 0)
		}
		experiments.SetTelemetry(hub)
	}
	if *serve != "" {
		_, addr, err := telemetry.Serve(*serve, hub)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsebench:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: http://%s/  (/metrics /journal /debug/vars /debug/pprof/)\n", addr)
	}
	writeTrace := func() {
		if *trace == "" {
			return
		}
		spans := hub.Tracer.Spans()
		if err := telemetry.WriteChromeTraceFile(*trace, spans); err != nil {
			fmt.Fprintln(os.Stderr, "tsebench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d flow-setup spans (of %d admissions seen) to %s — open in chrome://tracing or ui.perfetto.dev\n",
			len(spans), hub.Tracer.Seen(), *trace)
	}
	// After the figures finish, -serve keeps the endpoints up for
	// inspection until interrupted.
	block := func() {
		if *serve == "" {
			return
		}
		fmt.Println("telemetry: run complete, endpoints still live — ctrl-C to exit")
		select {}
	}

	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "tsebench: -workers must be >= 1")
		os.Exit(2)
	}
	if *workers > 0 {
		counts := []int{1}
		if *workers > 1 {
			counts = append(counts, *workers)
		}
		if err := experiments.RunMulticore(os.Stdout, counts); err != nil {
			fmt.Fprintln(os.Stderr, "tsebench:", err)
			os.Exit(1)
		}
		writeTrace()
		block()
		return
	}
	if *fig == "all" {
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tsebench:", err)
			os.Exit(1)
		}
		writeTrace()
		block()
		return
	}
	e, ok := experiments.ByID(*fig)
	if !ok {
		fmt.Fprintf(os.Stderr, "tsebench: unknown experiment %q; try -list\n", *fig)
		os.Exit(2)
	}
	if err := e.Run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsebench:", err)
		os.Exit(1)
	}
	writeTrace()
	block()
}
