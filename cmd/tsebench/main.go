// Command tsebench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	tsebench -list           # show available experiment IDs
//	tsebench -fig fig9a      # regenerate one table/figure
//	tsebench -fig chaos      # fault-injection run: unsupervised wedge vs
//	                         # supervised self-healing under the flood
//	tsebench -fig all        # regenerate everything (takes ~1 min)
//	tsebench -workers 6      # PMD datapath scaling table for 1 vs 6 cores
//	tsebench -json BENCH.json  # write the perf suite as JSON (schema
//	                         # tse-bench/v5: hot-path benches + scenario
//	                         # rows incl. handler_restarts, breaker_trips,
//	                         # recovery_sec)
//	tsebench -compare OLD.json NEW.json  # CI regression gate over two
//	                         # committed BENCH files (>2x slowdown of the
//	                         # mask-scan/victim-lookup families fails)
//
// Each experiment prints the same rows/series the paper reports plus the
// paper's published anchor values for comparison; EXPERIMENTS.md records
// the paper-vs-measured comparison produced by `tsebench -fig all`.
package main

import (
	"flag"
	"fmt"
	"os"

	"tse/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	fig := flag.String("fig", "all", "experiment ID to run, or 'all'")
	workers := flag.Int("workers", 0,
		"run the multicore datapath scaling table comparing 1 worker against N")
	jsonPath := flag.String("json", "",
		"measure the hot-path benchmark suite and write machine-readable results to this path")
	compare := flag.Bool("compare", false,
		"compare two BENCH json files (old new) and exit non-zero on hot-path regressions")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "tsebench: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		if err := experiments.CompareBenchFiles(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "tsebench:", err)
			os.Exit(1)
		}
		return
	}

	if *jsonPath != "" {
		if err := experiments.WriteBenchJSON(os.Stdout, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "tsebench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "tsebench: -workers must be >= 1")
		os.Exit(2)
	}
	if *workers > 0 {
		counts := []int{1}
		if *workers > 1 {
			counts = append(counts, *workers)
		}
		if err := experiments.RunMulticore(os.Stdout, counts); err != nil {
			fmt.Fprintln(os.Stderr, "tsebench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "all" {
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tsebench:", err)
			os.Exit(1)
		}
		return
	}
	e, ok := experiments.ByID(*fig)
	if !ok {
		fmt.Fprintf(os.Stderr, "tsebench: unknown experiment %q; try -list\n", *fig)
		os.Exit(2)
	}
	if err := e.Run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsebench:", err)
		os.Exit(1)
	}
}
