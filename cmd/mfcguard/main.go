// Command mfcguard demonstrates the §8 mitigation end to end: it mounts a
// co-located TSE attack against a chosen ACL, runs the MFCGuard monitor on
// its 10-second cadence, and prints the per-second timeline of masks,
// victim lookup cost, and projected slow-path CPU load.
//
// Megaflow lifecycle — idle expiry and the guard's monitor deletions —
// runs through one upcall.Revalidator, the same dump/expire machinery the
// asynchronous slow path uses, so there is a single lifecycle path rather
// than separate Tick and guard sweeps.
//
// Usage:
//
//	mfcguard -use SipDp -rate 1000 -duration 60 -mask-threshold 100
package main

import (
	"flag"
	"fmt"
	"os"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/mitigation"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mfcguard:", err)
		os.Exit(1)
	}
}

func run() error {
	use := flag.String("use", "SipDp", "ACL use case: Dp, SpDp, SipDp, SipSpDp")
	rate := flag.Int("rate", 1000, "attack rate in pps")
	duration := flag.Int("duration", 60, "simulated seconds")
	mth := flag.Int("mask-threshold", 100, "MFCGuard mask threshold m_th")
	cth := flag.Float64("cpu-threshold", 200, "MFCGuard CPU threshold c_th [%]")
	allDrops := flag.Bool("all-drops", false, "delete all drop entries (paper's evaluated variant)")
	flag.Parse()

	u, err := flowtable.ParseUseCase(*use)
	if err != nil {
		return err
	}
	tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		return err
	}
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{Switch: sw})
	if err != nil {
		return err
	}
	guard, err := mitigation.New(mitigation.Config{
		Switch: sw, Sweeper: rv,
		MaskThreshold: *mth, CPUThreshold: *cth, DeleteAllDrops: *allDrops})
	if err != nil {
		return err
	}
	trace, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 1})
	if err != nil {
		return err
	}

	l := bitvec.IPv4Tuple
	victim := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	victim.SetField(l, dp, 80)

	fmt.Printf("%4s %8s %8s %12s %10s %10s\n",
		"t[s]", "masks", "entries", "victimProbes", "deleted", "slowCPU[%]")
	cursor := 0
	for t := 0; t < *duration; t++ {
		now := int64(t)
		rv.Tick(now) // idle expiry via the revalidator's dump machinery
		// Attack traffic for this second.
		for k := 0; k < *rate; k++ {
			sw.Process(trace.Headers[cursor%trace.Len()], now)
			cursor++
		}
		sw.Process(victim, now)
		_, probes, _ := sw.MFC().Lookup(victim, now)
		// Once the guard has wiped the fast path, every denied attack
		// packet lands in the slow path: Fig. 9c's CPU cost.
		c := sw.Counters()
		slowShare := 0.0
		if t > 0 && c.Suppressed > 0 {
			slowShare = float64(*rate)
		}
		cpu := mitigation.SlowPathCPUPct(slowShare)
		deleted := guard.Tick(now, cpu)
		fmt.Printf("%4d %8d %8d %12d %10d %10.1f\n",
			t, sw.MFC().MaskCount(), sw.MFC().EntryCount(), probes, deleted, cpu)
	}
	st := guard.Stats()
	fmt.Printf("guard: %d sweeps, %d triggered, %d megaflows deleted, %d CPU aborts\n",
		st.Sweeps, st.Triggered, st.Deleted, st.CPUAborts)
	rs := rv.Stats()
	fmt.Printf("revalidator: %d sweeps, %d dumped, %d expired, %d suppressed\n",
		rs.Sweeps, rs.Dumped, rs.Expired, rs.Suppressed)
	return nil
}
