// Command tsegen generates an adversarial TSE packet trace as a pcap file.
//
// Usage:
//
//	tsegen -use SipSpDp -mode colocated -out attack.pcap
//	tsegen -use SipDp -mode general -n 50000 -seed 7 -out rand.pcap
//
// The co-located mode emits the §5.1 bit-inversion outer product for the
// chosen §5.2 use-case ACL; the general mode emits uniformly random
// headers over the fields the ACL shape targets (§6.1). Frames are UDP
// (offloads cannot shield UDP, §5.4) destined to -dst, with noise in
// non-classified fields when -noise is set.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"net"
	"os"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/packet"
	"tse/internal/pcap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tsegen:", err)
		os.Exit(1)
	}
}

func run() error {
	use := flag.String("use", "SipSpDp", "use case: Dp, SpDp, SipDp, SipSpDp")
	mode := flag.String("mode", "colocated", "attack mode: colocated or general")
	n := flag.Int("n", 10000, "packet count (general mode)")
	seed := flag.Int64("seed", 1, "random seed")
	rate := flag.Int("rate", 1000, "nominal packet rate in pps (pcap timestamps)")
	out := flag.String("out", "tse.pcap", "output pcap path")
	dst := flag.String("dst", "192.168.0.3", "destination (attacker VM) IPv4 address")
	noise := flag.Bool("noise", true, "randomise unclassified header bits (microflow noise)")
	skipAllow := flag.Bool("skip-allow", false, "co-located: skip allow-matching combos")
	flag.Parse()

	u, err := flowtable.ParseUseCase(*use)
	if err != nil {
		return err
	}
	tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
	dstIP := net.ParseIP(*dst).To4()
	if dstIP == nil {
		return fmt.Errorf("bad -dst %q", *dst)
	}

	var tr *core.Trace
	switch *mode {
	case "colocated":
		tr, err = core.CoLocated(tbl, core.CoLocatedOptions{
			SkipAllowCombos: *skipAllow, Noise: *noise, Seed: *seed})
	case "general":
		base := bitvec.NewVec(bitvec.IPv4Tuple)
		tr, err = core.General(bitvec.IPv4Tuple, base, *n,
			core.GeneralOptions{Noise: *noise, Seed: *seed})
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := pcap.NewWriter(f)

	l := tr.Layout
	dip, _ := l.FieldIndex("ip_dst")
	proto, _ := l.FieldIndex("ip_proto")
	usPerPkt := uint32(1e6 / *rate)
	for i, h := range tr.Headers {
		h.SetField(l, dip, uint64(binary.BigEndian.Uint32(dstIP)))
		h.SetField(l, proto, packet.ProtoUDP)
		frame, err := packet.Craft(l, h, packet.CraftOptions{
			Payload: []byte("TSE"), TTL: byte(64 + i%64)})
		if err != nil {
			return fmt.Errorf("packet %d: %w", i, err)
		}
		us := uint32(i) * usPerPkt
		if err := w.WriteRecord(pcap.Record{
			TsSec: us / 1e6, TsUsec: us % 1e6, Data: frame}); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d packets (%s %s against the %s ACL) to %s\n",
		tr.Len(), *mode, "TSE trace", u, *out)
	return nil
}
