// Command tsegen generates an adversarial TSE packet trace as a pcap
// file, or — with -emit-trace — as a compact binary flow trace for
// wire-rate replay through tsebench -replay.
//
// Usage:
//
//	tsegen -use SipSpDp -mode colocated -out attack.pcap
//	tsegen -use SipDp -mode general -n 50000 -seed 7 -out rand.pcap
//	tsegen -emit-trace mix.trace -seconds 10 -attack none
//	tsegen -emit-trace atk.trace -seconds 10 -attack tse -rate 20000
//	tsegen -emit-trace conv.trace -from-pcap capture.pcap
//
// The co-located mode emits the §5.1 bit-inversion outer product for the
// chosen §5.2 use-case ACL; the general mode emits uniformly random
// headers over the fields the ACL shape targets (§6.1). Frames are UDP
// (offloads cannot shield UDP, §5.4) destined to -dst, with noise in
// non-classified fields when -noise is set.
//
// Trace mode (-emit-trace) synthesises a multi-port victim mix at
// -victim-pps per victim for -seconds virtual seconds; -attack tse
// merges the co-located TSE flood for the -use ACL on in_port 0 at
// -rate pps. -from-pcap instead converts an existing pcap capture
// record-for-record.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"net"
	"os"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/packet"
	"tse/internal/pcap"
	"tse/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tsegen:", err)
		os.Exit(1)
	}
}

func run() error {
	use := flag.String("use", "SipSpDp", "use case: Dp, SpDp, SipDp, SipSpDp")
	mode := flag.String("mode", "colocated", "attack mode: colocated or general")
	n := flag.Int("n", 10000, "packet count (general mode)")
	seed := flag.Int64("seed", 1, "random seed")
	rate := flag.Int("rate", 1000, "nominal packet rate in pps (pcap timestamps)")
	out := flag.String("out", "tse.pcap", "output pcap path")
	dst := flag.String("dst", "192.168.0.3", "destination (attacker VM) IPv4 address")
	noise := flag.Bool("noise", true, "randomise unclassified header bits (microflow noise)")
	skipAllow := flag.Bool("skip-allow", false, "co-located: skip allow-matching combos")
	emitTrace := flag.String("emit-trace", "", "write a binary flow trace to this path instead of a pcap")
	seconds := flag.Int("seconds", 10, "trace mode: virtual seconds of traffic to synthesise")
	attack := flag.String("attack", "none", "trace mode: attack preset, none or tse")
	victims := flag.Int("victims", 64, "trace mode: number of victim flows")
	victimPps := flag.Int("victim-pps", 2000, "trace mode: packets per second per victim flow")
	ports := flag.Int("ports", 4, "trace mode: virtual ports (port 0 carries the attack)")
	fromPcap := flag.String("from-pcap", "", "trace mode: convert this pcap instead of synthesising")
	flag.Parse()

	u, err := flowtable.ParseUseCase(*use)
	if err != nil {
		return err
	}
	tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})

	if *emitTrace != "" {
		if *fromPcap != "" {
			return convertPcap(*fromPcap, *emitTrace)
		}
		opts := trace.SynthOptions{
			Seconds: *seconds, Victims: *victims, VictimPps: *victimPps, Ports: *ports}
		if *attack == "tse" {
			atk, err := core.CoLocated(tbl, core.CoLocatedOptions{
				SkipAllowCombos: *skipAllow, Noise: *noise, Seed: *seed})
			if err != nil {
				return err
			}
			opts.Attack, opts.AttackPps = atk, *rate
		} else if *attack != "none" {
			return fmt.Errorf("unknown -attack %q (want none or tse)", *attack)
		}
		return emitSynthTrace(*emitTrace, opts, u, *attack)
	}
	dstIP := net.ParseIP(*dst).To4()
	if dstIP == nil {
		return fmt.Errorf("bad -dst %q", *dst)
	}

	var tr *core.Trace
	switch *mode {
	case "colocated":
		tr, err = core.CoLocated(tbl, core.CoLocatedOptions{
			SkipAllowCombos: *skipAllow, Noise: *noise, Seed: *seed})
	case "general":
		base := bitvec.NewVec(bitvec.IPv4Tuple)
		tr, err = core.General(bitvec.IPv4Tuple, base, *n,
			core.GeneralOptions{Noise: *noise, Seed: *seed})
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := pcap.NewWriter(f)

	l := tr.Layout
	dip, _ := l.FieldIndex("ip_dst")
	proto, _ := l.FieldIndex("ip_proto")
	usPerPkt := uint32(1e6 / *rate)
	for i, h := range tr.Headers {
		h.SetField(l, dip, uint64(binary.BigEndian.Uint32(dstIP)))
		h.SetField(l, proto, packet.ProtoUDP)
		frame, err := packet.Craft(l, h, packet.CraftOptions{
			Payload: []byte("TSE"), TTL: byte(64 + i%64)})
		if err != nil {
			return fmt.Errorf("packet %d: %w", i, err)
		}
		us := uint32(i) * usPerPkt
		if err := w.WriteRecord(pcap.Record{
			TsSec: us / 1e6, TsUsec: us % 1e6, Data: frame}); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d packets (%s %s against the %s ACL) to %s\n",
		tr.Len(), *mode, "TSE trace", u, *out)
	return nil
}

// emitSynthTrace renders the synthetic workload to a binary flow trace.
func emitSynthTrace(path string, opts trace.SynthOptions, u flowtable.UseCase, attack string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, bitvec.IPv4Tuple)
	if err != nil {
		return err
	}
	if err := trace.Synthesize(w, opts); err != nil {
		return err
	}
	fmt.Printf("wrote %d trace records (%d virtual s, attack %s, %s ACL) to %s\n",
		w.Count(), opts.Seconds, attack, u, path)
	return nil
}

// convertPcap converts a pcap capture into a binary flow trace, all
// frames assigned to in_port 1 (port 0 is the attack port by
// convention).
func convertPcap(in, out string) error {
	pf, err := os.Open(in)
	if err != nil {
		return err
	}
	defer pf.Close()
	pr, err := pcap.NewReader(pf)
	if err != nil {
		return err
	}
	tf, err := os.Create(out)
	if err != nil {
		return err
	}
	defer tf.Close()
	w, err := trace.NewWriter(tf, bitvec.IPv4Tuple)
	if err != nil {
		return err
	}
	converted, skipped, err := trace.FromPcap(pr, w, 1)
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("converted %d pcap frames (%d skipped) from %s to %s\n",
		converted, skipped, in, out)
	return nil
}
