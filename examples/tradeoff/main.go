// Space–time trade-off (Theorem 4.1): every TSS representation of a
// Whitelist+DefaultDeny ACL sits on a curve between one-mask/exponential-
// entries (Fig. 2) and w-masks/w-entries (Fig. 3). This example sweeps k,
// builds the k-mask construction, verifies it against the bound, and
// measures real lookup latencies — showing why OVS's space-saving choice
// (k ≈ w) is exactly what makes the TSE attack possible.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"time"

	"tse/internal/analysis"
	"tse/internal/bitvec"
	"tse/internal/tss"
)

func main() {
	const w = 16
	l := bitvec.MustLayout(bitvec.Field{Name: "F", Width: w})
	const allow = 0xBEEF

	fmt.Printf("ACL: allow one %d-bit value, deny the rest (Thm 4.1, w=%d)\n\n", w, w)
	fmt.Printf("%4s %8s %10s %12s %14s\n", "k", "masks", "entries", "bound", "lookup (deny)")
	for _, k := range []int{1, 2, 4, 8, 16} {
		entries, err := analysis.KMaskConstruction(l, 0, allow, k)
		if err != nil {
			log.Fatal(err)
		}
		c := tss.New(l, tss.Options{DisableOverlapCheck: true})
		for _, e := range entries {
			if err := c.Insert(e, 0); err != nil {
				log.Fatal(err)
			}
		}
		// Worst-case lookup: a denied value forcing a deep scan.
		h := bitvec.NewVec(l)
		h.SetField(l, 0, 0x0001)
		const iters = 200000
		start := time.Now()
		for i := 0; i < iters; i++ {
			c.Lookup(h, 0)
		}
		per := time.Since(start) / iters
		fmt.Printf("%4d %8d %10d %12.0f %14s\n",
			k, c.MaskCount(), c.EntryCount()-1, analysis.Theorem41Space(w, k), per)
	}
	fmt.Println("\nk=1 is Fig. 2 (fast, huge); k=w is Fig. 3 (small, slow under scan).")
	fmt.Println("OVS leans to k≈w to save memory — so an adversary who multiplies the")
	fmt.Println("number of *necessary* masks (Thm 4.2) multiplies every lookup's cost.")
}
