// General TSE (§6): the attacker knows nothing about the ACL and sends
// uniformly random headers. This example compares the analytically
// expected mask counts (Eq. 1–2, Fig. 9b) against a measured run of the
// actual switch, then shows the §6.2 capacity degradation.
//
//	go run ./examples/general
package main

import (
	"fmt"
	"log"

	"tse/internal/analysis"
	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/dataplane"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

func main() {
	counts := []int{100, 1000, 10000, 50000}
	uses := []flowtable.UseCase{flowtable.Dp, flowtable.SipDp, flowtable.SipSpDp}

	fmt.Println("Expected (E) vs measured (M) MFC masks for random attack packets (Fig. 9b):")
	fmt.Printf("%-8s", "packets")
	for _, u := range uses {
		fmt.Printf(" %9s %9s", u.String()+"(E)", u.String()+"(M)")
	}
	fmt.Println()

	type state struct {
		sw *vswitch.Switch
		tr *core.Trace
	}
	states := make([]state, len(uses))
	for i, u := range uses {
		acl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		sw, err := vswitch.New(vswitch.Config{Table: acl, DisableMicroflow: true})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := core.General(bitvec.IPv4Tuple, nil, counts[len(counts)-1],
			core.GeneralOptions{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		states[i] = state{sw, tr}
	}
	sent := 0
	for _, n := range counts {
		fmt.Printf("%-8d", n)
		for i, u := range uses {
			acl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
			e, err := analysis.ExpectedMasks(acl, n)
			if err != nil {
				log.Fatal(err)
			}
			for k := sent; k < n; k++ {
				states[i].sw.Process(states[i].tr.Headers[k], 0)
			}
			fmt.Printf(" %9.1f %9d", e, states[i].sw.MFC().MaskCount())
		}
		sent = n
		fmt.Println()
	}

	fmt.Println("\nCapacity left for the victim at the 50k-packet mask counts (GRO OFF):")
	model := dataplane.NewModel(dataplane.TCPGroOff)
	for i, u := range uses {
		masks := states[i].sw.MFC().MaskCount()
		g := model.ThroughputForMasks(masks)
		fmt.Printf("  %-8s %4d masks -> %5.2f Gbps (%.1f%% of baseline; paper: 52%%/12%%/1%%)\n",
			u, masks, g, model.BaselinePct(g))
	}
	fmt.Println("\nNo crafted sequence, no signature — just random headers (§1: hard to detect).")
}
