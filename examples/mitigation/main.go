// MFCGuard (§8): a SipDp attack fills the megaflow cache; the guard's
// 10-second sweep deletes the adversarial drop entries and the victim's
// classification cost returns to near baseline, at the price of the
// attack traffic permanently occupying the slow path (Fig. 9c).
//
//	go run ./examples/mitigation
package main

import (
	"fmt"
	"log"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/dataplane"
	"tse/internal/flowtable"
	"tse/internal/mitigation"
	"tse/internal/vswitch"
)

func main() {
	acl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: acl, DisableMicroflow: true})
	if err != nil {
		log.Fatal(err)
	}
	guard, err := mitigation.New(mitigation.Config{
		Switch: sw, MaskThreshold: 100, CPUThreshold: 200})
	if err != nil {
		log.Fatal(err)
	}

	l := bitvec.IPv4Tuple
	victim := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	victim.SetField(l, dp, 80)
	sw.Process(victim, 0)

	trace, err := core.CoLocated(acl, core.CoLocatedOptions{Noise: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	const attackPps = 200
	model := dataplane.NewModel(dataplane.TCPGroOff)

	fmt.Printf("%4s %8s %12s %14s %12s\n", "t[s]", "masks", "victimProbes", "victim[Gbps]", "guard")
	cursor := 0
	for t := 0; t < 40; t++ {
		now := int64(t)
		sw.Tick(now)
		for k := 0; k < attackPps; k++ {
			sw.Process(trace.Headers[cursor%trace.Len()], now)
			cursor++
		}
		sw.Process(victim, now)
		_, probes, _ := sw.MFC().Lookup(victim, now)
		deleted := guard.Tick(now, mitigation.SlowPathCPUPct(attackPps))
		note := ""
		if deleted > 0 {
			note = fmt.Sprintf("swept %d", deleted)
		}
		if t%2 == 0 || deleted > 0 {
			fmt.Printf("%4d %8d %12d %14.2f %12s\n",
				t, sw.MFC().MaskCount(), probes, model.ThroughputGbps(float64(probes)), note)
		}
	}
	st := guard.Stats()
	fmt.Printf("\nguard: %d sweeps, %d megaflows deleted; attack now lives in the slow path\n",
		st.Sweeps, st.Deleted)
	fmt.Printf("slow-path CPU at this attack rate (Fig. 9c): %.1f%%\n",
		mitigation.SlowPathCPUPct(attackPps))
	fmt.Println("paper: sub-1000 pps attacks cost ~15% CPU; ~10k pps ≈ 80%; beyond that the")
	fmt.Println("attack is volumetric and classic defenses apply.")
}
