// Cloud simulation (Fig. 7, §5.5–§5.6): a multi-tenant hypervisor whose
// tenants configure ACLs through a CMS API. The attacker leases a
// workload, installs the most damaging ACL the CMS permits, and attacks
// *its own* service — degrading the co-located victim through the shared
// megaflow cache. Also demonstrates the §7 CMS field restrictions.
//
//	go run ./examples/cloudsim
package main

import (
	"fmt"
	"log"

	"tse/internal/bitvec"
	"tse/internal/cloud"
	"tse/internal/dataplane"
	"tse/internal/flowtable"
)

func main() {
	for _, cms := range []cloud.CMS{cloud.OpenStack, cloud.Calico} {
		fmt.Printf("=== %s cloud (ingress filters: %v, max masks %d) ===\n",
			cms.Name, cms.IngressFields, cms.MaxMasks(false))
		hv, err := cloud.NewHypervisor(cms)
		if err != nil {
			log.Fatal(err)
		}

		victim := &cloud.Tenant{Name: "victim", IP: 0xc0a80002,
			ACL: flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})}
		if err := hv.AddTenant(victim); err != nil {
			log.Fatal(err)
		}

		// The attacker asks for the nastiest ACL the CMS accepts.
		attACL := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
		attacker := &cloud.Tenant{Name: "attacker", IP: 0xc0a80003, ACL: attACL}
		if err := hv.AddTenant(attacker); err != nil {
			fmt.Printf("  CMS rejected SipSpDp ACL (%v); falling back to SipDp\n", err)
			attacker.ACL = flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
			if err := hv.AddTenant(attacker); err != nil {
				log.Fatal(err)
			}
		} else {
			fmt.Println("  CMS accepted the full SipSpDp ACL (source-port filtering allowed)")
		}

		// Victim's benign flow.
		l := bitvec.IPv4Tuple
		vh := header(l, 0x08080808, victim.IP, 40000, 80)
		sw := hv.Switch()
		sw.Process(vh, 0)

		// Attacker floods its own service with bit-inverted headers.
		sip, _ := l.FieldIndex("ip_src")
		sp, _ := l.FieldIndex("tp_src")
		dpF, _ := l.FieldIndex("tp_dst")
		base := header(l, 0x0a000001, attacker.IP, 12345, 80)
		packets := 0
		for b := 0; b <= 32; b++ {
			for s := 0; s <= 16; s++ {
				for d := 0; d <= 16; d++ {
					pkt := base.Clone()
					if b > 0 {
						pkt.FlipFieldBit(l, sip, b-1)
					}
					if s > 0 {
						pkt.FlipFieldBit(l, sp, s-1)
					}
					if d > 0 {
						pkt.FlipFieldBit(l, dpF, d-1)
					}
					sw.Process(pkt, 0)
					packets++
				}
			}
		}

		_, probes, _ := sw.MFC().Lookup(vh, 0)
		model := dataplane.NewModel(dataplane.TCPGroOff)
		g := model.ThroughputGbps(float64(probes))
		fmt.Printf("  attack: %d packets -> shared MFC holds %d masks / %d entries\n",
			packets, sw.MFC().MaskCount(), sw.MFC().EntryCount())
		fmt.Printf("  victim collateral damage: %d probes/packet, %.2f Gbps (%.1f%% of baseline)\n\n",
			probes, g, model.BaselinePct(g))
	}
}

func header(l *bitvec.Layout, src, dst uint32, sp, dp uint64) bitvec.Vec {
	h := bitvec.NewVec(l)
	set := func(name string, v uint64) {
		i, _ := l.FieldIndex(name)
		h.SetField(l, i, v)
	}
	set("ip_src", uint64(src))
	set("ip_dst", uint64(dst))
	set("ip_proto", 6)
	set("tp_src", sp)
	set("tp_dst", dp)
	return h
}
