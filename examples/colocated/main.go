// Co-located TSE (§5): the attacker knows the ACL (she installed it for
// her own leased cloud workload) and sends the minimal bit-inversion
// trace. This example mounts the full-blown SipSpDp attack of Fig. 6,
// reports the tuple-space explosion, and prices the collateral damage to
// the victim with the Fig. 9a cost model.
//
//	go run ./examples/colocated
package main

import (
	"fmt"
	"log"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/dataplane"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

func main() {
	for _, use := range []flowtable.UseCase{
		flowtable.Dp, flowtable.SpDp, flowtable.SipDp, flowtable.SipSpDp,
	} {
		acl := flowtable.UseCaseACL(use, flowtable.ACLParams{})
		sw, err := vswitch.New(vswitch.Config{Table: acl, DisableMicroflow: true})
		if err != nil {
			log.Fatal(err)
		}

		// The victim's long-lived web flow, primed first.
		l := bitvec.IPv4Tuple
		victim := bitvec.NewVec(l)
		dp, _ := l.FieldIndex("tp_dst")
		sip, _ := l.FieldIndex("ip_src")
		victim.SetField(l, dp, 80)
		victim.SetField(l, sip, 0x08080808)
		sw.Process(victim, 0)

		// §5.1: bit-inversion lists per targeted field, outer product
		// across fields, plus microflow-churning noise.
		trace, err := core.CoLocated(acl, core.CoLocatedOptions{Noise: true, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		st := core.Replay(sw, trace, 0)

		_, probes, ok := sw.MFC().Lookup(victim, 0)
		if !ok {
			log.Fatal("victim entry lost")
		}
		model := dataplane.NewModel(dataplane.TCPGroOff)
		before := model.ThroughputForMasks(1)
		after := model.ThroughputGbps(float64(probes))
		fmt.Printf("%-8s: %5d attack packets -> %5d masks, %5d entries; victim: %d probes, %5.2f -> %5.2f Gbps (%.1f%%)\n",
			use, st.Packets, st.MasksAfter, st.EntriesAfter, probes,
			before, after, model.BaselinePct(after))
	}
	fmt.Println("\npaper (§5.2/§5.4): ~17/~256/~512/~8200 masks; >8000 masks is a")
	fmt.Println("virtually complete DoS at ~1000 packets ≈ 0.67 Mbps of attack traffic.")
}
