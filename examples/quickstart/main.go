// Quickstart: build an OVS-style software switch with a
// Whitelist+DefaultDeny ACL, classify a few packets, and watch the
// megaflow cache (the TSS classifier the paper attacks) fill up.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

func main() {
	// The ACL of the paper's Fig. 6: allow web traffic (dst port 80),
	// allow a trusted source (10.0.0.1), allow a trusted source port
	// (12345), deny everything else.
	acl := flowtable.Fig6()
	fmt.Println("Tenant ACL (Fig. 6):")
	fmt.Println(acl)

	sw, err := vswitch.New(vswitch.Config{Table: acl})
	if err != nil {
		log.Fatal(err)
	}

	l := bitvec.IPv4Tuple
	mk := func(srcIP uint64, srcPort, dstPort uint64) bitvec.Vec {
		h := bitvec.NewVec(l)
		set := func(name string, v uint64) {
			i, _ := l.FieldIndex(name)
			h.SetField(l, i, v)
		}
		set("ip_src", srcIP)
		set("ip_dst", 0xc0a80002) // 192.168.0.2, the protected service
		set("ip_proto", 6)
		set("tp_src", srcPort)
		set("tp_dst", dstPort)
		return h
	}

	packets := []struct {
		desc string
		h    bitvec.Vec
	}{
		{"web request to port 80", mk(0x08080808, 40000, 80)},
		{"same flow, second packet", mk(0x08080808, 40000, 80)},
		{"trusted source 10.0.0.1 to port 443", mk(0x0a000001, 34521, 443)},
		{"stranger to port 443", mk(0x08080404, 34521, 443)},
		{"stranger to port 22", mk(0x08080404, 50000, 22)},
	}
	fmt.Println("\nClassifying packets through the cache hierarchy:")
	for i, p := range packets {
		v := sw.Process(p.h, int64(i))
		fmt.Printf("  %-38s -> %-7s (path=%s, mask probes=%d, rule=%s)\n",
			p.desc, v.Action, v.Path, v.Probes, v.Rule)
	}

	fmt.Printf("\nMegaflow cache after 5 packets: %d masks, %d entries\n",
		sw.MFC().MaskCount(), sw.MFC().EntryCount())
	for _, e := range sw.MFC().Entries() {
		fmt.Printf("  %s\n", e.Format(l))
	}
	fmt.Println("\nEvery distinct mask above is one probe in *every* future lookup —")
	fmt.Println("the linear scan the Tuple Space Explosion attack inflates.")
	fmt.Println("Run examples/colocated to see the attack do exactly that.")
}
