// Multicore: what scaling out the datapath buys — and does not buy —
// against the Tuple Space Explosion attack.
//
// The same SipDp co-located attack (§5) runs against a PMD-style datapath
// with 1, 4, and 8 workers (internal/datapath): packets shard to workers
// by RSS hash, every worker has its own CPU budget, and all workers share
// one megaflow cache. Extra cores absorb the attack's sharded slow-path
// CPU load, but the mask count the attack inflates is global state of the
// shared cache, so the linear scan tax on every victim lookup is the same
// at any core count: victim throughput recovers only up to the probe-cost
// plateau, far below the pre-attack baseline.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"
	"os"

	"tse/internal/ascii"
	"tse/internal/dataplane"
)

func main() {
	counts := []int{1, 4, 8}
	markers := []byte{'1', '4', '8'}
	var series []ascii.Series

	fmt.Println("SipDp co-located attack (2000 pps, t=30..90) vs datapath workers")
	fmt.Printf("%-8s %12s %14s %12s %12s\n",
		"workers", "pre-attack", "under-attack", "post-attack", "peak masks")
	for i, n := range counts {
		sc, err := dataplane.MulticoreScenario(n)
		if err != nil {
			log.Fatal(err)
		}
		samples, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		peakMasks := 0
		total := make([]float64, len(samples))
		for j, s := range samples {
			total[j] = s.TotalVictimGbps
			if s.Masks > peakMasks {
				peakMasks = s.Masks
			}
		}
		fmt.Printf("%-8d %11.2fG %13.2fG %11.2fG %12d\n",
			n, avg(samples, 10, 30), avg(samples, 60, 90), avg(samples, 105, 120), peakMasks)
		series = append(series, ascii.Series{
			Name:   fmt.Sprintf("%d worker(s)", n),
			Values: total,
			Marker: markers[i],
		})
	}

	chart := &ascii.Chart{
		Title:  "Victim SUM throughput vs time, by worker count",
		YLabel: "Gbps", XLabel: "t[s]",
		Series: series,
	}
	fmt.Println()
	if err := chart.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMore cores shard the attack's CPU load, but the megaflow cache — and")
	fmt.Println("the mask count the attack inflated — is shared: every lookup on every")
	fmt.Println("core still pays the linear scan, so recovery plateaus below baseline.")
}

// avg averages TotalVictimGbps over sample seconds [from, to).
func avg(samples []dataplane.Sample, from, to int) float64 {
	sum, n := 0.0, 0
	for _, s := range samples {
		if s.Sec >= from && s.Sec < to {
			sum += s.TotalVictimGbps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
