module tse

go 1.24
