package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLayoutErrors(t *testing.T) {
	cases := []struct {
		name   string
		fields []Field
	}{
		{"empty", nil},
		{"zero width", []Field{{Name: "a", Width: 0}}},
		{"negative width", []Field{{Name: "a", Width: -1}}},
		{"oversized", []Field{{Name: "a", Width: MaxFieldWidth + 1}}},
		{"dup name", []Field{{Name: "a", Width: 3}, {Name: "a", Width: 4}}},
		{"empty name", []Field{{Name: "", Width: 3}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewLayout(c.fields...); err == nil {
				t.Fatalf("NewLayout(%v) succeeded, want error", c.fields)
			}
		})
	}
}

func TestLayoutAccessors(t *testing.T) {
	l := HYP2
	if got := l.Bits(); got != 7 {
		t.Errorf("Bits() = %d, want 7", got)
	}
	if got := l.Words(); got != 1 {
		t.Errorf("Words() = %d, want 1", got)
	}
	if got := l.NumFields(); got != 2 {
		t.Errorf("NumFields() = %d, want 2", got)
	}
	if got := l.FieldOffset(1); got != 3 {
		t.Errorf("FieldOffset(1) = %d, want 3", got)
	}
	if i, ok := l.FieldIndex("HYP2"); !ok || i != 1 {
		t.Errorf("FieldIndex(HYP2) = %d,%v, want 1,true", i, ok)
	}
	if _, ok := l.FieldIndex("nope"); ok {
		t.Error("FieldIndex(nope) found a field")
	}
	if got := l.String(); got != "HYP:3,HYP2:4" {
		t.Errorf("String() = %q", got)
	}
	if got := IPv6Tuple.Bits(); got != 296 {
		t.Errorf("IPv6Tuple.Bits() = %d, want 296", got)
	}
	if got := IPv6Tuple.Words(); got != 5 {
		t.Errorf("IPv6Tuple.Words() = %d, want 5", got)
	}
}

func TestSetFieldRoundTrip(t *testing.T) {
	l := IPv4Tuple
	v := NewVec(l)
	vals := []uint64{0x0a000001, 0xc0a80101, 6, 34521, 443}
	for f, val := range vals {
		v.SetField(l, f, val)
	}
	for f, want := range vals {
		if got := v.FieldUint64(l, f); got != want {
			t.Errorf("field %d = %#x, want %#x", f, got, want)
		}
	}
	// Overwrite one field; neighbours must be untouched.
	v.SetField(l, 2, 17)
	if got := v.FieldUint64(l, 1); got != vals[1] {
		t.Errorf("neighbour field 1 corrupted: %#x", got)
	}
	if got := v.FieldUint64(l, 3); got != vals[3] {
		t.Errorf("neighbour field 3 corrupted: %#x", got)
	}
	if got := v.FieldUint64(l, 2); got != 17 {
		t.Errorf("field 2 = %d, want 17", got)
	}
}

func TestSetFieldTruncates(t *testing.T) {
	l := HYP
	v := NewVec(l)
	v.SetField(l, 0, 0xff) // only low 3 bits kept
	if got := v.FieldUint64(l, 0); got != 7 {
		t.Errorf("FieldUint64 = %d, want 7", got)
	}
}

func TestFieldBytesRoundTrip(t *testing.T) {
	l := IPv6Tuple
	v := NewVec(l)
	addr := make([]byte, 16)
	for i := range addr {
		addr[i] = byte(i*17 + 1)
	}
	v.SetFieldBytes(l, 0, addr)
	got := v.FieldBytes(l, 0)
	for i := range addr {
		if got[i] != addr[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], addr[i])
		}
	}
	// The next field must still be zero.
	if v.FieldBytes(l, 1)[0] != 0 || v.FieldUint64(l, 2) != 0 {
		t.Error("neighbouring fields corrupted")
	}
}

func TestMSBFirstBitOrder(t *testing.T) {
	l := HYP
	v := NewVec(l)
	v.SetField(l, 0, 0b100)
	if !v.FieldBit(l, 0, 0) {
		t.Error("bit 0 (MSB) should be set for value 100b")
	}
	if v.FieldBit(l, 0, 2) {
		t.Error("bit 2 (LSB) should be clear for value 100b")
	}
}

func TestPrefixMask(t *testing.T) {
	l := HYP2
	m := PrefixMask(l, 1, 2) // two MSBs of HYP2
	if got := m.Format(l); got != "000|1100" {
		t.Errorf("PrefixMask = %s, want 000|1100", got)
	}
	if got := m.OnesCount(); got != 2 {
		t.Errorf("OnesCount = %d, want 2", got)
	}
	if got := FieldMask(l, 0).Format(l); got != "111|0000" {
		t.Errorf("FieldMask = %s", got)
	}
	if got := FullMask(l).OnesCount(); got != 7 {
		t.Errorf("FullMask bits = %d, want 7", got)
	}
}

func TestPrefixMaskPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PrefixMask with bad length did not panic")
		}
	}()
	PrefixMask(HYP, 0, 4)
}

func TestCoversFig1(t *testing.T) {
	// Fig. 1 of the paper: flow "001/111" matches header 001 and nothing
	// else; "***" (zero mask) matches everything.
	l := HYP
	key, mask := MustPattern(l, "001")
	h := NewVec(l)
	for val := uint64(0); val < 8; val++ {
		h.SetField(l, 0, val)
		want := val == 1
		if got := Covers(key, mask, h); got != want {
			t.Errorf("Covers(001/111, %03b) = %v, want %v", val, got, want)
		}
		anyKey, anyMask := MustPattern(l, "***")
		if !Covers(anyKey, anyMask, h) {
			t.Errorf("wildcard rule must cover %03b", val)
		}
	}
}

func TestOverlapPaperExample(t *testing.T) {
	// §4.1: installing the Fig. 1 flow table as-is into the MFC is invalid
	// because 001/111 and ***/000 overlap (packet 001 matches both).
	l := HYP
	k1, m1 := MustPattern(l, "001")
	k2, m2 := MustPattern(l, "***")
	if !Overlap(k1, m1, k2, m2) {
		t.Error("001/111 and */000 must overlap")
	}
	// Fig. 3's constructed entries are pairwise disjoint.
	pats := []string{"001", "1**", "01*", "000"}
	for i := range pats {
		for j := range pats {
			if i == j {
				continue
			}
			ka, ma := MustPattern(l, pats[i])
			kb, mb := MustPattern(l, pats[j])
			if Overlap(ka, ma, kb, mb) {
				t.Errorf("Fig. 3 entries %s and %s overlap", pats[i], pats[j])
			}
		}
	}
}

func TestOverlapSymmetric(t *testing.T) {
	l := IPv4Tuple
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 200; n++ {
		k1, m1 := randomEntry(l, rng)
		k2, m2 := randomEntry(l, rng)
		if Overlap(k1, m1, k2, m2) != Overlap(k2, m2, k1, m1) {
			t.Fatal("Overlap is not symmetric")
		}
	}
}

// randomEntry builds a random valid key/mask pair (key ⊆ mask).
func randomEntry(l *Layout, rng *rand.Rand) (key, mask Vec) {
	key, mask = NewVec(l), NewVec(l)
	for b := 0; b < l.Bits(); b++ {
		if rng.Intn(2) == 1 {
			mask.SetBit(b)
			if rng.Intn(2) == 1 {
				key.SetBit(b)
			}
		}
	}
	return key, mask
}

func TestOverlapWitnessProperty(t *testing.T) {
	// Property: if two entries overlap, the canonical witness header
	// (k1 | k2, filling unconstrained bits with 0) matches both.
	l := IPv4Tuple
	rng := rand.New(rand.NewSource(42))
	overlapsSeen := 0
	for n := 0; n < 2000; n++ {
		k1, m1 := randomEntry(l, rng)
		k2, m2 := randomEntry(l, rng)
		if !Overlap(k1, m1, k2, m2) {
			continue
		}
		overlapsSeen++
		w := k1.Or(k2)
		if !Covers(k1, m1, w) || !Covers(k2, m2, w) {
			t.Fatalf("witness %s does not match both entries", w.Format(l))
		}
	}
	if overlapsSeen == 0 {
		t.Skip("no overlaps sampled; widen the generator")
	}
}

func TestSubsetOf(t *testing.T) {
	l := HYP2
	p2 := PrefixMask(l, 0, 2)
	p3 := PrefixMask(l, 0, 3)
	if !p2.SubsetOf(p3) {
		t.Error("2-bit prefix should be subset of 3-bit prefix")
	}
	if p3.SubsetOf(p2) {
		t.Error("3-bit prefix should not be subset of 2-bit prefix")
	}
	if !p2.SubsetOf(p2) {
		t.Error("mask should be subset of itself")
	}
}

func TestBitwiseOps(t *testing.T) {
	l := HYP2
	a := NewVec(l)
	b := NewVec(l)
	a.SetField(l, 0, 0b101)
	b.SetField(l, 0, 0b011)
	if got := a.And(b).FieldUint64(l, 0); got != 0b001 {
		t.Errorf("And = %03b", got)
	}
	if got := a.Or(b).FieldUint64(l, 0); got != 0b111 {
		t.Errorf("Or = %03b", got)
	}
	if got := a.AndNot(b).FieldUint64(l, 0); got != 0b100 {
		t.Errorf("AndNot = %03b", got)
	}
	dst := NewVec(l)
	a.AndInto(b, dst)
	if !dst.Equal(a.And(b)) {
		t.Error("AndInto disagrees with And")
	}
}

func TestCloneIndependence(t *testing.T) {
	l := HYP
	a := NewVec(l)
	a.SetField(l, 0, 5)
	c := a.Clone()
	c.SetField(l, 0, 2)
	if got := a.FieldUint64(l, 0); got != 5 {
		t.Errorf("Clone aliases original: %d", got)
	}
}

func TestKeyUniqueness(t *testing.T) {
	l := IPv4Tuple
	seen := make(map[string]uint64)
	v := NewVec(l)
	for i := uint64(0); i < 1000; i++ {
		v.SetField(l, 0, i)
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("values %d and %d share a Key", prev, i)
		}
		seen[k] = i
	}
}

func TestHashSpread(t *testing.T) {
	l := IPv4Tuple
	seen := make(map[uint64]bool)
	v := NewVec(l)
	for i := uint64(0); i < 1000; i++ {
		v.SetField(l, 4, i)
		seen[v.Hash()] = true
	}
	if len(seen) < 990 {
		t.Errorf("hash collisions too frequent: %d distinct of 1000", len(seen))
	}
}

func TestNonzeroWords(t *testing.T) {
	v := make(Vec, 4)
	if got := v.NonzeroWords(); len(got) != 0 {
		t.Errorf("NonzeroWords(zero) = %v, want empty", got)
	}
	v[1], v[3] = 5, 1
	got := v.NonzeroWords()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("NonzeroWords = %v, want [1 3]", got)
	}
}

func TestKeyHashPositionSensitive(t *testing.T) {
	a := Vec{0xdead, 0}
	b := Vec{0, 0xdead}
	if KeyHash(a) == KeyHash(b) {
		t.Error("KeyHash ignores word position")
	}
	// Zero words contribute nothing: padding with zero words preserves the
	// hash — the property HashMasked's word-skipping relies on.
	if KeyHash(a) != KeyHash(Vec{0xdead}) {
		t.Error("KeyHash of zero-padded vector differs")
	}
}

func TestMaskedPrimitivesAgainstMaterialised(t *testing.T) {
	l := IPv4Tuple
	rng := rand.New(rand.NewSource(99))
	for n := 0; n < 500; n++ {
		h, m := NewVec(l), NewVec(l)
		for i := range h {
			h[i] = rng.Uint64()
			// Bias masks sparse so the zero-word skip path is exercised.
			if rng.Intn(3) == 0 {
				m[i] = rng.Uint64()
			}
		}
		trim(l, h)
		trim(l, m)
		words := m.NonzeroWords()
		masked := h.And(m)
		if got, want := HashMasked(h, m, words), KeyHash(masked); got != want {
			t.Fatalf("HashMasked = %#x, KeyHash(h AND m) = %#x", got, want)
		}
		key := masked.Clone()
		if !EqualMasked(key, h, m, words) {
			t.Fatal("EqualMasked(h AND m, h, m) = false")
		}
		sp, ok := NewSparseMask(m)
		if !ok {
			t.Fatal("IPv4Tuple mask must fit a SparseMask inline")
		}
		if sp.Hash(h) != KeyHash(masked) {
			t.Fatal("SparseMask.Hash disagrees with KeyHash")
		}
		if !sp.EqualKey(key, h) {
			t.Fatal("SparseMask.EqualKey(h AND m, h) = false")
		}
		// Perturb one covered key bit: equality must now fail everywhere.
		if len(words) > 0 {
			w := words[0]
			key[w] ^= m[w] & -m[w] // flip the mask's lowest covered bit
			if EqualMasked(key, h, m, words) || sp.EqualKey(key, h) {
				t.Fatal("masked equality ignored a covered-bit difference")
			}
		}
	}
}

func TestSparseMaskFallback(t *testing.T) {
	// A mask with more nonzero words than the inline capacity must refuse.
	wide := make(Vec, SparseMaskInline+2)
	for i := range wide {
		wide[i] = 1
	}
	if _, ok := NewSparseMask(wide); ok {
		t.Errorf("mask with %d nonzero words fit inline (cap %d)", len(wide), SparseMaskInline)
	}
	if sp, ok := NewSparseMask(make(Vec, 3)); !ok {
		t.Error("all-zero mask should fit inline")
	} else if sp.Hash(Vec{1, 2, 3}) != 0 {
		t.Error("all-wildcard SparseMask hash should be 0 for any header")
	}
}

func TestFormatMasked(t *testing.T) {
	l := HYP2
	key, mask := MustPattern(l, "01*|1111")
	if got := FormatMasked(l, key, mask); got != "01*|1111" {
		t.Errorf("FormatMasked = %q", got)
	}
	key2, mask2 := MustPattern(l, "1**0***")
	if got := FormatMasked(l, key2, mask2); got != "1**|0***" {
		t.Errorf("FormatMasked = %q", got)
	}
}

func TestParsePatternErrors(t *testing.T) {
	if _, _, err := ParsePattern(HYP, "0011"); err == nil {
		t.Error("wrong-length pattern accepted")
	}
	if _, _, err := ParsePattern(HYP, "0x1"); err == nil {
		t.Error("bad char accepted")
	}
}

func TestCoverageCount(t *testing.T) {
	l := HYP
	_, m := MustPattern(l, "1**")
	if got := CoverageCount(l, m); got != 4 {
		t.Errorf("CoverageCount(1**) = %v, want 4 (paper §3.2)", got)
	}
	_, m2 := MustPattern(l, "111")
	if got := CoverageCount(l, m2); got != 1 {
		t.Errorf("CoverageCount(exact) = %v, want 1", got)
	}
}

func TestFormatWideField(t *testing.T) {
	l := IPv6Tuple
	v := NewVec(l)
	addr := make([]byte, 16)
	addr[0] = 0x20
	addr[1] = 0x01
	addr[15] = 0x01
	v.SetFieldBytes(l, 0, addr)
	s := v.Format(l)
	if len(s) == 0 || s[0] != '2' {
		t.Errorf("wide-field hex format wrong: %q", s)
	}
}

// Property: Covers(h&m, m, h) holds for every header/mask pair — the
// megaflow key derived from a packet always matches that packet (Inv(1)).
func TestCoverInvariantQuick(t *testing.T) {
	l := IPv4Tuple
	f := func(hw, mw [2]uint64) bool {
		h, m := NewVec(l), NewVec(l)
		copy(h, hw[:])
		copy(m, mw[:])
		// Trim bits beyond the layout width so vectors stay canonical.
		trim(l, h)
		trim(l, m)
		key := h.And(m)
		return Covers(key, m, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Overlap is reflexive for any valid entry (an entry overlaps
// itself) and anything overlaps the all-wildcard entry.
func TestOverlapReflexiveQuick(t *testing.T) {
	l := IPv4Tuple
	zero := NewVec(l)
	f := func(hw, mw [2]uint64) bool {
		h, m := NewVec(l), NewVec(l)
		copy(h, hw[:])
		copy(m, mw[:])
		trim(l, h)
		trim(l, m)
		key := h.And(m)
		return Overlap(key, m, key, m) && Overlap(key, m, zero, zero)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func trim(l *Layout, v Vec) {
	for b := l.Bits(); b < len(v)*64; b++ {
		v.ClearBit(b)
	}
}

func BenchmarkCovers(b *testing.B) {
	l := IPv4Tuple
	key, mask := NewVec(l), NewVec(l)
	h := NewVec(l)
	h.SetField(l, 0, 0x0a000001)
	mask.SetField(l, 0, 0xffffffff)
	key.SetField(l, 0, 0x0a000001)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Covers(key, mask, h) {
			b.Fatal("must cover")
		}
	}
}

func BenchmarkAndInto(b *testing.B) {
	l := IPv6Tuple
	h, m, dst := NewVec(l), NewVec(l), NewVec(l)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.AndInto(m, dst)
	}
}

// TestStageBoundaries pins the staged-lookup word ranges of the standard
// layouts: the IPv4 5-tuple splits into an L3 word and an L3/L4 tail word,
// the IPv6 5-tuple into four address words and the proto+ports word, and
// the single-word toy layouts cannot stage at all.
func TestStageBoundaries(t *testing.T) {
	cases := []struct {
		l    *Layout
		want []int
	}{
		{IPv4Tuple, []int{1, 2}},
		{IPv6Tuple, []int{4, 5}},
		{HYP, []int{1}},
		{HYP2, []int{1}},
	}
	for _, c := range cases {
		got := c.l.StageBoundaries()
		if len(got) != len(c.want) {
			t.Errorf("%s: boundaries = %v, want %v", c.l, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: boundaries = %v, want %v", c.l, got, c.want)
				break
			}
		}
	}
	// The final boundary is always the word count, and mutating the copy
	// must not corrupt the layout.
	b := IPv4Tuple.StageBoundaries()
	if b[len(b)-1] != IPv4Tuple.Words() {
		t.Errorf("final boundary = %d, want Words() = %d", b[len(b)-1], IPv4Tuple.Words())
	}
	b[0] = 99
	if IPv4Tuple.StageBoundaries()[0] != 1 {
		t.Error("StageBoundaries returned aliased internal state")
	}
}

// TestHashRangePartition is the incremental-hash property staged lookup
// rests on: for any split points, the XOR of HashRange over the segments
// equals the full Hash, and the final accumulated value equals the full
// fingerprint KeyHash(h AND m).
func TestHashRangePartition(t *testing.T) {
	l := IPv6Tuple
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		h, m := NewVec(l), NewVec(l)
		for i := range h {
			h[i] = rng.Uint64()
			if rng.Intn(3) > 0 {
				m[i] = rng.Uint64()
			}
		}
		trim(l, h)
		trim(l, m)
		sp, ok := NewSparseMask(m)
		if !ok {
			t.Fatal("IPv6Tuple mask must fit inline")
		}
		full := sp.Hash(h)
		n := sp.N()
		// Random partition of [0, n).
		var cuts []int
		for k := 1; k < n; k++ {
			if rng.Intn(2) == 0 {
				cuts = append(cuts, k)
			}
		}
		cuts = append(cuts, n)
		var acc uint64
		from := 0
		for _, to := range cuts {
			acc ^= sp.HashRange(h, from, to)
			from = to
		}
		if acc != full {
			t.Fatalf("partition hash %#x != full hash %#x (cuts %v)", acc, full, cuts)
		}
		if full != KeyHash(h.And(m)) {
			t.Fatalf("full hash %#x != KeyHash(h AND m)", full)
		}
		// MixWord agrees with the internal mixer through KeyHash: a vector
		// with one nonzero word hashes to exactly that word's mix.
		one := NewVec(l)
		w := rng.Uint64() | 1
		one[2] = w
		if KeyHash(one) != MixWord(w, 2) {
			t.Fatal("MixWord disagrees with KeyHash on a single-word vector")
		}
	}
}

// TestSparseMaskAccessors checks the slot accessors agree with
// NonzeroWords on the masks the classifier builds.
func TestSparseMaskAccessors(t *testing.T) {
	l := IPv4Tuple
	m := NewVec(l)
	m.SetField(l, 0, 0xffff0000) // ip_src prefix: word 0
	m.SetField(l, 4, 0xffff)     // tp_dst: word 1
	sp, ok := NewSparseMask(m)
	if !ok {
		t.Fatal("mask must fit inline")
	}
	words := m.NonzeroWords()
	if sp.N() != len(words) {
		t.Fatalf("N() = %d, want %d", sp.N(), len(words))
	}
	for k, wi := range words {
		if sp.WordIndex(k) != wi {
			t.Errorf("WordIndex(%d) = %d, want %d", k, sp.WordIndex(k), wi)
		}
		if sp.MaskWord(k) != m[wi] {
			t.Errorf("MaskWord(%d) = %#x, want %#x", k, sp.MaskWord(k), m[wi])
		}
	}
}
