// Package bitvec implements bit-vector keys and masks over a configurable
// header layout.
//
// A Layout is an ordered list of named header fields, each with a bit width.
// The same machinery serves the paper's hypothetical 3-bit HYP protocol
// (used in the worked examples of §3.2 and §4) and production header tuples
// such as the IPv4 5-tuple (104 bits) or the IPv6 5-tuple (296 bits): the
// classifier, megaflow generation, and attack code are all layout-generic.
//
// Within a field, bit 0 is the most significant bit. "Prefix of length p"
// therefore always means the p most significant bits of the field, matching
// the MSB-first unwildcarding used by trie-guided megaflow generation
// (cf. Fig. 3 of the paper: packet 100 against allow-key 001 yields mask
// 100, i.e. a 1-bit prefix).
package bitvec

import (
	"fmt"
	"strings"
)

// Field describes one header field in a layout.
type Field struct {
	// Name identifies the field, e.g. "ip_src" or "tcp_dst".
	Name string
	// Width is the field's size in bits. Must be in [1, 4096].
	Width int
}

// MaxFieldWidth bounds a single field's width. 4096 bits is far beyond any
// real protocol header field (IPv6 addresses are 128) but keeps internal
// arithmetic trivially overflow-free.
const MaxFieldWidth = 4096

// Layout is an immutable description of a packet header as a flat bit
// string: the concatenation of its fields in order. Keys, masks, and packet
// headers over the same Layout are all Vec values of the same length.
type Layout struct {
	fields  []Field
	offsets []int // offsets[i] = first global bit index of field i
	byName  map[string]int
	bits    int   // total width in bits
	words   int   // number of uint64 words backing a Vec
	stages  []int // staged-lookup word boundaries (see StageBoundaries)
}

// NewLayout builds a Layout from the given fields. It returns an error if
// there are no fields, a field has a non-positive or oversized width, or two
// fields share a name.
func NewLayout(fields ...Field) (*Layout, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("bitvec: layout needs at least one field")
	}
	l := &Layout{
		fields:  make([]Field, len(fields)),
		offsets: make([]int, len(fields)),
		byName:  make(map[string]int, len(fields)),
	}
	copy(l.fields, fields)
	off := 0
	for i, f := range fields {
		if f.Width <= 0 || f.Width > MaxFieldWidth {
			return nil, fmt.Errorf("bitvec: field %q has invalid width %d", f.Name, f.Width)
		}
		if f.Name == "" {
			return nil, fmt.Errorf("bitvec: field %d has empty name", i)
		}
		if _, dup := l.byName[f.Name]; dup {
			return nil, fmt.Errorf("bitvec: duplicate field name %q", f.Name)
		}
		l.byName[f.Name] = i
		l.offsets[i] = off
		off += f.Width
	}
	l.bits = off
	l.words = (off + 63) / 64
	l.stages = computeStages(l)
	return l, nil
}

// Protocol stages of the staged subtable lookup, in scan order. They mirror
// the four stages of OVS's classifier (lib/classifier.c "staged lookup"):
// metadata first, then L2, L3, and L4 header fields. A probe that already
// fails on the early words never touches the later ones.
const (
	stageMetadata = iota
	stageL2
	stageL3
	stageL4
)

// fieldStage classifies a header field by name into its protocol stage.
// The repository's layouts use OVS-flavoured names (ip_src, ip6_dst,
// tp_dst, ...); unknown names sort into the metadata stage, which is
// scanned first, matching OVS's treatment of register/metadata fields.
func fieldStage(name string) int {
	switch {
	case strings.HasPrefix(name, "tp_") || strings.HasPrefix(name, "tcp_") ||
		strings.HasPrefix(name, "udp_") || strings.HasPrefix(name, "icmp_"):
		return stageL4
	case strings.HasPrefix(name, "ip"): // ip_src, ip_dst, ip_proto, ip6_*
		return stageL3
	case strings.HasPrefix(name, "eth_") || strings.HasPrefix(name, "dl_") ||
		strings.HasPrefix(name, "vlan_"):
		return stageL2
	default:
		return stageMetadata
	}
}

// computeStages derives the layout's staged-lookup word boundaries. Each
// 64-bit word is assigned the latest protocol stage with bits in it (a word
// shared by an L3 tail and an L4 field belongs to the L4 stage: a stage's
// partial hash must cover every word of the stages before it). Boundaries
// are the word indices where the stage changes, terminated by the word
// count, so stage s spans words [bounds[s-1], bounds[s]).
func computeStages(l *Layout) []int {
	class := make([]int, l.words)
	for i, f := range l.fields {
		st := fieldStage(f.Name)
		first, last := l.offsets[i]/64, (l.offsets[i]+f.Width-1)/64
		for w := first; w <= last; w++ {
			if st > class[w] {
				class[w] = st
			}
		}
	}
	var out []int
	for w := 1; w < l.words; w++ {
		if class[w] != class[w-1] {
			out = append(out, w)
		}
	}
	return append(out, l.words)
}

// StageBoundaries returns the staged-lookup word ranges of the layout:
// boundaries[s] is one past the last word of stage s, with the final entry
// equal to Words(). A single-entry result means the layout is too narrow
// to stage (all fields share one word class) and staged lookup degenerates
// to the plain full-width probe. The returned slice is a copy.
func (l *Layout) StageBoundaries() []int {
	out := make([]int, len(l.stages))
	copy(out, l.stages)
	return out
}

// MustLayout is like NewLayout but panics on error. Intended for
// package-level layout construction where the fields are constants.
func MustLayout(fields ...Field) *Layout {
	l, err := NewLayout(fields...)
	if err != nil {
		panic(err)
	}
	return l
}

// NumFields returns the number of fields in the layout.
func (l *Layout) NumFields() int { return len(l.fields) }

// Field returns the i-th field. It panics if i is out of range.
func (l *Layout) Field(i int) Field { return l.fields[i] }

// FieldOffset returns the global bit offset of the i-th field.
func (l *Layout) FieldOffset(i int) int { return l.offsets[i] }

// FieldIndex returns the index of the field with the given name.
func (l *Layout) FieldIndex(name string) (int, bool) {
	i, ok := l.byName[name]
	return i, ok
}

// Bits returns the total layout width in bits.
func (l *Layout) Bits() int { return l.bits }

// Words returns the number of 64-bit words a Vec over this layout uses.
func (l *Layout) Words() int { return l.words }

// String renders the layout as "name:width,name:width,...".
func (l *Layout) String() string {
	var b strings.Builder
	for i, f := range l.fields {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d", f.Name, f.Width)
	}
	return b.String()
}

// Standard layouts used throughout the repository.
var (
	// HYP is the paper's hypothetical 3-bit single-header protocol
	// (§3.2, Fig. 1–3).
	HYP = MustLayout(Field{Name: "HYP", Width: 3})

	// HYP2 is the two-header toy protocol of §4.2 (Fig. 4–5):
	// a 3-bit HYP field followed by a 4-bit HYP2 field.
	HYP2 = MustLayout(Field{Name: "HYP", Width: 3}, Field{Name: "HYP2", Width: 4})

	// IPv4Tuple is the classifier view of the IPv4 5-tuple the paper's
	// full-blown attack targets (§5.2): source/destination address,
	// protocol, and source/destination transport ports. 104 bits.
	IPv4Tuple = MustLayout(
		Field{Name: "ip_src", Width: 32},
		Field{Name: "ip_dst", Width: 32},
		Field{Name: "ip_proto", Width: 8},
		Field{Name: "tp_src", Width: 16},
		Field{Name: "tp_dst", Width: 16},
	)

	// IPv4TuplePort prepends the ingress vport to the IPv4 5-tuple,
	// mirroring the OVS flow key, where in_port is part of every match:
	// per-port ACLs become expressible, and two tss entries identical but
	// for in_port are distinct flows. The field classifies into the
	// metadata stage and sits at the head of the first word, so a staged
	// probe that fails on the leading (port-bearing) word bails before
	// the L4 word. 120 bits.
	IPv4TuplePort = MustLayout(
		Field{Name: "in_port", Width: 16},
		Field{Name: "ip_src", Width: 32},
		Field{Name: "ip_dst", Width: 32},
		Field{Name: "ip_proto", Width: 8},
		Field{Name: "tp_src", Width: 16},
		Field{Name: "tp_dst", Width: 16},
	)

	// IPv6Tuple is the IPv6 equivalent (§5.4). 296 bits.
	IPv6Tuple = MustLayout(
		Field{Name: "ip6_src", Width: 128},
		Field{Name: "ip6_dst", Width: 128},
		Field{Name: "ip_proto", Width: 8},
		Field{Name: "tp_src", Width: 16},
		Field{Name: "tp_dst", Width: 16},
	)
)
