package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a fixed-width bit vector over some Layout: a packet header, a
// lookup key, or a wildcard mask. The global bit index b lives in word
// b/64 at bit position b%64 counted from the least significant bit; callers
// never need to know this, all access goes through Layout-aware methods.
//
// A Vec does not carry its Layout; the caller supplies it. This keeps Vec a
// plain slice (cheap to hash and to use as a map key via Key()).
type Vec []uint64

// NewVec returns an all-zero Vec sized for the layout.
func NewVec(l *Layout) Vec { return make(Vec, l.Words()) }

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Key returns a string usable as a map key. Two Vecs of the same length
// have equal Keys iff they are bit-for-bit equal.
func (v Vec) Key() string {
	b := make([]byte, len(v)*8)
	for i, w := range v {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(w >> (8 * j))
		}
	}
	return string(b)
}

// Bit reports whether global bit index b is set.
func (v Vec) Bit(b int) bool { return v[b/64]>>(uint(b)%64)&1 == 1 }

// SetBit sets global bit index b.
func (v Vec) SetBit(b int) { v[b/64] |= 1 << (uint(b) % 64) }

// ClearBit clears global bit index b.
func (v Vec) ClearBit(b int) { v[b/64] &^= 1 << (uint(b) % 64) }

// FieldBit reports whether bit i (0 = MSB) of field f is set.
func (v Vec) FieldBit(l *Layout, f, i int) bool {
	return v.Bit(l.offsets[f] + i)
}

// SetFieldBit sets bit i (0 = MSB) of field f.
func (v Vec) SetFieldBit(l *Layout, f, i int) {
	v.SetBit(l.offsets[f] + i)
}

// ClearFieldBit clears bit i (0 = MSB) of field f.
func (v Vec) ClearFieldBit(l *Layout, f, i int) {
	v.ClearBit(l.offsets[f] + i)
}

// FlipFieldBit inverts bit i (0 = MSB) of field f. This is the elementary
// operation of the paper's bit-inversion adversarial trace (§5.1).
func (v Vec) FlipFieldBit(l *Layout, f, i int) {
	b := l.offsets[f] + i
	v[b/64] ^= 1 << (uint(b) % 64)
}

// SetField stores val into field f. Only the low Width bits of val are
// used; bit Width-1 of the stored value lands on the field's LSB. Panics if
// the field is wider than 64 bits (use SetFieldBytes for those).
func (v Vec) SetField(l *Layout, f int, val uint64) {
	w := l.fields[f].Width
	if w > 64 {
		panic(fmt.Sprintf("bitvec: SetField on %d-bit field %q; use SetFieldBytes", w, l.fields[f].Name))
	}
	for i := 0; i < w; i++ {
		// Bit i (MSB-first) corresponds to value bit w-1-i.
		if val>>(uint(w-1-i))&1 == 1 {
			v.SetFieldBit(l, f, i)
		} else {
			v.ClearFieldBit(l, f, i)
		}
	}
}

// FieldUint64 extracts field f as an unsigned integer. Panics if the field
// is wider than 64 bits.
func (v Vec) FieldUint64(l *Layout, f int) uint64 {
	w := l.fields[f].Width
	if w > 64 {
		panic(fmt.Sprintf("bitvec: FieldUint64 on %d-bit field %q; use FieldBytes", w, l.fields[f].Name))
	}
	var val uint64
	for i := 0; i < w; i++ {
		val <<= 1
		if v.FieldBit(l, f, i) {
			val |= 1
		}
	}
	return val
}

// SetFieldBytes stores a big-endian byte string into field f. The field
// width must equal 8*len(b). Used for 128-bit IPv6 addresses.
func (v Vec) SetFieldBytes(l *Layout, f int, b []byte) {
	w := l.fields[f].Width
	if w != 8*len(b) {
		panic(fmt.Sprintf("bitvec: SetFieldBytes: field %q is %d bits, got %d bytes", l.fields[f].Name, w, len(b)))
	}
	for i := 0; i < w; i++ {
		if b[i/8]>>(7-uint(i)%8)&1 == 1 {
			v.SetFieldBit(l, f, i)
		} else {
			v.ClearFieldBit(l, f, i)
		}
	}
}

// FieldBytes extracts field f as a big-endian byte string. The field width
// must be a multiple of 8.
func (v Vec) FieldBytes(l *Layout, f int) []byte {
	w := l.fields[f].Width
	if w%8 != 0 {
		panic(fmt.Sprintf("bitvec: FieldBytes on %d-bit field %q", w, l.fields[f].Name))
	}
	b := make([]byte, w/8)
	for i := 0; i < w; i++ {
		if v.FieldBit(l, f, i) {
			b[i/8] |= 1 << (7 - uint(i)%8)
		}
	}
	return b
}

// And returns v AND o as a new Vec.
func (v Vec) And(o Vec) Vec {
	r := make(Vec, len(v))
	for i := range v {
		r[i] = v[i] & o[i]
	}
	return r
}

// Or returns v OR o as a new Vec.
func (v Vec) Or(o Vec) Vec {
	r := make(Vec, len(v))
	for i := range v {
		r[i] = v[i] | o[i]
	}
	return r
}

// AndNot returns v AND NOT o as a new Vec.
func (v Vec) AndNot(o Vec) Vec {
	r := make(Vec, len(v))
	for i := range v {
		r[i] = v[i] &^ o[i]
	}
	return r
}

// AndInto computes v AND o into dst (which must have the same length),
// avoiding allocation on the classifier's hot lookup path.
func (v Vec) AndInto(o, dst Vec) {
	for i := range v {
		dst[i] = v[i] & o[i]
	}
}

// Equal reports bit-for-bit equality.
func (v Vec) Equal(o Vec) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether no bit is set.
func (v Vec) IsZero() bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits.
func (v Vec) OnesCount() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// SubsetOf reports whether every set bit of v is also set in o
// (v ⊆ o viewed as bit sets).
func (v Vec) SubsetOf(o Vec) bool {
	for i := range v {
		if v[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

// Hash returns a 64-bit hash of the vector's bits, mixed a word at a time
// (one multiply-xorshift round per 64-bit word rather than FNV's eight
// byte rounds). Used to spread masks across buckets and for RSS worker
// steering; equality must still be confirmed with Equal.
func (v Vec) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range v {
		h = (h ^ w) * prime64
		h ^= h >> 29
		h *= 0xff51afd7ed558ccd
	}
	h ^= h >> 32
	return h
}

// mixWord is the per-word mixer behind KeyHash/HashMasked: one
// multiply-xorshift round over the word value tagged with its position, so
// equal words at different indices hash differently while zero words
// contribute nothing (they are skipped by the callers). It is deliberately
// a single round — the mix only spreads bucket indices, and hash-collision
// false positives are impossible because every probe confirms with an
// exact word compare.
func mixWord(w uint64, i int) uint64 {
	x := (w ^ (uint64(i)+1)*0x9e3779b97f4a7c15) * 0xff51afd7ed558ccd
	return x ^ x>>32
}

// MixWord is the exported per-word term of KeyHash: KeyHash(v) is the XOR
// of MixWord(w, i) over v's nonzero words. Because XOR is associative, a
// caller can accumulate the hash incrementally over any partition of the
// word indices — the primitive behind the classifier's staged lookup,
// where each stage contributes its words' mixes and the running value at
// the final stage IS the full fingerprint.
func MixWord(w uint64, i int) uint64 { return mixWord(w, i) }

// KeyHash returns the bucket hash of v: the XOR of position-tagged mixes of
// its nonzero words. Because zero words contribute nothing, the same hash
// can be computed through a sparse mask without materialising the masked
// vector — HashMasked(h, m, m.NonzeroWords()) == KeyHash(h.And(m)) — which
// is what makes the classifier's zero-allocation probe possible.
func KeyHash(v Vec) uint64 {
	var h uint64
	for i, w := range v {
		if w != 0 {
			h ^= mixWord(w, i)
		}
	}
	return h
}

// NonzeroWords returns the indices of v's nonzero words, in order. For a
// sparse wildcard mask this is the per-probe work list: HashMasked and
// EqualMasked touch only these words.
func (v Vec) NonzeroWords() []int {
	var out []int
	for i, w := range v {
		if w != 0 {
			out = append(out, i)
		}
	}
	return out
}

// HashMasked returns KeyHash(h AND mask) without materialising the masked
// vector, touching only the given word indices. words must be
// mask.NonzeroWords() (or a superset covering every nonzero mask word):
// words the mask zeroes contribute nothing to KeyHash, so skipping them is
// exact, not approximate.
func HashMasked(h, mask Vec, words []int) uint64 {
	var x uint64
	for _, i := range words {
		if w := h[i] & mask[i]; w != 0 {
			x ^= mixWord(w, i)
		}
	}
	return x
}

// EqualMasked reports whether key == (h AND mask), touching only the given
// word indices. words must cover every nonzero word of mask, and key must
// be canonical for the mask (key ⊆ mask, as the classifier enforces on
// insert) so that key is zero wherever the mask is.
func EqualMasked(key, h, mask Vec, words []int) bool {
	for _, i := range words {
		if key[i] != h[i]&mask[i] {
			return false
		}
	}
	return true
}

// SparseMaskInline is the number of nonzero mask words a SparseMask stores
// inline. Every standard layout fits (IPv6Tuple is 5 words total); masks
// with more nonzero words use the slice-based HashMasked/EqualMasked
// primitives instead.
const SparseMaskInline = 6

// SparseMask is a precomputed sparse view of a wildcard mask: the nonzero
// words and their indices, stored inline (no heap indirection) so a
// classifier probe that embeds one touches no cache lines beyond its own
// struct. Hash and EqualKey are the inline-array twins of HashMasked and
// EqualMasked.
type SparseMask struct {
	n   uint8
	idx [SparseMaskInline]uint8
	w   [SparseMaskInline]uint64
}

// NewSparseMask builds the sparse view of mask. ok is false when the mask
// does not fit inline (more than SparseMaskInline nonzero words, or word
// indices beyond 255) and the caller must keep the slice-based fallback.
func NewSparseMask(mask Vec) (s SparseMask, ok bool) {
	for i, w := range mask {
		if w == 0 {
			continue
		}
		if int(s.n) == SparseMaskInline || i > 255 {
			return SparseMask{}, false
		}
		s.idx[s.n] = uint8(i)
		s.w[s.n] = w
		s.n++
	}
	return s, true
}

// N returns the number of nonzero mask words the sparse view holds.
func (s *SparseMask) N() int { return int(s.n) }

// WordIndex returns the Vec word index of sparse slot k.
func (s *SparseMask) WordIndex(k int) int { return int(s.idx[k]) }

// MaskWord returns the mask word stored at sparse slot k.
func (s *SparseMask) MaskWord(k int) uint64 { return s.w[k] }

// Hash returns KeyHash(h AND mask) without materialising the masked
// vector. Identical to HashMasked(h, mask, mask.NonzeroWords()).
func (s *SparseMask) Hash(h Vec) uint64 {
	var x uint64
	for k := uint8(0); k < s.n; k++ {
		i := int(s.idx[k])
		if w := h[i] & s.w[k]; w != 0 {
			x ^= mixWord(w, i)
		}
	}
	return x
}

// HashRange returns the partial hash contribution of sparse slots
// [from, to): the XOR of MixWord over those slots' masked header words.
// Because KeyHash is an XOR of per-word mixes, Hash(h) equals the XOR of
// HashRange(h, ...) over any partition of [0, N()) — the incremental
// property the classifier's staged lookup accumulates stage by stage.
func (s *SparseMask) HashRange(h Vec, from, to int) uint64 {
	var x uint64
	for k := from; k < to; k++ {
		i := int(s.idx[k])
		if w := h[i] & s.w[k]; w != 0 {
			x ^= mixWord(w, i)
		}
	}
	return x
}

// EqualKey reports whether key == (h AND mask), under the same key ⊆ mask
// canonicality precondition as EqualMasked.
func (s *SparseMask) EqualKey(key, h Vec) bool {
	for k := uint8(0); k < s.n; k++ {
		i := int(s.idx[k])
		if key[i] != h[i]&s.w[k] {
			return false
		}
	}
	return true
}

// Format renders the vector field by field in binary, e.g. "001|1111" for
// the HYP2 layout. Wide fields (>32 bits) are rendered in hex.
func (v Vec) Format(l *Layout) string {
	var b strings.Builder
	for f := 0; f < l.NumFields(); f++ {
		if f > 0 {
			b.WriteByte('|')
		}
		w := l.fields[f].Width
		if w <= 32 {
			for i := 0; i < w; i++ {
				if v.FieldBit(l, f, i) {
					b.WriteByte('1')
				} else {
					b.WriteByte('0')
				}
			}
		} else {
			nibbles := (w + 3) / 4
			for n := 0; n < nibbles; n++ {
				var nib uint64
				for i := n * 4; i < (n+1)*4 && i < w; i++ {
					nib <<= 1
					if v.FieldBit(l, f, i) {
						nib |= 1
					}
				}
				fmt.Fprintf(&b, "%x", nib)
			}
		}
	}
	return b.String()
}

// FormatMasked renders key/mask pairs the way the paper's figures do:
// matched bits as 0/1, wildcarded bits as '*'. For example entry #3 of
// Fig. 3 renders as "01*".
func FormatMasked(l *Layout, key, mask Vec) string {
	var b strings.Builder
	for f := 0; f < l.NumFields(); f++ {
		if f > 0 {
			b.WriteByte('|')
		}
		w := l.fields[f].Width
		for i := 0; i < w; i++ {
			switch {
			case !mask.FieldBit(l, f, i):
				b.WriteByte('*')
			case key.FieldBit(l, f, i):
				b.WriteByte('1')
			default:
				b.WriteByte('0')
			}
		}
	}
	return b.String()
}

// PrefixMask returns a mask with the plen most significant bits of field f
// set and everything else clear.
func PrefixMask(l *Layout, f, plen int) Vec {
	if plen < 0 || plen > l.fields[f].Width {
		panic(fmt.Sprintf("bitvec: prefix length %d out of range for %d-bit field %q", plen, l.fields[f].Width, l.fields[f].Name))
	}
	m := NewVec(l)
	for i := 0; i < plen; i++ {
		m.SetFieldBit(l, f, i)
	}
	return m
}

// FieldMask returns a mask covering all bits of field f.
func FieldMask(l *Layout, f int) Vec {
	return PrefixMask(l, f, l.fields[f].Width)
}

// FullMask returns a mask with every bit of the layout set (exact match).
func FullMask(l *Layout) Vec {
	m := NewVec(l)
	for f := 0; f < l.NumFields(); f++ {
		for i := 0; i < l.fields[f].Width; i++ {
			m.SetFieldBit(l, f, i)
		}
	}
	return m
}

// Covers reports whether the key/mask pair matches header h:
// h AND mask == key.
func Covers(key, mask, h Vec) bool {
	for i := range h {
		if h[i]&mask[i] != key[i] {
			return false
		}
	}
	return true
}

// Overlap reports whether two key/mask pairs overlap, i.e. whether some
// header matches both. Two entries overlap iff their keys agree on the
// intersection of their masks. This is the test behind the paper's
// independence invariant Inv(2) (§3.2).
func Overlap(k1, m1, k2, m2 Vec) bool {
	for i := range k1 {
		common := m1[i] & m2[i]
		if k1[i]&common != k2[i]&common {
			return false
		}
	}
	return true
}

// CoverageCount returns the number of distinct headers matched by a
// key/mask pair over the layout: 2^(wildcarded bits). Returns the count as
// a float64 to avoid overflow on wide layouts (e.g. IPv6's 296 bits).
func CoverageCount(l *Layout, mask Vec) float64 {
	wild := l.Bits() - mask.OnesCount()
	// 2^wild; exact for wild < 53 which covers all interpretation needs.
	out := 1.0
	for i := 0; i < wild; i++ {
		out *= 2
	}
	return out
}

// ParsePattern parses a figure-style pattern such as "001", "1**", or
// "001|1111" into a key/mask pair over the layout. '|' separates fields
// (optional if widths are unambiguous: the pattern may also be given as one
// undelimited string whose total length equals the layout width). '*' is a
// wildcard bit. Used heavily in tests to state expected MFC contents
// exactly as the paper's figures print them.
func ParsePattern(l *Layout, pat string) (key, mask Vec, err error) {
	flat := strings.ReplaceAll(pat, "|", "")
	if len(flat) != l.Bits() {
		return nil, nil, fmt.Errorf("bitvec: pattern %q has %d bits, layout has %d", pat, len(flat), l.Bits())
	}
	key, mask = NewVec(l), NewVec(l)
	for b, c := range flat {
		switch c {
		case '0':
			mask.SetBit(b)
		case '1':
			mask.SetBit(b)
			key.SetBit(b)
		case '*':
		default:
			return nil, nil, fmt.Errorf("bitvec: bad pattern char %q in %q", c, pat)
		}
	}
	return key, mask, nil
}

// MustPattern is ParsePattern that panics on error; for tests and fixtures.
func MustPattern(l *Layout, pat string) (key, mask Vec) {
	key, mask, err := ParsePattern(l, pat)
	if err != nil {
		panic(err)
	}
	return key, mask
}
