package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/packet"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{TsSec: 1, TsUsec: 500, Data: []byte{1, 2, 3, 4}},
		{TsSec: 2, TsUsec: 0, Data: bytes.Repeat([]byte{0xab}, 1500)},
		{TsSec: 2, TsUsec: 999999, Data: nil},
	}
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet || r.SnapLen() != DefaultSnapLen {
		t.Errorf("header: link=%d snap=%d", r.LinkType(), r.SnapLen())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].TsSec != recs[i].TsSec || got[i].TsUsec != recs[i].TsUsec {
			t.Errorf("record %d timestamps %+v", i, got[i])
		}
		if !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Errorf("record %d data mismatch", i)
		}
		if got[i].OrigLen != uint32(len(recs[i].Data)) {
			t.Errorf("record %d origlen = %d", i, got[i].OrigLen)
		}
	}
}

func TestBigEndianFile(t *testing.T) {
	// Hand-build a big-endian capture with one 4-byte record.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], MagicLE) // BE-written classic magic
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:], 42)
	binary.BigEndian.PutUint32(rec[8:], 4)
	binary.BigEndian.PutUint32(rec[12:], 4)
	buf.Write(rec)
	buf.Write([]byte{9, 9, 9, 9})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.TsSec != 42 || len(got.Data) != 4 {
		t.Errorf("record %+v", got)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewBuffer(bytes.Repeat([]byte{0}, 24))
	if _, err := NewReader(buf); err == nil {
		t.Error("zero magic accepted")
	}
	short := bytes.NewBuffer([]byte{1, 2, 3})
	if _, err := NewReader(short); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestBadVersion(t *testing.T) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], MagicLE)
	binary.LittleEndian.PutUint16(hdr[4:], 9)
	if _, err := NewReader(bytes.NewBuffer(hdr)); err == nil {
		t.Error("version 9 accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(Record{Data: []byte{1, 2, 3, 4, 5}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated record read: %v", err)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.snapLen = 8
	big := bytes.Repeat([]byte{7}, 100)
	if err := w.WriteRecord(Record{Data: big}); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 8 || rec.OrigLen != 100 {
		t.Errorf("snap truncation: got %d bytes orig %d", len(rec.Data), rec.OrigLen)
	}
}

func TestDoubleHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(); err == nil {
		t.Error("second WriteHeader succeeded")
	}
}

// TestAdversarialTracePipeline is the end-to-end substrate test: an
// adversarial trace is crafted into frames, written to pcap, read back,
// parsed, and the recovered classifier keys equal the originals — the full
// tsegen -> replay path.
func TestAdversarialTracePipeline(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	l := bitvec.IPv4Tuple
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{SkipAllowCombos: true})
	if err != nil {
		t.Fatal(err)
	}
	// Pin a realizable protocol in every header (UDP).
	proto, _ := l.FieldIndex("ip_proto")
	for _, h := range tr.Headers {
		h.SetField(l, proto, packet.ProtoUDP)
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i, h := range tr.Headers {
		frame, err := packet.Craft(l, h, packet.CraftOptions{})
		if err != nil {
			t.Fatalf("craft %d: %v", i, err)
		}
		if err := w.WriteRecord(Record{TsSec: uint32(i / 100), Data: frame}); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != tr.Len() {
		t.Fatalf("read %d records, want %d", len(recs), tr.Len())
	}
	for i, rec := range recs {
		p, err := packet.Parse(rec.Data, packet.ParseOptions{VerifyChecksums: true})
		if err != nil {
			t.Fatalf("parse %d: %v", i, err)
		}
		key, err := p.FlowKey4()
		if err != nil {
			t.Fatal(err)
		}
		if !key.Equal(tr.Headers[i]) {
			t.Fatalf("record %d: key mismatch", i)
		}
	}
}
