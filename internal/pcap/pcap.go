// Package pcap reads and writes classic libpcap capture files (the
// 0xa1b2c3d4 format, version 2.4). The paper's synthetic tests replay
// adversarial traffic from pcap files ("via replaying a pcap file like in
// [19]", §5.4); cmd/tsegen writes such files and cmd/tseattack replays
// them through the simulated switch.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MagicLE is the classic pcap magic number in this implementation's native
// (little-endian) byte order; MagicBE is the byte-swapped variant.
const (
	MagicLE = 0xa1b2c3d4
	MagicBE = 0xd4c3b2a1
)

// LinkTypeEthernet is the only link type this repository uses.
const LinkTypeEthernet = 1

// DefaultSnapLen is the snapshot length written into new files.
const DefaultSnapLen = 65535

const (
	globalHeaderLen = 24
	recordHeaderLen = 16
)

// Record is one captured packet.
type Record struct {
	// TsSec and TsUsec are the capture timestamp.
	TsSec, TsUsec uint32
	// Data is the frame, possibly truncated to the snap length.
	Data []byte
	// OrigLen is the original wire length.
	OrigLen uint32
}

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snapLen uint32
	started bool
}

// NewWriter creates a Writer; the global header is emitted lazily on the
// first WriteRecord (or explicitly via WriteHeader).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, snapLen: DefaultSnapLen}
}

// WriteHeader writes the global header. Calling it twice is an error.
func (w *Writer) WriteHeader() error {
	if w.started {
		return fmt.Errorf("pcap: header already written")
	}
	w.started = true
	hdr := make([]byte, globalHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], MagicLE)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // minor
	binary.LittleEndian.PutUint32(hdr[16:], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	_, err := w.w.Write(hdr)
	return err
}

// WriteRecord appends one packet.
func (w *Writer) WriteRecord(r Record) error {
	if !w.started {
		if err := w.WriteHeader(); err != nil {
			return err
		}
	}
	data := r.Data
	if uint32(len(data)) > w.snapLen {
		data = data[:w.snapLen]
	}
	orig := r.OrigLen
	if orig == 0 {
		orig = uint32(len(r.Data))
	}
	hdr := make([]byte, recordHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], r.TsSec)
	binary.LittleEndian.PutUint32(hdr[4:], r.TsUsec)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:], orig)
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}

// Reader consumes a pcap stream.
type Reader struct {
	r       io.Reader
	order   binary.ByteOrder
	snapLen uint32
	link    uint32
}

// NewReader parses the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	hdr := make([]byte, globalHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	rd := &Reader{r: r}
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case MagicLE:
		rd.order = binary.LittleEndian
	case MagicBE:
		rd.order = binary.BigEndian
	default:
		return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	major := rd.order.Uint16(hdr[4:])
	if major != 2 {
		return nil, fmt.Errorf("pcap: unsupported version %d", major)
	}
	rd.snapLen = rd.order.Uint32(hdr[16:])
	rd.link = rd.order.Uint32(hdr[20:])
	return rd, nil
}

// LinkType returns the capture's link type.
func (r *Reader) LinkType() uint32 { return r.link }

// SnapLen returns the capture's snapshot length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Next returns the next record, or io.EOF at end of stream.
func (r *Reader) Next() (Record, error) {
	hdr := make([]byte, recordHeaderLen)
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: reading record header: %w", err)
	}
	rec := Record{
		TsSec:   r.order.Uint32(hdr[0:]),
		TsUsec:  r.order.Uint32(hdr[4:]),
		OrigLen: r.order.Uint32(hdr[12:]),
	}
	incl := r.order.Uint32(hdr[8:])
	if incl > r.snapLen+65536 {
		return Record{}, fmt.Errorf("pcap: implausible record length %d", incl)
	}
	rec.Data = make([]byte, incl)
	if _, err := io.ReadFull(r.r, rec.Data); err != nil {
		return Record{}, fmt.Errorf("pcap: reading record body: %w", err)
	}
	return rec, nil
}

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
