package pcap

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestReaderNeverPanicsOnGarbage feeds random byte streams to the reader:
// every outcome must be a clean error or a well-formed record, never a
// panic or an unbounded allocation.
func TestReaderNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(200)
		data := make([]byte, n)
		rng.Read(data)
		// Half the time, start from a valid magic so record parsing is
		// actually reached.
		if n >= 24 && trial%2 == 0 {
			binary.LittleEndian.PutUint32(data[0:], MagicLE)
			binary.LittleEndian.PutUint16(data[4:], 2)
			binary.LittleEndian.PutUint32(data[16:], DefaultSnapLen)
		}
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue
		}
		for i := 0; i < 10; i++ {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}

// TestReaderBoundsRecordAllocation rejects implausible record lengths
// instead of allocating them.
func TestReaderBoundsRecordAllocation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:], 0xffffffff) // 4 GiB claim
	buf.Write(rec)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("4 GiB record length accepted")
	}
}
