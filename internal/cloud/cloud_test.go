package cloud

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// TestCMSMaskLimits checks the §7 attainable-mask arithmetic:
// OpenStack/Kubernetes ingress 32*16 = 512; Calico ingress adds the source
// port (8192, "already enough for a full-blown DoS"); Calico egress adds
// the destination address (~200 thousand).
func TestCMSMaskLimits(t *testing.T) {
	if got := OpenStack.MaxMasks(false); got != 512 {
		t.Errorf("OpenStack = %d, want 512", got)
	}
	if got := Kubernetes.MaxMasks(false); got != 512 {
		t.Errorf("Kubernetes = %d, want 512", got)
	}
	if got := Calico.MaxMasks(false); got != 8192 {
		t.Errorf("Calico ingress = %d, want 8192", got)
	}
	if got := Calico.MaxMasks(true); got != 262144 {
		t.Errorf("Calico egress = %d, want 262144 (~200k, §7)", got)
	}
}

func TestValidateACL(t *testing.T) {
	// SipDp (ip_src + tp_dst) is allowed everywhere.
	sipdp := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	if err := OpenStack.ValidateACL(sipdp); err != nil {
		t.Errorf("OpenStack rejected SipDp: %v", err)
	}
	// SipSpDp needs source-port filtering: only Calico permits it ("The
	// CMS API only allows the SipDp scenario", §5.5).
	full := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	if err := OpenStack.ValidateACL(full); err == nil {
		t.Error("OpenStack accepted source-port filtering")
	}
	if err := Kubernetes.ValidateACL(full); err == nil {
		t.Error("Kubernetes accepted source-port filtering")
	}
	if err := Calico.ValidateACL(full); err != nil {
		t.Errorf("Calico rejected SipSpDp: %v", err)
	}
}

func tenantACL(u flowtable.UseCase) *flowtable.Table {
	return flowtable.UseCaseACL(u, flowtable.ACLParams{})
}

func header(sip, dip uint32, proto, sp, dp uint64) bitvec.Vec {
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	fs := map[string]uint64{
		"ip_src": uint64(sip), "ip_dst": uint64(dip),
		"ip_proto": proto, "tp_src": sp, "tp_dst": dp,
	}
	for name, v := range fs {
		i, _ := l.FieldIndex(name)
		h.SetField(l, i, v)
	}
	return h
}

func TestHypervisorTenantIsolationSemantics(t *testing.T) {
	h, err := NewHypervisor(OpenStack)
	if err != nil {
		t.Fatal(err)
	}
	victim := &Tenant{Name: "victim", IP: 0xc0a80002, ACL: tenantACL(flowtable.SipDp)}
	attacker := &Tenant{Name: "attacker", IP: 0xc0a80003, ACL: tenantACL(flowtable.SipDp)}
	if err := h.AddTenant(victim); err != nil {
		t.Fatal(err)
	}
	if err := h.AddTenant(attacker); err != nil {
		t.Fatal(err)
	}
	// Traffic to the victim's web port is allowed by the victim's rule #1.
	v := h.Switch().Process(header(0x08080808, 0xc0a80002, 6, 50000, 80), 0)
	if v.Action != flowtable.Allow {
		t.Errorf("victim web traffic: %v, want allow", v.Action)
	}
	// Traffic to an unknown port on the victim is denied.
	v = h.Switch().Process(header(0x08080808, 0xc0a80002, 6, 50000, 9999), 0)
	if v.Action != flowtable.Drop {
		t.Errorf("victim other traffic: %v, want deny", v.Action)
	}
	// Traffic to an address of no tenant hits the global default deny.
	v = h.Switch().Process(header(0x08080808, 0xdeadbeef, 6, 50000, 80), 0)
	if v.Action != flowtable.Drop {
		t.Errorf("unknown destination: %v, want deny", v.Action)
	}
}

// TestColocatedSharedMFC is the co-located attack mechanics (§3.3, §5):
// the attacker's traffic to its *own* ACL inflates the shared MFC, and the
// victim's lookup cost rises with it.
func TestColocatedSharedMFC(t *testing.T) {
	h, err := NewHypervisor(OpenStack)
	if err != nil {
		t.Fatal(err)
	}
	victim := &Tenant{Name: "victim", IP: 0xc0a80002, ACL: tenantACL(flowtable.SipDp)}
	attacker := &Tenant{Name: "attacker", IP: 0xc0a80003, ACL: tenantACL(flowtable.SipDp)}
	if err := h.AddTenant(victim); err != nil {
		t.Fatal(err)
	}
	if err := h.AddTenant(attacker); err != nil {
		t.Fatal(err)
	}
	sw := h.Switch()
	vh := header(0x08080808, 0xc0a80002, 6, 50000, 80)
	sw.Process(vh, 0)
	_, before, ok := sw.MFC().Lookup(vh, 0)
	if !ok {
		t.Fatal("victim entry missing")
	}
	// Attacker sends adversarial traffic destined to its own workload:
	// bit-inverted source IPs and destination ports around its own ACL.
	l := bitvec.IPv4Tuple
	sip, _ := l.FieldIndex("ip_src")
	dp, _ := l.FieldIndex("tp_dst")
	base := header(0x0a000001, 0xc0a80003, 6, 50000, 80)
	for b := 0; b < 32; b++ {
		for p := 0; p < 16; p++ {
			pkt := base.Clone()
			pkt.FlipFieldBit(l, sip, b)
			pkt.FlipFieldBit(l, dp, p)
			sw.Process(pkt, 0)
		}
	}
	masks := sw.MFC().MaskCount()
	if masks < 400 {
		t.Fatalf("attack spawned only %d masks in the shared MFC", masks)
	}
	_, after, ok := sw.MFC().Lookup(vh, 0)
	if !ok {
		t.Fatal("victim entry vanished")
	}
	if after <= before+100 {
		t.Errorf("victim probes %d -> %d; co-location should inflate them", before, after)
	}
}

func TestAddTenantValidation(t *testing.T) {
	h, _ := NewHypervisor(OpenStack)
	// CMS rejects a source-port ACL.
	bad := &Tenant{Name: "bad", IP: 1, ACL: tenantACL(flowtable.SipSpDp)}
	if err := h.AddTenant(bad); err == nil {
		t.Error("CMS-violating ACL accepted")
	}
	ok1 := &Tenant{Name: "a", IP: 1, ACL: tenantACL(flowtable.SipDp)}
	if err := h.AddTenant(ok1); err != nil {
		t.Fatal(err)
	}
	if err := h.AddTenant(&Tenant{Name: "b", IP: 1, ACL: tenantACL(flowtable.SipDp)}); err == nil {
		t.Error("duplicate IP accepted")
	}
	if err := h.AddTenant(&Tenant{Name: "a", IP: 2, ACL: tenantACL(flowtable.SipDp)}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := h.AddTenant(&Tenant{Name: "c", IP: 3}); err == nil {
		t.Error("tenant without ACL accepted")
	}
	if len(h.Tenants()) != 1 {
		t.Errorf("tenant count = %d, want 1", len(h.Tenants()))
	}
}

func TestRemoveTenant(t *testing.T) {
	h, _ := NewHypervisor(OpenStack)
	h.AddTenant(&Tenant{Name: "a", IP: 0xc0a80002, ACL: tenantACL(flowtable.SipDp)})
	if err := h.RemoveTenant("nope"); err == nil {
		t.Error("removing unknown tenant succeeded")
	}
	if err := h.RemoveTenant("a"); err != nil {
		t.Fatal(err)
	}
	// After removal the tenant's traffic is denied.
	v := h.Switch().Process(header(0x08080808, 0xc0a80002, 6, 50000, 80), 0)
	if v.Action != flowtable.Drop {
		t.Errorf("traffic to removed tenant: %v, want deny", v.Action)
	}
}

func TestValidateACLUnknownField(t *testing.T) {
	weird := CMS{Name: "weird", IngressFields: []string{"nope"}}
	if err := weird.ValidateACL(tenantACL(flowtable.SipDp)); err == nil {
		t.Error("CMS with unknown field validated an ACL")
	}
}
