package cloud

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// egressACL allows traffic from the tenant to dst port 53 and one remote
// address, denying the rest (a plausible Calico egress policy).
func egressACL() *flowtable.Table {
	l := bitvec.IPv4Tuple
	t := flowtable.New(l)
	dp, _ := l.FieldIndex("tp_dst")
	dip, _ := l.FieldIndex("ip_dst")
	k1 := bitvec.NewVec(l)
	k1.SetField(l, dp, 53)
	t.MustAdd(&flowtable.Rule{Name: "#1", Priority: 10, Action: flowtable.Allow,
		Key: k1, Mask: bitvec.FieldMask(l, dp)})
	k2 := bitvec.NewVec(l)
	k2.SetField(l, dip, 0x01010101)
	t.MustAdd(&flowtable.Rule{Name: "#2", Priority: 5, Action: flowtable.Allow,
		Key: k2, Mask: bitvec.FieldMask(l, dip)})
	t.MustAdd(&flowtable.Rule{Name: "#3", Priority: 0, Action: flowtable.Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	return t
}

func TestEgressACLValidation(t *testing.T) {
	// OpenStack (no egress support in our model) rejects egress ACLs.
	if err := OpenStack.ValidateEgressACL(egressACL()); err == nil {
		t.Error("OpenStack accepted an egress ACL")
	}
	// Calico accepts destination-address egress filtering (§7).
	if err := Calico.ValidateEgressACL(egressACL()); err != nil {
		t.Errorf("Calico rejected egress ACL: %v", err)
	}
	h, _ := NewHypervisor(OpenStack)
	bad := &Tenant{Name: "t", IP: 1, ACL: tenantACL(flowtable.SipDp), EgressACL: egressACL()}
	if err := h.AddTenant(bad); err == nil {
		t.Error("hypervisor accepted egress ACL under OpenStack CMS")
	}
}

func TestEgressSemantics(t *testing.T) {
	h, err := NewHypervisor(Calico)
	if err != nil {
		t.Fatal(err)
	}
	tn := &Tenant{Name: "t", IP: 0xc0a80002,
		ACL: tenantACL(flowtable.SipDp), EgressACL: egressACL()}
	if err := h.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	sw := h.Switch()
	// Egress DNS from the tenant is allowed.
	if v := sw.Process(header(0xc0a80002, 0x08080808, 17, 5353, 53), 0); v.Action != flowtable.Allow {
		t.Errorf("egress DNS: %v, want allow", v.Action)
	}
	// Egress to the allowed remote address on another port is allowed.
	if v := sw.Process(header(0xc0a80002, 0x01010101, 6, 5353, 9999), 0); v.Action != flowtable.Allow {
		t.Errorf("egress to allowed remote: %v, want allow", v.Action)
	}
	// Other egress is denied.
	if v := sw.Process(header(0xc0a80002, 0x02020202, 6, 5353, 9999), 0); v.Action != flowtable.Drop {
		t.Errorf("other egress: %v, want deny", v.Action)
	}
	// Ingress still behaves: web traffic to the tenant allowed.
	if v := sw.Process(header(0x08080808, 0xc0a80002, 6, 50000, 80), 0); v.Action != flowtable.Allow {
		t.Errorf("ingress web: %v, want allow", v.Action)
	}
}

// TestEgressExpandsTupleSpace: an egress policy filtering on ip_dst makes
// the destination address a provable field, multiplying attainable masks
// (§7's ~200k figure). We verify the mechanism at small scale: attack
// traffic from the tenant with randomised destinations spawns
// dst-prefix × port-prefix mask combinations.
func TestEgressExpandsTupleSpace(t *testing.T) {
	h, err := NewHypervisor(Calico)
	if err != nil {
		t.Fatal(err)
	}
	tn := &Tenant{Name: "t", IP: 0xc0a80002,
		ACL: tenantACL(flowtable.SipDp), EgressACL: egressACL()}
	if err := h.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	sw := h.Switch()
	l := bitvec.IPv4Tuple
	dip, _ := l.FieldIndex("ip_dst")
	dp, _ := l.FieldIndex("tp_dst")
	base := header(0xc0a80002, 0x01010101, 6, 5353, 53)
	for d := 0; d < 32; d++ {
		for p := 0; p < 16; p++ {
			pkt := base.Clone()
			pkt.FlipFieldBit(l, dip, d)
			pkt.FlipFieldBit(l, dp, p)
			sw.Process(pkt, 0)
		}
	}
	if got := sw.MFC().MaskCount(); got < 400 {
		t.Errorf("egress attack spawned %d masks, want ~512 (dst×port product)", got)
	}
}
