// Package cloud models the multi-tenant environment of the paper's threat
// model (§3.1, Fig. 7): tenants lease workloads on shared hypervisors and
// configure per-tenant ACLs through a cloud management system (CMS) API.
// The per-tenant "virtual switches" are an abstraction — every workload
// scheduled to the same hypervisor shares one software switch and hence
// one megaflow cache, which is exactly what the co-located TSE attack
// exploits (§3.3).
//
// The CMS layer reproduces §7's API restrictions: which header fields a
// tenant security policy may filter on bounds the attainable mask count
// (OpenStack/Kubernetes: source address + destination port, ~512 masks;
// Calico ingress adds the source port, ~8192; Calico egress adds the
// destination address, ~200k).
package cloud

import (
	"fmt"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

// CMS describes a cloud management system's security-policy API.
type CMS struct {
	// Name labels the system.
	Name string
	// IngressFields are the IPv4Tuple field names an ingress policy may
	// filter on.
	IngressFields []string
	// EgressFields are the additional fields egress policies may use
	// (nil if the CMS has no egress policies worth modelling).
	EgressFields []string
}

// The §7 CMS profiles.
var (
	// OpenStack security groups: ingress filters on remote (source)
	// address and destination port [15, 70].
	OpenStack = CMS{
		Name:          "OpenStack",
		IngressFields: []string{"ip_src", "tp_dst"},
	}
	// Kubernetes NetworkPolicy: same filtering surface by default.
	Kubernetes = CMS{
		Name:          "Kubernetes",
		IngressFields: []string{"ip_src", "tp_dst"},
	}
	// Calico extends ingress with the source port and egress with the
	// destination address (§7).
	Calico = CMS{
		Name:          "Calico",
		IngressFields: []string{"ip_src", "tp_src", "tp_dst"},
		EgressFields:  []string{"ip_dst"},
	}
)

// MaxMasks returns the §7 back-of-envelope attainable mask bound for the
// CMS: the product of the filterable fields' bit widths (ingress only, or
// ingress+egress).
func (c CMS) MaxMasks(includeEgress bool) int {
	fields := append([]string(nil), c.IngressFields...)
	if includeEgress {
		fields = append(fields, c.EgressFields...)
	}
	prod := 1
	for _, name := range fields {
		i, ok := bitvec.IPv4Tuple.FieldIndex(name)
		if !ok {
			panic("cloud: CMS references unknown field " + name)
		}
		prod *= bitvec.IPv4Tuple.Field(i).Width
	}
	return prod
}

// ValidateACL checks that every non-catch-all rule of the tenant ACL
// filters only on fields the CMS ingress API exposes.
func (c CMS) ValidateACL(tbl *flowtable.Table) error {
	l := tbl.Layout()
	allowed := make(map[int]bool)
	for _, name := range c.IngressFields {
		i, ok := l.FieldIndex(name)
		if !ok {
			return fmt.Errorf("cloud: layout lacks CMS field %q", name)
		}
		allowed[i] = true
	}
	for _, r := range tbl.Rules() {
		for f := 0; f < l.NumFields(); f++ {
			constrained := false
			for i := 0; i < l.Field(f).Width; i++ {
				if r.Mask.FieldBit(l, f, i) {
					constrained = true
					break
				}
			}
			if constrained && !allowed[f] {
				return fmt.Errorf("cloud: %s does not allow filtering on %q (rule %q)",
					c.Name, l.Field(f).Name, r.Name)
			}
		}
	}
	return nil
}

// ValidateEgressACL checks an egress policy against the CMS: the egress
// field set is the ingress set plus EgressFields (§7: Calico egress
// policies add the destination address).
func (c CMS) ValidateEgressACL(tbl *flowtable.Table) error {
	if c.EgressFields == nil {
		return fmt.Errorf("cloud: %s has no egress policy support", c.Name)
	}
	wide := CMS{
		Name:          c.Name + "-egress",
		IngressFields: append(append([]string(nil), c.IngressFields...), c.EgressFields...),
	}
	return wide.ValidateACL(tbl)
}

// Tenant is one cloud customer with a workload IP and an ACL.
type Tenant struct {
	// Name identifies the tenant.
	Name string
	// IP is the tenant workload's address; the hypervisor applies the
	// tenant's ACL to traffic destined to it.
	IP uint32
	// ACL is the tenant's ingress policy over the IPv4 5-tuple, with
	// single-field rules as the CMS APIs produce. Its final catch-all (if
	// any) is rewritten to a tenant-scoped DefaultDeny.
	ACL *flowtable.Table
	// EgressACL optionally filters traffic *from* the tenant's workload
	// (scoped by source address instead of destination). Only CMSes with
	// EgressFields accept it; its extra filterable field is what pushes
	// the §7 attainable masks towards ~200k.
	EgressACL *flowtable.Table
}

// Hypervisor hosts tenants behind one shared software switch — the Fig. 7
// "Server 1" whose MFC the attacker and victim share.
type Hypervisor struct {
	cms     CMS
	layout  *bitvec.Layout
	tenants []*Tenant
	sw      *vswitch.Switch
}

// NewHypervisor builds an empty hypervisor enforcing the CMS API.
func NewHypervisor(cms CMS) (*Hypervisor, error) {
	l := bitvec.IPv4Tuple
	tbl := flowtable.New(l)
	// With no tenants everything is dropped.
	tbl.MustAdd(&flowtable.Rule{Name: "default-deny", Priority: -1,
		Action: flowtable.Drop, Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		return nil, err
	}
	return &Hypervisor{cms: cms, layout: l, sw: sw}, nil
}

// Switch exposes the shared software switch (the device under test).
func (h *Hypervisor) Switch() *vswitch.Switch { return h.sw }

// CMS returns the hypervisor's management system profile.
func (h *Hypervisor) CMS() CMS { return h.cms }

// AddTenant installs a tenant and its ACL. The ACL is validated against
// the CMS API, then compiled into the shared flow table with every rule
// scoped to the tenant's destination address — the per-tenant virtual
// switch abstraction over one physical table (§3.3).
func (h *Hypervisor) AddTenant(t *Tenant) error {
	if t.ACL == nil {
		return fmt.Errorf("cloud: tenant %q has no ACL", t.Name)
	}
	if t.ACL.Layout() != h.layout {
		return fmt.Errorf("cloud: tenant %q ACL uses a different layout", t.Name)
	}
	if err := h.cms.ValidateACL(t.ACL); err != nil {
		return err
	}
	if t.EgressACL != nil {
		if t.EgressACL.Layout() != h.layout {
			return fmt.Errorf("cloud: tenant %q egress ACL uses a different layout", t.Name)
		}
		if err := h.cms.ValidateEgressACL(t.EgressACL); err != nil {
			return err
		}
	}
	for _, other := range h.tenants {
		if other.IP == t.IP {
			return fmt.Errorf("cloud: tenant IP %#x already in use by %q", t.IP, other.Name)
		}
		if other.Name == t.Name {
			return fmt.Errorf("cloud: tenant %q already exists", t.Name)
		}
	}
	h.tenants = append(h.tenants, t)
	return h.recompile()
}

// RemoveTenant deletes a tenant and recompiles the shared table.
func (h *Hypervisor) RemoveTenant(name string) error {
	for i, t := range h.tenants {
		if t.Name == name {
			h.tenants = append(h.tenants[:i], h.tenants[i+1:]...)
			return h.recompile()
		}
	}
	return fmt.Errorf("cloud: no tenant %q", name)
}

// Tenants returns the installed tenants.
func (h *Hypervisor) Tenants() []*Tenant { return h.tenants }

// recompile rebuilds the shared flow table: each tenant rule is AND-ed
// with an exact match on the tenant's destination IP, and a global
// DefaultDeny backstops everything.
func (h *Hypervisor) recompile() error {
	l := h.layout
	dip, _ := l.FieldIndex("ip_dst")
	sip, _ := l.FieldIndex("ip_src")
	tbl := flowtable.New(l)
	for ti, t := range h.tenants {
		scope := func(field int, acl *flowtable.Table, kind string, prioBase int) {
			scopeKey := bitvec.NewVec(l)
			scopeKey.SetField(l, field, uint64(t.IP))
			scopeMask := bitvec.FieldMask(l, field)
			for ri, r := range acl.Rules() {
				tbl.MustAdd(&flowtable.Rule{
					Name:     fmt.Sprintf("%s/%s%s", t.Name, kind, r.Name),
					Priority: prioBase + (acl.Len() - ri),
					Action:   r.Action,
					OutPort:  r.OutPort,
					Key:      r.Key.Or(scopeKey),
					Mask:     r.Mask.Or(scopeMask),
				})
			}
		}
		// Ingress: scoped by destination; egress: scoped by source.
		scope(dip, t.ACL, "", 2000*(len(h.tenants)-ti)+1000)
		if t.EgressACL != nil {
			scope(sip, t.EgressACL, "egress-", 2000*(len(h.tenants)-ti))
		}
	}
	tbl.MustAdd(&flowtable.Rule{Name: "default-deny", Priority: -1,
		Action: flowtable.Drop, Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	_, err := h.sw.ReplaceTable(tbl)
	return err
}
