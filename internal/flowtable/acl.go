package flowtable

import (
	"fmt"
	"strings"

	"tse/internal/bitvec"
)

// This file constructs the paper's example ACLs so that tests, examples,
// benchmarks, and the attack generators all share one definition.

// Fig1 returns the sample flow table of Fig. 1: over the 3-bit HYP
// protocol, allow header 001 and deny everything else
// ("Whitelist+DefaultDeny").
func Fig1() *Table {
	t := New(bitvec.HYP)
	t.MustAdd(&Rule{Name: "#1", Priority: 10, Action: Allow,
		Key: fieldVal(bitvec.HYP, 0, 1), Mask: bitvec.FieldMask(bitvec.HYP, 0)})
	t.MustAdd(&Rule{Name: "#2", Priority: 0, Action: Drop,
		Key: bitvec.NewVec(bitvec.HYP), Mask: bitvec.NewVec(bitvec.HYP)})
	return t
}

// Fig4 returns the two-header ACL of Fig. 4: allow HYP=001 (any HYP2),
// allow HYP2=1111 (any HYP), deny the rest.
func Fig4() *Table {
	l := bitvec.HYP2
	t := New(l)
	t.MustAdd(&Rule{Name: "#1", Priority: 20, Action: Allow,
		Key: fieldVal(l, 0, 1), Mask: bitvec.FieldMask(l, 0)})
	t.MustAdd(&Rule{Name: "#2", Priority: 10, Action: Allow,
		Key: fieldVal(l, 1, 0xf), Mask: bitvec.FieldMask(l, 1)})
	t.MustAdd(&Rule{Name: "#3", Priority: 0, Action: Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	return t
}

// ACLParams parameterises the Fig. 6-style tenant ACL. Zero value gives
// the paper's literal example: allow dst port 80, allow source
// 10.0.0.1, allow src port 12345, default deny.
type ACLParams struct {
	// SrcIP is the allowed source address of rule #2 (default 10.0.0.1).
	SrcIP uint32
	// SrcPort is the allowed transport source port of rule #3
	// (default 12345).
	SrcPort uint16
	// DstPort is the allowed transport destination port of rule #1
	// (default 80).
	DstPort uint16
}

func (p ACLParams) withDefaults() ACLParams {
	if p.SrcIP == 0 {
		p.SrcIP = 0x0a000001 // 10.0.0.1
	}
	if p.SrcPort == 0 {
		p.SrcPort = 12345
	}
	if p.DstPort == 0 {
		p.DstPort = 80
	}
	return p
}

// UseCase names the evaluation scenarios of §5.2, each a subset of the
// Fig. 6 ACL and a set of header fields the adversarial trace targets.
type UseCase int

const (
	// Baseline: rule #1 + DefaultDeny, benign traffic only. 1 MFC mask.
	Baseline UseCase = iota
	// Dp attacks the 16-bit destination port (rules #1, #4). ~17 masks.
	Dp
	// SpDp attacks source and destination ports (rules #1, #3, #4).
	// ~16*16 = 256 masks.
	SpDp
	// SipDp attacks source IP and destination port (rules #1, #2, #4).
	// ~32*16 = 512 masks.
	SipDp
	// SipSpDp is the full-blown attack on all three fields (Fig. 6).
	// ~32*16*16 = 8192 masks.
	SipSpDp
)

// String returns the scenario name as used in the paper's figures.
func (u UseCase) String() string {
	switch u {
	case Baseline:
		return "Baseline"
	case Dp:
		return "Dp"
	case SpDp:
		return "SpDp"
	case SipDp:
		return "SipDp"
	case SipSpDp:
		return "SipSpDp"
	default:
		return fmt.Sprintf("UseCase(%d)", int(u))
	}
}

// UseCases lists all scenarios in the order the paper presents them.
var UseCases = []UseCase{Baseline, Dp, SpDp, SipDp, SipSpDp}

// ParseUseCase resolves a scenario name case-insensitively ("sipdp" ->
// SipDp). Used by the CLI tools.
func ParseUseCase(s string) (UseCase, error) {
	for _, u := range UseCases {
		if strings.EqualFold(u.String(), s) {
			return u, nil
		}
	}
	return 0, fmt.Errorf("flowtable: unknown use case %q (want Baseline, Dp, SpDp, SipDp, or SipSpDp)", s)
}

// Fig6 returns the full ACL of Fig. 6 over the IPv4 5-tuple.
func Fig6() *Table { return UseCaseACL(SipSpDp, ACLParams{}) }

// UseCaseACL builds the ACL for one §5.2 scenario. The returned table
// always ends in the DefaultDeny rule #4.
func UseCaseACL(u UseCase, p ACLParams) *Table {
	p = p.withDefaults()
	l := bitvec.IPv4Tuple
	t := New(l)
	sip, _ := l.FieldIndex("ip_src")
	sp, _ := l.FieldIndex("tp_src")
	dp, _ := l.FieldIndex("tp_dst")

	// Rule #1: * * 80 -> allow (present in every scenario).
	t.MustAdd(&Rule{Name: "#1", Priority: 40, Action: Allow,
		Key: fieldVal(l, dp, uint64(p.DstPort)), Mask: bitvec.FieldMask(l, dp)})

	if u == SipDp || u == SipSpDp {
		// Rule #2: 10.0.0.1 * * -> allow.
		t.MustAdd(&Rule{Name: "#2", Priority: 30, Action: Allow,
			Key: fieldVal(l, sip, uint64(p.SrcIP)), Mask: bitvec.FieldMask(l, sip)})
	}
	if u == SpDp || u == SipSpDp {
		// Rule #3: * 12345 * -> allow.
		t.MustAdd(&Rule{Name: "#3", Priority: 20, Action: Allow,
			Key: fieldVal(l, sp, uint64(p.SrcPort)), Mask: bitvec.FieldMask(l, sp)})
	}

	// Rule #4: * * * -> deny.
	t.MustAdd(&Rule{Name: "#4", Priority: 0, Action: Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	return t
}

// TargetFields returns the layout field indices the adversarial trace
// randomises/inverts for the scenario (§5.2): the fields the ACL's allow
// rules match on, excluding rule #1's destination port for Baseline where
// no attack traffic is sent.
func TargetFields(u UseCase) []string {
	switch u {
	case Baseline:
		return nil
	case Dp:
		return []string{"tp_dst"}
	case SpDp:
		return []string{"tp_src", "tp_dst"}
	case SipDp:
		return []string{"ip_src", "tp_dst"}
	case SipSpDp:
		return []string{"ip_src", "tp_src", "tp_dst"}
	default:
		return nil
	}
}

// DenyMaskProduct returns the paper's back-of-envelope attainable deny-mask
// count for a scenario: the product of targeted field widths (Thm. 4.2 with
// k_i = w_i). Dp: 16, SpDp: 256, SipDp: 512, SipSpDp: 8192.
func DenyMaskProduct(u UseCase) int {
	prod := 1
	for _, name := range TargetFields(u) {
		i, ok := bitvec.IPv4Tuple.FieldIndex(name)
		if !ok {
			panic("flowtable: unknown target field " + name)
		}
		prod *= bitvec.IPv4Tuple.Field(i).Width
	}
	if u == Baseline {
		return 1
	}
	return prod
}

// fieldVal builds a key with field f set to val and all else zero.
func fieldVal(l *bitvec.Layout, f int, val uint64) bitvec.Vec {
	v := bitvec.NewVec(l)
	v.SetField(l, f, val)
	return v
}
