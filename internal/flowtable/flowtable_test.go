package flowtable

import (
	"math/rand"
	"testing"

	"tse/internal/bitvec"
)

func hypHeader(val uint64) bitvec.Vec {
	h := bitvec.NewVec(bitvec.HYP)
	h.SetField(bitvec.HYP, 0, val)
	return h
}

func TestFig1Semantics(t *testing.T) {
	tbl := Fig1()
	for val := uint64(0); val < 8; val++ {
		r := tbl.Lookup(hypHeader(val))
		if r == nil {
			t.Fatalf("no rule matched %03b; DefaultDeny missing", val)
		}
		want := Drop
		if val == 1 {
			want = Allow
		}
		if r.Action != want {
			t.Errorf("header %03b -> %v, want %v", val, r.Action, want)
		}
	}
}

func TestFig4Semantics(t *testing.T) {
	tbl := Fig4()
	l := bitvec.HYP2
	h := bitvec.NewVec(l)
	for hyp := uint64(0); hyp < 8; hyp++ {
		for hyp2 := uint64(0); hyp2 < 16; hyp2++ {
			h.SetField(l, 0, hyp)
			h.SetField(l, 1, hyp2)
			r := tbl.Lookup(h)
			want := Drop
			if hyp == 1 || hyp2 == 0xf {
				want = Allow
			}
			if r.Action != want {
				t.Errorf("header %03b|%04b -> %v, want %v", hyp, hyp2, r.Action, want)
			}
		}
	}
}

func TestPriorityAndTieBreak(t *testing.T) {
	l := bitvec.HYP
	tbl := New(l)
	// Two overlapping all-wildcard rules at equal priority: first added wins.
	tbl.MustAdd(&Rule{Name: "first", Priority: 5, Action: Allow,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	tbl.MustAdd(&Rule{Name: "second", Priority: 5, Action: Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	if r := tbl.Lookup(hypHeader(3)); r.Name != "first" {
		t.Errorf("tie broken wrongly: got %q", r.Name)
	}
	// A higher-priority rule added later still wins.
	k, m := bitvec.MustPattern(l, "011")
	tbl.MustAdd(&Rule{Name: "hi", Priority: 9, Action: Drop, Key: k, Mask: m})
	if r := tbl.Lookup(hypHeader(3)); r.Name != "hi" {
		t.Errorf("priority ignored: got %q", r.Name)
	}
}

func TestSection21OverlapExample(t *testing.T) {
	// §2.1: a packet from 10.0.0.1, sport 34521, dport 443 matches both
	// rule #2 and the DefaultDeny in the Fig. 6 ACL, and #2 must win.
	tbl := Fig6()
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	sip, _ := l.FieldIndex("ip_src")
	sp, _ := l.FieldIndex("tp_src")
	dp, _ := l.FieldIndex("tp_dst")
	h.SetField(l, sip, 0x0a000001)
	h.SetField(l, sp, 34521)
	h.SetField(l, dp, 443)
	r := tbl.Lookup(h)
	if r == nil || r.Name != "#2" || r.Action != Allow {
		t.Fatalf("lookup = %+v, want rule #2 allow", r)
	}
	if tbl.IsOrderIndependent() {
		t.Error("Fig. 6 ACL reported order-independent; its rules overlap")
	}
	if len(tbl.Overlapping()) == 0 {
		t.Error("Overlapping() found no pairs in Fig. 6 ACL")
	}
}

func TestOrderIndependentTable(t *testing.T) {
	// The Fig. 3 megaflow set, loaded as a flow table, is disjoint.
	l := bitvec.HYP
	tbl := New(l)
	for i, pat := range []string{"001", "1**", "01*", "000"} {
		k, m := bitvec.MustPattern(l, pat)
		a := Drop
		if i == 0 {
			a = Allow
		}
		tbl.MustAdd(&Rule{Name: pat, Priority: 1, Action: a, Key: k, Mask: m})
	}
	if !tbl.IsOrderIndependent() {
		t.Error("Fig. 3 entry set must be order-independent")
	}
}

func TestAddRejectsNonCanonicalKey(t *testing.T) {
	l := bitvec.HYP
	tbl := New(l)
	key := bitvec.NewVec(l)
	key.SetField(l, 0, 7)
	mask := bitvec.NewVec(l) // all wildcard, but key has bits
	if err := tbl.Add(&Rule{Name: "bad", Key: key, Mask: mask}); err == nil {
		t.Error("non-canonical key accepted")
	}
	wrong := make(bitvec.Vec, 9)
	if err := tbl.Add(&Rule{Name: "len", Key: wrong, Mask: wrong}); err == nil {
		t.Error("wrong-length vectors accepted")
	}
}

func TestAddPattern(t *testing.T) {
	tbl := New(bitvec.HYP2)
	if err := tbl.AddPattern("p", "001|****", 5, Allow); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddPattern("bad", "001", 5, Allow); err == nil {
		t.Error("short pattern accepted")
	}
	h := bitvec.NewVec(bitvec.HYP2)
	h.SetField(bitvec.HYP2, 0, 1)
	h.SetField(bitvec.HYP2, 1, 9)
	if r := tbl.Lookup(h); r == nil || r.Name != "p" {
		t.Error("pattern rule did not match")
	}
}

func TestLookupNoMatch(t *testing.T) {
	tbl := New(bitvec.HYP)
	k, m := bitvec.MustPattern(bitvec.HYP, "111")
	tbl.MustAdd(&Rule{Name: "only", Priority: 1, Action: Allow, Key: k, Mask: m})
	if r := tbl.Lookup(hypHeader(0)); r != nil {
		t.Errorf("expected no match, got %q", r.Name)
	}
}

func TestUseCaseACLShapes(t *testing.T) {
	wantRules := map[UseCase]int{Baseline: 2, Dp: 2, SpDp: 3, SipDp: 3, SipSpDp: 4}
	for _, u := range UseCases {
		tbl := UseCaseACL(u, ACLParams{})
		if got := tbl.Len(); got != wantRules[u] {
			t.Errorf("%v: %d rules, want %d", u, got, wantRules[u])
		}
		// Every scenario must end in DefaultDeny.
		last := tbl.Rules()[tbl.Len()-1]
		if last.Action != Drop || !last.Mask.IsZero() {
			t.Errorf("%v: last rule is not DefaultDeny", u)
		}
	}
}

func TestDenyMaskProduct(t *testing.T) {
	want := map[UseCase]int{Baseline: 1, Dp: 16, SpDp: 256, SipDp: 512, SipSpDp: 8192}
	for u, w := range want {
		if got := DenyMaskProduct(u); got != w {
			t.Errorf("DenyMaskProduct(%v) = %d, want %d (§5.2)", u, got, w)
		}
	}
}

func TestUseCaseStrings(t *testing.T) {
	if Baseline.String() != "Baseline" || SipSpDp.String() != "SipSpDp" {
		t.Error("UseCase names wrong")
	}
	if UseCase(99).String() != "UseCase(99)" {
		t.Error("unknown UseCase formatting wrong")
	}
	if Drop.String() != "deny" || Allow.String() != "allow" || Forward.String() != "forward" {
		t.Error("Action names do not match the paper's figures")
	}
}

func TestParseUseCase(t *testing.T) {
	for _, u := range UseCases {
		got, err := ParseUseCase(u.String())
		if err != nil || got != u {
			t.Errorf("ParseUseCase(%q) = %v, %v", u.String(), got, err)
		}
	}
	if got, err := ParseUseCase("sipspdp"); err != nil || got != SipSpDp {
		t.Errorf("case-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := ParseUseCase("bogus"); err == nil {
		t.Error("bogus use case accepted")
	}
}

func TestTableString(t *testing.T) {
	s := Fig1().String()
	if s == "" {
		t.Fatal("empty table rendering")
	}
}

// Property: flow-table lookup over random tables equals a naive
// reference implementation.
func TestLookupMatchesReference(t *testing.T) {
	l := bitvec.IPv4Tuple
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		tbl := New(l)
		type ref struct {
			r *Rule
		}
		var rules []*Rule
		for i := 0; i < 30; i++ {
			key, mask := bitvec.NewVec(l), bitvec.NewVec(l)
			for f := 0; f < l.NumFields(); f++ {
				if rng.Intn(2) == 0 {
					continue
				}
				plen := rng.Intn(l.Field(f).Width) + 1
				for b := 0; b < plen; b++ {
					mask.SetFieldBit(l, f, b)
					if rng.Intn(2) == 1 {
						key.SetFieldBit(l, f, b)
					}
				}
			}
			r := &Rule{Name: "r", Priority: rng.Intn(5), Action: Action(rng.Intn(2)),
				Key: key, Mask: mask}
			tbl.MustAdd(r)
			rules = append(rules, r)
		}
		_ = ref{}
		for n := 0; n < 200; n++ {
			h := bitvec.NewVec(l)
			for f := 0; f < l.NumFields(); f++ {
				h.SetField(l, f, rng.Uint64())
			}
			got := tbl.Lookup(h)
			// Reference: scan table's own sorted order — instead recompute
			// best by priority/seq from the raw rule list.
			var best *Rule
			for _, r := range rules {
				if !r.Matches(h) {
					continue
				}
				if best == nil || r.Priority > best.Priority ||
					(r.Priority == best.Priority && r.seq < best.seq) {
					best = r
				}
			}
			if got != best {
				t.Fatalf("Lookup disagrees with reference: got %v want %v", got, best)
			}
		}
	}
}
