// Package flowtable implements the slow-path flow table of a software
// switch (§2.1 of the paper): an ordered set of wildcard rules with
// priorities and actions. The flow table is the authoritative packet
// classification; the fast-path caches (microflow and megaflow, packages
// microflow and tss) only memoise its decisions.
//
// Rules may overlap; the highest-priority matching rule wins, with earlier
// insertion breaking priority ties (matching OpenFlow semantics). A table
// whose rules are pairwise disjoint is order-independent (§2.1); the
// IsOrderIndependent method checks this.
package flowtable

import (
	"fmt"
	"sort"
	"strings"

	"tse/internal/bitvec"
)

// Action is what the switch does with a matching packet. The paper's ACLs
// use allow and deny; Forward carries an output port for the switching
// examples.
type Action int

const (
	// Drop discards the packet (the paper's "deny").
	Drop Action = iota
	// Allow admits the packet (delivery decided elsewhere).
	Allow
	// Forward sends the packet to the port in Rule.OutPort.
	Forward
)

// String returns the action name as the paper's figures print it.
func (a Action) String() string {
	switch a {
	case Drop:
		return "deny"
	case Allow:
		return "allow"
	case Forward:
		return "forward"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Rule is one flow: a wildcard match (key under mask) plus an action.
type Rule struct {
	// Name optionally labels the rule for diagnostics ("#1", "web-allow").
	Name string
	// Priority orders rules; higher matches first. Rules inserted earlier
	// win ties.
	Priority int
	// Key and Mask define the match: a packet h matches iff
	// h AND Mask == Key. Key must be canonical (Key ⊆ Mask).
	Key, Mask bitvec.Vec
	// Action taken on match.
	Action Action
	// OutPort is the destination port for Forward actions.
	OutPort int

	seq int // insertion sequence for tie-breaking
}

// Matches reports whether header h matches the rule.
func (r *Rule) Matches(h bitvec.Vec) bool {
	return bitvec.Covers(r.Key, r.Mask, h)
}

// Format renders the rule in the style of the paper's figures:
// "001 -> allow" with '*' for wildcarded bits.
func (r *Rule) Format(l *bitvec.Layout) string {
	return fmt.Sprintf("%s -> %s", bitvec.FormatMasked(l, r.Key, r.Mask), r.Action)
}

// Table is a priority-ordered flow table over one header layout.
type Table struct {
	layout *bitvec.Layout
	rules  []*Rule // kept sorted: priority desc, then seq asc
	nextSq int
}

// New creates an empty flow table for the layout.
func New(l *bitvec.Layout) *Table {
	return &Table{layout: l}
}

// Layout returns the table's header layout.
func (t *Table) Layout() *bitvec.Layout { return t.layout }

// Len returns the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns the rules in match order (highest priority first). The
// returned slice must not be modified.
func (t *Table) Rules() []*Rule { return t.rules }

// Add installs a rule. It returns an error if the key is not canonical
// (has bits outside the mask) or the vectors have the wrong length.
func (t *Table) Add(r *Rule) error {
	if len(r.Key) != t.layout.Words() || len(r.Mask) != t.layout.Words() {
		return fmt.Errorf("flowtable: rule %q has wrong vector length", r.Name)
	}
	if !r.Key.SubsetOf(r.Mask) {
		return fmt.Errorf("flowtable: rule %q key has bits outside its mask", r.Name)
	}
	r.seq = t.nextSq
	t.nextSq++
	t.rules = append(t.rules, r)
	sort.SliceStable(t.rules, func(i, j int) bool {
		if t.rules[i].Priority != t.rules[j].Priority {
			return t.rules[i].Priority > t.rules[j].Priority
		}
		return t.rules[i].seq < t.rules[j].seq
	})
	return nil
}

// MustAdd is Add that panics on error, for fixture construction.
func (t *Table) MustAdd(r *Rule) {
	if err := t.Add(r); err != nil {
		panic(err)
	}
}

// AddPattern installs a rule given a figure-style pattern ("001|1111",
// '*' wildcards). Convenience for tests and the paper's example ACLs.
func (t *Table) AddPattern(name, pattern string, prio int, action Action) error {
	key, mask, err := bitvec.ParsePattern(t.layout, pattern)
	if err != nil {
		return err
	}
	return t.Add(&Rule{Name: name, Priority: prio, Key: key, Mask: mask, Action: action})
}

// Lookup returns the highest-priority rule matching h, or nil if none
// matches. A table with a DefaultDeny catch-all never returns nil.
func (t *Table) Lookup(h bitvec.Vec) *Rule {
	for _, r := range t.rules {
		if r.Matches(h) {
			return r
		}
	}
	return nil
}

// IsOrderIndependent reports whether all rules are pairwise disjoint, in
// which case priorities are irrelevant (§2.1).
func (t *Table) IsOrderIndependent() bool {
	for i := 0; i < len(t.rules); i++ {
		for j := i + 1; j < len(t.rules); j++ {
			a, b := t.rules[i], t.rules[j]
			if bitvec.Overlap(a.Key, a.Mask, b.Key, b.Mask) {
				return false
			}
		}
	}
	return true
}

// Overlapping returns every pair of overlapping rules, useful in
// diagnostics and tests (e.g. verifying the Fig. 6 ACL's rules #1 and #2
// overlap as discussed in §2.1).
func (t *Table) Overlapping() [][2]*Rule {
	var out [][2]*Rule
	for i := 0; i < len(t.rules); i++ {
		for j := i + 1; j < len(t.rules); j++ {
			a, b := t.rules[i], t.rules[j]
			if bitvec.Overlap(a.Key, a.Mask, b.Key, b.Mask) {
				out = append(out, [2]*Rule{a, b})
			}
		}
	}
	return out
}

// String renders the whole table figure-style, one rule per line.
func (t *Table) String() string {
	var b strings.Builder
	for i, r := range t.rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-8s %s", r.Name, r.Format(t.layout))
	}
	return b.String()
}
