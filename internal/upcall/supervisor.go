package upcall

// The handler supervisor: the self-healing layer of the slow path.
//
// Goroutine mode — every handler goroutine is wrapped in panic recovery
// and tracked by a handlerRun carrying heartbeat/busy timestamps. A panic
// kills only that handler: its popped-but-unresolved burst is orphaned
// (requeued, or failed with the orphan verdict) and the slot respawned.
// When StallTimeout > 0 a supervisor goroutine additionally watches the
// busy timestamps and declares a handler dead once a single burst has been
// in flight longer than StallTimeout: the wedged goroutine is abandoned as
// a zombie (it may still finish — resolution is idempotent, so whichever
// of zombie and requeued copy lands first wins), its orphans returned, and
// a fresh handler spawned in its slot. Stop's drain is bounded by
// StopTimeout: past it, still-wedged handlers are abandoned and counted
// rather than hanging shutdown forever.
//
// Drive mode — no goroutines exist, so the same failure modes are modelled
// against the virtual clock: a scheduled panic orphans one round-robin
// burst and removes the handler's 1/ModelledHandlers service share for a
// tick; a scheduled stall removes the share until the stall ends or the
// modelled supervisor's StallTimeoutSec detection fires, whichever is
// first. This keeps chaos runs bit-for-bit deterministic.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tse/internal/telemetry"
)

// handlerRun is one spawn of one handler slot. A slot can be respawned
// many times (generations); abandoned marks a zombie whose slot has been
// handed to a newer generation.
type handlerRun struct {
	slot      int
	gen       uint64
	heartbeat atomic.Int64 // wall nanos of the last liveness beat
	busySince atomic.Int64 // wall nanos the in-flight burst started; 0 = idle
	abandoned atomic.Bool
	exited    atomic.Bool
}

// HandlerState is one handler's liveness snapshot (observability and the
// supervisor tests).
type HandlerState struct {
	// Slot is the handler slot; Gen counts respawns into it (1 = the
	// original spawn of the subsystem's lifetime counter).
	Slot int
	Gen  uint64
	// LastBeatNanos is the wall clock of the most recent heartbeat;
	// BusyNanos is how long the current burst has been in flight (0 when
	// idle); Abandoned marks a zombie superseded by a newer generation.
	LastBeatNanos, BusyNanos int64
	Abandoned                bool
}

// HandlerStates snapshots the current generation of handler goroutines;
// nil when not started.
func (u *Subsystem) HandlerStates() []HandlerState {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.runs == nil {
		return nil
	}
	now := time.Now().UnixNano()
	out := make([]HandlerState, 0, len(u.runs))
	for _, r := range u.runs {
		if r == nil {
			continue
		}
		hs := HandlerState{
			Slot:          r.slot,
			Gen:           r.gen,
			LastBeatNanos: r.heartbeat.Load(),
			Abandoned:     r.abandoned.Load(),
		}
		if busy := r.busySince.Load(); busy != 0 {
			hs.BusyNanos = now - busy
		}
		out = append(out, hs)
	}
	return out
}

// Start launches the handler goroutines (Options.Handlers, default 1)
// under supervision, and — when StallTimeout > 0 — the stall-detection
// watchdog. Handlers drain the queues round-robin, blocking while idle,
// until Stop.
func (u *Subsystem) Start() {
	u.mu.Lock()
	if u.started {
		u.mu.Unlock()
		return
	}
	u.started = true
	u.stopped = false
	n := u.opts.Handlers
	if n <= 0 {
		n = 1
	}
	u.wg = &sync.WaitGroup{}
	u.runs = make([]*handlerRun, n)
	u.inflight = make(map[*handlerRun][]item)
	for i := 0; i < n; i++ {
		u.runs[i] = u.spawnLocked(i)
	}
	var supStop chan struct{}
	if u.opts.StallTimeout > 0 {
		supStop = make(chan struct{})
		u.supStop = supStop
	}
	u.mu.Unlock()
	if supStop != nil {
		go u.superviseLoop(supStop)
	}
}

// spawnLocked launches a fresh handler generation into slot. Callers hold
// u.mu.
func (u *Subsystem) spawnLocked(slot int) *handlerRun {
	u.gen++
	r := &handlerRun{slot: slot, gen: u.gen}
	r.heartbeat.Store(time.Now().UnixNano())
	u.wg.Add(1)
	go u.handlerLoop(r, u.wg)
	return r
}

// Stop wakes the handlers, lets them drain the remaining backlog, and
// joins them; outstanding tickets resolve before Stop returns. The drain
// is bounded: a handler still wedged mid-handle after StopTimeout is
// abandoned (Stats.HandlersAbandoned) with its in-flight upcalls failed by
// the orphan verdict — so Stop always returns and no waiter blocks
// forever on a dead handler. A stopped subsystem can be Started again.
func (u *Subsystem) Stop() {
	u.mu.Lock()
	if !u.started {
		u.mu.Unlock()
		return
	}
	u.stopped = true
	u.started = false
	wg := u.wg
	supStop := u.supStop
	u.supStop = nil
	u.cond.Broadcast()
	u.mu.Unlock()
	if supStop != nil {
		close(supStop)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	timeout := u.opts.StopTimeout
	if timeout <= 0 {
		timeout = DefaultStopTimeout
	}
	select {
	case <-done:
		return
	case <-time.After(timeout):
	}
	// Bounded drain expired: at least one handler is wedged inside
	// handleBatch. Abandon the stuck generations — failing their in-flight
	// upcalls so every waiter unblocks and no pending entry leaks — count
	// them, and return. The zombies exit whenever they unwedge (their
	// abandoned flag short-circuits the loop; resolution idempotence makes
	// their late verdicts no-ops).
	u.mu.Lock()
	for _, r := range u.runs {
		if r == nil || r.exited.Load() || r.abandoned.Load() {
			continue
		}
		r.abandoned.Store(true)
		u.stats.HandlersAbandoned++
		u.opts.Journal.Record(u.clock, telemetry.EvHandlerAbandoned, r.slot, 0)
		u.failOrphansLocked(u.inflight[r])
		delete(u.inflight, r)
	}
	u.cond.Broadcast()
	u.mu.Unlock()
}

// handlerLoop is one supervised handler goroutine: block while idle,
// otherwise pop a round-robin burst, register it in-flight, and resolve it
// as one batch (one classifier transaction per burst, see HandleN). On
// panic the loop exits through the supervisor path: orphans returned,
// slot respawned.
func (u *Subsystem) handlerLoop(r *handlerRun, wg *sync.WaitGroup) {
	defer func() {
		r.exited.Store(true)
		wg.Done()
	}()
	burst := u.burstSize()
	items := make([]item, 0, burst)
	for {
		u.mu.Lock()
		for u.depth == 0 && !u.stopped && !r.abandoned.Load() {
			u.cond.Wait()
		}
		if r.abandoned.Load() {
			u.mu.Unlock()
			return
		}
		items = u.popBurstLocked(items[:0], burst)
		if len(items) == 0 {
			u.mu.Unlock()
			return // stopped and drained
		}
		// Register the burst so a death between pop and resolve orphans
		// it instead of leaking its pending entries. Copied: items is the
		// loop's reusable buffer.
		owned := make([]item, len(items))
		copy(owned, items)
		u.inflight[r] = owned
		u.mu.Unlock()
		wall := time.Now().UnixNano()
		r.heartbeat.Store(wall)
		r.busySince.Store(wall)
		panicked := u.safeHandleBatch(r, items)
		r.busySince.Store(0)
		r.heartbeat.Store(time.Now().UnixNano())
		u.mu.Lock()
		owned = u.inflight[r]
		delete(u.inflight, r)
		if !panicked {
			if r.abandoned.Load() {
				// A zombie that just unwedged: its batch resolved (or was
				// already resolved by the replacement); exit quietly.
				u.mu.Unlock()
				return
			}
			u.mu.Unlock()
			continue
		}
		// The handler died mid-batch.
		if r.abandoned.Load() {
			u.mu.Unlock()
			return
		}
		u.stats.HandlerPanics++
		if u.tm != nil {
			u.tm.panics.Inc(0)
		}
		u.opts.Journal.Record(u.clock, telemetry.EvHandlerPanic, r.slot, int64(len(owned)))
		u.orphanRecordedLocked(r.slot, owned)
		if u.started && !u.stopped && !u.opts.DisableSupervisor {
			u.stats.HandlerRestarts++
			if u.tm != nil {
				u.tm.restarts.Inc(0)
			}
			u.opts.Journal.Record(u.clock, telemetry.EvHandlerRestart, r.slot, 0)
			u.runs[r.slot] = u.spawnLocked(r.slot)
		}
		u.mu.Unlock()
		return
	}
}

// safeHandleBatch runs one burst under panic recovery, applying the
// goroutine-mode fault hooks first: an injected stall blocks here (a real
// wedged goroutine, released by Plan.Release or abandoned by the
// supervisor), an injected panic dies here.
func (u *Subsystem) safeHandleBatch(r *handlerRun, items []item) (panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			panicked = true
		}
	}()
	if inj := u.opts.Injector; inj != nil {
		u.mu.Lock()
		now := u.clock
		u.mu.Unlock()
		if gate := inj.HandlerGate(r.slot, now); gate != nil {
			<-gate
		}
		if inj.HandlerPanicAt(r.slot, now) {
			panic(fmt.Sprintf("faults: injected panic in handler slot %d", r.slot))
		}
	}
	u.handleBatch(items)
	return false
}

// superviseLoop is the stall watchdog: every StallTimeout/4 it scans the
// handler runs for one whose current burst has been in flight longer than
// StallTimeout and replaces it.
func (u *Subsystem) superviseLoop(stop <-chan struct{}) {
	interval := u.opts.StallTimeout / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			u.checkStalls(time.Now().UnixNano())
		}
	}
}

// checkStalls declares dead every handler whose in-flight burst is older
// than StallTimeout: the zombie is abandoned, its orphans returned, and a
// fresh generation spawned into the slot.
func (u *Subsystem) checkStalls(wallNow int64) {
	limit := u.opts.StallTimeout.Nanoseconds()
	u.mu.Lock()
	defer u.mu.Unlock()
	if !u.started {
		return
	}
	for slot, r := range u.runs {
		if r == nil || r.abandoned.Load() || r.exited.Load() {
			continue
		}
		busy := r.busySince.Load()
		if busy == 0 || wallNow-busy < limit {
			continue
		}
		r.abandoned.Store(true)
		u.stats.StallsDetected++
		if u.tm != nil {
			u.tm.stalls.Inc(0)
		}
		u.opts.Journal.Record(u.clock, telemetry.EvHandlerStall, slot, 0)
		u.orphanRecordedLocked(slot, u.inflight[r])
		delete(u.inflight, r)
		u.stats.HandlerRestarts++
		if u.tm != nil {
			u.tm.restarts.Inc(0)
		}
		u.opts.Journal.Record(u.clock, telemetry.EvHandlerRestart, slot, 0)
		u.runs[slot] = u.spawnLocked(slot)
	}
}

// orphanLocked disposes of a dead handler's popped-but-unresolved upcalls:
// requeued at their source queues' tails (original enqueue stamps kept, so
// the extra wait is visible as residence), or failed with the orphan
// verdict under FailOrphans. Under DisableSupervisor they are dropped on
// the floor — the deliberate pending-table wedge of the chaos ablation,
// cleaned up only by ReapPending. Callers hold u.mu.
func (u *Subsystem) orphanLocked(items []item) int {
	if u.opts.FailOrphans {
		u.failOrphansLocked(items)
		return 0
	}
	n := 0
	for _, it := range items {
		if it.p == nil || it.p.resolved {
			continue
		}
		if u.opts.DisableSupervisor {
			continue
		}
		it.p.queued++
		u.enqueueLocked(it)
		u.stats.Requeued++
		if u.tm != nil {
			u.tm.requeued.Inc(0)
		}
		n++
	}
	return n
}

// orphanRecordedLocked is orphanLocked plus the journal entry for the
// requeue burst (slot attributes the dead handler). Callers hold u.mu.
func (u *Subsystem) orphanRecordedLocked(slot int, items []item) {
	if n := u.orphanLocked(items); n > 0 {
		u.opts.Journal.Record(u.clock, telemetry.EvOrphanRequeue, slot, int64(n))
	}
}

// failOrphansLocked resolves orphaned upcalls with the orphan verdict,
// releasing their waiters. Callers hold u.mu.
func (u *Subsystem) failOrphansLocked(items []item) {
	for _, it := range items {
		if it.p == nil || it.p.resolved {
			continue
		}
		it.p.resolved = true
		if u.pending[it.key] == it.p {
			delete(u.pending, it.key)
		}
		it.p.verdict = orphanVerdict()
		close(it.p.done)
		u.stats.OrphanFailed++
		if u.tm != nil {
			u.tm.orphanFailed.Inc(0)
		}
	}
}

// driveHandler is one modelled handler's fault state in drive mode.
type driveHandler struct {
	// deadUntil suspends the handler's service share for ticks < deadUntil;
	// detectAt is the tick the modelled supervisor's stall detection fires
	// at (0 = none pending).
	deadUntil, detectAt int64
}

// driveFaultsLocked applies the injector's schedule to the modelled
// handler fleet at drain tick now and returns the per-tick budget scaled
// by the surviving service capacity (alive/ModelledHandlers). A scheduled
// panic orphans one round-robin burst (the dying handler's in-flight work)
// and costs its share for the current tick; a scheduled stall costs the
// share until the stall ends or — supervised — StallTimeoutSec elapses and
// the slot is respawned. Callers hold u.mu.
func (u *Subsystem) driveFaultsLocked(max int, now int64) int {
	h := u.opts.ModelledHandlers
	if h <= 0 {
		h = 1
	}
	if u.driveH == nil {
		u.driveH = make([]driveHandler, h)
	}
	stallTO := u.opts.StallTimeoutSec
	if stallTO <= 0 {
		stallTO = DefaultStallTimeoutSec
	}
	inj := u.opts.Injector
	alive := 0
	for slot := range u.driveH {
		d := &u.driveH[slot]
		if until, ok := inj.HandlerStallAt(slot, now); ok {
			switch detect := now + stallTO; {
			case u.opts.DisableSupervisor:
				// Nobody watching: dead for the whole stall.
				d.deadUntil, d.detectAt = until, 0
			case detect < until:
				// The stall outlasts the detection horizon: the supervisor
				// declares the handler dead at detect and respawns it.
				d.deadUntil, d.detectAt = detect, detect
			default:
				// Short stall: over before detection would fire.
				d.deadUntil, d.detectAt = until, 0
			}
		}
		if inj.HandlerPanicAt(slot, now) {
			u.stats.HandlerPanics++
			if u.tm != nil {
				u.tm.panics.Inc(0)
			}
			burst := u.popBurstLocked(nil, u.burstSize())
			u.opts.Journal.Record(now, telemetry.EvHandlerPanic, slot, int64(len(burst)))
			u.orphanRecordedLocked(slot, burst)
			if u.opts.DisableSupervisor {
				d.deadUntil = math.MaxInt64 // never respawned
			} else {
				u.stats.HandlerRestarts++
				if u.tm != nil {
					u.tm.restarts.Inc(0)
				}
				u.opts.Journal.Record(now, telemetry.EvHandlerRestart, slot, 0)
				if now+1 > d.deadUntil {
					d.deadUntil = now + 1 // back next tick
				}
			}
		}
		if d.detectAt != 0 && now >= d.detectAt {
			d.detectAt = 0
			u.stats.StallsDetected++
			u.stats.HandlerRestarts++
			if u.tm != nil {
				u.tm.stalls.Inc(0)
				u.tm.restarts.Inc(0)
			}
			u.opts.Journal.Record(now, telemetry.EvHandlerStall, slot, 0)
			u.opts.Journal.Record(now, telemetry.EvHandlerRestart, slot, 0)
		}
		if now >= d.deadUntil {
			alive++
		}
	}
	switch {
	case alive == h:
		return max
	case alive == 0:
		return 0
	case max == math.MaxInt:
		return max // unbounded drains stay unbounded while anyone lives
	default:
		return max / h * alive
	}
}
