package upcall_test

import (
	"sync"
	"testing"

	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/upcall"
)

// TestLatencyHistBasics pins the histogram semantics the flow-setup metric
// is built on: bucket placement, quantile ranks, overflow clamping and the
// cumulative-snapshot Delta the per-second series folds from.
func TestLatencyHistBasics(t *testing.T) {
	var h upcall.LatencyHist
	if h.P50() != -1 || h.P99() != -1 {
		t.Fatalf("empty histogram quantiles %d/%d, want -1/-1", h.P50(), h.P99())
	}
	// 99 observations at 0s, one at 5s: the median is 0 and the p99 tail
	// lands exactly on the rank-100 observation.
	for i := 0; i < 99; i++ {
		h.Observe(0)
	}
	h.Observe(5)
	if got := h.P50(); got != 0 {
		t.Errorf("p50 = %d, want 0", got)
	}
	if got := h.P99(); got != 0 {
		t.Errorf("p99 = %d, want 0 (rank 99 of 100)", got)
	}
	if got := h.Quantile(1.0); got != 5 {
		t.Errorf("max quantile = %d, want 5", got)
	}
	if got := h.Mean(); got != 0.05 {
		t.Errorf("mean = %v, want 0.05", got)
	}

	// Negative clamps to zero; anything at or past the last bucket clamps
	// into it but keeps the exact Sum and MaxSec.
	var o upcall.LatencyHist
	o.Observe(-3)
	o.Observe(upcall.LatencyBuckets + 40)
	if o.Buckets[0] != 1 || o.Buckets[upcall.LatencyBuckets-1] != 1 {
		t.Errorf("clamp buckets %v", o.Buckets)
	}
	if o.MaxSec != upcall.LatencyBuckets+40 {
		t.Errorf("MaxSec = %d, want %d", o.MaxSec, upcall.LatencyBuckets+40)
	}
	if got := o.P99(); got != upcall.LatencyBuckets-1 {
		t.Errorf("overflow p99 = %d, want %d", got, upcall.LatencyBuckets-1)
	}

	// Delta subtracts an earlier snapshot of the same histogram.
	snap := h
	h.Observe(2)
	h.Observe(2)
	d := h.Delta(snap)
	if d.Count != 2 || d.Buckets[2] != 2 || d.Mean() != 2 {
		t.Errorf("delta count=%d bucket2=%d mean=%v, want 2/2/2", d.Count, d.Buckets[2], d.Mean())
	}

	// Merge folds per-port histograms into an aggregate.
	var m upcall.LatencyHist
	m.Merge(h)
	m.Merge(o)
	if m.Count != h.Count+o.Count || m.MaxSec != o.MaxSec {
		t.Errorf("merge count=%d max=%d", m.Count, m.MaxSec)
	}
}

// TestResidenceStamping drives the end-to-end latency path: an upcall
// admitted at tick T and popped when the subsystem's clock reads T+k
// records k seconds of residence, per source and in aggregate — and a
// burst coalesced onto a pending upcall shares the first miss's enqueue
// stamp, exactly as it shares its megaflow install.
func TestResidenceStamping(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 2, upcall.Options{})

	// Port 0: one upcall at t=0, handled at t=3.
	sub.Submit(0, header(0x0a000001, 40001), 0)
	// Port 1: one upcall at t=2; later misses at t=3 coalesce onto it and
	// must not refresh the stamp.
	sub.Submit(1, header(0x0b000001, 40002), 2)
	sub.Submit(1, header(0x0b000001, 40002), 3)

	if n := sub.HandleNAt(2, 3); n != 2 {
		t.Fatalf("handled %d, want 2", n)
	}
	per := sub.PerSource()
	if got := per[0].Residence.P99(); got != 3 {
		t.Errorf("port 0 residence p99 = %d, want 3", got)
	}
	if got := per[1].Residence.P99(); got != 1 {
		t.Errorf("port 1 residence p99 = %d, want 1 (coalesce keeps the t=2 stamp)", got)
	}
	st := sub.Stats()
	if st.Residence.Count != 2 || st.Residence.Sum != 4 {
		t.Errorf("aggregate residence count=%d sum=%d, want 2/4", st.Residence.Count, st.Residence.Sum)
	}

	// Submit advances the clock too: a drain with no explicit timestamp
	// (HandleN) measures against the latest tick the subsystem has seen.
	sub.Submit(0, header(0x0a000002, 40003), 10)
	sub.Submit(1, header(0x0b000002, 40004), 12)
	sub.DrainAll()
	per = sub.PerSource()
	if got := per[0].Residence.MaxSec; got != 3 {
		// The t=10 upcall popped at clock 12: residence 2, below the t=0
		// upcall's 3.
		t.Errorf("port 0 residence max = %d, want 3", got)
	}
	if got := per[0].Residence.Count; got != 2 {
		t.Errorf("port 0 residence count = %d, want 2", got)
	}
}

// deflapTrace is a portfairness-shaped pressure trace for one port: idle,
// then a sustained flood plateau whose per-sweep footprint sample jitters
// (the revalidator sees live entries plus whatever churn that interval
// happened to delete), including one sweep where policy churn emptied the
// cache entirely, then idle again after the flood stops.
func deflapTrace() []int {
	var tr []int
	for i := 0; i < 5; i++ {
		tr = append(tr, 0)
	}
	for i := 0; i < 20; i++ {
		if i == 10 {
			tr = append(tr, 0) // churn wiped the cache this sweep
			continue
		}
		if i%2 == 0 {
			tr = append(tr, 512)
		} else {
			tr = append(tr, 450)
		}
	}
	for i := 0; i < 8; i++ {
		tr = append(tr, 0)
	}
	return tr
}

// replayController folds a pressure trace through one controller and
// returns the quota series.
func replayController(a upcall.AdaptiveQuota, trace []int) []int {
	var st upcall.QuotaState
	out := make([]int, len(trace))
	for i, p := range trace {
		out[i] = a.Next(&st, p, 0)
	}
	return out
}

func countChanges(q []int) (changes, reversals int) {
	lastDir := 0
	for i := 1; i < len(q); i++ {
		d := q[i] - q[i-1]
		if d == 0 {
			continue
		}
		changes++
		dir := 1
		if d < 0 {
			dir = -1
		}
		if lastDir != 0 && dir != lastDir {
			reversals++
		}
		lastDir = dir
	}
	return changes, reversals
}

// TestControllerDeflapReplay replays the same flood-shaped pressure trace
// through the raw single-input controller and the smoothed two-input one.
// The raw controller flaps — ±1 quota steps chasing the jittering
// footprint sample, and a full bounce to BaseQuota the sweep churn empties
// the cache — while the smoothed controller moves at most once per
// sustained regime shift and rides out the churn sweep unmoved.
func TestControllerDeflapReplay(t *testing.T) {
	base := upcall.AdaptiveQuota{BaseQuota: 64, MinQuota: 4, TargetFootprint: 64}
	smooth := base
	smooth.EWMAAlpha = upcall.DefaultEWMAAlpha
	smooth.HysteresisPct = upcall.DefaultHysteresisPct
	smooth.TargetResidenceSec = 2

	trace := deflapTrace()
	dipIdx := 5 + 10 // the churn-emptied sweep inside the plateau

	floodStart, floodEnd := 5, 5+20 // trace indices of the flood regime

	q := replayController(smooth, trace)
	qRaw := replayController(base, trace)

	// The smoothed controller moves at most once per sustained regime
	// shift: the flood onset is a single descent (one change inside the
	// whole plateau, jitter and churn dip included), and the recovery is a
	// monotone ascent to the BaseQuota rail — it may step through the EWMA
	// decay, but it never turns back down.
	plateauChanges, _ := countChanges(q[floodStart:floodEnd])
	if plateauChanges > 1 {
		t.Errorf("smoothed: %d quota changes across the flood plateau (want <= 1): %v",
			plateauChanges, q)
	}
	_, reversals := countChanges(q)
	if reversals > 1 {
		// The single allowed turn is descent -> recovery.
		t.Errorf("smoothed: %d direction reversals (want <= 1): %v", reversals, q)
	}
	for i := floodEnd + 1; i < len(q); i++ {
		if q[i] < q[i-1] {
			t.Errorf("smoothed: recovery not monotone at %d (%d -> %d): %v", i, q[i-1], q[i], q)
		}
	}
	if q[dipIdx] != q[dipIdx-1] {
		t.Errorf("smoothed: churn sweep moved quota %d -> %d, want unmoved", q[dipIdx-1], q[dipIdx])
	}

	// The ablation must keep flapping, or the comparison is vacuous: the
	// jittering plateau re-tunes it almost every sweep and the churn sweep
	// bounces it to base and straight back down.
	rawChanges, rawReversals := countChanges(qRaw)
	if rawChanges < 10 || rawReversals < 4 {
		t.Errorf("raw ablation no longer flaps (changes=%d reversals=%d): %v",
			rawChanges, rawReversals, qRaw)
	}
	if qRaw[dipIdx] != base.BaseQuota {
		t.Errorf("raw: churn-sweep quota %d, want BaseQuota bounce %d", qRaw[dipIdx], base.BaseQuota)
	}

	// Both controllers throttle under the flood and recover to base.
	for name, series := range map[string][]int{"smoothed": q, "raw": qRaw} {
		if series[dipIdx-1] >= base.BaseQuota {
			t.Errorf("%s: plateau quota %d never shrank below base", name, series[dipIdx-1])
		}
		if got := series[len(series)-1]; got != base.BaseQuota {
			t.Errorf("%s: final quota %d, want recovered BaseQuota %d", name, got, base.BaseQuota)
		}
	}
}

// TestControllerResidenceInput pins the second control input: with the
// megaflow-pressure signal silent (churn keeps the cache empty), a
// standing backlog alone must shrink the quota — and a residence at or
// below target must not.
func TestControllerResidenceInput(t *testing.T) {
	a := upcall.AdaptiveQuota{
		BaseQuota: 64, MinQuota: 4, TargetFootprint: 64,
		TargetResidenceSec: 2, EWMAAlpha: 1, HysteresisPct: upcall.DefaultHysteresisPct,
	}
	var st upcall.QuotaState
	if got := a.Next(&st, 0, 1.0); got != 64 {
		t.Fatalf("residence below target: quota %d, want 64", got)
	}
	if got := a.Next(&st, 0, 8.0); got != 16 {
		// 64 * 2s / 8s = 16, well outside the 50% band around 64.
		t.Fatalf("residence 8s: quota %d, want 16", got)
	}
	// A saturating backlog rides the inverse curve to the MinQuota rail.
	if got := a.Next(&st, 0, 1000); got != a.MinQuota {
		t.Fatalf("saturating residence: quota %d, want floor %d", got, a.MinQuota)
	}
	// Recovery snaps back to the BaseQuota rail once the backlog drains.
	if got := a.Next(&st, 0, 0); got != a.BaseQuota {
		t.Fatalf("drained backlog: quota %d, want base %d", got, a.BaseQuota)
	}
}

// TestDeleteMegaflowsFeedsPressure is the satellite fix: megaflows a
// monitor (MFCGuard) deletes between sweeps are slow-path churn exactly
// like idle expiry, so they must reach the adaptive controller's pressure
// sensor. The guard wipes the flood's entries before the sweep ever dumps
// them; the next sweep must still see the pressure and throttle the port.
func TestDeleteMegaflowsFeedsPressure(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	adapt := &upcall.AdaptiveQuota{BaseQuota: 32, MinQuota: 2, TargetFootprint: 8}
	sub := newSub(t, sw, 2, upcall.Options{QuotaPerSource: 64})
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{
		Switch: sw, Subsystem: sub, Adapt: adapt})
	if err != nil {
		t.Fatal(err)
	}

	tr, err := core.CoLocated(sw.FlowTable(), core.CoLocatedOptions{Noise: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		sub.Submit(0, tr.Headers[i%len(tr.Headers)], 0)
	}
	sub.DrainAll()
	if n := rv.DeleteMegaflows(func(*tss.Entry) bool { return true }); n == 0 {
		t.Fatal("guard deleted nothing; flood installed no megaflows")
	}

	// The cache is now empty: the sweep's own dump contributes zero
	// pressure, so any throttling is the carried guard churn.
	rv.Sweep(1)
	if got := sub.QuotaFor(0); got >= adapt.BaseQuota {
		t.Errorf("flood port quota %d after guard churn, want shrunk below %d", got, adapt.BaseQuota)
	}
	if got := sub.QuotaFor(1); got != adapt.BaseQuota {
		t.Errorf("idle port quota %d, want untouched base %d", got, adapt.BaseQuota)
	}
	// The carry is consumed, not double-counted: with the cache still
	// empty the next sweep sees no pressure and recovery begins.
	rv.Sweep(2)
	if got := sub.QuotaFor(0); got != adapt.BaseQuota {
		t.Errorf("quota %d one sweep later, want recovered base %d (carry leaked)", got, adapt.BaseQuota)
	}
}

// TestSweepThenTickSingleSweep is the cadence-skew satellite fix: a direct
// Sweep(now) counts as the interval's run, so a Tick in the same interval
// must not dump (and with adaptive quotas, re-tune) a second time.
func TestSweepThenTickSingleSweep(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{Switch: sw, IntervalSec: 2})
	if err != nil {
		t.Fatal(err)
	}
	sw.HandleMiss(header(0x0a000001, 40000), 0)

	rv.Sweep(5)
	if st := rv.Stats(); st.Sweeps != 1 || st.Dumped != 1 {
		t.Fatalf("after direct sweep: %+v", st)
	}
	// Same interval: the direct sweep already ran it.
	rv.Tick(5)
	rv.Tick(6)
	if st := rv.Stats(); st.Sweeps != 1 {
		t.Errorf("tick inside interval re-swept: %+v", st)
	}
	// Cadence elapsed: the next tick sweeps again.
	rv.Tick(7)
	if st := rv.Stats(); st.Sweeps != 2 || st.Dumped != 2 {
		t.Errorf("tick after interval did not sweep: %+v", st)
	}
}

// TestOrphanPressureSurfaced is the silent-skip satellite fix: pressure on
// a port the subsystem has no source for cannot be tuned, and used to be
// dropped without a trace. It now lands in RevalidatorStats.OrphanPressure.
func TestOrphanPressureSurfaced(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	adapt := &upcall.AdaptiveQuota{BaseQuota: 32, MinQuota: 2, TargetFootprint: 8}
	sub := newSub(t, sw, 1, upcall.Options{})
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{
		Switch: sw, Subsystem: sub, Adapt: adapt})
	if err != nil {
		t.Fatal(err)
	}
	// Install megaflows attributed to vport 3 — a port the one-source
	// subsystem cannot throttle. Tuple-space-exploding headers so each
	// miss spawns its own megaflow.
	tr, err := core.CoLocated(sw.FlowTable(), core.CoLocatedOptions{Noise: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sw.HandleMissFrom(3, tr.Headers[i], 0)
	}
	rv.Sweep(0)
	if st := rv.Stats(); st.OrphanPressure != 4 {
		t.Errorf("orphan pressure %d, want 4", st.OrphanPressure)
	}
	if got := sub.QuotaFor(0); got != adapt.BaseQuota {
		t.Errorf("source 0 quota %d, want untouched base %d", got, adapt.BaseQuota)
	}
}

// TestLatencyHistConcurrent is the satellite -race test: Observe runs
// inside the handler goroutines (under the subsystem's lock) while readers
// concurrently snapshot the cumulative histograms and compute
// Delta/Quantile/Mean on their copies — the sampler's access pattern. The
// race detector proves snapshot-then-fold needs no further locking.
func TestLatencyHistConcurrent(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 2, upcall.Options{Handlers: 2, QueueCap: 1024})
	sub.Start()
	defer sub.Stop()

	const perSrc = 200
	var wg sync.WaitGroup
	for src := 0; src < 2; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < perSrc; i++ {
				h := header(0x0b000000+uint32(src)<<16+uint32(i), uint16(41000+i))
				tk, out := sub.Submit(src, h, int64(i%7))
				if out == upcall.Enqueued || out == upcall.Coalesced {
					tk.Wait()
				}
			}
		}(src)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		var prev upcall.LatencyHist
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := sub.Stats()
			d := st.Residence.Delta(prev)
			prev = st.Residence
			_ = d.P50()
			_ = d.P99()
			_ = d.Quantile(0.9)
			_ = d.Mean()
			for _, ps := range sub.PerSource() {
				_ = ps.Residence.P99()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	st := sub.Stats()
	if st.Residence.Count == 0 {
		t.Error("no residence observations recorded")
	}
	if st.PendingFlows != 0 {
		t.Errorf("pending = %d after all waits returned, want 0", st.PendingFlows)
	}
}
