// Package upcall implements the asynchronous slow path of the simulated
// switch: the subsystem that, in OVS, carries flow misses from the
// datapath up to ovs-vswitchd and megaflow installs back down (§2.2 of the
// paper). It is the architectural layer the Tuple Space Explosion attack
// saturates — every attack packet is a flow miss, so the attack's cost is
// paid here first — and its queue bounds and fairness quotas are where the
// slow-path defenses live.
//
// The shape follows OVS:
//
//   - Bounded per-source upcall queues. Each upcall source (a PMD worker in
//     the datapath pool, a vport in the kernel datapath) owns a FIFO queue
//     with a configurable bound. A full queue refuses the miss: the packet
//     is dropped without ever reaching the slow path, which is exactly the
//     loss mode of slow-path saturation.
//
//   - Flow-miss deduplication. A pending table keyed by the exact header
//     coalesces a burst of same-flow misses onto one in-flight upcall, so
//     the burst installs one megaflow and pays one classification — OVS's
//     ukey handling does the same to keep a hot new flow from flooding the
//     handlers.
//
//   - Per-source fairness quotas. An OVS-style upcall rate limit: each
//     source may admit at most QuotaPerSource upcalls per virtual second.
//     Together with round-robin draining this keeps one flooding source
//     (the TSE attacker's receive queue) from monopolising the handlers —
//     a first-class mitigation knob alongside MFCGuard.
//
//   - Handler goroutines. Start launches handlers that drain the queues
//     round-robin and run the flow-table classification; they call
//     vswitch.HandleMiss and are then the single writers installing into
//     the tss.Classifier, preserving the concurrent-reader/single-writer
//     design of the megaflow cache.
//
//   - A revalidator (revalidator.go) that periodically dumps the megaflow
//     cache, expires idle entries, and re-checks the survivors against the
//     current flow table.
//
//   - A supervisor (supervisor.go): handlers crash and stall, so the
//     subsystem recovers panics, heartbeats every handler, declares one
//     dead after StallTimeout, respawns it, and returns its orphaned
//     in-flight upcalls to the queues (or fails them with an error
//     verdict) instead of leaking pending entries. Stop's drain is
//     bounded by StopTimeout so a wedged handler cannot hang shutdown.
//
//   - An SLO circuit breaker (breaker.go): when a source's backlog
//     residence p99 violates BreakerSLOSec for TripAfter consecutive
//     intervals, the source trips open and new submissions fast-fail
//     (shed) instead of queueing behind work that will miss its SLO
//     anyway; half-open probes a trickle and closes on recovery.
//
// Faults are injected through an optional faults.Plan hook (handler
// panics/stalls, delayed or duplicated delivery); a nil plan costs one
// pointer comparison per Submit/drain.
//
// Drive mode: with Handlers == 0 the subsystem runs no goroutines; the
// datapath drains each admitted upcall synchronously (SubmitSync), which
// still exercises the queue/pending/quota machinery but stays
// deterministic — with unbounded queues and no quota it is
// verdict-for-verdict equivalent to the inline slow path (the datapath
// equivalence tests assert this).
package upcall

import (
	"fmt"
	"math"
	"sync"
	"time"

	"tse/internal/bitvec"
	"tse/internal/faults"
	"tse/internal/flowtable"
	"tse/internal/telemetry"
	"tse/internal/vswitch"
)

// Options tunes a Subsystem.
type Options struct {
	// QueueCap bounds each per-source queue; 0 means unbounded (the
	// deterministic drive mode of the equivalence tests).
	QueueCap int
	// Handlers is the number of handler goroutines Start launches; <= 0
	// selects 1. The datapath pool calls Start only when its async
	// configuration asks for handler threads.
	Handlers int
	// QuotaPerSource is the OVS-style upcall rate limit: the number of
	// upcalls each source may admit per virtual second; 0 disables the
	// quota. Deduplicated misses consume no quota. Sources are ingress
	// vports in the port-aware datapath (OVS rate-limits upcalls at vport
	// granularity), so a victim port never shares its bucket with a
	// flooding port that happens to land on the same PMD worker. SetQuota
	// overrides the value per source — the seam the adaptive controller
	// (AdaptiveQuota, driven by the revalidator) tunes at runtime.
	QuotaPerSource int
	// HandlerBurst is the number of queued upcalls a handler drains and
	// resolves as one batch: the burst shares one flow-table classification
	// pass and ONE megaflow-install transaction (vswitch.HandleMissBatch →
	// tss.InsertBatch), so the classifier's O(|M|) copy-on-write publish
	// is paid once per burst instead of once per megaflow. <= 0 selects
	// DefaultHandlerBurst.
	HandlerBurst int
	// DisableDedup turns off the pending-table flow-miss deduplication
	// (ablation: every admitted miss becomes its own upcall).
	DisableDedup bool
	// StallTimeout (goroutine mode) is the wall-clock horizon after which
	// the supervisor declares a busy handler stalled, abandons it, and
	// respawns its slot; 0 disables stall detection (panic recovery stays
	// on).
	StallTimeout time.Duration
	// StopTimeout bounds Stop's drain: past it, Stop abandons handlers
	// still wedged mid-handle (counting them in Stats.HandlersAbandoned)
	// and returns anyway. <= 0 selects DefaultStopTimeout.
	StopTimeout time.Duration
	// StallTimeoutSec (drive mode) is the virtual-tick stall-detection
	// horizon of the modelled supervisor; <= 0 selects
	// DefaultStallTimeoutSec.
	StallTimeoutSec int64
	// ModelledHandlers is the drive-mode handler count the fault model
	// spreads service capacity across (a dead handler removes its 1/N
	// share of the per-tick drain budget); <= 0 selects 1. Independent of
	// Handlers so drive-mode runs stay goroutine-free.
	ModelledHandlers int
	// DisableSupervisor is the chaos ablation: panics are still survived
	// (recovered) but the dead handler is never respawned and its orphaned
	// in-flight upcalls are dropped on the floor — the pending-table wedge
	// the supervisor exists to prevent.
	DisableSupervisor bool
	// FailOrphans resolves orphaned in-flight upcalls (their handler died
	// between pop and resolve) with an error verdict instead of returning
	// them to their queues.
	FailOrphans bool
	// Breaker configures the per-source SLO circuit breaker; the zero
	// value (SLOSec == 0) disables it.
	Breaker Breaker
	// Injector is the optional fault-injection schedule; nil (the normal
	// case) injects nothing and costs one pointer comparison on the paths
	// it guards.
	Injector *faults.Plan
	// Metrics, when non-nil, registers the subsystem's admission/service
	// counters and the residence histogram with the registry. The
	// increments ride the paths that already hold u.mu and are
	// allocation-free (telemetry's AllocsPerRun assertions), so attaching
	// a registry cannot move the hot-path gate.
	Metrics *telemetry.Registry
	// Journal, when non-nil, receives tick-stamped control-plane events:
	// handler panics/stalls/restarts, orphan requeues, pending reaps, and
	// breaker phase transitions. Nil costs one nil check per event site.
	Journal *telemetry.Journal
	// Tracer, when non-nil, samples every Nth admitted upcall into a
	// flow-setup span (enqueue→admit→pop→install→publish ticks). Sampled
	// spans allocate, so tracing is opt-in; a nil tracer costs one nil
	// check per admission.
	Tracer *telemetry.Tracer
}

// DefaultHandlerBurst is the handler drain burst size, matching the
// datapath's NETDEV_MAX_BURST-sized receive bursts.
const DefaultHandlerBurst = 32

// DefaultStopTimeout bounds Stop's handler drain: generous, because a
// healthy backlog drain is seconds at worst and only a truly wedged
// handler should ever be abandoned.
const DefaultStopTimeout = 30 * time.Second

// DefaultStallTimeoutSec is the drive-mode stall-detection horizon: one
// virtual second, i.e. the modelled supervisor notices a frozen handler at
// the next per-second drain.
const DefaultStallTimeoutSec int64 = 1

// Outcome classifies what Submit did with one flow miss.
type Outcome int

const (
	// Enqueued: the miss became a new upcall in its source's queue.
	Enqueued Outcome = iota
	// Coalesced: an upcall for the same flow is already pending; the miss
	// was deduplicated onto it, consuming no queue slot and no quota.
	Coalesced
	// DroppedQueueFull: the source's queue is at QueueCap; the packet is
	// dropped without reaching the slow path.
	DroppedQueueFull
	// DroppedQuota: the source exhausted its per-second admission quota.
	DroppedQuota
	// DroppedBreaker: the source's SLO circuit breaker is open; the miss
	// is fast-failed (shed) at admission without queueing.
	DroppedBreaker
)

// Dropped reports whether the outcome refused the miss at admission.
func (o Outcome) Dropped() bool {
	return o == DroppedQueueFull || o == DroppedQuota || o == DroppedBreaker
}

// String names the outcome for diagnostics.
func (o Outcome) String() string {
	switch o {
	case Enqueued:
		return "enqueued"
	case Coalesced:
		return "coalesced"
	case DroppedQueueFull:
		return "dropped-queue-full"
	case DroppedQuota:
		return "dropped-quota"
	case DroppedBreaker:
		return "dropped-breaker-open"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Stats aggregates subsystem activity. Together with
// vswitch.Counters.Installs these are the enqueued/dropped/deduped/
// installed counters of the miss-to-install path.
type Stats struct {
	// Enqueued counts upcalls admitted to a queue; Deduped counts misses
	// coalesced onto an already-pending upcall of the same flow.
	Enqueued, Deduped uint64
	// QueueDrops and QuotaDrops count refused misses by reason.
	QueueDrops, QuotaDrops uint64
	// Handled counts upcalls resolved by a handler; each one is one
	// slow-path classification (installs appear in
	// vswitch.Counters.Installs).
	Handled uint64
	// Backlog is the current total queue depth and PendingFlows the
	// current pending-table size (snapshot fields); MaxBacklog is the
	// backlog high-water mark.
	Backlog, PendingFlows, MaxBacklog int
	// Residence aggregates flow-setup latency across all sources: how many
	// virtual seconds each handled upcall sat queued between admission and
	// handler pop (see LatencyHist).
	Residence LatencyHist
	// HandlerPanics counts handler deaths by panic; StallsDetected counts
	// handlers the supervisor declared dead after StallTimeout;
	// HandlerRestarts counts respawns (after either); HandlersAbandoned
	// counts wedged handlers a timed-out Stop gave up waiting for.
	HandlerPanics, StallsDetected, HandlerRestarts, HandlersAbandoned uint64
	// Requeued counts orphaned in-flight upcalls returned to their queues
	// by the supervisor; OrphanFailed counts orphans resolved with the
	// error verdict instead (FailOrphans, or a timed-out Stop);
	// PendingReaped counts aged-out pending entries swept by the
	// revalidator's orphan reaper.
	Requeued, OrphanFailed, PendingReaped uint64
	// Delayed and Duplicated count fault-injected deliveries (upcalls held
	// in limbo / enqueued twice).
	Delayed, Duplicated uint64
	// BreakerTrips and BreakerCloses count circuit-breaker transitions to
	// open and (from half-open) back to closed; BreakerShed counts
	// submissions fast-failed by a non-closed breaker.
	BreakerTrips, BreakerCloses, BreakerShed uint64
}

// pendingFlow is one in-flight upcall: the cell every waiter of the flow
// shares. verdict is written exactly once, before done is closed; resolved
// (guarded by Subsystem.mu) makes resolution idempotent, so a zombie
// handler or a fault-duplicated delivery resolving the flow a second time
// is a no-op instead of a double-close.
type pendingFlow struct {
	done     chan struct{}
	verdict  vswitch.Verdict
	born     int64 // virtual time of admission (orphan-reap age base)
	queued   int   // queued item copies referencing this flow
	resolved bool
}

// flowKey identifies one in-flight flow in the pending table: the exact
// header scoped by its source. Scoping by source mirrors OVS, where the
// ingress port is part of the flow key — the same header arriving on two
// vports is two flows, and deduplicating them together would let one
// port's pending upcall mask another port's distinct miss.
type flowKey struct {
	src int
	key string
}

// item is one queued upcall.
type item struct {
	h   bitvec.Vec
	now int64
	src int
	key flowKey
	p   *pendingFlow
	// span is the sampled flow-setup trace record; nil for the (vast)
	// unsampled majority.
	span *telemetry.Span
}

// SourceStats is one source's (vport's) share of the admission counters.
type SourceStats struct {
	// Enqueued and Deduped count admitted misses; QueueDrops and
	// QuotaDrops count refusals by reason.
	Enqueued, Deduped, QueueDrops, QuotaDrops uint64
	// BreakerShed counts misses fast-failed because the source's SLO
	// circuit breaker was open (or out of half-open probe budget).
	BreakerShed uint64
	// Residence is the port's flow-setup latency histogram: the virtual
	// seconds each of its handled upcalls spent queued between admission
	// (the enqueue stamp, shared by every miss coalesced onto the upcall)
	// and handler pop. Residence.P50()/P99() are the per-port flow-setup
	// percentiles; the revalidator reads the same histogram as the
	// backlog-residence input of the adaptive quota controller.
	Residence LatencyHist
}

// Ticket is a handle on a submitted upcall. The zero Ticket (returned for
// admission drops) is invalid.
type Ticket struct{ p *pendingFlow }

// Valid reports whether the ticket references a pending upcall.
func (t Ticket) Valid() bool { return t.p != nil }

// Wait blocks until a handler resolves the upcall, then returns its
// verdict.
func (t Ticket) Wait() vswitch.Verdict {
	<-t.p.done
	return t.p.verdict
}

// Resolved returns the verdict without blocking; ok is false while the
// upcall is still queued or being handled.
func (t Ticket) Resolved() (v vswitch.Verdict, ok bool) {
	select {
	case <-t.p.done:
		return t.p.verdict, true
	default:
		return vswitch.Verdict{}, false
	}
}

// Subsystem is the upcall machinery for one switch. It is safe for
// concurrent use: any number of sources may Submit while handlers drain.
type Subsystem struct {
	sw   *vswitch.Switch
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond // signalled on enqueue; handlers wait here
	queues   [][]item   // per-source FIFO, heads[i] is the pop position
	heads    []int
	pending  map[flowKey]*pendingFlow
	limbo    []limboItem // fault-delayed deliveries, nil unless injected
	tokens   []int       // per-source quota tokens for the current second
	tokenAt  []int64     // virtual second the tokens were refilled at
	quota    []int       // per-source quota overrides; -1 = Options.QuotaPerSource
	srcStats []SourceStats
	next     int   // round-robin drain cursor
	depth    int   // total queued items
	clock    int64 // latest virtual time observed (Submit / HandleNAt)
	stats    Stats
	stopped  bool
	started  bool

	// Goroutine-mode supervisor state (supervisor.go). wg is recreated per
	// Start so a timed-out Stop's lingering waiter cannot collide with a
	// later generation of handlers.
	wg       *sync.WaitGroup
	runs     []*handlerRun
	inflight map[*handlerRun][]item // popped-but-unresolved bursts by owner
	supStop  chan struct{}
	gen      uint64

	// Drive-mode fault model (supervisor.go).
	driveH []driveHandler

	// Per-source circuit breakers (breaker.go); nil when disabled.
	brk []breakerPort

	// tm holds the registered telemetry metrics; nil without a registry.
	tm *subMetrics
}

// subMetrics are the subsystem's registered telemetry handles. All
// increments happen under u.mu, so shard 0 is always correct and
// uncontended.
type subMetrics struct {
	enqueued, coalesced, queueDrops, quotaDrops, shed *telemetry.Counter
	handled, requeued, orphanFailed, reaped           *telemetry.Counter
	panics, stalls, restarts                          *telemetry.Counter
	breakerTrips, breakerCloses                       *telemetry.Counter
	residence                                         *telemetry.Histogram
}

// registerMetrics builds the subsystem's metric set on reg. The names
// shadow OVS coverage counters (upcall_*, handler_*) — see the README
// catalog.
func (u *Subsystem) registerMetrics(reg *telemetry.Registry) {
	u.tm = &subMetrics{
		enqueued:      reg.Counter("tse_upcall_enqueued_total", "Flow misses admitted to an upcall queue."),
		coalesced:     reg.Counter("tse_upcall_coalesced_total", "Misses deduplicated onto an in-flight upcall of the same flow."),
		queueDrops:    reg.Counter("tse_upcall_queue_drops_total", "Misses refused because the source queue was at capacity."),
		quotaDrops:    reg.Counter("tse_upcall_quota_drops_total", "Misses refused by the per-source admission quota."),
		shed:          reg.Counter("tse_upcall_breaker_shed_total", "Misses fast-failed by an open SLO circuit breaker."),
		handled:       reg.Counter("tse_upcall_handled_total", "Upcalls resolved by a handler (one slow-path classification each)."),
		requeued:      reg.Counter("tse_upcall_requeued_total", "Orphaned in-flight upcalls returned to their queues by the supervisor."),
		orphanFailed:  reg.Counter("tse_upcall_orphan_failed_total", "Orphaned upcalls resolved with the error verdict."),
		reaped:        reg.Counter("tse_upcall_pending_reaped_total", "Aged-out pending-table entries failed by the orphan reaper."),
		panics:        reg.Counter("tse_handler_panics_total", "Handler deaths by panic."),
		stalls:        reg.Counter("tse_handler_stalls_total", "Handlers declared stalled past the heartbeat deadline."),
		restarts:      reg.Counter("tse_handler_restarts_total", "Handler slots respawned after a panic or stall."),
		breakerTrips:  reg.Counter("tse_breaker_trips_total", "SLO circuit-breaker transitions to open."),
		breakerCloses: reg.Counter("tse_breaker_closes_total", "SLO circuit-breaker recoveries from half-open to closed."),
		residence: reg.Histogram("tse_upcall_residence_seconds",
			"Virtual seconds an upcall sat queued between admission and handler pop.",
			[]int64{0, 1, 2, 4, 8, 15}),
	}
	reg.GaugeFunc("tse_upcall_backlog", "Total queued upcalls right now.",
		func() int64 { return int64(u.Stats().Backlog) })
	reg.GaugeFunc("tse_upcall_pending_flows", "Pending-table entries (in-flight deduplicated flows).",
		func() int64 { return int64(u.Stats().PendingFlows) })
}

// limboItem is one fault-delayed upcall: admitted (quota and queue checks
// already paid) but invisible to handlers until the virtual clock reaches
// readyAt.
type limboItem struct {
	it      item
	readyAt int64
}

// New builds a subsystem over the switch with one queue per source;
// sources <= 0 selects 1.
func New(sw *vswitch.Switch, sources int, opts Options) (*Subsystem, error) {
	if sw == nil {
		return nil, fmt.Errorf("upcall: subsystem needs a switch")
	}
	if sources <= 0 {
		sources = 1
	}
	u := &Subsystem{
		sw:       sw,
		opts:     opts,
		queues:   make([][]item, sources),
		heads:    make([]int, sources),
		pending:  make(map[flowKey]*pendingFlow),
		tokens:   make([]int, sources),
		tokenAt:  make([]int64, sources),
		quota:    make([]int, sources),
		srcStats: make([]SourceStats, sources),
	}
	u.cond = sync.NewCond(&u.mu)
	for i := range u.tokenAt {
		u.tokenAt[i] = math.MinInt64 // force a refill on the first Submit
		u.quota[i] = -1              // no override: Options.QuotaPerSource
	}
	if opts.Breaker.SLOSec > 0 {
		u.brk = make([]breakerPort, sources)
	}
	if opts.Metrics != nil {
		u.registerMetrics(opts.Metrics)
	}
	return u, nil
}

// SetQuota overrides one source's per-second admission quota, with
// Options.QuotaPerSource semantics (0 disables the quota for the source);
// a negative value removes the override. The adaptive controller calls
// this from the revalidator's sweep; it takes effect at the source's next
// token refill (the next virtual second).
func (u *Subsystem) SetQuota(src, quota int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if quota < 0 {
		quota = -1
	}
	u.quota[src] = quota
}

// QuotaFor returns the source's effective per-second admission quota
// (0 = unlimited).
func (u *Subsystem) QuotaFor(src int) int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.quotaForLocked(src)
}

func (u *Subsystem) quotaForLocked(src int) int {
	if q := u.quota[src]; q >= 0 {
		return q
	}
	return u.opts.QuotaPerSource
}

// PerSource returns a snapshot of each source's admission counters — the
// per-vport fairness ledger (who was admitted, who was refused, and why).
func (u *Subsystem) PerSource() []SourceStats {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]SourceStats, len(u.srcStats))
	copy(out, u.srcStats)
	return out
}

// Switch returns the subsystem's switch.
func (u *Subsystem) Switch() *vswitch.Switch { return u.sw }

// Sources returns the number of per-source queues.
func (u *Subsystem) Sources() int { return len(u.queues) }

// Submit offers one flow miss from source src at virtual time now. The
// outcome says what happened: a new upcall was enqueued, the miss was
// coalesced onto a pending upcall of the same flow, or it was refused
// (queue full / quota). The ticket is valid for Enqueued and Coalesced and
// resolves when a handler drains the upcall.
func (u *Subsystem) Submit(src int, h bitvec.Vec, now int64) (Ticket, Outcome) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if now > u.clock {
		u.clock = now
		if u.limbo != nil {
			u.matureLocked()
		}
	}
	key := flowKey{src: src, key: h.Key()}
	if !u.opts.DisableDedup {
		if p, ok := u.pending[key]; ok {
			u.stats.Deduped++
			u.srcStats[src].Deduped++
			if u.tm != nil {
				u.tm.coalesced.Inc(0)
			}
			return Ticket{p}, Coalesced
		}
	}
	// Breaker before the queue bound: an open breaker means queued work is
	// already missing its SLO, so new submissions are shed without
	// consuming queue space or quota.
	if u.brk != nil && !u.breakerAdmitLocked(src, now) {
		u.stats.BreakerShed++
		u.srcStats[src].BreakerShed++
		if u.tm != nil {
			u.tm.shed.Inc(0)
		}
		return Ticket{}, DroppedBreaker
	}
	// Queue bound before quota: a miss refused for lack of queue space
	// must not burn the source's admission budget, or a flooding-induced
	// full queue would eat the quota that later same-second misses (the
	// victim's own flow setup) are entitled to.
	if u.opts.QueueCap > 0 && len(u.queues[src])-u.heads[src] >= u.opts.QueueCap {
		u.stats.QueueDrops++
		u.srcStats[src].QueueDrops++
		if u.tm != nil {
			u.tm.queueDrops.Inc(0)
		}
		return Ticket{}, DroppedQueueFull
	}
	if q := u.quotaForLocked(src); q > 0 {
		if u.tokenAt[src] != now {
			u.tokenAt[src] = now
			u.tokens[src] = q
		}
		if u.tokens[src] == 0 {
			u.stats.QuotaDrops++
			u.srcStats[src].QuotaDrops++
			if u.tm != nil {
				u.tm.quotaDrops.Inc(0)
			}
			return Ticket{}, DroppedQuota
		}
		u.tokens[src]--
	}
	p := &pendingFlow{done: make(chan struct{}), born: now, queued: 1}
	if !u.opts.DisableDedup {
		u.pending[key] = p
	}
	// Clone: the caller's header buffer may be reused before a handler
	// gets to the upcall.
	it := item{h: h.Clone(), now: now, src: src, key: key, p: p}
	if sp := u.opts.Tracer.Sample(src); sp != nil {
		sp.Enqueue = now
		it.span = sp
	}
	if u.tm != nil {
		u.tm.enqueued.Inc(0)
	}
	if u.opts.Injector != nil {
		if d := u.opts.Injector.DeliverDelayAt(src, now); d > 0 {
			// Delivery fault: admitted, but held in limbo until readyAt.
			// The enqueue stamp stays `now`, so the delay shows up as
			// residence when the upcall is finally popped.
			u.limbo = append(u.limbo, limboItem{it: it, readyAt: now + d})
			u.stats.Enqueued++
			u.srcStats[src].Enqueued++
			u.stats.Delayed++
			return Ticket{p}, Enqueued
		}
	}
	u.enqueueLocked(it)
	u.stats.Enqueued++
	u.srcStats[src].Enqueued++
	if u.opts.Injector != nil && u.opts.Injector.DeliverDuplicateAt(src, now) {
		// Delivery fault: at-least-once semantics. The copy shares the
		// pending cell; whichever pop resolves first wins and the other
		// becomes a no-op.
		p.queued++
		u.enqueueLocked(it)
		u.stats.Duplicated++
	}
	return Ticket{p}, Enqueued
}

// enqueueLocked appends one upcall to its source queue and wakes a
// handler. Callers hold u.mu and account Enqueued themselves (requeued
// orphans and fault duplicates are not new admissions).
func (u *Subsystem) enqueueLocked(it item) {
	if it.span != nil && it.span.Admit < 0 {
		// First time the upcall becomes visible to handlers (later than
		// the enqueue stamp only under injected delivery delay).
		it.span.Admit = u.clock
	}
	u.queues[it.src] = append(u.queues[it.src], it)
	u.depth++
	if u.depth > u.stats.MaxBacklog {
		u.stats.MaxBacklog = u.depth
	}
	u.cond.Signal()
}

// matureLocked moves limbo items whose delivery delay has elapsed into
// their source queues. Callers hold u.mu.
func (u *Subsystem) matureLocked() {
	kept := u.limbo[:0]
	for _, li := range u.limbo {
		if li.readyAt <= u.clock {
			u.enqueueLocked(li.it)
		} else {
			kept = append(kept, li)
		}
	}
	for i := len(kept); i < len(u.limbo); i++ {
		u.limbo[i] = limboItem{} // release header/pending references
	}
	u.limbo = kept
	if len(u.limbo) == 0 {
		u.limbo = nil
	}
}

// matureEarliest force-advances the clock to the earliest limbo maturity
// and delivers everything due, reporting whether limbo held anything. The
// drive-mode SubmitSync loop is the only clock source while it spins on a
// delayed ticket, so without this a delayed delivery would deadlock it.
func (u *Subsystem) matureEarliest() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.limbo) == 0 {
		return false
	}
	min := u.limbo[0].readyAt
	for _, li := range u.limbo[1:] {
		if li.readyAt < min {
			min = li.readyAt
		}
	}
	if min > u.clock {
		u.clock = min
	}
	u.matureLocked()
	return true
}

// SubmitSync is the drive-mode slow path: it submits the miss and, when
// admitted, synchronously drains upcalls (the source's own queue first)
// until the ticket resolves. The upcall still traverses the full
// queue/pending/quota machinery, so drive-mode runs exercise the same code
// the handler goroutines do while staying deterministic. An admission drop
// returns ok == false via the outcome; the verdict is then zero.
func (u *Subsystem) SubmitSync(src int, h bitvec.Vec, now int64) (vswitch.Verdict, Outcome) {
	t, out := u.Submit(src, h, now)
	if out.Dropped() {
		return vswitch.Verdict{}, out
	}
	for {
		if v, ok := t.Resolved(); ok {
			return v, out
		}
		if u.handleNext(src) {
			continue
		}
		if u.handleAny() {
			continue
		}
		if u.matureEarliest() {
			// The upcall (or its queue's work) is in fault-injected
			// delivery limbo; advance to its maturity and drain again.
			continue
		}
		// Nothing queued anywhere, yet the ticket is unresolved: a
		// concurrent handler owns the upcall mid-flight; wait for it.
		return t.Wait(), out
	}
}

// HandleN drains and handles up to max queued upcalls, visiting the
// per-source queues round-robin — the fairness discipline that keeps one
// flooding source from monopolising the handler budget. It returns the
// number handled. The dataplane simulator calls this once per virtual
// second with the modelled handler service rate; math.MaxInt drains
// everything.
//
// Draining proceeds in bursts of Options.HandlerBurst: the round-robin pop
// order is unchanged (fairness is decided at pop time, item by item), but
// each burst is resolved through one vswitch.HandleMissBatch, so a K-item
// burst installs its megaflows in one classifier transaction with one
// snapshot publish.
func (u *Subsystem) HandleN(max int) int {
	return u.handleN(max)
}

// HandleNAt is HandleN with an explicit drain time: the subsystem clock
// advances to now before the pops, so the residence recorded for each
// drained upcall is measured against the drain tick even when no Submit
// has advanced the clock (a backlog draining after a flood stops). The
// dataplane simulator's per-second drain uses this entry point; it is also
// where the drive-mode fault model applies scheduled handler deaths and
// stalls (see driveFaultsLocked) and delivers matured limbo items.
func (u *Subsystem) HandleNAt(max int, now int64) int {
	u.mu.Lock()
	if now > u.clock {
		u.clock = now
	}
	if u.limbo != nil {
		u.matureLocked()
	}
	if u.opts.Injector != nil {
		max = u.driveFaultsLocked(max, now)
	}
	u.mu.Unlock()
	return u.handleN(max)
}

func (u *Subsystem) handleN(max int) int {
	n := 0
	burst := u.burstSize()
	items := make([]item, 0, burst)
	for n < max {
		size := burst
		if left := max - n; left < size {
			size = left
		}
		u.mu.Lock()
		items = u.popBurstLocked(items[:0], size)
		u.mu.Unlock()
		if len(items) == 0 {
			break
		}
		u.handleBatch(items)
		n += len(items)
	}
	return n
}

// burstSize resolves the configured handler drain burst.
func (u *Subsystem) burstSize() int {
	if u.opts.HandlerBurst > 0 {
		return u.opts.HandlerBurst
	}
	return DefaultHandlerBurst
}

// popBurstLocked pops up to max queued upcalls round-robin into items.
// Callers hold u.mu.
func (u *Subsystem) popBurstLocked(items []item, max int) []item {
	for len(items) < max {
		it, ok := u.popAnyLocked()
		if !ok {
			break
		}
		items = append(items, it)
	}
	return items
}

// DrainAll handles every queued upcall and returns the number handled.
func (u *Subsystem) DrainAll() int { return u.HandleN(math.MaxInt) }

// Stats returns a snapshot of the activity counters.
func (u *Subsystem) Stats() Stats {
	u.mu.Lock()
	defer u.mu.Unlock()
	st := u.stats
	st.Backlog = u.depth
	st.PendingFlows = len(u.pending)
	return st
}

// handle resolves one upcall: the handler-side slow path. The verdict
// comes from vswitch.HandleMissFrom — classification plus megaflow
// install, attributed to the miss's ingress port — stamped with the miss's
// own virtual time, exactly as the inline pipeline stamps it. The pending
// entry is then retired and every waiter released. This is the drive-mode
// (SubmitSync) path; handler drains batch through handleBatch instead.
func (u *Subsystem) handle(it item) {
	v := u.sw.HandleMissFrom(it.src, it.h, it.now)
	u.resolve(it, v)
}

// handleBatch resolves one drained burst through the batched slow path:
// one flow-table classification pass and ONE megaflow-install transaction
// (single snapshot publish) for the whole burst, stamped at the burst's
// latest miss time. Every waiter of every flow in the burst is released.
func (u *Subsystem) handleBatch(items []item) {
	if len(items) == 1 {
		u.handle(items[0])
		return
	}
	now := items[0].now
	ms := make([]vswitch.Miss, len(items))
	for i, it := range items {
		if it.now > now {
			now = it.now
		}
		ms[i] = vswitch.Miss{Port: it.src, Header: it.h}
	}
	vs := u.sw.HandleMissBatch(ms, now)
	for i, it := range items {
		u.resolve(it, vs[i])
	}
}

// resolve retires one handled upcall's pending entry and releases its
// waiters. Resolution is idempotent: the first resolver wins, and a
// zombie handler (abandoned after a stall) or a fault-duplicated delivery
// resolving the same flow again is a no-op.
func (u *Subsystem) resolve(it item, v vswitch.Verdict) {
	u.mu.Lock()
	if it.p.resolved {
		u.mu.Unlock()
		return
	}
	it.p.resolved = true
	if u.pending[it.key] == it.p {
		delete(u.pending, it.key)
	}
	u.stats.Handled++
	if u.tm != nil {
		u.tm.handled.Inc(0)
	}
	if it.span != nil {
		// The burst's megaflows were installed and its one COW snapshot
		// published just before resolution, so at burst granularity both
		// stamps are the resolve tick.
		it.span.Install = u.clock
		it.span.Publish = u.clock
	}
	u.mu.Unlock()
	it.p.verdict = v
	close(it.p.done)
}

// orphanVerdict is the error verdict an abandoned upcall resolves with
// when nobody will ever classify it (FailOrphans, a timed-out Stop, or
// the revalidator's pending reaper): the packet is dropped on the upcall
// path, the same loss mode as an admission refusal.
func orphanVerdict() vswitch.Verdict {
	return vswitch.Verdict{Action: flowtable.Drop, Path: vswitch.PathUpcallDrop}
}

// ReapPending sweeps the pending table for orphaned entries — flows whose
// upcall is neither queued nor in limbo nor owned by a live handler (the
// handler died between pop and resolve, unsupervised) — and fails every
// entry older than age with the orphan verdict, releasing its waiters.
// It returns the number reaped. The revalidator calls this on its Tick
// cadence so a leaked entry cannot outlive the sweep horizon.
func (u *Subsystem) ReapPending(now, age int64) int {
	if age <= 0 {
		return 0
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if now > u.clock {
		u.clock = now
	}
	// Entries owned by a live goroutine-mode handler are mid-resolve, not
	// orphaned, no matter their age.
	owned := make(map[*pendingFlow]bool)
	for _, items := range u.inflight {
		for _, it := range items {
			owned[it.p] = true
		}
	}
	n := 0
	for k, p := range u.pending {
		if p.resolved || p.queued > 0 || owned[p] || now-p.born < age {
			continue
		}
		p.resolved = true
		delete(u.pending, k)
		p.verdict = orphanVerdict()
		close(p.done)
		u.stats.PendingReaped++
		if u.tm != nil {
			u.tm.reaped.Inc(0)
		}
		n++
	}
	if n > 0 {
		u.opts.Journal.Record(now, telemetry.EvPendingReaped, -1, int64(n))
	}
	return n
}

// handleNext pops and handles the oldest upcall of source src, reporting
// whether there was one.
func (u *Subsystem) handleNext(src int) bool {
	u.mu.Lock()
	it, ok := u.popLocked(src)
	u.mu.Unlock()
	if !ok {
		return false
	}
	u.handle(it)
	return true
}

// handleAny pops and handles one upcall from any queue (round-robin),
// reporting whether there was one.
func (u *Subsystem) handleAny() bool {
	u.mu.Lock()
	it, ok := u.popAnyLocked()
	u.mu.Unlock()
	if !ok {
		return false
	}
	u.handle(it)
	return true
}

// popLocked removes the oldest upcall of source src and records its
// residence — the virtual seconds between its enqueue stamp and the
// subsystem clock at pop time, the queueing-delay component of flow-setup
// latency. Callers hold u.mu.
func (u *Subsystem) popLocked(src int) (item, bool) {
	q := u.queues[src]
	h := u.heads[src]
	if h >= len(q) {
		return item{}, false
	}
	it := q[h]
	q[h] = item{} // release the header and pending references
	h++
	it.p.queued--
	if !it.p.resolved {
		// Zombie-duplicate pops (the flow was already resolved by another
		// copy of the item) do no flow setup and record no residence. A
		// requeued orphan records once per service attempt: the aborted
		// wait and the full wait are both real queueing delay.
		res := u.clock - it.now
		u.srcStats[src].Residence.Observe(res)
		u.stats.Residence.Observe(res)
		if u.tm != nil {
			u.tm.residence.Observe(0, res)
		}
		if it.span != nil {
			it.span.Pop = u.clock
		}
	}
	switch {
	case h == len(q):
		// Queue drained: rewind so the backing array is reused.
		u.queues[src] = q[:0]
		u.heads[src] = 0
	case h >= 32 && h*2 >= len(q):
		// Mostly-consumed head: compact so a standing backlog (pops and
		// pushes balanced, queue never empty) keeps the backing array at
		// O(live items), not O(items ever enqueued). Amortised O(1).
		n := copy(q, q[h:])
		for i := n; i < len(q); i++ {
			q[i] = item{} // drop references from the vacated tail
		}
		u.queues[src] = q[:n]
		u.heads[src] = 0
	default:
		u.heads[src] = h
	}
	u.depth--
	return it, true
}

// popAnyLocked removes the oldest upcall of the next non-empty queue in
// round-robin order. Callers hold u.mu.
func (u *Subsystem) popAnyLocked() (item, bool) {
	for i := 0; i < len(u.queues); i++ {
		src := (u.next + i) % len(u.queues)
		if it, ok := u.popLocked(src); ok {
			u.next = (src + 1) % len(u.queues)
			return it, true
		}
	}
	return item{}, false
}
