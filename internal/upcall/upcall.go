// Package upcall implements the asynchronous slow path of the simulated
// switch: the subsystem that, in OVS, carries flow misses from the
// datapath up to ovs-vswitchd and megaflow installs back down (§2.2 of the
// paper). It is the architectural layer the Tuple Space Explosion attack
// saturates — every attack packet is a flow miss, so the attack's cost is
// paid here first — and its queue bounds and fairness quotas are where the
// slow-path defenses live.
//
// The shape follows OVS:
//
//   - Bounded per-source upcall queues. Each upcall source (a PMD worker in
//     the datapath pool, a vport in the kernel datapath) owns a FIFO queue
//     with a configurable bound. A full queue refuses the miss: the packet
//     is dropped without ever reaching the slow path, which is exactly the
//     loss mode of slow-path saturation.
//
//   - Flow-miss deduplication. A pending table keyed by the exact header
//     coalesces a burst of same-flow misses onto one in-flight upcall, so
//     the burst installs one megaflow and pays one classification — OVS's
//     ukey handling does the same to keep a hot new flow from flooding the
//     handlers.
//
//   - Per-source fairness quotas. An OVS-style upcall rate limit: each
//     source may admit at most QuotaPerSource upcalls per virtual second.
//     Together with round-robin draining this keeps one flooding source
//     (the TSE attacker's receive queue) from monopolising the handlers —
//     a first-class mitigation knob alongside MFCGuard.
//
//   - Handler goroutines. Start launches handlers that drain the queues
//     round-robin and run the flow-table classification; they call
//     vswitch.HandleMiss and are then the single writers installing into
//     the tss.Classifier, preserving the concurrent-reader/single-writer
//     design of the megaflow cache.
//
//   - A revalidator (revalidator.go) that periodically dumps the megaflow
//     cache, expires idle entries, and re-checks the survivors against the
//     current flow table.
//
// Drive mode: with Handlers == 0 the subsystem runs no goroutines; the
// datapath drains each admitted upcall synchronously (SubmitSync), which
// still exercises the queue/pending/quota machinery but stays
// deterministic — with unbounded queues and no quota it is
// verdict-for-verdict equivalent to the inline slow path (the datapath
// equivalence tests assert this).
package upcall

import (
	"fmt"
	"math"
	"sync"

	"tse/internal/bitvec"
	"tse/internal/vswitch"
)

// Options tunes a Subsystem.
type Options struct {
	// QueueCap bounds each per-source queue; 0 means unbounded (the
	// deterministic drive mode of the equivalence tests).
	QueueCap int
	// Handlers is the number of handler goroutines Start launches; <= 0
	// selects 1. The datapath pool calls Start only when its async
	// configuration asks for handler threads.
	Handlers int
	// QuotaPerSource is the OVS-style upcall rate limit: the number of
	// upcalls each source may admit per virtual second; 0 disables the
	// quota. Deduplicated misses consume no quota. Sources are ingress
	// vports in the port-aware datapath (OVS rate-limits upcalls at vport
	// granularity), so a victim port never shares its bucket with a
	// flooding port that happens to land on the same PMD worker. SetQuota
	// overrides the value per source — the seam the adaptive controller
	// (AdaptiveQuota, driven by the revalidator) tunes at runtime.
	QuotaPerSource int
	// HandlerBurst is the number of queued upcalls a handler drains and
	// resolves as one batch: the burst shares one flow-table classification
	// pass and ONE megaflow-install transaction (vswitch.HandleMissBatch →
	// tss.InsertBatch), so the classifier's O(|M|) copy-on-write publish
	// is paid once per burst instead of once per megaflow. <= 0 selects
	// DefaultHandlerBurst.
	HandlerBurst int
	// DisableDedup turns off the pending-table flow-miss deduplication
	// (ablation: every admitted miss becomes its own upcall).
	DisableDedup bool
}

// DefaultHandlerBurst is the handler drain burst size, matching the
// datapath's NETDEV_MAX_BURST-sized receive bursts.
const DefaultHandlerBurst = 32

// Outcome classifies what Submit did with one flow miss.
type Outcome int

const (
	// Enqueued: the miss became a new upcall in its source's queue.
	Enqueued Outcome = iota
	// Coalesced: an upcall for the same flow is already pending; the miss
	// was deduplicated onto it, consuming no queue slot and no quota.
	Coalesced
	// DroppedQueueFull: the source's queue is at QueueCap; the packet is
	// dropped without reaching the slow path.
	DroppedQueueFull
	// DroppedQuota: the source exhausted its per-second admission quota.
	DroppedQuota
)

// Dropped reports whether the outcome refused the miss at admission.
func (o Outcome) Dropped() bool { return o == DroppedQueueFull || o == DroppedQuota }

// String names the outcome for diagnostics.
func (o Outcome) String() string {
	switch o {
	case Enqueued:
		return "enqueued"
	case Coalesced:
		return "coalesced"
	case DroppedQueueFull:
		return "dropped-queue-full"
	case DroppedQuota:
		return "dropped-quota"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Stats aggregates subsystem activity. Together with
// vswitch.Counters.Installs these are the enqueued/dropped/deduped/
// installed counters of the miss-to-install path.
type Stats struct {
	// Enqueued counts upcalls admitted to a queue; Deduped counts misses
	// coalesced onto an already-pending upcall of the same flow.
	Enqueued, Deduped uint64
	// QueueDrops and QuotaDrops count refused misses by reason.
	QueueDrops, QuotaDrops uint64
	// Handled counts upcalls resolved by a handler; each one is one
	// slow-path classification (installs appear in
	// vswitch.Counters.Installs).
	Handled uint64
	// Backlog is the current total queue depth and PendingFlows the
	// current pending-table size (snapshot fields); MaxBacklog is the
	// backlog high-water mark.
	Backlog, PendingFlows, MaxBacklog int
	// Residence aggregates flow-setup latency across all sources: how many
	// virtual seconds each handled upcall sat queued between admission and
	// handler pop (see LatencyHist).
	Residence LatencyHist
}

// pendingFlow is one in-flight upcall: the cell every waiter of the flow
// shares. verdict is written exactly once, before done is closed.
type pendingFlow struct {
	done    chan struct{}
	verdict vswitch.Verdict
}

// flowKey identifies one in-flight flow in the pending table: the exact
// header scoped by its source. Scoping by source mirrors OVS, where the
// ingress port is part of the flow key — the same header arriving on two
// vports is two flows, and deduplicating them together would let one
// port's pending upcall mask another port's distinct miss.
type flowKey struct {
	src int
	key string
}

// item is one queued upcall.
type item struct {
	h   bitvec.Vec
	now int64
	src int
	key flowKey
	p   *pendingFlow
}

// SourceStats is one source's (vport's) share of the admission counters.
type SourceStats struct {
	// Enqueued and Deduped count admitted misses; QueueDrops and
	// QuotaDrops count refusals by reason.
	Enqueued, Deduped, QueueDrops, QuotaDrops uint64
	// Residence is the port's flow-setup latency histogram: the virtual
	// seconds each of its handled upcalls spent queued between admission
	// (the enqueue stamp, shared by every miss coalesced onto the upcall)
	// and handler pop. Residence.P50()/P99() are the per-port flow-setup
	// percentiles; the revalidator reads the same histogram as the
	// backlog-residence input of the adaptive quota controller.
	Residence LatencyHist
}

// Ticket is a handle on a submitted upcall. The zero Ticket (returned for
// admission drops) is invalid.
type Ticket struct{ p *pendingFlow }

// Valid reports whether the ticket references a pending upcall.
func (t Ticket) Valid() bool { return t.p != nil }

// Wait blocks until a handler resolves the upcall, then returns its
// verdict.
func (t Ticket) Wait() vswitch.Verdict {
	<-t.p.done
	return t.p.verdict
}

// Resolved returns the verdict without blocking; ok is false while the
// upcall is still queued or being handled.
func (t Ticket) Resolved() (v vswitch.Verdict, ok bool) {
	select {
	case <-t.p.done:
		return t.p.verdict, true
	default:
		return vswitch.Verdict{}, false
	}
}

// Subsystem is the upcall machinery for one switch. It is safe for
// concurrent use: any number of sources may Submit while handlers drain.
type Subsystem struct {
	sw   *vswitch.Switch
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond // signalled on enqueue; handlers wait here
	queues   [][]item   // per-source FIFO, heads[i] is the pop position
	heads    []int
	pending  map[flowKey]*pendingFlow
	tokens   []int   // per-source quota tokens for the current second
	tokenAt  []int64 // virtual second the tokens were refilled at
	quota    []int   // per-source quota overrides; -1 = Options.QuotaPerSource
	srcStats []SourceStats
	next     int   // round-robin drain cursor
	depth    int   // total queued items
	clock    int64 // latest virtual time observed (Submit / HandleNAt)
	stats    Stats
	stopped  bool
	started  bool

	wg sync.WaitGroup // handler goroutines
}

// New builds a subsystem over the switch with one queue per source;
// sources <= 0 selects 1.
func New(sw *vswitch.Switch, sources int, opts Options) (*Subsystem, error) {
	if sw == nil {
		return nil, fmt.Errorf("upcall: subsystem needs a switch")
	}
	if sources <= 0 {
		sources = 1
	}
	u := &Subsystem{
		sw:       sw,
		opts:     opts,
		queues:   make([][]item, sources),
		heads:    make([]int, sources),
		pending:  make(map[flowKey]*pendingFlow),
		tokens:   make([]int, sources),
		tokenAt:  make([]int64, sources),
		quota:    make([]int, sources),
		srcStats: make([]SourceStats, sources),
	}
	u.cond = sync.NewCond(&u.mu)
	for i := range u.tokenAt {
		u.tokenAt[i] = math.MinInt64 // force a refill on the first Submit
		u.quota[i] = -1              // no override: Options.QuotaPerSource
	}
	return u, nil
}

// SetQuota overrides one source's per-second admission quota, with
// Options.QuotaPerSource semantics (0 disables the quota for the source);
// a negative value removes the override. The adaptive controller calls
// this from the revalidator's sweep; it takes effect at the source's next
// token refill (the next virtual second).
func (u *Subsystem) SetQuota(src, quota int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if quota < 0 {
		quota = -1
	}
	u.quota[src] = quota
}

// QuotaFor returns the source's effective per-second admission quota
// (0 = unlimited).
func (u *Subsystem) QuotaFor(src int) int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.quotaForLocked(src)
}

func (u *Subsystem) quotaForLocked(src int) int {
	if q := u.quota[src]; q >= 0 {
		return q
	}
	return u.opts.QuotaPerSource
}

// PerSource returns a snapshot of each source's admission counters — the
// per-vport fairness ledger (who was admitted, who was refused, and why).
func (u *Subsystem) PerSource() []SourceStats {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]SourceStats, len(u.srcStats))
	copy(out, u.srcStats)
	return out
}

// Switch returns the subsystem's switch.
func (u *Subsystem) Switch() *vswitch.Switch { return u.sw }

// Sources returns the number of per-source queues.
func (u *Subsystem) Sources() int { return len(u.queues) }

// Submit offers one flow miss from source src at virtual time now. The
// outcome says what happened: a new upcall was enqueued, the miss was
// coalesced onto a pending upcall of the same flow, or it was refused
// (queue full / quota). The ticket is valid for Enqueued and Coalesced and
// resolves when a handler drains the upcall.
func (u *Subsystem) Submit(src int, h bitvec.Vec, now int64) (Ticket, Outcome) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if now > u.clock {
		u.clock = now
	}
	key := flowKey{src: src, key: h.Key()}
	if !u.opts.DisableDedup {
		if p, ok := u.pending[key]; ok {
			u.stats.Deduped++
			u.srcStats[src].Deduped++
			return Ticket{p}, Coalesced
		}
	}
	// Queue bound before quota: a miss refused for lack of queue space
	// must not burn the source's admission budget, or a flooding-induced
	// full queue would eat the quota that later same-second misses (the
	// victim's own flow setup) are entitled to.
	if u.opts.QueueCap > 0 && len(u.queues[src])-u.heads[src] >= u.opts.QueueCap {
		u.stats.QueueDrops++
		u.srcStats[src].QueueDrops++
		return Ticket{}, DroppedQueueFull
	}
	if q := u.quotaForLocked(src); q > 0 {
		if u.tokenAt[src] != now {
			u.tokenAt[src] = now
			u.tokens[src] = q
		}
		if u.tokens[src] == 0 {
			u.stats.QuotaDrops++
			u.srcStats[src].QuotaDrops++
			return Ticket{}, DroppedQuota
		}
		u.tokens[src]--
	}
	p := &pendingFlow{done: make(chan struct{})}
	if !u.opts.DisableDedup {
		u.pending[key] = p
	}
	// Clone: the caller's header buffer may be reused before a handler
	// gets to the upcall.
	u.queues[src] = append(u.queues[src], item{h: h.Clone(), now: now, src: src, key: key, p: p})
	u.depth++
	if u.depth > u.stats.MaxBacklog {
		u.stats.MaxBacklog = u.depth
	}
	u.stats.Enqueued++
	u.srcStats[src].Enqueued++
	u.cond.Signal()
	return Ticket{p}, Enqueued
}

// SubmitSync is the drive-mode slow path: it submits the miss and, when
// admitted, synchronously drains upcalls (the source's own queue first)
// until the ticket resolves. The upcall still traverses the full
// queue/pending/quota machinery, so drive-mode runs exercise the same code
// the handler goroutines do while staying deterministic. An admission drop
// returns ok == false via the outcome; the verdict is then zero.
func (u *Subsystem) SubmitSync(src int, h bitvec.Vec, now int64) (vswitch.Verdict, Outcome) {
	t, out := u.Submit(src, h, now)
	if out.Dropped() {
		return vswitch.Verdict{}, out
	}
	for {
		if v, ok := t.Resolved(); ok {
			return v, out
		}
		if u.handleNext(src) {
			continue
		}
		if u.handleAny() {
			continue
		}
		// Nothing queued anywhere, yet the ticket is unresolved: a
		// concurrent handler owns the upcall mid-flight; wait for it.
		return t.Wait(), out
	}
}

// HandleN drains and handles up to max queued upcalls, visiting the
// per-source queues round-robin — the fairness discipline that keeps one
// flooding source from monopolising the handler budget. It returns the
// number handled. The dataplane simulator calls this once per virtual
// second with the modelled handler service rate; math.MaxInt drains
// everything.
//
// Draining proceeds in bursts of Options.HandlerBurst: the round-robin pop
// order is unchanged (fairness is decided at pop time, item by item), but
// each burst is resolved through one vswitch.HandleMissBatch, so a K-item
// burst installs its megaflows in one classifier transaction with one
// snapshot publish.
func (u *Subsystem) HandleN(max int) int {
	return u.handleN(max)
}

// HandleNAt is HandleN with an explicit drain time: the subsystem clock
// advances to now before the pops, so the residence recorded for each
// drained upcall is measured against the drain tick even when no Submit
// has advanced the clock (a backlog draining after a flood stops). The
// dataplane simulator's per-second drain uses this entry point.
func (u *Subsystem) HandleNAt(max int, now int64) int {
	u.mu.Lock()
	if now > u.clock {
		u.clock = now
	}
	u.mu.Unlock()
	return u.handleN(max)
}

func (u *Subsystem) handleN(max int) int {
	n := 0
	burst := u.burstSize()
	items := make([]item, 0, burst)
	for n < max {
		size := burst
		if left := max - n; left < size {
			size = left
		}
		u.mu.Lock()
		items = u.popBurstLocked(items[:0], size)
		u.mu.Unlock()
		if len(items) == 0 {
			break
		}
		u.handleBatch(items)
		n += len(items)
	}
	return n
}

// burstSize resolves the configured handler drain burst.
func (u *Subsystem) burstSize() int {
	if u.opts.HandlerBurst > 0 {
		return u.opts.HandlerBurst
	}
	return DefaultHandlerBurst
}

// popBurstLocked pops up to max queued upcalls round-robin into items.
// Callers hold u.mu.
func (u *Subsystem) popBurstLocked(items []item, max int) []item {
	for len(items) < max {
		it, ok := u.popAnyLocked()
		if !ok {
			break
		}
		items = append(items, it)
	}
	return items
}

// DrainAll handles every queued upcall and returns the number handled.
func (u *Subsystem) DrainAll() int { return u.HandleN(math.MaxInt) }

// Start launches the handler goroutines (Options.Handlers, default 1).
// They drain the queues round-robin, blocking while idle, until Stop.
func (u *Subsystem) Start() {
	u.mu.Lock()
	if u.started {
		u.mu.Unlock()
		return
	}
	u.started = true
	u.stopped = false
	n := u.opts.Handlers
	if n <= 0 {
		n = 1
	}
	u.mu.Unlock()
	for i := 0; i < n; i++ {
		u.wg.Add(1)
		go u.handlerLoop()
	}
}

// Stop wakes the handlers, lets them drain the remaining backlog, and
// joins them; outstanding tickets resolve before Stop returns. A stopped
// subsystem can be Started again.
func (u *Subsystem) Stop() {
	u.mu.Lock()
	if !u.started {
		u.mu.Unlock()
		return
	}
	u.stopped = true
	u.started = false
	u.cond.Broadcast()
	u.mu.Unlock()
	u.wg.Wait()
}

// Stats returns a snapshot of the activity counters.
func (u *Subsystem) Stats() Stats {
	u.mu.Lock()
	defer u.mu.Unlock()
	st := u.stats
	st.Backlog = u.depth
	st.PendingFlows = len(u.pending)
	return st
}

// handlerLoop is one handler goroutine: block while idle, otherwise pop a
// round-robin burst and resolve it as one batch (one classifier
// transaction per burst, see HandleN).
func (u *Subsystem) handlerLoop() {
	defer u.wg.Done()
	burst := u.burstSize()
	items := make([]item, 0, burst)
	for {
		u.mu.Lock()
		for u.depth == 0 && !u.stopped {
			u.cond.Wait()
		}
		items = u.popBurstLocked(items[:0], burst)
		u.mu.Unlock()
		if len(items) == 0 {
			return // stopped and drained
		}
		u.handleBatch(items)
	}
}

// handle resolves one upcall: the handler-side slow path. The verdict
// comes from vswitch.HandleMissFrom — classification plus megaflow
// install, attributed to the miss's ingress port — stamped with the miss's
// own virtual time, exactly as the inline pipeline stamps it. The pending
// entry is then retired and every waiter released. This is the drive-mode
// (SubmitSync) path; handler drains batch through handleBatch instead.
func (u *Subsystem) handle(it item) {
	v := u.sw.HandleMissFrom(it.src, it.h, it.now)
	u.resolve(it, v)
}

// handleBatch resolves one drained burst through the batched slow path:
// one flow-table classification pass and ONE megaflow-install transaction
// (single snapshot publish) for the whole burst, stamped at the burst's
// latest miss time. Every waiter of every flow in the burst is released.
func (u *Subsystem) handleBatch(items []item) {
	if len(items) == 1 {
		u.handle(items[0])
		return
	}
	now := items[0].now
	ms := make([]vswitch.Miss, len(items))
	for i, it := range items {
		if it.now > now {
			now = it.now
		}
		ms[i] = vswitch.Miss{Port: it.src, Header: it.h}
	}
	vs := u.sw.HandleMissBatch(ms, now)
	for i, it := range items {
		u.resolve(it, vs[i])
	}
}

// resolve retires one handled upcall's pending entry and releases its
// waiters.
func (u *Subsystem) resolve(it item, v vswitch.Verdict) {
	u.mu.Lock()
	if u.pending[it.key] == it.p {
		delete(u.pending, it.key)
	}
	u.stats.Handled++
	u.mu.Unlock()
	it.p.verdict = v
	close(it.p.done)
}

// handleNext pops and handles the oldest upcall of source src, reporting
// whether there was one.
func (u *Subsystem) handleNext(src int) bool {
	u.mu.Lock()
	it, ok := u.popLocked(src)
	u.mu.Unlock()
	if !ok {
		return false
	}
	u.handle(it)
	return true
}

// handleAny pops and handles one upcall from any queue (round-robin),
// reporting whether there was one.
func (u *Subsystem) handleAny() bool {
	u.mu.Lock()
	it, ok := u.popAnyLocked()
	u.mu.Unlock()
	if !ok {
		return false
	}
	u.handle(it)
	return true
}

// popLocked removes the oldest upcall of source src and records its
// residence — the virtual seconds between its enqueue stamp and the
// subsystem clock at pop time, the queueing-delay component of flow-setup
// latency. Callers hold u.mu.
func (u *Subsystem) popLocked(src int) (item, bool) {
	q := u.queues[src]
	h := u.heads[src]
	if h >= len(q) {
		return item{}, false
	}
	it := q[h]
	q[h] = item{} // release the header and pending references
	h++
	res := u.clock - it.now
	u.srcStats[src].Residence.Observe(res)
	u.stats.Residence.Observe(res)
	switch {
	case h == len(q):
		// Queue drained: rewind so the backing array is reused.
		u.queues[src] = q[:0]
		u.heads[src] = 0
	case h >= 32 && h*2 >= len(q):
		// Mostly-consumed head: compact so a standing backlog (pops and
		// pushes balanced, queue never empty) keeps the backing array at
		// O(live items), not O(items ever enqueued). Amortised O(1).
		n := copy(q, q[h:])
		for i := n; i < len(q); i++ {
			q[i] = item{} // drop references from the vacated tail
		}
		u.queues[src] = q[:n]
		u.heads[src] = 0
	default:
		u.heads[src] = h
	}
	u.depth--
	return it, true
}

// popAnyLocked removes the oldest upcall of the next non-empty queue in
// round-robin order. Callers hold u.mu.
func (u *Subsystem) popAnyLocked() (item, bool) {
	for i := 0; i < len(u.queues); i++ {
		src := (u.next + i) % len(u.queues)
		if it, ok := u.popLocked(src); ok {
			u.next = (src + 1) % len(u.queues)
			return it, true
		}
	}
	return item{}, false
}
