// Tests for the port-keyed slow path: per-port admission quotas (the
// fairness invariant the vport refactor exists for), the adaptive quota
// feedback loop, and the batched handler drain's single-publish guarantee.
package upcall_test

import (
	"sync"
	"testing"

	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/upcall"
)

// TestPortQuotaIndependence: one port's flood exhausting its admission
// quota leaves another port's full budget untouched — ports are sources,
// so sharing a PMD worker no longer means sharing a bucket.
func TestPortQuotaIndependence(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 2, upcall.Options{QuotaPerSource: 4})
	for i := 0; i < 10; i++ {
		_, out := sub.Submit(0, header(0x0a100000+uint32(i), 47000), 0)
		want := upcall.Enqueued
		if i >= 4 {
			want = upcall.DroppedQuota
		}
		if out != want {
			t.Fatalf("flood submit %d: %v, want %v", i, out, want)
		}
	}
	// The victim port, same virtual second: full quota available.
	for i := 0; i < 4; i++ {
		if _, out := sub.Submit(1, header(0x0a200000+uint32(i), 47100), 0); out != upcall.Enqueued {
			t.Fatalf("victim submit %d refused (%v) despite its own bucket", i, out)
		}
	}
	per := sub.PerSource()
	if per[0].Enqueued != 4 || per[0].QuotaDrops != 6 {
		t.Errorf("flood port stats %+v, want 4 enqueued / 6 quota drops", per[0])
	}
	if per[1].Enqueued != 4 || per[1].QuotaDrops != 0 {
		t.Errorf("victim port stats %+v, want 4 enqueued / 0 drops", per[1])
	}
}

// TestSetQuotaOverride: a per-source override takes effect at the next
// token refill and a negative value restores the configured default.
func TestSetQuotaOverride(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 2, upcall.Options{QuotaPerSource: 8})
	sub.SetQuota(0, 2)
	if got := sub.QuotaFor(0); got != 2 {
		t.Fatalf("QuotaFor(0) = %d after override, want 2", got)
	}
	if got := sub.QuotaFor(1); got != 8 {
		t.Fatalf("QuotaFor(1) = %d, want the configured 8", got)
	}
	for i := 0; i < 3; i++ {
		_, out := sub.Submit(0, header(0x0a300000+uint32(i), 47200), 0)
		want := upcall.Enqueued
		if i >= 2 {
			want = upcall.DroppedQuota
		}
		if out != want {
			t.Fatalf("submit %d under override: %v, want %v", i, out, want)
		}
	}
	sub.SetQuota(0, -1)
	if got := sub.QuotaFor(0); got != 8 {
		t.Fatalf("QuotaFor(0) = %d after clearing the override, want 8", got)
	}
}

// TestAdaptiveQuotaFor pins the controller curve: full quota at or below
// the target, inverse shrink beyond it, floored at MinQuota.
func TestAdaptiveQuotaFor(t *testing.T) {
	a := upcall.AdaptiveQuota{BaseQuota: 64, MinQuota: 4, TargetFootprint: 64}
	cases := []struct{ pressure, want int }{
		{0, 64}, {64, 64}, {128, 32}, {256, 16}, {4096, 4}, {1 << 20, 4},
	}
	for _, c := range cases {
		if got := a.QuotaFor(c.pressure); got != c.want {
			t.Errorf("QuotaFor(%d) = %d, want %d", c.pressure, got, c.want)
		}
	}
	// Defaults: MinQuota -> 1, TargetFootprint -> BaseQuota.
	d := upcall.AdaptiveQuota{BaseQuota: 8}
	if got := d.QuotaFor(8); got != 8 {
		t.Errorf("default target: QuotaFor(8) = %d, want 8", got)
	}
	if got := d.QuotaFor(1 << 20); got != 1 {
		t.Errorf("default floor: QuotaFor(big) = %d, want 1", got)
	}
}

// TestAdaptiveQuotaFeedback drives the full loop: a flooding port's
// megaflow footprint shrinks its quota sweep by sweep while the victim
// port keeps BaseQuota, and the flood port recovers to BaseQuota once its
// attack state expires from the cache.
func TestAdaptiveQuotaFeedback(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	adapt := &upcall.AdaptiveQuota{BaseQuota: 32, MinQuota: 2, TargetFootprint: 8}
	sub := newSub(t, sw, 2, upcall.Options{QuotaPerSource: 32})
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{
		Switch: sw, Subsystem: sub, Adapt: adapt})
	if err != nil {
		t.Fatal(err)
	}

	// Three attack seconds: port 0 floods tuple-space-exploding headers
	// (each spawning its own megaflow), port 1 sets up one benign flow;
	// the sweep after each second re-tunes.
	tr, err := core.CoLocated(sw.FlowTable(), core.CoLocatedOptions{Noise: true, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for ; now < 3; now++ {
		for i := 0; i < 32; i++ {
			sub.Submit(0, tr.Headers[(int(now)*32+i)%len(tr.Headers)], now)
		}
		sub.Submit(1, header(0x0a500000, 47301), now)
		sub.DrainAll()
		rv.Sweep(now)
	}
	if got := sub.QuotaFor(0); got >= adapt.BaseQuota {
		t.Errorf("flood port quota %d did not shrink below base %d", got, adapt.BaseQuota)
	}
	if got := sub.QuotaFor(1); got != adapt.BaseQuota {
		t.Errorf("victim port quota %d, want full base %d", got, adapt.BaseQuota)
	}

	// Recovery: no traffic past the idle horizon; the expiry sweep still
	// sees the dying entries, the next one sees a clean cache.
	now += sw.IdleTimeout() + 1
	rv.Sweep(now)
	rv.Sweep(now + 1)
	if got := sub.QuotaFor(0); got != adapt.BaseQuota {
		t.Errorf("flood port quota %d after expiry, want recovered base %d", got, adapt.BaseQuota)
	}
}

// TestHandlerDrainPublishesOnce is the acceptance criterion at the upcall
// layer: a drained K-miss burst installs its megaflows through exactly one
// classifier snapshot publish.
func TestHandlerDrainPublishesOnce(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 2, upcall.Options{HandlerBurst: 16})
	for i := 0; i < 16; i++ {
		if _, out := sub.Submit(i%2, header(0x0a600000+uint32(i), 47400), 0); out != upcall.Enqueued {
			t.Fatalf("submit %d: %v", i, out)
		}
	}
	before := sw.MFC().Stats().Publishes
	if n := sub.HandleN(16); n != 16 {
		t.Fatalf("handled %d, want 16", n)
	}
	if pubs := sw.MFC().Stats().Publishes - before; pubs != 1 {
		t.Errorf("16-miss drain published %d snapshots, want exactly 1", pubs)
	}
	if got := sw.Counters().Installs; got != 16 {
		t.Errorf("installs = %d, want 16", got)
	}
}

// TestConcurrentPortSubmits is the satellite -race requirement: concurrent
// submitters on distinct ports, handler goroutines draining in batches,
// and an adaptive revalidator re-tuning quotas mid-flight.
func TestConcurrentPortSubmits(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 4, upcall.Options{Handlers: 2, QuotaPerSource: 1 << 20})
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{
		Switch: sw, Subsystem: sub,
		Adapt: &upcall.AdaptiveQuota{BaseQuota: 1 << 20, TargetFootprint: 64}})
	if err != nil {
		t.Fatal(err)
	}
	sub.Start()
	var wg sync.WaitGroup
	for port := 0; port < 4; port++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := header(uint32(0x0a700000+(port<<12)+i), uint16(47500+port))
				if _, out := sub.Submit(port, h, int64(i%5)); out.Dropped() {
					t.Errorf("port %d submit %d dropped: %v", port, i, out)
					return
				}
			}
		}(port)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for now := int64(0); now < 10; now++ {
			rv.Sweep(now)
		}
	}()
	wg.Wait()
	<-done
	sub.Stop()
	st := sub.Stats()
	if st.Backlog != 0 || st.PendingFlows != 0 {
		t.Errorf("backlog=%d pending=%d after Stop", st.Backlog, st.PendingFlows)
	}
	per := sub.PerSource()
	var enq, dedup uint64
	for _, s := range per {
		enq += s.Enqueued
		dedup += s.Deduped
	}
	if enq != st.Enqueued || dedup != st.Deduped {
		t.Errorf("per-source stats (enq %d, dedup %d) do not sum to totals (%d, %d)",
			enq, dedup, st.Enqueued, st.Deduped)
	}
	if st.Handled != st.Enqueued {
		t.Errorf("handled %d of %d enqueued", st.Handled, st.Enqueued)
	}
}
