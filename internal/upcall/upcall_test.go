package upcall_test

import (
	"fmt"
	"sync"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// newSwitch builds the PMD-configuration switch the upcall subsystem
// fronts: slow path + megaflow cache, no switch-level microflow layer.
func newSwitch(t testing.TB, use flowtable.UseCase) *vswitch.Switch {
	t.Helper()
	tbl := flowtable.UseCaseACL(use, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func newSub(t testing.TB, sw *vswitch.Switch, sources int, opts upcall.Options) *upcall.Subsystem {
	t.Helper()
	u, err := upcall.New(sw, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// header builds a benign web-flow header with a distinguishing source IP
// and port.
func header(sip uint32, sport uint16) bitvec.Vec {
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	set := func(name string, v uint64) {
		f, _ := l.FieldIndex(name)
		h.SetField(l, f, v)
	}
	set("ip_src", uint64(sip))
	set("ip_dst", 0xc0a80002)
	set("ip_proto", 6)
	set("tp_src", uint64(sport))
	set("tp_dst", 80)
	return h
}

// TestDedupBurst is the satellite requirement verbatim: a 32-packet
// same-flow miss burst coalesces onto one upcall and installs exactly one
// megaflow.
func TestDedupBurst(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 1, upcall.Options{})
	h := header(0x0a000001, 40000)

	tickets := make([]upcall.Ticket, 32)
	for i := range tickets {
		tk, out := sub.Submit(0, h, 0)
		want := upcall.Coalesced
		if i == 0 {
			want = upcall.Enqueued
		}
		if out != want {
			t.Fatalf("submit %d: outcome %v, want %v", i, out, want)
		}
		tickets[i] = tk
	}
	st := sub.Stats()
	if st.Enqueued != 1 || st.Deduped != 31 {
		t.Fatalf("stats enqueued=%d deduped=%d, want 1/31", st.Enqueued, st.Deduped)
	}
	if n := sub.DrainAll(); n != 1 {
		t.Fatalf("drained %d upcalls, want 1", n)
	}
	if got := sw.Counters().Installs; got != 1 {
		t.Errorf("installs = %d, want exactly 1 for the whole burst", got)
	}
	if got := sw.MFC().EntryCount(); got != 1 {
		t.Errorf("MFC holds %d entries, want 1", got)
	}
	first := tickets[0].Wait()
	for i, tk := range tickets {
		v, ok := tk.Resolved()
		if !ok {
			t.Fatalf("ticket %d unresolved after drain", i)
		}
		if v != first {
			t.Fatalf("ticket %d verdict %+v != ticket 0 %+v", i, v, first)
		}
	}
	if v := first; v.Path != vswitch.PathSlow || v.Action != flowtable.Allow {
		t.Errorf("burst verdict %+v, want slow-path allow", v)
	}
	if st := sub.Stats(); st.PendingFlows != 0 || st.Backlog != 0 {
		t.Errorf("pending=%d backlog=%d after drain, want 0/0", st.PendingFlows, st.Backlog)
	}
}

// TestDedupDisabled: the ablation enqueues every miss separately.
func TestDedupDisabled(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 1, upcall.Options{DisableDedup: true})
	h := header(0x0a000002, 40001)
	for i := 0; i < 4; i++ {
		if _, out := sub.Submit(0, h, 0); out != upcall.Enqueued {
			t.Fatalf("submit %d: outcome %v, want enqueued", i, out)
		}
	}
	if n := sub.DrainAll(); n != 4 {
		t.Fatalf("drained %d, want 4", n)
	}
	// Install is idempotent (same key+mask refreshes), so still 1 entry
	// but 4 slow-path classifications.
	if got := sw.Counters().Slow; got != 4 {
		t.Errorf("slow-path classifications = %d, want 4", got)
	}
	if got := sw.MFC().EntryCount(); got != 1 {
		t.Errorf("MFC holds %d entries, want 1", got)
	}
}

// TestQueueBound: a full queue refuses the miss.
func TestQueueBound(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 1, upcall.Options{QueueCap: 2})
	for i := 0; i < 4; i++ {
		_, out := sub.Submit(0, header(0x0a000010+uint32(i), 40100), 0)
		want := upcall.Enqueued
		if i >= 2 {
			want = upcall.DroppedQueueFull
		}
		if out != want {
			t.Fatalf("submit %d: outcome %v, want %v", i, out, want)
		}
	}
	st := sub.Stats()
	if st.Enqueued != 2 || st.QueueDrops != 2 {
		t.Fatalf("enqueued=%d queueDrops=%d, want 2/2", st.Enqueued, st.QueueDrops)
	}
	if st.MaxBacklog != 2 {
		t.Errorf("max backlog %d, want 2", st.MaxBacklog)
	}
	// Draining frees the slots for the next burst.
	sub.DrainAll()
	if _, out := sub.Submit(0, header(0x0a000020, 40101), 0); out != upcall.Enqueued {
		t.Errorf("post-drain submit refused: %v", out)
	}
}

// TestQuotaRefill: the per-source rate limit refuses the tail of a
// same-second flood and refills on the next virtual second.
func TestQuotaRefill(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 2, upcall.Options{QuotaPerSource: 2})
	for i := 0; i < 3; i++ {
		_, out := sub.Submit(0, header(0x0a000030+uint32(i), 40200), 0)
		want := upcall.Enqueued
		if i >= 2 {
			want = upcall.DroppedQuota
		}
		if out != want {
			t.Fatalf("submit %d: outcome %v, want %v", i, out, want)
		}
	}
	// A different source has its own bucket.
	if _, out := sub.Submit(1, header(0x0a000033, 40201), 0); out != upcall.Enqueued {
		t.Fatalf("source 1 refused despite its own quota: %v", out)
	}
	// Next second: source 0 refills.
	if _, out := sub.Submit(0, header(0x0a000034, 40202), 1); out != upcall.Enqueued {
		t.Fatalf("source 0 refused after refill: %v", out)
	}
	if st := sub.Stats(); st.QuotaDrops != 1 {
		t.Errorf("quota drops = %d, want 1", st.QuotaDrops)
	}
}

// TestQueueFullDoesNotBurnQuota: a miss refused for lack of queue space
// must leave the source's admission budget intact.
func TestQueueFullDoesNotBurnQuota(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 1, upcall.Options{QueueCap: 1, QuotaPerSource: 2})
	if _, out := sub.Submit(0, header(0x0a000080, 40600), 0); out != upcall.Enqueued {
		t.Fatalf("first submit: %v", out)
	}
	if _, out := sub.Submit(0, header(0x0a000081, 40601), 0); out != upcall.DroppedQueueFull {
		t.Fatalf("second submit: %v, want queue-full", out)
	}
	sub.DrainAll()
	// The queue-full refusal consumed no token: the second of the two
	// quota slots is still available this second.
	if _, out := sub.Submit(0, header(0x0a000082, 40602), 0); out != upcall.Enqueued {
		t.Fatalf("post-drain submit: %v, want enqueued (token preserved)", out)
	}
	sub.DrainAll()
	if _, out := sub.Submit(0, header(0x0a000083, 40603), 0); out != upcall.DroppedQuota {
		t.Fatalf("fourth submit: %v, want quota drop (budget spent)", out)
	}
}

// TestRoundRobinDrain: HandleN alternates across source queues, so a
// flooding source cannot monopolise the handler budget.
func TestRoundRobinDrain(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 2, upcall.Options{})
	var flood, victim []upcall.Ticket
	for i := 0; i < 6; i++ {
		tk, _ := sub.Submit(0, header(0x0a000040+uint32(i), 40300), 0)
		flood = append(flood, tk)
	}
	for i := 0; i < 2; i++ {
		tk, _ := sub.Submit(1, header(0x0a000050+uint32(i), 40301), 0)
		victim = append(victim, tk)
	}
	// A budget of 4 must serve both of source 1's upcalls even though
	// source 0 queued three times as many first.
	if n := sub.HandleN(4); n != 4 {
		t.Fatalf("handled %d, want 4", n)
	}
	for i, tk := range victim {
		if _, ok := tk.Resolved(); !ok {
			t.Errorf("victim upcall %d still queued behind the flood", i)
		}
	}
	resolved := 0
	for _, tk := range flood {
		if _, ok := tk.Resolved(); ok {
			resolved++
		}
	}
	if resolved != 2 {
		t.Errorf("flood got %d of the budget, want 2", resolved)
	}
}

// TestQueueCompactionPreservesFIFO drives a deep queue through the
// mid-drain compaction path (head past the compaction threshold while the
// queue stays non-empty) and checks strict FIFO resolution throughout.
func TestQueueCompactionPreservesFIFO(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 1, upcall.Options{DisableDedup: true})
	var tickets []upcall.Ticket
	push := func(n int) {
		for i := 0; i < n; i++ {
			k := len(tickets)
			tk, out := sub.Submit(0, header(0x0a010000+uint32(k), uint16(41000+k)), 0)
			if out != upcall.Enqueued {
				t.Fatalf("submit %d: %v", k, out)
			}
			tickets = append(tickets, tk)
		}
	}
	checkPrefix := func(resolved int) {
		t.Helper()
		for i, tk := range tickets {
			if _, ok := tk.Resolved(); ok != (i < resolved) {
				t.Fatalf("ticket %d resolved=%v, want %v (FIFO prefix of %d)",
					i, ok, i < resolved, resolved)
			}
		}
	}
	push(100)
	sub.HandleN(60) // compaction triggers mid-drain
	checkPrefix(60)
	push(50) // appends onto the compacted backing array
	sub.HandleN(70)
	checkPrefix(130)
	sub.DrainAll()
	checkPrefix(len(tickets))
}

// TestSubmitSyncMatchesInline: the drive mode routes every miss through
// the queue/pending machinery yet stays verdict- and counter-equivalent to
// the inline pipeline.
func TestSubmitSyncMatchesInline(t *testing.T) {
	swA := newSwitch(t, flowtable.SipDp)
	swB := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, swB, 1, upcall.Options{})
	tr, err := core.CoLocated(swA.FlowTable(), core.CoLocatedOptions{Noise: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var scratch [1]vswitch.Verdict
	for i, h := range tr.Headers {
		want := swA.Process(h, 0)
		// Fast path on swB, with the miss routed through the subsystem —
		// the seam the async datapath uses.
		got := swB.ProcessBatchFunc(tr.Headers[i:i+1], 0, scratch[:],
			func(_, _ int) vswitch.Verdict {
				v, out := sub.SubmitSync(0, h, 0)
				if out.Dropped() {
					t.Fatalf("packet %d dropped by an unbounded subsystem: %v", i, out)
				}
				return v
			})[0]
		if got != want {
			t.Fatalf("packet %d: upcall verdict %+v != inline %+v", i, got, want)
		}
	}
	if ca, cb := swA.Counters(), swB.Counters(); ca != cb {
		t.Errorf("counters diverge: inline %+v, upcall %+v", ca, cb)
	}
	ea, eb := swA.MFC().Entries(), swB.MFC().Entries()
	if len(ea) != len(eb) {
		t.Fatalf("MFC entries: inline %d, upcall %d", len(ea), len(eb))
	}
	for i := range ea {
		if !ea[i].Key.Equal(eb[i].Key) || !ea[i].Mask.Equal(eb[i].Mask) ||
			ea[i].Action != eb[i].Action {
			t.Fatalf("MFC entry %d diverges", i)
		}
	}
}

// TestRevalidatorExpiresIdle: the revalidator's sweep applies the same
// idle horizon Switch.Tick does.
func TestRevalidatorExpiresIdle(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{Switch: sw})
	if err != nil {
		t.Fatal(err)
	}
	// Two headers that spawn distinct megaflows: an allowed web flow and a
	// denied port (a drop proof with a different mask).
	sw.Process(header(0x0a000060, 40400), 0)
	denied := header(0x0a000061, 40401)
	l := bitvec.IPv4Tuple
	dp, _ := l.FieldIndex("tp_dst")
	denied.SetField(l, dp, 81)
	sw.Process(denied, 5)
	if got := sw.MFC().EntryCount(); got != 2 {
		t.Fatalf("setup installed %d megaflows, want 2", got)
	}
	if res := rv.Sweep(9); res.Deleted() != 0 {
		t.Fatalf("sweep at t=9 deleted %d, want 0", res.Deleted())
	}
	if res := rv.Sweep(12); res.Expired != 1 {
		t.Fatalf("sweep at t=12 expired %d, want 1 (the t=0 entry)", res.Expired)
	}
	if res := rv.Sweep(30); res.Expired != 1 {
		t.Fatalf("sweep at t=30 expired %d, want 1 (the t=5 entry)", res.Expired)
	}
	if n := sw.MFC().EntryCount(); n != 0 {
		t.Errorf("%d entries survive full expiry", n)
	}
}

// TestRevalidatorRevalidatesAfterSwap: SwapTable defers the dump-and-check
// to the revalidator, which deletes exactly the entries the new table no
// longer regenerates.
func TestRevalidatorRevalidatesAfterSwap(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{Switch: sw})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.CoLocated(sw.FlowTable(), core.CoLocatedOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range tr.Headers {
		sw.Process(h, 0)
	}
	before := sw.MFC().EntryCount()
	if before == 0 {
		t.Fatal("attack installed nothing")
	}

	// Swapping in an identical table invalidates nothing.
	same := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	if err := sw.SwapTable(same); err != nil {
		t.Fatal(err)
	}
	if res := rv.Sweep(0); res.Invalidated != 0 {
		t.Fatalf("identical table invalidated %d entries", res.Invalidated)
	}
	if got := sw.MFC().EntryCount(); got != before {
		t.Fatalf("entry count changed %d -> %d under identical table", before, got)
	}

	// A different ACL shape invalidates the stale megaflows at the next
	// sweep — not synchronously at swap time.
	other := flowtable.UseCaseACL(flowtable.Dp, flowtable.ACLParams{})
	if err := sw.SwapTable(other); err != nil {
		t.Fatal(err)
	}
	if got := sw.MFC().EntryCount(); got != before {
		t.Fatalf("SwapTable swept synchronously: %d -> %d", before, got)
	}
	res := rv.Sweep(0)
	if res.Invalidated == 0 {
		t.Fatal("sweep after ACL change invalidated nothing")
	}
	// Whatever survived must regenerate identically under the new table.
	gen := sw.Generator()
	for _, e := range sw.MFC().Entries() {
		if !vswitch.Revalidate(gen, e) {
			t.Fatalf("stale entry survived revalidation: %+v", e)
		}
	}
}

// TestConcurrentHandlersRevalidatorReaders runs the full asynchronous
// deployment under -race: four submitting sources, four handler
// goroutines installing megaflows, a revalidator goroutine sweeping on a
// tick channel, a mid-run table swap, and reader goroutines running
// LookupBatch against the shared classifier throughout.
func TestConcurrentHandlersRevalidatorReaders(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 4, upcall.Options{Handlers: 4})
	sub.Start()
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{Switch: sw})
	if err != nil {
		t.Fatal(err)
	}
	ticks := make(chan int64)
	rvDone := make(chan struct{})
	go func() {
		defer close(rvDone)
		rv.Run(ticks)
	}()

	tr, err := core.CoLocated(sw.FlowTable(), core.CoLocatedOptions{Noise: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(seed int) {
			defer readers.Done()
			out := make([]tss.BatchResult, 32)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lo := (seed*37 + i*32) % len(tr.Headers)
				hi := lo + 32
				if hi > len(tr.Headers) {
					hi = len(tr.Headers)
				}
				sw.MFC().LookupBatch(tr.Headers[lo:hi], int64(i), out)
			}
		}(r)
	}

	var submitters sync.WaitGroup
	for src := 0; src < 4; src++ {
		submitters.Add(1)
		go func(src int) {
			defer submitters.Done()
			for i := src; i < len(tr.Headers); i += 4 {
				v, out := sub.SubmitSync(src, tr.Headers[i], int64(i%7))
				if out.Dropped() {
					t.Errorf("unbounded subsystem dropped an upcall: %v", out)
					return
				}
				if v.Path != vswitch.PathSlow && v.Path != vswitch.PathMegaflow {
					t.Errorf("upcall resolved with path %v", v.Path)
					return
				}
			}
		}(src)
	}

	// Feed revalidator ticks and swap the table mid-run.
	for now := int64(0); now < 20; now++ {
		ticks <- now
		if now == 10 {
			if err := sw.SwapTable(flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})); err != nil {
				t.Error(err)
			}
		}
	}
	submitters.Wait()
	close(stop)
	readers.Wait()
	close(ticks)
	<-rvDone
	sub.Stop()

	st := sub.Stats()
	if st.Backlog != 0 || st.PendingFlows != 0 {
		t.Errorf("backlog=%d pending=%d after Stop, want 0/0", st.Backlog, st.PendingFlows)
	}
	if st.Handled != st.Enqueued {
		t.Errorf("handled %d of %d enqueued upcalls", st.Handled, st.Enqueued)
	}
}

// TestStopDrainsBacklog: handlers finish queued work before exiting, so
// no ticket is abandoned.
func TestStopDrainsBacklog(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 1, upcall.Options{Handlers: 1})
	var tickets []upcall.Ticket
	for i := 0; i < 16; i++ {
		tk, out := sub.Submit(0, header(0x0a000070+uint32(i), uint16(40500+i)), 0)
		if out != upcall.Enqueued {
			t.Fatalf("submit %d: %v", i, out)
		}
		tickets = append(tickets, tk)
	}
	sub.Start()
	sub.Stop()
	for i, tk := range tickets {
		if _, ok := tk.Resolved(); !ok {
			t.Fatalf("ticket %d abandoned by Stop", i)
		}
	}
}

// TestOutcomeStrings pins the diagnostic names.
func TestOutcomeStrings(t *testing.T) {
	cases := map[upcall.Outcome]string{
		upcall.Enqueued:         "enqueued",
		upcall.Coalesced:        "coalesced",
		upcall.DroppedQueueFull: "dropped-queue-full",
		upcall.DroppedQuota:     "dropped-quota",
		upcall.Outcome(99):      "Outcome(99)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(o), got, want)
		}
	}
	if upcall.Enqueued.Dropped() || upcall.Coalesced.Dropped() {
		t.Error("admitted outcomes report Dropped")
	}
	if !upcall.DroppedQueueFull.Dropped() || !upcall.DroppedQuota.Dropped() {
		t.Error("drop outcomes do not report Dropped")
	}
	_ = fmt.Sprintf("%v", upcall.Enqueued)
}
