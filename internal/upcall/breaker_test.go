package upcall_test

import (
	"testing"

	"tse/internal/flowtable"
	"tse/internal/upcall"
)

// step advances the breaker one interval and fails on an unexpected phase.
func step(t *testing.T, b upcall.Breaker, st *upcall.BreakerState, now, p99 int64, want upcall.BreakerPhase) (tripped, closed bool) {
	t.Helper()
	tripped, closed = b.Next(st, now, p99)
	if st.Phase != want {
		t.Fatalf("t=%d p99=%d: phase %v, want %v", now, p99, st.Phase, want)
	}
	return tripped, closed
}

// TestBreakerLifecycle walks the satellite's full transition chain:
// closed → (TripAfter violations) → open → (cooldown) → half-open →
// (healthy probe) → closed.
func TestBreakerLifecycle(t *testing.T) {
	b := upcall.Breaker{SLOSec: 2, TripAfter: 3, CooldownSec: 2, HalfOpenProbes: 1}
	var st upcall.BreakerState

	step(t, b, &st, 0, 5, upcall.BreakerClosed) // streak 1
	step(t, b, &st, 1, 5, upcall.BreakerClosed) // streak 2
	tripped, _ := step(t, b, &st, 2, 5, upcall.BreakerOpen)
	if !tripped {
		t.Fatal("third violation did not report a trip")
	}
	step(t, b, &st, 3, 5, upcall.BreakerOpen)     // cooling (1 < 2)
	step(t, b, &st, 4, 5, upcall.BreakerHalfOpen) // cooldown over
	_, closed := step(t, b, &st, 5, 1, upcall.BreakerClosed)
	if !closed {
		t.Fatal("healthy probe did not report a close")
	}
	// Recovered for good: violations must accumulate afresh.
	step(t, b, &st, 6, 5, upcall.BreakerClosed)
	if st.BadStreak != 1 {
		t.Errorf("streak after recovery = %d, want a fresh 1", st.BadStreak)
	}
}

// TestBreakerFlapImmunity: a good (or signal-less) interval inside the
// streak resets it, so a noisy p99 cannot trip the breaker — the TripAfter
// hysteresis of the satellite.
func TestBreakerFlapImmunity(t *testing.T) {
	b := upcall.Breaker{SLOSec: 2, TripAfter: 3}
	var st upcall.BreakerState
	for now, p99 := range []int64{5, 5, 1, 5, 5, 1} {
		if tripped, _ := b.Next(&st, int64(now), p99); tripped {
			t.Fatalf("breaker tripped at t=%d under an alternating signal", now)
		}
	}
	if st.Phase != upcall.BreakerClosed {
		t.Fatalf("phase %v, want closed throughout", st.Phase)
	}
	// No-signal intervals (p99 < 0) are not violations either.
	st = upcall.BreakerState{}
	b.Next(&st, 0, 5)
	b.Next(&st, 1, 5)
	b.Next(&st, 2, -1)
	if st.BadStreak != 0 {
		t.Errorf("streak after a no-signal interval = %d, want 0", st.BadStreak)
	}
}

// TestBreakerHalfOpenReopens: probes that still violate the SLO send the
// breaker back to open with a fresh cooldown; no-signal intervals keep it
// probing.
func TestBreakerHalfOpenReopens(t *testing.T) {
	b := upcall.Breaker{SLOSec: 2, TripAfter: 1, CooldownSec: 2}
	var st upcall.BreakerState
	step(t, b, &st, 0, 9, upcall.BreakerOpen)
	step(t, b, &st, 2, 9, upcall.BreakerHalfOpen)
	step(t, b, &st, 3, -1, upcall.BreakerHalfOpen) // no probe signal: keep probing
	step(t, b, &st, 4, 9, upcall.BreakerOpen)      // probes still violating
	if st.OpenedAt != 4 {
		t.Fatalf("re-open did not restart the cooldown (OpenedAt=%d, want 4)", st.OpenedAt)
	}
	step(t, b, &st, 5, 1, upcall.BreakerOpen) // healthy but still cooling
	step(t, b, &st, 6, 1, upcall.BreakerHalfOpen)
	step(t, b, &st, 7, 1, upcall.BreakerClosed)
}

// TestBreakerEWMASmoothing: with the adaptive controller's alpha, one
// spike is absorbed by the smoothed signal instead of counting as a
// violation.
func TestBreakerEWMASmoothing(t *testing.T) {
	b := upcall.Breaker{SLOSec: 2, TripAfter: 1, EWMAAlpha: 0.2}
	var st upcall.BreakerState
	b.Next(&st, 0, 0) // seeds the EWMA at 0
	if tripped, _ := b.Next(&st, 1, 9); tripped {
		t.Fatal("smoothed breaker tripped on a single spike (EWMA 1.8 <= SLO 2)")
	}
	raw := upcall.Breaker{SLOSec: 2, TripAfter: 1}
	var rawSt upcall.BreakerState
	raw.Next(&rawSt, 0, 0)
	if tripped, _ := raw.Next(&rawSt, 1, 9); !tripped {
		t.Fatal("raw breaker did not trip on the same spike")
	}
}

// TestBreakerAdmission drives the breaker through the subsystem: standing
// residence trips the flooding source open (submissions shed with
// DroppedBreaker), the half-open tick admits exactly the probe trickle,
// and a healthy probe closes it again.
func TestBreakerAdmission(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	sub := newSub(t, sw, 1, upcall.Options{
		Breaker: upcall.Breaker{SLOSec: 1, TripAfter: 2, CooldownSec: 2, HalfOpenProbes: 1},
	})
	if ph := sub.BreakerPhases(); len(ph) != 1 || ph[0] != upcall.BreakerClosed {
		t.Fatalf("initial phases %v, want [closed]", ph)
	}

	// Two intervals whose handled upcalls sat 2 s in the queue: trip.
	sub.Submit(0, header(0x0a000160, 40160), 0)
	sub.HandleNAt(10, 2)
	sub.TickBreakers(2) // p99 2 > SLO 1: streak 1
	sub.Submit(0, header(0x0a000161, 40161), 2)
	sub.HandleNAt(10, 4)
	sub.TickBreakers(4) // streak 2: trips
	st := sub.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("trips = %d, want 1", st.BreakerTrips)
	}
	if ph := sub.BreakerPhases(); ph[0] != upcall.BreakerOpen {
		t.Fatalf("phase %v after trip, want open", ph[0])
	}

	// Open: submissions fast-fail.
	if _, out := sub.Submit(0, header(0x0a000162, 40162), 4); out != upcall.DroppedBreaker {
		t.Fatalf("open-breaker outcome %v, want DroppedBreaker", out)
	}
	if !upcall.DroppedBreaker.Dropped() {
		t.Error("DroppedBreaker must count as a drop")
	}
	if st := sub.Stats(); st.BreakerShed != 1 {
		t.Errorf("shed = %d, want 1", st.BreakerShed)
	}

	// Cooldown elapses: half-open admits exactly HalfOpenProbes per tick.
	sub.TickBreakers(5)
	sub.TickBreakers(6)
	if ph := sub.BreakerPhases(); ph[0] != upcall.BreakerHalfOpen {
		t.Fatalf("phase %v after cooldown, want half-open", ph[0])
	}
	if _, out := sub.Submit(0, header(0x0a000163, 40163), 6); out != upcall.Enqueued {
		t.Fatalf("probe outcome %v, want Enqueued", out)
	}
	if _, out := sub.Submit(0, header(0x0a000164, 40164), 6); out != upcall.DroppedBreaker {
		t.Fatalf("second same-tick submission outcome %v, want shed past the probe budget", out)
	}

	// The probe is served promptly: the breaker closes.
	sub.HandleNAt(10, 6)
	sub.TickBreakers(7)
	if ph := sub.BreakerPhases(); ph[0] != upcall.BreakerClosed {
		t.Fatalf("phase %v after healthy probe, want closed", ph[0])
	}
	if st := sub.Stats(); st.BreakerCloses != 1 {
		t.Errorf("closes = %d, want 1", st.BreakerCloses)
	}
	if _, out := sub.Submit(0, header(0x0a000165, 40165), 7); out != upcall.Enqueued {
		t.Errorf("post-recovery outcome %v, want Enqueued", out)
	}
}
