package upcall

// Flow-setup latency instrumentation. A cache miss that sits behind a
// flooded upcall backlog pays queueing delay before its megaflow installs,
// so slow-path saturation destroys short-flow completion times even when
// throughput holds. Each admitted upcall is stamped with its enqueue tick
// (item.now — coalesced misses share the first miss's stamp, exactly as
// they share its megaflow install), and the residence — pop tick minus
// enqueue tick — is recorded into a per-source fixed-bucket histogram when
// a handler pops it. The revalidator reads the same histograms as the
// backlog-residence control signal of the adaptive quota loop.

// LatencyBuckets is the number of fixed histogram buckets. The simulator's
// clock is one-virtual-second grained, so bucket k counts upcalls that
// waited exactly k seconds, k in [0, LatencyBuckets-1); the last bucket is
// the overflow (>= LatencyBuckets-1 seconds — a backlog deeper than any
// scenario's idle horizon).
const LatencyBuckets = 16

// LatencyHist is a fixed-bucket histogram of upcall residence times in
// virtual seconds. The zero value is an empty histogram; it is a plain
// value type, so snapshot copies (Stats, PerSource) carry it without
// aliasing.
type LatencyHist struct {
	// Buckets[k] counts observations of k seconds; the last bucket
	// overflows.
	Buckets [LatencyBuckets]uint64
	// Count and Sum aggregate all observations (Sum in virtual seconds,
	// unclamped by the overflow bucket) so the mean stays exact.
	Count, Sum uint64
	// MaxSec is the largest residence observed.
	MaxSec int64
}

// Observe records one residence time; negative values clamp to zero (a
// clock that has not caught up with the item's enqueue stamp).
func (h *LatencyHist) Observe(sec int64) {
	if sec < 0 {
		sec = 0
	}
	b := sec
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	h.Buckets[b]++
	h.Count++
	h.Sum += uint64(sec)
	if sec > h.MaxSec {
		h.MaxSec = sec
	}
}

// Quantile returns the smallest bucket lower bound b such that at least
// q*Count observations are <= b — the residence the q-quantile flow setup
// waited, in whole virtual seconds. An empty histogram returns -1.
func (h *LatencyHist) Quantile(q float64) int64 {
	if h.Count == 0 {
		return -1
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Ceiling rank: the observation at position ceil(q*Count) (1-based).
	rank := uint64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < LatencyBuckets; b++ {
		cum += h.Buckets[b]
		if cum >= rank {
			return int64(b)
		}
	}
	return LatencyBuckets - 1
}

// P50 is the median residence in virtual seconds (-1 when empty).
func (h *LatencyHist) P50() int64 { return h.Quantile(0.50) }

// P99 is the 99th-percentile residence in virtual seconds (-1 when empty).
func (h *LatencyHist) P99() int64 { return h.Quantile(0.99) }

// Mean is the average residence in virtual seconds (0 when empty).
func (h *LatencyHist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Delta returns the histogram of observations recorded since prev, where
// prev is an earlier snapshot of the same histogram — the per-interval
// series the dataplane sampler and the revalidator's residence sensor
// both fold from cumulative snapshots.
func (h LatencyHist) Delta(prev LatencyHist) LatencyHist {
	d := LatencyHist{
		Count:  h.Count - prev.Count,
		Sum:    h.Sum - prev.Sum,
		MaxSec: h.MaxSec, // high-water mark; not differentiable
	}
	for b := range h.Buckets {
		d.Buckets[b] = h.Buckets[b] - prev.Buckets[b]
	}
	return d
}

// Merge adds other's observations into h (per-port histograms folding into
// a switch-wide one).
func (h *LatencyHist) Merge(other LatencyHist) {
	for b := range h.Buckets {
		h.Buckets[b] += other.Buckets[b]
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.MaxSec > h.MaxSec {
		h.MaxSec = other.MaxSec
	}
}
