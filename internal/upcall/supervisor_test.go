package upcall_test

import (
	"testing"
	"time"

	"tse/internal/faults"
	"tse/internal/flowtable"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// waitFor polls cond until it holds or the deadline passes — the wall-clock
// glue the goroutine-mode supervisor tests need.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSupervisorPanicRespawn: an injected handler panic kills only that
// handler — its orphaned burst is requeued, the slot respawned, and the
// waiter still gets a real verdict.
func TestSupervisorPanicRespawn(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	plan := faults.NewPlan(faults.Event{Tick: 0, Kind: faults.HandlerPanic, Handler: -1})
	sub := newSub(t, sw, 1, upcall.Options{Handlers: 1, Injector: plan})
	sub.Start()
	defer sub.Stop()

	tk, out := sub.Submit(0, header(0x0a000101, 40100), 0)
	if out != upcall.Enqueued {
		t.Fatalf("submit outcome %v, want Enqueued", out)
	}
	v := tk.Wait()
	if v.Path != vswitch.PathSlow || v.Action != flowtable.Allow {
		t.Fatalf("verdict after panic %+v, want slow-path allow from the respawned handler", v)
	}
	waitFor(t, "restart counters", func() bool {
		st := sub.Stats()
		return st.HandlerPanics == 1 && st.HandlerRestarts == 1
	})
	st := sub.Stats()
	if st.Requeued != 1 {
		t.Errorf("requeued = %d, want 1 (the orphaned burst)", st.Requeued)
	}
	if st.PendingFlows != 0 {
		t.Errorf("pending = %d after resolution, want 0", st.PendingFlows)
	}
}

// TestSupervisorStallDetection: a handler wedged mid-handle (a real blocked
// goroutine) is declared dead after StallTimeout, its burst requeued, and a
// fresh generation spawned — the waiter resolves without the zombie ever
// unblocking.
func TestSupervisorStallDetection(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	plan := faults.NewPlan(faults.Event{Tick: 0, Kind: faults.HandlerStall, Handler: -1})
	sub := newSub(t, sw, 1, upcall.Options{
		Handlers:     1,
		Injector:     plan,
		StallTimeout: 20 * time.Millisecond,
	})
	sub.Start()
	defer sub.Stop()
	defer plan.Release() // unwedge the zombie before Stop joins (LIFO)

	tk, _ := sub.Submit(0, header(0x0a000102, 40101), 0)
	v := tk.Wait() // resolves only if the supervisor replaces the wedged handler
	if v.Path != vswitch.PathSlow || v.Action != flowtable.Allow {
		t.Fatalf("verdict after stall %+v, want slow-path allow", v)
	}
	st := sub.Stats()
	if st.StallsDetected < 1 || st.HandlerRestarts < 1 {
		t.Errorf("stalls=%d restarts=%d, want >= 1 each", st.StallsDetected, st.HandlerRestarts)
	}
	if st.Requeued < 1 {
		t.Errorf("requeued = %d, want >= 1", st.Requeued)
	}
}

// TestStopBoundedDrain is the satellite regression: Stop returns within
// StopTimeout even with a handler wedged mid-handle forever, abandoning and
// counting it, and failing its in-flight upcall so the waiter unblocks.
func TestStopBoundedDrain(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	plan := faults.NewPlan(faults.Event{Tick: 0, Kind: faults.HandlerStall, Handler: -1, Duration: faults.Forever})
	defer plan.Release()
	sub := newSub(t, sw, 1, upcall.Options{
		Handlers:    1,
		Injector:    plan,
		StopTimeout: 50 * time.Millisecond,
		// No StallTimeout: nothing rescues the handler before Stop.
	})
	sub.Start()

	tk, _ := sub.Submit(0, header(0x0a000103, 40102), 0)
	waitFor(t, "handler to pop the burst", func() bool { return sub.Stats().Backlog == 0 })

	start := time.Now()
	sub.Stop()
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("Stop took %v with a wedged handler, want ~StopTimeout", took)
	}
	st := sub.Stats()
	if st.HandlersAbandoned != 1 {
		t.Errorf("abandoned = %d, want 1", st.HandlersAbandoned)
	}
	v, ok := tk.Resolved()
	if !ok {
		t.Fatal("ticket unresolved after bounded Stop: waiter leaked")
	}
	if v.Path != vswitch.PathUpcallDrop || v.Action != flowtable.Drop {
		t.Errorf("orphan verdict %+v, want upcall-drop", v)
	}
	if st.OrphanFailed != 1 {
		t.Errorf("orphan-failed = %d, want 1", st.OrphanFailed)
	}
	if st.PendingFlows != 0 {
		t.Errorf("pending = %d after Stop, want 0 (no leak)", st.PendingFlows)
	}
}

// TestDriveModePanic: the drive-mode fault model orphans the dying
// handler's burst and halves the tick's service budget, restoring it the
// next tick after the modelled respawn.
func TestDriveModePanic(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	plan := faults.NewPlan(faults.Event{Tick: 5, Kind: faults.HandlerPanic, Handler: 0})
	sub := newSub(t, sw, 1, upcall.Options{ModelledHandlers: 2, Injector: plan})
	tickets := make([]upcall.Ticket, 8)
	for i := range tickets {
		tickets[i], _ = sub.Submit(0, header(0x0a000110+uint32(i), uint16(40110+i)), 5)
	}
	if h := sub.HandleNAt(8, 5); h != 4 {
		t.Fatalf("handled %d at the panic tick, want 4 (half the budget)", h)
	}
	st := sub.Stats()
	if st.HandlerPanics != 1 || st.HandlerRestarts != 1 {
		t.Fatalf("panics=%d restarts=%d, want 1/1", st.HandlerPanics, st.HandlerRestarts)
	}
	if st.Requeued != 8 {
		t.Errorf("requeued = %d, want 8 (the orphaned burst)", st.Requeued)
	}
	if h := sub.HandleNAt(8, 6); h != 4 {
		t.Fatalf("handled %d after respawn, want the remaining 4", h)
	}
	for i, tk := range tickets {
		if _, ok := tk.Resolved(); !ok {
			t.Fatalf("ticket %d unresolved", i)
		}
	}
	if st := sub.Stats(); st.PendingFlows != 0 {
		t.Errorf("pending = %d, want 0", st.PendingFlows)
	}
}

// TestDriveModeStallDetection: a modelled stall suspends the handler's
// share until StallTimeoutSec elapses; detection respawns it and counts.
func TestDriveModeStallDetection(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	plan := faults.NewPlan(faults.Event{Tick: 3, Kind: faults.HandlerStall, Handler: 0, Duration: 10})
	sub := newSub(t, sw, 1, upcall.Options{ModelledHandlers: 2, StallTimeoutSec: 1, Injector: plan})
	for i := 0; i < 8; i++ {
		sub.Submit(0, header(0x0a000120+uint32(i), uint16(40120+i)), 3)
	}
	if h := sub.HandleNAt(8, 3); h != 4 {
		t.Fatalf("handled %d during the stall, want 4", h)
	}
	if st := sub.Stats(); st.StallsDetected != 0 {
		t.Fatalf("stall detected before the timeout elapsed")
	}
	if h := sub.HandleNAt(8, 4); h != 4 {
		t.Fatalf("handled %d after detection, want full remaining 4", h)
	}
	st := sub.Stats()
	if st.StallsDetected != 1 || st.HandlerRestarts != 1 {
		t.Errorf("stalls=%d restarts=%d, want 1/1", st.StallsDetected, st.HandlerRestarts)
	}
}

// TestDriveModeUnsupervisedLeakAndReap: with the supervisor disabled a
// modelled panic leaks its orphaned burst in the pending table; ReapPending
// fails the aged entries (and only the aged, unreferenced ones).
func TestDriveModeUnsupervisedLeakAndReap(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	plan := faults.NewPlan(faults.Event{Tick: 0, Kind: faults.HandlerPanic, Handler: 0})
	// Two modelled handlers: slot 0 dies permanently (unsupervised), slot 1
	// keeps serving later submissions.
	sub := newSub(t, sw, 1, upcall.Options{ModelledHandlers: 2, DisableSupervisor: true, Injector: plan})
	a, _ := sub.Submit(0, header(0x0a000130, 40130), 0)
	b, _ := sub.Submit(0, header(0x0a000131, 40131), 0)
	if h := sub.HandleNAt(10, 0); h != 0 {
		t.Fatalf("handled %d, want 0 (the whole burst died with handler 0)", h)
	}
	st := sub.Stats()
	if st.PendingFlows != 2 || st.Backlog != 0 {
		t.Fatalf("pending=%d backlog=%d, want the leaked 2/0", st.PendingFlows, st.Backlog)
	}
	// A fresh queued entry must not be reaped: it is still referenced.
	c, _ := sub.Submit(0, header(0x0a000132, 40132), 4)
	if n := sub.ReapPending(4, 3); n != 2 {
		t.Fatalf("reaped %d, want the 2 aged orphans", n)
	}
	for i, tk := range []upcall.Ticket{a, b} {
		v, ok := tk.Resolved()
		if !ok {
			t.Fatalf("leaked ticket %d unresolved after reap", i)
		}
		if v.Path != vswitch.PathUpcallDrop {
			t.Errorf("reaped verdict %d = %+v, want upcall-drop", i, v)
		}
	}
	if _, ok := c.Resolved(); ok {
		t.Fatal("queued entry was reaped")
	}
	if st := sub.Stats(); st.PendingReaped != 2 {
		t.Errorf("PendingReaped = %d, want 2", st.PendingReaped)
	}
	sub.HandleNAt(10, 5)
	if _, ok := c.Resolved(); !ok {
		t.Error("queued entry unresolved after drain")
	}
}

// TestRevalidatorReapsPending: the revalidator's sweep drives ReapPending
// at its PendingAgeSec horizon — the Tick-integrated form of the satellite
// fix.
func TestRevalidatorReapsPending(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	plan := faults.NewPlan(faults.Event{Tick: 0, Kind: faults.HandlerPanic, Handler: 0})
	sub := newSub(t, sw, 1, upcall.Options{ModelledHandlers: 1, DisableSupervisor: true, Injector: plan})
	tk, _ := sub.Submit(0, header(0x0a000140, 40140), 0)
	sub.HandleNAt(10, 0) // panic: the burst leaks
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{
		Switch: sw, Subsystem: sub, PendingAgeSec: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rv.Tick(1) // too young
	if _, ok := tk.Resolved(); ok {
		t.Fatal("entry reaped before its age horizon")
	}
	rv.Tick(2)
	if _, ok := tk.Resolved(); !ok {
		t.Fatal("aged orphan not reaped by the revalidator sweep")
	}
	if st := sub.Stats(); st.PendingReaped != 1 {
		t.Errorf("PendingReaped = %d, want 1", st.PendingReaped)
	}
}

// TestRevalidatorStallWindow: an injected sweep stall suppresses Tick
// without advancing the cadence — the first clean tick catches up.
func TestRevalidatorStallWindow(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	plan := faults.NewPlan(faults.Event{Tick: 1, Kind: faults.RevalidatorStall, Duration: 2})
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{
		Switch: sw, IntervalSec: 1, Injector: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	rv.Tick(0)
	rv.Tick(1)
	rv.Tick(2)
	st := rv.Stats()
	if st.SweepStalls != 2 {
		t.Fatalf("sweep stalls = %d, want 2 (ticks 1 and 2 suppressed)", st.SweepStalls)
	}
	if st.Sweeps != 1 {
		t.Fatalf("sweeps = %d, want only tick 0's", st.Sweeps)
	}
	rv.Tick(3) // window over: catch-up sweep
	if st := rv.Stats(); st.Sweeps != 2 {
		t.Errorf("sweeps = %d after the window, want the catch-up 2", st.Sweeps)
	}
}

// TestDeliveryFaults: a delayed upcall sits in limbo until its readyAt
// tick; a duplicated one is handled twice but resolves once and installs
// one megaflow.
func TestDeliveryFaults(t *testing.T) {
	sw := newSwitch(t, flowtable.SipDp)
	plan := faults.NewPlan(
		faults.Event{Tick: 0, Kind: faults.DeliverDelay, Source: 0, Duration: 2},
		faults.Event{Tick: 5, Kind: faults.DeliverDuplicate, Source: 0},
	)
	sub := newSub(t, sw, 1, upcall.Options{Injector: plan})
	tk, out := sub.Submit(0, header(0x0a000150, 40150), 0)
	if out != upcall.Enqueued {
		t.Fatalf("delayed submit outcome %v, want Enqueued", out)
	}
	if h := sub.HandleNAt(10, 1); h != 0 {
		t.Fatalf("handled %d while the upcall is in limbo, want 0", h)
	}
	if h := sub.HandleNAt(10, 2); h != 1 {
		t.Fatalf("handled %d at maturity, want 1", h)
	}
	if v := tk.Wait(); v.Path != vswitch.PathSlow {
		t.Fatalf("delayed verdict %+v, want slow-path", v)
	}
	if st := sub.Stats(); st.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", st.Delayed)
	}

	installs := sw.Counters().Installs
	tk2, _ := sub.Submit(0, header(0x0a000151, 40151), 5)
	if st := sub.Stats(); st.Duplicated != 1 || st.Backlog != 2 {
		t.Fatalf("duplicated=%d backlog=%d, want 1/2", st.Duplicated, st.Backlog)
	}
	// Both copies cost handler budget and an install apiece — the
	// at-least-once tax — but the second install is an idempotent refresh
	// of the same megaflow and the waiter resolves exactly once.
	if h := sub.HandleNAt(10, 5); h != 2 {
		t.Fatalf("handled %d, want both delivered copies", h)
	}
	if v := tk2.Wait(); v.Path != vswitch.PathSlow {
		t.Fatalf("duplicated verdict %+v, want slow-path", v)
	}
	if got := sw.Counters().Installs - installs; got != 2 {
		t.Errorf("duplicate delivery paid %d installs, want 2 (the second a refresh)", got)
	}
	if st := sub.Stats(); st.PendingFlows != 0 || st.Backlog != 0 {
		t.Errorf("pending=%d backlog=%d after duplicate drain, want 0/0", st.PendingFlows, st.Backlog)
	}
}
