package upcall_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// TestRevalidatorSweepDuringReads runs revalidator sweeps (dump → expire →
// regenerate-check) and table swaps concurrently with lock-free readers:
// with copy-on-write classifier snapshots the whole sweep happens on the
// writer side and readers must never observe an inconsistent state — the
// victim flow classifies to the same verdict on every read, and the
// revalidator's dump counters stay monotonic. Run with -race.
func TestRevalidatorSweepDuringReads(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := upcall.NewRevalidator(upcall.RevalidatorConfig{Switch: sw, IdleTimeout: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	core.Replay(sw, tr, 0)
	victim := tr.Headers[0]
	want := sw.Process(victim, 0).Action

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if v := sw.Process(victim, int64(i%3)); v.Action != want {
					t.Errorf("reader %d: victim verdict flipped to %v via %v", g, v.Action, v.Path)
					return
				}
			}
		}(g)
	}
	var lastDumped uint64
	for i := 0; i < 40; i++ {
		if i%4 == 0 {
			if err := sw.SwapTable(tbl); err != nil {
				t.Fatal(err)
			}
		}
		res := r.Sweep(int64(i % 3))
		if res.Expired != 0 {
			t.Fatalf("sweep %d expired %d entries under an effectively infinite timeout", i, res.Expired)
		}
		if s := r.Stats(); s.Dumped < lastDumped {
			t.Fatalf("revalidator dump counter went backwards: %d after %d", s.Dumped, lastDumped)
		} else {
			lastDumped = s.Dumped
		}
	}
	stop.Store(true)
	wg.Wait()
	if got := sw.Process(victim, 0).Action; got != want {
		t.Errorf("victim verdict after sweeps = %v, want %v", got, want)
	}
}
