package upcall_test

import (
	"testing"

	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/upcall"
)

// BenchmarkSubmitDedup measures the pending-table hit: the per-packet cost
// a same-flow miss burst pays after its first packet. This is the path
// that keeps a hot new flow from flooding the handlers, so it must stay
// cheap (a map probe, no queue traffic).
func BenchmarkSubmitDedup(b *testing.B) {
	sw := newSwitch(b, flowtable.SipDp)
	sub := newSub(b, sw, 1, upcall.Options{})
	h := header(0x0a000001, 40000)
	sub.Submit(0, h, 0) // park one pending upcall; everything coalesces
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub.Submit(0, h, 0)
	}
}

// BenchmarkRoundtripSuppressed measures the full submit→queue→handle round
// trip. It runs against a monitor-deleted megaflow with the revalidator
// quirk active — the one slow-path shape that is stationary under
// repetition (classification happens, no install mutates the cache), which
// is also exactly the forever-slow-path traffic MFCGuard deletions create.
func BenchmarkRoundtripSuppressed(b *testing.B) {
	sw := newSwitch(b, flowtable.SipDp)
	sub := newSub(b, sw, 1, upcall.Options{})
	h := header(0x0a000002, 40001)
	sw.Process(h, 0)
	sw.DeleteMegaflows(func(*tss.Entry) bool { return true })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub.SubmitSync(0, h, 0)
	}
}

// BenchmarkRevalidatorSweep measures one dump-and-check pass over a cache
// inflated to the SipDp attack shape (~257 one-entry masks), the recurring
// background cost the revalidator adds.
func BenchmarkRevalidatorSweep(b *testing.B) {
	sw := newSwitch(b, flowtable.SipDp)
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{Switch: sw})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.CoLocated(sw.FlowTable(), core.CoLocatedOptions{Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range tr.Headers {
		sw.Process(h, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// now = 0 keeps every entry warm and valid: the sweep dumps and
		// re-checks the full cache, deleting nothing.
		rv.Sweep(0)
	}
}

// BenchmarkResidenceObserve measures the flow-setup latency accounting
// added to every handler pop: one histogram update on the slow-path
// service loop.
func BenchmarkResidenceObserve(b *testing.B) {
	var h upcall.LatencyHist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 15)
	}
}

// BenchmarkResidenceQuantile measures the percentile read the dataplane
// sampler and the revalidator's residence sensor issue per virtual second.
func BenchmarkResidenceQuantile(b *testing.B) {
	var h upcall.LatencyHist
	for s := int64(0); s < 64; s++ {
		h.Observe(s & 15)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if h.P99() < 0 {
			b.Fatal("empty histogram")
		}
	}
}
