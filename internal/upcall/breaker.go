package upcall

// The SLO circuit breaker: the admission-side complement of the adaptive
// quota. The quota tunes *how much* a source may submit; the breaker
// decides *whether* submitting is useful at all. When a source's
// backlog-residence p99 (the per-port LatencyHist the adaptive controller
// already reads) violates BreakerSLOSec for TripAfter consecutive
// intervals, queued work is already missing its flow-setup SLO — so the
// source trips open and new submissions fast-fail (shed) instead of
// joining a queue whose wait already exceeds the deadline. After
// CooldownSec the breaker goes half-open and admits a per-tick trickle of
// probes; if their residence meets the SLO it closes, if not it re-opens.
//
// The signal plumbing is the AdaptiveQuota's: per-interval histogram
// deltas off SourceStats.Residence, optionally EWMA-smoothed with the same
// alpha discipline (seed on first sample, then exponential decay), with
// the TripAfter streak playing the hysteresis role so a single noisy
// interval cannot flap the breaker.

import (
	"fmt"

	"tse/internal/telemetry"
)

// BreakerPhase is the circuit-breaker state.
type BreakerPhase int

const (
	// BreakerClosed: admission flows normally (modulo queue/quota).
	BreakerClosed BreakerPhase = iota
	// BreakerOpen: every submission is shed with DroppedBreaker.
	BreakerOpen
	// BreakerHalfOpen: a per-tick trickle of HalfOpenProbes submissions is
	// admitted to test whether the backlog recovered.
	BreakerHalfOpen
)

// String names the phase for diagnostics and samples.
func (p BreakerPhase) String() string {
	switch p {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerPhase(%d)", int(p))
	}
}

// Default breaker knobs.
const (
	// DefaultTripAfter is the consecutive SLO-violating intervals required
	// to trip: the flap-immunity streak.
	DefaultTripAfter = 3
	// DefaultBreakerCooldownSec is how long an open breaker sheds before
	// probing (half-open).
	DefaultBreakerCooldownSec int64 = 3
	// DefaultHalfOpenProbes is the per-tick probe trickle while half-open.
	DefaultHalfOpenProbes = 2
)

// Breaker configures the per-source SLO circuit breaker. The zero value
// (SLOSec == 0) disables it.
type Breaker struct {
	// SLOSec is the backlog-residence p99 SLO in virtual seconds; an
	// interval whose p99 exceeds it is a violation. <= 0 disables the
	// breaker.
	SLOSec int64
	// TripAfter is the number of consecutive violating intervals that
	// trips the breaker open; <= 0 selects DefaultTripAfter.
	TripAfter int
	// CooldownSec is how long the breaker stays open before going
	// half-open; <= 0 selects DefaultBreakerCooldownSec.
	CooldownSec int64
	// HalfOpenProbes is the per-tick admission trickle while half-open;
	// <= 0 selects DefaultHalfOpenProbes.
	HalfOpenProbes int
	// EWMAAlpha, when > 0, smooths the p99 signal with the adaptive
	// controller's EWMA discipline (DefaultEWMAAlpha matches it) before
	// the SLO comparison; 0 compares raw interval p99s, leaving TripAfter
	// as the only hysteresis.
	EWMAAlpha float64
}

func (b Breaker) tripAfter() int {
	if b.TripAfter > 0 {
		return b.TripAfter
	}
	return DefaultTripAfter
}

func (b Breaker) cooldown() int64 {
	if b.CooldownSec > 0 {
		return b.CooldownSec
	}
	return DefaultBreakerCooldownSec
}

func (b Breaker) probes() int {
	if b.HalfOpenProbes > 0 {
		return b.HalfOpenProbes
	}
	return DefaultHalfOpenProbes
}

// BreakerState is one source's breaker position, advanced once per
// interval by Next.
type BreakerState struct {
	// Phase is the current position; BadStreak counts consecutive
	// violating intervals while closed; OpenedAt is the interval the
	// breaker last tripped (cooldown base).
	Phase     BreakerPhase
	BadStreak int
	OpenedAt  int64
	// EWMAP99 and Seeded carry the smoothed signal when EWMAAlpha > 0.
	EWMAP99 float64
	Seeded  bool
}

// Next advances one source's breaker by one interval. now is the interval
// tick; p99 is the interval's backlog-residence p99 in virtual seconds,
// with a negative value meaning no upcalls were handled this interval (no
// signal: a closed breaker stays closed, a half-open breaker keeps
// probing). It reports whether the breaker tripped open or closed from
// half-open this interval.
func (b Breaker) Next(st *BreakerState, now int64, p99 int64) (tripped, closed bool) {
	sig := float64(p99)
	if p99 >= 0 && b.EWMAAlpha > 0 {
		if !st.Seeded {
			st.Seeded = true
			st.EWMAP99 = float64(p99)
		} else {
			st.EWMAP99 = b.EWMAAlpha*float64(p99) + (1-b.EWMAAlpha)*st.EWMAP99
		}
		sig = st.EWMAP99
	}
	over := p99 >= 0 && sig > float64(b.SLOSec)
	switch st.Phase {
	case BreakerClosed:
		if !over {
			st.BadStreak = 0
			break
		}
		st.BadStreak++
		if st.BadStreak >= b.tripAfter() {
			st.Phase = BreakerOpen
			st.OpenedAt = now
			st.BadStreak = 0
			return true, false
		}
	case BreakerOpen:
		if now-st.OpenedAt >= b.cooldown() {
			st.Phase = BreakerHalfOpen
		}
	case BreakerHalfOpen:
		switch {
		case over:
			// Probes still violate: back to shedding, cooldown restarts.
			st.Phase = BreakerOpen
			st.OpenedAt = now
		case p99 >= 0:
			// Probes met the SLO: recovered.
			st.Phase = BreakerClosed
			st.BadStreak = 0
			return false, true
		}
	}
	return false, false
}

// breakerPort is one source's breaker runtime state inside the subsystem:
// the state machine plus the histogram snapshot the per-interval delta is
// taken against and the half-open probe budget for the current tick.
type breakerPort struct {
	st      BreakerState
	prev    LatencyHist
	probeAt int64
	probes  int
}

// breakerAdmitLocked decides admission for one submission under the
// source's breaker. Callers hold u.mu and have checked u.brk != nil.
func (u *Subsystem) breakerAdmitLocked(src int, now int64) bool {
	bp := &u.brk[src]
	switch bp.st.Phase {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return false
	default: // half-open: admit the probe trickle, shed the rest
		if bp.probeAt != now {
			bp.probeAt = now
			bp.probes = u.opts.Breaker.probes()
		}
		if bp.probes <= 0 {
			return false
		}
		bp.probes--
		return true
	}
}

// TickBreakers advances every source's breaker by one interval against its
// residence histogram delta. The dataplane loop calls this once per
// virtual second, after the handler drain, mirroring the revalidator's
// retune cadence.
func (u *Subsystem) TickBreakers(now int64) {
	if u.brk == nil {
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if now > u.clock {
		u.clock = now
	}
	for src := range u.brk {
		bp := &u.brk[src]
		delta := u.srcStats[src].Residence.Delta(bp.prev)
		bp.prev = u.srcStats[src].Residence
		before := bp.st.Phase
		tripped, closed := u.opts.Breaker.Next(&bp.st, now, delta.P99())
		if tripped {
			u.stats.BreakerTrips++
			if u.tm != nil {
				u.tm.breakerTrips.Inc(0)
			}
		}
		if closed {
			u.stats.BreakerCloses++
			if u.tm != nil {
				u.tm.breakerCloses.Inc(0)
			}
		}
		// Journal every phase transition (trip, cooldown→half-open,
		// half-open→re-open, close) with the p99 signal that drove it.
		if bp.st.Phase != before {
			p99 := delta.P99()
			switch bp.st.Phase {
			case BreakerOpen:
				u.opts.Journal.Record(now, telemetry.EvBreakerTrip, src, p99)
			case BreakerHalfOpen:
				u.opts.Journal.Record(now, telemetry.EvBreakerHalfOpen, src, p99)
			case BreakerClosed:
				u.opts.Journal.Record(now, telemetry.EvBreakerClose, src, p99)
			}
		}
	}
}

// BreakerPhases snapshots each source's breaker phase; nil when the
// breaker is disabled.
func (u *Subsystem) BreakerPhases() []BreakerPhase {
	if u.brk == nil {
		return nil
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]BreakerPhase, len(u.brk))
	for i := range u.brk {
		out[i] = u.brk[i].st.Phase
	}
	return out
}
