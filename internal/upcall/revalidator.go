package upcall

import (
	"fmt"
	"sync"

	"tse/internal/faults"
	"tse/internal/telemetry"
	"tse/internal/tss"
	"tse/internal/vswitch"
)

// AdaptiveQuota parameterises revalidator-fed per-port quota adaptation:
// OVS sizes its upcall rate limiter from observed load, and this is that
// feedback loop for the simulated switch. Each revalidator sweep measures
// every port's slow-path pressure — its live megaflow footprint plus the
// entries expired, invalidated or monitor-deleted since the last sweep
// (churn: TSE megaflows are installed once and never hit again, so they
// die in bulk at the idle horizon, and MFCGuard suppressions kill them
// earlier) — and re-tunes the port's admission quota: at or below
// TargetFootprint the port keeps BaseQuota untouched, beyond it the quota
// shrinks inversely with pressure down to MinQuota. A flooding port
// throttles itself within a few sweeps while victim ports, whose
// footprint is a handful of megaflows, keep their full budget — and the
// flooding port's quota recovers to BaseQuota once its state expires.
//
// With only the three footprint fields set the controller is the original
// raw single-input map: QuotaFor(pressure) applied verbatim every sweep.
// That controller visibly flaps (±1 quota steps sweep to sweep, and
// bounces to BaseQuota whenever a policy-churn event briefly empties the
// cache). Setting any of the smoothing fields switches Next to the
// two-input de-flapped controller: both signals — megaflow pressure and
// the backlog residence the subsystem's latency histograms measure — are
// EWMA-smoothed, the more restrictive of the two implied quotas wins, and
// the quota only moves when that candidate leaves a hysteresis band
// around the current value (rails excepted: a candidate at BaseQuota or
// the MinQuota floor always snaps exactly). The raw controller remains
// available as the ablation the `portfairness` experiment's adaptiveraw
// mode measures against.
type AdaptiveQuota struct {
	// BaseQuota is the per-port per-second admission budget at rest, and
	// the adaptive maximum. Required > 0.
	BaseQuota int
	// MinQuota floors the adapted quota so a throttled port can still
	// install the occasional megaflow (and so recover); <= 0 selects 1.
	MinQuota int
	// TargetFootprint is the megaflow pressure a port may reach before
	// its quota shrinks; <= 0 selects BaseQuota.
	TargetFootprint int

	// TargetResidenceSec enables the second control input: the smoothed
	// backlog residence (mean virtual seconds a port's handled upcalls
	// spent queued, per sweep interval) a port may reach before its quota
	// shrinks. Beyond it the implied quota shrinks inversely with
	// residence down to MinQuota, exactly as pressure does beyond
	// TargetFootprint. <= 0 disables the residence input.
	TargetResidenceSec float64
	// EWMAAlpha is the smoothing weight of the newest sweep's signals,
	// in (0, 1]; <= 0 selects DefaultEWMAAlpha when the smoothed
	// controller is active.
	EWMAAlpha float64
	// HysteresisPct is the half-width of the hold band as a fraction of
	// the current quota: the quota moves only when the candidate falls
	// outside [quota*(1-h), quota*(1+h)] (or hits a rail). <= 0 selects
	// DefaultHysteresisPct when the smoothed controller is active.
	HysteresisPct float64
}

// DefaultEWMAAlpha is the smoothing weight of the de-flapped controller:
// heavy enough that a real regime shift converges within ~3 sweeps, light
// enough that one churn-emptied sweep cannot bounce the quota.
const DefaultEWMAAlpha = 0.5

// DefaultHysteresisPct is the hold band: the candidate quota must leave
// ±50% of the current value to move it, so the ±1-step jitter of a noisy
// plateau (and the slow tail of EWMA convergence) holds still.
const DefaultHysteresisPct = 0.5

// Smoothed reports whether any smoothing field selects the two-input
// de-flapped controller; false means Next degenerates to the raw
// per-sweep QuotaFor ablation.
func (a AdaptiveQuota) Smoothed() bool {
	return a.TargetResidenceSec > 0 || a.EWMAAlpha > 0 || a.HysteresisPct > 0
}

// QuotaFor maps one port's measured pressure to its next admission quota —
// the raw single-input controller, kept verbatim as the ablation baseline
// and as the pressure half of the smoothed controller.
func (a AdaptiveQuota) QuotaFor(pressure int) int {
	min := a.MinQuota
	if min <= 0 {
		min = 1
	}
	target := a.TargetFootprint
	if target <= 0 {
		target = a.BaseQuota
	}
	if pressure <= target {
		return a.BaseQuota
	}
	q := a.BaseQuota * target / pressure
	if q < min {
		q = min
	}
	return q
}

// quotaForResidence maps the smoothed backlog residence to its implied
// quota: BaseQuota at or below the target, inverse shrink beyond it,
// floored at MinQuota. Disabled (BaseQuota) when TargetResidenceSec <= 0.
func (a AdaptiveQuota) quotaForResidence(resSec float64) int {
	if a.TargetResidenceSec <= 0 || resSec <= a.TargetResidenceSec {
		return a.BaseQuota
	}
	min := a.MinQuota
	if min <= 0 {
		min = 1
	}
	q := int(float64(a.BaseQuota) * a.TargetResidenceSec / resSec)
	if q < min {
		q = min
	}
	return q
}

// QuotaState is one port's controller memory across sweeps: the smoothed
// signals and the quota currently in force. The zero value is an unseeded
// state; the first Next seeds the EWMAs from the raw signals and starts
// from BaseQuota.
type QuotaState struct {
	// EWMAPressure and EWMAResidence are the smoothed control inputs.
	EWMAPressure, EWMAResidence float64
	// Quota is the admission quota currently in force.
	Quota int
	// Seeded marks a state that has absorbed at least one sweep.
	Seeded bool
}

// Next advances one port's controller state by one sweep's raw signals —
// megaflow pressure (dumped entries + churn) and mean backlog residence
// over the sweep interval — and returns the quota to apply. Without
// smoothing fields set this is exactly QuotaFor(pressure), preserving the
// original single-input behaviour as the ablation.
func (a AdaptiveQuota) Next(st *QuotaState, pressure int, resSec float64) int {
	if !a.Smoothed() {
		st.Quota = a.QuotaFor(pressure)
		st.EWMAPressure, st.EWMAResidence = float64(pressure), resSec
		st.Seeded = true
		return st.Quota
	}
	alpha := a.EWMAAlpha
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	if !st.Seeded {
		st.Seeded = true
		st.Quota = a.BaseQuota
		st.EWMAPressure = float64(pressure)
		st.EWMAResidence = resSec
	} else {
		st.EWMAPressure = alpha*float64(pressure) + (1-alpha)*st.EWMAPressure
		st.EWMAResidence = alpha*resSec + (1-alpha)*st.EWMAResidence
	}
	// Two inputs, most restrictive wins: a churn event that empties the
	// cache (pressure gone) cannot bounce the quota while the backlog
	// residence still shows the handlers under water, and vice versa.
	cand := a.QuotaFor(int(st.EWMAPressure + 0.5))
	if qr := a.quotaForResidence(st.EWMAResidence); qr < cand {
		cand = qr
	}
	min := a.MinQuota
	if min <= 0 {
		min = 1
	}
	band := a.HysteresisPct
	if band <= 0 {
		band = DefaultHysteresisPct
	}
	switch {
	case cand == a.BaseQuota || cand == min:
		// Rails snap exactly: recovery lands on BaseQuota, a saturating
		// flood lands on the floor.
		st.Quota = cand
	case float64(cand) < float64(st.Quota)*(1-band) ||
		float64(cand) > float64(st.Quota)*(1+band):
		st.Quota = cand
	}
	return st.Quota
}

// Revalidator is the megaflow-lifecycle loop of the asynchronous slow
// path, modelled on OVS's revalidator threads: on each sweep it dumps the
// megaflow cache, expires entries idle past the timeout, and re-checks the
// survivors against the current flow table (so a SwapTable becomes
// effective in the fast path at revalidator cadence, not synchronously).
// Monitor deletions — MFCGuard's sweeps — route through the same dump
// machinery via DeleteMegaflows, so the repository has exactly one
// megaflow-lifecycle path: vswitch.SweepMegaflows.
//
// With a Subsystem and an AdaptiveQuota configured, each sweep also
// aggregates its dump per ingress port (tss.Entry.Port) and feeds the
// per-port pressure back into the subsystem's admission quotas.
type Revalidator struct {
	sw         *vswitch.Switch
	sub        *Subsystem
	adapt      *AdaptiveQuota
	interval   int64
	timeout    int64
	pendingAge int64
	inj        *faults.Plan
	journal    *telemetry.Journal

	mu      sync.Mutex
	lastRun int64
	ran     bool
	stats   RevalidatorStats
	// states is the per-port controller memory of the adaptive loop and
	// prevRes the per-port residence-histogram snapshots the last sweep
	// read (the residence signal is the delta mean between sweeps). Both
	// are sized lazily to the subsystem's source count.
	states  []QuotaState
	prevRes []LatencyHist
	// carry accumulates per-port megaflow deletions routed through
	// DeleteMegaflows between sweeps (MFCGuard churn), so monitor
	// suppressions feed the same pressure sensor the sweep's own dump
	// does instead of being invisible to the adaptive controller.
	carry map[int]int
}

// RevalidatorConfig parameterises a Revalidator.
type RevalidatorConfig struct {
	// Switch is the device whose megaflow cache is maintained.
	Switch *vswitch.Switch
	// IntervalSec is the sweep cadence in virtual seconds; <= 0 selects 1
	// (OVS revalidators wake sub-second; the simulator's clock is
	// one-second grained).
	IntervalSec int64
	// IdleTimeout overrides the switch's megaflow idle horizon for
	// expiry; <= 0 keeps the switch's configured timeout.
	IdleTimeout int64
	// Subsystem, with Adapt, receives per-port quota updates derived from
	// each sweep's dump statistics. Ports are the subsystem's sources.
	Subsystem *Subsystem
	// Adapt enables the adaptive per-port quota feedback loop.
	Adapt *AdaptiveQuota
	// PendingAgeSec is the orphaned-pending-entry reap horizon: each sweep
	// fails pending-table entries (Subsystem.ReapPending) that have no
	// queued upcall and no live handler behind them and are at least this
	// old. 0 selects three idle timeouts (a leaked entry outlives the
	// megaflows it should have installed, but not by much); negative
	// disables the reaper (the chaos ablation that lets the wedge show).
	PendingAgeSec int64
	// Injector is the optional fault-injection schedule; a
	// RevalidatorStall window suppresses Tick's sweeps entirely.
	Injector *faults.Plan
	// Journal, when non-nil, receives sweep / sweep-stall / quota-retune
	// events (a retune is journalled only when a port's quota actually
	// moves, so the de-flapped controller's timeline stays quiet).
	Journal *telemetry.Journal
	// Metrics, when non-nil, registers pull-model collectors over the
	// revalidator counters — evaluated at snapshot time, never on the
	// sweep path.
	Metrics *telemetry.Registry
}

// RevalidatorStats aggregates revalidator activity.
type RevalidatorStats struct {
	// Sweeps counts dump passes.
	Sweeps uint64
	// Dumped counts entries examined across sweeps; Expired and
	// Invalidated count deletions by cause; Suppressed counts monitor
	// deletions routed through DeleteMegaflows.
	Dumped, Expired, Invalidated, Suppressed uint64
	// OrphanPressure counts dumped entries whose ingress port has no
	// admission source behind it (tss.Entry.Port >= Subsystem.Sources()):
	// their pressure is measured but cannot be fed back into any quota.
	// Nonzero means the datapath is installing megaflows for ports the
	// upcall subsystem was not sized for — surfaced here instead of being
	// silently dropped on the floor.
	OrphanPressure uint64
	// SweepStalls counts sweeps suppressed by an injected revalidator
	// stall: ticks where the cadence owed a sweep that never ran.
	SweepStalls uint64
}

// NewRevalidator validates the configuration and returns a Revalidator.
func NewRevalidator(cfg RevalidatorConfig) (*Revalidator, error) {
	if cfg.Switch == nil {
		return nil, fmt.Errorf("upcall: revalidator needs a switch")
	}
	if cfg.IntervalSec <= 0 {
		cfg.IntervalSec = 1
	}
	timeout := cfg.IdleTimeout
	if timeout <= 0 {
		timeout = cfg.Switch.IdleTimeout()
	}
	if cfg.Adapt != nil {
		if cfg.Subsystem == nil {
			return nil, fmt.Errorf("upcall: adaptive quotas need a subsystem to tune")
		}
		if cfg.Adapt.BaseQuota <= 0 {
			return nil, fmt.Errorf("upcall: adaptive quotas need BaseQuota > 0")
		}
		if a := cfg.Adapt.EWMAAlpha; a < 0 || a > 1 {
			return nil, fmt.Errorf("upcall: EWMAAlpha %v outside [0, 1]", a)
		}
		if cfg.Adapt.HysteresisPct < 0 {
			return nil, fmt.Errorf("upcall: negative HysteresisPct %v", cfg.Adapt.HysteresisPct)
		}
		if cfg.Adapt.TargetResidenceSec < 0 {
			return nil, fmt.Errorf("upcall: negative TargetResidenceSec %v", cfg.Adapt.TargetResidenceSec)
		}
	}
	pendingAge := cfg.PendingAgeSec
	switch {
	case pendingAge < 0:
		pendingAge = 0 // reaper disabled
	case pendingAge == 0:
		pendingAge = 3 * timeout
	}
	rv := &Revalidator{sw: cfg.Switch, sub: cfg.Subsystem, adapt: cfg.Adapt,
		interval: cfg.IntervalSec, timeout: timeout,
		pendingAge: pendingAge, inj: cfg.Injector, journal: cfg.Journal}
	if reg := cfg.Metrics; reg != nil {
		stat := func(get func(RevalidatorStats) uint64) func() uint64 {
			return func() uint64 { return get(rv.Stats()) }
		}
		reg.CounterFunc("tse_revalidator_sweeps_total",
			"Revalidator dump-expire-revalidate passes.",
			stat(func(s RevalidatorStats) uint64 { return s.Sweeps }))
		reg.CounterFunc("tse_megaflow_expired_total",
			"Megaflows expired at the idle horizon by revalidator sweeps.",
			stat(func(s RevalidatorStats) uint64 { return s.Expired }))
		reg.CounterFunc("tse_megaflow_invalidated_total",
			"Megaflows deleted because the flow table no longer regenerates them.",
			stat(func(s RevalidatorStats) uint64 { return s.Invalidated }))
		reg.CounterFunc("tse_megaflow_suppressed_total",
			"Megaflows deleted by monitor sweeps routed through the revalidator.",
			stat(func(s RevalidatorStats) uint64 { return s.Suppressed }))
		reg.CounterFunc("tse_revalidator_orphan_pressure_total",
			"Dumped entries whose ingress port has no admission source to tune.",
			stat(func(s RevalidatorStats) uint64 { return s.OrphanPressure }))
		reg.CounterFunc("tse_revalidator_sweep_stalls_total",
			"Sweeps suppressed by an injected revalidator stall.",
			stat(func(s RevalidatorStats) uint64 { return s.SweepStalls }))
	}
	return rv, nil
}

// Tick runs a sweep at virtual time now if the cadence has elapsed,
// returning the sweep result (zero when the cadence did not trigger). An
// injected revalidator stall suppresses the sweep without advancing the
// cadence, so the first un-stalled tick sweeps immediately (catch-up).
func (r *Revalidator) Tick(now int64) vswitch.SweepResult {
	r.mu.Lock()
	if r.ran && now-r.lastRun < r.interval {
		r.mu.Unlock()
		return vswitch.SweepResult{}
	}
	r.mu.Unlock()
	if r.inj != nil && r.inj.RevalidatorStalledAt(now) {
		r.mu.Lock()
		r.stats.SweepStalls++
		r.mu.Unlock()
		r.journal.Record(now, telemetry.EvSweepStall, -1, 0)
		return vswitch.SweepResult{}
	}
	r.mu.Lock()
	r.lastRun, r.ran = now, true
	r.mu.Unlock()
	return r.Sweep(now)
}

// Sweep performs one dump-expire-revalidate pass immediately: idle entries
// are expired exactly as Switch.Tick would, and entries the current flow
// table no longer regenerates are deleted (the asynchronous counterpart of
// ReplaceTable's inline revalidation).
//
// The per-entry regenerate check runs only while the switch reports an
// unsettled table swap: on a quiet table a cached megaflow can never fail
// revalidation, so the routine sweep stays a cheap timestamp walk instead
// of regenerating the whole (possibly attack-inflated) cache under the
// classifier's writer lock every interval. After a full regenerate pass
// the swap is marked settled, restoring the switch's strict
// overlap-is-a-bug invariant.
func (r *Revalidator) Sweep(now int64) vswitch.SweepResult {
	// Record the run time whether the caller is Tick or a direct Sweep:
	// without this a direct Sweep(now) followed by a Tick inside the same
	// interval double-swept (double-counting Dumped and re-tuning quotas
	// twice per interval).
	r.mu.Lock()
	r.lastRun, r.ran = now, true
	r.mu.Unlock()
	// With adaptive quotas on, the sweep doubles as the per-port load
	// sensor: pressure[p] counts port p's dumped entries — its live
	// megaflow footprint, whatever this sweep deletes (the churn of a
	// flood whose megaflows die unhit at the idle horizon), plus the
	// monitor deletions (DeleteMegaflows) carried over since the last
	// sweep.
	var pressure map[int]int
	if r.adapt != nil {
		pressure = make(map[int]int)
		r.mu.Lock()
		for p, n := range r.carry {
			pressure[p] += n
		}
		r.carry = nil
		r.mu.Unlock()
	}
	track := func(e *tss.Entry) {
		if pressure != nil {
			pressure[e.Port]++
		}
	}
	var res vswitch.SweepResult
	if !r.sw.NeedsRevalidation() {
		res = r.sw.SweepMegaflows(func(e *tss.Entry) vswitch.SweepDecision {
			track(e)
			if now-e.LastUsedAt() >= r.timeout {
				return vswitch.SweepExpire
			}
			return vswitch.SweepKeep
		})
	} else {
		seq := r.sw.GenSeq()
		gen := r.sw.Generator()
		res = r.sw.SweepMegaflows(func(e *tss.Entry) vswitch.SweepDecision {
			track(e)
			if now-e.LastUsedAt() >= r.timeout {
				return vswitch.SweepExpire
			}
			if !vswitch.Revalidate(gen, e) {
				return vswitch.SweepInvalidate
			}
			return vswitch.SweepKeep
		})
		r.sw.MarkRevalidated(seq)
	}
	if r.adapt != nil {
		r.retune(now, pressure)
	}
	// The sweep doubles as the pending-table janitor: entries orphaned by
	// an unsupervised handler death (popped, never resolved, never
	// requeued) are failed once they outlive the reap horizon, releasing
	// their waiters and unwedging the dedup key.
	if r.sub != nil && r.pendingAge > 0 {
		r.sub.ReapPending(now, r.pendingAge)
	}
	r.record(res)
	// A sweep that actually deleted something is a control-plane event: the
	// cache shrank without the data path's involvement.
	if n := res.Expired + res.Invalidated; n > 0 {
		r.journal.Record(now, telemetry.EvSweep, -1, int64(n))
	}
	return res
}

// retune feeds one sweep's per-port pressure (and the subsystem's
// residence histograms) through the adaptive controller and applies the
// resulting quotas. Pressure attributed to ports outside the subsystem's
// source range cannot be tuned; it is surfaced via
// RevalidatorStats.OrphanPressure instead of being silently dropped.
func (r *Revalidator) retune(now int64, pressure map[int]int) {
	sources := r.sub.Sources()
	per := r.sub.PerSource()
	r.mu.Lock()
	if len(r.states) < sources {
		r.states = append(r.states, make([]QuotaState, sources-len(r.states))...)
		r.prevRes = append(r.prevRes, make([]LatencyHist, sources-len(r.prevRes))...)
	}
	for p, n := range pressure {
		if p < 0 || p >= sources {
			r.stats.OrphanPressure += uint64(n)
		}
	}
	type tuned struct {
		src, quota int
		moved      bool
	}
	quotas := make([]tuned, 0, sources)
	for src := 0; src < sources; src++ {
		// The residence signal is the mean flow-setup latency of the
		// upcalls this port had handled since the last sweep.
		delta := per[src].Residence.Delta(r.prevRes[src])
		r.prevRes[src] = per[src].Residence
		seeded, prev := r.states[src].Seeded, r.states[src].Quota
		q := r.adapt.Next(&r.states[src], pressure[src], delta.Mean())
		// A retune is journalled only when an already-seeded quota actually
		// moves: the first sweep's seeding of every port is setup, not news,
		// and a de-flapped controller's timeline should stay quiet.
		quotas = append(quotas, tuned{src, q, seeded && q != prev})
	}
	r.mu.Unlock()
	// Apply outside r.mu: SetQuota takes the subsystem lock.
	for _, t := range quotas {
		r.sub.SetQuota(t.src, t.quota)
		if t.moved {
			r.journal.Record(now, telemetry.EvQuotaRetune, t.src, int64(t.quota))
		}
	}
}

// DeleteMegaflows routes a monitor deletion (an MFCGuard sweep) through
// the revalidator's dump machinery, with the quirk ledger semantics of
// vswitch.DeleteMegaflows, and records it in the revalidator stats. It
// satisfies mitigation.Sweeper, so a guard and a revalidator share one
// lifecycle path.
//
// With adaptive quotas on, each suppressed entry is also fed into the
// per-port pressure sensor (carried into the next sweep's pressure map):
// guard-driven churn is slow-path load exactly like idle expiry, and
// leaving it out made MFCGuard sweeps invisible to AdaptiveQuota — a
// flooding port whose megaflows the guard kept deleting looked idle.
func (r *Revalidator) DeleteMegaflows(pred func(*tss.Entry) bool) int {
	var suppressed map[int]int
	if r.adapt != nil {
		suppressed = make(map[int]int)
	}
	res := r.sw.SweepMegaflows(func(e *tss.Entry) vswitch.SweepDecision {
		if pred(e) {
			if suppressed != nil {
				suppressed[e.Port]++
			}
			return vswitch.SweepSuppress
		}
		return vswitch.SweepKeep
	})
	if len(suppressed) > 0 {
		r.mu.Lock()
		if r.carry == nil {
			r.carry = make(map[int]int)
		}
		for p, n := range suppressed {
			r.carry[p] += n
		}
		r.mu.Unlock()
	}
	r.record(res)
	return res.Suppressed
}

// Run sweeps on every virtual-time tick received until ticks closes — the
// goroutine mode a deployment runs next to the handler goroutines.
func (r *Revalidator) Run(ticks <-chan int64) {
	for now := range ticks {
		r.Tick(now)
	}
}

// Stats returns a snapshot of the revalidator counters.
func (r *Revalidator) Stats() RevalidatorStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func (r *Revalidator) record(res vswitch.SweepResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Sweeps++
	r.stats.Dumped += uint64(res.Dumped)
	r.stats.Expired += uint64(res.Expired)
	r.stats.Invalidated += uint64(res.Invalidated)
	r.stats.Suppressed += uint64(res.Suppressed)
}
