package upcall

import (
	"fmt"
	"sync"

	"tse/internal/tss"
	"tse/internal/vswitch"
)

// AdaptiveQuota parameterises revalidator-fed per-port quota adaptation:
// OVS sizes its upcall rate limiter from observed load, and this is that
// feedback loop for the simulated switch. Each revalidator sweep measures
// every port's slow-path pressure — its live megaflow footprint plus the
// entries expired or invalidated this sweep (churn: TSE megaflows are
// installed once and never hit again, so they die in bulk at the idle
// horizon) — and re-tunes the port's admission quota: at or below
// TargetFootprint the port keeps BaseQuota untouched, beyond it the quota
// shrinks inversely with pressure down to MinQuota. A flooding port
// throttles itself within a few sweeps while victim ports, whose
// footprint is a handful of megaflows, keep their full budget — and the
// flooding port's quota recovers to BaseQuota once its state expires.
type AdaptiveQuota struct {
	// BaseQuota is the per-port per-second admission budget at rest, and
	// the adaptive maximum. Required > 0.
	BaseQuota int
	// MinQuota floors the adapted quota so a throttled port can still
	// install the occasional megaflow (and so recover); <= 0 selects 1.
	MinQuota int
	// TargetFootprint is the megaflow pressure a port may reach before
	// its quota shrinks; <= 0 selects BaseQuota.
	TargetFootprint int
}

// QuotaFor maps one port's measured pressure to its next admission quota.
func (a AdaptiveQuota) QuotaFor(pressure int) int {
	min := a.MinQuota
	if min <= 0 {
		min = 1
	}
	target := a.TargetFootprint
	if target <= 0 {
		target = a.BaseQuota
	}
	if pressure <= target {
		return a.BaseQuota
	}
	q := a.BaseQuota * target / pressure
	if q < min {
		q = min
	}
	return q
}

// Revalidator is the megaflow-lifecycle loop of the asynchronous slow
// path, modelled on OVS's revalidator threads: on each sweep it dumps the
// megaflow cache, expires entries idle past the timeout, and re-checks the
// survivors against the current flow table (so a SwapTable becomes
// effective in the fast path at revalidator cadence, not synchronously).
// Monitor deletions — MFCGuard's sweeps — route through the same dump
// machinery via DeleteMegaflows, so the repository has exactly one
// megaflow-lifecycle path: vswitch.SweepMegaflows.
//
// With a Subsystem and an AdaptiveQuota configured, each sweep also
// aggregates its dump per ingress port (tss.Entry.Port) and feeds the
// per-port pressure back into the subsystem's admission quotas.
type Revalidator struct {
	sw       *vswitch.Switch
	sub      *Subsystem
	adapt    *AdaptiveQuota
	interval int64
	timeout  int64

	mu      sync.Mutex
	lastRun int64
	ran     bool
	stats   RevalidatorStats
}

// RevalidatorConfig parameterises a Revalidator.
type RevalidatorConfig struct {
	// Switch is the device whose megaflow cache is maintained.
	Switch *vswitch.Switch
	// IntervalSec is the sweep cadence in virtual seconds; <= 0 selects 1
	// (OVS revalidators wake sub-second; the simulator's clock is
	// one-second grained).
	IntervalSec int64
	// IdleTimeout overrides the switch's megaflow idle horizon for
	// expiry; <= 0 keeps the switch's configured timeout.
	IdleTimeout int64
	// Subsystem, with Adapt, receives per-port quota updates derived from
	// each sweep's dump statistics. Ports are the subsystem's sources.
	Subsystem *Subsystem
	// Adapt enables the adaptive per-port quota feedback loop.
	Adapt *AdaptiveQuota
}

// RevalidatorStats aggregates revalidator activity.
type RevalidatorStats struct {
	// Sweeps counts dump passes.
	Sweeps uint64
	// Dumped counts entries examined across sweeps; Expired and
	// Invalidated count deletions by cause; Suppressed counts monitor
	// deletions routed through DeleteMegaflows.
	Dumped, Expired, Invalidated, Suppressed uint64
}

// NewRevalidator validates the configuration and returns a Revalidator.
func NewRevalidator(cfg RevalidatorConfig) (*Revalidator, error) {
	if cfg.Switch == nil {
		return nil, fmt.Errorf("upcall: revalidator needs a switch")
	}
	if cfg.IntervalSec <= 0 {
		cfg.IntervalSec = 1
	}
	timeout := cfg.IdleTimeout
	if timeout <= 0 {
		timeout = cfg.Switch.IdleTimeout()
	}
	if cfg.Adapt != nil {
		if cfg.Subsystem == nil {
			return nil, fmt.Errorf("upcall: adaptive quotas need a subsystem to tune")
		}
		if cfg.Adapt.BaseQuota <= 0 {
			return nil, fmt.Errorf("upcall: adaptive quotas need BaseQuota > 0")
		}
	}
	return &Revalidator{sw: cfg.Switch, sub: cfg.Subsystem, adapt: cfg.Adapt,
		interval: cfg.IntervalSec, timeout: timeout}, nil
}

// Tick runs a sweep at virtual time now if the cadence has elapsed,
// returning the sweep result (zero when the cadence did not trigger).
func (r *Revalidator) Tick(now int64) vswitch.SweepResult {
	r.mu.Lock()
	if r.ran && now-r.lastRun < r.interval {
		r.mu.Unlock()
		return vswitch.SweepResult{}
	}
	r.lastRun, r.ran = now, true
	r.mu.Unlock()
	return r.Sweep(now)
}

// Sweep performs one dump-expire-revalidate pass immediately: idle entries
// are expired exactly as Switch.Tick would, and entries the current flow
// table no longer regenerates are deleted (the asynchronous counterpart of
// ReplaceTable's inline revalidation).
//
// The per-entry regenerate check runs only while the switch reports an
// unsettled table swap: on a quiet table a cached megaflow can never fail
// revalidation, so the routine sweep stays a cheap timestamp walk instead
// of regenerating the whole (possibly attack-inflated) cache under the
// classifier's writer lock every interval. After a full regenerate pass
// the swap is marked settled, restoring the switch's strict
// overlap-is-a-bug invariant.
func (r *Revalidator) Sweep(now int64) vswitch.SweepResult {
	// With adaptive quotas on, the sweep doubles as the per-port load
	// sensor: pressure[p] counts port p's dumped entries — its live
	// megaflow footprint plus whatever this sweep deletes (the churn of a
	// flood whose megaflows die unhit at the idle horizon).
	var pressure map[int]int
	if r.adapt != nil {
		pressure = make(map[int]int)
	}
	track := func(e *tss.Entry) {
		if pressure != nil {
			pressure[e.Port]++
		}
	}
	var res vswitch.SweepResult
	if !r.sw.NeedsRevalidation() {
		res = r.sw.SweepMegaflows(func(e *tss.Entry) vswitch.SweepDecision {
			track(e)
			if now-e.LastUsedAt() >= r.timeout {
				return vswitch.SweepExpire
			}
			return vswitch.SweepKeep
		})
	} else {
		seq := r.sw.GenSeq()
		gen := r.sw.Generator()
		res = r.sw.SweepMegaflows(func(e *tss.Entry) vswitch.SweepDecision {
			track(e)
			if now-e.LastUsedAt() >= r.timeout {
				return vswitch.SweepExpire
			}
			if !vswitch.Revalidate(gen, e) {
				return vswitch.SweepInvalidate
			}
			return vswitch.SweepKeep
		})
		r.sw.MarkRevalidated(seq)
	}
	if r.adapt != nil {
		for src := 0; src < r.sub.Sources(); src++ {
			r.sub.SetQuota(src, r.adapt.QuotaFor(pressure[src]))
		}
	}
	r.record(res)
	return res
}

// DeleteMegaflows routes a monitor deletion (an MFCGuard sweep) through
// the revalidator's dump machinery, with the quirk ledger semantics of
// vswitch.DeleteMegaflows, and records it in the revalidator stats. It
// satisfies mitigation.Sweeper, so a guard and a revalidator share one
// lifecycle path.
func (r *Revalidator) DeleteMegaflows(pred func(*tss.Entry) bool) int {
	res := r.sw.SweepMegaflows(func(e *tss.Entry) vswitch.SweepDecision {
		if pred(e) {
			return vswitch.SweepSuppress
		}
		return vswitch.SweepKeep
	})
	r.record(res)
	return res.Suppressed
}

// Run sweeps on every virtual-time tick received until ticks closes — the
// goroutine mode a deployment runs next to the handler goroutines.
func (r *Revalidator) Run(ticks <-chan int64) {
	for now := range ticks {
		r.Tick(now)
	}
}

// Stats returns a snapshot of the revalidator counters.
func (r *Revalidator) Stats() RevalidatorStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func (r *Revalidator) record(res vswitch.SweepResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Sweeps++
	r.stats.Dumped += uint64(res.Dumped)
	r.stats.Expired += uint64(res.Expired)
	r.stats.Invalidated += uint64(res.Invalidated)
	r.stats.Suppressed += uint64(res.Suppressed)
}
