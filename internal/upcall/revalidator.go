package upcall

import (
	"fmt"
	"sync"

	"tse/internal/tss"
	"tse/internal/vswitch"
)

// Revalidator is the megaflow-lifecycle loop of the asynchronous slow
// path, modelled on OVS's revalidator threads: on each sweep it dumps the
// megaflow cache, expires entries idle past the timeout, and re-checks the
// survivors against the current flow table (so a SwapTable becomes
// effective in the fast path at revalidator cadence, not synchronously).
// Monitor deletions — MFCGuard's sweeps — route through the same dump
// machinery via DeleteMegaflows, so the repository has exactly one
// megaflow-lifecycle path: vswitch.SweepMegaflows.
type Revalidator struct {
	sw       *vswitch.Switch
	interval int64
	timeout  int64

	mu      sync.Mutex
	lastRun int64
	ran     bool
	stats   RevalidatorStats
}

// RevalidatorConfig parameterises a Revalidator.
type RevalidatorConfig struct {
	// Switch is the device whose megaflow cache is maintained.
	Switch *vswitch.Switch
	// IntervalSec is the sweep cadence in virtual seconds; <= 0 selects 1
	// (OVS revalidators wake sub-second; the simulator's clock is
	// one-second grained).
	IntervalSec int64
	// IdleTimeout overrides the switch's megaflow idle horizon for
	// expiry; <= 0 keeps the switch's configured timeout.
	IdleTimeout int64
}

// RevalidatorStats aggregates revalidator activity.
type RevalidatorStats struct {
	// Sweeps counts dump passes.
	Sweeps uint64
	// Dumped counts entries examined across sweeps; Expired and
	// Invalidated count deletions by cause; Suppressed counts monitor
	// deletions routed through DeleteMegaflows.
	Dumped, Expired, Invalidated, Suppressed uint64
}

// NewRevalidator validates the configuration and returns a Revalidator.
func NewRevalidator(cfg RevalidatorConfig) (*Revalidator, error) {
	if cfg.Switch == nil {
		return nil, fmt.Errorf("upcall: revalidator needs a switch")
	}
	if cfg.IntervalSec <= 0 {
		cfg.IntervalSec = 1
	}
	timeout := cfg.IdleTimeout
	if timeout <= 0 {
		timeout = cfg.Switch.IdleTimeout()
	}
	return &Revalidator{sw: cfg.Switch, interval: cfg.IntervalSec, timeout: timeout}, nil
}

// Tick runs a sweep at virtual time now if the cadence has elapsed,
// returning the sweep result (zero when the cadence did not trigger).
func (r *Revalidator) Tick(now int64) vswitch.SweepResult {
	r.mu.Lock()
	if r.ran && now-r.lastRun < r.interval {
		r.mu.Unlock()
		return vswitch.SweepResult{}
	}
	r.lastRun, r.ran = now, true
	r.mu.Unlock()
	return r.Sweep(now)
}

// Sweep performs one dump-expire-revalidate pass immediately: idle entries
// are expired exactly as Switch.Tick would, and entries the current flow
// table no longer regenerates are deleted (the asynchronous counterpart of
// ReplaceTable's inline revalidation).
//
// The per-entry regenerate check runs only while the switch reports an
// unsettled table swap: on a quiet table a cached megaflow can never fail
// revalidation, so the routine sweep stays a cheap timestamp walk instead
// of regenerating the whole (possibly attack-inflated) cache under the
// classifier's writer lock every interval. After a full regenerate pass
// the swap is marked settled, restoring the switch's strict
// overlap-is-a-bug invariant.
func (r *Revalidator) Sweep(now int64) vswitch.SweepResult {
	if !r.sw.NeedsRevalidation() {
		res := r.sw.SweepMegaflows(func(e *tss.Entry) vswitch.SweepDecision {
			if now-e.LastUsedAt() >= r.timeout {
				return vswitch.SweepExpire
			}
			return vswitch.SweepKeep
		})
		r.record(res)
		return res
	}
	seq := r.sw.GenSeq()
	gen := r.sw.Generator()
	res := r.sw.SweepMegaflows(func(e *tss.Entry) vswitch.SweepDecision {
		if now-e.LastUsedAt() >= r.timeout {
			return vswitch.SweepExpire
		}
		if !vswitch.Revalidate(gen, e) {
			return vswitch.SweepInvalidate
		}
		return vswitch.SweepKeep
	})
	r.sw.MarkRevalidated(seq)
	r.record(res)
	return res
}

// DeleteMegaflows routes a monitor deletion (an MFCGuard sweep) through
// the revalidator's dump machinery, with the quirk ledger semantics of
// vswitch.DeleteMegaflows, and records it in the revalidator stats. It
// satisfies mitigation.Sweeper, so a guard and a revalidator share one
// lifecycle path.
func (r *Revalidator) DeleteMegaflows(pred func(*tss.Entry) bool) int {
	res := r.sw.SweepMegaflows(func(e *tss.Entry) vswitch.SweepDecision {
		if pred(e) {
			return vswitch.SweepSuppress
		}
		return vswitch.SweepKeep
	})
	r.record(res)
	return res.Suppressed
}

// Run sweeps on every virtual-time tick received until ticks closes — the
// goroutine mode a deployment runs next to the handler goroutines.
func (r *Revalidator) Run(ticks <-chan int64) {
	for now := range ticks {
		r.Tick(now)
	}
}

// Stats returns a snapshot of the revalidator counters.
func (r *Revalidator) Stats() RevalidatorStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func (r *Revalidator) record(res vswitch.SweepResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Sweeps++
	r.stats.Dumped += uint64(res.Dumped)
	r.stats.Expired += uint64(res.Expired)
	r.stats.Invalidated += uint64(res.Invalidated)
	r.stats.Suppressed += uint64(res.Suppressed)
}
