package vswitch

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// TestDisableMegaflow covers the §8 immediate remedy (iii): with the MFC
// off, every non-microflow packet takes the slow path — immune to mask
// explosion (there are no masks) but paying full classification per flow
// miss, which is why the paper rejects the remedy.
func TestDisableMegaflow(t *testing.T) {
	s := newSwitch(t, Config{Table: flowtable.Fig1(), DisableMegaflow: true,
		DisableMicroflow: true})
	for i := 0; i < 5; i++ {
		v := s.Process(hyp(5), int64(i))
		if v.Path != PathSlow {
			t.Fatalf("packet %d path = %v, want slowpath", i, v.Path)
		}
		if v.Action != flowtable.Drop {
			t.Fatalf("packet %d action = %v", i, v.Action)
		}
	}
	if got := s.MFC().EntryCount(); got != 0 {
		t.Errorf("MFC holds %d entries with megaflow disabled", got)
	}
	if c := s.Counters(); c.Slow != 5 || c.Installs != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestDisableMegaflowKeepsMicroflow(t *testing.T) {
	s := newSwitch(t, Config{Table: flowtable.Fig1(), DisableMegaflow: true})
	s.Process(hyp(1), 0)
	if v := s.Process(hyp(1), 0); v.Path != PathMicroflow {
		t.Errorf("repeat packet path = %v, want microflow", v.Path)
	}
}

// TestMicroflowExhaustionByNoise demonstrates why both TSE variants pad
// their traces with noise (§5.2, §6.1): distinct attack headers churn the
// bounded exact-match cache, evicting the victim's entry so its packets
// must pay the (inflated) megaflow scan.
func TestMicroflowExhaustionByNoise(t *testing.T) {
	l := bitvec.IPv4Tuple
	tbl := flowtable.UseCaseACL(flowtable.Dp, flowtable.ACLParams{})
	s, err := New(Config{Table: tbl, MicroflowCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	victim := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	sip, _ := l.FieldIndex("ip_src")
	victim.SetField(l, dp, 80)
	s.Process(victim, 0)
	if v := s.Process(victim, 0); v.Path != PathMicroflow {
		t.Fatal("victim not served by microflow cache initially")
	}
	// 100 distinct attack headers overflow the 64-entry cache.
	atk := bitvec.NewVec(l)
	atk.SetField(l, dp, 81)
	for i := uint64(0); i < 100; i++ {
		atk.SetField(l, sip, i)
		s.Process(atk, 0)
	}
	if v := s.Process(victim, 0); v.Path == PathMicroflow {
		t.Error("victim still microflow-cached after noise churn")
	}
}
