package vswitch

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/tss"
)

// TestReplaceTableRevalidation verifies the revalidator model: after an
// ACL swap, entries the new table would generate identically survive in
// place; stale entries are deleted.
func TestReplaceTableRevalidation(t *testing.T) {
	l := bitvec.IPv4Tuple
	benign := flowtable.UseCaseACL(flowtable.Baseline, flowtable.ACLParams{})
	s := newSwitch(t, Config{Table: benign, DisableMicroflow: true})

	// Victim megaflow: matches rule #1 (dp=80) — identical under both
	// ACLs, so it must survive.
	victim := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	victim.SetField(l, dp, 80)
	s.Process(victim, 0)

	// A deny megaflow under the benign ACL: dp-prefix only. Under the
	// SipDp ACL the proof needs ip_src bits too -> stale, must go.
	deny := bitvec.NewVec(l)
	deny.SetField(l, dp, 9999)
	s.Process(deny, 0)
	if s.MFC().EntryCount() != 2 {
		t.Fatalf("setup: %d entries", s.MFC().EntryCount())
	}

	removed, err := s.ReplaceTable(flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("revalidation removed %d entries, want 1 (the stale deny)", removed)
	}
	if e, _, ok := s.MFC().Lookup(victim, 1); !ok || e.Action != flowtable.Allow {
		t.Error("victim entry did not survive revalidation")
	}
	if _, _, ok := s.MFC().Lookup(deny, 1); ok {
		t.Error("stale deny entry survived revalidation")
	}
	// Classification under the new table is sound for the denied header.
	if v := s.Process(deny, 2); v.Path != PathSlow || v.Action != flowtable.Drop {
		t.Errorf("post-swap verdict %+v", v)
	}
}

func TestReplaceTableValidation(t *testing.T) {
	s := newSwitch(t, Config{Table: flowtable.Fig1()})
	if _, err := s.ReplaceTable(nil); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := s.ReplaceTable(flowtable.Fig6()); err == nil {
		t.Error("different-layout table accepted")
	}
	if _, err := s.ReplaceTable(flowtable.Fig1()); err != nil {
		t.Errorf("same-layout swap failed: %v", err)
	}
}

// TestReplaceTablePreservesScanPosition: under insertion order, a
// surviving entry keeps its (early) scan position across the swap — the
// property the Fig. 8c scenario relies on.
func TestReplaceTablePreservesScanPosition(t *testing.T) {
	l := bitvec.IPv4Tuple
	benign := flowtable.UseCaseACL(flowtable.Baseline, flowtable.ACLParams{})
	s, err := New(Config{Table: benign, DisableMicroflow: true,
		Order: tss.OrderInsertion})
	if err != nil {
		t.Fatal(err)
	}
	victim := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	victim.SetField(l, dp, 80)
	s.Process(victim, 0)

	malicious := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	if _, err := s.ReplaceTable(malicious); err != nil {
		t.Fatal(err)
	}
	// Spawn some adversarial masks.
	sip, _ := l.FieldIndex("ip_src")
	for b := 0; b < 32; b++ {
		h := victim.Clone()
		h.SetField(l, dp, 81)
		h.FlipFieldBit(l, sip, b)
		s.Process(h, 1)
	}
	_, probes, ok := s.MFC().Lookup(victim, 2)
	if !ok {
		t.Fatal("victim entry missing")
	}
	if probes != 1 {
		t.Errorf("victim probes = %d, want 1 (insertion order, installed first)", probes)
	}
}
