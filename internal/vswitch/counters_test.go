package vswitch

import (
	"testing"

	"tse/internal/flowtable"
	"tse/internal/tss"
)

// TestCountersAccounting drives every counter branch — the three deciding
// paths, the drop/allow partition, installs, the revalidator-quirk
// suppression, and the MaxMegaflows rejection — with explicit expected
// totals. The Fig. 1 ACL allows 001 and denies everything else.
func TestCountersAccounting(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		run  func(t *testing.T, s *Switch)
		want Counters
	}{
		{
			name: "slow-then-microflow",
			cfg:  Config{Table: flowtable.Fig1()},
			run: func(t *testing.T, s *Switch) {
				s.Process(hyp(0b001), 0) // slow path, installs, primes EMC
				s.Process(hyp(0b001), 0) // exact-match hit
			},
			want: Counters{Slow: 1, Microflow: 1, Allowed: 2, Installs: 1},
		},
		{
			name: "slow-then-megaflow",
			cfg:  Config{Table: flowtable.Fig1(), DisableMicroflow: true},
			run: func(t *testing.T, s *Switch) {
				s.Process(hyp(0b001), 0)
				s.Process(hyp(0b001), 0) // no EMC: megaflow hit
			},
			want: Counters{Slow: 1, Megaflow: 1, Allowed: 2, Installs: 1},
		},
		{
			name: "megaflow-hit-primes-microflow",
			cfg:  Config{Table: flowtable.Fig1()},
			run: func(t *testing.T, s *Switch) {
				s.Process(hyp(0b101), 0) // slow: installs 1** deny megaflow
				s.Process(hyp(0b111), 0) // different header, same megaflow
				s.Process(hyp(0b111), 0) // now cached exactly
			},
			want: Counters{Slow: 1, Megaflow: 1, Microflow: 1, Dropped: 3, Installs: 1},
		},
		{
			name: "drop-allow-partition",
			cfg:  Config{Table: flowtable.Fig1(), DisableMicroflow: true},
			run: func(t *testing.T, s *Switch) {
				for _, v := range []uint64{0b001, 0b101, 0b011, 0b000, 0b001} {
					s.Process(hyp(v), 0)
				}
			},
			want: Counters{Slow: 4, Megaflow: 1, Allowed: 2, Dropped: 3, Installs: 4},
		},
		{
			name: "revalidator-quirk-suppresses-reinstall",
			cfg:  Config{Table: flowtable.Fig1(), DisableMicroflow: true},
			run: func(t *testing.T, s *Switch) {
				s.Process(hyp(0b001), 0)
				if n := s.DeleteMegaflows(func(*tss.Entry) bool { return true }); n != 1 {
					t.Fatalf("deleted %d megaflows, want 1", n)
				}
				// §8: once deleted by the monitor, the slow path never
				// re-installs; every revisit stays slow.
				s.Process(hyp(0b001), 0)
				s.Process(hyp(0b001), 0)
			},
			want: Counters{Slow: 3, Allowed: 3, Installs: 1, Suppressed: 2},
		},
		{
			name: "reinject-clears-quirk",
			cfg:  Config{Table: flowtable.Fig1(), DisableMicroflow: true},
			run: func(t *testing.T, s *Switch) {
				s.Process(hyp(0b001), 0)
				s.DeleteMegaflows(func(*tss.Entry) bool { return true })
				s.Process(hyp(0b001), 0) // suppressed
				s.Reinject()             // manual re-injection (§8)
				s.Process(hyp(0b001), 0) // slow, re-installs
				s.Process(hyp(0b001), 0) // megaflow hit again
			},
			want: Counters{Slow: 3, Megaflow: 1, Allowed: 4, Installs: 2, Suppressed: 1},
		},
		{
			name: "quirk-disabled-reinstalls",
			cfg:  Config{Table: flowtable.Fig1(), DisableMicroflow: true, NoRevalidatorQuirk: true},
			run: func(t *testing.T, s *Switch) {
				s.Process(hyp(0b001), 0)
				s.DeleteMegaflows(func(*tss.Entry) bool { return true })
				s.Process(hyp(0b001), 0) // slow, but re-installs freely
				s.Process(hyp(0b001), 0) // megaflow hit
			},
			want: Counters{Slow: 2, Megaflow: 1, Allowed: 3, Installs: 2},
		},
		{
			name: "max-megaflows-rejects",
			cfg:  Config{Table: flowtable.Fig1(), DisableMicroflow: true, MaxMegaflows: 1},
			run: func(t *testing.T, s *Switch) {
				s.Process(hyp(0b001), 0) // installs the only allowed entry
				s.Process(hyp(0b101), 0) // cache full: rejected
				s.Process(hyp(0b101), 0) // still uncached, still slow
			},
			want: Counters{Slow: 3, Allowed: 1, Dropped: 2, Installs: 1, Rejected: 2},
		},
		{
			name: "disable-megaflow-never-installs",
			cfg:  Config{Table: flowtable.Fig1(), DisableMicroflow: true, DisableMegaflow: true},
			run: func(t *testing.T, s *Switch) {
				s.Process(hyp(0b001), 0)
				s.Process(hyp(0b001), 0)
			},
			want: Counters{Slow: 2, Allowed: 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newSwitch(t, tc.cfg)
			tc.run(t, s)
			if got := s.Counters(); got != tc.want {
				t.Errorf("counters = %+v, want %+v", got, tc.want)
			}
		})
	}
}
