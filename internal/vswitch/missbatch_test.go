// Equivalence tests for the batched miss-to-install step: HandleMissBatch
// must leave the switch in the same state — megaflows, counters, verdict
// actions — as the equivalent sequence of HandleMiss calls, while paying
// exactly one classifier snapshot publish per burst.
package vswitch_test

import (
	"testing"

	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/vswitch"
)

func newMissSwitch(t *testing.T, use flowtable.UseCase, cfg func(*vswitch.Config)) *vswitch.Switch {
	t.Helper()
	c := vswitch.Config{
		Table:            flowtable.UseCaseACL(use, flowtable.ACLParams{}),
		DisableMicroflow: true,
	}
	if cfg != nil {
		cfg(&c)
	}
	sw, err := vswitch.New(c)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestHandleMissBatchMatchesSerial: a drained burst of distinct flow
// misses produces the same megaflows, counters, and verdict actions as the
// serial path, with one snapshot publish for the whole burst.
func TestHandleMissBatchMatchesSerial(t *testing.T) {
	batched := newMissSwitch(t, flowtable.SipDp, nil)
	serial := newMissSwitch(t, flowtable.SipDp, nil)
	tr, err := core.CoLocated(batched.FlowTable(), core.CoLocatedOptions{Noise: true, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	heads := tr.Headers[:96]
	ms := make([]vswitch.Miss, len(heads))
	for i, h := range heads {
		ms[i] = vswitch.Miss{Port: i % 3, Header: h}
	}

	before := batched.MFC().Stats().Publishes
	got := batched.HandleMissBatch(ms, 4)
	if pubs := batched.MFC().Stats().Publishes - before; pubs != 1 {
		t.Errorf("burst of %d misses published %d snapshots, want exactly 1", len(ms), pubs)
	}
	for i, m := range ms {
		want := serial.HandleMissFrom(m.Port, m.Header, 4)
		if got[i].Action != want.Action || got[i].OutPort != want.OutPort ||
			got[i].Path != want.Path || got[i].Rule != want.Rule {
			t.Fatalf("miss %d: batch verdict %+v != serial %+v", i, got[i], want)
		}
	}
	if cb, cs := batched.Counters(), serial.Counters(); cb != cs {
		t.Errorf("counters diverge: batch %+v, serial %+v", cb, cs)
	}
	be, se := batched.MFC().Entries(), serial.MFC().Entries()
	if len(be) != len(se) {
		t.Fatalf("megaflow counts diverge: batch %d, serial %d", len(be), len(se))
	}
	for i := range be {
		if !be[i].Key.Equal(se[i].Key) || !be[i].Mask.Equal(se[i].Mask) ||
			be[i].Action != se[i].Action || be[i].Port != se[i].Port {
			t.Fatalf("megaflow %d diverges: batch %+v, serial %+v", i, be[i], se[i])
		}
	}
}

// TestHandleMissBatchSuppressedAndLimited: the quirk ledger and the
// megaflow limit apply per miss inside a burst, as they do serially.
func TestHandleMissBatchSuppressedAndLimited(t *testing.T) {
	sw := newMissSwitch(t, flowtable.SipDp, nil)
	tr, err := core.CoLocated(sw.FlowTable(), core.CoLocatedOptions{Noise: true, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	// Install then monitor-delete one megaflow: its re-install inside a
	// burst must be suppressed by the revalidator quirk.
	sw.HandleMiss(tr.Headers[0], 0)
	if n := sw.DeleteMegaflows(func(*tss.Entry) bool { return true }); n != 1 {
		t.Fatalf("monitor deletion removed %d entries, want 1", n)
	}
	ms := make([]vswitch.Miss, 8)
	for i := range ms {
		ms[i] = vswitch.Miss{Header: tr.Headers[i]}
	}
	sw.HandleMissBatch(ms, 1)
	c := sw.Counters()
	if c.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the monitor-deleted flow)", c.Suppressed)
	}

	// A hard megaflow limit rejects the burst's tail.
	limited := newMissSwitch(t, flowtable.SipDp, func(c *vswitch.Config) { c.MaxMegaflows = 3 })
	limited.HandleMissBatch(ms, 0)
	lc := limited.Counters()
	if lc.Installs != 3 {
		t.Errorf("limited switch installed %d megaflows, want 3", lc.Installs)
	}
	if lc.Rejected == 0 {
		t.Error("limited switch rejected nothing beyond the cap")
	}
	if got := limited.MFC().EntryCount(); got != 3 {
		t.Errorf("limited MFC holds %d entries, want 3", got)
	}
}
