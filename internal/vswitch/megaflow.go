package vswitch

import (
	"fmt"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/tss"
)

// Strategy selects how the megaflow generator unwildcards one header field
// when proving a rule mismatch. The choice realises the space–time
// trade-off of Theorems 4.1/4.2: StrategyWildcard is the k≈w extreme
// (minimal space, maximal masks — what OVS usually does and what the TSE
// attack exploits), StrategyExact the k≈1 extreme (one mask, exponential
// entries — what OVS does for IPv6 addresses per §5.4).
type Strategy int

const (
	// StrategyWildcard unwildcards the MSB-first prefix of the field up
	// to and including the first bit where the packet disagrees with the
	// rule, mirroring OVS's trie-guided "wildcarding" heuristic (Fig. 3).
	StrategyWildcard Strategy = iota
	// StrategyExact unwildcards the whole field.
	StrategyExact
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyWildcard:
		return "wildcard"
	case StrategyExact:
		return "exact"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Generator derives megaflow entries from slow-path classifications,
// maintaining the paper's two invariants (§3.2):
//
//	Inv(1) Cover: the generated entry matches the packet that sparked it.
//	Inv(2) Independence: entries generated for packets with different
//	       classification outcomes are pairwise disjoint.
//
// Inv(2) holds because the generated mask records the complete "decision
// transcript" of the slow-path walk: for every rule considered before the
// final match, the mask contains enough bits to prove the mismatch, so any
// header matching the entry takes the same walk and reaches the same rule.
type Generator struct {
	table    *flowtable.Table
	layout   *bitvec.Layout
	strategy []Strategy // per field index
}

// NewGenerator builds a generator for the table. strategies maps field
// names to a Strategy; missing fields default to StrategyWildcard.
func NewGenerator(table *flowtable.Table, strategies map[string]Strategy) (*Generator, error) {
	l := table.Layout()
	g := &Generator{table: table, layout: l, strategy: make([]Strategy, l.NumFields())}
	for name, st := range strategies {
		i, ok := l.FieldIndex(name)
		if !ok {
			return nil, fmt.Errorf("vswitch: strategy for unknown field %q", name)
		}
		g.strategy[i] = st
	}
	return g, nil
}

// Generate derives the megaflow entry for header h. The caller must have
// established that h reaches the slow path (i.e. the table classifies it).
// If no rule matches, Generate returns an exact-match drop entry, which is
// always safe.
func (g *Generator) Generate(h bitvec.Vec) *tss.Entry {
	l := g.layout
	mask := bitvec.NewVec(l)
	var matched *flowtable.Rule

	for _, r := range g.table.Rules() {
		if r.Matches(h) {
			// Unwildcard the matched rule's own bits: the fast path must
			// re-verify this match. (Fields under StrategyExact widen to
			// the whole field, preserving Inv(2) trivially.)
			for f := 0; f < l.NumFields(); f++ {
				if !fieldConstrained(l, r.Mask, f) {
					continue
				}
				if g.strategy[f] == StrategyExact {
					orFieldMask(l, mask, f)
					continue
				}
				orConstrained(l, mask, r.Mask, f)
			}
			matched = r
			break
		}
		// Prove the mismatch: for every field the rule constrains and on
		// which h disagrees, unwildcard per strategy. OVS's staged lookup
		// consults each constrained field, which is what yields the
		// multiplicative (Cartesian-product) mask growth of Theorem 4.2.
		for f := 0; f < l.NumFields(); f++ {
			if !fieldConstrained(l, r.Mask, f) {
				continue
			}
			if g.strategy[f] == StrategyExact {
				orFieldMask(l, mask, f)
				continue
			}
			// MSB-first scan over the rule's constrained bits: unwildcard
			// through the first differing bit (Fig. 3's construction).
			w := l.Field(f).Width
			for i := 0; i < w; i++ {
				if !r.Mask.FieldBit(l, f, i) {
					continue
				}
				mask.SetFieldBit(l, f, i)
				if h.FieldBit(l, f, i) != r.Key.FieldBit(l, f, i) {
					break
				}
			}
		}
	}

	e := &tss.Entry{Key: h.And(mask), Mask: mask, Action: flowtable.Drop, RuleName: "<no-match>"}
	if matched != nil {
		e.Action = matched.Action
		e.OutPort = matched.OutPort
		e.RuleName = matched.Name
	} else {
		// No rule matched: cache an exact drop so the miss is not
		// re-classified per packet, without risking over-wide coverage.
		e.Mask = bitvec.FullMask(l)
		e.Key = h.Clone()
	}
	return e
}

// fieldConstrained reports whether mask has any bit set within field f.
func fieldConstrained(l *bitvec.Layout, mask bitvec.Vec, f int) bool {
	w := l.Field(f).Width
	for i := 0; i < w; i++ {
		if mask.FieldBit(l, f, i) {
			return true
		}
	}
	return false
}

// orConstrained sets in dst every bit of field f that src has set.
func orConstrained(l *bitvec.Layout, dst, src bitvec.Vec, f int) {
	w := l.Field(f).Width
	for i := 0; i < w; i++ {
		if src.FieldBit(l, f, i) {
			dst.SetFieldBit(l, f, i)
		}
	}
}

// orFieldMask sets all bits of field f in dst.
func orFieldMask(l *bitvec.Layout, dst bitvec.Vec, f int) {
	w := l.Field(f).Width
	for i := 0; i < w; i++ {
		dst.SetFieldBit(l, f, i)
	}
}
