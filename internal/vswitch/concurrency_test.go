// Concurrency tests for the "safe for concurrent use" claim on Switch:
// multiple goroutines hammer Process/ProcessBatch over an attack trace
// while slow-path installs, monitor deletions, revalidation, expiry ticks,
// and snapshot readers run against the same switch. Run with -race (CI
// does); the counter-conservation asserts catch lost updates even without
// the detector.
package vswitch_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/vswitch"
)

func TestSwitchConcurrentProcess(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, MicroflowCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		rounds     = 4
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the workers go packet-at-a-time, half in bursts, so the
			// serial and batched paths contend with each other.
			if g%2 == 0 {
				for r := 0; r < rounds; r++ {
					for i, h := range tr.Headers {
						sw.Process(h, int64(i))
					}
				}
				return
			}
			out := make([]vswitch.Verdict, 32)
			for r := 0; r < rounds; r++ {
				for i := 0; i < len(tr.Headers); i += 32 {
					end := i + 32
					if end > len(tr.Headers) {
						end = len(tr.Headers)
					}
					sw.ProcessBatch(tr.Headers[i:end], int64(i), out)
				}
			}
		}(g)
	}
	// A monitor goroutine doing what MFCGuard and the revalidator do.
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				sw.DeleteMegaflows(func(e *tss.Entry) bool {
					return e.Action == flowtable.Drop && i%8 == 0
				})
			case 1:
				sw.Tick(int64(i))
				sw.Reinject()
			case 2:
				// Revalidation against the same table: entries survive.
				if _, err := sw.ReplaceTable(tbl); err != nil {
					t.Error(err)
					return
				}
			case 3:
				// Snapshot readers.
				sw.Counters()
				sw.MFC().Entries()
				sw.MFC().Masks()
				sw.MFC().Stats()
				sw.MFC().MaskCount()
			}
		}
	}()
	wg.Wait()
	close(stop)
	monWG.Wait()

	total := uint64(goroutines * rounds * len(tr.Headers))
	c := sw.Counters()
	if got := c.Microflow + c.Megaflow + c.Slow; got != total {
		t.Errorf("path counters sum to %d, want %d (lost updates)", got, total)
	}
	if got := c.Dropped + c.Allowed; got != total {
		t.Errorf("verdict counters sum to %d, want %d (lost updates)", got, total)
	}
	st := sw.MFC().Stats()
	if st.Lookups != st.Hits+st.Misses {
		t.Errorf("MFC lookups %d != hits %d + misses %d", st.Lookups, st.Hits, st.Misses)
	}
}

// TestSwitchConcurrentSwapAndSweep hammers the lock-free read path while
// the slow-path generation is swapped (SwapTable — an atomic pointer
// swap), revalidation sweeps regenerate-check the whole cache, and idle
// expiry runs: readers must only ever observe fully consistent snapshots.
// The invariant checked per lookup is semantic: the victim flow is allowed
// by every generation of the table, so its verdict action must never
// change, whichever snapshot or generation a reader lands on; and the
// classifier's counters stay monotonic throughout. Run with -race.
func TestSwitchConcurrentSwapAndSweep(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	victim := tr.Headers[0] // replay below guarantees it is classified
	core.Replay(sw, tr, 0)
	want := sw.Process(victim, 0).Action

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out := make([]vswitch.Verdict, 32)
			for i := 0; !stop.Load(); i++ {
				v := sw.Process(victim, int64(i%5))
				if v.Action != want {
					t.Errorf("reader %d: victim verdict flipped to %v (path %v)", r, v.Action, v.Path)
					return
				}
				if r%2 == 1 {
					end := (i * 32) % (len(tr.Headers) - 32)
					sw.ProcessBatch(tr.Headers[end:end+32], int64(i%5), out)
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last tss.Stats
		for !stop.Load() {
			s := sw.MFC().Stats()
			if s.Lookups < last.Lookups || s.Probes < last.Probes ||
				s.Inserted < last.Inserted || s.Deleted < last.Deleted {
				t.Errorf("classifier stats went backwards: %+v after %+v", s, last)
				return
			}
			last = s
		}
	}()
	for i := 0; i < 60; i++ {
		switch i % 3 {
		case 0:
			// Swap without inline revalidation: readers keep classifying
			// against the published snapshot; the sweep below reconciles.
			if err := sw.SwapTable(tbl); err != nil {
				t.Fatal(err)
			}
		case 1:
			// Revalidator-style sweep: regenerate-check every entry under
			// the current generation, expire nothing (fresh stamps).
			seq := sw.GenSeq()
			gen := sw.Generator()
			sw.SweepMegaflows(func(e *tss.Entry) vswitch.SweepDecision {
				if !vswitch.Revalidate(gen, e) {
					return vswitch.SweepInvalidate
				}
				return vswitch.SweepKeep
			})
			sw.MarkRevalidated(seq)
		case 2:
			if _, err := sw.ReplaceTable(tbl); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	// The same-table swaps must not have invalidated the victim's entry
	// class: it still classifies identically after the churn.
	if got := sw.Process(victim, 0).Action; got != want {
		t.Errorf("victim verdict after churn = %v, want %v", got, want)
	}
}

// TestClassifierConcurrentLookupInsert drives the classifier's
// reader/writer split directly: concurrent Lookup and LookupBatch readers
// against a writer inserting fresh exact-match entries.
func TestClassifierConcurrentLookupInsert(t *testing.T) {
	l := bitvec.IPv4Tuple
	c := tss.New(l, tss.Options{})
	mask := bitvec.FullMask(l)
	sip, _ := l.FieldIndex("ip_src")
	mk := func(v uint64) bitvec.Vec {
		h := bitvec.NewVec(l)
		h.SetField(l, sip, v)
		return h
	}
	const n = 512
	for i := 0; i < n/2; i++ {
		if err := c.Insert(&tss.Entry{Key: mk(uint64(i)), Mask: mask,
			Action: flowtable.Allow}, 0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := n / 2; i < n; i++ {
			if err := c.Insert(&tss.Entry{Key: mk(uint64(i)), Mask: mask,
				Action: flowtable.Allow}, 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 8; r++ {
			for i := 0; i < n; i++ {
				c.Lookup(mk(uint64(i)), int64(r))
			}
		}
	}()
	go func() {
		defer wg.Done()
		hs := make([]bitvec.Vec, 32)
		out := make([]tss.BatchResult, 32)
		for r := 0; r < 8; r++ {
			for i := 0; i+32 <= n; i += 32 {
				for j := range hs {
					hs[j] = mk(uint64(i + j))
				}
				c.LookupBatch(hs, int64(r), out)
			}
		}
	}()
	wg.Wait()
	if got := c.EntryCount(); got != n {
		t.Errorf("entry count = %d, want %d", got, n)
	}
}
