// Concurrency tests for the "safe for concurrent use" claim on Switch:
// multiple goroutines hammer Process/ProcessBatch over an attack trace
// while slow-path installs, monitor deletions, revalidation, expiry ticks,
// and snapshot readers run against the same switch. Run with -race (CI
// does); the counter-conservation asserts catch lost updates even without
// the detector.
package vswitch_test

import (
	"sync"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/vswitch"
)

func TestSwitchConcurrentProcess(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, MicroflowCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		rounds     = 4
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the workers go packet-at-a-time, half in bursts, so the
			// serial and batched paths contend with each other.
			if g%2 == 0 {
				for r := 0; r < rounds; r++ {
					for i, h := range tr.Headers {
						sw.Process(h, int64(i))
					}
				}
				return
			}
			out := make([]vswitch.Verdict, 32)
			for r := 0; r < rounds; r++ {
				for i := 0; i < len(tr.Headers); i += 32 {
					end := i + 32
					if end > len(tr.Headers) {
						end = len(tr.Headers)
					}
					sw.ProcessBatch(tr.Headers[i:end], int64(i), out)
				}
			}
		}(g)
	}
	// A monitor goroutine doing what MFCGuard and the revalidator do.
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				sw.DeleteMegaflows(func(e *tss.Entry) bool {
					return e.Action == flowtable.Drop && i%8 == 0
				})
			case 1:
				sw.Tick(int64(i))
				sw.Reinject()
			case 2:
				// Revalidation against the same table: entries survive.
				if _, err := sw.ReplaceTable(tbl); err != nil {
					t.Error(err)
					return
				}
			case 3:
				// Snapshot readers.
				sw.Counters()
				sw.MFC().Entries()
				sw.MFC().Masks()
				sw.MFC().Stats()
				sw.MFC().MaskCount()
			}
		}
	}()
	wg.Wait()
	close(stop)
	monWG.Wait()

	total := uint64(goroutines * rounds * len(tr.Headers))
	c := sw.Counters()
	if got := c.Microflow + c.Megaflow + c.Slow; got != total {
		t.Errorf("path counters sum to %d, want %d (lost updates)", got, total)
	}
	if got := c.Dropped + c.Allowed; got != total {
		t.Errorf("verdict counters sum to %d, want %d (lost updates)", got, total)
	}
	st := sw.MFC().Stats()
	if st.Lookups != st.Hits+st.Misses {
		t.Errorf("MFC lookups %d != hits %d + misses %d", st.Lookups, st.Hits, st.Misses)
	}
}

// TestClassifierConcurrentLookupInsert drives the classifier's
// reader/writer split directly: concurrent Lookup and LookupBatch readers
// against a writer inserting fresh exact-match entries.
func TestClassifierConcurrentLookupInsert(t *testing.T) {
	l := bitvec.IPv4Tuple
	c := tss.New(l, tss.Options{})
	mask := bitvec.FullMask(l)
	sip, _ := l.FieldIndex("ip_src")
	mk := func(v uint64) bitvec.Vec {
		h := bitvec.NewVec(l)
		h.SetField(l, sip, v)
		return h
	}
	const n = 512
	for i := 0; i < n/2; i++ {
		if err := c.Insert(&tss.Entry{Key: mk(uint64(i)), Mask: mask,
			Action: flowtable.Allow}, 0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := n / 2; i < n; i++ {
			if err := c.Insert(&tss.Entry{Key: mk(uint64(i)), Mask: mask,
				Action: flowtable.Allow}, 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 8; r++ {
			for i := 0; i < n; i++ {
				c.Lookup(mk(uint64(i)), int64(r))
			}
		}
	}()
	go func() {
		defer wg.Done()
		hs := make([]bitvec.Vec, 32)
		out := make([]tss.BatchResult, 32)
		for r := 0; r < 8; r++ {
			for i := 0; i+32 <= n; i += 32 {
				for j := range hs {
					hs[j] = mk(uint64(i + j))
				}
				c.LookupBatch(hs, int64(r), out)
			}
		}
	}()
	wg.Wait()
	if got := c.EntryCount(); got != n {
		t.Errorf("entry count = %d, want %d", got, n)
	}
}
