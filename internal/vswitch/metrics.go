package vswitch

import "tse/internal/telemetry"

// AttachMetrics registers pull-model collectors over the switch's
// per-path packet counters and delegates the megaflow-cache families to
// the classifier's own AttachMetrics. The closures read Counters() — a
// mutex-protected snapshot copy — at scrape/snapshot time only, so the
// packet path pays nothing for a live /metrics endpoint.
func (s *Switch) AttachMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	ctr := func(get func(Counters) uint64) func() uint64 {
		return func() uint64 { return get(s.Counters()) }
	}
	reg.CounterFunc("tse_packets_microflow_total",
		"Packets decided by the exact-match microflow cache (OVS coverage: emc hits).",
		ctr(func(c Counters) uint64 { return c.Microflow }))
	reg.CounterFunc("tse_packets_megaflow_total",
		"Packets decided by the megaflow cache (OVS coverage: masked_hit).",
		ctr(func(c Counters) uint64 { return c.Megaflow }))
	reg.CounterFunc("tse_packets_slowpath_total",
		"Packets decided by the slow-path flow table (OVS coverage: upcalls / miss).",
		ctr(func(c Counters) uint64 { return c.Slow }))
	reg.CounterFunc("tse_packets_dropped_total",
		"Packets with a drop verdict.",
		ctr(func(c Counters) uint64 { return c.Dropped }))
	reg.CounterFunc("tse_packets_allowed_total",
		"Packets with an allow verdict.",
		ctr(func(c Counters) uint64 { return c.Allowed }))
	reg.CounterFunc("tse_megaflow_installs_total",
		"Megaflow installations from the slow path (OVS coverage: flow_add).",
		ctr(func(c Counters) uint64 { return c.Installs }))
	reg.CounterFunc("tse_megaflow_install_suppressed_total",
		"Installs skipped by the revalidator deletion quirk.",
		ctr(func(c Counters) uint64 { return c.Suppressed }))
	reg.CounterFunc("tse_megaflow_install_rejected_total",
		"Installs refused at the megaflow capacity limit (OVS: flow limit).",
		ctr(func(c Counters) uint64 { return c.Rejected }))
	reg.CounterFunc("tse_megaflow_install_conflicts_total",
		"Installs abandoned on a benign overlap race with a mid-flight table swap.",
		ctr(func(c Counters) uint64 { return c.Conflicts }))
	reg.CounterFunc("tse_megaflow_install_errors_total",
		"Installs failed by the injected flow_put fault.",
		ctr(func(c Counters) uint64 { return c.InstallErrors }))
	s.mfc.AttachMetrics(reg)
}
