package vswitch

import (
	"math/rand"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/tss"
)

func hyp(val uint64) bitvec.Vec {
	h := bitvec.NewVec(bitvec.HYP)
	h.SetField(bitvec.HYP, 0, val)
	return h
}

func hyp2(a, b uint64) bitvec.Vec {
	h := bitvec.NewVec(bitvec.HYP2)
	h.SetField(bitvec.HYP2, 0, a)
	h.SetField(bitvec.HYP2, 1, b)
	return h
}

func newSwitch(t *testing.T, cfg Config) *Switch {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("switch without table accepted")
	}
	if _, err := New(Config{Table: flowtable.Fig1(),
		Strategy: map[string]Strategy{"nope": StrategyExact}}); err == nil {
		t.Error("strategy for unknown field accepted")
	}
}

// TestWildcardStrategyFig3 replays the paper's §5.1 single-header
// adversarial trace {001, 101, 011, 000} against the Fig. 1 ACL and checks
// that the MFC ends up exactly as Fig. 3: 4 entries, 3 masks, with the
// printed patterns of the figure.
func TestWildcardStrategyFig3(t *testing.T) {
	s := newSwitch(t, Config{Table: flowtable.Fig1(), DisableMicroflow: true})
	for _, v := range []uint64{0b001, 0b101, 0b011, 0b000} {
		s.Process(hyp(v), 0)
	}
	if got := s.MFC().EntryCount(); got != 4 {
		t.Errorf("entries = %d, want 4 (Fig. 3)", got)
	}
	if got := s.MFC().MaskCount(); got != 3 {
		t.Errorf("masks = %d, want 3 (Fig. 3)", got)
	}
	want := map[string]string{
		"001": "allow", "1**": "deny", "01*": "deny", "000": "deny",
	}
	for _, e := range s.MFC().Entries() {
		pat := bitvec.FormatMasked(bitvec.HYP, e.Key, e.Mask)
		action, ok := want[pat]
		if !ok {
			t.Errorf("unexpected MFC entry %s", pat)
			continue
		}
		if e.Action.String() != action {
			t.Errorf("entry %s action = %v, want %s", pat, e.Action, action)
		}
		delete(want, pat)
	}
	for pat := range want {
		t.Errorf("Fig. 3 entry %s missing from MFC", pat)
	}
}

// TestExactMatchStrategyFig2 drives all 8 HYP headers through a switch
// configured with the exact-match strategy and expects Fig. 2: one mask,
// eight entries.
func TestExactMatchStrategyFig2(t *testing.T) {
	s := newSwitch(t, Config{Table: flowtable.Fig1(), DisableMicroflow: true,
		Strategy: map[string]Strategy{"HYP": StrategyExact}})
	for v := uint64(0); v < 8; v++ {
		s.Process(hyp(v), 0)
	}
	if got := s.MFC().MaskCount(); got != 1 {
		t.Errorf("masks = %d, want 1 (Fig. 2)", got)
	}
	if got := s.MFC().EntryCount(); got != 8 {
		t.Errorf("entries = %d, want 8 (Fig. 2)", got)
	}
}

// TestMultiFieldConstructionFig5 exhausts the two-header toy protocol
// against the Fig. 4 ACL: the paper derives 3*4+1 = 13 distinct masks
// (§4.2), with allow-rule-#2 entries sharing deny masks.
func TestMultiFieldConstructionFig5(t *testing.T) {
	s := newSwitch(t, Config{Table: flowtable.Fig4(), DisableMicroflow: true})
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 16; b++ {
			s.Process(hyp2(a, b), 0)
		}
	}
	if got := s.MFC().MaskCount(); got != 13 {
		t.Errorf("masks = %d, want 13 = 3*4+1 (Fig. 5 / §4.2)", got)
	}
	// Spot-check a few of Fig. 5's printed entries.
	found := map[string]bool{}
	for _, e := range s.MFC().Entries() {
		found[bitvec.FormatMasked(bitvec.HYP2, e.Key, e.Mask)+" "+e.Action.String()] = true
	}
	for _, want := range []string{
		"001|**** allow", // #1
		"1**|1111 allow", // #2
		"000|1111 allow", // #4
		"1**|0*** deny",  // #5
		"000|1110 deny",  // #16
	} {
		if !found[want] {
			t.Errorf("Fig. 5 entry %q missing", want)
		}
	}
}

// TestMFCSemanticEquivalence: after processing every header, the fast path
// must agree with the flow table on every header (soundness of caching).
func TestMFCSemanticEquivalence(t *testing.T) {
	tbl := flowtable.Fig4()
	s := newSwitch(t, Config{Table: tbl, DisableMicroflow: true})
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 16; b++ {
			s.Process(hyp2(a, b), 0)
		}
	}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 16; b++ {
			h := hyp2(a, b)
			e, _, ok := s.MFC().Lookup(h, 0)
			if !ok {
				t.Fatalf("header %03b|%04b missing from MFC after exhaustion", a, b)
			}
			if want := tbl.Lookup(h).Action; e.Action != want {
				t.Errorf("header %03b|%04b cached %v, table says %v", a, b, e.Action, want)
			}
		}
	}
}

func TestPipelinePaths(t *testing.T) {
	s := newSwitch(t, Config{Table: flowtable.Fig1()})
	// First packet: slow path.
	if v := s.Process(hyp(1), 0); v.Path != PathSlow || v.Action != flowtable.Allow {
		t.Errorf("first packet: %+v, want slow-path allow", v)
	}
	// Same header again: microflow hit.
	if v := s.Process(hyp(1), 0); v.Path != PathMicroflow {
		t.Errorf("second packet path = %v, want microflow", v.Path)
	}
	// A different header in the same megaflow region (101 and 111 share
	// entry 1**) after priming with 101.
	s.Process(hyp(5), 0)
	if v := s.Process(hyp(7), 0); v.Path != PathMegaflow || v.Action != flowtable.Drop {
		t.Errorf("megaflow-covered packet: %+v, want megaflow deny", v)
	}
	c := s.Counters()
	if c.Slow != 2 || c.Microflow != 1 || c.Megaflow != 1 {
		t.Errorf("counters = %+v", c)
	}
	if c.Allowed != 2 || c.Dropped != 2 {
		t.Errorf("verdict counters = %+v", c)
	}
}

func TestMicroflowDisabled(t *testing.T) {
	s := newSwitch(t, Config{Table: flowtable.Fig1(), DisableMicroflow: true})
	s.Process(hyp(1), 0)
	if v := s.Process(hyp(1), 0); v.Path != PathMegaflow {
		t.Errorf("with UFC disabled second packet path = %v, want megaflow", v.Path)
	}
	if s.MicroflowCache() != nil {
		t.Error("MicroflowCache() should be nil when disabled")
	}
}

func TestIdleTimeoutRecovery(t *testing.T) {
	// Fig. 8a: attacker entries persist for the 10s idle timeout after
	// the attack stops, delaying victim recovery.
	s := newSwitch(t, Config{Table: flowtable.Fig1(), DisableMicroflow: true})
	s.Process(hyp(5), 100) // attacker megaflow
	s.Process(hyp(1), 100) // victim megaflow
	s.Process(hyp(1), 105) // victim keeps its entry warm
	if n := s.Tick(105); n != 0 {
		t.Errorf("premature eviction of %d entries at t=105", n)
	}
	if n := s.Tick(110); n != 1 {
		t.Errorf("evicted %d at t=110, want 1 (attacker entry, 10s idle)", n)
	}
	if got := s.MFC().EntryCount(); got != 1 {
		t.Errorf("entries = %d, want 1", got)
	}
}

func TestRevalidatorQuirk(t *testing.T) {
	// §8: once MFCGuard deletes an entry, the slow path never re-installs
	// it; matching packets are classified in the slow path forever.
	s := newSwitch(t, Config{Table: flowtable.Fig1(), DisableMicroflow: true})
	s.Process(hyp(5), 0) // installs deny megaflow 1**
	if n := s.DeleteMegaflows(func(e *tss.Entry) bool { return e.Action == flowtable.Drop }); n != 1 {
		t.Fatalf("deleted %d, want 1", n)
	}
	for i := 0; i < 3; i++ {
		if v := s.Process(hyp(5), int64(i)); v.Path != PathSlow {
			t.Fatalf("packet %d path = %v, want slowpath (quirk)", i, v.Path)
		}
	}
	if c := s.Counters(); c.Suppressed != 3 {
		t.Errorf("suppressed = %d, want 3", c.Suppressed)
	}
	// Manual re-injection clears the suppression.
	s.Reinject()
	s.Process(hyp(5), 10)
	if v := s.Process(hyp(5), 10); v.Path != PathMegaflow {
		t.Errorf("after Reinject path = %v, want megaflow", v.Path)
	}
}

func TestNoRevalidatorQuirk(t *testing.T) {
	s := newSwitch(t, Config{Table: flowtable.Fig1(), DisableMicroflow: true,
		NoRevalidatorQuirk: true})
	s.Process(hyp(5), 0)
	s.DeleteMegaflows(func(e *tss.Entry) bool { return true })
	s.Process(hyp(5), 1) // slow path, re-installs
	if v := s.Process(hyp(5), 1); v.Path != PathMegaflow {
		t.Errorf("without quirk path = %v, want megaflow (re-installed)", v.Path)
	}
}

func TestMaxMegaflows(t *testing.T) {
	s := newSwitch(t, Config{Table: flowtable.Fig1(), DisableMicroflow: true,
		MaxMegaflows: 2})
	for _, v := range []uint64{1, 5, 3, 0} {
		s.Process(hyp(v), 0)
	}
	if got := s.MFC().EntryCount(); got != 2 {
		t.Errorf("entries = %d, want 2 (limit)", got)
	}
	if c := s.Counters(); c.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", c.Rejected)
	}
}

func TestNoMatchDropsWithExactEntry(t *testing.T) {
	// A table without a catch-all: unmatched headers get an exact-match
	// drop entry (safe, no over-wide coverage).
	l := bitvec.HYP
	tbl := flowtable.New(l)
	k, m := bitvec.MustPattern(l, "001")
	tbl.MustAdd(&flowtable.Rule{Name: "#1", Priority: 1, Action: flowtable.Allow, Key: k, Mask: m})
	s := newSwitch(t, Config{Table: tbl, DisableMicroflow: true})
	v := s.Process(hyp(6), 0)
	if v.Action != flowtable.Drop || v.Rule != "<no-match>" {
		t.Errorf("verdict = %+v, want drop/<no-match>", v)
	}
	// The installed entry must be exact: it may cover only header 110.
	es := s.MFC().Entries()
	if len(es) != 1 || es[0].Mask.OnesCount() != 3 {
		t.Errorf("no-match entry not exact: %+v", es)
	}
}

// TestIPv6ExactMatchExplosion reproduces §5.4: with the IPv6 source
// address handled by exact matching, random-source attack traffic spawns
// only a handful of masks but an entry per packet (memory/CPU blow-up
// instead of lookup slow-down).
func TestIPv6ExactMatchExplosion(t *testing.T) {
	l := bitvec.IPv6Tuple
	tbl := flowtable.New(l)
	dp, _ := l.FieldIndex("tp_dst")
	key := bitvec.NewVec(l)
	key.SetField(l, dp, 80)
	tbl.MustAdd(&flowtable.Rule{Name: "#1", Priority: 10, Action: flowtable.Allow,
		Key: key, Mask: bitvec.FieldMask(l, dp)})
	sipIdx, _ := l.FieldIndex("ip6_src")
	allowSrc := bitvec.NewVec(l)
	allowSrc.SetFieldBytes(l, sipIdx, []byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	tbl.MustAdd(&flowtable.Rule{Name: "#2", Priority: 5, Action: flowtable.Allow,
		Key: allowSrc, Mask: bitvec.FieldMask(l, sipIdx)})
	tbl.MustAdd(&flowtable.Rule{Name: "#4", Priority: 0, Action: flowtable.Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})

	s := newSwitch(t, Config{Table: tbl, DisableMicroflow: true,
		Strategy: map[string]Strategy{"ip6_src": StrategyExact}})
	rng := rand.New(rand.NewSource(1))
	sip, _ := l.FieldIndex("ip6_src")
	n := 500
	for i := 0; i < n; i++ {
		h := bitvec.NewVec(l)
		addr := make([]byte, 16)
		rng.Read(addr)
		h.SetFieldBytes(l, sip, addr)
		h.SetField(l, dp, uint64(rng.Intn(65536)))
		s.Process(h, 0)
	}
	masks, entries := s.MFC().MaskCount(), s.MFC().EntryCount()
	if masks > 20 {
		t.Errorf("masks = %d, want a handful (§5.4 exact-match regime)", masks)
	}
	if entries < n*9/10 {
		t.Errorf("entries = %d, want ≈ one per packet (%d)", entries, n)
	}
}

// TestGeneratorDisjointnessRandom is the key safety property: for random
// prefix ACLs and random packet sequences the generated megaflows never
// overlap (Process panics on violation) and always agree with the table.
func TestGeneratorDisjointnessRandom(t *testing.T) {
	l := bitvec.HYP2
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		tbl := flowtable.New(l)
		nRules := 1 + rng.Intn(5)
		for i := 0; i < nRules; i++ {
			key, mask := bitvec.NewVec(l), bitvec.NewVec(l)
			for f := 0; f < l.NumFields(); f++ {
				plen := rng.Intn(l.Field(f).Width + 1)
				for b := 0; b < plen; b++ {
					mask.SetFieldBit(l, f, b)
					if rng.Intn(2) == 1 {
						key.SetFieldBit(l, f, b)
					}
				}
			}
			tbl.MustAdd(&flowtable.Rule{Name: "r", Priority: rng.Intn(4),
				Action: flowtable.Action(rng.Intn(2)), Key: key, Mask: mask})
		}
		tbl.MustAdd(&flowtable.Rule{Name: "dd", Priority: -1,
			Action: flowtable.Drop, Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})

		s := newSwitch(t, Config{Table: tbl, DisableMicroflow: true})
		for i := 0; i < 300; i++ {
			h := hyp2(uint64(rng.Intn(8)), uint64(rng.Intn(16)))
			v := s.Process(h, 0) // panics on Inv(2) violation
			if want := tbl.Lookup(h).Action; v.Action != want {
				t.Fatalf("trial %d: verdict %v, table says %v", trial, v.Action, want)
			}
		}
		// Cached-region soundness: every header covered by a cached entry
		// classifies (via the table) to the entry's action.
		for _, e := range s.MFC().Entries() {
			for a := uint64(0); a < 8; a++ {
				for b := uint64(0); b < 16; b++ {
					h := hyp2(a, b)
					if !bitvec.Covers(e.Key, e.Mask, h) {
						continue
					}
					if want := tbl.Lookup(h).Action; e.Action != want {
						t.Fatalf("trial %d: entry %s caches %v but table says %v for %03b|%04b",
							trial, bitvec.FormatMasked(l, e.Key, e.Mask), e.Action, want, a, b)
					}
				}
			}
		}
	}
}

func TestGeneratorCoverInvariant(t *testing.T) {
	// Inv(1): the generated entry always covers the sparking packet.
	gen, err := NewGenerator(flowtable.Fig4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 16; b++ {
			h := hyp2(a, b)
			e := gen.Generate(h)
			if !bitvec.Covers(e.Key, e.Mask, h) {
				t.Errorf("entry for %03b|%04b does not cover it (Inv(1))", a, b)
			}
		}
	}
}

func TestPathString(t *testing.T) {
	if PathMicroflow.String() != "microflow" || PathMegaflow.String() != "megaflow" ||
		PathSlow.String() != "slowpath" || Path(9).String() != "Path(9)" {
		t.Error("Path names wrong")
	}
	if StrategyWildcard.String() != "wildcard" || StrategyExact.String() != "exact" ||
		Strategy(9).String() != "Strategy(9)" {
		t.Error("Strategy names wrong")
	}
}
