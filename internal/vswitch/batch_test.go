// Equivalence tests for the batched datapath: ProcessBatch must produce,
// verdict for verdict and counter for counter, exactly what serial Process
// produces on the same packet sequence. The paper-figure reproductions in
// internal/experiments replay traces through whichever path the scenario
// uses, so batch/serial divergence would silently change figures.
package vswitch_test

import (
	"fmt"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/vswitch"
)

// mixedTrace builds an adversarial SipDp trace interleaved with repeated
// benign victim packets, so every cache layer (EMC hit, megaflow hit, slow
// path, and re-visits of installed flows) is exercised.
func mixedTrace(t *testing.T, tbl *flowtable.Table) []bitvec.Vec {
	t.Helper()
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	l := bitvec.IPv4Tuple
	victims := make([]bitvec.Vec, 3)
	for i := range victims {
		h := bitvec.NewVec(l)
		set := func(name string, v uint64) {
			f, _ := l.FieldIndex(name)
			h.SetField(l, f, v)
		}
		set("ip_src", 0x0a000050+uint64(i))
		set("ip_dst", 0xc0a80002)
		set("ip_proto", 6)
		set("tp_src", 44000+uint64(i))
		set("tp_dst", 80)
		victims[i] = h
	}
	var out []bitvec.Vec
	for i, h := range tr.Headers {
		out = append(out, h)
		// Interleave victims densely, repeating each so later copies hit
		// the caches the earlier copies populated.
		out = append(out, victims[i%len(victims)])
	}
	// A tail of pure re-visits: everything is cached by now.
	out = append(out, tr.Headers[:min(64, len(tr.Headers))]...)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func newPair(t *testing.T, cfg func() vswitch.Config) (*vswitch.Switch, *vswitch.Switch) {
	t.Helper()
	a, err := vswitch.New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := vswitch.New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestProcessBatchEquivalentToSerial(t *testing.T) {
	configs := map[string]func() vswitch.Config{
		"pmd-no-emc": func() vswitch.Config {
			return vswitch.Config{
				Table:            flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}),
				DisableMicroflow: true,
			}
		},
		"with-emc": func() vswitch.Config {
			return vswitch.Config{
				Table: flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}),
				// A tiny EMC keeps FIFO eviction busy during the trace.
				MicroflowCapacity: 32,
			}
		},
		"megaflow-limit": func() vswitch.Config {
			return vswitch.Config{
				Table:            flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}),
				DisableMicroflow: true,
				MaxMegaflows:     20,
			}
		},
		"hitcount-order": func() vswitch.Config {
			// OrderHitCount re-sorts between consecutive lookups, so the
			// batched path must fall back to the serial loop to keep the
			// equivalence contract.
			return vswitch.Config{
				Table:            flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}),
				DisableMicroflow: true,
				Order:            tss.OrderHitCount,
			}
		},
		"no-megaflow": func() vswitch.Config {
			return vswitch.Config{
				Table:            flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}),
				DisableMicroflow: true,
				DisableMegaflow:  true,
			}
		},
	}
	for name, cfg := range configs {
		for _, batch := range []int{1, 7, 32, 1 << 20} {
			t.Run(fmt.Sprintf("%s/batch=%d", name, batch), func(t *testing.T) {
				serial, batched := newPair(t, cfg)
				trace := mixedTrace(t, serial.FlowTable())

				want := make([]vswitch.Verdict, len(trace))
				for i, h := range trace {
					want[i] = serial.Process(h, int64(i/100))
				}
				got := make([]vswitch.Verdict, 0, len(trace))
				for start := 0; start < len(trace); start += batch {
					end := min(start+batch, len(trace))
					// now must advance identically to the serial run, so
					// align batch boundaries with the virtual clock.
					for sub := start; sub < end; {
						now := int64(sub / 100)
						subEnd := min(end, (sub/100+1)*100)
						got = append(got,
							batched.ProcessBatch(trace[sub:subEnd], now, nil)...)
						sub = subEnd
					}
				}

				for i := range trace {
					if got[i] != want[i] {
						t.Fatalf("packet %d: batch verdict %+v != serial %+v",
							i, got[i], want[i])
					}
				}
				if sc, bc := serial.Counters(), batched.Counters(); sc != bc {
					t.Errorf("counters diverge: serial %+v, batch %+v", sc, bc)
				}
				if ss, bs := serial.MFC().Stats(), batched.MFC().Stats(); ss != bs {
					t.Errorf("MFC stats diverge: serial %+v, batch %+v", ss, bs)
				}
				se, be := serial.MFC().Entries(), batched.MFC().Entries()
				if len(se) != len(be) {
					t.Fatalf("MFC entries diverge: serial %d, batch %d", len(se), len(be))
				}
				for i := range se {
					if !se[i].Key.Equal(be[i].Key) || !se[i].Mask.Equal(be[i].Mask) ||
						se[i].Action != be[i].Action || se[i].RuleName != be[i].RuleName ||
						se[i].Hits != be[i].Hits {
						t.Fatalf("MFC entry %d diverges: serial %+v, batch %+v",
							i, se[i], be[i])
					}
				}
			})
		}
	}
}

// TestProcessBatchQuirkSuppression checks the batched path honours the
// revalidator quirk exactly like the serial path: after MFCGuard-style
// deletion, neither path ever re-installs, and suppression counters agree.
func TestProcessBatchQuirkSuppression(t *testing.T) {
	cfg := func() vswitch.Config {
		return vswitch.Config{Table: flowtable.Fig6(), DisableMicroflow: true}
	}
	serial, batched := newPair(t, cfg)
	trace := mixedTrace(t, serial.FlowTable())
	warm, rest := trace[:len(trace)/2], trace[len(trace)/2:]
	if len(rest) > 200 {
		rest = rest[:200] // post-quirk packets are all slow-path: keep -race fast
	}

	for _, h := range warm {
		serial.Process(h, 0)
	}
	batched.ProcessBatch(warm, 0, nil)
	serial.DeleteMegaflows(func(*tss.Entry) bool { return true })
	batched.DeleteMegaflows(func(*tss.Entry) bool { return true })

	for i, h := range rest {
		want := serial.Process(h, 1)
		got := batched.ProcessBatch(rest[i:i+1], 1, nil)[0]
		if got != want {
			t.Fatalf("post-quirk packet %d: batch %+v != serial %+v", i, got, want)
		}
	}
	sc, bc := serial.Counters(), batched.Counters()
	if sc != bc {
		t.Errorf("counters diverge after quirk: serial %+v, batch %+v", sc, bc)
	}
	if sc.Suppressed == 0 {
		t.Error("quirk never suppressed an install; test exercises nothing")
	}
}
