package cluster

import (
	"math"

	"tse/internal/telemetry"
)

// pushState tracks the controller's delivery attempt for one node within
// the current generation.
type pushState struct {
	// nextTry is the earliest tick the controller offers the node the
	// target generation (stagger, then retry backoff).
	nextTry int64
	// attempt counts failed deliveries of the current generation.
	attempt int
}

// controller is the fabric's fault-tolerant control plane: it owns the
// target ACL generation, pushes it to every node with staggered delivery,
// retries failed pushes with exponential backoff, and tracks when the
// fleet converges on a generation.
//
// The failure containment contract: a push that cannot reach a node (the
// node is partitioned, or the push itself errors) affects that node only —
// the node keeps forwarding on its last-applied generation and the fabric
// reports the staleness gap; every other node converges on schedule.
type controller struct {
	f *Fabric
	// target is the generation every node should be serving; churned is
	// the table-variant parity of that generation.
	target  uint64
	churned bool
	churnAt int64
	push    []pushState
	// converged flips when every non-dead node reaches target;
	// generations superseded before converging simply never do.
	converged      bool
	everConverged  bool
	maxConvergeSec int64
}

// churn starts a new generation: bump the target, flip the table-variant
// parity, and schedule each node's first push StaggerSec apart so the
// fleet's revalidators never invalidate every megaflow cache in the same
// tick.
func (c *controller) churn(now int64) {
	c.target++
	c.churned = !c.churned
	c.churnAt = now
	c.converged = false
	stagger := c.f.cfg.StaggerSec
	if stagger < 0 {
		stagger = 0
	}
	for i := range c.push {
		c.push[i] = pushState{nextTry: now + int64(i)*stagger}
	}
}

// tick performs due pushes and convergence accounting for one virtual
// second. The controller always pushes the *latest* generation: a node
// that was unreachable across several churns jumps straight to the head.
func (c *controller) tick(now int64) {
	if c.target == 0 {
		return
	}
	for i, n := range c.f.nodes {
		if !n.alive || n.appliedGen == c.target {
			continue
		}
		ps := &c.push[i]
		if now < ps.nextTry {
			continue
		}
		// A partitioned node is unreachable; an ACL push error fails the
		// delivery even on a healthy link. Either way: journal, back off,
		// retry — unless the retry ablation is on, in which case the node
		// stays stale until the next generation reschedules it.
		if c.f.cfg.FleetFaults.NodePartitionedAt(i, now) || c.f.cfg.FleetFaults.ACLPushErrorAt(i, now) {
			ps.attempt++
			c.f.journal.Record(now, telemetry.EvACLPushRetry, i, int64(ps.attempt))
			if c.f.cfg.DisableRetry {
				ps.nextTry = math.MaxInt64
				continue
			}
			backoff := c.f.cfg.PushBackoffSec << (ps.attempt - 1)
			if backoff > c.f.cfg.MaxBackoffSec || backoff <= 0 {
				backoff = c.f.cfg.MaxBackoffSec
			}
			ps.nextTry = now + backoff
			continue
		}
		if err := n.applyGen(c.target, c.churned); err != nil {
			c.f.err = err
			return
		}
		ps.attempt = 0
		c.f.journal.Record(now, telemetry.EvACLPush, i, int64(c.target))
	}
	if !c.converged {
		all := true
		for _, n := range c.f.nodes {
			if n.alive && n.appliedGen != c.target {
				all = false
				break
			}
		}
		if all {
			c.converged = true
			c.everConverged = true
			if d := now - c.churnAt; d > c.maxConvergeSec {
				c.maxConvergeSec = d
			}
			// Fleet-wide event: actor -1 (no single node).
			c.f.journal.Record(now, telemetry.EvACLConverged, -1, int64(c.target))
		}
	}
}
