// Package cluster scales the single-hypervisor model out to the fleet the
// paper's §3 threat model actually describes: N hypervisor nodes — each a
// cloud.Hypervisor with its own PMD pool, upcall subsystem, revalidator
// and telemetry registry — under one fabric-wide control plane. A tenant
// Scheduler places workloads (attackers included) across the nodes, and a
// Controller pushes ACL generations fabric-wide with staggered delivery,
// per-node retry/backoff, and generation-tagged convergence tracking.
//
// The robustness story is the point. A tick-driven heartbeat failure
// detector suspects and then declares nodes dead; node-level fault
// injection (faults.NodeCrash / NodePartition / ACLPushError plus per-node
// single-box plans) drives it; a partitioned node degrades gracefully —
// its dataplane keeps forwarding on the last-applied ACL generation and
// the fabric reports the staleness gap instead of stalling — and a dead
// node's tenants fail over to the least-loaded survivors with admission
// re-warmup, so a re-placed tenant cannot instantly flood its new node's
// slow path. Everything is tick-stepped and goroutine-free, so fleet chaos
// runs replay bit-for-bit.
package cluster

import (
	"fmt"
	"math"
	"sync"

	"tse/internal/bitvec"
	"tse/internal/cloud"
	"tse/internal/datapath"
	"tse/internal/dataplane"
	"tse/internal/faults"
	"tse/internal/flowtable"
	"tse/internal/telemetry"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// Workload is one tenant the scheduler places on the fleet: a benign
// service offering load, or a co-located TSE attacker flooding its own
// address with megaflow-spawning headers.
type Workload struct {
	// Name identifies the tenant fabric-wide.
	Name string
	// IP is the workload address; the hosting hypervisor scopes the ACL
	// to it.
	IP uint32
	// ACL is the tenant's CMS-validated ingress policy.
	ACL *flowtable.Table
	// OfferedGbps is the benign offered load (0 for pure attackers).
	OfferedGbps float64
	// StartSec is the virtual second the benign flow begins.
	StartSec int
	// Attacker marks a TSE attacker: it replays bit-inversion headers
	// destined to its own IP at RatePps during
	// [AttackStartSec, AttackStopSec).
	Attacker                      bool
	RatePps                       int
	AttackStartSec, AttackStopSec int
	// PinNode pins placement to a node ID; negative lets the scheduler
	// pick the least-loaded node.
	PinNode int
}

// HealthState is the failure detector's view of a node.
type HealthState int

const (
	// Healthy: heartbeats arriving.
	Healthy HealthState = iota
	// Suspected: SuspectAfter consecutive heartbeats missed; no failover
	// yet — a short partition heals from here.
	Suspected
	// Dead: DeadAfter consecutive heartbeats missed; the node is fenced
	// and its tenants fail over. Terminal.
	Dead
)

// String names the state for tables.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspected:
		return "suspected"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// Config wires a fleet.
type Config struct {
	// Nodes is the fleet size; WorkersPerNode the PMD pool width of each
	// node (<= 0 selects 1).
	Nodes, WorkersPerNode int
	// CMS is the management-system profile every node enforces.
	CMS cloud.CMS
	// NIC selects the cost profile; BudgetPerCore overrides the
	// calibrated per-core CPU budget when > 0.
	NIC           dataplane.NICProfile
	BudgetPerCore float64
	// Workloads are placed in order at construction.
	Workloads []*Workload
	// DurationSec is the experiment length.
	DurationSec int

	// Per-node upcall knobs (dataplane.UpcallParams semantics).
	QueueCap, QuotaPerPort, HandledPerSec, ModelledHandlers int
	StallTimeoutSec                                         int64
	DisableSupervisor                                       bool
	PendingAgeSec                                           int64
	RevalidateSec                                           int64

	// ChurnEverySec > 0 makes the controller bump the ACL generation
	// every ChurnEverySec seconds from ChurnStartSec on, alternating a
	// semantically neutral table variant — the fabric-wide policy-churn
	// load.
	ChurnStartSec, ChurnEverySec int
	// StaggerSec staggers each generation's push: node i is offered the
	// new generation at churn + i*StaggerSec, so the fleet's revalidators
	// never invalidate every cache in the same tick (<= 0 pushes all
	// nodes at once).
	StaggerSec int64
	// PushBackoffSec is the base retry backoff after a failed push; it
	// doubles per attempt up to MaxBackoffSec (defaults 2 and 8).
	// DisableRetry is the ablation: one failed push leaves the node
	// stale until the next generation.
	PushBackoffSec, MaxBackoffSec int64
	DisableRetry                  bool

	// SuspectAfter / DeadAfter are the failure detector thresholds in
	// missed heartbeats (defaults 2 and 5). DisableFailover is the
	// ablation: a dead node's tenants stay dark. RewarmStartQuota is the
	// admission quota a failed-over tenant's vport starts at, doubling
	// each tick back to QuotaPerPort (default 4).
	SuspectAfter, DeadAfter int
	DisableFailover         bool
	RewarmStartQuota        int

	// FleetFaults carries the node-level fault kinds, queried by node ID.
	// NodeFaults optionally carries one single-box plan per node
	// (handler panics, revalidator stalls, install errors), threaded into
	// that node's own subsystem — a shared plan would wedge every node at
	// once, since the single-box kinds have no node scoping.
	FleetFaults *faults.Plan
	NodeFaults  []*faults.Plan

	// Journal receives the fleet's control-plane events (heartbeat
	// transitions, failovers, pushes, convergence, fault injections).
	// Per-node subsystems keep their events in their own registries so
	// node-local actor indices never collide in the fleet timeline.
	Journal *telemetry.Journal
}

// NodeSample is one node's per-tick observation.
type NodeSample struct {
	Alive       bool
	State       HealthState
	Partitioned bool
	// AppliedGen is the ACL generation the node serves on; StaleGens the
	// gap to the controller's target (the graceful-degradation signal).
	AppliedGen, StaleGens uint64
	// Masks and Entries snapshot this node's own MFC.
	Masks, Entries int
	// Backlog and PendingFlows are the node's upcall queue depth and
	// pending-table size at end of tick (a PendingFlows that stays
	// elevated is the leak signature).
	Backlog, PendingFlows int
	// Handled, Enqueued, QuotaDrops, QueueDrops are this tick's upcall
	// outcomes; SweepStalls this tick's injected revalidator wedges.
	Handled, Enqueued, QuotaDrops, QueueDrops, SweepStalls int
}

// FleetSample is one per-tick observation of the whole fleet.
type FleetSample struct {
	Sec       int
	TargetGen uint64
	// TenantGbps and TenantNode are aligned with Config.Workloads:
	// the workload's achieved throughput and the node serving it
	// (-1 while dark on a dead node).
	TenantGbps []float64
	TenantNode []int
	Nodes      []NodeSample
}

// placement is one workload living on one node.
type placement struct {
	idx    int // index into Config.Workloads
	w      *Workload
	port   int        // node-local ingress vport
	header bitvec.Vec // benign probe flow (victims)
	trace  []bitvec.Vec
	cursor int
	rewarm int // pending re-warmup quota; 0 = full admission
}

// Node is one hypervisor of the fleet: shared switch, PMD pool, upcall
// subsystem, revalidator, and its own metrics registry.
type Node struct {
	id   int
	hv   *cloud.Hypervisor
	sw   *vswitch.Switch
	pool *datapath.Pool
	sub  *upcall.Subsystem
	rv   *upcall.Revalidator
	reg  *telemetry.Registry

	alive bool
	// base is the pure hypervisor-compiled tenant table captured after
	// the last AddTenant; generation pushes layer the churn variant on
	// top of it, and a failover AddTenant (which resets the switch to the
	// fresh compile) re-applies the in-force variant from it.
	base         *flowtable.Table
	appliedGen   uint64
	churnApplied bool
	staleSeen    uint64 // widest staleness gap already journaled

	placements []*placement
	nextPort   int
	prevStats  upcall.Stats
	prevRv     upcall.RevalidatorStats

	// scratch buffers reused across ticks
	batch    []bitvec.Vec
	ports    []int
	verdicts []vswitch.Verdict
}

// Fabric is the N-node fleet plus its control plane. All exported methods
// are safe for concurrent use; Step drives everything single-threaded
// under the fabric lock, so runs are deterministic.
type Fabric struct {
	mu      sync.Mutex
	cfg     Config
	perCore float64
	nodes   []*Node
	health  []HealthState
	missed  []int
	deadAt  []int64
	ctrl    *controller
	journal *telemetry.Journal
	samples []FleetSample
	err     error
}

// New builds the fleet and places every workload.
func New(cfg Config) (*Fabric, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need >= 1 node, got %d", cfg.Nodes)
	}
	if cfg.DurationSec <= 0 {
		return nil, fmt.Errorf("cluster: need a positive duration")
	}
	if cfg.NodeFaults != nil && len(cfg.NodeFaults) != cfg.Nodes {
		return nil, fmt.Errorf("cluster: NodeFaults has %d plans for %d nodes",
			len(cfg.NodeFaults), cfg.Nodes)
	}
	if cfg.WorkersPerNode <= 0 {
		cfg.WorkersPerNode = 1
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter + 3
	}
	if cfg.RewarmStartQuota <= 0 {
		cfg.RewarmStartQuota = 4
	}
	if cfg.PushBackoffSec <= 0 {
		cfg.PushBackoffSec = 2
	}
	if cfg.MaxBackoffSec <= 0 {
		cfg.MaxBackoffSec = 8
	}
	if cfg.RevalidateSec <= 0 {
		cfg.RevalidateSec = 1
	}
	if err := cfg.NIC.Validate(); err != nil {
		return nil, err
	}
	perCore := dataplane.NewModel(cfg.NIC).Budget()
	if cfg.BudgetPerCore > 0 {
		perCore = cfg.BudgetPerCore
	}
	f := &Fabric{
		cfg:     cfg,
		perCore: perCore,
		health:  make([]HealthState, cfg.Nodes),
		missed:  make([]int, cfg.Nodes),
		deadAt:  make([]int64, cfg.Nodes),
		journal: cfg.Journal,
	}
	for i := range f.deadAt {
		f.deadAt[i] = -1
	}
	for i := 0; i < cfg.Nodes; i++ {
		n, err := f.newNode(i)
		if err != nil {
			return nil, err
		}
		f.nodes = append(f.nodes, n)
	}
	f.ctrl = &controller{f: f, push: make([]pushState, cfg.Nodes)}
	for idx, w := range cfg.Workloads {
		n, err := f.placeTarget(w)
		if err != nil {
			return nil, err
		}
		if err := n.place(w, idx, false, &cfg); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// newNode assembles one hypervisor node. Every node gets vport headroom
// for the entire workload set, so failover never runs out of ports.
func (f *Fabric) newNode(id int) (*Node, error) {
	hv, err := cloud.NewHypervisor(f.cfg.CMS)
	if err != nil {
		return nil, err
	}
	var nodeFaults *faults.Plan
	if f.cfg.NodeFaults != nil {
		nodeFaults = f.cfg.NodeFaults[id]
	}
	reg := telemetry.NewRegistry(1)
	sw := hv.Switch()
	sw.AttachMetrics(reg)
	pool, err := datapath.New(datapath.Config{
		Switch:  sw,
		Workers: f.cfg.WorkersPerNode,
		Ports:   len(f.cfg.Workloads) + 1,
		Metrics: reg,
		Upcall: &upcall.Options{
			QueueCap:          f.cfg.QueueCap,
			QuotaPerSource:    f.cfg.QuotaPerPort,
			ModelledHandlers:  f.cfg.ModelledHandlers,
			StallTimeoutSec:   f.cfg.StallTimeoutSec,
			DisableSupervisor: f.cfg.DisableSupervisor,
			Injector:          nodeFaults,
			Metrics:           reg,
		},
		DisableEMC: true,
	})
	if err != nil {
		return nil, err
	}
	if nodeFaults != nil {
		sw.SetInstallFault(nodeFaults.InstallErrorAt)
	}
	sub := pool.Upcalls()
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{
		Switch:        sw,
		IntervalSec:   f.cfg.RevalidateSec,
		Subsystem:     sub,
		PendingAgeSec: f.cfg.PendingAgeSec,
		Injector:      nodeFaults,
		Metrics:       reg,
	})
	if err != nil {
		return nil, err
	}
	return &Node{
		id: id, hv: hv, sw: sw, pool: pool, sub: sub, rv: rv, reg: reg,
		alive: true, base: sw.FlowTable(),
	}, nil
}

// placeTarget is the scheduler: the pinned node, or the least-loaded
// alive node (ties to the lowest ID, so placement is deterministic).
func (f *Fabric) placeTarget(w *Workload) (*Node, error) {
	if w.PinNode >= 0 {
		if w.PinNode >= len(f.nodes) {
			return nil, fmt.Errorf("cluster: workload %q pinned to node %d of %d",
				w.Name, w.PinNode, len(f.nodes))
		}
		n := f.nodes[w.PinNode]
		if !n.alive {
			return nil, fmt.Errorf("cluster: workload %q pinned to dead node %d", w.Name, w.PinNode)
		}
		return n, nil
	}
	var best *Node
	for _, n := range f.nodes {
		if !n.alive {
			continue
		}
		if best == nil || len(n.placements) < len(best.placements) {
			best = n
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cluster: no alive node to place %q", w.Name)
	}
	return best, nil
}

// place installs the workload as a tenant on the node. AddTenant resets
// the shared table to the fresh compile, so the node re-applies whatever
// generation variant was in force; rewarm starts the vport's admission
// quota at RewarmStartQuota instead of the full budget.
func (n *Node) place(w *Workload, idx int, rewarm bool, cfg *Config) error {
	if err := n.hv.AddTenant(&cloud.Tenant{Name: w.Name, IP: w.IP, ACL: w.ACL}); err != nil {
		return fmt.Errorf("cluster: placing %q on node %d: %w", w.Name, n.id, err)
	}
	n.base = n.sw.FlowTable()
	if n.churnApplied {
		if err := n.sw.SwapTable(churnVariant(n.base)); err != nil {
			return err
		}
	}
	l := n.sw.Layout()
	pl := &placement{idx: idx, w: w, port: n.nextPort}
	n.nextPort++
	if w.Attacker {
		pl.trace = attackTrace(l, w.IP)
	} else {
		pl.header = flowHeader(l, 0x08080800+uint32(idx), w.IP, uint64(40000+idx), 80)
	}
	if rewarm && cfg.QuotaPerPort > 0 {
		pl.rewarm = cfg.RewarmStartQuota
		n.sub.SetQuota(pl.port, pl.rewarm)
	}
	n.placements = append(n.placements, pl)
	return nil
}

// applyGen swaps the node's table to the generation's variant. The swap is
// asynchronous (vswitch.SwapTable): the node's own revalidator invalidates
// stale megaflows at its next sweep, which together with the controller's
// push stagger spreads revalidation load across the fleet.
func (n *Node) applyGen(gen uint64, churned bool) error {
	tbl := n.base
	if churned {
		tbl = churnVariant(n.base)
	}
	if err := n.sw.SwapTable(tbl); err != nil {
		return err
	}
	n.appliedGen = gen
	n.churnApplied = churned
	return nil
}

// churnVariant clones the compiled table and prepends a semantically
// neutral top-priority allow rule for an unused transport source port:
// invisible to every flow, but it changes each walk's generated megaflow,
// so the next revalidator sweep invalidates the whole cache — the
// fabric-wide policy-churn event.
func churnVariant(base *flowtable.Table) *flowtable.Table {
	l := base.Layout()
	t := flowtable.New(l)
	for _, r := range base.Rules() {
		rc := *r
		t.MustAdd(&rc)
	}
	sp, _ := l.FieldIndex("tp_src")
	key := bitvec.NewVec(l)
	key.SetField(l, sp, 55555)
	t.MustAdd(&flowtable.Rule{Name: "#churn", Priority: 1 << 20, Action: flowtable.Allow,
		Key: key, Mask: bitvec.FieldMask(l, sp)})
	return t
}

// flowHeader builds a benign 5-tuple destined to a tenant workload.
func flowHeader(l *bitvec.Layout, src, dst uint32, sp, dp uint64) bitvec.Vec {
	h := bitvec.NewVec(l)
	set := func(name string, v uint64) {
		i, _ := l.FieldIndex(name)
		h.SetField(l, i, v)
	}
	set("ip_src", uint64(src))
	set("ip_dst", uint64(dst))
	set("ip_proto", 6)
	set("tp_src", sp)
	set("tp_dst", dp)
	return h
}

// attackTrace hand-builds the co-located TSE flood: bit-inversion headers
// destined to the attacker's own address, flipping one bit of ip_src,
// tp_src and tp_dst per packet (the §5.2 adversarial walk). The
// trie-guided generator (core.CoLocated) needs single-field exact-match
// allow rules and cannot chew on hypervisor-compiled multi-field tables,
// so the fleet attacker carries its own trace.
func attackTrace(l *bitvec.Layout, ip uint32) []bitvec.Vec {
	sip, _ := l.FieldIndex("ip_src")
	sp, _ := l.FieldIndex("tp_src")
	dp, _ := l.FieldIndex("tp_dst")
	base := flowHeader(l, 0x0a000001, ip, 12345, 80)
	out := make([]bitvec.Vec, 0, 33*17*17)
	for b := 0; b <= 32; b++ {
		for s := 0; s <= 16; s++ {
			for d := 0; d <= 16; d++ {
				pkt := base.Clone()
				if b > 0 {
					pkt.FlipFieldBit(l, sip, b-1)
				}
				if s > 0 {
					pkt.FlipFieldBit(l, sp, s-1)
				}
				if d > 0 {
					pkt.FlipFieldBit(l, dp, d-1)
				}
				out = append(out, pkt)
			}
		}
	}
	return out
}

// Run steps the fabric through the configured duration.
func (f *Fabric) Run() ([]FleetSample, error) {
	for t := 0; t < f.cfg.DurationSec; t++ {
		f.Step(int64(t))
		f.mu.Lock()
		err := f.err
		f.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return f.Samples(), nil
}

// Step advances the whole fleet one virtual second: fault injections,
// crash consumption, heartbeats (with failover), the controller's churn
// and push work, then every node's dataplane tick.
func (f *Fabric) Step(now int64) FleetSample {
	f.mu.Lock()
	defer f.mu.Unlock()

	// Journal scheduled fault injections before anything fires, so the
	// fleet timeline shows cause strictly before effect.
	for _, ev := range f.cfg.FleetFaults.ScheduledAt(now) {
		f.journal.RecordNote(now, telemetry.EvFaultInjected, ev.Node, ev.Duration,
			fmt.Sprintf("%s node=%d", ev.Kind, ev.Node))
	}
	for id, p := range f.cfg.NodeFaults {
		for _, ev := range p.ScheduledAt(now) {
			f.journal.RecordNote(now, telemetry.EvFaultInjected, id, ev.Duration,
				fmt.Sprintf("%s node=%d", ev.Kind, id))
		}
	}

	// Node crashes: the dataplane dies instantly; the failure detector
	// only learns of it through missed heartbeats.
	for _, n := range f.nodes {
		if n.alive && f.cfg.FleetFaults.NodeCrashAt(n.id, now) {
			n.alive = false
		}
	}

	f.heartbeat(now)

	if f.cfg.ChurnEverySec > 0 && now >= int64(f.cfg.ChurnStartSec) &&
		(now-int64(f.cfg.ChurnStartSec))%int64(f.cfg.ChurnEverySec) == 0 {
		f.ctrl.churn(now)
	}
	f.ctrl.tick(now)

	sample := FleetSample{
		Sec:        int(now),
		TargetGen:  f.ctrl.target,
		TenantGbps: make([]float64, len(f.cfg.Workloads)),
		TenantNode: make([]int, len(f.cfg.Workloads)),
		Nodes:      make([]NodeSample, len(f.nodes)),
	}
	for i := range sample.TenantNode {
		sample.TenantNode[i] = -1
	}
	for _, n := range f.nodes {
		ns := n.step(now, f, sample.TenantGbps, sample.TenantNode)
		ns.State = f.health[n.id]
		ns.Partitioned = n.alive && f.cfg.FleetFaults.NodePartitionedAt(n.id, now)
		if n.alive {
			ns.StaleGens = f.ctrl.target - n.appliedGen
			// Graceful degradation is reported, not silent: journal each
			// widening of a node's staleness gap exactly once.
			if ns.StaleGens > n.staleSeen {
				n.staleSeen = ns.StaleGens
				f.journal.Record(now, telemetry.EvNodeStale, n.id, int64(ns.StaleGens))
			} else if ns.StaleGens == 0 {
				n.staleSeen = 0
			}
		}
		sample.Nodes[n.id] = ns
	}
	f.samples = append(f.samples, sample)
	return sample
}

// heartbeat advances the failure detector one tick. A crashed or
// partitioned node misses its heartbeat; SuspectAfter misses suspect it,
// DeadAfter misses declare it dead — at which point it is fenced (a
// partition that long is indistinguishable from a crash, and fencing
// prevents split-brain service after failover) and its tenants re-placed.
func (f *Fabric) heartbeat(now int64) {
	for _, n := range f.nodes {
		id := n.id
		if f.health[id] == Dead {
			continue
		}
		reachable := n.alive && !f.cfg.FleetFaults.NodePartitionedAt(id, now)
		if reachable {
			if f.health[id] == Suspected {
				f.journal.Record(now, telemetry.EvNodeRejoin, id, int64(f.ctrl.target-n.appliedGen))
				f.health[id] = Healthy
			}
			f.missed[id] = 0
			continue
		}
		f.missed[id]++
		switch {
		case f.missed[id] >= f.cfg.DeadAfter:
			f.health[id] = Dead
			f.deadAt[id] = now
			n.alive = false // fence
			f.journal.Record(now, telemetry.EvNodeDead, id, int64(f.missed[id]))
			if !f.cfg.DisableFailover {
				f.failover(n, now)
			}
		case f.missed[id] >= f.cfg.SuspectAfter && f.health[id] == Healthy:
			f.health[id] = Suspected
			f.journal.Record(now, telemetry.EvNodeSuspect, id, int64(f.missed[id]))
		}
	}
}

// failover re-places a dead node's tenants, in placement order, on the
// least-loaded survivors. Each re-placed vport starts with the re-warmup
// admission quota so a failed-over tenant (or attacker) cannot instantly
// claim a full slow-path budget on its new node.
func (f *Fabric) failover(dead *Node, now int64) {
	moving := dead.placements
	dead.placements = nil
	for _, pl := range moving {
		target, err := f.placeTarget(pl.w)
		if err != nil {
			f.err = err
			return
		}
		if err := target.place(pl.w, pl.idx, true, &f.cfg); err != nil {
			f.err = err
			return
		}
		f.journal.RecordNote(now, telemetry.EvTenantFailover, target.id, 0,
			fmt.Sprintf("%s from node %d", pl.w.Name, dead.id))
	}
}

// step runs one virtual second of the node's dataplane: revalidator tick,
// the co-located flood (half before and half after the victims' probes,
// the same mid-second interleaving as the dataplane runners), the handler
// drain, admission re-warmup, and the per-worker budget waterfill.
func (n *Node) step(now int64, f *Fabric, tenantGbps []float64, tenantNode []int) NodeSample {
	ns := NodeSample{Alive: n.alive, AppliedGen: n.appliedGen}
	if !n.alive {
		return ns
	}
	for _, pl := range n.placements {
		tenantNode[pl.idx] = n.id
	}
	t := int(now)
	n.rv.Tick(now)
	nw := n.pool.Workers()
	workerAttack := make([]float64, nw)

	replay := func(pl *placement, k int) {
		if k <= 0 || len(pl.trace) == 0 {
			return
		}
		n.batch, n.ports = n.batch[:0], n.ports[:0]
		for i := 0; i < k; i++ {
			n.batch = append(n.batch, pl.trace[pl.cursor%len(pl.trace)])
			n.ports = append(n.ports, pl.port)
			pl.cursor++
		}
		n.verdicts = n.pool.ProcessBatchDeferredPorts(n.ports, n.batch, now, n.verdicts)
		assign := n.pool.Assignments()
		for i, v := range n.verdicts[:len(n.batch)] {
			workerAttack[assign[i]] += dataplane.VerdictCost(v, f.cfg.NIC)
		}
	}
	attacking := func(pl *placement) bool {
		return pl.w.Attacker && t >= pl.w.AttackStartSec && t < pl.w.AttackStopSec
	}

	for _, pl := range n.placements {
		if attacking(pl) {
			replay(pl, pl.w.RatePps/2)
		}
	}

	// Victims probe mid-flood.
	offered := make([]float64, len(n.placements))
	costs := make([]float64, len(n.placements))
	workerOf := make([]int, len(n.placements))
	n.batch, n.ports = n.batch[:0], n.ports[:0]
	var probing []int
	for j, pl := range n.placements {
		workerOf[j] = n.pool.PortWorker(pl.port)
		if pl.w.Attacker || t < pl.w.StartSec || pl.w.OfferedGbps <= 0 {
			continue
		}
		n.batch = append(n.batch, pl.header)
		n.ports = append(n.ports, pl.port)
		probing = append(probing, j)
		offered[j] = pl.w.OfferedGbps * 1e9 / 8 / dataplane.PacketBytes
	}
	n.verdicts = n.pool.ProcessBatchDeferredPorts(n.ports, n.batch, now, n.verdicts)
	for k, j := range probing {
		costs[j] = dataplane.VictimCost(n.verdicts[k], f.cfg.NIC)
		if n.verdicts[k].Path == vswitch.PathUpcallDrop {
			// Setup packet refused at admission: the flow moves nothing
			// this second.
			offered[j] = 0
		}
	}

	for _, pl := range n.placements {
		if attacking(pl) {
			replay(pl, pl.w.RatePps-pl.w.RatePps/2)
		}
	}

	budget := f.cfg.HandledPerSec
	if budget <= 0 {
		budget = math.MaxInt
	}
	handled := n.sub.HandleNAt(budget, now)
	n.sub.TickBreakers(now)

	// Admission re-warmup: each tick a re-placed vport's quota doubles
	// until it reaches the configured budget, then the override clears.
	for _, pl := range n.placements {
		if pl.rewarm <= 0 {
			continue
		}
		pl.rewarm *= 2
		if pl.rewarm >= f.cfg.QuotaPerPort {
			pl.rewarm = 0
			n.sub.SetQuota(pl.port, -1)
		} else {
			n.sub.SetQuota(pl.port, pl.rewarm)
		}
	}

	pps := dataplane.WaterfillWorkers(nw, workerOf, offered, costs, workerAttack,
		f.perCore, f.cfg.NIC.LinePps())
	for j, pl := range n.placements {
		tenantGbps[pl.idx] = pps[j] * dataplane.PacketBytes * 8 / 1e9
	}

	st := n.sub.Stats()
	rvStats := n.rv.Stats()
	ns.Masks = n.sw.MFC().MaskCount()
	ns.Entries = n.sw.MFC().EntryCount()
	ns.Backlog = st.Backlog
	ns.PendingFlows = st.PendingFlows
	ns.Handled = handled
	ns.Enqueued = int(st.Enqueued - n.prevStats.Enqueued)
	ns.QuotaDrops = int(st.QuotaDrops - n.prevStats.QuotaDrops)
	ns.QueueDrops = int(st.QueueDrops - n.prevStats.QueueDrops)
	ns.SweepStalls = int(rvStats.SweepStalls - n.prevRv.SweepStalls)
	n.prevStats, n.prevRv = st, rvStats
	return ns
}

// Samples returns a copy of the per-tick fleet series so far.
func (f *Fabric) Samples() []FleetSample {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FleetSample(nil), f.samples...)
}

// NodeStates returns the failure detector's current view of every node.
func (f *Fabric) NodeStates() []HealthState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]HealthState(nil), f.health...)
}

// DeadAt returns the tick each node was declared dead at (-1 if alive).
func (f *Fabric) DeadAt() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int64(nil), f.deadAt...)
}

// TargetGen returns the controller's current ACL generation.
func (f *Fabric) TargetGen() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ctrl.target
}

// MaxConvergeSec returns the longest churn-to-convergence duration of any
// generation that did converge, or -1 if none has yet.
func (f *Fabric) MaxConvergeSec() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.ctrl.everConverged {
		return -1
	}
	return f.ctrl.maxConvergeSec
}

// Err reports the first internal error (placement or table swap failure).
func (f *Fabric) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
