package cluster

import (
	"fmt"
	"sync"
	"testing"

	"tse/internal/telemetry"
)

// eventSig flattens a journal into a comparable signature.
func eventSig(evs []telemetry.Event) string {
	s := ""
	for _, e := range evs {
		s += fmt.Sprintf("%d|%d|%d|%d|%s\n", e.Tick, e.Kind, e.Actor, e.Value, e.Note)
	}
	return s
}

func runMode(t *testing.T, mode FleetMode) (*Fabric, *FleetChaosResult, []telemetry.Event) {
	t.Helper()
	j := telemetry.NewJournal(4096)
	f, res, err := RunFleetChaos(mode, j)
	if err != nil {
		t.Fatal(err)
	}
	return f, res, j.Events()
}

// TestFleetChaosBlastRadius is the capstone containment assertion: a node
// killed and a node partitioned at attack peak, with the full robustness
// stack, degrade nothing beyond the attacker's own node — and the
// unsupervised ablation shows what that stack buys.
func TestFleetChaosBlastRadius(t *testing.T) {
	_, sup, supEvs := runMode(t, FleetSupervised)
	_, sup2, supEvs2 := runMode(t, FleetSupervised)
	_, unsup, _ := runMode(t, FleetUnsupervised)
	_, free, _ := runMode(t, FleetFaultFree)

	// Determinism: the fleet is tick-stepped and goroutine-free, so two
	// runs produce bit-identical event streams and throughput series.
	if eventSig(supEvs) != eventSig(supEvs2) {
		t.Fatal("supervised reruns emit different event streams")
	}
	for i, s := range sup.Samples {
		for j, g := range s.TenantGbps {
			if g != sup2.Samples[i].TenantGbps[j] {
				t.Fatalf("t=%d tenant %d: %v != %v across reruns", s.Sec, j, g, sup2.Samples[i].TenantGbps[j])
			}
		}
	}

	// The detector declares the t=23 crash dead after DeadAfter missed
	// heartbeats (the crash tick is the first miss).
	if sup.DeathSec != FleetCrashSec+4 {
		t.Fatalf("supervised death at t=%d, want %d", sup.DeathSec, FleetCrashSec+4)
	}

	// Containment: only the attacker's co-located victims degrade — the
	// TSE tax itself, present in the fault-free baseline too. The crash,
	// partition, push errors, revalidator stall and handler panic add no
	// victims with the robustness stack on.
	if sup.BlastRadiusFrac != free.BlastRadiusFrac {
		t.Errorf("supervised blast radius %.3f != fault-free baseline %.3f; faults leaked past containment",
			sup.BlastRadiusFrac, free.BlastRadiusFrac)
	}
	if sup.BlastRadiusFrac != 0.25 {
		t.Errorf("supervised blast radius %.3f, want 0.25 (the 2 co-located victims of 8)", sup.BlastRadiusFrac)
	}
	// Victims on surviving non-attacker nodes retain full pre-fault
	// throughput through the fault window.
	for i, w := range supConfig(t).Workloads {
		if w.Attacker || sup.Degraded[i] {
			continue
		}
		if sup.FaultWin[i] < 0.9*sup.PreFault[i] {
			t.Errorf("victim %d on a surviving node fell to %.3f of %.3f", i, sup.FaultWin[i], sup.PreFault[i])
		}
	}

	// Failover: the dead node's tenants are dark only for the detection
	// gap, then serve at full rate from their new homes within the run.
	if sup.FailoverSec != 4 {
		t.Errorf("supervised failover gap %d sec, want 4 (DeadAfter-1)", sup.FailoverSec)
	}
	movers := 0
	for _, e := range supEvs {
		if e.Kind == telemetry.EvTenantFailover {
			movers++
		}
	}
	if movers != 2 {
		t.Errorf("%d tenant failovers journaled, want 2 (the dead node hosted 2 victims)", movers)
	}
	// Fleet convergence kept working through the fault burst.
	if sup.ACLConvergenceSec < 1 {
		t.Errorf("supervised ACL convergence %d, want >= 1", sup.ACLConvergenceSec)
	}
	// No pending-table leaks anywhere once the attack ends.
	final := sup.Samples[len(sup.Samples)-1]
	for id, ns := range final.Nodes {
		if ns.Alive && ns.PendingFlows != 0 {
			t.Errorf("node %d ends with %d pending flows; supervised reaping should drain them", id, ns.PendingFlows)
		}
	}

	// The ablation: no failover leaves the dead node's tenants dark
	// (wider blast radius, no recovery), no supervision leaks pending
	// entries on the attacked node.
	if unsup.BlastRadiusFrac <= sup.BlastRadiusFrac {
		t.Errorf("unsupervised blast radius %.3f should exceed supervised %.3f",
			unsup.BlastRadiusFrac, sup.BlastRadiusFrac)
	}
	if unsup.FailoverSec != -1 {
		t.Errorf("unsupervised failover gap %d, want -1 (failover disabled)", unsup.FailoverSec)
	}
	ufinal := unsup.Samples[len(unsup.Samples)-1]
	for i, w := range supConfig(t).Workloads {
		if w.Attacker {
			continue
		}
		if ufinal.TenantNode[i] == -1 && ufinal.TenantGbps[i] != 0 {
			t.Errorf("dark tenant %d moves %.3f Gbps", i, ufinal.TenantGbps[i])
		}
	}
	if ufinal.Nodes[0].PendingFlows == 0 {
		t.Error("unsupervised attacked node should end with leaked pending flows")
	}
}

func supConfig(t *testing.T) Config {
	t.Helper()
	cfg, err := FleetChaosConfig(FleetSupervised, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestFleetControllerPartition pins the graceful-degradation contract: a
// node partitioned from the controller keeps forwarding on its last
// applied generation, its staleness is reported (not silent), pushes to
// it retry with backoff, and after the partition heals it rejoins,
// catches up, and leaks nothing.
func TestFleetControllerPartition(t *testing.T) {
	_, res, evs := runMode(t, FleetSupervised)
	cfg := supConfig(t)

	// Tenants homed on the partitioned node (node 2) at t=0.
	var onNode2 []int
	for i, home := range res.Samples[0].TenantNode {
		if home == 2 && !cfg.Workloads[i].Attacker {
			onNode2 = append(onNode2, i)
		}
	}
	if len(onNode2) == 0 {
		t.Fatal("no victims scheduled onto node 2")
	}

	staleSeen := false
	for _, s := range res.Samples {
		ns := s.Nodes[2]
		inWindow := s.Sec >= FleetPartitionSec && s.Sec < FleetPartitionSec+FleetPartitionDur
		if inWindow != ns.Partitioned {
			t.Fatalf("t=%d: node 2 partitioned=%v, want %v", s.Sec, ns.Partitioned, inWindow)
		}
		if inWindow {
			if !ns.Alive {
				t.Fatalf("t=%d: partitioned node must stay alive", s.Sec)
			}
			if ns.StaleGens > 0 {
				staleSeen = true
			}
			// Forwarding continues on the stale generation.
			for _, i := range onNode2 {
				if s.TenantGbps[i] < 0.9*res.PreFault[i] {
					t.Errorf("t=%d: tenant %d on partitioned node dropped to %.3f", s.Sec, i, s.TenantGbps[i])
				}
			}
		}
	}
	if !staleSeen {
		t.Error("partitioned node never reported a staleness gap")
	}

	// Lifecycle events: suspected, never dead, rejoined; pushes to the
	// partitioned node retried; staleness journaled.
	count := map[telemetry.EventKind]int{}
	for _, e := range evs {
		if e.Actor == 2 {
			count[e.Kind]++
		}
	}
	if count[telemetry.EvNodeSuspect] == 0 || count[telemetry.EvNodeRejoin] == 0 {
		t.Errorf("node 2 lifecycle events missing: %d suspects, %d rejoins",
			count[telemetry.EvNodeSuspect], count[telemetry.EvNodeRejoin])
	}
	if count[telemetry.EvNodeDead] != 0 {
		t.Error("node 2 was declared dead; the partition is shorter than DeadAfter")
	}
	if count[telemetry.EvACLPushRetry] == 0 {
		t.Error("no push retries journaled for the partitioned node")
	}
	if count[telemetry.EvNodeStale] == 0 {
		t.Error("no staleness events journaled for the partitioned node")
	}

	// After the partition heals the node converges back: by the end its
	// staleness is bounded by normal stagger (the current generation's
	// rollout), and nothing leaked.
	final := res.Samples[len(res.Samples)-1]
	if final.Nodes[2].StaleGens > 1 {
		t.Errorf("node 2 ends %d generations stale; it should have caught up", final.Nodes[2].StaleGens)
	}
	if final.Nodes[2].PendingFlows != 0 || final.Nodes[2].Backlog != 0 {
		t.Errorf("node 2 ends with pending=%d backlog=%d; want zero leaks",
			final.Nodes[2].PendingFlows, final.Nodes[2].Backlog)
	}
}

// TestFleetConcurrentReaders drives two fabrics in parallel while reader
// goroutines hammer the public accessors — the -race exercise for the
// heartbeat/failover paths.
func TestFleetConcurrentReaders(t *testing.T) {
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg, err := FleetChaosConfig(FleetSupervised, telemetry.NewJournal(4096))
			if err != nil {
				t.Error(err)
				return
			}
			f, err := New(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			done := make(chan struct{})
			var rg sync.WaitGroup
			for p := 0; p < 3; p++ {
				rg.Add(1)
				go func() {
					defer rg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						_ = f.NodeStates()
						_ = f.Samples()
						_ = f.TargetGen()
						_ = f.DeadAt()
						_ = f.MaxConvergeSec()
					}
				}()
			}
			if _, err := f.Run(); err != nil {
				t.Error(err)
			}
			close(done)
			rg.Wait()

			states := f.NodeStates()
			if states[1] != Dead {
				t.Errorf("node 1 ended %v, want dead", states[1])
			}
			for _, id := range []int{0, 2, 3} {
				if states[id] != Healthy {
					t.Errorf("node %d ended %v, want healthy", id, states[id])
				}
			}
		}()
	}
	wg.Wait()
}

// TestFleetConfigErrors pins the constructor's validation.
func TestFleetConfigErrors(t *testing.T) {
	base := supConfig(t)

	bad := base
	bad.Nodes = 0
	if _, err := New(bad); err == nil {
		t.Error("0 nodes accepted")
	}
	bad = base
	bad.NodeFaults = bad.NodeFaults[:2]
	if _, err := New(bad); err == nil {
		t.Error("mismatched NodeFaults length accepted")
	}
	bad = base
	pinned := *bad.Workloads[0]
	pinned.PinNode = 99
	bad.Workloads = append([]*Workload{&pinned}, bad.Workloads[1:]...)
	if _, err := New(bad); err == nil {
		t.Error("out-of-range pin accepted")
	}
	bad = base
	bad.DurationSec = 0
	if _, err := New(bad); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := FleetChaosConfig(FleetMode("bogus"), nil); err == nil {
		t.Error("unknown mode accepted")
	}
}
