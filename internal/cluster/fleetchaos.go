package cluster

import (
	"fmt"

	"tse/internal/cloud"
	"tse/internal/dataplane"
	"tse/internal/faults"
	"tse/internal/flowtable"
	"tse/internal/telemetry"
)

// FleetMode selects the fleetchaos variant.
type FleetMode string

const (
	// FleetFaultFree runs the attack on a healthy fleet: the containment
	// baseline (only the attacker's own node degrades).
	FleetFaultFree FleetMode = "faultfree"
	// FleetUnsupervised is the ablation: no failover, no push retry, no
	// slow-path supervision, no pending-entry reaping. Faults land and
	// stay.
	FleetUnsupervised FleetMode = "unsupervised"
	// FleetSupervised runs the full robustness stack against the same
	// fault schedule.
	FleetSupervised FleetMode = "supervised"
)

// The fleetchaos schedule, exported so tests and the experiment fold can
// reference the instants instead of re-deriving them.
const (
	// FleetAttackStart/Stop bound the co-located TSE flood.
	FleetAttackStartSec = 5
	FleetAttackStopSec  = 35
	// FleetCrashSec is when node 1's dataplane dies; with DeadAfter=5 the
	// detector declares it dead at FleetCrashSec+4 (the crash tick counts
	// as the first missed heartbeat).
	FleetCrashSec = 23
	// FleetPartitionSec/Dur cut node 2 off from the controller — long
	// enough to be suspected, short enough to rejoin.
	FleetPartitionSec = 22
	FleetPartitionDur = 4
	// FleetPushErrSec/Dur fail ACL pushes to node 3, exercising
	// retry/backoff on a healthy link.
	FleetPushErrSec = 17
	FleetPushErrDur = 2
	// FleetDurationSec is the experiment length.
	FleetDurationSec = 45
	// FleetVictims is the number of benign tenants spread over the fleet.
	FleetVictims = 4 * 2

	// The fold's comparison windows, aligned to the 5s churn cycle so
	// every mode averages over the same churn phase: pre-fault covers one
	// full cycle before the first fault lands, the fault window covers
	// post-death attack peak up to attack stop.
	FleetPreFromSec, FleetPreToSec     = 15, 20
	FleetFaultFromSec, FleetFaultToSec = 28, FleetAttackStopSec
)

// FleetChaosConfig assembles the capstone fleet: 4 nodes, a co-located
// TSE attacker pinned to node 0, and 8 victims the scheduler spreads
// 2-per-node. At attack peak the fault plan kills node 1, partitions
// node 2, fails pushes to node 3, and (per-node plans) stalls node 3's
// revalidator and panics a handler on node 0 — every containment path at
// once. Calico is the CMS: it accepts source-port ACL rules, so the
// attacker gets the full SipSpDp tuple-space to inflate.
func FleetChaosConfig(mode FleetMode, journal *telemetry.Journal) (Config, error) {
	attACL := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	workloads := []*Workload{{
		Name:           "attacker",
		IP:             0xc0a80100,
		ACL:            attACL,
		Attacker:       true,
		RatePps:        1000,
		AttackStartSec: FleetAttackStartSec,
		AttackStopSec:  FleetAttackStopSec,
		PinNode:        0,
	}}
	for i := 0; i < FleetVictims; i++ {
		workloads = append(workloads, &Workload{
			Name:        fmt.Sprintf("victim-%d", i),
			IP:          0xc0a80010 + uint32(i),
			ACL:         flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}),
			OfferedGbps: 2.0,
			PinNode:     -1,
		})
	}

	cfg := Config{
		Nodes:          4,
		WorkersPerNode: 1,
		CMS:            cloud.Calico,
		NIC:            dataplane.TCPGroOff,
		Workloads:      workloads,
		DurationSec:    FleetDurationSec,

		QueueCap:         256,
		QuotaPerPort:     64,
		HandledPerSec:    32,
		ModelledHandlers: 2,
		RevalidateSec:    1,

		ChurnStartSec: 10,
		ChurnEverySec: 5,
		StaggerSec:    1,
		// Backoff 2s doubling to 8s: the 2-tick push-error window costs
		// node 3 at most a couple of retries.
		PushBackoffSec: 2,
		MaxBackoffSec:  8,

		SuspectAfter:     2,
		DeadAfter:        5,
		RewarmStartQuota: 4,

		Journal: journal,
	}

	switch mode {
	case FleetFaultFree:
		// No plans at all.
	case FleetSupervised, FleetUnsupervised:
		fleet := &faults.Plan{}
		fleet.Add(faults.Event{Kind: faults.NodeCrash, Node: 1, Tick: FleetCrashSec, Handler: -1, Source: -1})
		fleet.Add(faults.Event{Kind: faults.NodePartition, Node: 2, Tick: FleetPartitionSec,
			Duration: FleetPartitionDur, Handler: -1, Source: -1})
		fleet.Add(faults.Event{Kind: faults.ACLPushError, Node: 3, Tick: FleetPushErrSec,
			Duration: FleetPushErrDur, Handler: -1, Source: -1})
		cfg.FleetFaults = fleet

		node0 := &faults.Plan{}
		node0.Add(faults.Event{Kind: faults.HandlerPanic, Handler: 0, Source: -1, Tick: 24})
		node3 := &faults.Plan{}
		node3.Add(faults.Event{Kind: faults.RevalidatorStall, Handler: -1, Source: -1, Tick: 24, Duration: 3})
		cfg.NodeFaults = []*faults.Plan{node0, nil, nil, node3}

		if mode == FleetUnsupervised {
			cfg.DisableFailover = true
			cfg.DisableRetry = true
			cfg.DisableSupervisor = true
			cfg.PendingAgeSec = -1
		} else {
			cfg.StallTimeoutSec = 1
		}
	default:
		return Config{}, fmt.Errorf("cluster: unknown fleet mode %q", mode)
	}
	return cfg, nil
}

// FleetChaosResult is the folded outcome of one fleetchaos run.
type FleetChaosResult struct {
	Mode    FleetMode
	Samples []FleetSample
	// DeathSec is the tick the detector declared a node dead (-1 if
	// none).
	DeathSec int64
	// PreFault and FaultWin are each victim's mean throughput over the
	// pre-fault and post-death comparison windows; Degraded marks victims
	// whose fault-window mean fell below 90% of pre-fault.
	PreFault, FaultWin []float64
	Degraded           []bool
	// BlastRadiusFrac is the fraction of fleet victims degraded through
	// the fault window — the containment headline. The attacker's own
	// node contributes its co-located victims in every mode (that is the
	// TSE attack itself); faults widen the radius beyond it.
	BlastRadiusFrac float64
	// FailoverSec is the service gap of the dead node's tenants: ticks
	// from going dark (the crash) to all of them serving >= 90% of
	// pre-fault throughput from their failover homes (-1 if they never
	// recover, e.g. with failover disabled).
	FailoverSec int64
	// ACLConvergenceSec is the slowest churn-to-fleet-convergence of any
	// generation that converged (-1 if none did).
	ACLConvergenceSec int64
}

// RunFleetChaos builds, runs and folds one fleetchaos variant.
func RunFleetChaos(mode FleetMode, journal *telemetry.Journal) (*Fabric, *FleetChaosResult, error) {
	cfg, err := FleetChaosConfig(mode, journal)
	if err != nil {
		return nil, nil, err
	}
	f, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	samples, err := f.Run()
	if err != nil {
		return nil, nil, err
	}
	res := FoldFleetChaos(mode, cfg, samples, f)
	return f, res, nil
}

// FoldFleetChaos reduces a fleetchaos sample series to the containment
// metrics.
func FoldFleetChaos(mode FleetMode, cfg Config, samples []FleetSample, f *Fabric) *FleetChaosResult {
	res := &FleetChaosResult{
		Mode:              mode,
		Samples:           samples,
		DeathSec:          -1,
		FailoverSec:       -1,
		ACLConvergenceSec: f.MaxConvergeSec(),
	}
	for _, d := range f.DeadAt() {
		if d >= 0 && (res.DeathSec < 0 || d < res.DeathSec) {
			res.DeathSec = d
		}
	}
	nw := len(cfg.Workloads)
	res.PreFault = make([]float64, nw)
	res.FaultWin = make([]float64, nw)
	res.Degraded = make([]bool, nw)
	avg := func(idx int, from, to int64) float64 {
		sum, n := 0.0, 0
		for _, s := range samples {
			if int64(s.Sec) >= from && int64(s.Sec) < to {
				sum += s.TenantGbps[idx]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	victims, degraded := 0, 0
	for i, w := range cfg.Workloads {
		if w.Attacker {
			continue
		}
		victims++
		res.PreFault[i] = avg(i, FleetPreFromSec, FleetPreToSec)
		res.FaultWin[i] = avg(i, FleetFaultFromSec, FleetFaultToSec)
		if res.FaultWin[i] < 0.9*res.PreFault[i] {
			res.Degraded[i] = true
			degraded++
		}
	}
	if victims > 0 {
		res.BlastRadiusFrac = float64(degraded) / float64(victims)
	}

	// Failover service gap. "Moved" tenants are those whose final home
	// differs from their original placement (a dead node's tenants report
	// node -1 from the crash tick, so compare against t=0, not against
	// the tick before death). The gap runs from the first dark tick to
	// the first tick every moved tenant serves >= 90% of pre-fault
	// throughput again.
	if res.DeathSec >= 0 && len(samples) > 0 {
		home := samples[0].TenantNode
		final := samples[len(samples)-1].TenantNode
		var moved []int
		for i, w := range cfg.Workloads {
			if w.Attacker {
				continue
			}
			if final[i] >= 0 && final[i] != home[i] {
				moved = append(moved, i)
			}
		}
		if len(moved) > 0 {
			darkFrom := res.DeathSec
			for _, s := range samples {
				if s.TenantNode[moved[0]] < 0 {
					darkFrom = int64(s.Sec)
					break
				}
			}
			for _, s := range samples {
				if int64(s.Sec) < res.DeathSec {
					continue
				}
				ok := true
				for _, i := range moved {
					if s.TenantGbps[i] < 0.9*res.PreFault[i] {
						ok = false
						break
					}
				}
				if ok {
					res.FailoverSec = int64(s.Sec) - darkFrom
					break
				}
			}
		}
	}
	return res
}
