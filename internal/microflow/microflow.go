// Package microflow implements the exact-match, per-transport-connection
// flow cache that sits in front of the megaflow cache in the OVS fast path
// (§2.2). Lookup matches on all header bits, so it is a plain hash table.
//
// The cache is deliberately small ("a couple of hundred entries" — §2.2)
// and serves only as short-term memory: it is often exhausted even in
// normal operation, which is why both TSE variants pad their traces with
// random noise in unimportant header fields to keep it thrashed (§5.2,
// §6.1). Eviction is FIFO, a deterministic stand-in for OVS's
// hash-position-based replacement that has the same churn behaviour under
// high-entropy traffic.
package microflow

import (
	"sync"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// DefaultCapacity mirrors the "couple of hundred entries" of §2.2.
const DefaultCapacity = 256

// Result caches the decision for one exact header.
type Result struct {
	// Action is the cached slow-path decision.
	Action flowtable.Action
	// OutPort is the destination for Forward actions.
	OutPort int
}

// Cache is a bounded exact-match store. It is safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	table map[string]Result
	fifo  []string // insertion order ring, oldest first
	hits  uint64
	miss  uint64
}

// New creates a cache with the given capacity; cap <= 0 selects
// DefaultCapacity.
func New(cap int) *Cache {
	if cap <= 0 {
		cap = DefaultCapacity
	}
	return &Cache{cap: cap, table: make(map[string]Result, cap)}
}

// Lookup returns the cached result for header h.
func (c *Cache) Lookup(h bitvec.Vec) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.table[h.Key()]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return r, ok
}

// LookupBatch looks up a batch of headers under a single lock acquisition
// — the per-packet locking a PMD-style worker amortises across its receive
// burst. res and ok must be at least as long as hs; res[i], ok[i] receive
// what Lookup(hs[i]) would return. Hit/miss accounting matches len(hs)
// individual Lookup calls.
func (c *Cache) LookupBatch(hs []bitvec.Vec, res []Result, ok []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, h := range hs {
		r, hit := c.table[h.Key()]
		if hit {
			c.hits++
		} else {
			c.miss++
		}
		res[i], ok[i] = r, hit
	}
}

// Insert caches the result for header h, evicting the oldest entry if the
// cache is full. Inserting an existing header refreshes its value without
// moving it in the eviction order.
func (c *Cache) Insert(h bitvec.Vec, r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := h.Key()
	if _, exists := c.table[k]; exists {
		c.table[k] = r
		return
	}
	if len(c.table) >= c.cap {
		oldest := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.table, oldest)
	}
	c.table[k] = r
	c.fifo = append(c.fifo, k)
}

// Len returns the number of cached headers.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.table)
}

// Flush empties the cache.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.table = make(map[string]Result, c.cap)
	c.fifo = nil
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.miss
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
