// Package microflow implements the exact-match, per-transport-connection
// flow cache that sits in front of the megaflow cache in the OVS fast path
// (§2.2). Lookup matches on all header bits, so it is a plain hash table.
//
// The cache is deliberately small ("a couple of hundred entries" — §2.2)
// and serves only as short-term memory: it is often exhausted even in
// normal operation, which is why both TSE variants pad their traces with
// random noise in unimportant header fields to keep it thrashed (§5.2,
// §6.1). Eviction is FIFO, a deterministic stand-in for OVS's
// hash-position-based replacement that has the same churn behaviour under
// high-entropy traffic.
//
// The store is an open-addressing table keyed by a 64-bit fingerprint of
// the header bits, with the full header cloned into a dense entry array
// for exact verification (fingerprint collisions fall back to a word
// compare, never to a wrong answer). Lookup and LookupBatch are
// allocation-free; Insert allocates only the first time a header enters a
// given entry slot — refreshes and evict-and-replace cycles reuse the
// stored key storage, which is what keeps an EMC thrashed by high-entropy
// attack traffic from turning into Go allocator churn.
package microflow

import (
	"sync"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// DefaultCapacity mirrors the "couple of hundred entries" of §2.2.
const DefaultCapacity = 256

// Result caches the decision for one exact header.
type Result struct {
	// Action is the cached slow-path decision.
	Action flowtable.Action
	// OutPort is the destination for Forward actions.
	OutPort int
}

// Stats aggregates cache activity counters.
type Stats struct {
	// Hits and Misses count Lookup outcomes (LookupBatch counts each
	// header individually).
	Hits, Misses uint64
	// Evictions counts entries displaced by FIFO replacement; Flush does
	// not count as eviction.
	Evictions uint64
}

// entry is one cached header: the cloned key plus its result.
type entry struct {
	key bitvec.Vec
	res Result
}

// Cache is a bounded exact-match store. It is safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	slots []int32  // open addressing: index into ents, -1 = empty
	fps   []uint64 // fingerprint per occupied slot, parallel to slots
	ents  []entry  // dense entry storage, indices recycled via the FIFO
	fifo  []int32  // ring of entry indices in insertion order
	head  int      // fifo read position (oldest entry)
	n     int      // live entries
	stats Stats
}

// New creates a cache with the given capacity; cap <= 0 selects
// DefaultCapacity.
func New(cap int) *Cache {
	if cap <= 0 {
		cap = DefaultCapacity
	}
	// Slot count: power of two, at most half full so probe chains stay
	// short even at capacity.
	slots := 8
	for slots < 2*cap {
		slots *= 2
	}
	c := &Cache{
		cap:   cap,
		slots: make([]int32, slots),
		fps:   make([]uint64, slots),
		ents:  make([]entry, 0, cap),
		fifo:  make([]int32, cap),
	}
	for i := range c.slots {
		c.slots[i] = -1
	}
	return c
}

// findLocked returns the entry index holding header h, or -1.
func (c *Cache) findLocked(h bitvec.Vec, fp uint64) int32 {
	m := uint64(len(c.slots) - 1)
	for i := fp & m; ; i = (i + 1) & m {
		ei := c.slots[i]
		if ei < 0 {
			return -1
		}
		if c.fps[i] == fp && c.ents[ei].key.Equal(h) {
			return ei
		}
	}
}

// Lookup returns the cached result for header h. It performs no
// allocation.
func (c *Cache) Lookup(h bitvec.Vec) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ei := c.findLocked(h, bitvec.KeyHash(h))
	if ei < 0 {
		c.stats.Misses++
		return Result{}, false
	}
	c.stats.Hits++
	return c.ents[ei].res, true
}

// LookupBatch looks up a batch of headers under a single lock acquisition
// — the per-packet locking a PMD-style worker amortises across its receive
// burst. res and ok must be at least as long as hs; res[i], ok[i] receive
// what Lookup(hs[i]) would return. Hit/miss accounting matches len(hs)
// individual Lookup calls. It performs no allocation.
func (c *Cache) LookupBatch(hs []bitvec.Vec, res []Result, ok []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, h := range hs {
		ei := c.findLocked(h, bitvec.KeyHash(h))
		if ei < 0 {
			c.stats.Misses++
			res[i], ok[i] = Result{}, false
			continue
		}
		c.stats.Hits++
		res[i], ok[i] = c.ents[ei].res, true
	}
}

// PrefetchBatch touches each header's home fingerprint cell (slot and
// fingerprint word) ahead of a LookupBatch over the same burst — the
// software-prefetch idiom of DPDK's EMC processing, where the PMD
// computes hashes for the whole rx burst and issues prefetches for the
// entries' cache lines before the compare loop runs. Go has no prefetch
// intrinsic, so the "prefetch" is a plain load of the target line; the
// XOR of the touched words is returned so the caller can sink it and
// the compiler cannot elide the loads. One lock acquisition covers the
// burst, like LookupBatch. It performs no allocation.
func (c *Cache) PrefetchBatch(hs []bitvec.Vec) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := uint64(len(c.slots) - 1)
	var sink uint64
	for _, h := range hs {
		i := bitvec.KeyHash(h) & m
		sink ^= c.fps[i] ^ uint64(uint32(c.slots[i]))
	}
	return sink
}

// Insert caches the result for header h, evicting the oldest entry if the
// cache is full. Inserting an existing header refreshes its value without
// moving it in the eviction order. The header is cloned into the cache (the
// caller keeps ownership of h); a first-time insert allocates the clone,
// while an evict-and-replace reuses the evicted entry's key storage.
func (c *Cache) Insert(h bitvec.Vec, r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fp := bitvec.KeyHash(h)
	if ei := c.findLocked(h, fp); ei >= 0 {
		c.ents[ei].res = r
		return
	}
	var ei int32
	if c.n >= c.cap {
		// Evict the oldest entry and reuse its dense index (and, when the
		// layouts agree, its key storage) for the newcomer.
		ei = c.fifo[c.head]
		c.head++
		if c.head == c.cap {
			c.head = 0
		}
		c.n--
		c.deleteSlotLocked(c.ents[ei].key)
		c.stats.Evictions++
		if len(c.ents[ei].key) == len(h) {
			copy(c.ents[ei].key, h)
		} else {
			c.ents[ei].key = h.Clone()
		}
		c.ents[ei].res = r
	} else {
		ei = int32(len(c.ents))
		c.ents = append(c.ents, entry{key: h.Clone(), res: r})
	}
	c.insertSlotLocked(fp, ei)
	c.fifo[(c.head+c.n)%c.cap] = ei
	c.n++
}

// insertSlotLocked places entry index ei at the first free cell of fp's
// probe chain.
func (c *Cache) insertSlotLocked(fp uint64, ei int32) {
	m := uint64(len(c.slots) - 1)
	for i := fp & m; ; i = (i + 1) & m {
		if c.slots[i] < 0 {
			c.slots[i], c.fps[i] = ei, fp
			return
		}
	}
}

// deleteSlotLocked removes the slot holding key, compacting the probe
// cluster behind it (backward-shift deletion, no tombstones).
func (c *Cache) deleteSlotLocked(key bitvec.Vec) {
	fp := bitvec.KeyHash(key)
	m := uint64(len(c.slots) - 1)
	i := fp & m
	for {
		ei := c.slots[i]
		if ei < 0 {
			return // not present; nothing to delete
		}
		if c.fps[i] == fp && c.ents[ei].key.Equal(key) {
			break
		}
		i = (i + 1) & m
	}
	j := i
	for {
		j = (j + 1) & m
		if c.slots[j] < 0 {
			break
		}
		// The element at j may fill the hole at i iff its home cell is
		// cyclically at or before i.
		if (j-c.fps[j])&m >= (j-i)&m {
			c.slots[i], c.fps[i] = c.slots[j], c.fps[j]
			i = j
		}
	}
	c.slots[i] = -1
}

// Len returns the number of cached headers.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Flush empties the cache, resetting the hash table, the dense entry
// storage, and the FIFO eviction state together so post-flush inserts
// rebuild the insertion order from scratch. Activity counters (hits,
// misses, evictions) are cumulative and survive a flush.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.slots {
		c.slots[i] = -1
	}
	c.ents = c.ents[:0]
	c.head, c.n = 0, 0
}

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.stats.Hits + c.stats.Misses
	if total == 0 {
		return 0
	}
	return float64(c.stats.Hits) / float64(total)
}
