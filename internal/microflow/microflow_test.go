package microflow

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

func hyp(v uint64) bitvec.Vec {
	h := bitvec.NewVec(bitvec.HYP)
	h.SetField(bitvec.HYP, 0, v)
	return h
}

func TestLookupInsert(t *testing.T) {
	c := New(4)
	if _, ok := c.Lookup(hyp(1)); ok {
		t.Fatal("empty cache hit")
	}
	c.Insert(hyp(1), Result{Action: flowtable.Allow, OutPort: 3})
	r, ok := c.Lookup(hyp(1))
	if !ok || r.Action != flowtable.Allow || r.OutPort != 3 {
		t.Fatalf("lookup = %+v ok=%v", r, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestFIFOEviction(t *testing.T) {
	c := New(2)
	c.Insert(hyp(0), Result{})
	c.Insert(hyp(1), Result{})
	c.Insert(hyp(2), Result{}) // evicts hyp(0)
	if _, ok := c.Lookup(hyp(0)); ok {
		t.Error("oldest entry not evicted")
	}
	if _, ok := c.Lookup(hyp(1)); !ok {
		t.Error("newer entry evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestRefreshDoesNotGrow(t *testing.T) {
	c := New(2)
	c.Insert(hyp(0), Result{Action: flowtable.Drop})
	c.Insert(hyp(0), Result{Action: flowtable.Allow})
	if c.Len() != 1 {
		t.Errorf("Len = %d after refresh, want 1", c.Len())
	}
	if r, _ := c.Lookup(hyp(0)); r.Action != flowtable.Allow {
		t.Error("refresh did not update value")
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	for v := uint64(0); v < DefaultCapacity+10; v++ {
		h := bitvec.NewVec(bitvec.IPv4Tuple)
		h.SetField(bitvec.IPv4Tuple, 0, v)
		c.Insert(h, Result{})
	}
	if c.Len() != DefaultCapacity {
		t.Errorf("Len = %d, want %d", c.Len(), DefaultCapacity)
	}
}

// TestStatsAndEvictionOrder drives insert/lookup/refresh sequences and
// checks the Stats counters plus the FIFO semantics the megaflow-layer
// equivalence tests depend on: a refresh updates the value but must NOT
// move the entry in the eviction order, and eviction removes strictly
// oldest-first.
func TestStatsAndEvictionOrder(t *testing.T) {
	cases := []struct {
		name    string
		run     func(c *Cache)
		want    Stats
		wantLen int
		// present/absent list headers (by hyp value) to verify afterwards.
		present, absent []uint64
	}{
		{
			name: "misses then hits",
			run: func(c *Cache) {
				c.Lookup(hyp(1)) // miss
				c.Insert(hyp(1), Result{})
				c.Lookup(hyp(1)) // hit
				c.Lookup(hyp(2)) // miss
			},
			want:    Stats{Hits: 1, Misses: 2},
			wantLen: 1, present: []uint64{1}, absent: []uint64{2},
		},
		{
			name: "fifo eviction oldest first",
			run: func(c *Cache) {
				c.Insert(hyp(0), Result{})
				c.Insert(hyp(1), Result{})
				c.Insert(hyp(2), Result{})
				c.Insert(hyp(3), Result{}) // evicts 0
				c.Insert(hyp(4), Result{}) // evicts 1
			},
			want:    Stats{Evictions: 2},
			wantLen: 3, present: []uint64{2, 3, 4}, absent: []uint64{0, 1},
		},
		{
			name: "refresh does not reorder the fifo",
			run: func(c *Cache) {
				c.Insert(hyp(0), Result{})
				c.Insert(hyp(1), Result{})
				c.Insert(hyp(2), Result{})
				// Refresh the oldest: it must stay oldest.
				c.Insert(hyp(0), Result{Action: flowtable.Allow})
				c.Insert(hyp(3), Result{}) // must evict 0, not 1
			},
			want:    Stats{Evictions: 1},
			wantLen: 3, present: []uint64{1, 2, 3}, absent: []uint64{0},
		},
		{
			name: "reinsert after eviction goes to the back",
			run: func(c *Cache) {
				c.Insert(hyp(0), Result{})
				c.Insert(hyp(1), Result{})
				c.Insert(hyp(2), Result{})
				c.Insert(hyp(3), Result{}) // evicts 0
				c.Insert(hyp(0), Result{}) // evicts 1; 0 is newest again
				c.Insert(hyp(4), Result{}) // evicts 2
			},
			want:    Stats{Evictions: 3},
			wantLen: 3, present: []uint64{3, 0, 4}, absent: []uint64{1, 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(3)
			tc.run(c)
			s := c.Stats()
			if s.Evictions != tc.want.Evictions {
				t.Errorf("Evictions = %d, want %d", s.Evictions, tc.want.Evictions)
			}
			if tc.want.Hits+tc.want.Misses > 0 && (s.Hits != tc.want.Hits || s.Misses != tc.want.Misses) {
				t.Errorf("Hits/Misses = %d/%d, want %d/%d", s.Hits, s.Misses, tc.want.Hits, tc.want.Misses)
			}
			if c.Len() != tc.wantLen {
				t.Errorf("Len = %d, want %d", c.Len(), tc.wantLen)
			}
			for _, v := range tc.present {
				if _, ok := c.Lookup(hyp(v)); !ok {
					t.Errorf("header %d missing", v)
				}
			}
			for _, v := range tc.absent {
				if _, ok := c.Lookup(hyp(v)); ok {
					t.Errorf("header %d should have been evicted", v)
				}
			}
		})
	}
}

// TestFlushResetsEvictionState: after a flush, the FIFO restarts from
// scratch — eviction order is the post-flush insertion order, unaffected
// by pre-flush history.
func TestFlushResetsEvictionState(t *testing.T) {
	c := New(2)
	c.Insert(hyp(0), Result{})
	c.Insert(hyp(1), Result{})
	c.Insert(hyp(2), Result{}) // evicts 0
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after flush", c.Len())
	}
	c.Insert(hyp(5), Result{})
	c.Insert(hyp(6), Result{})
	c.Insert(hyp(7), Result{}) // must evict 5, the post-flush oldest
	if _, ok := c.Lookup(hyp(5)); ok {
		t.Error("post-flush oldest entry not evicted first")
	}
	for _, v := range []uint64{6, 7} {
		if _, ok := c.Lookup(hyp(v)); !ok {
			t.Errorf("header %d missing after post-flush churn", v)
		}
	}
	// Counters are cumulative across the flush: evictions 1 (pre) + 1 (post).
	if s := c.Stats(); s.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2 (cumulative across Flush)", s.Evictions)
	}
}

// TestInsertClones: the cache must not alias the caller's header slice.
func TestInsertClones(t *testing.T) {
	c := New(4)
	h := hyp(3)
	c.Insert(h, Result{Action: flowtable.Allow})
	h.SetField(bitvec.HYP, 0, 5) // scribble on the caller's copy
	if _, ok := c.Lookup(hyp(3)); !ok {
		t.Error("cache aliased the caller's header")
	}
	if _, ok := c.Lookup(h); ok {
		t.Error("mutated header should miss")
	}
}

// TestLookupZeroAlloc asserts the EMC hot path never allocates — the
// tentpole invariant of the zero-allocation fast path.
func TestLookupZeroAlloc(t *testing.T) {
	c := New(8)
	hit := hyp(1)
	miss := hyp(2)
	c.Insert(hit, Result{Action: flowtable.Allow})
	if a := testing.AllocsPerRun(200, func() { c.Lookup(hit) }); a != 0 {
		t.Errorf("Lookup(hit) allocates %v/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { c.Lookup(miss) }); a != 0 {
		t.Errorf("Lookup(miss) allocates %v/op, want 0", a)
	}
	hs := []bitvec.Vec{hit, miss, hit}
	res := make([]Result, len(hs))
	ok := make([]bool, len(hs))
	if a := testing.AllocsPerRun(200, func() { c.LookupBatch(hs, res, ok) }); a != 0 {
		t.Errorf("LookupBatch allocates %v/op, want 0", a)
	}
	// Evict-and-replace reuses the evicted entry's key storage: steady-state
	// insert churn on a full cache is allocation-free too.
	full := New(2)
	full.Insert(hyp(0), Result{})
	full.Insert(hyp(1), Result{})
	next := uint64(2)
	h := bitvec.NewVec(bitvec.HYP)
	if a := testing.AllocsPerRun(200, func() {
		h.SetField(bitvec.HYP, 0, next%8)
		next++
		full.Insert(h, Result{})
	}); a != 0 {
		t.Errorf("steady-state Insert allocates %v/op, want 0", a)
	}
}

// BenchmarkEMCLookup prices the exact-match hot path (hit and miss).
func BenchmarkEMCLookup(b *testing.B) {
	c := New(0)
	l := bitvec.IPv4Tuple
	hit := bitvec.NewVec(l)
	hit.SetField(l, 0, 0x0a000001)
	miss := bitvec.NewVec(l)
	miss.SetField(l, 0, 0x0a000002)
	c.Insert(hit, Result{Action: flowtable.Allow})
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Lookup(hit)
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Lookup(miss)
		}
	})
}

func TestFlushAndHitRate(t *testing.T) {
	c := New(4)
	c.Insert(hyp(1), Result{})
	c.Lookup(hyp(1))
	c.Lookup(hyp(2))
	if hr := c.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", hr)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Error("Flush did not empty cache")
	}
	empty := New(4)
	if empty.HitRate() != 0 {
		t.Error("HitRate on fresh cache should be 0")
	}
}
