package microflow

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

func hyp(v uint64) bitvec.Vec {
	h := bitvec.NewVec(bitvec.HYP)
	h.SetField(bitvec.HYP, 0, v)
	return h
}

func TestLookupInsert(t *testing.T) {
	c := New(4)
	if _, ok := c.Lookup(hyp(1)); ok {
		t.Fatal("empty cache hit")
	}
	c.Insert(hyp(1), Result{Action: flowtable.Allow, OutPort: 3})
	r, ok := c.Lookup(hyp(1))
	if !ok || r.Action != flowtable.Allow || r.OutPort != 3 {
		t.Fatalf("lookup = %+v ok=%v", r, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestFIFOEviction(t *testing.T) {
	c := New(2)
	c.Insert(hyp(0), Result{})
	c.Insert(hyp(1), Result{})
	c.Insert(hyp(2), Result{}) // evicts hyp(0)
	if _, ok := c.Lookup(hyp(0)); ok {
		t.Error("oldest entry not evicted")
	}
	if _, ok := c.Lookup(hyp(1)); !ok {
		t.Error("newer entry evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestRefreshDoesNotGrow(t *testing.T) {
	c := New(2)
	c.Insert(hyp(0), Result{Action: flowtable.Drop})
	c.Insert(hyp(0), Result{Action: flowtable.Allow})
	if c.Len() != 1 {
		t.Errorf("Len = %d after refresh, want 1", c.Len())
	}
	if r, _ := c.Lookup(hyp(0)); r.Action != flowtable.Allow {
		t.Error("refresh did not update value")
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	for v := uint64(0); v < DefaultCapacity+10; v++ {
		h := bitvec.NewVec(bitvec.IPv4Tuple)
		h.SetField(bitvec.IPv4Tuple, 0, v)
		c.Insert(h, Result{})
	}
	if c.Len() != DefaultCapacity {
		t.Errorf("Len = %d, want %d", c.Len(), DefaultCapacity)
	}
}

func TestFlushAndHitRate(t *testing.T) {
	c := New(4)
	c.Insert(hyp(1), Result{})
	c.Lookup(hyp(1))
	c.Lookup(hyp(2))
	if hr := c.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", hr)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Error("Flush did not empty cache")
	}
	empty := New(4)
	if empty.HitRate() != 0 {
		t.Error("HitRate on fresh cache should be 0")
	}
}
