package datapath_test

import (
	"fmt"
	"sync"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/datapath"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

// benignFlows builds n distinct benign web flows (allowed by rule #1 of
// every use-case ACL).
func benignFlows(n int) []bitvec.Vec {
	l := bitvec.IPv4Tuple
	out := make([]bitvec.Vec, n)
	for i := range out {
		h := bitvec.NewVec(l)
		set := func(name string, v uint64) {
			f, _ := l.FieldIndex(name)
			h.SetField(l, f, v)
		}
		set("ip_src", 0x0a010000+uint64(i))
		set("ip_dst", 0xc0a80002)
		set("ip_proto", 6)
		set("tp_src", 30000+uint64(i%1000))
		set("tp_dst", 80)
		out[i] = h
	}
	return out
}

// attackMix is a co-located SipDp trace interleaved with benign re-visits.
func attackMix(t testing.TB, tbl *flowtable.Table) []bitvec.Vec {
	t.Helper()
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	benign := benignFlows(16)
	var out []bitvec.Vec
	for i, h := range tr.Headers {
		out = append(out, h, benign[i%len(benign)])
	}
	return out
}

func newPool(t testing.TB, workers int, disableEMC bool) *datapath.Pool {
	t.Helper()
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := datapath.New(datapath.Config{
		Switch: sw, Workers: workers, DisableEMC: disableEMC})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWorkerForRSS checks dispatch is flow-sticky (same header, same
// worker) and actually spreads a diverse trace across all workers.
func TestWorkerForRSS(t *testing.T) {
	p := newPool(t, 4, false)
	trace := attackMix(t, p.Switch().FlowTable())
	seen := make([]int, p.Workers())
	for _, h := range trace {
		w := p.WorkerFor(h)
		if again := p.WorkerFor(h); again != w {
			t.Fatalf("WorkerFor not stable: %d then %d", w, again)
		}
		seen[w]++
	}
	for w, n := range seen {
		if n == 0 {
			t.Errorf("worker %d received no packets from a %d-packet trace",
				w, len(trace))
		}
	}
	// Assignments mirrors WorkerFor for the latest dispatch.
	p.ProcessBatchSerial(trace, 0, nil)
	assign := p.Assignments()
	if len(assign) != len(trace) {
		t.Fatalf("Assignments length %d, want %d", len(assign), len(trace))
	}
	for i, h := range trace {
		if assign[i] != p.WorkerFor(h) {
			t.Fatalf("packet %d: Assignments says worker %d, WorkerFor says %d",
				i, assign[i], p.WorkerFor(h))
		}
	}
}

// TestPoolSerialDeterminism: two cold pools over identical switches must
// produce bit-identical verdict streams — the property the paper-figure
// simulations lean on.
func TestPoolSerialDeterminism(t *testing.T) {
	a, b := newPool(t, 4, true), newPool(t, 4, true)
	trace := attackMix(t, a.Switch().FlowTable())
	va := a.ProcessBatchSerial(trace, 0, nil)
	vb := b.ProcessBatchSerial(trace, 0, nil)
	for i := range trace {
		if va[i] != vb[i] {
			t.Fatalf("packet %d: run A %+v != run B %+v", i, va[i], vb[i])
		}
	}
}

// TestPoolMatchesSerialSwitch compares the sharded pool against a plain
// serial switch on the same trace. On the cold pass, sharding reorders
// slow-path installs, so scan positions (Probes) may differ, but the
// decisions may not: Action, OutPort and deciding rule must agree packet
// for packet, and the final megaflow cache must hold the identical entry
// set. On a warm second pass — no installs left — the pool must be
// verdict-for-verdict identical to serial processing.
func TestPoolMatchesSerialSwitch(t *testing.T) {
	for _, emc := range []bool{false, true} {
		t.Run(fmt.Sprintf("emc=%v", emc), func(t *testing.T) {
			pool := newPool(t, 4, !emc)
			ref, err := vswitch.New(vswitch.Config{
				Table:            flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}),
				DisableMicroflow: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			trace := attackMix(t, ref.FlowTable())

			got := pool.ProcessBatchSerial(trace, 0, nil)
			want := make([]vswitch.Verdict, len(trace))
			for i, h := range trace {
				want[i] = ref.Process(h, 0)
			}
			for i := range trace {
				if got[i].Action != want[i].Action || got[i].OutPort != want[i].OutPort {
					t.Fatalf("cold packet %d: pool %+v != serial %+v", i, got[i], want[i])
				}
				// EMC hits legitimately report PathMicroflow and no rule;
				// everything else must name the same deciding rule.
				if got[i].Path != vswitch.PathMicroflow && got[i].Rule != want[i].Rule {
					t.Fatalf("cold packet %d: pool rule %q != serial %q",
						i, got[i].Rule, want[i].Rule)
				}
			}

			pe, re := pool.Switch().MFC().Entries(), ref.MFC().Entries()
			if len(pe) != len(re) {
				t.Fatalf("megaflow entries: pool %d, serial %d", len(pe), len(re))
			}
			for i := range pe {
				if !pe[i].Key.Equal(re[i].Key) || !pe[i].Mask.Equal(re[i].Mask) ||
					pe[i].Action != re[i].Action || pe[i].RuleName != re[i].RuleName {
					t.Fatalf("megaflow entry %d diverges: pool %+v, serial %+v",
						i, pe[i], re[i])
				}
			}

			if emc {
				return // warm-pass verdicts include EMC paths by design
			}
			got = pool.ProcessBatchSerial(trace, 1, got)
			for i, h := range trace {
				want[i] = ref.Process(h, 1)
			}
			for i := range trace {
				if got[i] != want[i] {
					t.Fatalf("warm packet %d: pool %+v != serial %+v",
						i, got[i], want[i])
				}
			}
		})
	}
}

// TestPoolParallel drives the concurrent mode (run with -race): verdict
// actions must match a reference switch, and per-worker counters must
// account for every packet.
func TestPoolParallel(t *testing.T) {
	pool := newPool(t, 4, false)
	ref, err := vswitch.New(vswitch.Config{
		Table:            flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}),
		DisableMicroflow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := attackMix(t, ref.FlowTable())
	wantAction := make(map[string]flowtable.Action, len(trace))
	for _, h := range trace {
		wantAction[h.Key()] = ref.Process(h, 0).Action
	}

	const rounds = 3
	var out []vswitch.Verdict
	for r := 0; r < rounds; r++ {
		out = pool.ProcessBatch(trace, int64(r), out)
		for i, v := range out {
			if want := wantAction[trace[i].Key()]; v.Action != want {
				t.Fatalf("round %d packet %d: action %v, want %v", r, i, v.Action, want)
			}
		}
	}
	totals := pool.Totals()
	wantPackets := uint64(rounds * len(trace))
	if totals.Packets != wantPackets {
		t.Errorf("pool processed %d packets, want %d", totals.Packets, wantPackets)
	}
	if got := totals.EMCHits + totals.MegaflowHits + totals.SlowPath; got != wantPackets {
		t.Errorf("per-layer stats sum to %d, want %d", got, wantPackets)
	}
	if got := totals.Dropped + totals.Allowed; got != wantPackets {
		t.Errorf("verdict stats sum to %d, want %d", got, wantPackets)
	}
	var stats [4]datapath.WorkerStats
	copy(stats[:], pool.Stats())
	for w, s := range stats {
		if s.Packets == 0 {
			t.Errorf("worker %d idle across %d packets", w, wantPackets)
		}
	}
}

// TestPoolParallelConcurrentDispatchers is intentionally absent: a Pool is
// single-dispatcher by contract. This test instead hammers one dispatcher
// against monitor goroutines touching the shared switch, mirroring how a
// deployment runs MFCGuard next to the datapath.
func TestPoolWithConcurrentMonitor(t *testing.T) {
	pool := newPool(t, 4, false)
	trace := attackMix(t, pool.Switch().FlowTable())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pool.Switch().Tick(int64(i))
			pool.Switch().Counters()
			pool.Switch().MFC().MaskCount()
		}
	}()
	var out []vswitch.Verdict
	for r := 0; r < 3; r++ {
		out = pool.ProcessBatch(trace, int64(r), out)
	}
	close(stop)
	wg.Wait()
	if got, want := pool.Totals().Packets, uint64(3*len(trace)); got != want {
		t.Errorf("pool processed %d packets, want %d", got, want)
	}
}

// TestFlushEMC checks table swaps can invalidate the per-worker caches.
func TestFlushEMC(t *testing.T) {
	pool := newPool(t, 2, false)
	trace := benignFlows(8)
	pool.ProcessBatchSerial(trace, 0, nil)
	populated := 0
	for i := 0; i < pool.Workers(); i++ {
		populated += pool.EMC(i).Len()
	}
	if populated != len(trace) {
		t.Fatalf("EMCs hold %d entries, want %d", populated, len(trace))
	}
	pool.FlushEMC()
	for i := 0; i < pool.Workers(); i++ {
		if n := pool.EMC(i).Len(); n != 0 {
			t.Errorf("worker %d EMC holds %d entries after flush", i, n)
		}
	}
}
