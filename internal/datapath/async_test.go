package datapath_test

import (
	"fmt"
	"math"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/datapath"
	"tse/internal/flowtable"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// newAsyncPool builds a pool whose misses go through the upcall subsystem.
func newAsyncPool(t testing.TB, workers int, disableEMC bool, opts upcall.Options) *datapath.Pool {
	t.Helper()
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := datapath.New(datapath.Config{
		Switch: sw, Workers: workers, DisableEMC: disableEMC, Upcall: &opts})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAsyncDriveMatchesInline is the drive-mode-equivalence acceptance
// criterion: with unbounded queues and deterministic draining, the async
// pool must match the inline pipeline verdict for verdict, counter for
// counter, and megaflow for megaflow — on a cold pass and on a warm one.
func TestAsyncDriveMatchesInline(t *testing.T) {
	for _, emc := range []bool{false, true} {
		t.Run(fmt.Sprintf("emc=%v", emc), func(t *testing.T) {
			inline := newPool(t, 4, !emc)
			async := newAsyncPool(t, 4, !emc, upcall.Options{})
			trace := attackMix(t, inline.Switch().FlowTable())

			for pass := int64(0); pass < 2; pass++ {
				want := inline.ProcessBatchSerial(trace, pass, nil)
				got := async.ProcessBatchSerial(trace, pass, nil)
				for i := range trace {
					if got[i] != want[i] {
						t.Fatalf("pass %d packet %d: async %+v != inline %+v",
							pass, i, got[i], want[i])
					}
				}
			}
			if ci, ca := inline.Switch().Counters(), async.Switch().Counters(); ci != ca {
				t.Errorf("switch counters diverge: inline %+v, async %+v", ci, ca)
			}
			ie, ae := inline.Switch().MFC().Entries(), async.Switch().MFC().Entries()
			if len(ie) != len(ae) {
				t.Fatalf("megaflow entries: inline %d, async %d", len(ie), len(ae))
			}
			for i := range ie {
				if !ie[i].Key.Equal(ae[i].Key) || !ie[i].Mask.Equal(ae[i].Mask) ||
					ie[i].Action != ae[i].Action || ie[i].RuleName != ae[i].RuleName {
					t.Fatalf("megaflow entry %d diverges: inline %+v, async %+v",
						i, ie[i], ae[i])
				}
			}
			// The async run accounted every miss as an upcall.
			tot := async.Totals()
			if tot.Upcalls != tot.SlowPath {
				t.Errorf("upcalls %d != slow-path packets %d", tot.Upcalls, tot.SlowPath)
			}
			if tot.UpcallDrops != 0 {
				t.Errorf("unbounded drive mode dropped %d upcalls", tot.UpcallDrops)
			}
			st := async.Upcalls().Stats()
			if st.Backlog != 0 || st.PendingFlows != 0 {
				t.Errorf("backlog=%d pending=%d after drive-mode run", st.Backlog, st.PendingFlows)
			}
		})
	}
}

// TestAsyncPoolDedupBurst drives the satellite dedup requirement through
// the full datapath: a 32-packet same-flow burst dispatched fire-and-forget
// coalesces onto one upcall and installs exactly one megaflow.
func TestAsyncPoolDedupBurst(t *testing.T) {
	pool := newAsyncPool(t, 4, true, upcall.Options{})
	h := benignFlows(1)[0]
	burst := make([]bitvec.Vec, 32)
	for i := range burst {
		burst[i] = h
	}
	out := pool.ProcessBatchDeferred(burst, 0, nil)
	for i, v := range out {
		if v.Path != vswitch.PathUpcallPending {
			t.Fatalf("packet %d: path %v, want upcall-pending", i, v.Path)
		}
	}
	st := pool.Upcalls().Stats()
	if st.Enqueued != 1 || st.Deduped != 31 {
		t.Fatalf("enqueued=%d deduped=%d, want 1/31", st.Enqueued, st.Deduped)
	}
	if n := pool.Upcalls().HandleN(math.MaxInt); n != 1 {
		t.Fatalf("drained %d upcalls, want 1", n)
	}
	if got := pool.Switch().Counters().Installs; got != 1 {
		t.Errorf("installs = %d, want exactly 1 for the 32-packet burst", got)
	}
	if got := pool.Switch().MFC().EntryCount(); got != 1 {
		t.Errorf("MFC holds %d entries, want 1", got)
	}
	// Once drained, a re-dispatch is a plain megaflow hit.
	out = pool.ProcessBatchDeferred(burst, 1, out)
	for i, v := range out {
		if v.Path != vswitch.PathMegaflow {
			t.Fatalf("warm packet %d: path %v, want megaflow", i, v.Path)
		}
	}
}

// TestAsyncBoundedDrops: bounded queues and quotas refuse most of a
// distinct-flow flood, bounding megaflow installs (and so mask growth)
// while the per-worker stats account every refusal.
func TestAsyncBoundedDrops(t *testing.T) {
	bounded := newAsyncPool(t, 2, true, upcall.Options{QueueCap: 8, QuotaPerSource: 4})
	open := newAsyncPool(t, 2, true, upcall.Options{})
	// A co-located attack trace: every header a miss spawning its own
	// megaflow (benign flows would all collapse into one allow entry).
	tr, err := core.CoLocated(bounded.Switch().FlowTable(),
		core.CoLocatedOptions{Noise: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	flood := tr.Headers[:256]

	for _, p := range []*datapath.Pool{bounded, open} {
		p.ProcessBatchDeferred(flood, 0, nil)
		p.Upcalls().HandleN(math.MaxInt)
	}

	st := bounded.Upcalls().Stats()
	if st.QuotaDrops == 0 {
		t.Error("bounded pool recorded no quota drops under a 256-flow flood")
	}
	if got, want := st.Enqueued, uint64(2*4); got != want {
		// 2 sources x 4 quota: the queue bound never binds behind the
		// stricter quota here.
		t.Errorf("bounded pool enqueued %d, want %d", got, want)
	}
	tot := bounded.Totals()
	if tot.UpcallDrops == 0 {
		t.Error("worker stats recorded no upcall drops")
	}
	if tot.Upcalls+tot.UpcallDrops != uint64(len(flood)) {
		t.Errorf("upcalls %d + drops %d != %d packets", tot.Upcalls, tot.UpcallDrops, len(flood))
	}
	nb := bounded.Switch().MFC().EntryCount()
	no := open.Switch().MFC().EntryCount()
	if no < 100 {
		t.Errorf("unbounded pool installed only %d megaflows from a %d-flow flood", no, len(flood))
	}
	if nb >= no/4 {
		t.Errorf("bounded pool installed %d megaflows vs %d unbounded: bound not effective", nb, no)
	}
}

// TestAsyncHandlersParallel exercises the concurrent mode under -race:
// handler goroutines resolve the upcalls while the workers' bursts wait on
// their tickets, and every packet is fully accounted.
func TestAsyncHandlersParallel(t *testing.T) {
	pool := newAsyncPool(t, 4, false, upcall.Options{Handlers: 2})
	defer pool.Close()
	ref, err := vswitch.New(vswitch.Config{
		Table:            flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}),
		DisableMicroflow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := attackMix(t, ref.FlowTable())
	wantAction := make(map[string]flowtable.Action, len(trace))
	for _, h := range trace {
		wantAction[h.Key()] = ref.Process(h, 0).Action
	}

	const rounds = 3
	var out []vswitch.Verdict
	for r := 0; r < rounds; r++ {
		out = pool.ProcessBatch(trace, int64(r), out)
		for i, v := range out {
			if want := wantAction[trace[i].Key()]; v.Action != want {
				t.Fatalf("round %d packet %d: action %v, want %v", r, i, v.Action, want)
			}
			if v.Path == vswitch.PathUpcallPending || v.Path == vswitch.PathUpcallDrop {
				t.Fatalf("round %d packet %d: unresolved path %v", r, i, v.Path)
			}
		}
	}
	totals := pool.Totals()
	wantPackets := uint64(rounds * len(trace))
	if totals.Packets != wantPackets {
		t.Errorf("pool processed %d packets, want %d", totals.Packets, wantPackets)
	}
	if got := totals.EMCHits + totals.MegaflowHits + totals.SlowPath; got != wantPackets {
		t.Errorf("per-layer stats sum to %d, want %d", got, wantPackets)
	}
	if got := totals.Dropped + totals.Allowed; got != wantPackets {
		t.Errorf("verdict stats sum to %d, want %d", got, wantPackets)
	}
	if totals.Upcalls == 0 {
		t.Error("no upcalls recorded in concurrent async mode")
	}
	pool.Close()
	st := pool.Upcalls().Stats()
	if st.Backlog != 0 || st.PendingFlows != 0 {
		t.Errorf("backlog=%d pending=%d after Close", st.Backlog, st.PendingFlows)
	}
}

// TestTotalsAggregateEMCStats is the satellite requirement: Pool.Totals
// reports the per-worker EMC cache counters (hits/misses/evictions)
// without the caller poking each worker.
func TestTotalsAggregateEMCStats(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := datapath.New(datapath.Config{
		Switch: sw, Workers: 2, EMCCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	flows := benignFlows(64) // 64 flows vs 2x8 EMC slots: guaranteed churn
	pool.ProcessBatchSerial(flows, 0, nil)
	pool.ProcessBatchSerial(flows, 1, nil)

	tot := pool.Totals()
	if tot.EMC.Misses == 0 {
		t.Error("aggregated EMC misses is zero after a cold pass")
	}
	if tot.EMC.Evictions == 0 {
		t.Error("aggregated EMC evictions is zero despite 64 flows over 16 slots")
	}
	var hits, misses, evicts uint64
	for i, ws := range pool.Stats() {
		hits += ws.EMC.Hits
		misses += ws.EMC.Misses
		evicts += ws.EMC.Evictions
		if got, want := ws.EMC, pool.EMC(i).Stats(); got != want {
			t.Errorf("worker %d EMC stats %+v != cache stats %+v", i, got, want)
		}
	}
	if hits != tot.EMC.Hits || misses != tot.EMC.Misses || evicts != tot.EMC.Evictions {
		t.Errorf("Totals EMC %+v != per-worker sum hits=%d misses=%d evictions=%d",
			tot.EMC, hits, misses, evicts)
	}
	// The verdict-level EMCHits counter and the cache's own hit counter
	// describe the same events.
	if tot.EMCHits != tot.EMC.Hits {
		t.Errorf("verdict-level EMC hits %d != cache-level %d", tot.EMCHits, tot.EMC.Hits)
	}
}
