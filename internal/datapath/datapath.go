// Package datapath implements a PMD-style multi-worker datapath over the
// simulated switch, mirroring the architecture of OVS's userspace datapath
// (dpif-netdev) that the paper's testbeds run on (§2.2):
//
//   - N poll-mode-driver (PMD) workers, one per simulated core, each
//     owning a private exact-match cache (EMC) — vswitch's microflow layer
//     exists once per PMD thread in OVS, not once per switch.
//   - RSS-style dispatch: the NIC hashes each packet's flow key and steers
//     it to a fixed worker, so one flow's packets always hit the same EMC.
//   - Batch processing: each worker drains its share of a dispatch in
//     bursts of BatchSize packets (OVS's NETDEV_MAX_BURST of 32), EMC
//     prepass first, then the shared megaflow classifier via the batched
//     switch path.
//
// The megaflow cache and slow path stay shared across workers (as in OVS,
// where dpcls subtables are per-port but the TSE attack's mask explosion
// hits every PMD scanning them). That sharing is what makes the attack
// multi-core relevant: |M| is global state, so an attacker inflating it
// from one receive queue taxes every core's lookups, while the per-core
// CPU budgets bound how much slow-path work each core can absorb.
package datapath

import (
	"fmt"
	"sync"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/microflow"
	"tse/internal/tss"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// DefaultBatchSize is the per-worker burst size, OVS's NETDEV_MAX_BURST.
const DefaultBatchSize = 32

// Config assembles a worker pool.
type Config struct {
	// Switch is the shared device: megaflow cache plus slow path. Build it
	// with DisableMicroflow — the exact-match layer belongs to the workers
	// here, one private cache per PMD (§2.2). A switch-level microflow
	// cache is not an error, just redundant work in front of the pool.
	Switch *vswitch.Switch
	// Workers is the number of PMD workers; <= 0 selects 1.
	Workers int
	// BatchSize is the per-worker burst size; <= 0 selects
	// DefaultBatchSize.
	BatchSize int
	// EMCCapacity sizes each worker's private exact-match cache; <= 0
	// selects the microflow default ("a couple of hundred entries").
	EMCCapacity int
	// DisableEMC removes the per-worker exact-match layer. The dataplane
	// simulator uses this: its per-second victim probes would otherwise
	// always hit the EMC and never observe the megaflow scan cost.
	DisableEMC bool
	// Upcall enables the asynchronous slow path: a full-scan megaflow
	// miss is submitted to the per-worker upcall queues (source = worker
	// index) instead of classified inline in the worker. With
	// Options.Handlers > 0 the pool starts that many handler goroutines
	// at New — stop them with Close — and workers block on their bursts'
	// tickets; with Handlers == 0 each admitted upcall is drained
	// synchronously through the same machinery, the deterministic drive
	// mode that is verdict-for-verdict equivalent to the inline pipeline
	// when queues are unbounded and no quota is set. nil keeps the inline
	// slow path.
	Upcall *upcall.Options
}

// WorkerStats aggregates one worker's activity.
type WorkerStats struct {
	// Packets is the number of packets dispatched to the worker.
	Packets uint64
	// EMCHits, MegaflowHits, SlowPath partition Packets by deciding
	// layer. In async mode a packet resolved through an upcall counts as
	// SlowPath; packets left pending by ProcessBatchDeferred or refused at
	// upcall admission are in neither bucket (see Upcalls/UpcallDrops).
	EMCHits, MegaflowHits, SlowPath uint64
	// Dropped and Allowed partition decided packets by verdict; a packet
	// whose upcall was refused counts as Dropped (it never reached the
	// slow path), and a deferred still-pending packet counts as neither.
	Dropped, Allowed uint64
	// Probes is the total number of megaflow mask probes the worker spent
	// — the per-core share of the linear scan cost the attack inflates.
	Probes uint64
	// StageSkips is the number of those probes the classifier's staged
	// lookup rejected on first-stage words alone (tss.Stats.StageSkips,
	// read from the worker's private classifier handle): the fraction of
	// the worker's scan cost the staging optimisation elided.
	StageSkips uint64
	// Upcalls counts misses submitted to the upcall subsystem (admitted
	// or coalesced); UpcallDrops counts misses refused at admission.
	Upcalls, UpcallDrops uint64
	// EMC snapshots the worker's private exact-match cache counters
	// (hits, misses, evictions); zero when the EMC is disabled. Filled by
	// Stats/Totals so multicore runs report cache behaviour without
	// poking each worker.
	EMC microflow.Stats
}

// Pool is a set of PMD workers sharing one switch. A pool is driven by a
// single dispatcher: methods must not be called concurrently with each
// other (the parallelism lives inside ProcessBatch, where the workers of
// one dispatch run concurrently against the shared switch).
type Pool struct {
	sw       *vswitch.Switch
	batch    int
	workers  []*worker
	assign   []int // per-header worker index of the latest dispatch
	up       *upcall.Subsystem
	handlers bool // async mode runs handler goroutines (vs drive mode)
}

// worker is one PMD: a private EMC, a private classifier handle (lock-free
// snapshot reads with per-worker statistic shards), plus reusable burst
// buffers. Only its own goroutine (or the serial driver) touches it during
// a dispatch.
type worker struct {
	id    int
	emc   *microflow.Cache
	mfc   *tss.Handle
	stats WorkerStats

	// Per-dispatch shard and per-burst scratch buffers, reused across
	// calls to keep the hot path allocation-free.
	shardHs  []bitvec.Vec
	shardIdx []int
	emcRes   []microflow.Result
	emcOK    []bool
	missHs   []bitvec.Vec
	missIdx  []int
	verdicts []vswitch.Verdict
	tickets  []pendingTicket
}

// pendingTicket is one in-flight upcall of the current burst: the ticket
// plus the miss's position in the burst's miss slice.
type pendingTicket struct {
	t   upcall.Ticket
	idx int
}

// New builds a pool over the shared switch.
func New(cfg Config) (*Pool, error) {
	if cfg.Switch == nil {
		return nil, fmt.Errorf("datapath: config needs a switch")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	p := &Pool{sw: cfg.Switch, batch: cfg.BatchSize}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{id: i, mfc: cfg.Switch.MFC().NewHandle()}
		if !cfg.DisableEMC {
			w.emc = microflow.New(cfg.EMCCapacity)
		}
		p.workers = append(p.workers, w)
	}
	if cfg.Upcall != nil {
		up, err := upcall.New(cfg.Switch, cfg.Workers, *cfg.Upcall)
		if err != nil {
			return nil, err
		}
		p.up = up
		if cfg.Upcall.Handlers > 0 {
			p.handlers = true
			up.Start()
		}
	}
	return p, nil
}

// Upcalls returns the pool's upcall subsystem, nil for inline-slow-path
// pools.
func (p *Pool) Upcalls() *upcall.Subsystem { return p.up }

// Close stops the upcall handler goroutines after draining their backlog.
// It is a no-op for inline or drive-mode pools.
func (p *Pool) Close() {
	if p.up != nil {
		p.up.Stop()
	}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Switch returns the shared switch.
func (p *Pool) Switch() *vswitch.Switch { return p.sw }

// WorkerFor returns the worker index RSS dispatch steers header h to. The
// mapping is a pure function of the header bits, so a flow's packets
// always land on the same worker (and the same private EMC).
func (p *Pool) WorkerFor(h bitvec.Vec) int {
	return int(h.Hash() % uint64(len(p.workers)))
}

// ProcessBatch dispatches a batch of headers across the workers by RSS
// hash and runs the workers concurrently against the shared switch,
// returning one verdict per header in input order (writing into out when
// it has sufficient capacity; pass nil to allocate).
//
// Verdicts are deterministic per worker stream, but when concurrent
// slow-path installs interleave, the Probes field of megaflow hits can
// vary run to run (a mask installed by another core shifts scan
// positions). Use ProcessBatchSerial where bit-exact reproducibility
// matters, e.g. the paper-figure simulations.
func (p *Pool) ProcessBatch(hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	out = p.shard(hs, out)
	var wg sync.WaitGroup
	for _, w := range p.workers {
		if len(w.shardHs) == 0 {
			continue
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(p, now, out, false)
		}(w)
	}
	wg.Wait()
	return out
}

// ProcessBatchSerial is ProcessBatch with the workers executed one after
// the other in index order: the deterministic drive mode. The simulator
// models per-core parallelism through per-core CPU budgets, so it does not
// need (and cannot afford, reproducibility-wise) real concurrency.
func (p *Pool) ProcessBatchSerial(hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	out = p.shard(hs, out)
	for _, w := range p.workers {
		if len(w.shardHs) == 0 {
			continue
		}
		w.run(p, now, out, false)
	}
	return out
}

// ProcessBatchDeferred is the fire-and-forget dispatch of the asynchronous
// slow path: like ProcessBatchSerial, but a miss's upcall is only
// submitted, never waited for. The corresponding verdicts report
// PathUpcallPending (queued; the decision arrives when a handler or a
// later HandleN drains it) or PathUpcallDrop (refused at admission). The
// dataplane simulator drives this mode and drains with the modelled
// per-second handler budget via Upcalls().HandleN. On an inline pool it
// falls back to ProcessBatchSerial.
func (p *Pool) ProcessBatchDeferred(hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	if p.up == nil {
		return p.ProcessBatchSerial(hs, now, out)
	}
	out = p.shard(hs, out)
	for _, w := range p.workers {
		if len(w.shardHs) == 0 {
			continue
		}
		w.run(p, now, out, true)
	}
	return out
}

// shard steers each header to its RSS worker, filling the per-worker
// shard buffers, and returns out resized to len(hs).
func (p *Pool) shard(hs []bitvec.Vec, out []vswitch.Verdict) []vswitch.Verdict {
	if cap(out) < len(hs) {
		out = make([]vswitch.Verdict, len(hs))
	}
	out = out[:len(hs)]
	for _, w := range p.workers {
		w.shardHs = w.shardHs[:0]
		w.shardIdx = w.shardIdx[:0]
	}
	if cap(p.assign) < len(hs) {
		p.assign = make([]int, len(hs))
	}
	p.assign = p.assign[:len(hs)]
	for i, h := range hs {
		wi := p.WorkerFor(h)
		p.assign[i] = wi
		w := p.workers[wi]
		w.shardHs = append(w.shardHs, h)
		w.shardIdx = append(w.shardIdx, i)
	}
	return out
}

// Assignments returns the worker index each header of the most recent
// ProcessBatch/ProcessBatchSerial call was steered to, in input order.
// The slice is reused by the next dispatch (a Pool is single-dispatcher);
// copy it to keep it.
func (p *Pool) Assignments() []int { return p.assign }

// run drains the worker's shard in bursts. deferred selects the
// fire-and-forget upcall mode (see ProcessBatchDeferred).
func (w *worker) run(p *Pool, now int64, out []vswitch.Verdict, deferred bool) {
	batch := p.batch
	for start := 0; start < len(w.shardHs); start += batch {
		end := start + batch
		if end > len(w.shardHs) {
			end = len(w.shardHs)
		}
		w.burst(p, w.shardHs[start:end], w.shardIdx[start:end], now, out, deferred)
	}
}

// burst processes one receive burst: EMC prepass, then the shared switch's
// batched path for the misses, then EMC priming — the emc_processing /
// fast_path_processing split of OVS's dpif-netdev. With an upcall
// subsystem configured, full-scan misses become upcalls instead of inline
// slow-path calls: drive mode (no handler goroutines) drains each one
// synchronously, handler mode submits and waits for the burst's tickets,
// and deferred mode submits without waiting.
func (w *worker) burst(p *Pool, hs []bitvec.Vec, idx []int, now int64, out []vswitch.Verdict, deferred bool) {
	w.stats.Packets += uint64(len(hs))
	missHs, missIdx := hs, idx
	if w.emc != nil {
		w.emcRes = growRes(w.emcRes, len(hs))
		w.emcOK = growOK(w.emcOK, len(hs))
		w.emc.LookupBatch(hs, w.emcRes, w.emcOK)
		w.missHs, w.missIdx = w.missHs[:0], w.missIdx[:0]
		for i := range hs {
			if w.emcOK[i] {
				v := vswitch.Verdict{Action: w.emcRes[i].Action,
					OutPort: w.emcRes[i].OutPort, Path: vswitch.PathMicroflow}
				out[idx[i]] = v
				w.stats.EMCHits++
				w.tally(v)
				continue
			}
			w.missHs = append(w.missHs, hs[i])
			w.missIdx = append(w.missIdx, idx[i])
		}
		missHs, missIdx = w.missHs, w.missIdx
	}
	if len(missHs) == 0 {
		return
	}
	w.verdicts = growVerdicts(w.verdicts, len(missHs))
	if p.up == nil {
		p.sw.ProcessBatchOn(w.mfc, missHs, now, w.verdicts, nil)
	} else {
		w.tickets = w.tickets[:0]
		p.sw.ProcessBatchOn(w.mfc, missHs, now, w.verdicts, func(i, probes int) vswitch.Verdict {
			return w.miss(p, missHs[i], now, i, probes, deferred)
		})
		for _, pt := range w.tickets {
			w.verdicts[pt.idx] = pt.t.Wait()
		}
	}
	for i, v := range w.verdicts[:len(missHs)] {
		out[missIdx[i]] = v
		switch v.Path {
		case vswitch.PathMegaflow:
			w.stats.MegaflowHits++
		case vswitch.PathSlow:
			w.stats.SlowPath++
		case vswitch.PathUpcallPending:
			// Decision deferred: neither verdict partition counts it, and
			// there is nothing to prime the EMC with.
			w.stats.Probes += uint64(v.Probes)
			continue
		case vswitch.PathUpcallDrop:
			// Refused at admission: the packet is dropped on the floor.
			w.stats.Probes += uint64(v.Probes)
			w.tally(v)
			continue
		}
		w.stats.Probes += uint64(v.Probes)
		w.tally(v)
		if w.emc != nil {
			// The EMC clones internally; no per-packet Clone here.
			w.emc.Insert(missHs[i],
				microflow.Result{Action: v.Action, OutPort: v.OutPort})
		}
	}
}

// miss turns one full-scan megaflow miss into an upcall, in the mode the
// dispatch selected. The verdicts it returns for admitted upcalls in
// handler/deferred mode are placeholders: handler mode overwrites them
// when the burst's tickets resolve, deferred mode leaves them pending.
func (w *worker) miss(p *Pool, h bitvec.Vec, now int64, i, probes int, deferred bool) vswitch.Verdict {
	if !deferred && !p.handlers {
		// Drive mode: submit and drain synchronously.
		v, o := p.up.SubmitSync(w.id, h, now)
		if o.Dropped() {
			w.stats.UpcallDrops++
			return vswitch.Verdict{Action: flowtable.Drop, Path: vswitch.PathUpcallDrop, Probes: probes}
		}
		w.stats.Upcalls++
		return v
	}
	t, o := p.up.Submit(w.id, h, now)
	if o.Dropped() {
		w.stats.UpcallDrops++
		return vswitch.Verdict{Action: flowtable.Drop, Path: vswitch.PathUpcallDrop, Probes: probes}
	}
	w.stats.Upcalls++
	if !deferred {
		w.tickets = append(w.tickets, pendingTicket{t: t, idx: i})
	}
	return vswitch.Verdict{Path: vswitch.PathUpcallPending, Probes: probes}
}

func (w *worker) tally(v vswitch.Verdict) {
	if v.Action == flowtable.Drop {
		w.stats.Dropped++
	} else {
		w.stats.Allowed++
	}
}

// Stats returns a snapshot of each worker's counters, indexed by worker,
// with each worker's private EMC cache counters folded in.
func (p *Pool) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.snapshot()
	}
	return out
}

// Totals sums the per-worker stats, EMC cache counters included, so
// multicore runs report aggregate cache hits/misses/evictions without
// poking each worker.
func (p *Pool) Totals() WorkerStats {
	var t WorkerStats
	for _, w := range p.workers {
		s := w.snapshot()
		t.Packets += s.Packets
		t.EMCHits += s.EMCHits
		t.MegaflowHits += s.MegaflowHits
		t.SlowPath += s.SlowPath
		t.Dropped += s.Dropped
		t.Allowed += s.Allowed
		t.Probes += s.Probes
		t.StageSkips += s.StageSkips
		t.Upcalls += s.Upcalls
		t.UpcallDrops += s.UpcallDrops
		t.EMC.Hits += s.EMC.Hits
		t.EMC.Misses += s.EMC.Misses
		t.EMC.Evictions += s.EMC.Evictions
	}
	return t
}

// snapshot copies the worker's counters with the live EMC stats and the
// classifier handle's stage-skip count attached.
func (w *worker) snapshot() WorkerStats {
	s := w.stats
	if w.emc != nil {
		s.EMC = w.emc.Stats()
	}
	s.StageSkips = w.mfc.Stats().StageSkips
	return s
}

// FlushEMC empties every worker's exact-match cache. Callers swapping the
// slow-path flow table (vswitch.ReplaceTable) must flush, since the EMCs
// memoise decisions of the old table.
func (p *Pool) FlushEMC() {
	for _, w := range p.workers {
		if w.emc != nil {
			w.emc.Flush()
		}
	}
}

// EMC returns worker i's private exact-match cache (nil when disabled).
func (p *Pool) EMC(i int) *microflow.Cache { return p.workers[i].emc }

func growRes(s []microflow.Result, n int) []microflow.Result {
	if cap(s) < n {
		return make([]microflow.Result, n)
	}
	return s[:n]
}

func growOK(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growVerdicts(s []vswitch.Verdict, n int) []vswitch.Verdict {
	if cap(s) < n {
		return make([]vswitch.Verdict, n)
	}
	return s[:n]
}
