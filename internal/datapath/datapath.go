// Package datapath implements a PMD-style multi-worker datapath over the
// simulated switch, mirroring the architecture of OVS's userspace datapath
// (dpif-netdev) that the paper's testbeds run on (§2.2):
//
//   - N poll-mode-driver (PMD) workers, one per simulated core, each
//     owning a private exact-match cache (EMC) — vswitch's microflow layer
//     exists once per PMD thread in OVS, not once per switch.
//   - RSS-style dispatch: the NIC hashes each packet's flow key and steers
//     it to a fixed worker, so one flow's packets always hit the same EMC.
//   - Batch processing: each worker drains its share of a dispatch in
//     bursts of BatchSize packets (OVS's NETDEV_MAX_BURST of 32), EMC
//     prepass first, then the shared megaflow classifier via the batched
//     switch path.
//
// The megaflow cache and slow path stay shared across workers (as in OVS,
// where dpcls subtables are per-port but the TSE attack's mask explosion
// hits every PMD scanning them). That sharing is what makes the attack
// multi-core relevant: |M| is global state, so an attacker inflating it
// from one receive queue taxes every core's lookups, while the per-core
// CPU budgets bound how much slow-path work each core can absorb.
package datapath

import (
	"fmt"
	"sync"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/microflow"
	"tse/internal/telemetry"
	"tse/internal/tss"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// DefaultBatchSize is the per-worker burst size, OVS's NETDEV_MAX_BURST.
const DefaultBatchSize = 32

// Config assembles a worker pool.
type Config struct {
	// Switch is the shared device: megaflow cache plus slow path. Build it
	// with DisableMicroflow — the exact-match layer belongs to the workers
	// here, one private cache per PMD (§2.2). A switch-level microflow
	// cache is not an error, just redundant work in front of the pool.
	Switch *vswitch.Switch
	// Workers is the number of PMD workers; <= 0 selects 1.
	Workers int
	// BatchSize is the per-worker burst size; <= 0 selects
	// DefaultBatchSize.
	BatchSize int
	// EMCCapacity sizes each worker's private exact-match cache; <= 0
	// selects the microflow default ("a couple of hundred entries").
	EMCCapacity int
	// DisableEMC removes the per-worker exact-match layer. The dataplane
	// simulator uses this: its per-second victim probes would otherwise
	// always hit the EMC and never observe the megaflow scan cost.
	DisableEMC bool
	// Upcall enables the asynchronous slow path: a full-scan megaflow
	// miss is submitted to the per-port upcall queues (source = ingress
	// vport) instead of classified inline in the worker. With
	// Options.Handlers > 0 the pool starts that many handler goroutines
	// at New — stop them with Close — and workers block on their bursts'
	// tickets; with Handlers == 0 each admitted upcall is drained
	// synchronously through the same machinery, the deterministic drive
	// mode that is verdict-for-verdict equivalent to the inline pipeline
	// when queues are unbounded and no quota is set. nil keeps the inline
	// slow path.
	Upcall *upcall.Options
	// Ports is the number of ingress vports feeding the pool; <= 0
	// selects Workers (one vport per worker, the legacy shape, which
	// keeps port-oblivious dispatch exactly as before). Vports are pinned
	// to workers round-robin — port p's packets always run on worker
	// p % Workers, OVS's rxq-to-PMD assignment — and the upcall
	// subsystem's queues and admission quotas are keyed by port, the
	// granularity OVS rate-limits at. Callers name each packet's ingress
	// port via the ProcessBatch*Ports entry points; the port-less entry
	// points derive a port from the RSS hash.
	Ports int
	// SourceByWorker keys upcall admission on the worker index instead of
	// the ingress port: the pre-vport behaviour, kept as an ablation. A
	// victim port sharing a PMD worker with a flooding port then shares
	// its admission quota — the fairness gap the port dimension fixes,
	// and what the portfairness experiment measures.
	SourceByWorker bool
	// Metrics, when non-nil, registers the pool's tse_pmd_* counter
	// families. Each worker flushes one burst's deltas into its own
	// registry shard at burst end — a handful of padded atomic adds per
	// 32-packet burst, nothing per packet.
	Metrics *telemetry.Registry
	// PrefetchDepth, when > 0, runs a software-prefetch pass at the head
	// of every burst before the lookup loop: each packet's EMC
	// fingerprint slot is touched (microflow.Cache.PrefetchBatch), and
	// the leading PrefetchDepth cache lines of the classifier's probe
	// mirror are streamed (tss.Handle.PrefetchScan) — the DPDK idiom
	// where the PMD issues prefetches for the burst's cache lines while
	// earlier packets are still being processed. 0 disables the pass
	// (the default; the win is workload-dependent and the replay engine
	// exposes it as a knob).
	PrefetchDepth int
}

// WorkerStats aggregates one worker's activity.
type WorkerStats struct {
	// Packets is the number of packets dispatched to the worker.
	Packets uint64
	// EMCHits, MegaflowHits, SlowPath partition Packets by deciding
	// layer. In async mode a packet resolved through an upcall counts as
	// SlowPath; packets left pending by ProcessBatchDeferred or refused at
	// upcall admission are in neither bucket (see Upcalls/UpcallDrops).
	EMCHits, MegaflowHits, SlowPath uint64
	// Dropped and Allowed partition decided packets by verdict; a packet
	// whose upcall was refused counts as Dropped (it never reached the
	// slow path), and a deferred still-pending packet counts as neither.
	Dropped, Allowed uint64
	// Probes is the total number of megaflow mask probes the worker spent
	// — the per-core share of the linear scan cost the attack inflates.
	Probes uint64
	// StageSkips is the number of those probes the classifier's staged
	// lookup rejected on first-stage words alone (tss.Stats.StageSkips,
	// read from the worker's private classifier handle): the fraction of
	// the worker's scan cost the staging optimisation elided.
	StageSkips uint64
	// Upcalls counts misses submitted to the upcall subsystem (admitted
	// or coalesced); UpcallDrops counts misses refused at admission.
	Upcalls, UpcallDrops uint64
	// UpcallShed counts the UpcallDrops subset fast-failed by an open SLO
	// circuit breaker (upcall.DroppedBreaker): deliberate load shedding,
	// not queue/quota exhaustion.
	UpcallShed uint64
	// EMC snapshots the worker's private exact-match cache counters
	// (hits, misses, evictions); zero when the EMC is disabled. Filled by
	// Stats/Totals so multicore runs report cache behaviour without
	// poking each worker.
	EMC microflow.Stats
	// Ports splits the worker's counters by ingress vport, indexed by
	// port id (Totals sums them element-wise across workers, giving the
	// per-vport view). Decided packets land in Allowed/Dropped; a
	// deferred still-pending packet counts only in Packets.
	Ports []PortStats
}

// PortStats is one ingress vport's share of a worker's activity — and,
// summed across workers, the vport's pool-wide ledger. This is the
// granularity the fairness story runs at: a victim port's Upcalls and
// UpcallDrops tell whether the flood ate its admission budget.
type PortStats struct {
	// Packets counts packets that arrived on the port.
	Packets uint64
	// Allowed and Dropped partition the port's decided packets (a refused
	// upcall counts as Dropped).
	Allowed, Dropped uint64
	// Upcalls counts the port's admitted or coalesced flow misses;
	// UpcallDrops counts its misses refused at admission.
	Upcalls, UpcallDrops uint64
	// UpcallShed counts the UpcallDrops subset shed by the port's open
	// circuit breaker.
	UpcallShed uint64
}

// Pool is a set of PMD workers sharing one switch. A pool is driven by a
// single dispatcher: methods must not be called concurrently with each
// other (the parallelism lives inside ProcessBatch, where the workers of
// one dispatch run concurrently against the shared switch).
type Pool struct {
	sw          *vswitch.Switch
	batch       int
	ports       int
	prefetch    int // prefetch pass depth in cache lines; 0 = off
	workers     []*worker
	assign      []int // per-header worker index of the latest dispatch
	up          *upcall.Subsystem
	handlers    bool // async mode runs handler goroutines (vs drive mode)
	srcByWorker bool // ablation: upcall source = worker, not port
	tm          *poolMetrics
}

// poolMetrics is the pool's registry wiring: push counters sharded by
// worker id, fed by per-burst deltas of the WorkerStats each worker
// already maintains.
type poolMetrics struct {
	packets, emcHits, megaflowHits, slowpath *telemetry.Counter
	probes, upcalls, upcallDrops, upcallShed *telemetry.Counter
}

func newPoolMetrics(reg *telemetry.Registry) *poolMetrics {
	return &poolMetrics{
		packets: reg.Counter("tse_pmd_packets_total",
			"Packets dispatched to PMD workers."),
		emcHits: reg.Counter("tse_pmd_emc_hits_total",
			"Packets decided by a worker's private exact-match cache (OVS coverage: exact match hit)."),
		megaflowHits: reg.Counter("tse_pmd_megaflow_hits_total",
			"Packets decided by the shared megaflow cache (OVS coverage: masked hit)."),
		slowpath: reg.Counter("tse_pmd_slowpath_total",
			"Packets resolved through the slow path, upcall-resolved included."),
		probes: reg.Counter("tse_pmd_probes_total",
			"Mask probes spent by PMD workers — the per-core scan cost the attack inflates."),
		upcalls: reg.Counter("tse_pmd_upcalls_total",
			"Flow misses submitted to the upcall subsystem."),
		upcallDrops: reg.Counter("tse_pmd_upcall_drops_total",
			"Flow misses refused at upcall admission."),
		upcallShed: reg.Counter("tse_pmd_upcall_shed_total",
			"Refused misses fast-failed by an open SLO circuit breaker."),
	}
}

// record flushes one burst's worth of counter movement (after minus
// before) into the worker's registry shard.
func (m *poolMetrics) record(shard int, before, after WorkerStats) {
	add := func(c *telemetry.Counter, b, a uint64) {
		if a > b {
			c.Add(shard, a-b)
		}
	}
	add(m.packets, before.Packets, after.Packets)
	add(m.emcHits, before.EMCHits, after.EMCHits)
	add(m.megaflowHits, before.MegaflowHits, after.MegaflowHits)
	add(m.slowpath, before.SlowPath, after.SlowPath)
	add(m.probes, before.Probes, after.Probes)
	add(m.upcalls, before.Upcalls, after.Upcalls)
	add(m.upcallDrops, before.UpcallDrops, after.UpcallDrops)
	add(m.upcallShed, before.UpcallShed, after.UpcallShed)
}

// worker is one PMD: a private EMC, a private classifier handle (lock-free
// snapshot reads with per-worker statistic shards), plus reusable burst
// buffers. Only its own goroutine (or the serial driver) touches it during
// a dispatch.
type worker struct {
	id        int
	emc       *microflow.Cache
	mfc       *tss.Handle
	stats     WorkerStats
	portStats []PortStats // indexed by port id; ports are worker-pinned

	// Per-dispatch shard and per-burst scratch buffers, reused across
	// calls to keep the hot path allocation-free.
	shardHs    []bitvec.Vec
	shardIdx   []int
	shardPorts []int
	emcRes     []microflow.Result
	emcOK      []bool
	missHs     []bitvec.Vec
	missIdx    []int
	missPorts  []int
	verdicts   []vswitch.Verdict
	tickets    []pendingTicket

	// sink accumulates the prefetch pass's touched words so the loads
	// cannot be elided; per-worker, so no cross-goroutine write.
	sink uint64
}

// pendingTicket is one in-flight upcall of the current burst: the ticket
// plus the miss's position in the burst's miss slice.
type pendingTicket struct {
	t   upcall.Ticket
	idx int
}

// New builds a pool over the shared switch.
func New(cfg Config) (*Pool, error) {
	if cfg.Switch == nil {
		return nil, fmt.Errorf("datapath: config needs a switch")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Ports <= 0 {
		cfg.Ports = cfg.Workers
	}
	p := &Pool{sw: cfg.Switch, batch: cfg.BatchSize, ports: cfg.Ports,
		prefetch: cfg.PrefetchDepth, srcByWorker: cfg.SourceByWorker}
	if cfg.Metrics != nil {
		p.tm = newPoolMetrics(cfg.Metrics)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{id: i, mfc: cfg.Switch.MFC().NewHandle(),
			portStats: make([]PortStats, cfg.Ports)}
		if !cfg.DisableEMC {
			w.emc = microflow.New(cfg.EMCCapacity)
		}
		p.workers = append(p.workers, w)
	}
	if cfg.Upcall != nil {
		sources := cfg.Ports
		if cfg.SourceByWorker {
			sources = cfg.Workers
		}
		up, err := upcall.New(cfg.Switch, sources, *cfg.Upcall)
		if err != nil {
			return nil, err
		}
		p.up = up
		if cfg.Upcall.Handlers > 0 {
			p.handlers = true
			up.Start()
		}
	}
	return p, nil
}

// Upcalls returns the pool's upcall subsystem, nil for inline-slow-path
// pools.
func (p *Pool) Upcalls() *upcall.Subsystem { return p.up }

// Close stops the upcall handler goroutines after draining their backlog.
// It is a no-op for inline or drive-mode pools.
func (p *Pool) Close() {
	if p.up != nil {
		p.up.Stop()
	}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Ports returns the ingress vport count.
func (p *Pool) Ports() int { return p.ports }

// Switch returns the shared switch.
func (p *Pool) Switch() *vswitch.Switch { return p.sw }

// PortWorker returns the worker vport port is pinned to: p % Workers, the
// round-robin rxq-to-PMD assignment. All of a port's packets run on this
// worker.
func (p *Pool) PortWorker(port int) int { return port % len(p.workers) }

// PortOf returns the vport the port-less dispatch entry points derive for
// header h from its RSS hash. With Ports == Workers (the default) the
// resulting PortWorker mapping is identical to the pre-vport RSS dispatch.
func (p *Pool) PortOf(h bitvec.Vec) int {
	return int(h.Hash() % uint64(p.ports))
}

// WorkerFor returns the worker index dispatch steers header h to when no
// explicit ingress port is given (RSS-derived port, then the port's pinned
// worker). The mapping is a pure function of the header bits, so a flow's
// packets always land on the same worker (and the same private EMC).
func (p *Pool) WorkerFor(h bitvec.Vec) int {
	return p.PortWorker(p.PortOf(h))
}

// ProcessBatch dispatches a batch of headers across the workers by RSS
// hash and runs the workers concurrently against the shared switch,
// returning one verdict per header in input order (writing into out when
// it has sufficient capacity; pass nil to allocate).
//
// Verdicts are deterministic per worker stream, but when concurrent
// slow-path installs interleave, the Probes field of megaflow hits can
// vary run to run (a mask installed by another core shifts scan
// positions). Use ProcessBatchSerial where bit-exact reproducibility
// matters, e.g. the paper-figure simulations.
func (p *Pool) ProcessBatch(hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	return p.ProcessBatchPorts(nil, hs, now, out)
}

// ProcessBatchPorts is ProcessBatch with each packet's ingress vport named
// explicitly: ports[i] is the vport hs[i] arrived on (nil derives ports
// from the RSS hash). Packets run on their port's pinned worker, per-port
// counters accrue, and — in async mode — upcalls are admitted against the
// port's own queue and quota.
func (p *Pool) ProcessBatchPorts(ports []int, hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	out = p.shard(ports, hs, out)
	var wg sync.WaitGroup
	for _, w := range p.workers {
		if len(w.shardHs) == 0 {
			continue
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(p, now, out, false)
		}(w)
	}
	wg.Wait()
	return out
}

// ProcessBatchSerial is ProcessBatch with the workers executed one after
// the other in index order: the deterministic drive mode. The simulator
// models per-core parallelism through per-core CPU budgets, so it does not
// need (and cannot afford, reproducibility-wise) real concurrency.
func (p *Pool) ProcessBatchSerial(hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	return p.ProcessBatchSerialPorts(nil, hs, now, out)
}

// ProcessBatchSerialPorts is ProcessBatchSerial with explicit ingress
// vports (see ProcessBatchPorts).
func (p *Pool) ProcessBatchSerialPorts(ports []int, hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	out = p.shard(ports, hs, out)
	for _, w := range p.workers {
		if len(w.shardHs) == 0 {
			continue
		}
		w.run(p, now, out, false)
	}
	return out
}

// ProcessBatchDeferred is the fire-and-forget dispatch of the asynchronous
// slow path: like ProcessBatchSerial, but a miss's upcall is only
// submitted, never waited for. The corresponding verdicts report
// PathUpcallPending (queued; the decision arrives when a handler or a
// later HandleN drains it) or PathUpcallDrop (refused at admission). The
// dataplane simulator drives this mode and drains with the modelled
// per-second handler budget via Upcalls().HandleN. On an inline pool it
// falls back to ProcessBatchSerial.
func (p *Pool) ProcessBatchDeferred(hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	return p.ProcessBatchDeferredPorts(nil, hs, now, out)
}

// ProcessBatchDeferredPorts is ProcessBatchDeferred with explicit ingress
// vports (see ProcessBatchPorts).
func (p *Pool) ProcessBatchDeferredPorts(ports []int, hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	if p.up == nil {
		return p.ProcessBatchSerialPorts(ports, hs, now, out)
	}
	out = p.shard(ports, hs, out)
	for _, w := range p.workers {
		if len(w.shardHs) == 0 {
			continue
		}
		w.run(p, now, out, true)
	}
	return out
}

// shard steers each header to its port's worker, filling the per-worker
// shard buffers, and returns out resized to len(hs). ports names each
// header's ingress vport; nil derives ports from the RSS hash (flow-sticky
// dispatch, the port-oblivious legacy shape).
func (p *Pool) shard(ports []int, hs []bitvec.Vec, out []vswitch.Verdict) []vswitch.Verdict {
	if ports != nil && len(ports) != len(hs) {
		panic("datapath: ports and headers length mismatch")
	}
	if cap(out) < len(hs) {
		out = make([]vswitch.Verdict, len(hs))
	}
	out = out[:len(hs)]
	for _, w := range p.workers {
		w.shardHs = w.shardHs[:0]
		w.shardIdx = w.shardIdx[:0]
		w.shardPorts = w.shardPorts[:0]
	}
	if cap(p.assign) < len(hs) {
		p.assign = make([]int, len(hs))
	}
	p.assign = p.assign[:len(hs)]
	for i, h := range hs {
		var port int
		if ports != nil {
			port = ports[i]
			if port < 0 || port >= p.ports {
				panic(fmt.Sprintf("datapath: port %d out of range [0,%d)", port, p.ports))
			}
		} else {
			port = p.PortOf(h)
		}
		wi := p.PortWorker(port)
		p.assign[i] = wi
		w := p.workers[wi]
		w.shardHs = append(w.shardHs, h)
		w.shardIdx = append(w.shardIdx, i)
		w.shardPorts = append(w.shardPorts, port)
	}
	return out
}

// Assignments returns the worker index each header of the most recent
// ProcessBatch/ProcessBatchSerial call was steered to, in input order.
// The slice is reused by the next dispatch (a Pool is single-dispatcher);
// copy it to keep it.
func (p *Pool) Assignments() []int { return p.assign }

// run drains the worker's shard in bursts. deferred selects the
// fire-and-forget upcall mode (see ProcessBatchDeferred).
func (w *worker) run(p *Pool, now int64, out []vswitch.Verdict, deferred bool) {
	batch := p.batch
	for start := 0; start < len(w.shardHs); start += batch {
		end := start + batch
		if end > len(w.shardHs) {
			end = len(w.shardHs)
		}
		w.burst(p, w.shardHs[start:end], w.shardIdx[start:end],
			w.shardPorts[start:end], now, out, deferred)
	}
}

// burst processes one receive burst: EMC prepass, then the shared switch's
// batched path for the misses, then EMC priming — the emc_processing /
// fast_path_processing split of OVS's dpif-netdev. With an upcall
// subsystem configured, full-scan misses become upcalls instead of inline
// slow-path calls: drive mode (no handler goroutines) drains each one
// synchronously, handler mode submits and waits for the burst's tickets,
// and deferred mode submits without waiting.
func (w *worker) burst(p *Pool, hs []bitvec.Vec, idx, ports []int, now int64, out []vswitch.Verdict, deferred bool) {
	if p.tm != nil {
		// Snapshot-diff telemetry: one struct copy before, a few padded
		// atomic adds after, nothing per packet. (The Ports slice header is
		// copied, not the elements; record only diffs scalar fields.)
		before := w.stats
		w.burstRun(p, hs, idx, ports, now, out, deferred)
		p.tm.record(w.id, before, w.stats)
		return
	}
	w.burstRun(p, hs, idx, ports, now, out, deferred)
}

func (w *worker) burstRun(p *Pool, hs []bitvec.Vec, idx, ports []int, now int64, out []vswitch.Verdict, deferred bool) {
	if p.prefetch > 0 {
		if w.emc != nil {
			w.sink ^= w.emc.PrefetchBatch(hs)
		}
		w.sink ^= w.mfc.PrefetchScan(p.prefetch)
	}
	w.stats.Packets += uint64(len(hs))
	for _, port := range ports {
		w.portStats[port].Packets++
	}
	missHs, missIdx, missPorts := hs, idx, ports
	if w.emc != nil {
		w.emcRes = growRes(w.emcRes, len(hs))
		w.emcOK = growOK(w.emcOK, len(hs))
		w.emc.LookupBatch(hs, w.emcRes, w.emcOK)
		w.missHs, w.missIdx, w.missPorts = w.missHs[:0], w.missIdx[:0], w.missPorts[:0]
		for i := range hs {
			if w.emcOK[i] {
				v := vswitch.Verdict{Action: w.emcRes[i].Action,
					OutPort: w.emcRes[i].OutPort, Path: vswitch.PathMicroflow}
				out[idx[i]] = v
				w.stats.EMCHits++
				w.tally(v, ports[i])
				continue
			}
			w.missHs = append(w.missHs, hs[i])
			w.missIdx = append(w.missIdx, idx[i])
			w.missPorts = append(w.missPorts, ports[i])
		}
		missHs, missIdx, missPorts = w.missHs, w.missIdx, w.missPorts
	}
	if len(missHs) == 0 {
		return
	}
	w.verdicts = growVerdicts(w.verdicts, len(missHs))
	if p.up == nil {
		p.sw.ProcessBatchOn(w.mfc, missHs, now, w.verdicts, nil)
	} else {
		w.tickets = w.tickets[:0]
		p.sw.ProcessBatchOn(w.mfc, missHs, now, w.verdicts, func(i, probes int) vswitch.Verdict {
			return w.miss(p, missHs[i], missPorts[i], now, i, probes, deferred)
		})
		for _, pt := range w.tickets {
			w.verdicts[pt.idx] = pt.t.Wait()
		}
	}
	for i, v := range w.verdicts[:len(missHs)] {
		out[missIdx[i]] = v
		switch v.Path {
		case vswitch.PathMegaflow:
			w.stats.MegaflowHits++
		case vswitch.PathSlow:
			w.stats.SlowPath++
		case vswitch.PathUpcallPending:
			// Decision deferred: neither verdict partition counts it, and
			// there is nothing to prime the EMC with.
			w.stats.Probes += uint64(v.Probes)
			continue
		case vswitch.PathUpcallDrop:
			// Refused at admission: the packet is dropped on the floor.
			w.stats.Probes += uint64(v.Probes)
			w.tally(v, missPorts[i])
			continue
		}
		w.stats.Probes += uint64(v.Probes)
		w.tally(v, missPorts[i])
		if w.emc != nil {
			// The EMC clones internally; no per-packet Clone here.
			w.emc.Insert(missHs[i],
				microflow.Result{Action: v.Action, OutPort: v.OutPort})
		}
	}
}

// miss turns one full-scan megaflow miss from ingress vport port into an
// upcall, in the mode the dispatch selected. The upcall is admitted
// against the port's queue and quota (or the worker's, under the
// SourceByWorker ablation). The verdicts it returns for admitted upcalls
// in handler/deferred mode are placeholders: handler mode overwrites them
// when the burst's tickets resolve, deferred mode leaves them pending.
func (w *worker) miss(p *Pool, h bitvec.Vec, port int, now int64, i, probes int, deferred bool) vswitch.Verdict {
	src := port
	if p.srcByWorker {
		src = w.id
	}
	if !deferred && !p.handlers {
		// Drive mode: submit and drain synchronously.
		v, o := p.up.SubmitSync(src, h, now)
		if o.Dropped() {
			w.stats.UpcallDrops++
			w.portStats[port].UpcallDrops++
			if o == upcall.DroppedBreaker {
				w.stats.UpcallShed++
				w.portStats[port].UpcallShed++
			}
			return vswitch.Verdict{Action: flowtable.Drop, Path: vswitch.PathUpcallDrop, Probes: probes}
		}
		w.stats.Upcalls++
		w.portStats[port].Upcalls++
		return v
	}
	t, o := p.up.Submit(src, h, now)
	if o.Dropped() {
		w.stats.UpcallDrops++
		w.portStats[port].UpcallDrops++
		if o == upcall.DroppedBreaker {
			w.stats.UpcallShed++
			w.portStats[port].UpcallShed++
		}
		return vswitch.Verdict{Action: flowtable.Drop, Path: vswitch.PathUpcallDrop, Probes: probes}
	}
	w.stats.Upcalls++
	w.portStats[port].Upcalls++
	if !deferred {
		w.tickets = append(w.tickets, pendingTicket{t: t, idx: i})
	}
	return vswitch.Verdict{Path: vswitch.PathUpcallPending, Probes: probes}
}

func (w *worker) tally(v vswitch.Verdict, port int) {
	if v.Action == flowtable.Drop {
		w.stats.Dropped++
		w.portStats[port].Dropped++
	} else {
		w.stats.Allowed++
		w.portStats[port].Allowed++
	}
}

// Stats returns a snapshot of each worker's counters, indexed by worker,
// with each worker's private EMC cache counters folded in.
func (p *Pool) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.snapshot()
	}
	return out
}

// Totals sums the per-worker stats, EMC cache counters and per-port
// splits included, so multicore runs report aggregate cache behaviour and
// the per-vport ledger without poking each worker.
func (p *Pool) Totals() WorkerStats {
	t := WorkerStats{Ports: make([]PortStats, p.ports)}
	for _, w := range p.workers {
		s := w.snapshot()
		t.Packets += s.Packets
		t.EMCHits += s.EMCHits
		t.MegaflowHits += s.MegaflowHits
		t.SlowPath += s.SlowPath
		t.Dropped += s.Dropped
		t.Allowed += s.Allowed
		t.Probes += s.Probes
		t.StageSkips += s.StageSkips
		t.Upcalls += s.Upcalls
		t.UpcallDrops += s.UpcallDrops
		t.UpcallShed += s.UpcallShed
		t.EMC.Hits += s.EMC.Hits
		t.EMC.Misses += s.EMC.Misses
		t.EMC.Evictions += s.EMC.Evictions
		for i, ps := range s.Ports {
			t.Ports[i].Packets += ps.Packets
			t.Ports[i].Allowed += ps.Allowed
			t.Ports[i].Dropped += ps.Dropped
			t.Ports[i].Upcalls += ps.Upcalls
			t.Ports[i].UpcallDrops += ps.UpcallDrops
			t.Ports[i].UpcallShed += ps.UpcallShed
		}
	}
	return t
}

// PortStats returns the pool-wide per-vport ledger, indexed by port id.
func (p *Pool) PortStats() []PortStats {
	return p.Totals().Ports
}

// snapshot copies the worker's counters with the live EMC stats, the
// classifier handle's stage-skip count, and the per-port split attached.
func (w *worker) snapshot() WorkerStats {
	s := w.stats
	if w.emc != nil {
		s.EMC = w.emc.Stats()
	}
	s.StageSkips = w.mfc.Stats().StageSkips
	s.Ports = append([]PortStats(nil), w.portStats...)
	return s
}

// FlushEMC empties every worker's exact-match cache. Callers swapping the
// slow-path flow table (vswitch.ReplaceTable) must flush, since the EMCs
// memoise decisions of the old table.
func (p *Pool) FlushEMC() {
	for _, w := range p.workers {
		if w.emc != nil {
			w.emc.Flush()
		}
	}
}

// EMC returns worker i's private exact-match cache (nil when disabled).
func (p *Pool) EMC(i int) *microflow.Cache { return p.workers[i].emc }

func growRes(s []microflow.Result, n int) []microflow.Result {
	if cap(s) < n {
		return make([]microflow.Result, n)
	}
	return s[:n]
}

func growOK(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growVerdicts(s []vswitch.Verdict, n int) []vswitch.Verdict {
	if cap(s) < n {
		return make([]vswitch.Verdict, n)
	}
	return s[:n]
}
