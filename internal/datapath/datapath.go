// Package datapath implements a PMD-style multi-worker datapath over the
// simulated switch, mirroring the architecture of OVS's userspace datapath
// (dpif-netdev) that the paper's testbeds run on (§2.2):
//
//   - N poll-mode-driver (PMD) workers, one per simulated core, each
//     owning a private exact-match cache (EMC) — vswitch's microflow layer
//     exists once per PMD thread in OVS, not once per switch.
//   - RSS-style dispatch: the NIC hashes each packet's flow key and steers
//     it to a fixed worker, so one flow's packets always hit the same EMC.
//   - Batch processing: each worker drains its share of a dispatch in
//     bursts of BatchSize packets (OVS's NETDEV_MAX_BURST of 32), EMC
//     prepass first, then the shared megaflow classifier via the batched
//     switch path.
//
// The megaflow cache and slow path stay shared across workers (as in OVS,
// where dpcls subtables are per-port but the TSE attack's mask explosion
// hits every PMD scanning them). That sharing is what makes the attack
// multi-core relevant: |M| is global state, so an attacker inflating it
// from one receive queue taxes every core's lookups, while the per-core
// CPU budgets bound how much slow-path work each core can absorb.
package datapath

import (
	"fmt"
	"sync"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/microflow"
	"tse/internal/vswitch"
)

// DefaultBatchSize is the per-worker burst size, OVS's NETDEV_MAX_BURST.
const DefaultBatchSize = 32

// Config assembles a worker pool.
type Config struct {
	// Switch is the shared device: megaflow cache plus slow path. Build it
	// with DisableMicroflow — the exact-match layer belongs to the workers
	// here, one private cache per PMD (§2.2). A switch-level microflow
	// cache is not an error, just redundant work in front of the pool.
	Switch *vswitch.Switch
	// Workers is the number of PMD workers; <= 0 selects 1.
	Workers int
	// BatchSize is the per-worker burst size; <= 0 selects
	// DefaultBatchSize.
	BatchSize int
	// EMCCapacity sizes each worker's private exact-match cache; <= 0
	// selects the microflow default ("a couple of hundred entries").
	EMCCapacity int
	// DisableEMC removes the per-worker exact-match layer. The dataplane
	// simulator uses this: its per-second victim probes would otherwise
	// always hit the EMC and never observe the megaflow scan cost.
	DisableEMC bool
}

// WorkerStats aggregates one worker's activity.
type WorkerStats struct {
	// Packets is the number of packets dispatched to the worker.
	Packets uint64
	// EMCHits, MegaflowHits, SlowPath partition Packets by deciding layer.
	EMCHits, MegaflowHits, SlowPath uint64
	// Dropped and Allowed partition Packets by verdict.
	Dropped, Allowed uint64
	// Probes is the total number of megaflow mask probes the worker spent
	// — the per-core share of the linear scan cost the attack inflates.
	Probes uint64
}

// Pool is a set of PMD workers sharing one switch. A pool is driven by a
// single dispatcher: methods must not be called concurrently with each
// other (the parallelism lives inside ProcessBatch, where the workers of
// one dispatch run concurrently against the shared switch).
type Pool struct {
	sw      *vswitch.Switch
	batch   int
	workers []*worker
	assign  []int // per-header worker index of the latest dispatch
}

// worker is one PMD: a private EMC plus reusable burst buffers. Only its
// own goroutine (or the serial driver) touches it during a dispatch.
type worker struct {
	emc   *microflow.Cache
	stats WorkerStats

	// Per-dispatch shard and per-burst scratch buffers, reused across
	// calls to keep the hot path allocation-free.
	shardHs  []bitvec.Vec
	shardIdx []int
	emcRes   []microflow.Result
	emcOK    []bool
	missHs   []bitvec.Vec
	missIdx  []int
	verdicts []vswitch.Verdict
}

// New builds a pool over the shared switch.
func New(cfg Config) (*Pool, error) {
	if cfg.Switch == nil {
		return nil, fmt.Errorf("datapath: config needs a switch")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	p := &Pool{sw: cfg.Switch, batch: cfg.BatchSize}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{}
		if !cfg.DisableEMC {
			w.emc = microflow.New(cfg.EMCCapacity)
		}
		p.workers = append(p.workers, w)
	}
	return p, nil
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Switch returns the shared switch.
func (p *Pool) Switch() *vswitch.Switch { return p.sw }

// WorkerFor returns the worker index RSS dispatch steers header h to. The
// mapping is a pure function of the header bits, so a flow's packets
// always land on the same worker (and the same private EMC).
func (p *Pool) WorkerFor(h bitvec.Vec) int {
	return int(h.Hash() % uint64(len(p.workers)))
}

// ProcessBatch dispatches a batch of headers across the workers by RSS
// hash and runs the workers concurrently against the shared switch,
// returning one verdict per header in input order (writing into out when
// it has sufficient capacity; pass nil to allocate).
//
// Verdicts are deterministic per worker stream, but when concurrent
// slow-path installs interleave, the Probes field of megaflow hits can
// vary run to run (a mask installed by another core shifts scan
// positions). Use ProcessBatchSerial where bit-exact reproducibility
// matters, e.g. the paper-figure simulations.
func (p *Pool) ProcessBatch(hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	out = p.shard(hs, out)
	var wg sync.WaitGroup
	for _, w := range p.workers {
		if len(w.shardHs) == 0 {
			continue
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(p.sw, p.batch, now, out)
		}(w)
	}
	wg.Wait()
	return out
}

// ProcessBatchSerial is ProcessBatch with the workers executed one after
// the other in index order: the deterministic drive mode. The simulator
// models per-core parallelism through per-core CPU budgets, so it does not
// need (and cannot afford, reproducibility-wise) real concurrency.
func (p *Pool) ProcessBatchSerial(hs []bitvec.Vec, now int64, out []vswitch.Verdict) []vswitch.Verdict {
	out = p.shard(hs, out)
	for _, w := range p.workers {
		if len(w.shardHs) == 0 {
			continue
		}
		w.run(p.sw, p.batch, now, out)
	}
	return out
}

// shard steers each header to its RSS worker, filling the per-worker
// shard buffers, and returns out resized to len(hs).
func (p *Pool) shard(hs []bitvec.Vec, out []vswitch.Verdict) []vswitch.Verdict {
	if cap(out) < len(hs) {
		out = make([]vswitch.Verdict, len(hs))
	}
	out = out[:len(hs)]
	for _, w := range p.workers {
		w.shardHs = w.shardHs[:0]
		w.shardIdx = w.shardIdx[:0]
	}
	if cap(p.assign) < len(hs) {
		p.assign = make([]int, len(hs))
	}
	p.assign = p.assign[:len(hs)]
	for i, h := range hs {
		wi := p.WorkerFor(h)
		p.assign[i] = wi
		w := p.workers[wi]
		w.shardHs = append(w.shardHs, h)
		w.shardIdx = append(w.shardIdx, i)
	}
	return out
}

// Assignments returns the worker index each header of the most recent
// ProcessBatch/ProcessBatchSerial call was steered to, in input order.
// The slice is reused by the next dispatch (a Pool is single-dispatcher);
// copy it to keep it.
func (p *Pool) Assignments() []int { return p.assign }

// run drains the worker's shard in bursts.
func (w *worker) run(sw *vswitch.Switch, batch int, now int64, out []vswitch.Verdict) {
	for start := 0; start < len(w.shardHs); start += batch {
		end := start + batch
		if end > len(w.shardHs) {
			end = len(w.shardHs)
		}
		w.burst(sw, w.shardHs[start:end], w.shardIdx[start:end], now, out)
	}
}

// burst processes one receive burst: EMC prepass, then the shared switch's
// batched path for the misses, then EMC priming — the emc_processing /
// fast_path_processing split of OVS's dpif-netdev.
func (w *worker) burst(sw *vswitch.Switch, hs []bitvec.Vec, idx []int, now int64, out []vswitch.Verdict) {
	w.stats.Packets += uint64(len(hs))
	missHs, missIdx := hs, idx
	if w.emc != nil {
		w.emcRes = growRes(w.emcRes, len(hs))
		w.emcOK = growOK(w.emcOK, len(hs))
		w.emc.LookupBatch(hs, w.emcRes, w.emcOK)
		w.missHs, w.missIdx = w.missHs[:0], w.missIdx[:0]
		for i := range hs {
			if w.emcOK[i] {
				v := vswitch.Verdict{Action: w.emcRes[i].Action,
					OutPort: w.emcRes[i].OutPort, Path: vswitch.PathMicroflow}
				out[idx[i]] = v
				w.stats.EMCHits++
				w.tally(v)
				continue
			}
			w.missHs = append(w.missHs, hs[i])
			w.missIdx = append(w.missIdx, idx[i])
		}
		missHs, missIdx = w.missHs, w.missIdx
	}
	if len(missHs) == 0 {
		return
	}
	w.verdicts = growVerdicts(w.verdicts, len(missHs))
	sw.ProcessBatch(missHs, now, w.verdicts)
	for i, v := range w.verdicts[:len(missHs)] {
		out[missIdx[i]] = v
		switch v.Path {
		case vswitch.PathMegaflow:
			w.stats.MegaflowHits++
		case vswitch.PathSlow:
			w.stats.SlowPath++
		}
		w.stats.Probes += uint64(v.Probes)
		w.tally(v)
		if w.emc != nil {
			// The EMC clones internally; no per-packet Clone here.
			w.emc.Insert(missHs[i],
				microflow.Result{Action: v.Action, OutPort: v.OutPort})
		}
	}
}

func (w *worker) tally(v vswitch.Verdict) {
	if v.Action == flowtable.Drop {
		w.stats.Dropped++
	} else {
		w.stats.Allowed++
	}
}

// Stats returns a snapshot of each worker's counters, indexed by worker.
func (p *Pool) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.stats
	}
	return out
}

// Totals sums the per-worker stats.
func (p *Pool) Totals() WorkerStats {
	var t WorkerStats
	for _, w := range p.workers {
		t.Packets += w.stats.Packets
		t.EMCHits += w.stats.EMCHits
		t.MegaflowHits += w.stats.MegaflowHits
		t.SlowPath += w.stats.SlowPath
		t.Dropped += w.stats.Dropped
		t.Allowed += w.stats.Allowed
		t.Probes += w.stats.Probes
	}
	return t
}

// FlushEMC empties every worker's exact-match cache. Callers swapping the
// slow-path flow table (vswitch.ReplaceTable) must flush, since the EMCs
// memoise decisions of the old table.
func (p *Pool) FlushEMC() {
	for _, w := range p.workers {
		if w.emc != nil {
			w.emc.Flush()
		}
	}
}

// EMC returns worker i's private exact-match cache (nil when disabled).
func (p *Pool) EMC(i int) *microflow.Cache { return p.workers[i].emc }

func growRes(s []microflow.Result, n int) []microflow.Result {
	if cap(s) < n {
		return make([]microflow.Result, n)
	}
	return s[:n]
}

func growOK(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growVerdicts(s []vswitch.Verdict, n int) []vswitch.Verdict {
	if cap(s) < n {
		return make([]vswitch.Verdict, n)
	}
	return s[:n]
}
