package datapath_test

import (
	"fmt"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/datapath"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

// BenchmarkDatapathWorkers measures end-to-end pool throughput at 1/2/4/8
// workers under baseline (benign, cache-friendly) and TSE-attack traffic,
// reporting pkts/s. Baseline scaling is dominated by aggregate EMC
// capacity: each PMD worker brings its own exact-match cache, so a flow
// population that thrashes one worker's EMC fits comfortably across four
// — the architectural reason OVS runs one EMC per PMD thread rather than
// one per switch. The attack variant runs with the EMCs off, modelling
// the attack stream's unbounded header entropy (real TSE packets never
// repeat, so they never hit an exact-match layer; replaying a finite
// trace with EMCs on would spuriously cache it): every packet pays the
// mask scan of the attacked classifier, and adding workers buys almost
// nothing because the inflated tuple space is shared. That contrast is
// the point of the benchmark.
func BenchmarkDatapathWorkers(b *testing.B) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	// 800 benign flows: far beyond one EMC (256 entries), comfortably
	// inside four.
	baseline := benignFlows(800)
	attackTr, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	traffic := map[string][]bitvec.Vec{
		"baseline": baseline,
		"attack":   attackTr.Headers,
	}
	for _, kind := range []string{"baseline", "attack"} {
		trace := traffic[kind]
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", kind, workers), func(b *testing.B) {
				sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
				if err != nil {
					b.Fatal(err)
				}
				pool, err := datapath.New(datapath.Config{
					Switch: sw, Workers: workers, DisableEMC: kind == "attack"})
				if err != nil {
					b.Fatal(err)
				}
				// Warm: install the megaflows (and prime the EMCs once).
				out := pool.ProcessBatch(trace, 0, nil)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out = pool.ProcessBatch(trace, 1, out)
				}
				b.StopTimer()
				pps := float64(b.N) * float64(len(trace)) / b.Elapsed().Seconds()
				b.ReportMetric(pps, "pkts/s")
				// The attack regime is a mask-scan benchmark: report how
				// much of the scan the staged lookup skipped (per-worker
				// handles sum into Totals).
				if tot := pool.Totals(); tot.Probes > 0 {
					b.ReportMetric(float64(tot.StageSkips)/float64(tot.Probes), "skipfrac")
				}
			})
		}
	}
}
