// Tests for the first-class vport layer: port-pinned dispatch, per-port
// counters, and the fairness invariant — a victim port sharing a PMD
// worker with a flooding port keeps its full admission quota.
package datapath_test

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/datapath"
	"tse/internal/flowtable"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

func newPortPool(t testing.TB, workers, ports int, byWorker bool, opts *upcall.Options) *datapath.Pool {
	t.Helper()
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := datapath.New(datapath.Config{
		Switch: sw, Workers: workers, Ports: ports, SourceByWorker: byWorker,
		DisableEMC: true, Upcall: opts})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPortPinnedDispatch: explicit ingress ports steer every packet to the
// port's pinned worker (port % workers) and split the counters per port.
func TestPortPinnedDispatch(t *testing.T) {
	pool := newPortPool(t, 2, 4, false, nil)
	flows := benignFlows(32)
	ports := make([]int, len(flows))
	for i := range ports {
		ports[i] = i % 4
	}
	pool.ProcessBatchSerialPorts(ports, flows, 0, nil)
	for i, wi := range pool.Assignments() {
		if want := ports[i] % 2; wi != want {
			t.Fatalf("packet %d on port %d ran on worker %d, want pinned worker %d",
				i, ports[i], wi, want)
		}
	}
	ps := pool.PortStats()
	if len(ps) != 4 {
		t.Fatalf("PortStats has %d ports, want 4", len(ps))
	}
	for port, s := range ps {
		if s.Packets != 8 {
			t.Errorf("port %d saw %d packets, want 8", port, s.Packets)
		}
		if s.Allowed+s.Dropped != s.Packets {
			t.Errorf("port %d verdicts %d+%d do not cover its %d packets",
				port, s.Allowed, s.Dropped, s.Packets)
		}
	}
	// The port-less entry point still works and is flow-sticky.
	pool.ProcessBatchSerial(flows, 1, nil)
	for i, wi := range pool.Assignments() {
		if want := pool.WorkerFor(flows[i]); wi != want {
			t.Fatalf("RSS packet %d on worker %d, want %d", i, wi, want)
		}
	}
}

// TestVictimPortKeepsQuota is the fairness invariant satellite, the exact
// bug this refactor fixes: with port-keyed admission, a victim vport
// sharing its one PMD worker with a flooding vport keeps its full
// per-second quota; under the legacy worker-keyed ablation the same flood
// starves it completely.
func TestVictimPortKeepsQuota(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	flood := tr.Headers[:64]
	victim := benignFlows(4)

	// One shared dispatch: the flood (port 0) ahead of the victim's flow
	// setups (port 1), all on the single worker.
	hs := append(append([]bitvec.Vec(nil), flood...), victim...)
	ports := make([]int, len(hs))
	for i := len(flood); i < len(hs); i++ {
		ports[i] = 1
	}

	for _, byWorker := range []bool{false, true} {
		pool := newPortPool(t, 1, 2, byWorker, &upcall.Options{QuotaPerSource: 4})
		pool.ProcessBatchDeferredPorts(ports, hs, 0, nil)
		ps := pool.PortStats()
		if ps[0].UpcallDrops == 0 {
			t.Errorf("byWorker=%v: flooding port recorded no drops", byWorker)
		}
		if byWorker {
			// Legacy: the flood exhausted the shared worker bucket before
			// the victim's setups arrived.
			if ps[1].Upcalls != 0 || ps[1].UpcallDrops != 4 {
				t.Errorf("worker-keyed ablation: victim port stats %+v, want 0 admitted / 4 dropped", ps[1])
			}
		} else {
			// Port-keyed: the victim's own bucket is untouched by the flood.
			if ps[1].Upcalls != 4 || ps[1].UpcallDrops != 0 {
				t.Errorf("port-keyed: victim port stats %+v, want 4 admitted / 0 dropped", ps[1])
			}
		}
	}
}

// TestPortSubmitsParallel exercises concurrent per-port submission under
// -race: four workers submit from eight ports into the port-keyed queues
// while handler goroutines drain in batches.
func TestPortSubmitsParallel(t *testing.T) {
	pool := newPortPool(t, 4, 8, false, &upcall.Options{Handlers: 2})
	defer pool.Close()
	tbl := pool.Switch().FlowTable()
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	hs := tr.Headers
	ports := make([]int, len(hs))
	for i := range ports {
		ports[i] = i % 8
	}
	out := pool.ProcessBatchPorts(ports, hs, 0, nil)
	for i, v := range out {
		if v.Path == vswitch.PathUpcallPending || v.Path == vswitch.PathUpcallDrop {
			t.Fatalf("packet %d unresolved: %v", i, v.Path)
		}
	}
	tot := pool.Totals()
	if tot.Upcalls == 0 {
		t.Fatal("no upcalls recorded")
	}
	var perPort uint64
	for _, ps := range tot.Ports {
		perPort += ps.Upcalls
	}
	if perPort != tot.Upcalls {
		t.Errorf("per-port upcalls sum %d != total %d", perPort, tot.Upcalls)
	}
	// Megaflows carry their installing port.
	seen := make(map[int]bool)
	for _, e := range pool.Switch().MFC().Entries() {
		seen[e.Port] = true
		if e.Port < 0 || e.Port >= 8 {
			t.Fatalf("megaflow attributed to out-of-range port %d", e.Port)
		}
	}
	if len(seen) < 2 {
		t.Errorf("megaflows attributed to only %d ports", len(seen))
	}
}
