package tss

import (
	"sync"
	"sync/atomic"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// TestSnapshotConsistencyUnderWrites drives the lock-free read path hard
// while writers churn the classifier, asserting the copy-on-write
// snapshot guarantees (run under -race in CI):
//
//   - monotonic visibility: an entry inserted before a reader starts (and
//     never deleted) hits on every subsequent lookup, no matter how many
//     snapshots are published around it;
//   - no torn scans: every lookup's probe count is bounded by the mask
//     high-water mark, and dump readers always observe pairwise-disjoint
//     entries;
//   - counters are monotonic: a sampler never sees Stats go backwards.
func TestSnapshotConsistencyUnderWrites(t *testing.T) {
	l := bitvec.IPv4Tuple
	c := New(l, Options{DisableOverlapCheck: true})
	sip, _ := l.FieldIndex("ip_src")
	dip, _ := l.FieldIndex("ip_dst")
	fullMask := bitvec.FullMask(l)

	// Stable population: exact-match entries present for the whole test.
	const stable = 64
	mkStable := func(v uint64) bitvec.Vec {
		h := bitvec.NewVec(l)
		h.SetField(l, sip, v)
		h.SetField(l, dip, 0x0a000001)
		return h
	}
	for i := 0; i < stable; i++ {
		if err := c.Insert(&Entry{Key: mkStable(uint64(i)), Mask: fullMask,
			Action: flowtable.Allow, RuleName: "stable"}, 0); err != nil {
			t.Fatal(err)
		}
	}

	const (
		readers = 4
		churn   = 400
	)
	maskHigh := int64(stable + 1) // high-water bound for probe counts
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: churn distinct attack-style masks (insert then delete),
	// interleaved with sweeps and refreshes of the stable entries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < churn; i++ {
			mask := bitvec.PrefixMask(l, sip, 1+i%31).Or(bitvec.PrefixMask(l, dip, 1+i%16))
			key := bitvec.NewVec(l)
			key.SetFieldBit(l, sip, i%31)
			key.SetFieldBit(l, dip, i%16)
			e := &Entry{Key: key.And(mask), Mask: mask, Action: flowtable.Drop, RuleName: "churn"}
			// Raise the probe bound BEFORE publishing the new snapshot, so
			// a reader can never legitimately observe more probes than the
			// recorded high-water mark (single writer: +1 mask max).
			if next := int64(c.MaskCount()) + 1; next > atomic.LoadInt64(&maskHigh) {
				atomic.StoreInt64(&maskHigh, next)
			}
			if err := c.Insert(e, int64(i)); err != nil {
				t.Error(err)
				return
			}
			switch i % 5 {
			case 0:
				c.Delete(e.Key, e.Mask)
			case 1:
				c.DeleteWhere(func(e *Entry) bool { return e.RuleName == "churn" })
			case 2:
				// Refresh a stable entry (same key+mask, COW replace).
				if err := c.Insert(&Entry{Key: mkStable(uint64(i % stable)), Mask: fullMask.Clone(),
					Action: flowtable.Allow, RuleName: "stable"}, int64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Readers: stable entries must hit on every snapshot.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			hd := c.NewHandle()
			hs := make([]bitvec.Vec, 8)
			out := make([]BatchResult, 8)
			for i := 0; !stop.Load(); i++ {
				v := uint64((i + r) % stable)
				e, probes, ok := hd.Lookup(mkStable(v), int64(i))
				if !ok || e.Action != flowtable.Allow {
					t.Errorf("reader %d: stable entry %d missed (torn snapshot?)", r, v)
					return
				}
				if hi := atomic.LoadInt64(&maskHigh); int64(probes) > hi {
					t.Errorf("reader %d: probes %d beyond mask high-water %d", r, probes, hi)
					return
				}
				for j := range hs {
					hs[j] = mkStable(uint64((i + j) % stable))
				}
				n := hd.LookupBatch(hs, int64(i), out)
				if n != len(hs) {
					t.Errorf("reader %d: batch consumed %d of %d over stable entries", r, n, len(hs))
					return
				}
			}
		}(r)
	}

	// Dump reader: snapshots are always internally consistent.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			es := c.Entries()
			seen := make(map[string]bool, len(es))
			for _, e := range es {
				id := e.Key.Key() + "|" + e.Mask.Key()
				if seen[id] {
					t.Error("dump observed a duplicated entry (torn scan list)")
					return
				}
				seen[id] = true
			}
			n := 0
			for _, e := range es {
				if e.RuleName == "stable" {
					n++
				}
			}
			if n != stable {
				t.Errorf("dump observed %d stable entries, want %d", n, stable)
				return
			}
		}
	}()

	// Stats sampler: totals never go backwards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Stats
		for !stop.Load() {
			s := c.Stats()
			if s.Lookups < last.Lookups || s.Hits < last.Hits || s.Misses < last.Misses ||
				s.Probes < last.Probes || s.StageSkips < last.StageSkips ||
				s.Inserted < last.Inserted || s.Deleted < last.Deleted {
				t.Errorf("stats went backwards: %+v after %+v", s, last)
				return
			}
			last = s
		}
	}()

	wg.Wait()

	if got := c.Stats(); got.Lookups != got.Hits+got.Misses {
		t.Errorf("lookups %d != hits %d + misses %d", got.Lookups, got.Hits, got.Misses)
	}
	// All churn entries were deleted by the final DeleteWhere rounds or
	// remain; either way the stable set must be intact.
	for i := 0; i < stable; i++ {
		if _, _, ok := c.Lookup(mkStable(uint64(i)), 0); !ok {
			t.Fatalf("stable entry %d lost", i)
		}
	}
}

// TestSnapshotOrderHitCountConcurrent exercises the TryLock-based lazy
// resort under concurrent readers: hammering distinct entries from many
// goroutines must neither deadlock nor lose hit accounting.
func TestSnapshotOrderHitCountConcurrent(t *testing.T) {
	c := New(bitvec.HYP, Options{Order: OrderHitCount})
	loadFig3(t, c)
	var wg sync.WaitGroup
	const (
		goroutines = 8
		lookups    = 2000
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hd := c.NewHandle()
			for i := 0; i < lookups; i++ {
				hd.Lookup(hyp(uint64((g+i)%8)), int64(i))
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Lookups != goroutines*lookups {
		t.Errorf("lookups = %d, want %d", s.Lookups, goroutines*lookups)
	}
	if s.Lookups != s.Hits+s.Misses {
		t.Errorf("lookups %d != hits %d + misses %d", s.Lookups, s.Hits, s.Misses)
	}
	// Hammer one mask and confirm the resort still promotes it.
	for i := 0; i < 50000; i++ {
		c.Lookup(hyp(4), 0)
	}
	c.Lookup(hyp(4), 0)
	if _, probes, ok := c.Lookup(hyp(4), 0); !ok || probes != 1 {
		t.Errorf("hot mask not front-sorted after concurrent phase: probes=%d ok=%v", probes, ok)
	}
}
