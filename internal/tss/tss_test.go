package tss

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

func entry(l *bitvec.Layout, pat string, a flowtable.Action) *Entry {
	k, m := bitvec.MustPattern(l, pat)
	return &Entry{Key: k, Mask: m, Action: a}
}

func hyp(val uint64) bitvec.Vec {
	h := bitvec.NewVec(bitvec.HYP)
	h.SetField(bitvec.HYP, 0, val)
	return h
}

// loadFig3 installs the paper's Fig. 3 wildcarding MFC:
// 001->allow, 1**->deny, 01*->deny, 000->deny (4 entries, 3 masks).
func loadFig3(t *testing.T, c *Classifier) {
	t.Helper()
	for i, pat := range []string{"001", "1**", "01*", "000"} {
		a := flowtable.Drop
		if i == 0 {
			a = flowtable.Allow
		}
		if err := c.Insert(entry(bitvec.HYP, pat, a), 0); err != nil {
			t.Fatalf("insert %s: %v", pat, err)
		}
	}
}

func TestFig3Construction(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	if got := c.MaskCount(); got != 3 {
		t.Errorf("masks = %d, want 3 (Fig. 3)", got)
	}
	if got := c.EntryCount(); got != 4 {
		t.Errorf("entries = %d, want 4 (Fig. 3)", got)
	}
	// Classification agrees with the Fig. 1 flow table on all 8 headers.
	tbl := flowtable.Fig1()
	for v := uint64(0); v < 8; v++ {
		e, _, ok := c.Lookup(hyp(v), 0)
		if !ok {
			t.Fatalf("header %03b missed; MFC incomplete", v)
		}
		if want := tbl.Lookup(hyp(v)).Action; e.Action != want {
			t.Errorf("header %03b -> %v, want %v", v, e.Action, want)
		}
	}
}

func TestFig2ExactMatchConstruction(t *testing.T) {
	// Fig. 2: the exact-match strategy fills all 8 keys under one mask.
	c := New(bitvec.HYP, Options{})
	for v := uint64(0); v < 8; v++ {
		a := flowtable.Drop
		if v == 1 {
			a = flowtable.Allow
		}
		e := &Entry{Key: hyp(v), Mask: bitvec.FullMask(bitvec.HYP), Action: a}
		if err := c.Insert(e, 0); err != nil {
			t.Fatal(err)
		}
	}
	if c.MaskCount() != 1 {
		t.Errorf("masks = %d, want 1 (Fig. 2: single exact-match mask)", c.MaskCount())
	}
	if c.EntryCount() != 8 {
		t.Errorf("entries = %d, want 8 (Fig. 2: exponential space)", c.EntryCount())
	}
	// With one mask every lookup takes exactly one probe: optimal time.
	_, probes, ok := c.Lookup(hyp(6), 0)
	if !ok || probes != 1 {
		t.Errorf("lookup probes = %d (hit=%v), want 1 probe hit", probes, ok)
	}
}

func TestLookupEarlyExit(t *testing.T) {
	// With disjoint entries the first hit is the only hit, so probes on a
	// hit are at most the mask count, and a miss probes every mask.
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	_, probes, ok := c.Lookup(hyp(1), 0)
	if !ok {
		t.Fatal("001 must hit")
	}
	if probes < 1 || probes > 3 {
		t.Errorf("hit probes = %d, want 1..3", probes)
	}
	// A full miss costs |M| probes. (Empty a fresh classifier of the
	// covering entries so a miss is possible: use a single entry.)
	c2 := New(bitvec.HYP, Options{})
	if err := c2.Insert(entry(bitvec.HYP, "001", flowtable.Allow), 0); err != nil {
		t.Fatal(err)
	}
	if err := c2.Insert(entry(bitvec.HYP, "111", flowtable.Drop), 0); err != nil {
		t.Fatal(err)
	}
	_, probes, ok = c2.Lookup(hyp(2), 0)
	if ok {
		t.Fatal("010 must miss")
	}
	if probes != c2.MaskCount() {
		t.Errorf("miss probes = %d, want |M| = %d", probes, c2.MaskCount())
	}
}

func TestInsertRejectsOverlap(t *testing.T) {
	// §4.1: installing the Fig. 1 flow table as-is violates Inv(2).
	c := New(bitvec.HYP, Options{})
	if err := c.Insert(entry(bitvec.HYP, "001", flowtable.Allow), 0); err != nil {
		t.Fatal(err)
	}
	err := c.Insert(entry(bitvec.HYP, "***", flowtable.Drop), 0)
	var ov *ErrOverlap
	if !errors.As(err, &ov) {
		t.Fatalf("overlapping insert returned %v, want ErrOverlap", err)
	}
	if ov.Existing == nil || ov.Existing.Action != flowtable.Allow {
		t.Error("ErrOverlap should report the conflicting entry")
	}
	if c.EntryCount() != 1 || c.MaskCount() != 1 {
		t.Error("failed insert must not change the cache")
	}
}

func TestInsertOverlapSameGroupFastPath(t *testing.T) {
	// Overlap where the existing group's mask is a subset of the new
	// entry's mask exercises the single-probe detection path.
	l := bitvec.HYP
	c := New(l, Options{})
	if err := c.Insert(entry(l, "1**", flowtable.Drop), 0); err != nil {
		t.Fatal(err)
	}
	err := c.Insert(entry(l, "111", flowtable.Drop), 0)
	var ov *ErrOverlap
	if !errors.As(err, &ov) {
		t.Fatalf("want ErrOverlap, got %v", err)
	}
}

func TestInsertIdempotentRefresh(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	if err := c.Insert(entry(bitvec.HYP, "001", flowtable.Allow), 5); err != nil {
		t.Fatal(err)
	}
	// Same key/mask, new action: refresh in place.
	e2 := entry(bitvec.HYP, "001", flowtable.Drop)
	if err := c.Insert(e2, 9); err != nil {
		t.Fatalf("idempotent reinstall failed: %v", err)
	}
	if c.EntryCount() != 1 {
		t.Errorf("entries = %d after refresh, want 1", c.EntryCount())
	}
	got, _, _ := c.Lookup(hyp(1), 9)
	if got.Action != flowtable.Drop {
		t.Error("refresh did not update the action")
	}
}

func TestInsertValidation(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	key, _ := bitvec.MustPattern(bitvec.HYP, "111")
	bad := &Entry{Key: key, Mask: bitvec.NewVec(bitvec.HYP)}
	if err := c.Insert(bad, 0); err == nil {
		t.Error("non-canonical key accepted")
	}
	tooLong := &Entry{Key: make(bitvec.Vec, 4), Mask: make(bitvec.Vec, 4)}
	if err := c.Insert(tooLong, 0); err == nil {
		t.Error("wrong-length entry accepted")
	}
}

func TestDelete(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	k, m := bitvec.MustPattern(bitvec.HYP, "1**")
	if !c.Delete(k, m) {
		t.Fatal("delete of existing entry failed")
	}
	if c.Delete(k, m) {
		t.Error("double delete succeeded")
	}
	if c.MaskCount() != 2 {
		t.Errorf("masks = %d after deleting sole entry of mask 100, want 2", c.MaskCount())
	}
	// Header 100 now misses: packets fall back to the slow path, the
	// behaviour MFCGuard exploits.
	if _, _, ok := c.Lookup(hyp(4), 0); ok {
		t.Error("deleted entry still matches")
	}
	// Deleting an entry whose mask group retains other entries keeps the
	// mask: remove 000 (mask 111 also holds 001).
	k2, m2 := bitvec.MustPattern(bitvec.HYP, "000")
	if !c.Delete(k2, m2) {
		t.Fatal("delete 000 failed")
	}
	if c.MaskCount() != 2 {
		t.Errorf("masks = %d, want 2 (mask 111 still has the allow key)", c.MaskCount())
	}
	// Deleting with an unknown mask is a no-op.
	if c.Delete(hyp(0), bitvec.PrefixMask(bitvec.HYP, 0, 2)) {
		t.Error("delete with unknown mask succeeded")
	}
}

func TestDeleteWhere(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	n := c.DeleteWhere(func(e *Entry) bool { return e.Action == flowtable.Drop })
	if n != 3 {
		t.Errorf("DeleteWhere removed %d, want 3", n)
	}
	if c.EntryCount() != 1 || c.MaskCount() != 1 {
		t.Errorf("after wipe: %d entries %d masks, want 1/1", c.EntryCount(), c.MaskCount())
	}
	// The allow entry survives: MFCGuard requirement (i) in §8.
	e, _, ok := c.Lookup(hyp(1), 0)
	if !ok || e.Action != flowtable.Allow {
		t.Error("allow entry did not survive the wipe")
	}
}

func TestExpireIdle(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	// Touch the allow entry at t=100; the deny entries stay at t=0.
	c.Lookup(hyp(1), 100)
	evicted := c.ExpireIdle(105, 10)
	if evicted != 3 {
		t.Errorf("evicted %d, want 3 (10s idle timeout)", evicted)
	}
	if c.EntryCount() != 1 {
		t.Errorf("entries = %d, want 1", c.EntryCount())
	}
	// The fresh entry expires once it has been idle 10s.
	if n := c.ExpireIdle(110, 10); n != 1 {
		t.Errorf("second expiry = %d, want 1", n)
	}
}

func TestStats(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	c.Lookup(hyp(1), 0)
	c.Lookup(hyp(7), 0)
	s := c.Stats()
	if s.Lookups != 2 || s.Hits != 2 {
		t.Errorf("stats = %+v, want 2 lookups 2 hits", s)
	}
	if s.Inserted != 4 {
		t.Errorf("inserted = %d, want 4", s.Inserted)
	}
	if s.Probes < 2 {
		t.Errorf("probes = %d, want >= 2", s.Probes)
	}
}

func TestEntriesAndMasksSnapshot(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	if got := len(c.Entries()); got != 4 {
		t.Errorf("Entries() len = %d, want 4", got)
	}
	if got := len(c.Masks()); got != 3 {
		t.Errorf("Masks() len = %d, want 3", got)
	}
	// Mutating the snapshot must not affect the classifier.
	c.Masks()[0].SetBit(0)
	if c.MaskCount() != 3 {
		t.Error("snapshot aliased internal state")
	}
}

func TestProbePosition(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	seen := map[int]bool{}
	for _, m := range c.Masks() {
		pos := c.ProbePosition(m)
		if pos < 1 || pos > 3 || seen[pos] {
			t.Fatalf("bad probe position %d", pos)
		}
		seen[pos] = true
	}
	if got := c.ProbePosition(bitvec.PrefixMask(bitvec.HYP, 0, 2).Or(bitvec.NewVec(bitvec.HYP))); got != 0 {
		// PrefixMask(2) = 110 which IS in Fig. 3... use an absent mask.
		_ = got
	}
	absent := bitvec.NewVec(bitvec.HYP)
	absent.SetFieldBit(bitvec.HYP, 0, 2) // 001 mask — absent
	if got := c.ProbePosition(absent); got != 0 {
		t.Errorf("absent mask position = %d, want 0", got)
	}
}

func TestMaskOrderInsertion(t *testing.T) {
	c := New(bitvec.HYP, Options{Order: OrderInsertion})
	loadFig3(t, c)
	masks := c.Masks()
	want := []string{"111", "100", "110"} // insertion order of Fig. 3
	for i, m := range masks {
		if got := m.Format(bitvec.HYP); got != want[i] {
			t.Errorf("mask[%d] = %s, want %s", i, got, want[i])
		}
	}
}

func TestMaskOrderHitCount(t *testing.T) {
	c := New(bitvec.HYP, Options{Order: OrderHitCount})
	loadFig3(t, c)
	// Hammer header 100 (mask 100): its mask should migrate to front.
	for i := 0; i < 10; i++ {
		c.Lookup(hyp(4), 0)
	}
	_, probes, ok := c.Lookup(hyp(4), 0)
	if !ok || probes != 1 {
		t.Errorf("hot mask not front-sorted: probes = %d", probes)
	}
}

// TestProbePositionHitCountResort: ProbePosition must observe the lazily
// re-sorted order under OrderHitCount — a hammered mask's position moves to
// the front even when the resort trigger was a lookup, not an insert.
func TestProbePositionHitCountResort(t *testing.T) {
	c := New(bitvec.HYP, Options{Order: OrderHitCount})
	loadFig3(t, c)
	// Hammer header 100 (mask 100): 10 hits against 0 for the others.
	for i := 0; i < 10; i++ {
		c.Lookup(hyp(4), 0)
	}
	hotMask := bitvec.PrefixMask(bitvec.HYP, 0, 1)
	if pos := c.ProbePosition(hotMask); pos != 1 {
		t.Errorf("hot mask position = %d, want 1 (hit-count resort)", pos)
	}
	// Now hammer an entry under the exact mask harder; positions flip.
	for i := 0; i < 25; i++ {
		c.Lookup(hyp(1), 0)
	}
	exact := bitvec.FullMask(bitvec.HYP)
	if pos := c.ProbePosition(exact); pos != 1 {
		t.Errorf("exact mask position = %d, want 1 after taking the lead", pos)
	}
	if pos := c.ProbePosition(hotMask); pos != 2 {
		t.Errorf("demoted mask position = %d, want 2", pos)
	}
	// An absent mask still reports 0 under OrderHitCount.
	absent := bitvec.NewVec(bitvec.HYP)
	absent.SetFieldBit(bitvec.HYP, 0, 2)
	if pos := c.ProbePosition(absent); pos != 0 {
		t.Errorf("absent mask position = %d, want 0", pos)
	}
}

// TestExpireIdleHitCountResort: expiry under OrderHitCount must (a) keep
// recently-hit entries whose hits marked the scan order dirty, and (b)
// leave the classifier consistent so the next lookup's lazy resort works
// off the surviving groups.
func TestExpireIdleHitCountResort(t *testing.T) {
	c := New(bitvec.HYP, Options{Order: OrderHitCount})
	loadFig3(t, c)
	// Hit mask 100 at t=100 (marks order dirty); others stay at t=0.
	for i := 0; i < 5; i++ {
		c.Lookup(hyp(4), 100)
	}
	if evicted := c.ExpireIdle(105, 10); evicted != 3 {
		t.Fatalf("evicted %d, want 3", evicted)
	}
	if c.EntryCount() != 1 || c.MaskCount() != 1 {
		t.Fatalf("post-expiry: %d entries, %d masks, want 1/1", c.EntryCount(), c.MaskCount())
	}
	// The survivor is the hammered 1** entry, now trivially at position 1.
	e, probes, ok := c.Lookup(hyp(4), 106)
	if !ok || probes != 1 {
		t.Errorf("survivor lookup: ok=%v probes=%d, want hit at position 1", ok, probes)
	}
	if ok && e.Hits != 6 {
		t.Errorf("survivor hits = %d, want 6 (5 pre-expiry + 1)", e.Hits)
	}
	mask := bitvec.PrefixMask(bitvec.HYP, 0, 1)
	if pos := c.ProbePosition(mask); pos != 1 {
		t.Errorf("survivor mask position = %d, want 1", pos)
	}
}

// TestLookupZeroAlloc asserts the classifier hot path never allocates, on
// hits and on full-scan misses — the tentpole invariant. The scratch-free
// probe (HashMasked/EqualMasked over the mask's nonzero words) is what
// makes this possible.
func TestLookupZeroAlloc(t *testing.T) {
	l := bitvec.IPv4Tuple
	c := New(l, Options{DisableOverlapCheck: true})
	populateDistinctMasks(c, l, 64)
	hit := bitvec.NewVec(l)
	sip, _ := l.FieldIndex("ip_src")
	dp, _ := l.FieldIndex("tp_dst")
	hit.SetFieldBit(l, sip, 0)
	hit.SetFieldBit(l, dp, 0) // the (i=1, j=1) entry's key
	if _, _, ok := c.Lookup(hit, 0); !ok {
		t.Fatal("expected probe header to hit")
	}
	miss := bitvec.NewVec(l)
	miss.SetField(l, sip, 0xffffffff)
	if _, _, ok := c.Lookup(miss, 0); ok {
		t.Fatal("expected probe header to miss")
	}
	if a := testing.AllocsPerRun(200, func() { c.Lookup(hit, 0) }); a != 0 {
		t.Errorf("Lookup(hit) allocates %v/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { c.Lookup(miss, 0) }); a != 0 {
		t.Errorf("Lookup(miss) allocates %v/op, want 0", a)
	}
	hs := []bitvec.Vec{hit, hit, hit}
	out := make([]BatchResult, len(hs))
	if a := testing.AllocsPerRun(200, func() { c.LookupBatch(hs, 0, out) }); a != 0 {
		t.Errorf("LookupBatch allocates %v/op, want 0", a)
	}
}

// FuzzHashMasked cross-checks the fused sparse primitives against their
// materialised equivalents: HashMasked/SparseMask.Hash must equal
// keyHash(h AND m), and EqualMasked/SparseMask.EqualKey must agree with
// building h AND m and comparing, for arbitrary header/mask/key words.
func FuzzHashMasked(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0xffffffffffffffff), uint64(0xff), uint64(1), uint64(2), uint64(3), uint64(4))
	f.Add(uint64(1)<<63, uint64(0), uint64(0), uint64(0xf0f0), uint64(1), uint64(0))
	f.Fuzz(func(t *testing.T, h0, h1, m0, m1, k0, k1 uint64) {
		l := bitvec.IPv4Tuple
		h, m, kh := bitvec.NewVec(l), bitvec.NewVec(l), bitvec.NewVec(l)
		copy(h, []uint64{h0, h1})
		copy(m, []uint64{m0, m1})
		copy(kh, []uint64{k0, k1})
		words := m.NonzeroWords()
		masked := h.And(m)
		if got, want := bitvec.HashMasked(h, m, words), keyHash(masked); got != want {
			t.Errorf("HashMasked = %#x, keyHash(h AND m) = %#x", got, want)
		}
		key := kh.And(m) // canonical: key ⊆ mask
		if got, want := bitvec.EqualMasked(key, h, m, words), key.Equal(masked); got != want {
			t.Errorf("EqualMasked = %v, materialised equality = %v", got, want)
		}
		if sp, ok := bitvec.NewSparseMask(m); ok {
			if got, want := sp.Hash(h), keyHash(masked); got != want {
				t.Errorf("SparseMask.Hash = %#x, keyHash(h AND m) = %#x", got, want)
			}
			if got, want := sp.EqualKey(key, h), key.Equal(masked); got != want {
				t.Errorf("SparseMask.EqualKey = %v, materialised equality = %v", got, want)
			}
		} else {
			t.Error("IPv4Tuple mask must fit a SparseMask inline")
		}
	})
}

func TestHashOrderDeterministic(t *testing.T) {
	build := func() []bitvec.Vec {
		c := New(bitvec.HYP, Options{})
		loadFig3(t, c)
		return c.Masks()
	}
	a, b := build(), build()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("OrderHash scan order not deterministic")
		}
	}
}

// TestAgainstLinearReference is the core correctness property: TSS lookup
// over a disjoint entry set returns exactly what a linear scan of the same
// entries returns, for random entry sets and random headers.
func TestAgainstLinearReference(t *testing.T) {
	l := bitvec.IPv4Tuple
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 10; trial++ {
		c := New(l, Options{})
		var ref []*Entry
		// Grow a random disjoint set by attempted inserts.
		for i := 0; i < 300; i++ {
			key, mask := bitvec.NewVec(l), bitvec.NewVec(l)
			for f := 0; f < l.NumFields(); f++ {
				plen := rng.Intn(l.Field(f).Width + 1)
				for b := 0; b < plen; b++ {
					mask.SetFieldBit(l, f, b)
					if rng.Intn(2) == 1 {
						key.SetFieldBit(l, f, b)
					}
				}
			}
			e := &Entry{Key: key, Mask: mask, Action: flowtable.Action(rng.Intn(2))}
			if err := c.Insert(e, 0); err == nil {
				ref = append(ref, e)
			}
		}
		if len(ref) < 2 {
			t.Fatal("random generator produced no insertable entries")
		}
		for n := 0; n < 500; n++ {
			h := bitvec.NewVec(l)
			for f := 0; f < l.NumFields(); f++ {
				h.SetField(l, f, rng.Uint64())
			}
			got, _, ok := c.Lookup(h, 0)
			var want *Entry
			for _, e := range ref {
				if bitvec.Covers(e.Key, e.Mask, h) {
					want = e
					break // disjointness: at most one can match
				}
			}
			if (want != nil) != ok || (ok && got != want) {
				t.Fatalf("lookup mismatch: got %v ok=%v, want %v", got, ok, want)
			}
		}
	}
}

// TestDisjointnessInvariantHolds checks that after any accepted insert
// sequence all entries are pairwise disjoint (Inv(2)).
func TestDisjointnessInvariantHolds(t *testing.T) {
	l := bitvec.HYP2
	rng := rand.New(rand.NewSource(5))
	c := New(l, Options{})
	for i := 0; i < 200; i++ {
		key, mask := bitvec.NewVec(l), bitvec.NewVec(l)
		for b := 0; b < l.Bits(); b++ {
			if rng.Intn(2) == 1 {
				mask.SetBit(b)
				if rng.Intn(2) == 1 {
					key.SetBit(b)
				}
			}
		}
		c.Insert(&Entry{Key: key, Mask: mask, Action: flowtable.Drop}, 0)
	}
	es := c.Entries()
	for i := range es {
		for j := i + 1; j < len(es); j++ {
			if bitvec.Overlap(es[i].Key, es[i].Mask, es[j].Key, es[j].Mask) {
				t.Fatalf("entries %d and %d overlap after inserts", i, j)
			}
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				c.Lookup(hyp(uint64(rng.Intn(8))), int64(i))
			}
		}(int64(w))
	}
	wg.Wait()
	if s := c.Stats(); s.Lookups != 8000 {
		t.Errorf("lookups = %d, want 8000", s.Lookups)
	}
}

func TestDump(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	c.Lookup(hyp(4), 7)
	var buf strings.Builder
	c.Dump(&buf, bitvec.HYP)
	out := buf.String()
	for _, needle := range []string{"mask 1/3", "mask 3/3", "hits=1", "last=7", "001"} {
		if !strings.Contains(out, needle) {
			t.Errorf("dump missing %q:\n%s", needle, out)
		}
	}
}

func TestEntryFormat(t *testing.T) {
	e := entry(bitvec.HYP, "01*", flowtable.Drop)
	if got := e.Format(bitvec.HYP); got != "01* -> deny" {
		t.Errorf("Format = %q", got)
	}
}

// Observation 1: lookup cost grows linearly with |M|. We verify the probe
// count (the algorithmic quantity) exactly; wall-clock linearity is
// exercised by BenchmarkLookupMasks below and the top-level Fig. 9a bench.
func TestObservation1ProbesLinear(t *testing.T) {
	l := bitvec.IPv4Tuple
	for _, masks := range []int{1, 4, 16, 64} {
		c := New(l, Options{DisableOverlapCheck: true})
		populateDistinctMasks(c, l, masks)
		h := bitvec.NewVec(l)
		h.SetField(l, 0, 0xffffffff) // matches nothing installed
		_, probes, ok := c.Lookup(h, 0)
		if ok {
			t.Fatal("expected a miss")
		}
		if probes != masks {
			t.Errorf("miss probes = %d, want |M| = %d", probes, masks)
		}
	}
}

// populateDistinctMasks installs n entries with n distinct masks shaped
// like TSE deny megaflows (prefix combinations over ip_src/tp_dst, with an
// ip_dst prefix dimension unlocking mask counts past 512; mirrored by
// populateMasks in internal/experiments/benchjson.go — keep in sync so the
// JSON perf trajectory stays comparable). The first 512
// masks (k == 0) are pairwise disjoint; the k > 0 extension reuses the same
// ip_src/tp_dst key bits and may overlap the k == 0 plane, so callers
// needing more than 512 masks must disable the overlap check (the
// large-mask-count benchmarks do).
func populateDistinctMasks(c *Classifier, l *bitvec.Layout, n int) {
	sip, _ := l.FieldIndex("ip_src")
	dip, _ := l.FieldIndex("ip_dst")
	dp, _ := l.FieldIndex("tp_dst")
	count := 0
	for k := 0; k <= 32 && count < n; k++ {
		for i := 1; i <= 32 && count < n; i++ {
			for j := 1; j <= 16 && count < n; j++ {
				mask := bitvec.PrefixMask(l, sip, i).Or(bitvec.PrefixMask(l, dp, j))
				key := bitvec.NewVec(l)
				// Key: 0...01 prefix in each field so entries are disjoint
				// (first i-1 bits zero, bit i-1 set).
				key.SetFieldBit(l, sip, i-1)
				key.SetFieldBit(l, dp, j-1)
				if k > 0 {
					mask = mask.Or(bitvec.PrefixMask(l, dip, k))
					key.SetFieldBit(l, dip, k-1)
				}
				if err := c.Insert(&Entry{Key: key.And(mask), Mask: mask, Action: flowtable.Drop}, 0); err != nil {
					panic(err)
				}
				count++
			}
		}
	}
	if count < n {
		panic(fmt.Sprintf("could only build %d masks", count))
	}
}

func BenchmarkLookupMasks(b *testing.B) {
	l := bitvec.IPv4Tuple
	for _, masks := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("masks=%d", masks), func(b *testing.B) {
			c := New(l, Options{DisableOverlapCheck: true})
			populateDistinctMasks(c, l, masks)
			h := bitvec.NewVec(l)
			h.SetField(l, 0, 0xffffffff)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Lookup(h, 0) // worst case: full mask scan
			}
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	l := bitvec.IPv4Tuple
	c := New(l, Options{DisableOverlapCheck: true})
	sip, _ := l.FieldIndex("ip_src")
	key := bitvec.NewVec(l)
	mask := bitvec.FullMask(l)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key.SetField(l, sip, uint64(i))
		c.Insert(&Entry{Key: key.Clone(), Mask: mask, Action: flowtable.Drop}, 0)
	}
}
