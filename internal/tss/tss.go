// Package tss implements the Tuple Space Search (TSS) packet classifier
// [Srinivasan, Suri, Varghese, SIGCOMM'99] as used by the megaflow cache
// (MFC) of Open vSwitch and other hypervisor switches (§2.2 of the paper).
//
// The classifier is an unordered set of key-mask pairs C = {(K, M)}. It
// maintains the list of distinct masks M (the "tuple space") and, for each
// mask M ∈ M, a hash table H_M storing the keys with that mask. Lookup
// (Alg. 1 in the paper's appendix) probes each mask in turn: apply M to the
// packet header, look the result up in H_M, return on the first hit.
//
// Because all entries are kept disjoint (independence invariant Inv(2),
// §3.2), the first hit is the only hit and lookup can early-exit. The cost
// of that simplification is the paper's central observation:
//
//	Observation 1. The time-complexity of TSS lookup grows linearly with
//	the number of distinct masks as O(|M|) and the space-complexity grows
//	linearly with the number of entries as O(|C|).
//
// The Tuple Space Explosion attack inflates |M|; see package vswitch for
// how the slow path's megaflow generation lets an adversary do that, and
// package core for the attack itself.
//
// # Concurrency: copy-on-write snapshots
//
// The classifier's read path is lock-free. The scan state (mask order,
// per-mask subtables, inlined probe data) lives in an immutable snapshot
// published through an atomic pointer, the Go equivalent of OVS's RCU
// cmap/pvector in dpcls: readers load the current snapshot and scan it
// without synchronisation, writers build the next snapshot under a mutex
// (cloning only the mask groups they touch) and publish it atomically.
// A retired snapshot lives until its last in-flight reader drops it; the
// garbage collector plays the role of the RCU grace period. Hit counters
// are sharded per reader handle so parallel PMD workers never contend on
// a shared counter cache line.
package tss

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// MaskOrder selects the order in which Lookup scans the mask list. The
// paper's measurements (§5.4: "the flow completion time only increases half
// as high as the number of MFC masks") correspond to the victim's mask
// sitting at a uniformly random position in the scan, which OrderHash
// models deterministically. OrderInsertion and OrderHitCount exist for
// ablation (OVS's userspace dpcls sorts its subtables by hit count).
type MaskOrder int

const (
	// OrderHash scans masks sorted by a hash of their bits: a stable,
	// adversary-independent order in which any particular mask lands at an
	// effectively uniform position. Default.
	OrderHash MaskOrder = iota
	// OrderInsertion scans masks oldest-first.
	OrderInsertion
	// OrderHitCount scans masks most-hit-first, re-sorted lazily. Models
	// the OVS userspace classifier's pvector priority optimisation.
	OrderHitCount
	// OrderProbeCost scans masks by hits per unit of *measured* probe
	// cost, re-sorted lazily like OrderHitCount. Staged lookup makes
	// per-probe cost non-uniform — a mask whose probes mostly bail at the
	// first stage costs a word touch, one that rarely bails costs the full
	// masked hash+compare over its nonzero words — so the scan-order
	// objective is hits/cost, not raw hits: a cheap mask in an early
	// position taxes every lookup less than an expensive one with the same
	// hit count. Cost is measured per group as the mean words touched per
	// probe (stage-skip rate x nonzero words); with staging off (or no
	// skips observed) every mask costs its word count and, at equal word
	// counts, the order degenerates to OrderHitCount exactly — the
	// equivalence the probecost tests pin down.
	OrderProbeCost
)

// resorts reports whether the order re-sorts lazily from measured traffic.
func (o MaskOrder) resorts() bool { return o == OrderHitCount || o == OrderProbeCost }

// Entry is one megaflow: a disjoint key-mask pair with a cached action.
type Entry struct {
	// Key and Mask define the match (Key must equal Key AND Mask).
	Key, Mask bitvec.Vec
	// Action is the cached slow-path decision.
	Action flowtable.Action
	// OutPort is the destination for Forward actions.
	OutPort int
	// RuleName records which flow-table rule generated the entry
	// (diagnostics and MFCGuard pattern matching).
	RuleName string
	// Port is the ingress vport whose flow miss installed the entry
	// (0 for single-port deployments and direct inserts). The revalidator
	// aggregates its dump statistics by this field to drive per-port
	// adaptive upcall quotas: a port whose megaflow footprint explodes is
	// the one flooding the slow path.
	Port int
	// LastUsed is the virtual time of the last hit or the install time.
	// The simulator advances virtual time in seconds.
	LastUsed int64
	// Hits counts lookups served by this entry.
	Hits uint64
	// LastUsed and Hits are updated atomically by concurrent lookups; the
	// other fields are never mutated once the entry is inserted (refresh
	// installs swap the whole entry), so lookups may read them lock-free.
	// Entry pointers are shared between successive snapshots, so the
	// counters survive copy-on-write group clones.
}

// Format renders the entry figure-style: "01*|1111 -> deny".
func (e *Entry) Format(l *bitvec.Layout) string {
	return fmt.Sprintf("%s -> %s", bitvec.FormatMasked(l, e.Key, e.Mask), e.Action)
}

// LastUsedAt atomically reads a live entry's last-used stamp. Sweep
// predicates (DeleteWhere, vswitch.SweepMegaflows deciders) run while
// lock-free lookups refresh the stamp, so they must read through this
// accessor; the copies returned by Entries carry plain values and may be
// read directly.
func (e *Entry) LastUsedAt() int64 { return atomic.LoadInt64(&e.LastUsed) }

// HitCount atomically reads a live entry's hit counter (see LastUsedAt).
func (e *Entry) HitCount() uint64 { return atomic.LoadUint64(&e.Hits) }

// stageFilter is a 256-bit Bloom filter over the partial stage hashes of a
// group's entries: one bit per possible low byte of the running stage
// hash. A probe whose accumulated hash has no bit set can bail before
// touching the group's later-stage words or its slot table. False
// positives only cost the skipped early-exit; the final slot probe still
// confirms exactly. OVS's classifier keeps the same structure per subtable
// ("staged lookup" in lib/classifier.c).
type stageFilter [4]uint64

func (f *stageFilter) add(h uint64) { f[(h>>6)&3] |= 1 << (h & 63) }

func (f *stageFilter) has(h uint64) bool { return f[(h>>6)&3]>>(h&63)&1 == 1 }

// group is one tuple: a mask plus the hash table of keys sharing it,
// OVS-subtable style. Two precomputations make the lookup probe cheap:
// words caches the mask's nonzero word indices, so hashing and comparing a
// header under the mask touches only the words the mask can constrain
// (miniflow-style sparsity) and never materialises the masked header; and
// entries live in a power-of-two open-addressing slot array (fingerprint +
// entry pointer, linear probing) rather than a Go map, so a probe is an
// array walk with no map-runtime calls and no allocation.
//
// Groups are copy-on-write: once a snapshot referencing the group has been
// published (frozen == true), writers clone the group before mutating it,
// so concurrent readers always scan a consistent slot array. The hits
// counter is shared across clones through a pointer so no hit accounting
// is lost when a group is copied.
type group struct {
	// slots and sparse lead the struct so a lookup probe's loads stay
	// within the group's first cache lines.
	slots    []slot
	sparse   bitvec.SparseMask // inline nonzero-word view of mask
	sparseOK bool              // mask fits inline; else use mask/words
	frozen   bool              // published in a snapshot; clone to mutate
	solo     *Entry            // the sole entry while n == 1, else nil
	soloFP   uint64            // solo's fingerprint

	// stageOff are the staged-lookup slot offsets: stage s covers sparse
	// slots [stageOff[s], stageOff[s+1]). nil (or a single effective
	// stage) means the group probes unstaged. filters[s] is the Bloom
	// filter of entry hashes accumulated through stage s (checked after
	// every stage but the last, which the slot table itself decides).
	stageOff []uint8
	filters  []stageFilter

	mask    bitvec.Vec
	maskKey string
	hash    uint64
	words   []int // nonzero word indices of mask, in order
	n       int
	hits    *uint64 // shared across copy-on-write clones
	// probes and skips measure the group's per-probe cost for
	// OrderProbeCost (shared across clones like hits): probes counts scan
	// probes of this mask, skips the subset that bailed at a stage
	// boundary. Only maintained while the classifier runs OrderProbeCost,
	// so the default orders pay nothing for them.
	probes *uint64
	skips  *uint64
	seq    int
}

// slot is one open-addressing cell: the key's fingerprint (keyHash) for a
// cheap first-pass reject, plus the entry. e == nil marks the cell empty.
type slot struct {
	fp uint64
	e  *Entry
}

// minGroupSlots keeps even one-entry groups probe-cheap without resizing on
// every early insert.
const minGroupSlots = 8

// newGroup builds an empty group for the (already cloned) mask. stages is
// the classifier's staged-lookup word boundary list (nil when staging is
// off).
func newGroup(mask bitvec.Vec, maskKey string, seq int, stages []int) *group {
	g := &group{
		mask:    mask,
		maskKey: maskKey,
		hash:    mask.Hash(),
		words:   mask.NonzeroWords(),
		slots:   make([]slot, minGroupSlots),
		hits:    new(uint64),
		probes:  new(uint64),
		skips:   new(uint64),
		seq:     seq,
	}
	g.sparse, g.sparseOK = bitvec.NewSparseMask(mask)
	if g.sparseOK && len(stages) > 1 {
		g.stageOff = buildStageOff(&g.sparse, stages)
		if n := len(g.stageOff); n > 2 {
			g.filters = make([]stageFilter, n-2)
		}
	}
	return g
}

// buildStageOff converts the layout's word-range stage boundaries into
// sparse-slot offsets for this mask, collapsing stages the mask has no
// words in. Returns nil when the mask effectively has a single stage (all
// its nonzero words fall in one range), in which case staging would be a
// full-width probe anyway.
func buildStageOff(sp *bitvec.SparseMask, bounds []int) []uint8 {
	n := sp.N()
	off := make([]uint8, 1, len(bounds)+1)
	k := 0
	for _, b := range bounds {
		for k < n && sp.WordIndex(k) < b {
			k++
		}
		if int(off[len(off)-1]) != k {
			off = append(off, uint8(k))
		}
	}
	if len(off) < 3 {
		return nil
	}
	return off
}

// clone returns a mutable copy of the group sharing the immutable pieces
// (mask, words, stage offsets, hit counter) and copying everything a
// writer mutates in place (slot array, Bloom filters, counts).
func (g *group) clone() *group {
	ng := *g
	ng.slots = append([]slot(nil), g.slots...)
	ng.filters = append([]stageFilter(nil), g.filters...)
	ng.frozen = false
	return &ng
}

// hashHeader returns the fingerprint of h under the group's mask,
// KeyHash(h AND mask), via the inline sparse view when the mask fits.
func (g *group) hashHeader(h bitvec.Vec) uint64 {
	if g.sparseOK {
		return g.sparse.Hash(h)
	}
	return bitvec.HashMasked(h, g.mask, g.words)
}

// equalKey reports key == (h AND mask) for a stored (canonical) key.
func (g *group) equalKey(key, h bitvec.Vec) bool {
	if g.sparseOK {
		return g.sparse.EqualKey(key, h)
	}
	return bitvec.EqualMasked(key, h, g.mask, g.words)
}

// keyHash mixes the vector words into a bucket fingerprint without
// allocating. It is bitvec.KeyHash, shared with HashMasked so that the
// masked fast path and the exact writer-side paths agree on fingerprints.
func keyHash(v bitvec.Vec) uint64 { return bitvec.KeyHash(v) }

// findMasked returns the entry matching header h under the group's mask
// (the one whose key equals h AND mask), or nil. This is the unstaged
// probe: hash and compare run fused over the mask's nonzero words only, so
// no scratch vector and no allocation.
func (g *group) findMasked(h bitvec.Vec) *Entry {
	fp := g.hashHeader(h)
	return g.probeSlots(fp, h)
}

// findMaskedStaged is findMasked with the staged early bail: the
// fingerprint is accumulated stage by stage (bitvec.SparseMask.HashRange's
// incremental property) and each pre-final stage's running value is
// checked against the group's Bloom filter of entry hashes. A probe whose
// partial hash matches no entry bails without touching the remaining
// stages' header words or the slot table; skipped reports that early exit
// (the quantity Stats.StageSkips counts).
func (g *group) findMaskedStaged(h bitvec.Vec) (e *Entry, skipped bool) {
	last := len(g.stageOff) - 1
	if last < 2 {
		return g.findMasked(h), false
	}
	var fp uint64
	for s := 0; s < last; s++ {
		fp ^= g.sparse.HashRange(h, int(g.stageOff[s]), int(g.stageOff[s+1]))
		if s < last-1 && !g.filters[s].has(fp) {
			return nil, true
		}
	}
	return g.probeSlots(fp, h), false
}

// probeSlots walks the open-addressing slot array for the fingerprint.
func (g *group) probeSlots(fp uint64, h bitvec.Vec) *Entry {
	m := uint64(len(g.slots) - 1)
	for i := fp & m; ; i = (i + 1) & m {
		s := g.slots[i]
		if s.e == nil {
			return nil
		}
		if s.fp == fp && g.equalKey(s.e.Key, h) {
			return s.e
		}
	}
}

// find returns the entry in g whose key equals k, or nil (writer-side
// exact probe; k must already be canonical for the mask).
func (g *group) find(k bitvec.Vec) *Entry {
	fp := keyHash(k)
	m := uint64(len(g.slots) - 1)
	for i := fp & m; ; i = (i + 1) & m {
		s := g.slots[i]
		if s.e == nil {
			return nil
		}
		if s.fp == fp && s.e.Key.Equal(k) {
			return s.e
		}
	}
}

// put inserts e (whose key must not already be present), growing the slot
// array past 3/4 load and folding the entry into the stage filters.
func (g *group) put(e *Entry) {
	if (g.n+1)*4 > len(g.slots)*3 {
		old := g.slots
		g.slots = make([]slot, len(old)*2)
		for _, s := range old {
			if s.e != nil {
				g.insertSlot(s.fp, s.e)
			}
		}
	}
	fp := keyHash(e.Key)
	g.insertSlot(fp, e)
	g.n++
	if g.n == 1 {
		g.solo, g.soloFP = e, fp
	} else {
		g.solo = nil
	}
	// Bloom bits only accumulate on insert; remove rebuilds from scratch.
	g.addToFilters(e)
}

// addToFilters records e's partial stage hashes in the group's Bloom
// filters. filters[s] holds hashes accumulated through sparse slots
// [0, stageOff[s+1]); the entry's key is canonical (key ⊆ mask), so
// hashing the key under the group's own sparse view yields exactly the
// running value a matching header produces at that stage.
func (g *group) addToFilters(e *Entry) {
	for s := range g.filters {
		g.filters[s].add(g.sparse.HashRange(e.Key, 0, int(g.stageOff[s+1])))
	}
}

// rebuildFilters recomputes the stage filters from the live entries
// (Bloom filters cannot delete; called after remove).
func (g *group) rebuildFilters() {
	if g.filters == nil {
		return
	}
	for s := range g.filters {
		g.filters[s] = stageFilter{}
	}
	for _, sl := range g.slots {
		if sl.e != nil {
			g.addToFilters(sl.e)
		}
	}
}

// insertSlot places e at the first free cell of its probe chain.
func (g *group) insertSlot(fp uint64, e *Entry) {
	m := uint64(len(g.slots) - 1)
	for i := fp & m; ; i = (i + 1) & m {
		if g.slots[i].e == nil {
			g.slots[i] = slot{fp: fp, e: e}
			return
		}
	}
}

// replace swaps old for e in its slot (same key, so same fingerprint).
func (g *group) replace(old, e *Entry) {
	m := uint64(len(g.slots) - 1)
	for i := keyHash(old.Key) & m; ; i = (i + 1) & m {
		if g.slots[i].e == old {
			g.slots[i].e = e
			if g.solo == old {
				g.solo = e
			}
			return
		}
		if g.slots[i].e == nil {
			return
		}
	}
}

// remove deletes the entry with key k, reporting success. Deletion uses
// backward-shift compaction (no tombstones): the probe cluster after the
// hole is re-packed so linear probing stays correct.
func (g *group) remove(k bitvec.Vec) bool {
	fp := keyHash(k)
	m := uint64(len(g.slots) - 1)
	i := fp & m
	for {
		s := g.slots[i]
		if s.e == nil {
			return false
		}
		if s.fp == fp && s.e.Key.Equal(k) {
			break
		}
		i = (i + 1) & m
	}
	j := i
	for {
		j = (j + 1) & m
		s := g.slots[j]
		if s.e == nil {
			break
		}
		// s may fill the hole at i iff its home cell is cyclically at or
		// before i (moving it cannot break its own probe chain).
		if (j-s.fp)&m >= (j-i)&m {
			g.slots[i] = s
			i = j
		}
	}
	g.slots[i] = slot{}
	g.n--
	g.solo = nil
	if g.n == 1 {
		for _, s := range g.slots {
			if s.e != nil {
				g.solo, g.soloFP = s.e, s.fp
				break
			}
		}
	}
	g.rebuildFilters()
	return true
}

// each calls f for every entry; f returning false stops the walk.
func (g *group) each(f func(*Entry) bool) {
	for _, s := range g.slots {
		if s.e != nil && !f(s.e) {
			return
		}
	}
}

// Stats aggregates classifier activity counters.
type Stats struct {
	// Lookups is the total number of Lookup calls.
	Lookups uint64
	// Hits and Misses partition Lookups.
	Hits, Misses uint64
	// Probes is the total number of mask probes performed; Probes/Lookups
	// is the average per-packet classification effort the attack inflates.
	Probes uint64
	// StageSkips counts probes that bailed at a stage boundary before
	// doing the full-width hash+compare work: a staged probe rejected on
	// its first-stage words (or, for one-entry groups, on an early key
	// word). StageSkips/Probes is the fraction of the O(|M|) scan the
	// staging optimisation reduced to one-or-two-word touches.
	StageSkips uint64
	// Inserted and Deleted count entry lifecycle events.
	Inserted, Deleted uint64
	// Publishes counts snapshot publications: the number of times the
	// writer paid the O(|M|) copy-on-write probe-mirror copy. A K-entry
	// InsertBatch raises it by exactly one — the amortisation the batched
	// slow path exists for.
	Publishes uint64
}

// Options configures a Classifier.
type Options struct {
	// Order selects the mask scan order (default OrderHash).
	Order MaskOrder
	// DisableOverlapCheck skips the O(|C|) independence verification on
	// Insert. The vswitch megaflow generator guarantees disjointness by
	// construction, so its pipeline may disable the check; tests and
	// direct users keep it on.
	DisableOverlapCheck bool
	// DisableStagedLookup turns off the staged per-probe early bail and
	// makes every probe the full masked hash+compare, the pre-staging
	// behaviour. The OVS counterpart is the classifier's staged lookup
	// (lib/classifier.c): OVS has no knob for it, but disabling it here
	// is what the staged-vs-unstaged ablation and the equivalence tests
	// measure against.
	DisableStagedLookup bool
	// Stages overrides the staged-lookup word boundaries (ascending,
	// final element = layout words). nil derives them from the layout's
	// field names (metadata → L2 → L3 → L4, bitvec.Layout.StageBoundaries),
	// which is what OVS's flow-struct offsets hard-code.
	Stages []int
}

// statShard is one reader handle's private counter block, padded to a
// cache line so parallel workers never false-share. Updates are atomic
// (Stats aggregates shards while readers run) but uncontended: each
// handle owns its shard.
type statShard struct {
	lookups, hits, misses, probes, stageSkips uint64
	_                                         [3]uint64 // pad to 64 bytes
}

// Handle is a per-reader view of the classifier: same lock-free lookups,
// but hit statistics land in a private cache-line-padded shard, so
// parallel PMD workers scanning the shared classifier never contend on
// counter memory. Create one Handle per worker (NewHandle); the
// classifier's own Lookup/LookupBatch use a default handle.
type Handle struct {
	c  *Classifier
	sh *statShard
}

// Classifier is a TSS megaflow cache, safe for concurrent use. Readers
// (Lookup, LookupBatch, Entries, Masks, Dump, MaskCount, EntryCount,
// ProbePosition) are lock-free: they load the current snapshot from an
// atomic pointer and never block, so PMD-style datapath workers scale
// without serialising on a classifier lock. Writers (Insert, Delete,
// DeleteWhere, ExpireIdle) serialise on a mutex, clone only the mask
// groups they touch (copy-on-write), and publish the next snapshot
// atomically.
type Classifier struct {
	mu      sync.Mutex // serialises writers; readers never take it
	layout  *bitvec.Layout
	groups  []*group    // authoritative scan order (writer-side)
	probes  []scanProbe // mirror of groups' probe records, kept in sync
	thawed  []*group    // groups created/cloned since the last publish
	byMask  map[string]*group
	nEntry  int
	nextSeq int
	opts    Options
	stages  []int // staged-lookup word boundaries; nil = staging off
	staged  bool

	snap  atomic.Pointer[snapshot]
	dirty atomic.Bool // OrderHitCount/OrderProbeCost needs re-sort

	def      *Handle
	shardsMu sync.Mutex
	shards   []*statShard
	costKeys []float64 // resort scratch (under mu), OrderProbeCost only

	inserted, deleted, published uint64 // writer-side counters, under mu
}

// snapshot is one immutable published scan state: the flat probe list in
// scan order (each record carries its group pointer, so the dump-style
// readers walk the same slice). Readers obtained it from the atomic
// pointer; nothing in it is mutated after publication (entry and hit
// counters are updated atomically through shared pointers).
type snapshot struct {
	probes []scanProbe
	nEntry int
}

// scanProbe is one step of the lookup scan, flattened so the O(|M|) walk
// streams sequential memory the hardware prefetcher can follow instead of
// chasing a pointer per mask. Groups holding exactly one entry under an
// inline-able mask — the shape TSE attack state takes, one megaflow per
// inflated mask — have their *first-stage* probe fully inlined: the first
// nonzero mask word and the entry's key word under it sit in the record
// itself, so the staged probe decides most misses with a single AND and
// compare against streamed bytes, never dereferencing the group. The
// record is kept to 48 bytes deliberately — the 4096-mask scan is memory-
// bandwidth-bound, so bytes per probe matter more than instructions.
type scanProbe struct {
	e0   *Entry  // sole entry of a one-entry inline-mask group, else nil
	hits *uint64 // group hit counter, shared across snapshots
	g    *group
	mw0  uint64 // first nonzero mask word of the solo group's mask
	kw0  uint64 // solo entry's key word under mw0
	idx0 uint8  // Vec word index of mw0
	n    uint8  // nonzero mask words of the solo group's mask
}

// buildProbe constructs the scan record for a group's current state.
// Writers call it whenever a group's membership or solo entry changes,
// keeping the writer-side probe mirror in sync with c.groups.
func buildProbe(g *group) scanProbe {
	p := scanProbe{g: g, hits: g.hits}
	if g.sparseOK && g.solo != nil {
		p.e0 = g.solo
		p.n = uint8(g.sparse.N())
		if p.n > 0 {
			wi := g.sparse.WordIndex(0)
			p.idx0 = uint8(wi)
			p.mw0 = g.sparse.MaskWord(0)
			p.kw0 = g.solo.Key[wi]
		}
	}
	return p
}

// publishLocked copies the writer-side mirror into the next snapshot and
// publishes it. Called under the writer lock after every mutation. The
// copy is the copy-on-write bill — O(|M|) memcpy per publish, the same
// shape as OVS's RCU pvector republish — but deliberately just a memcpy:
// probe records are maintained incrementally as groups change, not
// reconstructed per publish (an attack installing one megaflow per upcall
// pays memory bandwidth here, not pointer-chasing). Groups touched since
// the last publish are frozen so later writers clone before mutating
// (readers may scan this snapshot indefinitely).
func (c *Classifier) publishLocked() {
	sn := &snapshot{
		probes: append([]scanProbe(nil), c.probes...),
		nEntry: c.nEntry,
	}
	for _, g := range c.thawed {
		g.frozen = true
	}
	c.thawed = c.thawed[:0]
	c.published++
	c.snap.Store(sn)
}

// indexOfLocked returns g's position in the writer-side scan order.
func (c *Classifier) indexOfLocked(g *group) int {
	for i, gg := range c.groups {
		if gg == g {
			return i
		}
	}
	return -1
}

// removeAtLocked drops the group at scan position i from the writer-side
// lists and the mask index. The vacated tail slot is zeroed so a
// post-wipe shrink (MFCGuard deleting a whole attack state) does not pin
// deleted entries and groups through the slices' backing arrays.
func (c *Classifier) removeAtLocked(i int) {
	delete(c.byMask, c.groups[i].maskKey)
	n := len(c.groups) - 1
	copy(c.groups[i:], c.groups[i+1:])
	c.groups[n] = nil
	c.groups = c.groups[:n]
	copy(c.probes[i:], c.probes[i+1:])
	c.probes[n] = scanProbe{}
	c.probes = c.probes[:n]
}

// New creates an empty classifier over the layout.
func New(l *bitvec.Layout, opts Options) *Classifier {
	c := &Classifier{
		layout: l,
		byMask: make(map[string]*group),
		opts:   opts,
	}
	bounds := opts.Stages
	if bounds == nil {
		bounds = l.StageBoundaries()
	}
	if !opts.DisableStagedLookup && len(bounds) > 1 {
		c.stages = bounds
		c.staged = true
	}
	c.def = c.NewHandle()
	c.publishLocked()
	return c
}

// Layout returns the classifier's header layout.
func (c *Classifier) Layout() *bitvec.Layout { return c.layout }

// Staged reports whether the staged per-probe early bail is active.
func (c *Classifier) Staged() bool { return c.staged }

// NewHandle returns a reader handle with a private statistics shard.
// Handles are cheap and never expire; create one per worker goroutine.
func (c *Classifier) NewHandle() *Handle {
	sh := &statShard{}
	c.shardsMu.Lock()
	c.shards = append(c.shards, sh)
	c.shardsMu.Unlock()
	return &Handle{c: c, sh: sh}
}

// Lookup classifies header h at virtual time now. It returns the matching
// entry, the number of mask probes performed (the classification cost the
// attack drives up), and whether the lookup hit. Statistics land in the
// classifier's default handle; parallel workers should use per-worker
// handles (NewHandle) to keep counter cache lines private.
func (c *Classifier) Lookup(h bitvec.Vec, now int64) (*Entry, int, bool) {
	return c.def.Lookup(h, now)
}

// Lookup is Classifier.Lookup recording statistics in the handle's shard.
func (hd *Handle) Lookup(h bitvec.Vec, now int64) (*Entry, int, bool) {
	c := hd.c
	c.maybeResort()
	e, probes, _, ok := hd.lookupSnap(c.snap.Load(), h, now)
	return e, probes, ok
}

// lookupSnap runs Algorithm 1 over one snapshot: for M ∈ M, look up
// (h AND M) in H_M; first hit wins. Each probe runs fused over the mask's
// nonzero words (no scratch vector, no allocation), with the staged early
// bail skipping most of that work for non-matching masks. Hit accounting
// is atomic so any number of readers may run concurrently; scan
// statistics go to the handle's private shard.
func (hd *Handle) lookupSnap(sn *snapshot, h bitvec.Vec, now int64) (*Entry, int, int, bool) {
	c := hd.c
	if c.opts.Order == OrderProbeCost {
		// Probe-cost ranking needs per-group probe/skip accounting; it
		// runs in its own loop so the default orders pay nothing for it.
		return hd.lookupSnapTracked(sn, h, now)
	}
	staged := c.staged
	probes, skips := 0, 0
	for k := range sn.probes {
		p := &sn.probes[k]
		probes++
		var e *Entry
		if p.e0 != nil {
			if staged {
				// Inlined one-entry group: compare the first masked header
				// word against the inlined key word. A mismatch — the
				// overwhelmingly common case in the attack regime — bails
				// on streamed bytes alone; matching every nonzero mask
				// word IS the full match (the key is canonical), so a hit
				// needs no hash at all.
				if h[p.idx0]&p.mw0 != p.kw0 {
					if p.n > 1 {
						skips++
					}
				} else if p.n <= 1 {
					e = p.e0
				} else if p.g.sparse.EqualKey(p.e0.Key, h) {
					// First word agreed: confirm the remaining stage words
					// through the group (rare, so the extra dereference is
					// off the common path).
					e = p.e0
				}
			} else {
				// Unstaged: decide on the group's fingerprint; only a
				// match (or a 2^-64 collision) touches the entry itself.
				if g := p.g; g.sparse.Hash(h) == g.soloFP && g.sparse.EqualKey(p.e0.Key, h) {
					e = p.e0
				}
			}
		} else if staged {
			var skip bool
			e, skip = p.g.findMaskedStaged(h)
			if skip {
				skips++
			}
		} else {
			e = p.g.findMasked(h)
		}
		if e != nil {
			atomic.AddUint64(&e.Hits, 1)
			atomic.StoreInt64(&e.LastUsed, now)
			atomic.AddUint64(p.hits, 1)
			if c.opts.Order == OrderHitCount {
				c.dirty.Store(true)
			}
			sh := hd.sh
			atomic.AddUint64(&sh.lookups, 1)
			atomic.AddUint64(&sh.hits, 1)
			atomic.AddUint64(&sh.probes, uint64(probes))
			atomic.AddUint64(&sh.stageSkips, uint64(skips))
			return e, probes, skips, true
		}
	}
	sh := hd.sh
	atomic.AddUint64(&sh.lookups, 1)
	atomic.AddUint64(&sh.misses, 1)
	atomic.AddUint64(&sh.probes, uint64(probes))
	atomic.AddUint64(&sh.stageSkips, uint64(skips))
	return nil, probes, skips, false
}

// lookupSnapTracked is lookupSnap for OrderProbeCost: identical probe
// semantics, plus per-group probe/skip counters — the measurements the
// cost-aware resort ranks by. Kept out of lookupSnap so the default
// orders' scan loop carries no accounting branches.
func (hd *Handle) lookupSnapTracked(sn *snapshot, h bitvec.Vec, now int64) (*Entry, int, int, bool) {
	c := hd.c
	staged := c.staged
	probes, skips := 0, 0
	for k := range sn.probes {
		p := &sn.probes[k]
		probes++
		var e *Entry
		var skip bool
		if p.e0 != nil {
			if staged {
				if h[p.idx0]&p.mw0 != p.kw0 {
					skip = p.n > 1
				} else if p.n <= 1 {
					e = p.e0
				} else if p.g.sparse.EqualKey(p.e0.Key, h) {
					e = p.e0
				}
			} else if g := p.g; g.sparse.Hash(h) == g.soloFP && g.sparse.EqualKey(p.e0.Key, h) {
				e = p.e0
			}
		} else if staged {
			e, skip = p.g.findMaskedStaged(h)
		} else {
			e = p.g.findMasked(h)
		}
		atomic.AddUint64(p.g.probes, 1)
		if skip {
			skips++
			atomic.AddUint64(p.g.skips, 1)
		}
		if e != nil {
			atomic.AddUint64(&e.Hits, 1)
			atomic.StoreInt64(&e.LastUsed, now)
			atomic.AddUint64(p.hits, 1)
			c.dirty.Store(true)
			sh := hd.sh
			atomic.AddUint64(&sh.lookups, 1)
			atomic.AddUint64(&sh.hits, 1)
			atomic.AddUint64(&sh.probes, uint64(probes))
			atomic.AddUint64(&sh.stageSkips, uint64(skips))
			return e, probes, skips, true
		}
	}
	sh := hd.sh
	atomic.AddUint64(&sh.lookups, 1)
	atomic.AddUint64(&sh.misses, 1)
	atomic.AddUint64(&sh.probes, uint64(probes))
	atomic.AddUint64(&sh.stageSkips, uint64(skips))
	return nil, probes, skips, false
}

// BatchResult is one per-header outcome of LookupBatch.
type BatchResult struct {
	// Entry is the matching megaflow (nil on a miss).
	Entry *Entry
	// Probes is the number of mask probes spent on this header.
	Probes int
	// OK reports whether the lookup hit.
	OK bool
}

// LookupBatch classifies consecutive headers from hs over a single
// snapshot load, filling out (which must be at least as long as hs) and
// returning the number of headers consumed. It stops after the first miss
// — in the OVS datapath a miss triggers an upcall whose megaflow install
// changes cache membership, so results computed past a miss could diverge
// from serial processing. Consuming until the first miss makes the batch
// exactly equivalent, header for header, to the same sequence of Lookup
// calls: the caller resolves the miss (out[n-1].OK == false) and re-enters
// with the remainder of the batch.
//
// Under OrderHitCount the scan order re-sorts at batch boundaries rather
// than between every pair of packets (as OVS's pvector does); OrderHash and
// OrderInsertion are unaffected.
func (c *Classifier) LookupBatch(hs []bitvec.Vec, now int64, out []BatchResult) int {
	return c.def.LookupBatch(hs, now, out)
}

// LookupBatch is Classifier.LookupBatch recording statistics in the
// handle's shard.
func (hd *Handle) LookupBatch(hs []bitvec.Vec, now int64, out []BatchResult) int {
	if len(hs) == 0 {
		return 0
	}
	c := hd.c
	c.maybeResort()
	sn := c.snap.Load()
	n := 0
	for _, h := range hs {
		e, probes, _, ok := hd.lookupSnap(sn, h, now)
		out[n] = BatchResult{Entry: e, Probes: probes, OK: ok}
		n++
		if !ok {
			break
		}
	}
	return n
}

// scanProbeBytes approximates the in-memory size of one probe-mirror
// record (48 bytes on 64-bit hosts: three pointers, two words, two
// packed bytes with padding). PrefetchScan uses it to translate a
// cache-line budget into a record count.
const scanProbeBytes = 48

// PrefetchScan touches the leading `lines` cache lines of the current
// snapshot's probe mirror — the memory the next lookup's scan will
// stream through — and returns the XOR of the touched mask words so the
// caller can sink it (Go has no prefetch intrinsic; the "prefetch" is a
// plain load, and sinking the result keeps the compiler from eliding
// it). This is the probe-mirror counterpart of the EMC's PrefetchBatch:
// the scan is hit-count ordered, so its head holds the hot groups and a
// bounded depth warms where victim lookups resolve, without paying a
// full O(|M|) touch pass per burst in the attack regime. It takes no
// locks (snapshot reads are lock-free) and performs no allocation.
func (hd *Handle) PrefetchScan(lines int) uint64 {
	if lines <= 0 {
		return 0
	}
	sn := hd.c.snap.Load()
	n := lines * 64 / scanProbeBytes
	if n > len(sn.probes) {
		n = len(sn.probes)
	}
	var sink uint64
	for k := 0; k < n; k++ {
		sink ^= sn.probes[k].mw0
	}
	return sink
}

// Stats returns the read-path counters recorded through this handle only
// (its private shard): the per-worker share of lookups, hits, misses,
// probes, and stage skips. Lifecycle counters (Inserted/Deleted) are
// writer-side and always zero here; use Classifier.Stats for totals.
func (hd *Handle) Stats() Stats {
	return Stats{
		Lookups:    atomic.LoadUint64(&hd.sh.lookups),
		Hits:       atomic.LoadUint64(&hd.sh.hits),
		Misses:     atomic.LoadUint64(&hd.sh.misses),
		Probes:     atomic.LoadUint64(&hd.sh.probes),
		StageSkips: atomic.LoadUint64(&hd.sh.stageSkips),
	}
}

// maybeResort restores hit-count (or probe-cost) order before a read-path
// scan. At most one reader performs the re-sort (TryLock); everyone else
// proceeds with the current snapshot, so the read path never blocks on the
// writer lock. OrderHash and OrderInsertion never enter it.
func (c *Classifier) maybeResort() {
	if c.opts.Order.resorts() && c.dirty.Load() {
		if c.mu.TryLock() {
			c.resortLocked()
			c.mu.Unlock()
		}
	}
}

// ErrOverlap is returned by Insert when the new entry would violate the
// independence invariant Inv(2).
type ErrOverlap struct {
	// Existing is the conflicting entry already in the cache.
	Existing *Entry
}

func (e *ErrOverlap) Error() string {
	return "tss: entry overlaps existing megaflow (Inv(2) violation)"
}

// mutableLocked returns a group safe to mutate under the writer lock plus
// its scan position: the group itself if it has never been published,
// else a clone wired into the writer-side index and scan list in its
// place (copy-on-write; the published snapshot keeps the frozen
// original). Callers must refresh c.probes[i] after mutating.
func (c *Classifier) mutableLocked(g *group) (*group, int) {
	i := c.indexOfLocked(g)
	if !g.frozen {
		return g, i
	}
	ng := g.clone()
	c.byMask[ng.maskKey] = ng
	c.groups[i] = ng
	c.thawed = append(c.thawed, ng)
	return ng, i
}

// Insert adds a megaflow at virtual time now. If an entry with the same
// key and mask exists, it is refreshed in place (idempotent install). If
// the new entry overlaps a different existing entry, Insert returns
// *ErrOverlap and the cache is unchanged (unless the check is disabled).
func (c *Classifier) Insert(e *Entry, now int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.insertLocked(e, now)
	if err == nil {
		c.publishLocked()
	}
	return err
}

// InsertBatch adds a batch of megaflows in one copy-on-write transaction:
// the per-entry semantics are exactly Insert's (idempotent refresh,
// overlap rejection, per-entry error in the returned slice, aligned with
// es), but every group the batch touches is cloned at most once and the
// snapshot is published exactly once at commit. A handler draining a
// K-miss burst therefore pays one O(|M|) probe-mirror copy instead of K —
// the pvector-republish amortisation OVS applies to megaflow install
// bursts, and the writer-side counterpart of the paper's Observation 1
// (the publish bill, like the scan, is linear in |M|).
//
// Entries that fail validation or overlap an existing megaflow get their
// error recorded and do not block the rest of the batch; the snapshot is
// published if at least one entry landed. The returned slice is nil when
// es is empty.
func (c *Classifier) InsertBatch(es []*Entry, now int64) []error {
	if len(es) == 0 {
		return nil
	}
	errs := make([]error, len(es))
	c.mu.Lock()
	defer c.mu.Unlock()
	ok := 0
	for i, e := range es {
		if errs[i] = c.insertLocked(e, now); errs[i] == nil {
			ok++
		}
	}
	if ok > 0 {
		c.publishLocked()
	}
	return errs
}

// insertLocked is one entry's insert under the writer lock, with the
// snapshot publication left to the caller: Insert publishes per call,
// InsertBatch once per batch. Until that publication the mutated groups
// stay thawed, so a batch touching one group repeatedly clones it once.
func (c *Classifier) insertLocked(e *Entry, now int64) error {
	if len(e.Key) != c.layout.Words() || len(e.Mask) != c.layout.Words() {
		return fmt.Errorf("tss: entry vector length mismatch")
	}
	if !e.Key.SubsetOf(e.Mask) {
		return fmt.Errorf("tss: entry key has bits outside its mask")
	}
	mk := e.Mask.Key()
	g := c.byMask[mk]
	if g != nil {
		if old := g.find(e.Key); old != nil {
			// Same key and mask: refresh by swapping in the new entry.
			// Decision fields of a published entry are never mutated in
			// place — concurrent lookups may still hold the old pointer
			// lock-free — so the entry itself is replaced in a cloned
			// group, carrying the hit count forward.
			e.LastUsed = now
			e.Hits = atomic.LoadUint64(&old.Hits)
			g, gi := c.mutableLocked(g)
			g.replace(old, e)
			c.probes[gi] = buildProbe(g)
			return nil
		}
	}
	if !c.opts.DisableOverlapCheck {
		if ex := c.findOverlapLocked(e); ex != nil {
			return &ErrOverlap{Existing: ex}
		}
	}
	e.LastUsed = now
	if g == nil {
		g = newGroup(e.Mask.Clone(), mk, c.nextSeq, c.stages)
		c.nextSeq++
		c.byMask[mk] = g
		c.thawed = append(c.thawed, g)
		g.put(e)
		c.groups = append(c.groups, g)
		c.placeLocked()
	} else {
		var gi int
		g, gi = c.mutableLocked(g)
		g.put(e)
		c.probes[gi] = buildProbe(g)
	}
	c.nEntry++
	c.inserted++
	return nil
}

// findOverlapLocked returns any existing entry overlapping e, or nil.
func (c *Classifier) findOverlapLocked(e *Entry) *Entry {
	for _, g := range c.groups {
		// Fast path: if the group's mask is a subset of e's mask, an
		// overlap within this group must agree with e on the group mask,
		// so a single masked hash probe decides.
		if g.mask.SubsetOf(e.Mask) {
			if ex := g.findMasked(e.Key); ex != nil {
				return ex
			}
			continue
		}
		var found *Entry
		g.each(func(ex *Entry) bool {
			if bitvec.Overlap(e.Key, e.Mask, ex.Key, ex.Mask) {
				found = ex
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// placeLocked restores the configured scan order after a group was
// appended at the end of c.groups (its entries already in place), and
// inserts the group's probe record into the mirror at the same position.
func (c *Classifier) placeLocked() {
	g := c.groups[len(c.groups)-1]
	pos := len(c.groups) - 1
	if c.opts.Order == OrderHash {
		// Binary-insert the appended group into hash order.
		pos = sort.Search(len(c.groups)-1, func(i int) bool {
			if c.groups[i].hash != g.hash {
				return c.groups[i].hash > g.hash
			}
			return c.groups[i].maskKey > g.maskKey
		})
		copy(c.groups[pos+1:], c.groups[pos:len(c.groups)-1])
		c.groups[pos] = g
	}
	c.probes = append(c.probes, scanProbe{})
	copy(c.probes[pos+1:], c.probes[pos:len(c.probes)-1])
	c.probes[pos] = buildProbe(g)
	if c.opts.Order.resorts() {
		// Appended for now; the lazy resort restores the measured order.
		c.dirty.Store(true)
	}
}

// costSorter stably sorts the writer-side group order by descending
// snapshotted probe-cost key, keeping the two slices in tandem.
type costSorter struct {
	groups []*group
	keys   []float64
}

func (s *costSorter) Len() int           { return len(s.groups) }
func (s *costSorter) Less(i, j int) bool { return s.keys[i] > s.keys[j] }
func (s *costSorter) Swap(i, j int) {
	s.groups[i], s.groups[j] = s.groups[j], s.groups[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// probeCostKey is the OrderProbeCost sort key: hits per mean word touched
// per probe. A probe that bailed at a stage boundary touched roughly one
// word; a full probe touched every nonzero mask word. With no probes
// observed (or staging off and so no skips) the mean is the word count, and
// masks of equal width order exactly as OrderHitCount would.
func probeCostKey(g *group) float64 {
	words := float64(len(g.words))
	if words == 0 {
		words = 1
	}
	mean := words
	if probes := float64(atomic.LoadUint64(g.probes)); probes > 0 {
		skips := float64(atomic.LoadUint64(g.skips))
		mean = ((probes-skips)*words + skips) / probes
	}
	return float64(atomic.LoadUint64(g.hits)) / mean
}

// resortLocked re-sorts the measured scan order (hit count, or hits per
// measured probe cost) lazily, rebuilds the probe mirror, and publishes
// the re-ordered snapshot.
func (c *Classifier) resortLocked() {
	if !c.opts.Order.resorts() || !c.dirty.Load() {
		return
	}
	if c.opts.Order == OrderProbeCost {
		// Keys are snapshotted before sorting: concurrent readers keep
		// bumping the counters, and a comparator re-reading them mid-sort
		// would not be a consistent ordering. The scratch slices live on
		// the classifier (we hold c.mu) — under traffic every hit dirties
		// the order, so re-sorts are frequent enough that per-resort
		// O(|M|) allocations would be real garbage.
		n := len(c.groups)
		if cap(c.costKeys) < n {
			c.costKeys = make([]float64, n)
		}
		keys := c.costKeys[:n]
		for i, g := range c.groups {
			keys[i] = probeCostKey(g)
		}
		sort.Stable(&costSorter{groups: c.groups, keys: keys})
	} else {
		sort.SliceStable(c.groups, func(i, j int) bool {
			return atomic.LoadUint64(c.groups[i].hits) > atomic.LoadUint64(c.groups[j].hits)
		})
	}
	c.probes = c.probes[:0]
	for _, g := range c.groups {
		c.probes = append(c.probes, buildProbe(g))
	}
	c.publishLocked()
	c.dirty.Store(false)
}

// Delete removes the entry with exactly the given key and mask. It reports
// whether an entry was removed.
func (c *Classifier) Delete(key, mask bitvec.Vec) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.byMask[mask.Key()]
	if !ok {
		return false
	}
	if g.find(key) == nil {
		return false
	}
	g, gi := c.mutableLocked(g)
	g.remove(key)
	c.nEntry--
	c.deleted++
	if g.n == 0 {
		c.removeAtLocked(gi)
	} else {
		c.probes[gi] = buildProbe(g)
	}
	c.publishLocked()
	return true
}

// DeleteWhere removes every entry for which pred returns true and returns
// the number removed. MFCGuard's drop-entry wipe (§8) is built on this,
// and vswitch.SweepMegaflows routes every megaflow-lifecycle sweep here:
// the whole dump-and-delete runs on the writer side and publishes one
// snapshot at the end, so concurrent readers scan the previous snapshot
// undisturbed for the duration (the revalidator's dump never stalls the
// fast path).
func (c *Classifier) DeleteWhere(pred func(*Entry) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for _, g := range append([]*group(nil), c.groups...) {
		var victims []bitvec.Vec
		g.each(func(e *Entry) bool {
			if pred(e) {
				victims = append(victims, e.Key)
			}
			return true
		})
		if len(victims) == 0 {
			continue
		}
		g, gi := c.mutableLocked(g)
		for _, k := range victims {
			if g.remove(k) {
				c.nEntry--
				removed++
			}
		}
		if g.n == 0 {
			c.removeAtLocked(gi)
		} else {
			c.probes[gi] = buildProbe(g)
		}
	}
	c.deleted += uint64(removed)
	c.publishLocked()
	return removed
}

// ExpireIdle evicts entries not used since now-timeout (OVS's 10-second
// megaflow idle timeout drives the recovery delay visible in Fig. 8a) and
// returns the number evicted.
func (c *Classifier) ExpireIdle(now, timeout int64) int {
	return c.DeleteWhere(func(e *Entry) bool { return now-e.LastUsedAt() >= timeout })
}

// MaskCount returns |M|, the number of distinct masks — the quantity the
// TSE attack maximises. Lock-free snapshot read.
func (c *Classifier) MaskCount() int {
	return len(c.snap.Load().probes)
}

// EntryCount returns |C|, the number of installed megaflows. Lock-free
// snapshot read.
func (c *Classifier) EntryCount() int {
	return c.snap.Load().nEntry
}

// Stats returns a snapshot of the activity counters: the sum of every
// handle's shard plus the writer-side lifecycle counters.
func (c *Classifier) Stats() Stats {
	var s Stats
	c.shardsMu.Lock()
	for _, sh := range c.shards {
		s.Lookups += atomic.LoadUint64(&sh.lookups)
		s.Hits += atomic.LoadUint64(&sh.hits)
		s.Misses += atomic.LoadUint64(&sh.misses)
		s.Probes += atomic.LoadUint64(&sh.probes)
		s.StageSkips += atomic.LoadUint64(&sh.stageSkips)
	}
	c.shardsMu.Unlock()
	c.mu.Lock()
	s.Inserted, s.Deleted, s.Publishes = c.inserted, c.deleted, c.published
	c.mu.Unlock()
	return s
}

// Entries returns a snapshot of all entries, mask-group by mask-group in
// the current scan order. This is the equivalent of `ovs-dpctl dump-flows`
// that MFCGuard's monitor consumes. The returned entries are copies:
// mutating them does not affect the cache. The dump is lock-free — it
// walks the published snapshot, so it can run at any cadence without
// stalling packet processing.
func (c *Classifier) Entries() []*Entry {
	sn := c.snap.Load()
	out := make([]*Entry, 0, sn.nEntry)
	for k := range sn.probes {
		g := sn.probes[k].g
		start := len(out)
		g.each(func(e *Entry) bool { out = append(out, snapshotEntry(e)); return true })
		within := out[start:]
		sort.Slice(within, func(i, j int) bool { return within[i].Key.Key() < within[j].Key.Key() })
	}
	return out
}

// snapshotEntry copies an entry with atomic reads of its hot counters.
// Key and Mask are cloned so callers can scribble on the snapshot without
// corrupting the live cache.
func snapshotEntry(e *Entry) *Entry {
	return &Entry{
		Key: e.Key.Clone(), Mask: e.Mask.Clone(),
		Action: e.Action, OutPort: e.OutPort, RuleName: e.RuleName,
		Port:     e.Port,
		LastUsed: atomic.LoadInt64(&e.LastUsed),
		Hits:     atomic.LoadUint64(&e.Hits),
	}
}

// Masks returns a snapshot of the distinct masks in scan order.
func (c *Classifier) Masks() []bitvec.Vec {
	sn := c.snap.Load()
	out := make([]bitvec.Vec, len(sn.probes))
	for i := range sn.probes {
		out[i] = sn.probes[i].g.mask.Clone()
	}
	return out
}

// Dump writes a human-readable cache listing in scan order, one mask group
// per stanza — the `ovs-dpctl dump-flows` equivalent for interactive
// debugging and the CLI tools.
func (c *Classifier) Dump(w io.Writer, l *bitvec.Layout) {
	sn := c.snap.Load()
	for i := range sn.probes {
		g := sn.probes[i].g
		fmt.Fprintf(w, "mask %d/%d: %s (%d entries, %d hits)\n",
			i+1, len(sn.probes), g.mask.Format(l), g.n, atomic.LoadUint64(g.hits))
		var es []*Entry
		g.each(func(e *Entry) bool { es = append(es, snapshotEntry(e)); return true })
		sort.Slice(es, func(a, b int) bool { return es[a].Key.Key() < es[b].Key.Key() })
		for _, e := range es {
			fmt.Fprintf(w, "  %s hits=%d last=%d rule=%s\n",
				bitvec.FormatMasked(l, e.Key, e.Mask), e.Hits, e.LastUsed, e.RuleName)
		}
	}
}

// ProbePosition returns the 1-based scan position of the given mask, or 0
// if the mask is not present. A lookup hitting an entry under this mask
// costs exactly this many probes; the dataplane simulator uses it to price
// the victim's traffic.
func (c *Classifier) ProbePosition(mask bitvec.Vec) int {
	c.maybeResort()
	sn := c.snap.Load()
	mk := mask.Key()
	for i := range sn.probes {
		if sn.probes[i].g.maskKey == mk {
			return i + 1
		}
	}
	return 0
}
