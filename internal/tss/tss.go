// Package tss implements the Tuple Space Search (TSS) packet classifier
// [Srinivasan, Suri, Varghese, SIGCOMM'99] as used by the megaflow cache
// (MFC) of Open vSwitch and other hypervisor switches (§2.2 of the paper).
//
// The classifier is an unordered set of key-mask pairs C = {(K, M)}. It
// maintains the list of distinct masks M (the "tuple space") and, for each
// mask M ∈ M, a hash table H_M storing the keys with that mask. Lookup
// (Alg. 1 in the paper's appendix) probes each mask in turn: apply M to the
// packet header, look the result up in H_M, return on the first hit.
//
// Because all entries are kept disjoint (independence invariant Inv(2),
// §3.2), the first hit is the only hit and lookup can early-exit. The cost
// of that simplification is the paper's central observation:
//
//	Observation 1. The time-complexity of TSS lookup grows linearly with
//	the number of distinct masks as O(|M|) and the space-complexity grows
//	linearly with the number of entries as O(|C|).
//
// The Tuple Space Explosion attack inflates |M|; see package vswitch for
// how the slow path's megaflow generation lets an adversary do that, and
// package core for the attack itself.
package tss

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// MaskOrder selects the order in which Lookup scans the mask list. The
// paper's measurements (§5.4: "the flow completion time only increases half
// as high as the number of MFC masks") correspond to the victim's mask
// sitting at a uniformly random position in the scan, which OrderHash
// models deterministically. OrderInsertion and OrderHitCount exist for
// ablation (OVS's userspace dpcls sorts its subtables by hit count).
type MaskOrder int

const (
	// OrderHash scans masks sorted by a hash of their bits: a stable,
	// adversary-independent order in which any particular mask lands at an
	// effectively uniform position. Default.
	OrderHash MaskOrder = iota
	// OrderInsertion scans masks oldest-first.
	OrderInsertion
	// OrderHitCount scans masks most-hit-first, re-sorted lazily. Models
	// the OVS userspace classifier's pvector priority optimisation.
	OrderHitCount
)

// Entry is one megaflow: a disjoint key-mask pair with a cached action.
type Entry struct {
	// Key and Mask define the match (Key must equal Key AND Mask).
	Key, Mask bitvec.Vec
	// Action is the cached slow-path decision.
	Action flowtable.Action
	// OutPort is the destination for Forward actions.
	OutPort int
	// RuleName records which flow-table rule generated the entry
	// (diagnostics and MFCGuard pattern matching).
	RuleName string
	// LastUsed is the virtual time of the last hit or the install time.
	// The simulator advances virtual time in seconds.
	LastUsed int64
	// Hits counts lookups served by this entry.
	Hits uint64
	// LastUsed and Hits are updated atomically by concurrent lookups; the
	// other fields are never mutated once the entry is inserted (refresh
	// installs swap the whole entry), so lookups may read them lock-free.
}

// Format renders the entry figure-style: "01*|1111 -> deny".
func (e *Entry) Format(l *bitvec.Layout) string {
	return fmt.Sprintf("%s -> %s", bitvec.FormatMasked(l, e.Key, e.Mask), e.Action)
}

// group is one tuple: a mask plus the hash table of keys sharing it,
// OVS-subtable style. Two precomputations make the lookup probe cheap:
// words caches the mask's nonzero word indices, so hashing and comparing a
// header under the mask touches only the words the mask can constrain
// (miniflow-style sparsity) and never materialises the masked header; and
// entries live in a power-of-two open-addressing slot array (fingerprint +
// entry pointer, linear probing) rather than a Go map, so a probe is an
// array walk with no map-runtime calls and no allocation. Slots are only
// mutated under the classifier's writer lock; readers scan under the
// shared reader lock.
type group struct {
	// slots and sparse lead the struct so a lookup probe's loads stay
	// within the group's first cache lines.
	slots    []slot
	sparse   bitvec.SparseMask // inline nonzero-word view of mask
	sparseOK bool              // mask fits inline; else use mask/words
	solo     *Entry            // the sole entry while n == 1, else nil
	soloFP   uint64            // solo's fingerprint

	mask    bitvec.Vec
	maskKey string
	hash    uint64
	words   []int // nonzero word indices of mask, in order
	n       int
	hits    uint64
	seq     int
}

// slot is one open-addressing cell: the key's fingerprint (keyHash) for a
// cheap first-pass reject, plus the entry. e == nil marks the cell empty.
type slot struct {
	fp uint64
	e  *Entry
}

// minGroupSlots keeps even one-entry groups probe-cheap without resizing on
// every early insert.
const minGroupSlots = 8

// newGroup builds an empty group for the (already cloned) mask.
func newGroup(mask bitvec.Vec, maskKey string, seq int) *group {
	g := &group{
		mask:    mask,
		maskKey: maskKey,
		hash:    mask.Hash(),
		words:   mask.NonzeroWords(),
		slots:   make([]slot, minGroupSlots),
		seq:     seq,
	}
	g.sparse, g.sparseOK = bitvec.NewSparseMask(mask)
	return g
}

// hashHeader returns the fingerprint of h under the group's mask,
// KeyHash(h AND mask), via the inline sparse view when the mask fits.
func (g *group) hashHeader(h bitvec.Vec) uint64 {
	if g.sparseOK {
		return g.sparse.Hash(h)
	}
	return bitvec.HashMasked(h, g.mask, g.words)
}

// equalKey reports key == (h AND mask) for a stored (canonical) key.
func (g *group) equalKey(key, h bitvec.Vec) bool {
	if g.sparseOK {
		return g.sparse.EqualKey(key, h)
	}
	return bitvec.EqualMasked(key, h, g.mask, g.words)
}

// keyHash mixes the vector words into a bucket fingerprint without
// allocating. It is bitvec.KeyHash, shared with HashMasked so that the
// masked fast path and the exact writer-side paths agree on fingerprints.
func keyHash(v bitvec.Vec) uint64 { return bitvec.KeyHash(v) }

// findMasked returns the entry matching header h under the group's mask
// (the one whose key equals h AND mask), or nil. This is the lookup hot
// path: hash and compare run fused over the mask's nonzero words only, so
// no scratch vector and no allocation.
func (g *group) findMasked(h bitvec.Vec) *Entry {
	fp := g.hashHeader(h)
	m := uint64(len(g.slots) - 1)
	for i := fp & m; ; i = (i + 1) & m {
		s := g.slots[i]
		if s.e == nil {
			return nil
		}
		if s.fp == fp && g.equalKey(s.e.Key, h) {
			return s.e
		}
	}
}

// find returns the entry in g whose key equals k, or nil (writer-side
// exact probe; k must already be canonical for the mask).
func (g *group) find(k bitvec.Vec) *Entry {
	fp := keyHash(k)
	m := uint64(len(g.slots) - 1)
	for i := fp & m; ; i = (i + 1) & m {
		s := g.slots[i]
		if s.e == nil {
			return nil
		}
		if s.fp == fp && s.e.Key.Equal(k) {
			return s.e
		}
	}
}

// put inserts e (whose key must not already be present), growing the slot
// array past 3/4 load.
func (g *group) put(e *Entry) {
	if (g.n+1)*4 > len(g.slots)*3 {
		old := g.slots
		g.slots = make([]slot, len(old)*2)
		for _, s := range old {
			if s.e != nil {
				g.insertSlot(s.fp, s.e)
			}
		}
	}
	fp := keyHash(e.Key)
	g.insertSlot(fp, e)
	g.n++
	if g.n == 1 {
		g.solo, g.soloFP = e, fp
	} else {
		g.solo = nil
	}
}

// insertSlot places e at the first free cell of its probe chain.
func (g *group) insertSlot(fp uint64, e *Entry) {
	m := uint64(len(g.slots) - 1)
	for i := fp & m; ; i = (i + 1) & m {
		if g.slots[i].e == nil {
			g.slots[i] = slot{fp: fp, e: e}
			return
		}
	}
}

// replace swaps old for e in its slot (same key, so same fingerprint).
func (g *group) replace(old, e *Entry) {
	m := uint64(len(g.slots) - 1)
	for i := keyHash(old.Key) & m; ; i = (i + 1) & m {
		if g.slots[i].e == old {
			g.slots[i].e = e
			if g.solo == old {
				g.solo = e
			}
			return
		}
		if g.slots[i].e == nil {
			return
		}
	}
}

// remove deletes the entry with key k, reporting success. Deletion uses
// backward-shift compaction (no tombstones): the probe cluster after the
// hole is re-packed so linear probing stays correct.
func (g *group) remove(k bitvec.Vec) bool {
	fp := keyHash(k)
	m := uint64(len(g.slots) - 1)
	i := fp & m
	for {
		s := g.slots[i]
		if s.e == nil {
			return false
		}
		if s.fp == fp && s.e.Key.Equal(k) {
			break
		}
		i = (i + 1) & m
	}
	j := i
	for {
		j = (j + 1) & m
		s := g.slots[j]
		if s.e == nil {
			break
		}
		// s may fill the hole at i iff its home cell is cyclically at or
		// before i (moving it cannot break its own probe chain).
		if (j-s.fp)&m >= (j-i)&m {
			g.slots[i] = s
			i = j
		}
	}
	g.slots[i] = slot{}
	g.n--
	g.solo = nil
	if g.n == 1 {
		for _, s := range g.slots {
			if s.e != nil {
				g.solo, g.soloFP = s.e, s.fp
				break
			}
		}
	}
	return true
}

// each calls f for every entry; f returning false stops the walk.
func (g *group) each(f func(*Entry) bool) {
	for _, s := range g.slots {
		if s.e != nil && !f(s.e) {
			return
		}
	}
}

// Stats aggregates classifier activity counters.
type Stats struct {
	// Lookups is the total number of Lookup calls.
	Lookups uint64
	// Hits and Misses partition Lookups.
	Hits, Misses uint64
	// Probes is the total number of mask probes performed; Probes/Lookups
	// is the average per-packet classification effort the attack inflates.
	Probes uint64
	// Inserted and Deleted count entry lifecycle events.
	Inserted, Deleted uint64
}

// Options configures a Classifier.
type Options struct {
	// Order selects the mask scan order (default OrderHash).
	Order MaskOrder
	// DisableOverlapCheck skips the O(|C|) independence verification on
	// Insert. The vswitch megaflow generator guarantees disjointness by
	// construction, so its pipeline may disable the check; tests and
	// direct users keep it on.
	DisableOverlapCheck bool
}

// Classifier is a TSS megaflow cache. It is safe for concurrent use:
// lookups run under a shared reader lock (PMD-style datapath workers
// classify in parallel), while inserts and deletes take the writer lock.
// Hit accounting on the read path (entry hits, last-used stamps, scan
// statistics) uses atomic updates so concurrent readers never block each
// other.
type Classifier struct {
	mu      sync.RWMutex
	layout  *bitvec.Layout
	groups  []*group    // in scan order
	scan    []scanProbe // flat per-probe hot data, parallel to groups
	byMask  map[string]*group
	nEntry  int
	nextSeq int
	opts    Options
	stats   Stats
	dirty   atomic.Bool // OrderHitCount needs re-sort
}

// scanProbe is one step of the lookup scan, flattened: the group's inline
// sparse mask copied next to its group pointer so the O(|M|) scan walks
// sequential memory the hardware prefetcher can stream, instead of chasing
// a pointer per mask. Groups holding exactly one entry — the shape TSE
// attack state takes, one megaflow per inflated mask — additionally have
// that entry's fingerprint and pointer inlined, so a probe that misses
// such a group decides on the streamed fingerprint alone and never loads
// the group's slot table. Rebuilt under the writer lock after any
// structural change.
type scanProbe struct {
	sparse   bitvec.SparseMask
	fp0      uint64 // fingerprint of the sole entry, when e0 != nil
	e0       *Entry // sole entry of a one-entry inline-mask group
	g        *group
	sparseOK bool
}

// rebuildScanLocked refreshes the flat scan list from c.groups. Called
// under the writer lock after any change that adds, drops, or reorders
// groups, or changes a group's entry membership.
func (c *Classifier) rebuildScanLocked() {
	if cap(c.scan) < len(c.groups) {
		// Grow with slack: an attack installing one new mask per upcall
		// must not reallocate the scan list on every insert.
		c.scan = make([]scanProbe, len(c.groups), 2*len(c.groups)+16)
	}
	// Clear any tail beyond the new length so a post-wipe shrink does not
	// pin deleted entries and groups through the backing array.
	for i := len(c.groups); i < len(c.scan); i++ {
		c.scan[i] = scanProbe{}
	}
	c.scan = c.scan[:len(c.groups)]
	for i, g := range c.groups {
		p := scanProbe{sparse: g.sparse, sparseOK: g.sparseOK, g: g}
		if g.sparseOK && g.solo != nil {
			p.fp0, p.e0 = g.soloFP, g.solo
		}
		c.scan[i] = p
	}
}

// New creates an empty classifier over the layout.
func New(l *bitvec.Layout, opts Options) *Classifier {
	return &Classifier{
		layout: l,
		byMask: make(map[string]*group),
		opts:   opts,
	}
}

// Layout returns the classifier's header layout.
func (c *Classifier) Layout() *bitvec.Layout { return c.layout }

// Lookup classifies header h at virtual time now. It returns the matching
// entry, the number of mask probes performed (the classification cost the
// attack drives up), and whether the lookup hit.
func (c *Classifier) Lookup(h bitvec.Vec, now int64) (*Entry, int, bool) {
	c.maybeResort()
	c.mu.RLock()
	e, probes, ok := c.lookupRLocked(h, now)
	c.mu.RUnlock()
	return e, probes, ok
}

// lookupRLocked runs Algorithm 1 under a held reader lock: for M ∈ M, look
// up (h AND M) in H_M; first hit wins. Each probe runs fused over the
// mask's nonzero words (no scratch vector, no allocation). Hit accounting
// is atomic so any number of readers may run concurrently.
func (c *Classifier) lookupRLocked(h bitvec.Vec, now int64) (*Entry, int, bool) {
	atomic.AddUint64(&c.stats.Lookups, 1)
	probes := 0
	for k := range c.scan {
		p := &c.scan[k]
		probes++
		var e *Entry
		if p.e0 != nil {
			// One-entry group: decide on the inlined fingerprint; only a
			// match (or a 2^-64 collision) touches the entry itself.
			if p.sparse.Hash(h) == p.fp0 && p.sparse.EqualKey(p.e0.Key, h) {
				e = p.e0
			}
		} else {
			e = p.g.findMasked(h)
		}
		if e != nil {
			atomic.AddUint64(&e.Hits, 1)
			atomic.StoreInt64(&e.LastUsed, now)
			atomic.AddUint64(&p.g.hits, 1)
			if c.opts.Order == OrderHitCount {
				c.dirty.Store(true)
			}
			atomic.AddUint64(&c.stats.Hits, 1)
			atomic.AddUint64(&c.stats.Probes, uint64(probes))
			return e, probes, true
		}
	}
	atomic.AddUint64(&c.stats.Misses, 1)
	atomic.AddUint64(&c.stats.Probes, uint64(probes))
	return nil, probes, false
}

// BatchResult is one per-header outcome of LookupBatch.
type BatchResult struct {
	// Entry is the matching megaflow (nil on a miss).
	Entry *Entry
	// Probes is the number of mask probes spent on this header.
	Probes int
	// OK reports whether the lookup hit.
	OK bool
}

// LookupBatch classifies consecutive headers from hs under a single reader
// lock acquisition, filling out (which must be at least as long as hs) and
// returning the number of headers consumed. It stops after the first miss
// — in the OVS datapath a miss triggers an upcall whose megaflow install
// changes cache membership, so results computed past a miss could diverge
// from serial processing. Consuming until the first miss makes the batch
// exactly equivalent, header for header, to the same sequence of Lookup
// calls: the caller resolves the miss (out[n-1].OK == false) and re-enters
// with the remainder of the batch.
//
// Under OrderHitCount the scan order re-sorts at batch boundaries rather
// than between every pair of packets (as OVS's pvector does); OrderHash and
// OrderInsertion are unaffected.
func (c *Classifier) LookupBatch(hs []bitvec.Vec, now int64, out []BatchResult) int {
	if len(hs) == 0 {
		return 0
	}
	c.maybeResort()
	c.mu.RLock()
	n := 0
	for _, h := range hs {
		e, probes, ok := c.lookupRLocked(h, now)
		out[n] = BatchResult{Entry: e, Probes: probes, OK: ok}
		n++
		if !ok {
			break
		}
	}
	c.mu.RUnlock()
	return n
}

// maybeResort restores hit-count order before a read-path scan. It briefly
// takes the writer lock; OrderHash and OrderInsertion never enter it.
func (c *Classifier) maybeResort() {
	if c.opts.Order == OrderHitCount && c.dirty.Load() {
		c.mu.Lock()
		c.resortLocked()
		c.mu.Unlock()
	}
}

// ErrOverlap is returned by Insert when the new entry would violate the
// independence invariant Inv(2).
type ErrOverlap struct {
	// Existing is the conflicting entry already in the cache.
	Existing *Entry
}

func (e *ErrOverlap) Error() string {
	return "tss: entry overlaps existing megaflow (Inv(2) violation)"
}

// Insert adds a megaflow at virtual time now. If an entry with the same
// key and mask exists, it is refreshed in place (idempotent install). If
// the new entry overlaps a different existing entry, Insert returns
// *ErrOverlap and the cache is unchanged (unless the check is disabled).
func (c *Classifier) Insert(e *Entry, now int64) error {
	if len(e.Key) != c.layout.Words() || len(e.Mask) != c.layout.Words() {
		return fmt.Errorf("tss: entry vector length mismatch")
	}
	if !e.Key.SubsetOf(e.Mask) {
		return fmt.Errorf("tss: entry key has bits outside its mask")
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	mk := e.Mask.Key()
	g := c.byMask[mk]
	if g != nil {
		if old := g.find(e.Key); old != nil {
			// Same key and mask: refresh by swapping in the new entry.
			// Decision fields of a published entry are never mutated in
			// place — concurrent lookups may still hold the old pointer
			// lock-free — so the entry itself is replaced under the
			// writer lock, carrying the hit count forward.
			e.LastUsed = now
			e.Hits = atomic.LoadUint64(&old.Hits)
			g.replace(old, e)
			// The scan list inlines the entry pointer only for one-entry
			// groups; multi-entry groups probe through g.slots, which
			// replace already fixed in place.
			if g.n == 1 {
				c.rebuildScanLocked()
			}
			return nil
		}
	}
	if !c.opts.DisableOverlapCheck {
		if ex := c.findOverlapLocked(e); ex != nil {
			return &ErrOverlap{Existing: ex}
		}
	}
	if g == nil {
		g = newGroup(e.Mask.Clone(), mk, c.nextSeq)
		c.nextSeq++
		c.byMask[mk] = g
		c.groups = append(c.groups, g)
		c.placeLocked()
	}
	e.LastUsed = now
	g.put(e)
	c.nEntry++
	c.stats.Inserted++
	c.rebuildScanLocked()
	return nil
}

// findOverlapLocked returns any existing entry overlapping e, or nil.
func (c *Classifier) findOverlapLocked(e *Entry) *Entry {
	for _, g := range c.groups {
		// Fast path: if the group's mask is a subset of e's mask, an
		// overlap within this group must agree with e on the group mask,
		// so a single masked hash probe decides.
		if g.mask.SubsetOf(e.Mask) {
			if ex := g.findMasked(e.Key); ex != nil {
				return ex
			}
			continue
		}
		var found *Entry
		g.each(func(ex *Entry) bool {
			if bitvec.Overlap(e.Key, e.Mask, ex.Key, ex.Mask) {
				found = ex
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// placeLocked restores the configured scan order after a group was
// appended at the end of c.groups.
func (c *Classifier) placeLocked() {
	switch c.opts.Order {
	case OrderHash:
		// Binary-insert the appended group into hash order.
		g := c.groups[len(c.groups)-1]
		pos := sort.Search(len(c.groups)-1, func(i int) bool {
			if c.groups[i].hash != g.hash {
				return c.groups[i].hash > g.hash
			}
			return c.groups[i].maskKey > g.maskKey
		})
		copy(c.groups[pos+1:], c.groups[pos:len(c.groups)-1])
		c.groups[pos] = g
	case OrderInsertion:
		// Appending preserves insertion order.
	case OrderHitCount:
		c.dirty.Store(true)
	}
}

// resortLocked re-sorts hit-count order lazily.
func (c *Classifier) resortLocked() {
	if c.opts.Order != OrderHitCount || !c.dirty.Load() {
		return
	}
	sort.SliceStable(c.groups, func(i, j int) bool {
		return atomic.LoadUint64(&c.groups[i].hits) > atomic.LoadUint64(&c.groups[j].hits)
	})
	c.rebuildScanLocked()
	c.dirty.Store(false)
}

// Delete removes the entry with exactly the given key and mask. It reports
// whether an entry was removed.
func (c *Classifier) Delete(key, mask bitvec.Vec) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.byMask[mask.Key()]
	if !ok {
		return false
	}
	if !g.remove(key) {
		return false
	}
	c.nEntry--
	c.stats.Deleted++
	if g.n == 0 {
		c.dropGroupLocked(g)
		c.rebuildScanLocked()
	}
	return true
}

// DeleteWhere removes every entry for which pred returns true and returns
// the number removed. MFCGuard's drop-entry wipe (§8) is built on this.
func (c *Classifier) DeleteWhere(pred func(*Entry) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for _, g := range append([]*group(nil), c.groups...) {
		var victims []bitvec.Vec
		g.each(func(e *Entry) bool {
			if pred(e) {
				victims = append(victims, e.Key)
			}
			return true
		})
		for _, k := range victims {
			if g.remove(k) {
				c.nEntry--
				removed++
			}
		}
		if g.n == 0 {
			c.dropGroupLocked(g)
		}
	}
	c.rebuildScanLocked()
	c.stats.Deleted += uint64(removed)
	return removed
}

// ExpireIdle evicts entries not used since now-timeout (OVS's 10-second
// megaflow idle timeout drives the recovery delay visible in Fig. 8a) and
// returns the number evicted.
func (c *Classifier) ExpireIdle(now, timeout int64) int {
	return c.DeleteWhere(func(e *Entry) bool { return now-e.LastUsed >= timeout })
}

// dropGroupLocked removes an empty group from the scan list.
func (c *Classifier) dropGroupLocked(g *group) {
	delete(c.byMask, g.maskKey)
	for i, gg := range c.groups {
		if gg == g {
			c.groups = append(c.groups[:i], c.groups[i+1:]...)
			break
		}
	}
}

// MaskCount returns |M|, the number of distinct masks — the quantity the
// TSE attack maximises.
func (c *Classifier) MaskCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.groups)
}

// EntryCount returns |C|, the number of installed megaflows.
func (c *Classifier) EntryCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nEntry
}

// Stats returns a snapshot of the activity counters.
func (c *Classifier) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{
		Lookups:  atomic.LoadUint64(&c.stats.Lookups),
		Hits:     atomic.LoadUint64(&c.stats.Hits),
		Misses:   atomic.LoadUint64(&c.stats.Misses),
		Probes:   atomic.LoadUint64(&c.stats.Probes),
		Inserted: atomic.LoadUint64(&c.stats.Inserted),
		Deleted:  atomic.LoadUint64(&c.stats.Deleted),
	}
}

// Entries returns a snapshot of all entries, mask-group by mask-group in
// the current scan order. This is the equivalent of `ovs-dpctl dump-flows`
// that MFCGuard's monitor consumes. The returned entries are copies:
// mutating them does not affect the cache, and the snapshot stays coherent
// while concurrent lookups update hit counters.
func (c *Classifier) Entries() []*Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Entry, 0, c.nEntry)
	for _, g := range c.groups {
		start := len(out)
		g.each(func(e *Entry) bool { out = append(out, snapshotEntry(e)); return true })
		within := out[start:]
		sort.Slice(within, func(i, j int) bool { return within[i].Key.Key() < within[j].Key.Key() })
	}
	return out
}

// snapshotEntry copies an entry with atomic reads of its hot counters.
// Key and Mask are cloned so callers can scribble on the snapshot without
// corrupting the live cache.
func snapshotEntry(e *Entry) *Entry {
	return &Entry{
		Key: e.Key.Clone(), Mask: e.Mask.Clone(),
		Action: e.Action, OutPort: e.OutPort, RuleName: e.RuleName,
		LastUsed: atomic.LoadInt64(&e.LastUsed),
		Hits:     atomic.LoadUint64(&e.Hits),
	}
}

// Masks returns a snapshot of the distinct masks in scan order.
func (c *Classifier) Masks() []bitvec.Vec {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]bitvec.Vec, len(c.groups))
	for i, g := range c.groups {
		out[i] = g.mask.Clone()
	}
	return out
}

// Dump writes a human-readable cache listing in scan order, one mask group
// per stanza — the `ovs-dpctl dump-flows` equivalent for interactive
// debugging and the CLI tools.
func (c *Classifier) Dump(w io.Writer, l *bitvec.Layout) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, g := range c.groups {
		fmt.Fprintf(w, "mask %d/%d: %s (%d entries, %d hits)\n",
			i+1, len(c.groups), g.mask.Format(l), g.n, atomic.LoadUint64(&g.hits))
		var es []*Entry
		g.each(func(e *Entry) bool { es = append(es, snapshotEntry(e)); return true })
		sort.Slice(es, func(a, b int) bool { return es[a].Key.Key() < es[b].Key.Key() })
		for _, e := range es {
			fmt.Fprintf(w, "  %s hits=%d last=%d rule=%s\n",
				bitvec.FormatMasked(l, e.Key, e.Mask), e.Hits, e.LastUsed, e.RuleName)
		}
	}
}

// ProbePosition returns the 1-based scan position of the given mask, or 0
// if the mask is not present. A lookup hitting an entry under this mask
// costs exactly this many probes; the dataplane simulator uses it to price
// the victim's traffic.
func (c *Classifier) ProbePosition(mask bitvec.Vec) int {
	c.maybeResort()
	c.mu.RLock()
	defer c.mu.RUnlock()
	mk := mask.Key()
	for i, g := range c.groups {
		if g.maskKey == mk {
			return i + 1
		}
	}
	return 0
}
