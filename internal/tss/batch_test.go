package tss

import (
	"fmt"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// exactCacheWithMasks builds a classifier holding one entry under each of
// nMasks distinct prefix masks of the 16-bit toy field, plus the header
// that hits entry i.
func exactCacheWithMasks(t testing.TB, nMasks int) (*Classifier, []bitvec.Vec) {
	t.Helper()
	l := bitvec.MustLayout(bitvec.Field{Name: "F", Width: 16})
	if nMasks > 15 {
		t.Fatalf("at most 15 distinct non-trivial prefix masks, got %d", nMasks)
	}
	c := New(l, Options{})
	hs := make([]bitvec.Vec, nMasks)
	for i := 0; i < nMasks; i++ {
		plen := i + 1
		mask := bitvec.PrefixMask(l, 0, plen)
		// Key: 1 at prefix bit plen-1, so each key matches only its own
		// mask group (all shorter prefixes see a 0 there... the converse:
		// keep keys disjoint by construction below).
		key := bitvec.NewVec(l)
		key.SetFieldBit(l, 0, plen-1)
		key = key.And(mask)
		if err := c.Insert(&Entry{Key: key, Mask: mask,
			Action: flowtable.Allow, RuleName: fmt.Sprintf("r%d", i)}, 0); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		// Header equal to the key hits it exactly.
		hs[i] = key.Clone()
	}
	return c, hs
}

// TestLookupBatchEquivalentToSerial: a batch over a hit-only sequence must
// return what per-packet Lookup returns on a twin classifier — entries,
// probe counts, stats, and per-entry hit counters all identical.
func TestLookupBatchEquivalentToSerial(t *testing.T) {
	serial, hs := exactCacheWithMasks(t, 12)
	batched, _ := exactCacheWithMasks(t, 12)

	// Repeat the headers a few times in a mixed order.
	var trace []bitvec.Vec
	for r := 0; r < 3; r++ {
		for i := range hs {
			trace = append(trace, hs[(i*7+r)%len(hs)])
		}
	}
	out := make([]BatchResult, len(trace))
	n := batched.LookupBatch(trace, 5, out)
	if n != len(trace) {
		t.Fatalf("hit-only batch consumed %d of %d", n, len(trace))
	}
	for i, h := range trace {
		e, probes, ok := serial.Lookup(h, 5)
		if ok != out[i].OK || probes != out[i].Probes {
			t.Fatalf("packet %d: batch (probes=%d ok=%v) != serial (probes=%d ok=%v)",
				i, out[i].Probes, out[i].OK, probes, ok)
		}
		if e.RuleName != out[i].Entry.RuleName {
			t.Fatalf("packet %d: batch rule %q != serial %q",
				i, out[i].Entry.RuleName, e.RuleName)
		}
	}
	if ss, bs := serial.Stats(), batched.Stats(); ss != bs {
		t.Errorf("stats diverge: serial %+v, batch %+v", ss, bs)
	}
	se, be := serial.Entries(), batched.Entries()
	for i := range se {
		if se[i].Hits != be[i].Hits {
			t.Errorf("entry %d hits: serial %d, batch %d", i, se[i].Hits, be[i].Hits)
		}
	}
}

// TestLookupBatchStopsAtMiss: the batch consumes up to and including the
// first miss, leaving the rest for the caller's upcall handling.
func TestLookupBatchStopsAtMiss(t *testing.T) {
	c, hs := exactCacheWithMasks(t, 8)
	// The all-zero header misses every group: each group's only key has a
	// bit set inside its own mask prefix.
	miss := bitvec.NewVec(c.Layout())
	trace := []bitvec.Vec{hs[0], hs[1], miss, hs[2], hs[3]}
	out := make([]BatchResult, len(trace))
	n := c.LookupBatch(trace, 0, out)
	if n != 3 {
		t.Fatalf("consumed %d, want 3 (two hits plus the miss)", n)
	}
	if out[0].OK != true || out[1].OK != true || out[2].OK != false {
		t.Fatalf("unexpected hit pattern: %+v", out[:3])
	}
	if out[2].Probes != c.MaskCount() {
		t.Errorf("miss probed %d masks, want the full scan of %d",
			out[2].Probes, c.MaskCount())
	}
	// Remainder processes cleanly.
	if m := c.LookupBatch(trace[n:], 0, out); m != 2 {
		t.Errorf("second call consumed %d, want 2", m)
	}
}

func TestLookupBatchEmpty(t *testing.T) {
	c, _ := exactCacheWithMasks(t, 3)
	if n := c.LookupBatch(nil, 0, nil); n != 0 {
		t.Errorf("empty batch consumed %d", n)
	}
}

// BenchmarkLookupBatch compares per-packet Lookup against LookupBatch on
// the same hit-only burst: the batch amortises the reader-lock round trip
// over 32 packets.
func BenchmarkLookupBatch(b *testing.B) {
	c, hs := exactCacheWithMasks(b, 15)
	burst := make([]bitvec.Vec, 32)
	for i := range burst {
		burst[i] = hs[i%len(hs)]
	}
	b.Run("perPacket", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, h := range burst {
				c.Lookup(h, 0)
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(burst))/b.Elapsed().Seconds(), "pkts/s")
	})
	b.Run("batch32", func(b *testing.B) {
		out := make([]BatchResult, len(burst))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rest := burst
			for len(rest) > 0 {
				rest = rest[c.LookupBatch(rest, 0, out):]
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(burst))/b.Elapsed().Seconds(), "pkts/s")
	})
}
