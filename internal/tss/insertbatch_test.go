package tss

import (
	"errors"
	"fmt"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// batchEntries builds n disjoint entries under n distinct masks
// (ip_src/32 + tp_dst prefix), offset so they do not collide with
// populateDistinctMasks output.
func batchEntries(l *bitvec.Layout, n int) []*Entry {
	sip, _ := l.FieldIndex("ip_src")
	dip, _ := l.FieldIndex("ip_dst")
	sp, _ := l.FieldIndex("tp_src")
	es := make([]*Entry, 0, n)
	for j := 1; len(es) < n; j++ {
		jj, k := (j-1)%16+1, (j-1)/16
		// Full ip_src in every mask keeps the batch disjoint via distinct
		// source addresses; the zeroed ip_src high nibble keeps it disjoint
		// from populateDistinctMasks' one-hot prefix keys.
		mask := bitvec.PrefixMask(l, sip, 32).Or(bitvec.PrefixMask(l, sp, jj))
		key := bitvec.NewVec(l)
		key.SetField(l, sip, uint64(0x000fe000+j))
		key.SetFieldBit(l, sp, jj-1)
		if k > 0 {
			mask = mask.Or(bitvec.PrefixMask(l, dip, k))
			key.SetFieldBit(l, dip, k-1)
		}
		es = append(es, &Entry{Key: key.And(mask), Mask: mask,
			Action: flowtable.Allow, RuleName: fmt.Sprintf("batch-%d", j), Port: j % 3})
	}
	return es
}

// TestInsertBatchPublishesOnce is the acceptance criterion of the batched
// slow path: a K-entry install burst performs exactly one snapshot publish
// (one O(|M|) probe-mirror copy), against K for the serial path.
func TestInsertBatchPublishesOnce(t *testing.T) {
	l := bitvec.IPv4Tuple
	c := New(l, Options{})
	populateDistinctMasks(c, l, 64)
	const k = 16
	es := batchEntries(l, k)

	before := c.Stats().Publishes
	for _, err := range c.InsertBatch(es, 5) {
		if err != nil {
			t.Fatalf("batch insert failed: %v", err)
		}
	}
	if got := c.Stats().Publishes - before; got != 1 {
		t.Fatalf("InsertBatch of %d entries published %d snapshots, want exactly 1", k, got)
	}

	// Serial control: the same burst pays one publish per install.
	c2 := New(l, Options{})
	populateDistinctMasks(c2, l, 64)
	before = c2.Stats().Publishes
	for _, e := range batchEntries(l, k) {
		if err := c2.Insert(e, 5); err != nil {
			t.Fatalf("serial insert failed: %v", err)
		}
	}
	if got := c2.Stats().Publishes - before; got != k {
		t.Fatalf("serial control published %d snapshots, want %d", got, k)
	}
}

// TestInsertBatchMatchesSerial: the transaction is semantically invisible —
// same entries, same scan order, same lookup results as serial Inserts.
func TestInsertBatchMatchesSerial(t *testing.T) {
	l := bitvec.IPv4Tuple
	batched := New(l, Options{})
	serial := New(l, Options{})
	populateDistinctMasks(batched, l, 32)
	populateDistinctMasks(serial, l, 32)

	es := batchEntries(l, 24)
	for i, err := range batched.InsertBatch(es, 7) {
		if err != nil {
			t.Fatalf("batch entry %d: %v", i, err)
		}
	}
	for _, e := range batchEntries(l, 24) {
		if err := serial.Insert(e, 7); err != nil {
			t.Fatal(err)
		}
	}

	if bn, sn := batched.EntryCount(), serial.EntryCount(); bn != sn {
		t.Fatalf("entry counts diverge: batched %d, serial %d", bn, sn)
	}
	be, se := batched.Entries(), serial.Entries()
	for i := range be {
		if !be[i].Key.Equal(se[i].Key) || !be[i].Mask.Equal(se[i].Mask) ||
			be[i].Action != se[i].Action || be[i].Port != se[i].Port {
			t.Fatalf("entry %d diverges: batched %+v, serial %+v", i, be[i], se[i])
		}
	}
	// Every batch entry is immediately visible to the lock-free read path.
	for i, e := range es {
		got, _, ok := batched.Lookup(e.Key, 8)
		if !ok || got.RuleName != e.RuleName {
			t.Fatalf("batch entry %d not found after commit (ok=%v)", i, ok)
		}
	}
}

// TestInsertBatchPartialFailure: invalid or overlapping entries error
// individually without blocking the rest of the batch, exactly as the same
// sequence of serial Inserts would.
func TestInsertBatchPartialFailure(t *testing.T) {
	l := bitvec.IPv4Tuple
	c := New(l, Options{})
	es := batchEntries(l, 4)
	// es[1] overlaps es[0]: same key under a wider mask region. Reuse
	// es[0]'s mask and key so it lands in the refresh path instead — make
	// a *different* entry overlapping es[0]: widen the mask to ip_src only
	// with the same ip_src key bits.
	sip, _ := l.FieldIndex("ip_src")
	overlapping := &Entry{
		Key:  bitvec.NewVec(l),
		Mask: bitvec.PrefixMask(l, sip, 32),
	}
	overlapping.Key.SetField(l, sip, 0x000fe001)
	es[1] = overlapping
	// es[2] is structurally invalid: key bits outside the mask.
	bad := &Entry{Key: bitvec.FullMask(l), Mask: bitvec.PrefixMask(l, sip, 8)}
	es[2] = bad

	errs := c.InsertBatch(es, 0)
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("valid entries errored: %v, %v", errs[0], errs[3])
	}
	var overlap *ErrOverlap
	if !errors.As(errs[1], &overlap) {
		t.Fatalf("overlapping entry error = %v, want *ErrOverlap", errs[1])
	}
	if errs[2] == nil {
		t.Fatal("invalid entry accepted")
	}
	if got := c.EntryCount(); got != 2 {
		t.Fatalf("entry count %d after partial batch, want 2", got)
	}
}

// TestInsertBatchRefresh: duplicate (key, mask) within one batch follows
// the idempotent-refresh path; the second copy replaces the first without
// growing the cache.
func TestInsertBatchRefresh(t *testing.T) {
	l := bitvec.IPv4Tuple
	c := New(l, Options{})
	es := batchEntries(l, 2)
	dup := *es[0]
	dup.RuleName = "refreshed"
	es = append(es, &dup)
	for i, err := range c.InsertBatch(es, 0) {
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
	if got := c.EntryCount(); got != 2 {
		t.Fatalf("entry count %d, want 2 (duplicate refreshed)", got)
	}
	e, _, ok := c.Lookup(es[0].Key, 1)
	if !ok || e.RuleName != "refreshed" {
		t.Fatalf("refresh within batch not applied: %+v ok=%v", e, ok)
	}
}
