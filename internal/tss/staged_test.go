package tss

import (
	"fmt"
	"math/rand"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// buildRandomPair grows the same random disjoint entry set into a staged
// and an unstaged classifier (same order option), returning both plus the
// accepted entries.
func buildRandomPair(rng *rand.Rand, l *bitvec.Layout, order MaskOrder, n int) (staged, unstaged *Classifier, ref []*Entry) {
	staged = New(l, Options{Order: order})
	unstaged = New(l, Options{Order: order, DisableStagedLookup: true})
	for i := 0; i < n; i++ {
		key, mask := bitvec.NewVec(l), bitvec.NewVec(l)
		for f := 0; f < l.NumFields(); f++ {
			plen := rng.Intn(l.Field(f).Width + 1)
			for b := 0; b < plen; b++ {
				mask.SetFieldBit(l, f, b)
				if rng.Intn(2) == 1 {
					key.SetFieldBit(l, f, b)
				}
			}
		}
		a := flowtable.Action(rng.Intn(2))
		e1 := &Entry{Key: key, Mask: mask, Action: a, RuleName: fmt.Sprintf("r%d", i)}
		e2 := &Entry{Key: key.Clone(), Mask: mask.Clone(), Action: a, RuleName: e1.RuleName}
		err1 := staged.Insert(e1, 0)
		err2 := unstaged.Insert(e2, 0)
		if (err1 == nil) != (err2 == nil) {
			panic("staged and unstaged classifiers disagree on insert acceptance")
		}
		if err1 == nil {
			ref = append(ref, e1)
		}
	}
	return staged, unstaged, ref
}

func randomHeader(rng *rand.Rand, l *bitvec.Layout) bitvec.Vec {
	h := bitvec.NewVec(l)
	for f := 0; f < l.NumFields(); f++ {
		if l.Field(f).Width <= 64 {
			h.SetField(l, f, rng.Uint64())
		}
	}
	return h
}

// TestStagedLookupEquivalence is the staged-vs-unstaged property: for
// randomized rule/mask/priority sets under all three mask orders, the
// staged lookup returns the identical entry, the identical probe count,
// and identical hit accounting as the unstaged full probe. Headers are a
// mix of uniform random (mostly misses) and per-entry near-matches
// (guaranteed hits plus single-bit-flip near-misses that stress the stage
// filters' late stages).
func TestStagedLookupEquivalence(t *testing.T) {
	for _, l := range []*bitvec.Layout{bitvec.IPv4Tuple, bitvec.IPv6Tuple} {
		for _, order := range []MaskOrder{OrderHash, OrderInsertion, OrderHitCount} {
			t.Run(fmt.Sprintf("%s/order=%d", l, order), func(t *testing.T) {
				rng := rand.New(rand.NewSource(42 + int64(order)))
				staged, unstaged, ref := buildRandomPair(rng, l, order, 200)
				if !staged.Staged() || unstaged.Staged() {
					t.Fatal("staging flags wrong way round")
				}
				var headers []bitvec.Vec
				for i := 0; i < 400; i++ {
					headers = append(headers, randomHeader(rng, l))
				}
				for _, e := range ref {
					// The key itself is a matching header (wildcarded bits
					// read zero)...
					headers = append(headers, e.Key.Clone())
					// ...and a one-bit flip inside the mask is a near-miss
					// that survives early stages when the flip is late.
					set := -1
					for b := 0; b < l.Bits(); b++ {
						if e.Mask.Bit(b) {
							set = b
						}
					}
					if set >= 0 {
						nm := e.Key.Clone()
						if nm.Bit(set) {
							nm.ClearBit(set)
						} else {
							nm.SetBit(set)
						}
						headers = append(headers, nm)
					}
				}
				for i, h := range headers {
					now := int64(i)
					e1, p1, ok1 := staged.Lookup(h, now)
					e2, p2, ok2 := unstaged.Lookup(h, now)
					if ok1 != ok2 || p1 != p2 {
						t.Fatalf("header %d: staged (probes=%d ok=%v) vs unstaged (probes=%d ok=%v)",
							i, p1, ok1, p2, ok2)
					}
					if ok1 {
						if !e1.Key.Equal(e2.Key) || !e1.Mask.Equal(e2.Mask) ||
							e1.Action != e2.Action || e1.RuleName != e2.RuleName {
							t.Fatalf("header %d: staged hit %s, unstaged hit %s",
								i, e1.Format(l), e2.Format(l))
						}
					}
				}
				// Hit accounting: scan statistics agree except StageSkips
				// (which only the staged classifier records)...
				s1, s2 := staged.Stats(), unstaged.Stats()
				s1.StageSkips, s2.StageSkips = 0, 0
				if s1 != s2 {
					t.Fatalf("stats diverge: staged %+v, unstaged %+v", s1, s2)
				}
				// ...and per-entry hit counters agree entry for entry.
				d1, d2 := staged.Entries(), unstaged.Entries()
				if len(d1) != len(d2) {
					t.Fatalf("entry dumps: %d vs %d entries", len(d1), len(d2))
				}
				hits1 := map[string]uint64{}
				for _, e := range d1 {
					hits1[e.Key.Key()+"|"+e.Mask.Key()] = e.Hits
				}
				for _, e := range d2 {
					if got := hits1[e.Key.Key()+"|"+e.Mask.Key()]; got != e.Hits {
						t.Fatalf("entry %s: staged hits %d, unstaged %d",
							e.Format(l), got, e.Hits)
					}
				}
				// The attack-shaped misses above must actually exercise the
				// early bail, or this test proves nothing about staging.
				if staged.Staged() && staged.Stats().StageSkips == 0 && l == bitvec.IPv4Tuple {
					t.Error("staged classifier recorded no stage skips")
				}
			})
		}
	}
}

// FuzzStagedEquivalence cross-checks a staged and an unstaged classifier
// holding the same TSE-shaped entry set on fuzzer-chosen headers.
func FuzzStagedEquivalence(f *testing.F) {
	l := bitvec.IPv4Tuple
	staged := New(l, Options{DisableOverlapCheck: true})
	unstaged := New(l, Options{DisableOverlapCheck: true, DisableStagedLookup: true})
	populateDistinctMasks(staged, l, 128)
	populateDistinctMasks(unstaged, l, 128)
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<63, uint64(3))
	f.Fuzz(func(t *testing.T, w0, w1 uint64) {
		h := bitvec.NewVec(l)
		h[0], h[1] = w0, w1
		for b := l.Bits(); b < len(h)*64; b++ {
			h.ClearBit(b)
		}
		e1, p1, ok1 := staged.Lookup(h, 0)
		e2, p2, ok2 := unstaged.Lookup(h, 0)
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("staged (probes=%d ok=%v) vs unstaged (probes=%d ok=%v)", p1, ok1, p2, ok2)
		}
		if ok1 && !e1.Key.Equal(e2.Key) {
			t.Fatalf("staged hit %s, unstaged hit %s", e1.Format(l), e2.Format(l))
		}
	})
}

// TestStagedCustomBoundaries exercises the Options.Stages override: word-
// granular stages must classify identically to the derived boundaries.
func TestStagedCustomBoundaries(t *testing.T) {
	l := bitvec.IPv4Tuple
	rng := rand.New(rand.NewSource(9))
	def := New(l, Options{})
	custom := New(l, Options{Stages: []int{1, 2}}) // same as derived for IPv4
	degenerate := New(l, Options{Stages: []int{2}})
	if !def.Staged() || !custom.Staged() {
		t.Fatal("staging should be on")
	}
	if degenerate.Staged() {
		t.Error("single-stage override should disable staging")
	}
	populateDistinctMasks(def, l, 64)
	populateDistinctMasks(custom, l, 64)
	for i := 0; i < 200; i++ {
		h := randomHeader(rng, l)
		_, p1, ok1 := def.Lookup(h, 0)
		_, p2, ok2 := custom.Lookup(h, 0)
		if p1 != p2 || ok1 != ok2 {
			t.Fatalf("derived vs custom boundaries diverge: (%d,%v) vs (%d,%v)", p1, ok1, p2, ok2)
		}
	}
}

// TestStageSkipsCounted pins the skip accounting on the attack shape: a
// full miss over n two-word masks skips the second word of (nearly) every
// probe, so StageSkips is close to Probes.
func TestStageSkipsCounted(t *testing.T) {
	l := bitvec.IPv4Tuple
	c := New(l, Options{DisableOverlapCheck: true})
	populateDistinctMasks(c, l, 256)
	miss := bitvec.NewVec(l)
	sip, _ := l.FieldIndex("ip_src")
	miss.SetField(l, sip, 0xffffffff)
	_, probes, ok := c.Lookup(miss, 0)
	if ok {
		t.Fatal("expected a miss")
	}
	s := c.Stats()
	if s.StageSkips == 0 {
		t.Fatal("no stage skips recorded on an attack-shaped miss scan")
	}
	if s.StageSkips > s.Probes {
		t.Fatalf("skips %d > probes %d", s.StageSkips, s.Probes)
	}
	// At 256 TSE-shaped masks at least half the probes must bail early
	// (the measured rate is >90%; the bound is loose to stay robust).
	if s.StageSkips < uint64(probes)/2 {
		t.Errorf("skips = %d of %d probes; staging is not engaging", s.StageSkips, probes)
	}
}

// TestHandleShardStats: per-handle statistics are private, and the
// classifier total is the sum over handles.
func TestHandleShardStats(t *testing.T) {
	c := New(bitvec.HYP, Options{})
	loadFig3(t, c)
	h1, h2 := c.NewHandle(), c.NewHandle()
	for i := 0; i < 5; i++ {
		h1.Lookup(hyp(1), 0)
	}
	for i := 0; i < 3; i++ {
		h2.Lookup(hyp(7), 0)
	}
	s1, s2 := h1.Stats(), h2.Stats()
	if s1.Lookups != 5 || s1.Hits != 5 {
		t.Errorf("handle1 stats = %+v, want 5 lookups 5 hits", s1)
	}
	if s2.Lookups != 3 || s2.Hits != 3 {
		t.Errorf("handle2 stats = %+v, want 3 lookups 3 hits", s2)
	}
	tot := c.Stats()
	if tot.Lookups != 8 || tot.Hits != 8 {
		t.Errorf("classifier total = %+v, want 8 lookups 8 hits", tot)
	}
}

// BenchmarkLookupParallel measures parallel misses over one shared
// classifier with b.RunParallel: each goroutine holds its own Handle, so
// with the lock-free snapshot read path the only shared memory is the
// streamed (read-only) scan list. On a multi-core host throughput scales
// with GOMAXPROCS where the PR 1 reader/writer lock was flat; on a
// single-core host (GOMAXPROCS=1, the committed BENCH files record it)
// the benchmark degenerates to the serial figure.
func BenchmarkLookupParallel(b *testing.B) {
	l := bitvec.IPv4Tuple
	for _, masks := range []int{256, 4096} {
		b.Run(fmt.Sprintf("masks=%d", masks), func(b *testing.B) {
			c := New(l, Options{DisableOverlapCheck: true})
			populateDistinctMasks(c, l, masks)
			h := bitvec.NewVec(l)
			h.SetField(l, 0, 0xffffffff)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				hd := c.NewHandle()
				for pb.Next() {
					hd.Lookup(h, 0)
				}
			})
		})
	}
}
