package tss

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// costEntries builds n disjoint entries whose masks share one word shape
// (ip_src/32 + tp_dst prefix j): under uniform-cost masks, OrderProbeCost
// must reduce to OrderHitCount.
func costEntries(l *bitvec.Layout, n int) []*Entry {
	sip, _ := l.FieldIndex("ip_src")
	dp, _ := l.FieldIndex("tp_dst")
	es := make([]*Entry, 0, n)
	for j := 1; len(es) < n; j++ {
		mask := bitvec.PrefixMask(l, sip, 32).Or(bitvec.PrefixMask(l, dp, j))
		key := bitvec.NewVec(l)
		key.SetField(l, sip, uint64(j))
		key.SetFieldBit(l, dp, j-1)
		es = append(es, &Entry{Key: key.And(mask), Mask: mask, Action: flowtable.Allow})
	}
	return es
}

// TestProbeCostMatchesHitCountUniform is the satellite equivalence
// requirement: on uniform traffic — every mask the same measured probe
// cost (staging off, equal nonzero-word counts) — OrderProbeCost yields
// exactly the scan order OrderHitCount does, distinct hit frequencies and
// all.
func TestProbeCostMatchesHitCountUniform(t *testing.T) {
	l := bitvec.IPv4Tuple
	byHits := New(l, Options{Order: OrderHitCount, DisableStagedLookup: true})
	byCost := New(l, Options{Order: OrderProbeCost, DisableStagedLookup: true})
	es := costEntries(l, 8)
	for _, c := range []*Classifier{byHits, byCost} {
		for i, e := range costEntries(l, 8) {
			if err := c.Insert(e, 0); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
	}
	// Distinct per-entry hit frequencies, interleaved so the resort has
	// real work to do.
	for round := 0; round < 8; round++ {
		for i, e := range es {
			if round <= i*2%7 {
				continue
			}
			for _, c := range []*Classifier{byHits, byCost} {
				if _, _, ok := c.Lookup(e.Key, 1); !ok {
					t.Fatalf("entry %d missed", i)
				}
			}
		}
	}
	// One more lookup triggers the lazy resort on both.
	miss := bitvec.FullMask(l)
	byHits.Lookup(miss, 2)
	byCost.Lookup(miss, 2)

	mh, mc := byHits.Masks(), byCost.Masks()
	if len(mh) != len(mc) {
		t.Fatalf("mask counts diverge: %d vs %d", len(mh), len(mc))
	}
	for i := range mh {
		if !mh[i].Equal(mc[i]) {
			t.Fatalf("scan position %d diverges between OrderHitCount and OrderProbeCost", i)
		}
	}
}

// TestProbeCostPrefersCheapMask: at equal hit counts, OrderProbeCost
// promotes the mask with the lower measured probe cost (fewer words
// touched per probe) ahead of the expensive one, where OrderHitCount's
// stable sort keeps insertion order.
func TestProbeCostPrefersCheapMask(t *testing.T) {
	l := bitvec.IPv4Tuple
	sip, _ := l.FieldIndex("ip_src")

	wide := bitvec.FullMask(l) // touches every layout word
	wideKey := bitvec.NewVec(l)
	wideKey.SetField(l, sip, 0x02000000)
	narrow := bitvec.PrefixMask(l, sip, 8) // one word
	narrowKey := bitvec.NewVec(l)
	narrowKey.SetField(l, sip, 0x01000000)

	run := func(order MaskOrder) *Classifier {
		c := New(l, Options{Order: order, DisableStagedLookup: true})
		// Expensive mask inserted first: a hit-count tie keeps it first.
		if err := c.Insert(&Entry{Key: wideKey.And(wide), Mask: wide, Action: flowtable.Allow}, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(&Entry{Key: narrowKey.And(narrow), Mask: narrow, Action: flowtable.Allow}, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			c.Lookup(wideKey, 1)
			c.Lookup(narrowKey, 1)
		}
		c.Lookup(bitvec.NewVec(l), 2) // trigger the lazy resort
		return c
	}

	if masks := run(OrderHitCount).Masks(); !masks[0].Equal(wide) {
		t.Error("OrderHitCount broke its stable tie (expected insertion order)")
	}
	if masks := run(OrderProbeCost).Masks(); !masks[0].Equal(narrow) {
		t.Error("OrderProbeCost did not promote the cheaper mask at equal hits")
	}
}

// TestProbeCostKeyMeasuresSkips pins the cost formula: a group whose
// probes mostly bail at a stage boundary is measured far cheaper than a
// never-skipping group of the same width.
func TestProbeCostKeyMeasuresSkips(t *testing.T) {
	mk := func(words int, probes, skips, hits uint64) *group {
		g := &group{words: make([]int, words),
			hits: new(uint64), probes: new(uint64), skips: new(uint64)}
		*g.hits, *g.probes, *g.skips = hits, probes, skips
		return g
	}
	// 4-word mask, 75 % stage-skip rate: mean words = (25*4 + 75)/100 = 1.75.
	cheap := probeCostKey(mk(4, 100, 75, 10))
	full := probeCostKey(mk(4, 100, 0, 10))
	if want := 10 / 1.75; cheap != want {
		t.Errorf("skipping group key = %v, want %v", cheap, want)
	}
	if want := 10 / 4.0; full != want {
		t.Errorf("full-probe group key = %v, want %v", full, want)
	}
	if cheap <= full {
		t.Error("measured skips did not lower the probe cost")
	}
	// No observations: cost defaults to the word count.
	if got, want := probeCostKey(mk(2, 0, 0, 8)), 4.0; got != want {
		t.Errorf("unobserved group key = %v, want %v", got, want)
	}
}
