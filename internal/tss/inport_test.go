package tss

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// portedHeader builds an IPv4TuplePort header: the ingress vport followed
// by the 5-tuple.
func portedHeader(inPort uint64, src, dst uint32, sp, dp uint64) bitvec.Vec {
	l := bitvec.IPv4TuplePort
	h := bitvec.NewVec(l)
	set := func(name string, v uint64) {
		i, _ := l.FieldIndex(name)
		h.SetField(l, i, v)
	}
	set("in_port", inPort)
	set("ip_src", uint64(src))
	set("ip_dst", uint64(dst))
	set("ip_proto", 6)
	set("tp_src", sp)
	set("tp_dst", dp)
	return h
}

// TestInPortMatch proves ingress-port matching works end to end: two
// entries identical but for in_port are distinct flows with distinct
// verdicts, the per-port ACL shape the OVS flow key supports natively.
func TestInPortMatch(t *testing.T) {
	l := bitvec.IPv4TuplePort
	c := New(l, Options{})
	inp, _ := l.FieldIndex("in_port")
	dp, _ := l.FieldIndex("tp_dst")

	// Match (in_port, tp_dst) exactly: port 1 may reach :80, port 2 not.
	mask := bitvec.FieldMask(l, inp).Or(bitvec.FieldMask(l, dp))
	mk := func(port uint64, a flowtable.Action) *Entry {
		key := bitvec.NewVec(l)
		key.SetField(l, inp, port)
		key.SetField(l, dp, 80)
		return &Entry{Key: key, Mask: mask, Action: a, Port: int(port)}
	}
	if err := c.Insert(mk(1, flowtable.Allow), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(mk(2, flowtable.Drop), 0); err != nil {
		t.Fatal(err)
	}
	if c.EntryCount() != 2 {
		t.Fatalf("entries = %d, want 2 (same 5-tuple, distinct ports)", c.EntryCount())
	}
	if c.MaskCount() != 1 {
		t.Fatalf("masks = %d, want 1 (both entries share the (in_port, tp_dst) mask)", c.MaskCount())
	}

	for _, tc := range []struct {
		port uint64
		want flowtable.Action
	}{{1, flowtable.Allow}, {2, flowtable.Drop}} {
		h := portedHeader(tc.port, 0x08080808, 0xc0a80002, 40000, 80)
		e, _, ok := c.Lookup(h, 0)
		if !ok {
			t.Fatalf("in_port=%d missed", tc.port)
		}
		if e.Action != tc.want {
			t.Errorf("in_port=%d -> %v, want %v", tc.port, e.Action, tc.want)
		}
	}
	// A port neither entry covers misses instead of borrowing a verdict.
	if _, _, ok := c.Lookup(portedHeader(3, 0x08080808, 0xc0a80002, 40000, 80), 0); ok {
		t.Error("in_port=3 matched; the port must be part of the flow key")
	}
}

// TestInPortStaged checks the ported layout still stages: the port-bearing
// leading word and the L4 tail are separate probe stages, so a mask
// constrained only in the leading word bails before the L4 word.
func TestInPortStaged(t *testing.T) {
	l := bitvec.IPv4TuplePort
	bounds := l.StageBoundaries()
	if len(bounds) < 2 {
		t.Fatalf("stage boundaries = %v; ported layout should stage", bounds)
	}
	if bounds[len(bounds)-1] != l.Words() {
		t.Fatalf("last boundary = %d, want word count %d", bounds[len(bounds)-1], l.Words())
	}
}
