package tss

import "tse/internal/telemetry"

// AttachMetrics registers pull-model collectors over the classifier's
// activity counters and snapshot shape. Every closure reads through
// Stats(), MaskCount(), or EntryCount() — lock-free or shard-summing
// snapshot paths — so a live /metrics scrape never contends with the
// lookup fast path. Attaching a second classifier to the same registry
// replaces the closures (the registry's CounterFunc/GaugeFunc semantics);
// a scenario harness attaches the switch it is currently driving.
func (c *Classifier) AttachMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	stat := func(get func(Stats) uint64) func() uint64 {
		return func() uint64 { return get(c.Stats()) }
	}
	reg.CounterFunc("tse_tss_lookups_total",
		"Megaflow cache lookups (analog of OVS dpif_netdev masked classifier hits+misses).",
		stat(func(s Stats) uint64 { return s.Lookups }))
	reg.CounterFunc("tse_tss_hits_total",
		"Megaflow cache hits.",
		stat(func(s Stats) uint64 { return s.Hits }))
	reg.CounterFunc("tse_tss_misses_total",
		"Megaflow cache misses (slow-path candidates).",
		stat(func(s Stats) uint64 { return s.Misses }))
	reg.CounterFunc("tse_tss_probes_total",
		"Mask-group probes; probes/lookups is the per-packet effort the tuple-space attack inflates.",
		stat(func(s Stats) uint64 { return s.Probes }))
	reg.CounterFunc("tse_tss_stage_skips_total",
		"Probes rejected at a stage boundary before full-width hash+compare work.",
		stat(func(s Stats) uint64 { return s.StageSkips }))
	reg.CounterFunc("tse_tss_inserted_total",
		"Megaflow entries inserted.",
		stat(func(s Stats) uint64 { return s.Inserted }))
	reg.CounterFunc("tse_tss_deleted_total",
		"Megaflow entries deleted.",
		stat(func(s Stats) uint64 { return s.Deleted }))
	reg.CounterFunc("tse_tss_publishes_total",
		"Copy-on-write snapshot publications (one per InsertBatch, however large).",
		stat(func(s Stats) uint64 { return s.Publishes }))
	reg.GaugeFunc("tse_megaflow_masks",
		"Installed mask groups |M| — the attack's amplification lever.",
		func() int64 { return int64(c.MaskCount()) })
	reg.GaugeFunc("tse_megaflow_entries",
		"Installed megaflow entries |C|.",
		func() int64 { return int64(c.EntryCount()) })
}
