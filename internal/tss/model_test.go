package tss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// model is a naive reference implementation of the classifier: a flat
// slice of disjoint entries with linear operations.
type model struct {
	entries []*Entry
}

func (m *model) lookup(h bitvec.Vec) *Entry {
	for _, e := range m.entries {
		if bitvec.Covers(e.Key, e.Mask, h) {
			return e
		}
	}
	return nil
}

func (m *model) insert(e *Entry) bool {
	for _, ex := range m.entries {
		if ex.Key.Equal(e.Key) && ex.Mask.Equal(e.Mask) {
			ex.Action = e.Action
			return true // refresh
		}
	}
	for _, ex := range m.entries {
		if bitvec.Overlap(e.Key, e.Mask, ex.Key, ex.Mask) {
			return false
		}
	}
	m.entries = append(m.entries, e)
	return true
}

func (m *model) delete(key, mask bitvec.Vec) bool {
	for i, ex := range m.entries {
		if ex.Key.Equal(key) && ex.Mask.Equal(mask) {
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			return true
		}
	}
	return false
}

// TestModelBasedRandomOps drives random insert/delete/lookup/expire
// sequences through the classifier and the reference model in lockstep.
func TestModelBasedRandomOps(t *testing.T) {
	l := bitvec.HYP2
	for _, order := range []MaskOrder{OrderHash, OrderInsertion, OrderHitCount} {
		rng := rand.New(rand.NewSource(int64(order)*7 + 1))
		c := New(l, Options{Order: order})
		m := &model{}
		randomEntry := func() *Entry {
			key, mask := bitvec.NewVec(l), bitvec.NewVec(l)
			for b := 0; b < l.Bits(); b++ {
				if rng.Intn(3) > 0 {
					mask.SetBit(b)
					if rng.Intn(2) == 1 {
						key.SetBit(b)
					}
				}
			}
			return &Entry{Key: key, Mask: mask, Action: flowtable.Action(rng.Intn(2))}
		}
		randomHeader := func() bitvec.Vec {
			h := bitvec.NewVec(l)
			h.SetField(l, 0, uint64(rng.Intn(8)))
			h.SetField(l, 1, uint64(rng.Intn(16)))
			return h
		}
		for op := 0; op < 4000; op++ {
			switch rng.Intn(4) {
			case 0: // insert
				e := randomEntry()
				e2 := &Entry{Key: e.Key.Clone(), Mask: e.Mask.Clone(), Action: e.Action}
				errC := c.Insert(e, int64(op))
				okM := m.insert(e2)
				if (errC == nil) != okM {
					t.Fatalf("op %d: insert disagreement: classifier err=%v model ok=%v",
						op, errC, okM)
				}
			case 1: // delete
				var key, mask bitvec.Vec
				if len(m.entries) > 0 && rng.Intn(2) == 0 {
					victim := m.entries[rng.Intn(len(m.entries))]
					key, mask = victim.Key.Clone(), victim.Mask.Clone()
				} else {
					e := randomEntry()
					key, mask = e.Key, e.Mask
				}
				if got, want := c.Delete(key, mask), m.delete(key, mask); got != want {
					t.Fatalf("op %d: delete disagreement: %v vs %v", op, got, want)
				}
			case 2, 3: // lookup
				h := randomHeader()
				eC, _, okC := c.Lookup(h, int64(op))
				eM := m.lookup(h)
				if okC != (eM != nil) {
					t.Fatalf("op %d: lookup hit disagreement for %s", op, h.Format(l))
				}
				if okC && (eC.Action != eM.Action || !eC.Key.Equal(eM.Key) || !eC.Mask.Equal(eM.Mask)) {
					t.Fatalf("op %d: lookup result disagreement", op)
				}
			}
			if c.EntryCount() != len(m.entries) {
				t.Fatalf("op %d: entry count %d vs model %d", op, c.EntryCount(), len(m.entries))
			}
		}
	}
}

// TestInsertDeleteRoundTripQuick: inserting then deleting a random valid
// entry leaves the classifier where it started.
func TestInsertDeleteRoundTripQuick(t *testing.T) {
	l := bitvec.IPv4Tuple
	f := func(kw, mw [2]uint64) bool {
		c := New(l, Options{})
		mask := bitvec.NewVec(l)
		copy(mask, mw[:])
		for b := l.Bits(); b < len(mask)*64; b++ {
			mask.ClearBit(b)
		}
		key := bitvec.NewVec(l)
		copy(key, kw[:])
		key = key.And(mask)
		e := &Entry{Key: key, Mask: mask, Action: flowtable.Allow}
		if err := c.Insert(e, 0); err != nil {
			return false
		}
		if c.EntryCount() != 1 || c.MaskCount() != 1 {
			return false
		}
		if !c.Delete(key, mask) {
			return false
		}
		return c.EntryCount() == 0 && c.MaskCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLookupNeverFalseHitQuick: a lookup hit's entry always covers the
// header (no hash-collision false positives).
func TestLookupNeverFalseHitQuick(t *testing.T) {
	l := bitvec.IPv4Tuple
	c := New(l, Options{DisableOverlapCheck: true})
	populateDistinctMasks(c, l, 64)
	f := func(hw [2]uint64) bool {
		h := bitvec.NewVec(l)
		copy(h, hw[:])
		for b := l.Bits(); b < len(h)*64; b++ {
			h.ClearBit(b)
		}
		e, _, ok := c.Lookup(h, 0)
		if !ok {
			return true
		}
		return bitvec.Covers(e.Key, e.Mask, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
