package tss

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// BenchmarkInsertAtManyMasks measures the writer-side cost of one megaflow
// install into an attack-inflated classifier: the copy-on-write publish
// re-copies the O(|M|) probe mirror, so this is the per-upcall bill the
// snapshot design charges the slow path to keep the read path lock-free
// (the mirror itself is maintained incrementally; the copy is a memcpy).
//
// Installs are idempotent refreshes round-robin over the 4096 seeded
// megaflows — the one-entry-per-mask attack shape — so the classifier
// stays in steady state for any b.N: each op pays one tiny-group clone
// plus the full O(|M|) publish, which is the quantity under test.
func BenchmarkInsertAtManyMasks(b *testing.B) {
	l := bitvec.IPv4Tuple
	c := New(l, Options{DisableOverlapCheck: true})
	populateDistinctMasks(c, l, 4096)
	seed := c.Entries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := seed[i%len(seed)]
		c.Insert(&Entry{Key: e.Key, Mask: e.Mask, Action: flowtable.Drop}, 0)
	}
}

// BenchmarkInsertBatchAtManyMasks is the amortised counterpart: one
// 32-entry InsertBatch per op — the handler-drain burst shape — so the
// O(|M|) publish is paid once per 32 installs instead of per install.
// Compare ns/op/32 against BenchmarkInsertAtManyMasks to read the
// per-install win (the bench JSON suite records both).
func BenchmarkInsertBatchAtManyMasks(b *testing.B) {
	const burst = 32
	l := bitvec.IPv4Tuple
	c := New(l, Options{DisableOverlapCheck: true})
	populateDistinctMasks(c, l, 4096)
	seed := c.Entries()
	es := make([]*Entry, burst)
	b.ReportAllocs()
	b.ResetTimer()
	seq := 0
	for i := 0; i < b.N; i++ {
		for j := range es {
			e := seed[seq%len(seed)]
			seq++
			es[j] = &Entry{Key: e.Key, Mask: e.Mask, Action: flowtable.Drop}
		}
		c.InsertBatch(es, 0)
	}
}
