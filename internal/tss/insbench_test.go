package tss

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// BenchmarkInsertAtManyMasks measures the writer-side cost of one megaflow
// install into an attack-inflated classifier: the copy-on-write publish
// re-copies the O(|M|) probe mirror, so this is the per-upcall bill the
// snapshot design charges the slow path to keep the read path lock-free
// (the mirror itself is maintained incrementally; the copy is a memcpy).
func BenchmarkInsertAtManyMasks(b *testing.B) {
	l := bitvec.IPv4Tuple
	c := New(l, Options{DisableOverlapCheck: true})
	populateDistinctMasks(c, l, 4096)
	sip, _ := l.FieldIndex("ip_src")
	mask := bitvec.FullMask(l)
	key := bitvec.NewVec(l)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key.SetField(l, sip, uint64(i))
		c.Insert(&Entry{Key: key.Clone(), Mask: mask, Action: flowtable.Drop}, 0)
	}
}
