package packet

import (
	"testing"
	"testing/quick"
)

func TestICMPv4RoundTrip(t *testing.T) {
	eth := Ethernet{Src: [6]byte{2, 0, 0, 0, 0, 1}, Dst: [6]byte{2, 0, 0, 0, 0, 2}}
	ip := IPv4{TTL: 64, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}}
	icmp := ICMPv4{Type: 8, Code: 0, RestOfHeader: 0x00010007} // echo req, id 1 seq 7
	frame, err := SerializeICMPv4(eth, ip, icmp, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(frame, ParseOptions{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.V4 == nil || p.V4.Protocol != ProtoICMP {
		t.Fatalf("IPv4 layer %+v", p.V4)
	}
	got, payload, err := ParseICMPv4(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != 8 || got.RestOfHeader != 0x00010007 {
		t.Errorf("ICMP layer %+v", got)
	}
	if string(payload) != "ping" {
		t.Errorf("payload %q", payload)
	}
	// Corruption detection.
	frame[len(frame)-1] ^= 0xff
	p2, _ := Parse(frame, ParseOptions{})
	if _, _, err := ParseICMPv4(p2); err == nil {
		t.Error("corrupted ICMP accepted")
	}
}

func TestParseICMPv4Errors(t *testing.T) {
	p := &Packet{}
	if _, _, err := ParseICMPv4(p); err == nil {
		t.Error("non-IPv4 accepted")
	}
	p.V4 = &IPv4{Protocol: ProtoICMP}
	p.Payload = []byte{8, 0}
	if _, _, err := ParseICMPv4(p); err == nil {
		t.Error("truncated ICMP accepted")
	}
}

func TestARPRoundTrip(t *testing.T) {
	arp := ARP{
		Op:        1,
		SenderMAC: [6]byte{2, 0, 0, 0, 0, 1},
		SenderIP:  [4]byte{10, 0, 0, 1},
		TargetIP:  [4]byte{10, 0, 0, 2},
	}
	frame := SerializeARP(Ethernet{}, arp)
	p, err := Parse(frame, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseARP(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != 1 || got.SenderIP != arp.SenderIP || got.TargetIP != arp.TargetIP {
		t.Errorf("ARP %+v", got)
	}
}

func TestParseARPErrors(t *testing.T) {
	p := &Packet{}
	if _, err := ParseARP(p); err == nil {
		t.Error("non-ARP accepted")
	}
	frame := SerializeARP(Ethernet{}, ARP{Op: 2})
	frame[ethernetLen] = 9 // bogus htype
	p2, _ := Parse(frame, ParseOptions{})
	if _, err := ParseARP(p2); err == nil {
		t.Error("bogus htype accepted")
	}
	short := SerializeARP(Ethernet{}, ARP{Op: 2})[:ethernetLen+10]
	p3, _ := Parse(short, ParseOptions{})
	if _, err := ParseARP(p3); err == nil {
		t.Error("truncated ARP accepted")
	}
}

// Checksum properties (RFC 1071): appending the checksum to the data
// yields a verifying sum of zero, for arbitrary inputs.
func TestChecksumVerifiesQuick(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		ck := Checksum(data)
		withCk := append(append([]byte(nil), data...), byte(ck>>8), byte(ck))
		return Checksum(withCk) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Serialize/Parse round-trip property over random UDP packets.
func TestSerializeParseRoundTripQuick(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := &Packet{
			V4:      &IPv4{TTL: 64, Src: src, Dst: dst},
			UDP:     &UDP{SrcPort: sp, DstPort: dp},
			Payload: payload,
		}
		frame, err := p.Serialize()
		if err != nil {
			return false
		}
		got, err := Parse(frame, ParseOptions{VerifyChecksums: true})
		if err != nil || got.UDP == nil {
			return false
		}
		if got.UDP.SrcPort != sp || got.UDP.DstPort != dp || got.V4.Src != src {
			return false
		}
		return string(got.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
