// Package packet implements the wire formats the attack traffic travels
// in: Ethernet II, IPv4, IPv6, TCP, and UDP, with serialization, parsing,
// and checksum handling. It is the repository's stdlib replacement for the
// capture/crafting library the paper's tooling used (gopacket/pcap replay,
// §5.4): adversarial traces built by package core are turned into real
// frames here, stored via package pcap, and parsed back into classifier
// keys on the receive path.
package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherTypes understood by Parse.
const (
	// EtherTypeIPv4 is the Ethernet II type for IPv4.
	EtherTypeIPv4 = 0x0800
	// EtherTypeIPv6 is the Ethernet II type for IPv6.
	EtherTypeIPv6 = 0x86dd
)

// IP protocol numbers.
const (
	// ProtoTCP is IPPROTO_TCP.
	ProtoTCP = 6
	// ProtoUDP is IPPROTO_UDP.
	ProtoUDP = 17
)

// Ethernet is an Ethernet II header.
type Ethernet struct {
	// Dst and Src are the MAC addresses.
	Dst, Src [6]byte
	// EtherType selects the payload protocol.
	EtherType uint16
}

const ethernetLen = 14

// IPv4 is an IPv4 header without options.
type IPv4 struct {
	// TOS is the type-of-service / DSCP byte.
	TOS byte
	// ID is the identification field.
	ID uint16
	// Flags holds the 3 flag bits in its low bits (DF = 0b010).
	Flags byte
	// FragOffset is the 13-bit fragment offset in 8-byte units.
	FragOffset uint16
	// TTL is the time-to-live (the "unimportant" field the paper's noise
	// varies, §5.2).
	TTL byte
	// Protocol selects the transport (ProtoTCP, ProtoUDP, ...).
	Protocol byte
	// Src and Dst are the addresses.
	Src, Dst [4]byte
}

const ipv4Len = 20

// IPv6 is a fixed IPv6 header (no extension headers).
type IPv6 struct {
	// TrafficClass and FlowLabel are the QoS fields.
	TrafficClass byte
	FlowLabel    uint32
	// NextHeader selects the transport.
	NextHeader byte
	// HopLimit is the TTL analogue.
	HopLimit byte
	// Src and Dst are the addresses.
	Src, Dst [16]byte
}

const ipv6Len = 40

// TCP is a TCP header without options.
type TCP struct {
	// SrcPort and DstPort are the transport ports.
	SrcPort, DstPort uint16
	// Seq and Ack are the sequence numbers.
	Seq, Ack uint32
	// Flags holds the 8 flag bits (SYN = 0x02, ACK = 0x10, ...).
	Flags byte
	// Window is the advertised receive window.
	Window uint16
	// Urgent is the urgent pointer.
	Urgent uint16
}

const tcpLen = 20

// UDP is a UDP header.
type UDP struct {
	// SrcPort and DstPort are the transport ports.
	SrcPort, DstPort uint16
}

const udpLen = 8

// Packet is a decoded frame: an Ethernet header, one network layer, at
// most one transport layer, and the remaining payload.
type Packet struct {
	// Eth is always present.
	Eth Ethernet
	// V4 or V6 is set according to the EtherType.
	V4 *IPv4
	V6 *IPv6
	// TCP or UDP is set according to the IP protocol, when parseable.
	TCP *TCP
	UDP *UDP
	// Payload is the transport payload (or the unparsed IP payload).
	Payload []byte
}

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the TCP/UDP pseudo-header contribution.
func pseudoHeaderSum(src, dst []byte, proto byte, length int) uint32 {
	var sum uint32
	for i := 0; i+1 < len(src); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(src[i:]))
		sum += uint32(binary.BigEndian.Uint16(dst[i:]))
	}
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes a TCP/UDP checksum including the pseudo
// header. segment must have its checksum field zeroed.
func transportChecksum(src, dst []byte, proto byte, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i:]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	ck := ^uint16(sum)
	if ck == 0 && proto == ProtoUDP {
		ck = 0xffff // RFC 768: transmitted as all ones
	}
	return ck
}

// Serialize encodes the packet into a wire-format frame, filling in all
// length and checksum fields.
func (p *Packet) Serialize() ([]byte, error) {
	transport, proto, err := p.serializeTransport()
	if err != nil {
		return nil, err
	}
	switch {
	case p.V4 != nil:
		return p.serializeIPv4(transport, proto)
	case p.V6 != nil:
		return p.serializeIPv6(transport, proto)
	default:
		return nil, fmt.Errorf("packet: no network layer")
	}
}

func (p *Packet) serializeTransport() ([]byte, byte, error) {
	switch {
	case p.TCP != nil && p.UDP != nil:
		return nil, 0, fmt.Errorf("packet: both TCP and UDP set")
	case p.TCP != nil:
		seg := make([]byte, tcpLen+len(p.Payload))
		t := p.TCP
		binary.BigEndian.PutUint16(seg[0:], t.SrcPort)
		binary.BigEndian.PutUint16(seg[2:], t.DstPort)
		binary.BigEndian.PutUint32(seg[4:], t.Seq)
		binary.BigEndian.PutUint32(seg[8:], t.Ack)
		seg[12] = 5 << 4 // data offset: 5 words, no options
		seg[13] = t.Flags
		binary.BigEndian.PutUint16(seg[14:], t.Window)
		binary.BigEndian.PutUint16(seg[18:], t.Urgent)
		copy(seg[tcpLen:], p.Payload)
		return seg, ProtoTCP, nil
	case p.UDP != nil:
		seg := make([]byte, udpLen+len(p.Payload))
		binary.BigEndian.PutUint16(seg[0:], p.UDP.SrcPort)
		binary.BigEndian.PutUint16(seg[2:], p.UDP.DstPort)
		binary.BigEndian.PutUint16(seg[4:], uint16(len(seg)))
		copy(seg[udpLen:], p.Payload)
		return seg, ProtoUDP, nil
	default:
		return append([]byte(nil), p.Payload...), 0, nil
	}
}

func (p *Packet) serializeIPv4(transport []byte, proto byte) ([]byte, error) {
	v4 := p.V4
	if proto != 0 {
		v4.Protocol = proto
	}
	frame := make([]byte, ethernetLen+ipv4Len+len(transport))
	ip := frame[ethernetLen:]
	ip[0] = 4<<4 | 5 // version 4, IHL 5
	ip[1] = v4.TOS
	binary.BigEndian.PutUint16(ip[2:], uint16(ipv4Len+len(transport)))
	binary.BigEndian.PutUint16(ip[4:], v4.ID)
	binary.BigEndian.PutUint16(ip[6:], uint16(v4.Flags)<<13|v4.FragOffset&0x1fff)
	ip[8] = v4.TTL
	ip[9] = v4.Protocol
	copy(ip[12:16], v4.Src[:])
	copy(ip[16:20], v4.Dst[:])
	binary.BigEndian.PutUint16(ip[10:], Checksum(ip[:ipv4Len]))
	copy(ip[ipv4Len:], transport)
	p.fixTransportChecksum(ip[ipv4Len:], v4.Src[:], v4.Dst[:], v4.Protocol)
	p.Eth.EtherType = EtherTypeIPv4
	p.serializeEthernet(frame)
	return frame, nil
}

func (p *Packet) serializeIPv6(transport []byte, proto byte) ([]byte, error) {
	v6 := p.V6
	if proto != 0 {
		v6.NextHeader = proto
	}
	frame := make([]byte, ethernetLen+ipv6Len+len(transport))
	ip := frame[ethernetLen:]
	binary.BigEndian.PutUint32(ip[0:], 6<<28|uint32(v6.TrafficClass)<<20|v6.FlowLabel&0xfffff)
	binary.BigEndian.PutUint16(ip[4:], uint16(len(transport)))
	ip[6] = v6.NextHeader
	ip[7] = v6.HopLimit
	copy(ip[8:24], v6.Src[:])
	copy(ip[24:40], v6.Dst[:])
	copy(ip[ipv6Len:], transport)
	p.fixTransportChecksum(ip[ipv6Len:], v6.Src[:], v6.Dst[:], v6.NextHeader)
	p.Eth.EtherType = EtherTypeIPv6
	p.serializeEthernet(frame)
	return frame, nil
}

func (p *Packet) fixTransportChecksum(seg, src, dst []byte, proto byte) {
	switch {
	case p.TCP != nil && proto == ProtoTCP:
		binary.BigEndian.PutUint16(seg[16:], 0)
		binary.BigEndian.PutUint16(seg[16:], transportChecksum(src, dst, proto, seg))
	case p.UDP != nil && proto == ProtoUDP:
		binary.BigEndian.PutUint16(seg[6:], 0)
		binary.BigEndian.PutUint16(seg[6:], transportChecksum(src, dst, proto, seg))
	}
}

func (p *Packet) serializeEthernet(frame []byte) {
	copy(frame[0:6], p.Eth.Dst[:])
	copy(frame[6:12], p.Eth.Src[:])
	binary.BigEndian.PutUint16(frame[12:], p.Eth.EtherType)
}

// ParseOptions controls Parse strictness.
type ParseOptions struct {
	// VerifyChecksums makes Parse reject frames with bad IPv4 header or
	// TCP/UDP checksums.
	VerifyChecksums bool
}

// Parse decodes a wire-format frame. Unknown EtherTypes and IP protocols
// leave the corresponding layer nil with the remaining bytes in Payload.
func Parse(frame []byte, opts ParseOptions) (*Packet, error) {
	if len(frame) < ethernetLen {
		return nil, fmt.Errorf("packet: truncated Ethernet header (%d bytes)", len(frame))
	}
	p := &Packet{}
	copy(p.Eth.Dst[:], frame[0:6])
	copy(p.Eth.Src[:], frame[6:12])
	p.Eth.EtherType = binary.BigEndian.Uint16(frame[12:14])
	rest := frame[ethernetLen:]

	switch p.Eth.EtherType {
	case EtherTypeIPv4:
		return p, p.parseIPv4(rest, opts)
	case EtherTypeIPv6:
		return p, p.parseIPv6(rest, opts)
	default:
		p.Payload = rest
		return p, nil
	}
}

func (p *Packet) parseIPv4(b []byte, opts ParseOptions) error {
	if len(b) < ipv4Len {
		return fmt.Errorf("packet: truncated IPv4 header")
	}
	if v := b[0] >> 4; v != 4 {
		return fmt.Errorf("packet: IPv4 version field is %d", v)
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < ipv4Len || len(b) < ihl {
		return fmt.Errorf("packet: bad IPv4 IHL %d", ihl)
	}
	if opts.VerifyChecksums && Checksum(b[:ihl]) != 0 {
		return fmt.Errorf("packet: bad IPv4 header checksum")
	}
	v4 := &IPv4{
		TOS:        b[1],
		ID:         binary.BigEndian.Uint16(b[4:]),
		Flags:      b[6] >> 5,
		FragOffset: binary.BigEndian.Uint16(b[6:]) & 0x1fff,
		TTL:        b[8],
		Protocol:   b[9],
	}
	copy(v4.Src[:], b[12:16])
	copy(v4.Dst[:], b[16:20])
	p.V4 = v4
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total >= ihl && total <= len(b) {
		b = b[:total]
	}
	return p.parseTransport(b[ihl:], v4.Protocol, v4.Src[:], v4.Dst[:], opts)
}

func (p *Packet) parseIPv6(b []byte, opts ParseOptions) error {
	if len(b) < ipv6Len {
		return fmt.Errorf("packet: truncated IPv6 header")
	}
	first := binary.BigEndian.Uint32(b[0:])
	if v := first >> 28; v != 6 {
		return fmt.Errorf("packet: IPv6 version field is %d", v)
	}
	v6 := &IPv6{
		TrafficClass: byte(first >> 20),
		FlowLabel:    first & 0xfffff,
		NextHeader:   b[6],
		HopLimit:     b[7],
	}
	copy(v6.Src[:], b[8:24])
	copy(v6.Dst[:], b[24:40])
	p.V6 = v6
	plen := int(binary.BigEndian.Uint16(b[4:]))
	rest := b[ipv6Len:]
	if plen <= len(rest) {
		rest = rest[:plen]
	}
	return p.parseTransport(rest, v6.NextHeader, v6.Src[:], v6.Dst[:], opts)
}

func (p *Packet) parseTransport(b []byte, proto byte, src, dst []byte, opts ParseOptions) error {
	switch proto {
	case ProtoTCP:
		if len(b) < tcpLen {
			return fmt.Errorf("packet: truncated TCP header")
		}
		off := int(b[12]>>4) * 4
		if off < tcpLen || len(b) < off {
			return fmt.Errorf("packet: bad TCP data offset %d", off)
		}
		if opts.VerifyChecksums && transportChecksumValid(src, dst, proto, b) != true {
			return fmt.Errorf("packet: bad TCP checksum")
		}
		p.TCP = &TCP{
			SrcPort: binary.BigEndian.Uint16(b[0:]),
			DstPort: binary.BigEndian.Uint16(b[2:]),
			Seq:     binary.BigEndian.Uint32(b[4:]),
			Ack:     binary.BigEndian.Uint32(b[8:]),
			Flags:   b[13],
			Window:  binary.BigEndian.Uint16(b[14:]),
			Urgent:  binary.BigEndian.Uint16(b[18:]),
		}
		p.Payload = b[off:]
	case ProtoUDP:
		if len(b) < udpLen {
			return fmt.Errorf("packet: truncated UDP header")
		}
		if opts.VerifyChecksums && !transportChecksumValid(src, dst, proto, b) {
			return fmt.Errorf("packet: bad UDP checksum")
		}
		p.UDP = &UDP{
			SrcPort: binary.BigEndian.Uint16(b[0:]),
			DstPort: binary.BigEndian.Uint16(b[2:]),
		}
		p.Payload = b[udpLen:]
	default:
		p.Payload = b
	}
	return nil
}

// transportChecksumValid verifies a TCP/UDP checksum in place.
func transportChecksumValid(src, dst []byte, proto byte, seg []byte) bool {
	var stored uint16
	switch proto {
	case ProtoTCP:
		stored = binary.BigEndian.Uint16(seg[16:])
	case ProtoUDP:
		stored = binary.BigEndian.Uint16(seg[6:])
		if stored == 0 {
			return true // checksum not used
		}
	}
	tmp := make([]byte, len(seg))
	copy(tmp, seg)
	switch proto {
	case ProtoTCP:
		binary.BigEndian.PutUint16(tmp[16:], 0)
	case ProtoUDP:
		binary.BigEndian.PutUint16(tmp[6:], 0)
	}
	want := transportChecksum(src, dst, proto, tmp)
	return want == stored
}
