package packet

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanicsOnGarbage throws random bytes at the frame parser:
// any outcome must be an error or a partially decoded packet, never a
// panic — the receive path faces attacker-controlled bytes by definition.
func TestParseNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(120)
		frame := make([]byte, n)
		rng.Read(frame)
		// Bias half the corpus towards plausible EtherTypes so the IP
		// parsers are exercised, not just the Ethernet length check.
		if n >= 14 {
			switch trial % 4 {
			case 0:
				frame[12], frame[13] = 0x08, 0x00
			case 1:
				frame[12], frame[13] = 0x86, 0xdd
			case 2:
				frame[12], frame[13] = 0x08, 0x06
			}
			// And bias the IP version/IHL nibbles towards validity.
			if trial%8 < 4 && n > 14 {
				frame[14] = 0x45
			}
		}
		for _, opts := range []ParseOptions{{}, {VerifyChecksums: true}} {
			p, err := Parse(frame, opts)
			if err == nil && p == nil {
				t.Fatal("nil packet without error")
			}
			if p != nil && p.Eth.EtherType == EtherTypeARP {
				ParseARP(p) // must not panic either
			}
			if p != nil && p.V4 != nil && p.V4.Protocol == ProtoICMP {
				ParseICMPv4(p)
			}
		}
	}
}

// TestParseMutatedValidFrames mutates every byte of a valid frame in turn:
// parsing must never panic and checksummed parses must reject header
// corruption within covered regions.
func TestParseMutatedValidFrames(t *testing.T) {
	frame, err := sampleV4(ProtoTCP).Serialize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= bit
			Parse(mut, ParseOptions{})
			Parse(mut, ParseOptions{VerifyChecksums: true})
		}
	}
}
