package packet

import (
	"math/rand"
	"testing"

	"tse/internal/bitvec"
)

func sampleV4(proto byte) *Packet {
	p := &Packet{
		V4: &IPv4{TTL: 64, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{192, 168, 0, 2}},
		Eth: Ethernet{
			Src: [6]byte{2, 0, 0, 0, 0, 1},
			Dst: [6]byte{2, 0, 0, 0, 0, 2},
		},
		Payload: []byte("tuple space explosion"),
	}
	if proto == ProtoTCP {
		p.TCP = &TCP{SrcPort: 34521, DstPort: 443, Seq: 7, Flags: 0x02, Window: 4096}
	} else {
		p.UDP = &UDP{SrcPort: 12345, DstPort: 80}
	}
	return p
}

func TestRoundTripIPv4(t *testing.T) {
	for _, proto := range []byte{ProtoTCP, ProtoUDP} {
		frame, err := sampleV4(proto).Serialize()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Parse(frame, ParseOptions{VerifyChecksums: true})
		if err != nil {
			t.Fatalf("proto %d: %v", proto, err)
		}
		if got.V4 == nil || got.V4.Src != [4]byte{10, 0, 0, 1} || got.V4.Protocol != proto {
			t.Fatalf("proto %d: IPv4 layer %+v", proto, got.V4)
		}
		if string(got.Payload) != "tuple space explosion" {
			t.Errorf("payload = %q", got.Payload)
		}
		switch proto {
		case ProtoTCP:
			if got.TCP == nil || got.TCP.SrcPort != 34521 || got.TCP.DstPort != 443 ||
				got.TCP.Seq != 7 || got.TCP.Flags != 0x02 {
				t.Errorf("TCP layer %+v", got.TCP)
			}
		case ProtoUDP:
			if got.UDP == nil || got.UDP.SrcPort != 12345 || got.UDP.DstPort != 80 {
				t.Errorf("UDP layer %+v", got.UDP)
			}
		}
	}
}

func TestRoundTripIPv6(t *testing.T) {
	p := &Packet{
		V6:      &IPv6{HopLimit: 64},
		UDP:     &UDP{SrcPort: 53, DstPort: 4242},
		Payload: []byte("v6"),
	}
	p.V6.Src[0], p.V6.Src[15] = 0x20, 1
	p.V6.Dst[0], p.V6.Dst[15] = 0x20, 2
	frame, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(frame, ParseOptions{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.V6 == nil || got.V6.Src[15] != 1 || got.UDP == nil || got.UDP.DstPort != 4242 {
		t.Fatalf("parsed %+v %+v", got.V6, got.UDP)
	}
	if string(got.Payload) != "v6" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#x, want 0x220d", got)
	}
	// Odd length handling.
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd-length checksum = %#x", got)
	}
}

func TestCorruptionDetection(t *testing.T) {
	frame, _ := sampleV4(ProtoTCP).Serialize()
	// Flip a bit in the IPv4 source address.
	frame[ethernetLen+13] ^= 0x40
	if _, err := Parse(frame, ParseOptions{VerifyChecksums: true}); err == nil {
		t.Error("corrupted IPv4 header accepted with checksum verification")
	}
	if _, err := Parse(frame, ParseOptions{}); err != nil {
		t.Errorf("lenient parse rejected frame: %v", err)
	}
	// Corrupt the TCP payload: transport checksum must catch it.
	frame2, _ := sampleV4(ProtoTCP).Serialize()
	frame2[len(frame2)-1] ^= 0xff
	if _, err := Parse(frame2, ParseOptions{VerifyChecksums: true}); err == nil {
		t.Error("corrupted TCP payload accepted")
	}
}

func TestParseTruncation(t *testing.T) {
	frame, _ := sampleV4(ProtoUDP).Serialize()
	for _, cut := range []int{0, 5, ethernetLen - 1, ethernetLen + 3, ethernetLen + ipv4Len + 2} {
		if _, err := Parse(frame[:cut], ParseOptions{}); err == nil {
			t.Errorf("truncated frame (%d bytes) accepted", cut)
		}
	}
}

func TestParseUnknownLayers(t *testing.T) {
	// Unknown EtherType: payload preserved, layers nil.
	frame := make([]byte, ethernetLen+4)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	p, err := Parse(frame, ParseOptions{})
	if err != nil || p.V4 != nil || p.V6 != nil || len(p.Payload) != 4 {
		t.Errorf("ARP frame: %+v err=%v", p, err)
	}
	// Unknown IP protocol.
	ip := sampleV4(ProtoUDP)
	ip.UDP = nil
	ip.V4.Protocol = 89 // OSPF
	frame2, err := ip.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(frame2, ParseOptions{})
	if err != nil || p2.TCP != nil || p2.UDP != nil {
		t.Errorf("OSPF packet: %+v err=%v", p2, err)
	}
}

func TestSerializeErrors(t *testing.T) {
	if _, err := (&Packet{}).Serialize(); err == nil {
		t.Error("packet without network layer serialized")
	}
	both := sampleV4(ProtoTCP)
	both.UDP = &UDP{}
	if _, err := both.Serialize(); err == nil {
		t.Error("packet with both transports serialized")
	}
}

func TestFlowKey4(t *testing.T) {
	frame, _ := sampleV4(ProtoTCP).Serialize()
	p, _ := Parse(frame, ParseOptions{})
	key, err := p.FlowKey4()
	if err != nil {
		t.Fatal(err)
	}
	l := bitvec.IPv4Tuple
	want := map[string]uint64{
		"ip_src": 0x0a000001, "ip_dst": 0xc0a80002, "ip_proto": 6,
		"tp_src": 34521, "tp_dst": 443,
	}
	for name, v := range want {
		i, _ := l.FieldIndex(name)
		if got := key.FieldUint64(l, i); got != v {
			t.Errorf("%s = %#x, want %#x", name, got, v)
		}
	}
	if _, err := p.FlowKey6(); err == nil {
		t.Error("FlowKey6 on IPv4 packet succeeded")
	}
}

// TestCraftParseRoundTrip is the key property: crafting a frame from a
// classifier key and parsing it back yields the same key, for random keys
// over both tuple layouts.
func TestCraftParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, l := range []*bitvec.Layout{bitvec.IPv4Tuple, bitvec.IPv6Tuple} {
		proto, _ := l.FieldIndex("ip_proto")
		for n := 0; n < 200; n++ {
			h := bitvec.NewVec(l)
			for f := 0; f < l.NumFields(); f++ {
				if w := l.Field(f).Width; w <= 64 {
					h.SetField(l, f, rng.Uint64())
				} else {
					b := make([]byte, w/8)
					rng.Read(b)
					h.SetFieldBytes(l, f, b)
				}
			}
			// Pin a realizable protocol.
			if rng.Intn(2) == 0 {
				h.SetField(l, proto, ProtoTCP)
			} else {
				h.SetField(l, proto, ProtoUDP)
			}
			frame, err := Craft(l, h, CraftOptions{Payload: []byte("x")})
			if err != nil {
				t.Fatalf("%s: craft: %v", l, err)
			}
			p, err := Parse(frame, ParseOptions{VerifyChecksums: true})
			if err != nil {
				t.Fatalf("%s: parse: %v", l, err)
			}
			var got bitvec.Vec
			if l == bitvec.IPv4Tuple {
				got, err = p.FlowKey4()
			} else {
				got, err = p.FlowKey6()
			}
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(h) {
				t.Fatalf("%s: key mismatch:\n in  %s\n out %s", l, h.Format(l), got.Format(l))
			}
		}
	}
}

func TestCraftDefaultsToUDP(t *testing.T) {
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	h.SetField(l, dp, 80)
	frame, err := Craft(l, h, CraftOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(frame, ParseOptions{})
	if err != nil || p.UDP == nil || p.UDP.DstPort != 80 {
		t.Errorf("crafted frame: %+v err=%v", p, err)
	}
}

func TestCraftRejectsUnportableProto(t *testing.T) {
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	proto, _ := l.FieldIndex("ip_proto")
	dp, _ := l.FieldIndex("tp_dst")
	h.SetField(l, proto, 89) // OSPF has no ports
	h.SetField(l, dp, 80)
	if _, err := Craft(l, h, CraftOptions{}); err == nil {
		t.Error("crafted ports onto a portless protocol")
	}
	// Without ports it is fine.
	h.SetField(l, dp, 0)
	if _, err := Craft(l, h, CraftOptions{}); err != nil {
		t.Errorf("portless OSPF craft failed: %v", err)
	}
}

func TestCraftUnsupportedLayout(t *testing.T) {
	if _, err := Craft(bitvec.HYP, bitvec.NewVec(bitvec.HYP), CraftOptions{}); err == nil {
		t.Error("crafted a frame for the toy layout")
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	frame, _ := sampleV4(ProtoUDP).Serialize()
	// Zero out the UDP checksum: RFC 768 allows "no checksum".
	off := ethernetLen + ipv4Len + 6
	frame[off], frame[off+1] = 0, 0
	if _, err := Parse(frame, ParseOptions{VerifyChecksums: true}); err != nil {
		t.Errorf("zero UDP checksum rejected: %v", err)
	}
}

func BenchmarkSerializeParse(b *testing.B) {
	p := sampleV4(ProtoUDP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := p.Serialize()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Parse(frame, ParseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
