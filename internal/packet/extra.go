package packet

import (
	"encoding/binary"
	"fmt"
)

// This file adds the remaining frame types seen on a hypervisor port:
// ICMPv4 (connectivity checks between tenant workloads) and ARP (address
// resolution on the virtual L2 segment). Neither reaches the tenant ACLs
// in the paper's setups ("Non-IP packets not destined to the service will
// never reach the hypervisor", §5.2 fn. 2), but a production switch must
// parse them; the vswitch examples drop them before classification.

// EtherTypeARP is the Ethernet II type for ARP.
const EtherTypeARP = 0x0806

// ProtoICMP is IPPROTO_ICMP.
const ProtoICMP = 1

// ICMPv4 is an ICMPv4 header (echo-style: ident/sequence in RestOfHeader).
type ICMPv4 struct {
	// Type and Code identify the message (8/0 = echo request).
	Type, Code byte
	// RestOfHeader carries type-specific data (identifier, sequence).
	RestOfHeader uint32
}

const icmpv4Len = 8

// ARP is an Ethernet/IPv4 ARP packet.
type ARP struct {
	// Op is 1 for request, 2 for reply.
	Op uint16
	// SenderMAC/SenderIP and TargetMAC/TargetIP are the usual tuples.
	SenderMAC [6]byte
	SenderIP  [4]byte
	TargetMAC [6]byte
	TargetIP  [4]byte
}

const arpLen = 28

// SerializeICMPv4 builds an Ethernet+IPv4+ICMPv4 frame.
func SerializeICMPv4(eth Ethernet, ip IPv4, icmp ICMPv4, payload []byte) ([]byte, error) {
	seg := make([]byte, icmpv4Len+len(payload))
	seg[0], seg[1] = icmp.Type, icmp.Code
	binary.BigEndian.PutUint32(seg[4:], icmp.RestOfHeader)
	copy(seg[icmpv4Len:], payload)
	binary.BigEndian.PutUint16(seg[2:], Checksum(seg))

	ip.Protocol = ProtoICMP
	p := &Packet{Eth: eth, V4: &ip}
	frame := make([]byte, ethernetLen+ipv4Len+len(seg))
	b := frame[ethernetLen:]
	b[0] = 4<<4 | 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(ipv4Len+len(seg)))
	binary.BigEndian.PutUint16(b[4:], ip.ID)
	b[8] = ip.TTL
	b[9] = ProtoICMP
	copy(b[12:16], ip.Src[:])
	copy(b[16:20], ip.Dst[:])
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:ipv4Len]))
	copy(b[ipv4Len:], seg)
	p.Eth.EtherType = EtherTypeIPv4
	p.serializeEthernet(frame)
	return frame, nil
}

// ParseICMPv4 extracts the ICMPv4 layer from a parsed packet's payload
// (Parse leaves unknown transports in Payload).
func ParseICMPv4(p *Packet) (*ICMPv4, []byte, error) {
	if p.V4 == nil || p.V4.Protocol != ProtoICMP {
		return nil, nil, fmt.Errorf("packet: not ICMPv4")
	}
	b := p.Payload
	if len(b) < icmpv4Len {
		return nil, nil, fmt.Errorf("packet: truncated ICMPv4 header")
	}
	if Checksum(b) != 0 {
		return nil, nil, fmt.Errorf("packet: bad ICMPv4 checksum")
	}
	return &ICMPv4{
		Type: b[0], Code: b[1],
		RestOfHeader: binary.BigEndian.Uint32(b[4:]),
	}, b[icmpv4Len:], nil
}

// SerializeARP builds an Ethernet+ARP frame.
func SerializeARP(eth Ethernet, arp ARP) []byte {
	frame := make([]byte, ethernetLen+arpLen)
	b := frame[ethernetLen:]
	binary.BigEndian.PutUint16(b[0:], 1)      // htype: Ethernet
	binary.BigEndian.PutUint16(b[2:], 0x0800) // ptype: IPv4
	b[4], b[5] = 6, 4                         // hlen, plen
	binary.BigEndian.PutUint16(b[6:], arp.Op)
	copy(b[8:14], arp.SenderMAC[:])
	copy(b[14:18], arp.SenderIP[:])
	copy(b[18:24], arp.TargetMAC[:])
	copy(b[24:28], arp.TargetIP[:])
	eth.EtherType = EtherTypeARP
	p := &Packet{Eth: eth}
	p.Eth.EtherType = EtherTypeARP
	p.serializeEthernet(frame)
	return frame
}

// ParseARP extracts an ARP layer from a parsed packet.
func ParseARP(p *Packet) (*ARP, error) {
	if p.Eth.EtherType != EtherTypeARP {
		return nil, fmt.Errorf("packet: not ARP")
	}
	b := p.Payload
	if len(b) < arpLen {
		return nil, fmt.Errorf("packet: truncated ARP")
	}
	if binary.BigEndian.Uint16(b[0:]) != 1 || binary.BigEndian.Uint16(b[2:]) != 0x0800 ||
		b[4] != 6 || b[5] != 4 {
		return nil, fmt.Errorf("packet: unsupported ARP hardware/protocol types")
	}
	a := &ARP{Op: binary.BigEndian.Uint16(b[6:])}
	copy(a.SenderMAC[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetMAC[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return a, nil
}
