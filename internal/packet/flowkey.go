package packet

import (
	"encoding/binary"
	"fmt"

	"tse/internal/bitvec"
)

// This file bridges wire-format packets and classifier keys: the receive
// path extracts the 5-tuple the classifier matches on, and the transmit
// path crafts a complete frame realizing a classifier key (what cmd/tsegen
// does with an adversarial trace).

// FlowKey4 extracts the IPv4 5-tuple classifier key (layout
// bitvec.IPv4Tuple) from a parsed packet.
func (p *Packet) FlowKey4() (bitvec.Vec, error) {
	if p.V4 == nil {
		return nil, fmt.Errorf("packet: not IPv4")
	}
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	set := func(name string, v uint64) {
		i, _ := l.FieldIndex(name)
		h.SetField(l, i, v)
	}
	set("ip_src", uint64(binary.BigEndian.Uint32(p.V4.Src[:])))
	set("ip_dst", uint64(binary.BigEndian.Uint32(p.V4.Dst[:])))
	set("ip_proto", uint64(p.V4.Protocol))
	sp, dp, err := p.ports()
	if err != nil {
		return nil, err
	}
	set("tp_src", uint64(sp))
	set("tp_dst", uint64(dp))
	return h, nil
}

// FlowKey6 extracts the IPv6 5-tuple classifier key (layout
// bitvec.IPv6Tuple).
func (p *Packet) FlowKey6() (bitvec.Vec, error) {
	if p.V6 == nil {
		return nil, fmt.Errorf("packet: not IPv6")
	}
	l := bitvec.IPv6Tuple
	h := bitvec.NewVec(l)
	src, _ := l.FieldIndex("ip6_src")
	dst, _ := l.FieldIndex("ip6_dst")
	h.SetFieldBytes(l, src, p.V6.Src[:])
	h.SetFieldBytes(l, dst, p.V6.Dst[:])
	proto, _ := l.FieldIndex("ip_proto")
	h.SetField(l, proto, uint64(p.V6.NextHeader))
	sp, dp, err := p.ports()
	if err != nil {
		return nil, err
	}
	spi, _ := l.FieldIndex("tp_src")
	dpi, _ := l.FieldIndex("tp_dst")
	h.SetField(l, spi, uint64(sp))
	h.SetField(l, dpi, uint64(dp))
	return h, nil
}

func (p *Packet) ports() (uint16, uint16, error) {
	switch {
	case p.TCP != nil:
		return p.TCP.SrcPort, p.TCP.DstPort, nil
	case p.UDP != nil:
		return p.UDP.SrcPort, p.UDP.DstPort, nil
	default:
		return 0, 0, fmt.Errorf("packet: no transport layer")
	}
}

// CraftOptions tunes frame crafting.
type CraftOptions struct {
	// Payload is the application payload ("arbitrary message contents",
	// §1 — the attack does not care).
	Payload []byte
	// TTL overrides the IPv4 TTL / IPv6 hop limit (64 if zero). The
	// adversarial traces vary it as microflow-cache noise (§5.2).
	TTL byte
	// SrcMAC and DstMAC fill the Ethernet header.
	SrcMAC, DstMAC [6]byte
}

// Craft builds a complete wire frame realizing a classifier key over the
// IPv4Tuple or IPv6Tuple layout. The transport layer follows the key's
// ip_proto field: 6 yields TCP, anything else UDP (the paper's traces use
// both; UDP is the default because offloads cannot shield it, §5.4).
func Craft(l *bitvec.Layout, h bitvec.Vec, opts CraftOptions) ([]byte, error) {
	ttl := opts.TTL
	if ttl == 0 {
		ttl = 64
	}
	p := &Packet{Payload: opts.Payload}
	p.Eth.Src, p.Eth.Dst = opts.SrcMAC, opts.DstMAC

	var proto uint64
	var sp, dp uint64
	get := func(name string) (uint64, error) {
		i, ok := l.FieldIndex(name)
		if !ok {
			return 0, fmt.Errorf("packet: layout lacks field %q", name)
		}
		return h.FieldUint64(l, i), nil
	}
	var err error
	if proto, err = get("ip_proto"); err != nil {
		return nil, err
	}
	if proto == 0 {
		// Keys with an unpinned protocol default to UDP (offloads cannot
		// shield it, §5.4). Note the crafted frame then parses back with
		// ip_proto = 17; traces wanting exact key round-trips pin the
		// protocol in their base header.
		proto = ProtoUDP
	}
	if sp, err = get("tp_src"); err != nil {
		return nil, err
	}
	if dp, err = get("tp_dst"); err != nil {
		return nil, err
	}

	switch l {
	case bitvec.IPv4Tuple:
		src, _ := get("ip_src")
		dst, _ := get("ip_dst")
		v4 := &IPv4{TTL: ttl, Protocol: byte(proto)}
		binary.BigEndian.PutUint32(v4.Src[:], uint32(src))
		binary.BigEndian.PutUint32(v4.Dst[:], uint32(dst))
		p.V4 = v4
	case bitvec.IPv6Tuple:
		si, _ := l.FieldIndex("ip6_src")
		di, _ := l.FieldIndex("ip6_dst")
		v6 := &IPv6{HopLimit: ttl, NextHeader: byte(proto)}
		copy(v6.Src[:], h.FieldBytes(l, si))
		copy(v6.Dst[:], h.FieldBytes(l, di))
		p.V6 = v6
	default:
		return nil, fmt.Errorf("packet: unsupported layout %s", l)
	}

	if proto == ProtoTCP {
		p.TCP = &TCP{SrcPort: uint16(sp), DstPort: uint16(dp), Flags: 0x02 /* SYN */, Window: 65535}
	} else {
		p.UDP = &UDP{SrcPort: uint16(sp), DstPort: uint16(dp)}
		if proto != ProtoUDP {
			// The key pinned a non-TCP/UDP protocol: keep the proto but
			// no transport ports can be realised; reject to avoid
			// crafting a frame whose parse yields a different key.
			if sp != 0 || dp != 0 {
				return nil, fmt.Errorf("packet: proto %d cannot carry ports", proto)
			}
			p.UDP = nil
			if p.V4 != nil {
				p.V4.Protocol = byte(proto)
			} else {
				p.V6.NextHeader = byte(proto)
			}
		}
	}
	return p.Serialize()
}
