package analysis

import (
	"math"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/vswitch"
)

func TestTheorem41Extremes(t *testing.T) {
	// k = w: wildcarding strategy, w deny keys (Fig. 3 has 3 for w = 3).
	if got := Theorem41Space(3, 3); got != 3 {
		t.Errorf("Theorem41Space(3,3) = %v, want 3", got)
	}
	// k = 1: exact-match strategy, 2^w - 1 deny keys (Fig. 2 has 7).
	if got := Theorem41Space(3, 1); got != 7 {
		t.Errorf("Theorem41Space(3,1) = %v, want 7", got)
	}
	if got := Theorem41Space(32, 32); got != 32 {
		t.Errorf("Theorem41Space(32,32) = %v, want 32", got)
	}
}

func TestTheorem41Monotone(t *testing.T) {
	// More masks (time) => fewer required entries (space): the bound is
	// non-increasing in k.
	w := 16
	prev := math.Inf(1)
	for k := 1; k <= w; k++ {
		b := Theorem41Space(w, k)
		if b > prev+1e-9 {
			t.Fatalf("bound not non-increasing at k=%d: %v > %v", k, b, prev)
		}
		prev = b
	}
}

func TestTheorem41Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k out of range did not panic")
		}
	}()
	Theorem41Space(4, 5)
}

func TestTheorem42(t *testing.T) {
	// §4.2's example: HYP (w=3) and HYP2 (w=4) at k_i = w_i give 3*4 = 12
	// deny masks and 3*4 = 12 deny keys.
	if got := Theorem42Time([]int{3, 4}); got != 12 {
		t.Errorf("Theorem42Time = %d, want 12", got)
	}
	if got := Theorem42Space([]int{3, 4}, []int{3, 4}); got != 12 {
		t.Errorf("Theorem42Space = %v, want 12", got)
	}
	// SipSpDp at the wildcarding extreme: 32*16*16 = 8192 (§5.2).
	if got := Theorem42Time([]int{32, 16, 16}); got != 8192 {
		t.Errorf("Theorem42Time = %d, want 8192", got)
	}
}

func TestTheorem42PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Theorem42Space([]int{3}, []int{1, 2})
}

// TestKMaskConstructionAttainsBound sweeps k over a 12-bit field and
// verifies the construction (a) uses exactly k masks, (b) has exactly
// k(2^(w/k)-1) deny entries when k | w, (c) is order-independent, and
// (d) classifies every packet like the ACL — the full Theorem 4.1
// trade-off curve realised.
func TestKMaskConstructionAttainsBound(t *testing.T) {
	l := bitvec.MustLayout(bitvec.Field{Name: "F", Width: 12})
	const allow = 0xABC & 0xFFF
	for _, k := range []int{1, 2, 3, 4, 6, 12} {
		entries, err := KMaskConstruction(l, 0, allow, k)
		if err != nil {
			t.Fatal(err)
		}
		c := tss.New(l, tss.Options{})
		for _, e := range entries {
			if err := c.Insert(e, 0); err != nil {
				t.Fatalf("k=%d: construction not order-independent: %v", k, err)
			}
		}
		// Masks: k distinct prefixes, but the final exact allow entry
		// shares mask k's prefix (= full field) — so exactly k masks.
		if got := c.MaskCount(); got != k {
			t.Errorf("k=%d: masks = %d, want %d", k, got, k)
		}
		wantDeny := int(Theorem41Space(12, k))
		if got := c.EntryCount() - 1; got != wantDeny {
			t.Errorf("k=%d: deny entries = %d, want %d (Thm 4.1)", k, got, wantDeny)
		}
		// Exhaustive semantic check.
		h := bitvec.NewVec(l)
		for v := uint64(0); v < 1<<12; v++ {
			h.SetField(l, 0, v)
			e, _, ok := c.Lookup(h, 0)
			if !ok {
				t.Fatalf("k=%d: value %#x missed", k, v)
			}
			want := flowtable.Drop
			if v == allow {
				want = flowtable.Allow
			}
			if e.Action != want {
				t.Fatalf("k=%d: value %#x -> %v, want %v", k, v, e.Action, want)
			}
		}
	}
}

func TestKMaskConstructionErrors(t *testing.T) {
	l := bitvec.HYP
	if _, err := KMaskConstruction(l, 0, 1, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMaskConstruction(l, 0, 1, 4); err == nil {
		t.Error("k>w accepted")
	}
	wide := bitvec.MustLayout(bitvec.Field{Name: "W", Width: 128})
	if _, err := KMaskConstruction(wide, 0, 1, 2); err == nil {
		t.Error("128-bit field accepted")
	}
}

func TestPkMFCPaperExample(t *testing.T) {
	// §6.1: entry #2 of Fig. 3 has k=2 wildcarded bits on h=3,
	// p_2 = 2^2/2^3 = 0.5.
	if got := PkMFC(2, 3); got != 0.5 {
		t.Errorf("PkMFC(2,3) = %v, want 0.5", got)
	}
	// Eq. 1 sanity: more packets, higher probability; bounded by 1.
	if !(PknMFC(2, 3, 1) < PknMFC(2, 3, 5)) {
		t.Error("PknMFC not increasing in n")
	}
	if p := PknMFC(2, 3, 1000); p <= 0.99 || p > 1 {
		t.Errorf("PknMFC(2,3,1000) = %v", p)
	}
}

// TestExpectedMasksFig9bAnchors checks E[#masks] at the paper's Fig. 9b
// operating points. The paper reports, with 50 000 random packets,
// approximately 16 (Dp), 122 (SipDp) and 581 (SipSpDp) masks.
func TestExpectedMasksFig9bAnchors(t *testing.T) {
	cases := []struct {
		use    flowtable.UseCase
		n      int
		lo, hi float64
	}{
		{flowtable.Dp, 50000, 15, 17},
		{flowtable.SipDp, 50000, 110, 135},
		{flowtable.SipSpDp, 50000, 540, 630},
		{flowtable.Dp, 1000, 9, 12},         // §6.2: 1000 packets ≈ co-located Dp-level damage
		{flowtable.SipSpDp, 1000, 120, 190}, // partial coverage at low n
	}
	for _, c := range cases {
		tbl := flowtable.UseCaseACL(c.use, flowtable.ACLParams{})
		e, err := ExpectedMasks(tbl, c.n)
		if err != nil {
			t.Fatal(err)
		}
		if e < c.lo || e > c.hi {
			t.Errorf("%v n=%d: E = %.1f, want in [%v, %v]", c.use, c.n, e, c.lo, c.hi)
		}
	}
}

func TestExpectedMasksMonotone(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	ns := []int{10, 100, 1000, 10000, 50000}
	curve, err := ExpectedMasksCurve(tbl, ns)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Fatalf("curve not increasing: %v", curve)
		}
	}
	// The limit is the co-located maximum.
	maxM, err := MaxAttainableMasks(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if maxM != 513 {
		t.Errorf("MaxAttainableMasks(SipDp) = %d, want 513", maxM)
	}
	if curve[len(curve)-1] > float64(maxM) {
		t.Error("expectation exceeds attainable maximum")
	}
}

// TestExpectedVsMeasuredMasks is Fig. 9b's E-vs-M comparison: the
// analytical expectation must agree with a Monte-Carlo run of the actual
// switch within a few percent.
func TestExpectedVsMeasuredMasks(t *testing.T) {
	for _, use := range []flowtable.UseCase{flowtable.Dp, flowtable.SipDp} {
		tbl := flowtable.UseCaseACL(use, flowtable.ACLParams{})
		n := 2000
		e, err := ExpectedMasks(tbl, n)
		if err != nil {
			t.Fatal(err)
		}
		// Average measured masks over independent runs.
		runs := 5
		total := 0
		for r := 0; r < runs; r++ {
			tblr := flowtable.UseCaseACL(use, flowtable.ACLParams{})
			sw, err := vswitch.New(vswitch.Config{Table: tblr, DisableMicroflow: true})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := core.General(bitvec.IPv4Tuple, nil, n, core.GeneralOptions{Seed: int64(r*7 + 1)})
			if err != nil {
				t.Fatal(err)
			}
			core.Replay(sw, tr, 0)
			total += sw.MFC().MaskCount()
		}
		m := float64(total) / float64(runs)
		if math.Abs(m-e) > 0.12*e+2 {
			t.Errorf("%v: measured %.1f vs expected %.1f masks (n=%d)", use, m, e, n)
		}
	}
}

func TestExpectedMasksErrors(t *testing.T) {
	l := bitvec.HYP2
	tbl := flowtable.New(l)
	k, m := bitvec.MustPattern(l, "0011111")
	tbl.MustAdd(&flowtable.Rule{Name: "multi", Priority: 1, Action: flowtable.Allow, Key: k, Mask: m})
	if _, err := ExpectedMasks(tbl, 10); err == nil {
		t.Error("multi-field allow rule accepted")
	}
	tbl2 := flowtable.New(l)
	tbl2.MustAdd(&flowtable.Rule{Name: "dd", Priority: 0, Action: flowtable.Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	if _, err := ExpectedMasks(tbl2, 10); err == nil {
		t.Error("no-allow table accepted")
	}
	tbl3 := flowtable.New(l)
	tbl3.MustAdd(&flowtable.Rule{Name: "any", Priority: 1, Action: flowtable.Allow,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	if _, err := ExpectedMasks(tbl3, 10); err == nil {
		t.Error("allow-everything table accepted")
	}
}

// TestExpectedMasksToyExhaustive cross-checks the enumeration on the
// Fig. 1 toy ACL against a brute-force computation over all 8 headers.
func TestExpectedMasksToyExhaustive(t *testing.T) {
	tbl := flowtable.Fig1()
	gen, err := vswitch.NewGenerator(tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: for each of the 8 equiprobable headers find its mask;
	// E[masks after n] = sum over masks of 1-(1-p)^n.
	prob := map[string]float64{}
	h := bitvec.NewVec(bitvec.HYP)
	for v := uint64(0); v < 8; v++ {
		h.SetField(bitvec.HYP, 0, v)
		e := gen.Generate(h)
		prob[e.Mask.Key()] += 1.0 / 8
	}
	for _, n := range []int{1, 3, 10, 100} {
		want := 0.0
		for _, p := range prob {
			want += 1 - math.Pow(1-p, float64(n))
		}
		got, err := ExpectedMasks(tbl, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d: ExpectedMasks = %v, brute force = %v", n, got, want)
		}
	}
}
