package analysis

import (
	"fmt"
	"math"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/tss"
)

// This file implements the paper's §11.3 closed-form machinery literally —
// the C_k convolution over header widths — next to the exact enumeration
// in expectation.go, plus the multi-field generalisation of the k-mask
// construction that attains the Theorem 4.2 trade-off points.

// CkConvolution computes the §11.3 combination counts for an ACL of m+1
// rules where rule i (1-based, priority descending) exact-matches header i
// of width widths[i-1] and the last rule is the DefaultDeny.
//
// It returns counts[k] = C_k, the number of distinct MFC entries whose
// mask wildcards exactly k bits of the targeted headers. Following §11.3:
// the entries covering the i-th rule hold prefix proofs for headers
// 1..i-1, an exact match on header i, and full wildcards on headers
// i+1..m; the deny entries hold prefix proofs on every header. f_i is the
// convolution of the per-header prefix choices:
//
//	f_i(u) = Σ_{j=1..min(u,h_i)} f_{i-1}(u−j),  f_0(u) = 1 if u = 0
//
// where j is the number of *wildcarded* bits contributed by header i's
// prefix (a prefix of length h_i−j), with j ≥ 1 absent only for the
// exact-match case handled by the rule's own header.
func CkConvolution(widths []int) ([]float64, error) {
	m := len(widths)
	if m == 0 {
		return nil, fmt.Errorf("analysis: no headers")
	}
	total := 0
	for _, w := range widths {
		if w <= 0 {
			return nil, fmt.Errorf("analysis: non-positive width")
		}
		total += w
	}

	// prefixChoices convolves headers lo..hi-1, each contributing a
	// prefix that wildcards j ∈ [0, h-1] bits... For mismatch proofs a
	// prefix has length ≥ 1, i.e. wildcards j ≤ h−1 bits; j = h (fully
	// wildcarded) is not a valid proof. f over a set S of headers:
	// f_S(u) = #ways to pick per-header wildcard counts summing to u.
	conv := func(headers []int) []float64 {
		f := make([]float64, 1) // f[0] = 1: empty product
		f[0] = 1
		for _, h := range headers {
			nf := make([]float64, len(f)+h-1)
			for u, c := range f {
				if c == 0 {
					continue
				}
				for j := 0; j <= h-1; j++ {
					nf[u+j] += c
				}
			}
			f = nf
		}
		return f
	}

	counts := make([]float64, total+1)
	// Entries covering rule i (exact on header i, proofs on 1..i-1,
	// wildcard on i+1..m).
	for i := 1; i <= m; i++ {
		proofs := conv(widths[:i-1])
		wildTail := 0
		for _, w := range widths[i:] {
			wildTail += w
		}
		for u, c := range proofs {
			counts[u+wildTail] += c
		}
	}
	// Deny entries: proofs on every header.
	for u, c := range conv(widths) {
		counts[u] += c
	}
	return counts, nil
}

// ExpectedEntriesCk evaluates Eq. 2 with the §11.3 C_k counts: the
// expected number of MFC *entries* after n uniformly random packets over
// the targeted headers.
//
//	E = Σ_k C_k · (1 − (1 − 2^k/2^h)^n)
//
// Note this is the paper's count-by-wildcards approximation: it prices
// every entry with k wildcarded bits at the same spawn probability and
// does not deduplicate masks shared between allow and deny entries, so it
// upper-bounds the *mask* expectation of ExpectedMasks.
func ExpectedEntriesCk(widths []int, n int) (float64, error) {
	counts, err := CkConvolution(widths)
	if err != nil {
		return 0, err
	}
	h := 0
	for _, w := range widths {
		h += w
	}
	e := 0.0
	for k, c := range counts {
		if c == 0 {
			continue
		}
		e += c * PknMFC(k, h, n)
	}
	return e, nil
}

// KMaskConstructionMulti builds an order-independent TSS entry set for the
// multi-field ACL of Theorem 4.2 (one exact-match allow rule per field in
// priority order, then DefaultDeny), using k_i masks for field i. It
// attains the theorem's trade-off: Π k_i deny mask shapes and
// Π k_i·(2^{w_i/k_i}−1) deny entries (when k_i | w_i).
//
// The construction composes the single-field chunks: a deny entry picks,
// for every field, a chunk index and a non-allowed chunk value (the field
// first deviates inside that chunk); allow-rule entries pick deviations
// only for higher-priority fields and match their own field exactly.
func KMaskConstructionMulti(l *bitvec.Layout, fields []int, allowVals []uint64, ks []int) ([]*tss.Entry, error) {
	if len(fields) != len(allowVals) || len(fields) != len(ks) {
		return nil, fmt.Errorf("analysis: fields/allowVals/ks length mismatch")
	}
	// Per-field chunk machinery reused from the single-field case.
	type chunk struct {
		maskLen  int // prefix length through this chunk
		from, to int // bit range of the chunk
	}
	perField := make([][]chunk, len(fields))
	for i, f := range fields {
		w := l.Field(f).Width
		if w > 63 {
			return nil, fmt.Errorf("analysis: field too wide (%d bits)", w)
		}
		k := ks[i]
		if k < 1 || k > w {
			return nil, fmt.Errorf("analysis: k=%d out of range for %d-bit field", k, w)
		}
		for c := 1; c <= k; c++ {
			perField[i] = append(perField[i], chunk{
				maskLen: c * w / k,
				from:    (c - 1) * w / k,
				to:      c * w / k,
			})
		}
	}
	base := bitvec.NewVec(l)
	for i, f := range fields {
		base.SetField(l, f, allowVals[i])
	}

	var entries []*tss.Entry
	// For rule r (1-based; r = len(fields)+1 means DefaultDeny): fields
	// 1..r-1 deviate (chunk choice + value), field r matches exactly,
	// fields r+1.. are wildcarded.
	for r := 1; r <= len(fields)+1; r++ {
		deviating := fields[:r-1]
		action := flowtable.Allow
		if r == len(fields)+1 {
			action = flowtable.Drop
		}
		// Enumerate chunk choices for the deviating fields.
		var rec func(fi int, mask, key bitvec.Vec)
		rec = func(fi int, mask, key bitvec.Vec) {
			if fi == len(deviating) {
				m, k2 := mask.Clone(), key.Clone()
				if r <= len(fields) {
					// Exact match on the rule's own field.
					f := fields[r-1]
					for b := 0; b < l.Field(f).Width; b++ {
						m.SetFieldBit(l, f, b)
						if base.FieldBit(l, f, b) {
							k2.SetFieldBit(l, f, b)
						}
					}
				}
				entries = append(entries, &tss.Entry{Key: k2, Mask: m, Action: action})
				return
			}
			f := deviating[fi]
			idx := indexOfField(fields, f)
			for _, ch := range perField[idx] {
				// Unwildcard the prefix through this chunk; the allowed
				// value fills earlier chunks; enumerate chunk values
				// that differ from the allowed chunk.
				allowChunk := extractBits(l, base, f, ch.from, ch.to)
				span := ch.to - ch.from
				for v := uint64(0); v < 1<<uint(span); v++ {
					if v == allowChunk {
						continue
					}
					m, k2 := mask.Clone(), key.Clone()
					for b := 0; b < ch.maskLen; b++ {
						m.SetFieldBit(l, f, b)
					}
					for b := 0; b < ch.from; b++ {
						if base.FieldBit(l, f, b) {
							k2.SetFieldBit(l, f, b)
						}
					}
					setBits(l, k2, f, ch.from, ch.to, v)
					rec(fi+1, m, k2)
				}
			}
		}
		rec(0, bitvec.NewVec(l), bitvec.NewVec(l))
	}
	return entries, nil
}

func indexOfField(fields []int, f int) int {
	for i, x := range fields {
		if x == f {
			return i
		}
	}
	return -1
}

// Theorem42MaskCount returns the number of distinct deny masks of the
// multi-field construction: Π k_i (the theorem's time bound).
func Theorem42MaskCount(ks []int) int { return Theorem42Time(ks) }

// GeometricMeanBound is the inner inequality of the Theorem 4.1 proof:
// Σ 2^{b_i} subject to Σ b_i = w is minimal when all b_i = w/k, giving
// k·2^{w/k}. Exposed for the property tests.
func GeometricMeanBound(bs []int) (sum, bound float64) {
	w := 0
	for _, b := range bs {
		sum += math.Exp2(float64(b))
		w += b
	}
	k := float64(len(bs))
	bound = k * math.Exp2(float64(w)/k)
	return sum, bound
}
