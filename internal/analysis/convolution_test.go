package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/vswitch"
)

func TestCkConvolutionSingleField(t *testing.T) {
	// Single w-bit header: deny proofs are prefixes of length 1..w, i.e.
	// one entry per wildcard count k = 0..w-1, plus the exact allow entry
	// at k = 0. So C_0 = 2 and C_k = 1 for 1 <= k <= w-1 (cf. Fig. 3:
	// entries 001 and 000 share k=0; 01* has k=1; 1** has k=2).
	counts, err := CkConvolution([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 1, 0}
	for k, c := range counts {
		if c != want[k] {
			t.Errorf("C_%d = %v, want %v", k, c, want[k])
		}
	}
}

func TestCkConvolutionTwoFieldsPaperFormula(t *testing.T) {
	// §11.3 for two headers of lengths s <= l gives C_k = k+2 for
	// 0 <= k < s and C_k = s for s <= k < l. (The paper's closed form for
	// k >= l, s+l-(k+1), undercounts by one at k = l: the census of the
	// actual Fig. 5 MFC has C_4 = 3 — entries 001|****, 01*|0***, and
	// 1**|10** all wildcard 4 bits — which the convolution reproduces;
	// see TestCkConvolutionMatchesGeneratorCensus.)
	s, l := 3, 4
	counts, err := CkConvolution([]int{s, l})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < l; k++ {
		var want float64
		if k < s {
			want = float64(k + 2)
		} else {
			want = float64(s)
		}
		if counts[k] != want {
			t.Errorf("C_%d = %v, want %v (paper §11.3)", k, counts[k], want)
		}
	}
}

// TestCkConvolutionMatchesGeneratorCensus is the strong check: the
// closed-form convolution must equal a brute-force census of the actual
// megaflow generator's output over the exhaustive header space.
func TestCkConvolutionMatchesGeneratorCensus(t *testing.T) {
	l := bitvec.HYP2
	tbl := flowtable.Fig4()
	gen, err := vswitch.NewGenerator(tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{} // entry key|mask -> wildcarded bits
	h := bitvec.NewVec(l)
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 16; b++ {
			h.SetField(l, 0, a)
			h.SetField(l, 1, b)
			e := gen.Generate(h)
			seen[e.Key.Key()+"|"+e.Mask.Key()] = l.Bits() - e.Mask.OnesCount()
		}
	}
	census := make([]float64, l.Bits()+1)
	for _, k := range seen {
		census[k]++
	}
	counts, err := CkConvolution([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := range counts {
		if counts[k] != census[k] {
			t.Errorf("C_%d: convolution %v, generator census %v", k, counts[k], census[k])
		}
	}
}

func TestCkConvolutionTotalsMatchFig5(t *testing.T) {
	// Total entries for HYP(3)+HYP2(4) should be Fig. 5's 16.
	counts, err := CkConvolution([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total != 16 {
		t.Errorf("total entries = %v, want 16 (Fig. 5)", total)
	}
}

func TestCkConvolutionErrors(t *testing.T) {
	if _, err := CkConvolution(nil); err == nil {
		t.Error("empty widths accepted")
	}
	if _, err := CkConvolution([]int{0}); err == nil {
		t.Error("zero width accepted")
	}
}

func TestExpectedEntriesCkUpperBoundsMasks(t *testing.T) {
	// The Ck-based entry expectation upper-bounds the exact mask
	// expectation (masks coincide across entries; entries >= masks).
	for _, u := range []flowtable.UseCase{flowtable.Dp, flowtable.SipDp} {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		var widths []int
		for _, name := range flowtable.TargetFields(u) {
			i, _ := bitvec.IPv4Tuple.FieldIndex(name)
			widths = append(widths, bitvec.IPv4Tuple.Field(i).Width)
		}
		for _, n := range []int{100, 5000, 50000} {
			eCk, err := ExpectedEntriesCk(widths, n)
			if err != nil {
				t.Fatal(err)
			}
			eMask, err := ExpectedMasks(tbl, n)
			if err != nil {
				t.Fatal(err)
			}
			if eCk+1e-9 < eMask {
				t.Errorf("%v n=%d: Ck expectation %.2f below mask expectation %.2f",
					u, n, eCk, eMask)
			}
			// And they should be in the same ballpark (within 2x).
			if eCk > 2.5*eMask+5 {
				t.Errorf("%v n=%d: Ck expectation %.2f far above masks %.2f",
					u, n, eCk, eMask)
			}
		}
	}
}

func TestKMaskConstructionMultiAttainsTheorem42(t *testing.T) {
	// Two fields (6 and 4 bits) with several (k1, k2) choices: the
	// construction must be order-independent, classify all 2^10 headers
	// like the ACL, use exactly k1*k2 deny masks, and have
	// k1(2^(w1/k1)-1) * k2(2^(w2/k2)-1) deny entries.
	l := bitvec.MustLayout(
		bitvec.Field{Name: "A", Width: 6},
		bitvec.Field{Name: "B", Width: 4},
	)
	allowA, allowB := uint64(0b101010), uint64(0b0110)
	for _, ks := range [][]int{{1, 1}, {6, 4}, {2, 4}, {3, 2}, {6, 1}} {
		entries, err := KMaskConstructionMulti(l, []int{0, 1}, []uint64{allowA, allowB}, ks)
		if err != nil {
			t.Fatal(err)
		}
		c := tss.New(l, tss.Options{})
		denyEntries, denyMasks := 0, map[string]bool{}
		for _, e := range entries {
			if err := c.Insert(e, 0); err != nil {
				t.Fatalf("ks=%v: overlap: %v", ks, err)
			}
			if e.Action == flowtable.Drop {
				denyEntries++
				denyMasks[e.Mask.Key()] = true
			}
		}
		if got, want := len(denyMasks), Theorem42MaskCount(ks); got != want {
			t.Errorf("ks=%v: deny masks = %d, want %d", ks, got, want)
		}
		wantEntries := Theorem42Space([]int{6, 4}, ks)
		if float64(denyEntries) != wantEntries {
			t.Errorf("ks=%v: deny entries = %d, want %.0f (Thm 4.2)", ks, denyEntries, wantEntries)
		}
		// Semantics: allow iff A == allowA (rule 1) or B == allowB (rule 2).
		h := bitvec.NewVec(l)
		for a := uint64(0); a < 64; a++ {
			for b := uint64(0); b < 16; b++ {
				h.SetField(l, 0, a)
				h.SetField(l, 1, b)
				e, _, ok := c.Lookup(h, 0)
				if !ok {
					t.Fatalf("ks=%v: header %06b|%04b missed", ks, a, b)
				}
				want := flowtable.Drop
				if a == allowA || b == allowB {
					want = flowtable.Allow
				}
				if e.Action != want {
					t.Fatalf("ks=%v: header %06b|%04b -> %v, want %v", ks, a, b, e.Action, want)
				}
			}
		}
	}
}

func TestKMaskConstructionMultiErrors(t *testing.T) {
	l := bitvec.HYP2
	if _, err := KMaskConstructionMulti(l, []int{0}, []uint64{1, 2}, []int{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := KMaskConstructionMulti(l, []int{0}, []uint64{1}, []int{9}); err == nil {
		t.Error("k > w accepted")
	}
	wide := bitvec.IPv6Tuple
	si, _ := wide.FieldIndex("ip6_src")
	if _, err := KMaskConstructionMulti(wide, []int{si}, []uint64{1}, []int{2}); err == nil {
		t.Error("128-bit field accepted")
	}
}

// TestGeometricMeanBoundQuick property-tests the inequality at the heart
// of the Theorem 4.1 proof: for any split of w bits into k positive
// chunks, Σ 2^{b_i} >= k·2^{w/k}.
func TestGeometricMeanBoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		bs := make([]int, k)
		for i := range bs {
			bs[i] = 1 + rng.Intn(10)
		}
		sum, bound := GeometricMeanBound(bs)
		return sum+1e-6 >= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Equality at the balanced split.
	sum, bound := GeometricMeanBound([]int{4, 4, 4})
	if math.Abs(sum-bound) > 1e-9 {
		t.Errorf("balanced split not tight: %v vs %v", sum, bound)
	}
}
