// Package analysis implements the paper's analytical machinery: the
// space–time trade-off bounds of Theorems 4.1 and 4.2, the generalized
// k-mask TSS construction that attains them, and the expected-mask formulas
// behind Fig. 9b (§6.1 Eq. 1–2 and the §11.3 convolution).
package analysis

import (
	"fmt"
	"math"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/tss"
)

// Theorem41Space returns the Theorem 4.1 lower bound on the number of
// *deny* keys any k-mask TSS construction needs for a w-bit
// "single exact allow + DefaultDeny" ACL: k·(2^(w/k) − 1).
//
// k = 1 gives the exact-match extreme (2^w − 1 keys, Fig. 2); k = w gives
// the wildcarding extreme (w keys, Fig. 3).
func Theorem41Space(w, k int) float64 {
	if k < 1 || k > w {
		panic(fmt.Sprintf("analysis: k = %d out of range [1, %d]", k, w))
	}
	return float64(k) * (math.Exp2(float64(w)/float64(k)) - 1)
}

// Theorem42Space returns the Theorem 4.2 lower bound for the multi-field
// ACL (n single-field exact allow rules + DefaultDeny): the product of the
// per-field Theorem 4.1 bounds, evaluated at the given per-field k_i.
func Theorem42Space(widths, ks []int) float64 {
	if len(widths) != len(ks) {
		panic("analysis: widths and ks length mismatch")
	}
	prod := 1.0
	for i := range widths {
		prod *= Theorem41Space(widths[i], ks[i])
	}
	return prod
}

// Theorem42Time returns the Theorem 4.2 time lower bound: the product of
// the per-field mask counts k_i.
func Theorem42Time(ks []int) int {
	prod := 1
	for _, k := range ks {
		prod *= k
	}
	return prod
}

// KMaskConstruction builds an order-independent TSS entry set for the
// single-field ACL "allow <allowVal>, DefaultDeny" using exactly k masks,
// attaining the Theorem 4.1 trade-off point (k masks, k·(2^(w/k)−1) deny
// keys when k divides w).
//
// The field's bits are split into k chunks. Mask i (1-based) covers chunks
// 1..i; its keys hold the allowed value in chunks 1..i−1 and every value
// different from the allowed one in chunk i — "the packet first deviates
// from the allowed value inside chunk i". One final exact entry carries the
// allow action. The construction generalises Fig. 3 (k = w) and Fig. 2
// (k = 1).
func KMaskConstruction(l *bitvec.Layout, field int, allowVal uint64, k int) ([]*tss.Entry, error) {
	w := l.Field(field).Width
	if w > 63 {
		return nil, fmt.Errorf("analysis: field too wide (%d bits)", w)
	}
	if k < 1 || k > w {
		return nil, fmt.Errorf("analysis: k = %d out of range [1, %d]", k, w)
	}
	allow := bitvec.NewVec(l)
	allow.SetField(l, field, allowVal)

	// Chunk boundaries: chunk i spans bits [cuts[i-1], cuts[i]).
	cuts := make([]int, k+1)
	for i := 0; i <= k; i++ {
		cuts[i] = i * w / k
	}
	var entries []*tss.Entry
	for i := 1; i <= k; i++ {
		maskLen := cuts[i]
		mask := bitvec.PrefixMask(l, field, maskLen)
		chunkBits := cuts[i] - cuts[i-1]
		// Enumerate chunk-i values that differ from the allowed value.
		allowChunk := extractBits(l, allow, field, cuts[i-1], cuts[i])
		for v := uint64(0); v < 1<<uint(chunkBits); v++ {
			if v == allowChunk {
				continue
			}
			key := allow.And(mask) // allowed prefix in chunks 1..i-1
			setBits(l, key, field, cuts[i-1], cuts[i], v)
			entries = append(entries, &tss.Entry{
				Key: key, Mask: mask, Action: flowtable.Drop,
			})
		}
	}
	entries = append(entries, &tss.Entry{
		Key: allow.Clone(), Mask: bitvec.PrefixMask(l, field, w), Action: flowtable.Allow,
	})
	return entries, nil
}

// extractBits reads bits [from, to) (MSB-first indices) of field f as an
// unsigned integer.
func extractBits(l *bitvec.Layout, v bitvec.Vec, f, from, to int) uint64 {
	var out uint64
	for b := from; b < to; b++ {
		out <<= 1
		if v.FieldBit(l, f, b) {
			out |= 1
		}
	}
	return out
}

// setBits writes val into bits [from, to) of field f.
func setBits(l *bitvec.Layout, v bitvec.Vec, f, from, to int, val uint64) {
	for b := to - 1; b >= from; b-- {
		if val&1 == 1 {
			v.SetFieldBit(l, f, b)
		} else {
			v.ClearFieldBit(l, f, b)
		}
		val >>= 1
	}
}
