package analysis

import (
	"fmt"
	"math"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

// This file computes the expected number of MFC masks a General TSE attack
// attains with n uniformly random packets (§6.1, Fig. 9b).
//
// The paper derives (Eq. 1–2):
//
//	p_(k,n)(MFC) = 1 − (1 − p_k)^n,  p_k = 2^k / 2^h
//	E_(k,n)(MFC) = Σ_k C_k · p_(k,n)
//
// where C_k counts the distinct MFC entries with k wildcarded bits (the
// §11.3 convolution). Rather than re-deriving C_k by hand for every ACL
// shape, ExpectedMasks enumerates the megaflow generator's *decision
// classes* directly: for each targeted field, a random value either matches
// the allowed value (probability 2^-w) or first deviates at bit b
// (probability 2^-(b+1)). The generated mask is a deterministic function of
// the per-field class tuple, so enumerating all tuples, running the actual
// generator on a representative packet of each, and aggregating the
// probability per distinct mask yields the exact expectation — including
// the mask coincidences between allow and deny entries that a naive
// count-by-k misses. This stays faithful to Eq. 2 while being exact for
// the implementation under test (and is cross-validated against Monte
// Carlo simulation in the package tests).

// FieldClass is one per-field outcome of a uniformly random value against
// an exact-match rule: Match, or first deviation at bit Deviate.
type fieldClass struct {
	match   bool
	deviate int // first differing bit (MSB-first), valid if !match
}

// ExpectedMasks returns E[#MFC masks] after n independent uniformly random
// packets (randomised in exactly the ACL's targeted fields) hit the given
// ACL. The ACL must consist of single-field exact-match allow rules plus a
// DefaultDeny, i.e. the §5.2 shapes.
func ExpectedMasks(tbl *flowtable.Table, n int) (float64, error) {
	masses, err := maskSpawnProbabilities(tbl)
	if err != nil {
		return 0, err
	}
	e := 0.0
	for _, p := range masses {
		// Eq. 1: probability that at least one of n packets spawns a
		// megaflow carrying this mask.
		e += -math.Expm1(float64(n) * math.Log1p(-p))
	}
	return e, nil
}

// ExpectedMasksCurve evaluates ExpectedMasks at each packet count,
// re-using the enumeration (Fig. 9b's x-axis sweep).
func ExpectedMasksCurve(tbl *flowtable.Table, ns []int) ([]float64, error) {
	masses, err := maskSpawnProbabilities(tbl)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ns))
	for i, n := range ns {
		e := 0.0
		for _, p := range masses {
			e += -math.Expm1(float64(n) * math.Log1p(-p))
		}
		out[i] = e
	}
	return out, nil
}

// MaxAttainableMasks returns the number of distinct masks a random-traffic
// attack can ever spawn against the ACL (the n→∞ limit of ExpectedMasks,
// equal to the co-located full outer product count).
func MaxAttainableMasks(tbl *flowtable.Table) (int, error) {
	masses, err := maskSpawnProbabilities(tbl)
	if err != nil {
		return 0, err
	}
	return len(masses), nil
}

// maskSpawnProbabilities enumerates every distinct megaflow mask the
// generator can emit for the ACL and the per-packet probability that a
// uniformly random packet spawns it.
func maskSpawnProbabilities(tbl *flowtable.Table) (map[string]float64, error) {
	l := tbl.Layout()
	gen, err := vswitch.NewGenerator(tbl, nil)
	if err != nil {
		return nil, err
	}
	targets, base, err := extractExactAllowTargets(tbl)
	if err != nil {
		return nil, err
	}

	// Enumerate class tuples with a mixed-radix counter: per field,
	// classes are {match, deviate@0, ..., deviate@(w-1)}.
	radix := make([]int, len(targets))
	for i, f := range targets {
		radix[i] = l.Field(f).Width + 1
	}
	masses := make(map[string]float64)
	idx := make([]int, len(targets))
	for {
		p := 1.0
		h := base.Clone()
		for i, f := range targets {
			w := l.Field(f).Width
			if idx[i] == 0 {
				// Match: the field equals the allowed value.
				p *= math.Exp2(-float64(w))
			} else {
				b := idx[i] - 1 // first deviation at bit b
				p *= math.Exp2(-float64(b + 1))
				h.FlipFieldBit(l, f, b)
			}
		}
		e := gen.Generate(h)
		masses[e.Mask.Key()] += p

		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < radix[i] {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	return masses, nil
}

// extractExactAllowTargets mirrors core.ExtractTargets but returns field
// indices (package core depends on vswitch; analysis keeps its own tiny
// extractor to avoid a dependency cycle with future users).
func extractExactAllowTargets(tbl *flowtable.Table) ([]int, bitvec.Vec, error) {
	l := tbl.Layout()
	base := bitvec.NewVec(l)
	var fields []int
	for _, r := range tbl.Rules() {
		if r.Action != flowtable.Allow {
			continue
		}
		field := -1
		for f := 0; f < l.NumFields(); f++ {
			w := l.Field(f).Width
			bits := 0
			for i := 0; i < w; i++ {
				if r.Mask.FieldBit(l, f, i) {
					bits++
				}
			}
			if bits == 0 {
				continue
			}
			if bits != w || field != -1 {
				return nil, nil, fmt.Errorf("analysis: allow rule %q is not single-field exact", r.Name)
			}
			field = f
		}
		if field == -1 {
			return nil, nil, fmt.Errorf("analysis: allow rule %q matches everything", r.Name)
		}
		fields = append(fields, field)
		for i := 0; i < l.Field(field).Width; i++ {
			if r.Key.FieldBit(l, field, i) {
				base.SetFieldBit(l, field, i)
			}
		}
	}
	if len(fields) == 0 {
		return nil, nil, fmt.Errorf("analysis: no allow rules")
	}
	return fields, base, nil
}

// PkMFC returns Eq. 1's single-entry spawn probability p_k = 2^k / 2^h for
// an entry with k wildcarded bits over an h-bit (targeted) header space.
func PkMFC(k, h int) float64 { return math.Exp2(float64(k - h)) }

// PknMFC returns Eq. 1: the probability that at least one of n random
// packets spawns a specific entry with k wildcarded bits.
func PknMFC(k, h, n int) float64 {
	return -math.Expm1(float64(n) * math.Log1p(-PkMFC(k, h)))
}
