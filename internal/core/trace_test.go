package core

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

func newSwitch(t *testing.T, tbl *flowtable.Table) *vswitch.Switch {
	t.Helper()
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestCoLocatedFig1Trace: §5.1 derives the exact single-header trace
// {001, 101, 011, 000} for the Fig. 1 ACL.
func TestCoLocatedFig1Trace(t *testing.T) {
	tr, err := CoLocated(flowtable.Fig1(), CoLocatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0b001, 0b101, 0b011, 0b000}
	if tr.Len() != len(want) {
		t.Fatalf("trace length = %d, want %d", tr.Len(), len(want))
	}
	for i, h := range tr.Headers {
		if got := h.FieldUint64(bitvec.HYP, 0); got != want[i] {
			t.Errorf("packet %d = %03b, want %03b", i, got, want[i])
		}
	}
	// Replaying the trace spawns exactly Fig. 3: 4 entries, 3 masks.
	sw := newSwitch(t, flowtable.Fig1())
	st := Replay(sw, tr, 0)
	if st.MasksAfter != 3 || st.EntriesAfter != 4 {
		t.Errorf("replay produced %d masks / %d entries, want 3/4", st.MasksAfter, st.EntriesAfter)
	}
	if st.NewMasks() != 3 || st.Packets != 4 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCoLocatedFig4Trace: the two-header outer product of §5.1 yields 13
// masks against the Fig. 4 ACL when allow-combos are skipped
// ("this technique gives exactly 4*3+1 = 13 packets and the same number of
// MFC masks").
func TestCoLocatedFig4Trace(t *testing.T) {
	tr, err := CoLocated(flowtable.Fig4(), CoLocatedOptions{SkipAllowCombos: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 13 {
		t.Errorf("trace length = %d, want 13 = 4*3+1 (§5.1)", tr.Len())
	}
	sw := newSwitch(t, flowtable.Fig4())
	st := Replay(sw, tr, 0)
	if st.MasksAfter != 13 {
		t.Errorf("masks = %d, want 13", st.MasksAfter)
	}
}

// TestUseCaseMaskCounts reproduces the §5.2 mask-count table. The paper
// quotes approximate maxima (17 / ~256 / ~512 / ~8195); our exact counts
// differ by a handful because allow-rule megaflow masks mostly *coincide*
// with deny prefix masks (exactly as Fig. 5's entries #2–#4 share masks
// with deny entries):
//
//   - Dp: 16 deny prefixes; the allow mask equals the 16-bit prefix → 16.
//   - SpDp: 256 deny products + rule #1's lone exact-dp mask → 257
//     (rule #3's masks are all deny products with full sp prefix).
//   - SipDp: 512 + 1 → 513.
//   - SipSpDp skip-allow: 8192 + 1 → 8193; full outer product adds rule
//     #2's 16 sp-unconstrained shapes → 8209.
func TestUseCaseMaskCounts(t *testing.T) {
	cases := []struct {
		use       flowtable.UseCase
		skipMasks int // SkipAllowCombos
		fullMasks int // full outer product
	}{
		{flowtable.Dp, 16, 16},
		{flowtable.SpDp, 257, 257},
		{flowtable.SipDp, 513, 513},
		{flowtable.SipSpDp, 8193, 8209},
	}
	for _, c := range cases {
		t.Run(c.use.String(), func(t *testing.T) {
			for _, skip := range []bool{true, false} {
				tbl := flowtable.UseCaseACL(c.use, flowtable.ACLParams{})
				tr, err := CoLocated(tbl, CoLocatedOptions{SkipAllowCombos: skip})
				if err != nil {
					t.Fatal(err)
				}
				sw := newSwitch(t, tbl)
				st := Replay(sw, tr, 0)
				want := c.fullMasks
				if skip {
					want = c.skipMasks
				}
				if st.MasksAfter != want {
					t.Errorf("skip=%v: masks = %d, want %d", skip, st.MasksAfter, want)
				}
				// Sanity: the §5.2 ballpark (deny product) is attained.
				if st.MasksAfter < flowtable.DenyMaskProduct(c.use) {
					t.Errorf("masks %d below deny product %d", st.MasksAfter,
						flowtable.DenyMaskProduct(c.use))
				}
			}
		})
	}
}

// TestCoLocatedNoiseSpawnsSameMasks: noise randomises only wildcarded
// bits, so the spawned mask set is identical while headers gain entropy.
func TestCoLocatedNoiseSpawnsSameMasks(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	plain, err := CoLocated(tbl, CoLocatedOptions{SkipAllowCombos: true})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := CoLocated(tbl, CoLocatedOptions{SkipAllowCombos: true, Noise: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	swP := newSwitch(t, flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}))
	swN := newSwitch(t, flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}))
	stP := Replay(swP, plain, 0)
	stN := Replay(swN, noisy, 0)
	if stP.MasksAfter != stN.MasksAfter {
		t.Errorf("noise changed mask count: %d vs %d", stP.MasksAfter, stN.MasksAfter)
	}
	// Noise must actually vary the headers (entropy for the UFC).
	distinct := make(map[string]bool)
	for _, h := range noisy.Headers {
		distinct[h.Key()] = true
	}
	if len(distinct) != noisy.Len() {
		t.Logf("noisy trace has %d distinct of %d headers", len(distinct), noisy.Len())
	}
	// ip_dst is unconstrained; with noise it should take several values.
	dstVals := make(map[uint64]bool)
	l := noisy.Layout
	dst, _ := l.FieldIndex("ip_dst")
	for _, h := range noisy.Headers {
		dstVals[h.FieldUint64(l, dst)] = true
	}
	if len(dstVals) < 10 {
		t.Errorf("noise left ip_dst nearly constant: %d values", len(dstVals))
	}
}

func TestExtractTargetsErrors(t *testing.T) {
	l := bitvec.HYP2
	// Allow rule spanning two fields: not single-field.
	tbl := flowtable.New(l)
	k, m := bitvec.MustPattern(l, "0011111")
	tbl.MustAdd(&flowtable.Rule{Name: "multi", Priority: 1, Action: flowtable.Allow, Key: k, Mask: m})
	if _, _, err := ExtractTargets(tbl); err == nil {
		t.Error("multi-field allow rule accepted")
	}
	// Allow-everything rule.
	tbl2 := flowtable.New(l)
	tbl2.MustAdd(&flowtable.Rule{Name: "any", Priority: 1, Action: flowtable.Allow,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	if _, _, err := ExtractTargets(tbl2); err == nil {
		t.Error("allow-everything rule accepted")
	}
	// Deny-only table.
	tbl3 := flowtable.New(l)
	tbl3.MustAdd(&flowtable.Rule{Name: "dd", Priority: 0, Action: flowtable.Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	if _, _, err := ExtractTargets(tbl3); err == nil {
		t.Error("deny-only table accepted")
	}
	// Partial-field (prefix) allow rule.
	tbl4 := flowtable.New(l)
	k4, m4 := bitvec.MustPattern(l, "01*****")
	tbl4.MustAdd(&flowtable.Rule{Name: "prefix", Priority: 1, Action: flowtable.Allow, Key: k4, Mask: m4})
	if _, _, err := ExtractTargets(tbl4); err == nil {
		t.Error("prefix allow rule accepted")
	}
}

func TestGeneralTrace(t *testing.T) {
	l := bitvec.IPv4Tuple
	tr, err := General(l, nil, 100, GeneralOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Fatalf("trace length = %d", tr.Len())
	}
	// Randomised fields should vary; ip_dst (not in defaults) stays zero.
	sip, _ := l.FieldIndex("ip_src")
	dst, _ := l.FieldIndex("ip_dst")
	sipVals := map[uint64]bool{}
	for _, h := range tr.Headers {
		sipVals[h.FieldUint64(l, sip)] = true
		if h.FieldUint64(l, dst) != 0 {
			t.Fatal("non-target field modified without Noise")
		}
	}
	if len(sipVals) < 90 {
		t.Errorf("ip_src not randomised: %d distinct values", len(sipVals))
	}
}

func TestGeneralTraceDeterministic(t *testing.T) {
	l := bitvec.IPv4Tuple
	a, _ := General(l, nil, 50, GeneralOptions{Seed: 9})
	b, _ := General(l, nil, 50, GeneralOptions{Seed: 9})
	for i := range a.Headers {
		if !a.Headers[i].Equal(b.Headers[i]) {
			t.Fatal("same seed produced different traces")
		}
	}
	c, _ := General(l, nil, 50, GeneralOptions{Seed: 10})
	same := true
	for i := range a.Headers {
		if !a.Headers[i].Equal(c.Headers[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneralTraceBaseAndNoise(t *testing.T) {
	l := bitvec.IPv4Tuple
	base := bitvec.NewVec(l)
	dst, _ := l.FieldIndex("ip_dst")
	base.SetField(l, dst, 0xc0a80105)
	tr, err := General(l, base, 20, GeneralOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range tr.Headers {
		if h.FieldUint64(l, dst) != 0xc0a80105 {
			t.Fatal("base header value lost")
		}
	}
	noisy, err := General(l, base, 20, GeneralOptions{Seed: 2, Noise: true})
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	for _, h := range noisy.Headers {
		if h.FieldUint64(l, dst) != 0xc0a80105 {
			varied = true
		}
	}
	if !varied {
		t.Error("Noise did not randomise non-target fields")
	}
}

func TestGeneralErrors(t *testing.T) {
	if _, err := General(bitvec.IPv4Tuple, nil, 5, GeneralOptions{Fields: []string{"bogus"}}); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := General(bitvec.HYP, nil, 5, GeneralOptions{}); err == nil {
		t.Error("layout without default fields accepted")
	}
}

// TestGeneralMaskGrowth: more random packets spawn more masks, with
// diminishing returns (the qualitative shape of Fig. 9b).
func TestGeneralMaskGrowth(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw := newSwitch(t, tbl)
	tr, err := General(bitvec.IPv4Tuple, nil, 5000, GeneralOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var at1000, at5000 int
	for i, h := range tr.Headers {
		sw.Process(h, 0)
		if i == 999 {
			at1000 = sw.MFC().MaskCount()
		}
	}
	at5000 = sw.MFC().MaskCount()
	if at1000 < 50 {
		t.Errorf("masks after 1000 pkts = %d, want > 50 (paper: ~97 for SipDp)", at1000)
	}
	if at5000 <= at1000 {
		t.Errorf("mask count did not grow: %d -> %d", at1000, at5000)
	}
	if at5000 > 529 {
		t.Errorf("masks exceed the co-located maximum: %d", at5000)
	}
}
