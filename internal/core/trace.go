// Package core implements the paper's primary contribution: the Tuple
// Space Explosion (TSE) attack.
//
// The attack inflates the number of distinct masks in a TSS megaflow cache
// by sending packets whose slow-path classification spawns megaflows with
// previously unseen masks. Two variants differ in what the adversary knows
// (§3.3):
//
//   - Co-located TSE (§5): the adversary knows the ACL (e.g. installed it
//     for her own leased workload) and crafts the minimal packet sequence
//     that spawns every attainable mask, via per-field bit inversion and an
//     outer product across fields (§5.1).
//
//   - General TSE (§6): the adversary knows nothing and sends packets with
//     uniformly random values in the header fields tenant ACLs plausibly
//     filter on. Package analysis computes the expected mask counts
//     (Eq. 1–2); this package generates the traces.
//
// Traces are plain header sequences over a bitvec.Layout; package packet
// turns them into wire-format frames and package pcap stores them.
package core

import (
	"fmt"
	"math/rand"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

// Trace is an adversarial packet sequence at the classifier-key level.
type Trace struct {
	// Layout is the header layout all Headers share.
	Layout *bitvec.Layout
	// Headers are the packet headers in send order.
	Headers []bitvec.Vec
}

// Len returns the number of packets.
func (t *Trace) Len() int { return len(t.Headers) }

// Target is one single-field exact-match allow rule extracted from an ACL:
// the unit the bit-inversion generator works on.
type Target struct {
	// Field is the layout field index the rule matches on.
	Field int
	// RuleName names the source rule (diagnostics).
	RuleName string
}

// ExtractTargets inspects an ACL and returns the single-field exact-match
// allow rules in priority order — the structure the co-located attack
// exploits ("a logical OR relation between the allow rules on more header
// fields ... create[s] an AND connection on the drop rule", §3.2). An
// error is returned if an allow rule is not a single-field exact match,
// since the bit-inversion construction is defined for those (the paper's
// practical ACLs, Fig. 6, all have this shape).
func ExtractTargets(tbl *flowtable.Table) ([]Target, bitvec.Vec, error) {
	l := tbl.Layout()
	base := bitvec.NewVec(l)
	var targets []Target
	for _, r := range tbl.Rules() {
		if r.Action != flowtable.Allow {
			continue
		}
		field := -1
		for f := 0; f < l.NumFields(); f++ {
			w := l.Field(f).Width
			n := 0
			for i := 0; i < w; i++ {
				if r.Mask.FieldBit(l, f, i) {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if n != w || field != -1 {
				return nil, nil, fmt.Errorf("core: allow rule %q is not a single-field exact match", r.Name)
			}
			field = f
		}
		if field == -1 {
			return nil, nil, fmt.Errorf("core: allow rule %q matches everything", r.Name)
		}
		targets = append(targets, Target{Field: field, RuleName: r.Name})
		// Record the allowed value into the base header.
		copyField(l, base, r.Key, field)
	}
	if len(targets) == 0 {
		return nil, nil, fmt.Errorf("core: ACL has no allow rules to target")
	}
	return targets, base, nil
}

// CoLocatedOptions tunes the co-located trace generator.
type CoLocatedOptions struct {
	// SkipAllowCombos drops combinations in which any targeted field holds
	// its allowed value (except the single all-allow packet). Those
	// combinations match an allow rule and mostly re-spawn existing
	// masks; the paper's mask-count estimates (§5.2: 17/256/512/8192+ε)
	// ignore them.
	SkipAllowCombos bool
	// Noise randomises header bits that cannot influence megaflow
	// generation (fields no rule constrains, and wildcard suffix bits
	// below each inverted bit), maximising header entropy to exhaust the
	// microflow cache (§5.2: "additional random noise added to
	// 'unimportant' header fields").
	Noise bool
	// Seed seeds the noise generator (deterministic traces for tests).
	Seed int64
}

// CoLocated generates the §5.1 adversarial trace for a known ACL.
//
// For each targeted field it builds the bit-inversion list — the allowed
// value, then the allowed value with each bit inverted one at a time — and
// emits the outer product across fields. Against the Fig. 1 ACL this
// produces exactly {001, 101, 011, 000}; against Fig. 6 it attains the
// maximal mask counts of §5.2.
func CoLocated(tbl *flowtable.Table, opts CoLocatedOptions) (*Trace, error) {
	targets, base, err := ExtractTargets(tbl)
	if err != nil {
		return nil, err
	}
	l := tbl.Layout()
	rng := rand.New(rand.NewSource(opts.Seed))
	free := unconstrainedFields(tbl)

	// flips[i] enumerates field i's inversion list as flip positions:
	// -1 keeps the allowed value, b >= 0 inverts bit b.
	flips := make([][]int, len(targets))
	for i, tg := range targets {
		w := l.Field(tg.Field).Width
		list := make([]int, 0, w+1)
		list = append(list, -1)
		for b := 0; b < w; b++ {
			list = append(list, b)
		}
		flips[i] = list
	}

	tr := &Trace{Layout: l}
	idx := make([]int, len(targets))
	for {
		h := base.Clone()
		allowed := 0
		for i, tg := range targets {
			flip := flips[i][idx[i]]
			if flip < 0 {
				allowed++
				continue
			}
			h.FlipFieldBit(l, tg.Field, flip)
			if opts.Noise {
				// Bits below the inverted bit are wildcarded in the
				// resulting megaflow; randomising them adds entropy
				// without changing which mask is spawned.
				w := l.Field(tg.Field).Width
				for b := flip + 1; b < w; b++ {
					if rng.Intn(2) == 1 {
						h.FlipFieldBit(l, tg.Field, b)
					}
				}
			}
		}
		if opts.Noise {
			for _, f := range free {
				randomizeField(l, h, f, rng)
			}
		}
		if !opts.SkipAllowCombos || allowed == 0 || allowed == len(targets) {
			tr.Headers = append(tr.Headers, h)
		}
		// Advance the mixed-radix counter over the outer product.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(flips[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	return tr, nil
}

// GeneralOptions tunes the general (ACL-oblivious) trace generator.
type GeneralOptions struct {
	// Fields names the header fields to randomise. When nil, the
	// generator randomises the fields tenant ACLs commonly filter on
	// (§5.2): ip_src, tp_src and tp_dst, insofar as the layout has them.
	Fields []string
	// Noise additionally randomises fields no tenant ACL plausibly
	// filters on (identified as: all other fields), exhausting the
	// microflow cache like the co-located variant does.
	Noise bool
	// Seed seeds the generator.
	Seed int64
}

// DefaultGeneralFields are the header fields the general attack randomises
// when the caller does not choose: the fields cloud ACL APIs let tenants
// filter on (§5.2, §7).
var DefaultGeneralFields = []string{"ip_src", "tp_src", "tp_dst"}

// General generates n random-header packets over the layout (§6.1). The
// base header supplies values for non-randomised fields (e.g. the victim's
// destination address); pass nil for all-zero.
func General(l *bitvec.Layout, base bitvec.Vec, n int, opts GeneralOptions) (*Trace, error) {
	names := opts.Fields
	if names == nil {
		for _, f := range DefaultGeneralFields {
			if _, ok := l.FieldIndex(f); ok {
				names = append(names, f)
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no fields to randomise")
	}
	fields := make([]int, len(names))
	isTarget := make(map[int]bool)
	for i, name := range names {
		f, ok := l.FieldIndex(name)
		if !ok {
			return nil, fmt.Errorf("core: layout has no field %q", name)
		}
		fields[i] = f
		isTarget[f] = true
	}
	if base == nil {
		base = bitvec.NewVec(l)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := &Trace{Layout: l, Headers: make([]bitvec.Vec, 0, n)}
	for i := 0; i < n; i++ {
		h := base.Clone()
		for _, f := range fields {
			randomizeField(l, h, f, rng)
		}
		if opts.Noise {
			for f := 0; f < l.NumFields(); f++ {
				if !isTarget[f] {
					randomizeField(l, h, f, rng)
				}
			}
		}
		tr.Headers = append(tr.Headers, h)
	}
	return tr, nil
}

// ReplayStats summarises the effect of replaying a trace into a switch.
type ReplayStats struct {
	// Packets is the number of headers processed.
	Packets int
	// MasksBefore/MasksAfter bracket the MFC mask count, the attack's
	// success metric.
	MasksBefore, MasksAfter int
	// EntriesBefore/EntriesAfter bracket the MFC entry count.
	EntriesBefore, EntriesAfter int
}

// NewMasks returns the number of masks the replay spawned.
func (r ReplayStats) NewMasks() int { return r.MasksAfter - r.MasksBefore }

// Replay drives every trace header through the switch at virtual time now,
// populating the MFC exactly as the attack would.
func Replay(sw *vswitch.Switch, tr *Trace, now int64) ReplayStats {
	st := ReplayStats{
		Packets:       tr.Len(),
		MasksBefore:   sw.MFC().MaskCount(),
		EntriesBefore: sw.MFC().EntryCount(),
	}
	for _, h := range tr.Headers {
		sw.Process(h, now)
	}
	st.MasksAfter = sw.MFC().MaskCount()
	st.EntriesAfter = sw.MFC().EntryCount()
	return st
}

// unconstrainedFields returns fields no rule of the table constrains;
// megaflow masks never include their bits, so they are free noise space.
func unconstrainedFields(tbl *flowtable.Table) []int {
	l := tbl.Layout()
	var out []int
	for f := 0; f < l.NumFields(); f++ {
		used := false
		for _, r := range tbl.Rules() {
			for i := 0; i < l.Field(f).Width; i++ {
				if r.Mask.FieldBit(l, f, i) {
					used = true
					break
				}
			}
			if used {
				break
			}
		}
		if !used {
			out = append(out, f)
		}
	}
	return out
}

// randomizeField overwrites field f of h with uniform random bits.
func randomizeField(l *bitvec.Layout, h bitvec.Vec, f int, rng *rand.Rand) {
	w := l.Field(f).Width
	for i := 0; i < w; i++ {
		if rng.Intn(2) == 1 {
			h.SetFieldBit(l, f, i)
		} else {
			h.ClearFieldBit(l, f, i)
		}
	}
}

// copyField copies field f from src into dst.
func copyField(l *bitvec.Layout, dst, src bitvec.Vec, f int) {
	w := l.Field(f).Width
	for i := 0; i < w; i++ {
		if src.FieldBit(l, f, i) {
			dst.SetFieldBit(l, f, i)
		} else {
			dst.ClearFieldBit(l, f, i)
		}
	}
}
