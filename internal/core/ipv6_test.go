package core

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

// ipv6ACL builds the §5.4 IPv6 analogue of the SipDp ACL: allow dst port
// 80, allow one /128 source, default deny.
func ipv6ACL(t *testing.T) *flowtable.Table {
	t.Helper()
	l := bitvec.IPv6Tuple
	tbl := flowtable.New(l)
	dp, _ := l.FieldIndex("tp_dst")
	k1 := bitvec.NewVec(l)
	k1.SetField(l, dp, 80)
	tbl.MustAdd(&flowtable.Rule{Name: "#1", Priority: 10, Action: flowtable.Allow,
		Key: k1, Mask: bitvec.FieldMask(l, dp)})
	sip, _ := l.FieldIndex("ip6_src")
	k2 := bitvec.NewVec(l)
	k2.SetFieldBytes(l, sip, []byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	tbl.MustAdd(&flowtable.Rule{Name: "#2", Priority: 5, Action: flowtable.Allow,
		Key: k2, Mask: bitvec.FieldMask(l, sip)})
	tbl.MustAdd(&flowtable.Rule{Name: "#4", Priority: 0, Action: flowtable.Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	return tbl
}

// TestCoLocatedIPv6Wildcarding: with the wildcarding strategy the IPv6
// SipDp attack attains 128*16 = 2048 deny masks — the trace generator and
// megaflow machinery are layout-generic.
func TestCoLocatedIPv6Wildcarding(t *testing.T) {
	tbl := ipv6ACL(t)
	tr, err := CoLocated(tbl, CoLocatedOptions{SkipAllowCombos: true})
	if err != nil {
		t.Fatal(err)
	}
	// Deny product 128*16 plus the single all-allow packet.
	if want := 128*16 + 1; tr.Len() != want {
		t.Fatalf("trace length = %d, want %d", tr.Len(), want)
	}
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	st := Replay(sw, tr, 0)
	// 2048 deny masks + the allow rule's exact-dp mask.
	if st.MasksAfter != 2049 {
		t.Errorf("masks = %d, want 2049 = 128*16 + 1", st.MasksAfter)
	}
}

func TestCoLocatedIPv6FullProduct(t *testing.T) {
	if testing.Short() {
		t.Skip("full IPv6 outer product skipped with -short")
	}
	tbl := ipv6ACL(t)
	tr, err := CoLocated(tbl, CoLocatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 129 * 17; tr.Len() != want {
		t.Fatalf("trace length = %d, want %d", tr.Len(), want)
	}
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	st := Replay(sw, tr, 0)
	// Deny product 128*16 = 2048, plus rule #1's exact-dp mask; rule #2
	// masks (dp-prefix x full sip) coincide with deny shapes.
	if st.MasksAfter < 2048 || st.MasksAfter > 2080 {
		t.Errorf("masks = %d, want ≈2049 (128*16 deny + allow)", st.MasksAfter)
	}
}

// TestCoLocatedIPv6ExactStrategy reproduces §5.4's observed OVS behaviour:
// with ip6_src under the exact-match strategy the same trace yields only
// ~17 masks but an entry per distinct source.
func TestCoLocatedIPv6ExactStrategy(t *testing.T) {
	tbl := ipv6ACL(t)
	tr, err := CoLocated(tbl, CoLocatedOptions{SkipAllowCombos: true})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true,
		Strategy: map[string]vswitch.Strategy{"ip6_src": vswitch.StrategyExact}})
	if err != nil {
		t.Fatal(err)
	}
	st := Replay(sw, tr, 0)
	if st.MasksAfter > 40 {
		t.Errorf("masks = %d, want a handful (exact-match regime)", st.MasksAfter)
	}
	if st.EntriesAfter < 100 {
		t.Errorf("entries = %d, want ≈ one per distinct source", st.EntriesAfter)
	}
}

// TestGeneralIPv6 exercises the random generator over 128-bit fields.
func TestGeneralIPv6(t *testing.T) {
	tr, err := General(bitvec.IPv6Tuple, nil, 500, GeneralOptions{
		Fields: []string{"ip6_src", "tp_dst"}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, h := range tr.Headers {
		distinct[h.Key()] = true
	}
	if len(distinct) < 495 {
		t.Errorf("only %d distinct headers of 500", len(distinct))
	}
	sw, err := vswitch.New(vswitch.Config{Table: ipv6ACL(t), DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	st := Replay(sw, tr, 0)
	// Expected masks ≈ #(j1,j2) prefix combos with j1+j2 <= log2(500),
	// about 40 (cf. analysis.ExpectedMasks); assert the right ballpark.
	if st.MasksAfter < 30 || st.MasksAfter > 60 {
		t.Errorf("random IPv6 trace spawned %d masks, want ≈40", st.MasksAfter)
	}
}
