// Package ascii renders small deterministic text charts so cmd/tsebench
// can show the Fig. 8 time series as plots, not just tables. No styling,
// no unicode beyond plain ASCII, suitable for logs and diffs.
package ascii

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	// Name labels the line in the legend.
	Name string
	// Values are the y samples; all series of a chart share the x axis
	// (sample index).
	Values []float64
	// Marker is the plot character; pick distinct markers per series.
	Marker byte
}

// Chart is a multi-series line chart on a fixed character grid.
type Chart struct {
	// Title is printed above the grid.
	Title string
	// YLabel names the y axis (printed with the scale).
	YLabel string
	// XLabel names the x axis.
	XLabel string
	// Width and Height are the grid dimensions in characters; zero values
	// select 72x16.
	Width, Height int
	// Series are the lines to draw, first drawn first (later series
	// overdraw earlier ones where they collide).
	Series []Series
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	maxLen := 0
	maxVal := 0.0
	for _, s := range c.Series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
		for _, v := range s.Values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > maxVal {
				maxVal = v
			}
		}
	}
	if maxLen == 0 {
		return fmt.Errorf("ascii: chart has no data")
	}
	if maxVal == 0 {
		maxVal = 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			y := int(v / maxVal * float64(height-1))
			if y < 0 {
				y = 0
			}
			if y > height-1 {
				y = height - 1
			}
			grid[height-1-y][x] = marker
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	topLabel := fmt.Sprintf("%.4g", maxVal)
	if c.YLabel != "" {
		topLabel += " " + c.YLabel
	}
	if _, err := fmt.Fprintf(w, "%s\n", topLabel); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s\n", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	if c.XLabel != "" {
		if _, err := fmt.Fprintf(w, " 0%s%s\n",
			strings.Repeat(" ", max(1, width-len(c.XLabel)-4)), c.XLabel); err != nil {
			return err
		}
	}
	for _, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		if _, err := fmt.Fprintf(w, "  %c %s\n", marker, s.Name); err != nil {
			return err
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
