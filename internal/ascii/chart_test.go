package ascii

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := &Chart{
		Title:  "throughput",
		YLabel: "Gbps",
		XLabel: "t[s]",
		Width:  40, Height: 8,
		Series: []Series{
			{Name: "victim", Values: []float64{10, 10, 1, 1, 10}, Marker: 'v'},
			{Name: "attacker", Values: []float64{0, 0, 5, 5, 0}, Marker: 'a'},
		},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{"throughput", "Gbps", "t[s]", "v victim", "a attacker", "+--"} {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
	// The victim line must appear both at the top (full rate) and near
	// the bottom (under attack).
	lines := strings.Split(out, "\n")
	var gridLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 8 {
		t.Fatalf("grid has %d rows, want 8", len(gridLines))
	}
	if !strings.Contains(gridLines[0], "v") {
		t.Error("full-rate samples not on the top row")
	}
	bottom := strings.Join(gridLines[5:], "")
	if !strings.Contains(bottom, "v") {
		t.Error("degraded samples not near the bottom")
	}
}

func TestRenderDefaultsAndErrors(t *testing.T) {
	if err := (&Chart{}).Render(&strings.Builder{}); err == nil {
		t.Error("empty chart rendered")
	}
	c := &Chart{Series: []Series{{Name: "x", Values: []float64{1, 2, 3}}}}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Error("default marker not used")
	}
}

func TestRenderHandlesPathologicalValues(t *testing.T) {
	c := &Chart{Width: 20, Height: 4, Series: []Series{
		{Name: "bad", Values: []float64{math.NaN(), math.Inf(1), 0, 0}},
	}}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	// All-zero/NaN data must not divide by zero; max defaults to 1.
	if !strings.Contains(b.String(), "1") {
		t.Errorf("zero-data scale wrong:\n%s", b.String())
	}
}

func TestSingleSample(t *testing.T) {
	c := &Chart{Width: 10, Height: 3, Series: []Series{{Name: "p", Values: []float64{5}}}}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
}
