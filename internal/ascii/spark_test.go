package ascii

import (
	"math"
	"testing"
)

// TestSparkline pins the ramp mapping: min-max scaled, NaN gaps, flat
// series at the ramp floor.
func TestSparkline(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		want   string
	}{
		{"ramp", []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, "_.:-=+*#%@"},
		{"vee", []float64{10, 0, 10}, "@_@"},
		{"flat", []float64{5, 5, 5}, "___"},
		{"gap", []float64{0, math.NaN(), 10}, "_ @"},
		{"empty", nil, ""},
	}
	for _, c := range cases {
		if got := Sparkline(c.values); got != c.want {
			t.Errorf("%s: Sparkline = %q, want %q", c.name, got, c.want)
		}
	}
}
