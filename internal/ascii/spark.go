package ascii

import "math"

// sparkRamp is the density ramp for Sparkline, lowest to highest. Plain
// ASCII only, matching the package contract.
const sparkRamp = "_.:-=+*#%@"

// Sparkline renders values as a one-character-per-sample strip, min-max
// scaled so the shape survives any absolute magnitude. NaN/Inf samples
// render as a space; a flat series renders at the low end of the ramp.
// It is what `tsebench -compare` trajectory mode uses to show a bench
// family's history across BENCH_pr*.json files.
func Sparkline(values []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	out := make([]byte, len(values))
	for i, v := range values {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			out[i] = ' '
		case hi == lo:
			out[i] = sparkRamp[0]
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkRamp)-1))
			out[i] = sparkRamp[idx]
		}
	}
	return string(out)
}
