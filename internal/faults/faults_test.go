package faults_test

import (
	"math"
	"reflect"
	"testing"

	"tse/internal/faults"
)

// TestNilPlanNoOps: every query on a nil plan is a safe no-op — the
// zero-cost-when-nil contract the hooks rely on.
func TestNilPlanNoOps(t *testing.T) {
	var p *faults.Plan
	if p.HandlerPanicAt(0, 10) {
		t.Error("nil plan reported a panic")
	}
	if _, ok := p.HandlerStallAt(0, 10); ok {
		t.Error("nil plan reported a stall")
	}
	if p.HandlerGate(0, 10) != nil {
		t.Error("nil plan handed out a gate")
	}
	if p.RevalidatorStalledAt(10) || p.InstallErrorAt(10) {
		t.Error("nil plan reported an active window")
	}
	if p.DeliverDelayAt(0, 10) != 0 || p.DeliverDuplicateAt(0, 10) {
		t.Error("nil plan reported a delivery fault")
	}
	p.Release()
	if p.Events() != nil || p.Seed() != 0 {
		t.Error("nil plan reported events or a seed")
	}
}

// TestConsumeOnce: panic and stall events fire exactly once, only for a
// matching handler, and not before their tick.
func TestConsumeOnce(t *testing.T) {
	p := faults.NewPlan(
		faults.Event{Tick: 5, Kind: faults.HandlerPanic, Handler: 1},
		faults.Event{Tick: 7, Kind: faults.HandlerStall, Handler: 0, Duration: 4},
	)
	if p.HandlerPanicAt(1, 4) {
		t.Error("panic fired before its tick")
	}
	if p.HandlerPanicAt(0, 5) {
		t.Error("panic fired for the wrong handler")
	}
	if !p.HandlerPanicAt(1, 5) {
		t.Error("panic did not fire at its tick")
	}
	if p.HandlerPanicAt(1, 6) {
		t.Error("panic fired twice")
	}
	// A missed event still fires late (Tick <= now, not ==): a handler that
	// was busy at the scheduled tick dies on its next query.
	p.Add(faults.Event{Tick: 8, Kind: faults.HandlerPanic, Handler: 2})
	if !p.HandlerPanicAt(2, 11) {
		t.Error("late query missed a due panic")
	}

	until, ok := p.HandlerStallAt(0, 7)
	if !ok || until != 11 {
		t.Errorf("stall = (%d, %v), want (11, true)", until, ok)
	}
	if _, ok := p.HandlerStallAt(0, 8); ok {
		t.Error("stall consumed twice")
	}
}

// TestStallForever: Duration Forever means until released/replaced.
func TestStallForever(t *testing.T) {
	p := faults.NewPlan(faults.Event{Tick: 1, Kind: faults.HandlerStall, Handler: -1, Duration: faults.Forever})
	until, ok := p.HandlerStallAt(3, 3)
	if !ok || until != math.MaxInt64 {
		t.Errorf("forever stall = (%d, %v), want (MaxInt64, true) for any handler", until, ok)
	}
}

// TestGateRelease: goroutine-mode stalls hand out a gate that blocks until
// Release.
func TestGateRelease(t *testing.T) {
	p := faults.NewPlan(faults.Event{Tick: 2, Kind: faults.HandlerStall, Handler: 0})
	g := p.HandlerGate(0, 2)
	if g == nil {
		t.Fatal("no gate for a due stall")
	}
	if p.HandlerGate(0, 3) != nil {
		t.Error("gate handed out twice for one event")
	}
	select {
	case <-g:
		t.Fatal("gate open before Release")
	default:
	}
	p.Release()
	<-g // must be closed now; deadlock = failure
}

// TestWindows: revalidator-stall and install-error windows hold for
// [Tick, Tick+Duration) and are re-queried freely.
func TestWindows(t *testing.T) {
	p := faults.NewPlan(
		faults.Event{Tick: 10, Kind: faults.RevalidatorStall, Duration: 3},
		faults.Event{Tick: 20, Kind: faults.InstallError}, // Duration 0 = one tick
	)
	for now, want := range map[int64]bool{9: false, 10: true, 12: true, 13: false} {
		if got := p.RevalidatorStalledAt(now); got != want {
			t.Errorf("RevalidatorStalledAt(%d) = %v, want %v", now, got, want)
		}
	}
	// Windows are not consumed: asking again inside the window still holds.
	if !p.RevalidatorStalledAt(11) || !p.RevalidatorStalledAt(11) {
		t.Error("window fault was consumed")
	}
	for now, want := range map[int64]bool{19: false, 20: true, 21: false} {
		if got := p.InstallErrorAt(now); got != want {
			t.Errorf("InstallErrorAt(%d) = %v, want %v", now, got, want)
		}
	}
}

// TestDelivery: delay and duplicate apply to submissions at exactly their
// tick, filtered by source.
func TestDelivery(t *testing.T) {
	p := faults.NewPlan(
		faults.Event{Tick: 4, Kind: faults.DeliverDelay, Source: 1, Duration: 2},
		faults.Event{Tick: 6, Kind: faults.DeliverDuplicate, Source: -1},
	)
	if d := p.DeliverDelayAt(1, 4); d != 2 {
		t.Errorf("delay = %d, want 2", d)
	}
	if d := p.DeliverDelayAt(0, 4); d != 0 {
		t.Errorf("delay for unmatched source = %d, want 0", d)
	}
	if d := p.DeliverDelayAt(1, 5); d != 0 {
		t.Errorf("delay outside its tick = %d, want 0", d)
	}
	if !p.DeliverDuplicateAt(3, 6) {
		t.Error("any-source duplicate did not fire")
	}
	if p.DeliverDuplicateAt(3, 7) {
		t.Error("duplicate fired outside its tick")
	}
}

// TestRandomDeterministic: the same (seed, cfg) yields the same schedule;
// a different seed yields a different one.
func TestRandomDeterministic(t *testing.T) {
	cfg := faults.RandomConfig{
		HorizonSec: 40, Handlers: 4, Sources: 3,
		Panics: 2, Stalls: 3, SweepStalls: 1, InstallErrs: 1, Delays: 2, Dups: 2,
	}
	a, b := faults.Random(42, cfg), faults.Random(42, cfg)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different schedules")
	}
	if a.Seed() != 42 {
		t.Errorf("seed = %d, want 42", a.Seed())
	}
	c := faults.Random(43, cfg)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Error("different seeds produced identical schedules")
	}
	if n := len(a.Events()); n != 11 {
		t.Errorf("event count = %d, want 11", n)
	}
	for _, e := range a.Events() {
		if e.Tick < 0 || e.Tick >= 40 {
			t.Errorf("event tick %d outside horizon", e.Tick)
		}
	}
}

// TestNodeFaults: the node-level kinds follow the same mechanics as their
// single-box cousins — NodeCrash consumes once per event, partition and
// push-error windows hold for [Tick, Tick+Duration) filtered by node.
func TestNodeFaults(t *testing.T) {
	p := faults.NewPlan(
		faults.Event{Tick: 5, Kind: faults.NodeCrash, Node: 1},
		faults.Event{Tick: 10, Kind: faults.NodePartition, Node: 2, Duration: 4},
		faults.Event{Tick: 12, Kind: faults.ACLPushError, Node: -1, Duration: 2},
	)
	if p.NodeCrashAt(1, 4) {
		t.Error("crash fired before its tick")
	}
	if p.NodeCrashAt(0, 5) {
		t.Error("crash fired for the wrong node")
	}
	if !p.NodeCrashAt(1, 6) {
		t.Error("late query missed a due crash")
	}
	if p.NodeCrashAt(1, 7) {
		t.Error("crash fired twice")
	}

	for now, want := range map[int64]bool{9: false, 10: true, 13: true, 14: false} {
		if got := p.NodePartitionedAt(2, now); got != want {
			t.Errorf("NodePartitionedAt(2, %d) = %v, want %v", now, got, want)
		}
	}
	if p.NodePartitionedAt(0, 11) {
		t.Error("partition leaked onto an untargeted node")
	}
	// Windows are not consumed; node -1 matches every node.
	if !p.ACLPushErrorAt(0, 12) || !p.ACLPushErrorAt(3, 13) || !p.ACLPushErrorAt(0, 12) {
		t.Error("any-node push-error window misbehaved")
	}
	if p.ACLPushErrorAt(0, 14) {
		t.Error("push-error window held past its duration")
	}

	// Nil-plan contract extends to the node queries.
	var nilP *faults.Plan
	if nilP.NodeCrashAt(0, 1) || nilP.NodePartitionedAt(0, 1) || nilP.ACLPushErrorAt(0, 1) {
		t.Error("nil plan reported a node fault")
	}
}

// TestRandomNodeFaults: seeded generation covers the node kinds
// deterministically and respects the node range.
func TestRandomNodeFaults(t *testing.T) {
	cfg := faults.RandomConfig{
		HorizonSec: 30, Nodes: 4,
		Crashes: 2, Partitions: 2, PushErrs: 2,
	}
	a, b := faults.Random(7, cfg), faults.Random(7, cfg)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different node schedules")
	}
	if n := len(a.Events()); n != 6 {
		t.Fatalf("event count = %d, want 6", n)
	}
	for _, e := range a.Events() {
		if e.Node < 0 || e.Node >= 4 {
			t.Errorf("%v targets node %d outside [0,4)", e.Kind, e.Node)
		}
		switch e.Kind {
		case faults.NodePartition, faults.ACLPushError:
			if e.Duration <= 0 {
				t.Errorf("%v has no window duration", e.Kind)
			}
		case faults.NodeCrash:
		default:
			t.Errorf("unexpected kind %v in node-only config", e.Kind)
		}
	}
}
