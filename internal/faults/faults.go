// Package faults is the deterministic fault-injection layer of the
// simulated switch: a schedule of component failures — handler panics,
// handler stalls, revalidator sweep stalls, megaflow-install errors, and
// delayed or duplicated upcall delivery — scripted against the virtual
// clock, so a chaos run replays bit-for-bit.
//
// A Plan is either built from explicit events (the chaos experiment's
// scripted "kill handler 0 at the attack peak") or generated from a seed
// (Random), and is threaded into the upcall subsystem and the switch as an
// optional hook: a nil plan costs one pointer comparison on the paths it
// guards, and every query method is nil-receiver-safe.
//
// Two consumers with different fault mechanics share the schedule:
//
//   - Drive mode (the deterministic simulator) asks in virtual ticks:
//     HandlerPanicAt / HandlerStallAt model a handler dying or freezing as
//     lost service capacity plus orphaned in-flight upcalls, applied by
//     Subsystem.HandleNAt.
//   - Goroutine mode asks for a gate: HandlerGate returns a channel the
//     injected handler blocks on (a real wedged goroutine), released by
//     Release — the shape the Stop-timeout and supervisor stall tests
//     need.
//
// Panic and stall events are consumed once (a handler dies once per
// event); window faults (revalidator stall, install error) hold for their
// Duration and are re-queried freely.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// HandlerPanic kills one handler: goroutine mode panics inside the
	// handle path (the supervisor recovers and respawns), drive mode
	// orphans the handler's current burst and removes its service share
	// for the tick.
	HandlerPanic Kind = iota
	// HandlerStall freezes one handler for Duration ticks (drive mode) or
	// until Release (goroutine mode, via HandlerGate) without killing it —
	// the failure only heartbeat/stall detection can see.
	HandlerStall
	// RevalidatorStall suppresses revalidator sweeps for the event window:
	// no expiry, no revalidation, no quota retune, no pending reap.
	RevalidatorStall
	// InstallError fails every megaflow install attempted during the event
	// window (the flow still gets its slow-path verdict; the cache just
	// never learns it).
	InstallError
	// DeliverDelay holds upcalls submitted at the event's tick in limbo
	// for Duration ticks before handlers can see them (netlink socket
	// delay).
	DeliverDelay
	// DeliverDuplicate enqueues upcalls submitted at the event's tick
	// twice (at-least-once delivery); the second copy resolves as a no-op
	// but costs queue space and handler budget.
	DeliverDuplicate
	// NodeCrash kills one cluster node: its dataplane stops serving, its
	// tenants go dark until the failure detector declares it dead and the
	// scheduler fails them over. Consumed once, like HandlerPanic.
	NodeCrash
	// NodePartition cuts the controller↔node control channel for the
	// event window: heartbeats are lost and ACL pushes fail, but the
	// node's dataplane keeps forwarding on its last-applied ACL
	// generation (the graceful-degradation path).
	NodePartition
	// ACLPushError fails every controller ACL push attempted against the
	// targeted node during the event window (a flaky management channel
	// rather than a full partition) — the fault the controller's
	// retry/backoff loop exists for.
	ACLPushError
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case HandlerPanic:
		return "handler-panic"
	case HandlerStall:
		return "handler-stall"
	case RevalidatorStall:
		return "revalidator-stall"
	case InstallError:
		return "install-error"
	case DeliverDelay:
		return "deliver-delay"
	case DeliverDuplicate:
		return "deliver-duplicate"
	case NodeCrash:
		return "node-crash"
	case NodePartition:
		return "node-partition"
	case ACLPushError:
		return "acl-push-error"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Forever marks a stall that never ends on its own (goroutine mode: until
// Release; drive mode: until the supervisor's stall detection replaces the
// handler — or never, under the unsupervised ablation).
const Forever int64 = -1

// Event is one scheduled fault.
type Event struct {
	// Tick is the virtual second the fault fires (inclusive).
	Tick int64
	// Kind selects the fault.
	Kind Kind
	// Handler targets one handler slot for HandlerPanic/HandlerStall;
	// negative matches any handler (first asker wins).
	Handler int
	// Source targets one upcall source for the delivery faults; negative
	// matches every source.
	Source int
	// Node targets one cluster node for the node-level kinds
	// (NodeCrash/NodePartition/ACLPushError); negative matches every
	// node. Ignored by the single-box kinds, whose constructors leave it
	// zero.
	Node int
	// Duration is the fault length in ticks: the stall/window length for
	// HandlerStall/RevalidatorStall/InstallError (0 means one tick,
	// Forever means until released/replaced) and the delay amount for
	// DeliverDelay. Ignored by HandlerPanic and DeliverDuplicate.
	Duration int64
}

// window reports whether now falls inside the event's active window
// ([Tick, Tick+Duration), with Duration <= 0 meaning one tick and Forever
// meaning unbounded).
func (e Event) window(now int64) bool {
	if now < e.Tick {
		return false
	}
	if e.Duration == Forever {
		return true
	}
	d := e.Duration
	if d <= 0 {
		d = 1
	}
	return now < e.Tick+d
}

// scheduled is one plan entry with its runtime state.
type scheduled struct {
	Event
	consumed bool
}

// Plan is a deterministic fault schedule. It is safe for concurrent use
// (goroutine-mode handlers query it from several goroutines); a Plan holds
// per-event consumed state, so one Plan drives exactly one run.
type Plan struct {
	mu     sync.Mutex
	seed   int64
	events []scheduled
	gates  []chan struct{}
}

// NewPlan builds a plan from explicit events.
func NewPlan(events ...Event) *Plan {
	p := &Plan{}
	for _, e := range events {
		p.Add(e)
	}
	return p
}

// Add schedules one more event.
func (p *Plan) Add(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events = append(p.events, scheduled{Event: e})
	sort.SliceStable(p.events, func(i, j int) bool {
		return p.events[i].Tick < p.events[j].Tick
	})
}

// Events returns the schedule (runtime state stripped).
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	for i := range p.events {
		out[i] = p.events[i].Event
	}
	return out
}

// ScheduledAt returns the events whose window opens at exactly now, in
// schedule order. It reads the schedule, not the consumed state, so the
// dataplane loop can journal "fault X fires this tick" exactly once per
// event regardless of when (or whether) a consumer picks it up.
func (p *Plan) ScheduledAt(now int64) []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Event
	for i := range p.events {
		if p.events[i].Tick == now {
			out = append(out, p.events[i].Event)
		}
	}
	return out
}

// Seed returns the seed a Random plan was generated from (0 for explicit
// plans).
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// matches reports whether the event targets the given handler slot.
func matchesHandler(e Event, handler int) bool {
	return e.Handler < 0 || e.Handler == handler
}

// matchesSource reports whether the event targets the given source.
func matchesSource(e Event, src int) bool {
	return e.Source < 0 || e.Source == src
}

// matchesNode reports whether the event targets the given node.
func matchesNode(e Event, node int) bool {
	return e.Node < 0 || e.Node == node
}

// HandlerPanicAt consumes a due HandlerPanic event targeting handler:
// true means the handler dies now. Each event fires once.
func (p *Plan) HandlerPanicAt(handler int, now int64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		e := &p.events[i]
		if e.consumed || e.Kind != HandlerPanic || e.Tick > now || !matchesHandler(e.Event, handler) {
			continue
		}
		e.consumed = true
		return true
	}
	return false
}

// HandlerStallAt consumes a due HandlerStall event targeting handler and
// returns the virtual tick the stall ends at (exclusive;
// math.MaxInt64 for Forever). The drive-mode fault model uses this; the
// goroutine mode uses HandlerGate instead.
func (p *Plan) HandlerStallAt(handler int, now int64) (until int64, ok bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		e := &p.events[i]
		if e.consumed || e.Kind != HandlerStall || e.Tick > now || !matchesHandler(e.Event, handler) {
			continue
		}
		e.consumed = true
		if e.Duration == Forever {
			return math.MaxInt64, true
		}
		d := e.Duration
		if d <= 0 {
			d = 1
		}
		return e.Tick + d, true
	}
	return 0, false
}

// HandlerGate consumes a due HandlerStall event targeting handler and
// returns a channel the handler must block on — a real wedged goroutine,
// released only by Release. nil means no stall is due. Goroutine-mode
// injection point (Duration is ignored; virtual ticks do not advance for a
// blocked goroutine).
func (p *Plan) HandlerGate(handler int, now int64) <-chan struct{} {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		e := &p.events[i]
		if e.consumed || e.Kind != HandlerStall || e.Tick > now || !matchesHandler(e.Event, handler) {
			continue
		}
		e.consumed = true
		gate := make(chan struct{})
		p.gates = append(p.gates, gate)
		return gate
	}
	return nil
}

// Release opens every gate handed out by HandlerGate, unwedging stalled
// goroutine-mode handlers (test teardown; zombies abandoned by the
// supervisor or Stop exit through it).
func (p *Plan) Release() {
	if p == nil {
		return
	}
	p.mu.Lock()
	gates := p.gates
	p.gates = nil
	p.mu.Unlock()
	for _, g := range gates {
		close(g)
	}
}

// RevalidatorStalledAt reports whether a RevalidatorStall window covers
// now. Window faults are not consumed.
func (p *Plan) RevalidatorStalledAt(now int64) bool {
	return p.windowActive(RevalidatorStall, now)
}

// InstallErrorAt reports whether an InstallError window covers now — the
// hook vswitch's install paths consult per attempted install.
func (p *Plan) InstallErrorAt(now int64) bool {
	return p.windowActive(InstallError, now)
}

func (p *Plan) windowActive(k Kind, now int64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		if p.events[i].Kind == k && p.events[i].window(now) {
			return true
		}
	}
	return false
}

// DeliverDelayAt returns the limbo delay (in ticks) for an upcall
// submitted by src at now; 0 means deliver immediately. The event applies
// to submissions at exactly its Tick; Duration is the delay amount.
func (p *Plan) DeliverDelayAt(src int, now int64) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		e := &p.events[i]
		if e.Kind != DeliverDelay || e.Tick != now || !matchesSource(e.Event, src) {
			continue
		}
		if e.Duration > 0 {
			return e.Duration
		}
		return 1
	}
	return 0
}

// DeliverDuplicateAt reports whether upcalls submitted by src at now are
// delivered twice.
func (p *Plan) DeliverDuplicateAt(src int, now int64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		e := &p.events[i]
		if e.Kind == DeliverDuplicate && e.Tick == now && matchesSource(e.Event, src) {
			return true
		}
	}
	return false
}

// NodeCrashAt consumes a due NodeCrash event targeting node: true means
// the node dies now. Each event fires once, like HandlerPanicAt.
func (p *Plan) NodeCrashAt(node int, now int64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		e := &p.events[i]
		if e.consumed || e.Kind != NodeCrash || e.Tick > now || !matchesNode(e.Event, node) {
			continue
		}
		e.consumed = true
		return true
	}
	return false
}

// NodePartitionedAt reports whether a NodePartition window covering node
// is active at now. Window faults are not consumed; the controller asks
// every heartbeat and every push attempt.
func (p *Plan) NodePartitionedAt(node int, now int64) bool {
	return p.nodeWindowActive(NodePartition, node, now)
}

// ACLPushErrorAt reports whether an ACLPushError window covering node is
// active at now — consulted per push attempt, so a retry after the window
// closes succeeds.
func (p *Plan) ACLPushErrorAt(node int, now int64) bool {
	return p.nodeWindowActive(ACLPushError, node, now)
}

func (p *Plan) nodeWindowActive(k Kind, node int, now int64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		if p.events[i].Kind == k && matchesNode(p.events[i].Event, node) && p.events[i].window(now) {
			return true
		}
	}
	return false
}

// RandomConfig parameterises Random's seeded schedule generation.
type RandomConfig struct {
	// HorizonSec bounds event ticks to [0, HorizonSec); <= 0 selects 60.
	HorizonSec int64
	// Handlers, Sources and Nodes are the slot/source/node ranges targets
	// are drawn from; <= 0 selects 1.
	Handlers, Sources, Nodes int
	// Panics..PushErrs are per-kind event counts.
	Panics, Stalls, SweepStalls, InstallErrs, Delays, Dups int
	Crashes, Partitions, PushErrs                          int
	// MaxStallSec caps stall/window/delay lengths; <= 0 selects 3.
	MaxStallSec int64
}

// Random generates a plan from a seed: the fuzz-style chaos schedule.
// The same (seed, cfg) always yields the same plan.
func Random(seed int64, cfg RandomConfig) *Plan {
	if cfg.HorizonSec <= 0 {
		cfg.HorizonSec = 60
	}
	if cfg.Handlers <= 0 {
		cfg.Handlers = 1
	}
	if cfg.Sources <= 0 {
		cfg.Sources = 1
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.MaxStallSec <= 0 {
		cfg.MaxStallSec = 3
	}
	rng := rand.New(rand.NewSource(seed))
	tick := func() int64 { return rng.Int63n(cfg.HorizonSec) }
	dur := func() int64 { return 1 + rng.Int63n(cfg.MaxStallSec) }
	p := &Plan{seed: seed}
	emit := func(n int, k Kind, mk func() Event) {
		for i := 0; i < n; i++ {
			e := mk()
			e.Kind = k
			p.Add(e)
		}
	}
	emit(cfg.Panics, HandlerPanic, func() Event {
		return Event{Tick: tick(), Handler: rng.Intn(cfg.Handlers), Source: -1}
	})
	emit(cfg.Stalls, HandlerStall, func() Event {
		return Event{Tick: tick(), Handler: rng.Intn(cfg.Handlers), Source: -1, Duration: dur()}
	})
	emit(cfg.SweepStalls, RevalidatorStall, func() Event {
		return Event{Tick: tick(), Handler: -1, Source: -1, Duration: dur()}
	})
	emit(cfg.InstallErrs, InstallError, func() Event {
		return Event{Tick: tick(), Handler: -1, Source: -1, Duration: dur()}
	})
	emit(cfg.Delays, DeliverDelay, func() Event {
		return Event{Tick: tick(), Handler: -1, Source: rng.Intn(cfg.Sources), Duration: dur()}
	})
	emit(cfg.Dups, DeliverDuplicate, func() Event {
		return Event{Tick: tick(), Handler: -1, Source: rng.Intn(cfg.Sources)}
	})
	emit(cfg.Crashes, NodeCrash, func() Event {
		return Event{Tick: tick(), Handler: -1, Source: -1, Node: rng.Intn(cfg.Nodes)}
	})
	emit(cfg.Partitions, NodePartition, func() Event {
		return Event{Tick: tick(), Handler: -1, Source: -1, Node: rng.Intn(cfg.Nodes), Duration: dur()}
	})
	emit(cfg.PushErrs, ACLPushError, func() Event {
		return Event{Tick: tick(), Handler: -1, Source: -1, Node: rng.Intn(cfg.Nodes), Duration: dur()}
	})
	return p
}
