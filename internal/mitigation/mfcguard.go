// Package mitigation implements MFCGuard (§8, Alg. 2): a monitor that
// watches the megaflow cache and, when the mask count exceeds a threshold,
// deletes the entries a TSE attack spawned so that packet classification
// stays fast for traffic the ACL eventually allows.
//
// Design constraints from the paper:
//
//   - Requirement (i): entries covering useful (allowed) traffic are never
//     deleted — so only drop-action entries are candidates.
//   - Deleted entries are never re-sparked by the slow path (the
//     undocumented OVS behaviour the authors observed), so denied traffic
//     is processed in the slow path forever afterwards; the guard bounds
//     the resulting CPU cost with a utilisation threshold (c_th), stopping
//     its sweep when the slow path gets too hot.
package mitigation

import (
	"fmt"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/vswitch"
)

// DefaultIntervalSec is Alg. 2's sweep cadence ("runs every 10 seconds
// according to the MFC eviction policy").
const DefaultIntervalSec = 10

// Sweeper is the megaflow-deletion backend the guard sweeps through. Both
// *vswitch.Switch (direct monitor deletions) and *upcall.Revalidator
// (deletions routed through the revalidator's dump machinery, so guard and
// revalidator share the one megaflow-lifecycle path) satisfy it.
type Sweeper interface {
	DeleteMegaflows(pred func(*tss.Entry) bool) int
}

// Config parameterises a Guard.
type Config struct {
	// Switch is the protected device.
	Switch *vswitch.Switch
	// Sweeper performs the deletions; nil selects Switch itself. Async
	// deployments pass their upcall.Revalidator here.
	Sweeper Sweeper
	// MaskThreshold is m_th: sweeps trigger only above it.
	MaskThreshold int
	// CPUThreshold is c_th in percent: once the projected slow-path load
	// reaches it, the sweep stops deleting (Alg. 2 lines 9–12).
	CPUThreshold float64
	// IntervalSec overrides the sweep cadence; <= 0 selects the default.
	IntervalSec int64
	// DeleteAllDrops selects the paper's evaluated variant, which wipes
	// every drop entry rather than only those matching a TSE pattern
	// ("we evaluated the efficiency of MFCGuard in all use cases (by
	// deleting all drop rules)", §8).
	DeleteAllDrops bool
}

// Stats aggregates guard activity.
type Stats struct {
	// Sweeps counts monitor wake-ups; Triggered those above m_th.
	Sweeps, Triggered int
	// Deleted is the total megaflows removed.
	Deleted int
	// CPUAborts counts sweeps cut short by the CPU threshold.
	CPUAborts int
}

// Guard is an MFCGuard instance.
type Guard struct {
	cfg     Config
	lastRun int64
	ran     bool
	stats   Stats
}

// New validates the configuration and returns a Guard.
func New(cfg Config) (*Guard, error) {
	if cfg.Switch == nil {
		return nil, fmt.Errorf("mitigation: guard needs a switch")
	}
	if cfg.MaskThreshold <= 0 {
		return nil, fmt.Errorf("mitigation: mask threshold must be positive")
	}
	if cfg.CPUThreshold <= 0 {
		cfg.CPUThreshold = 100
	}
	if cfg.IntervalSec <= 0 {
		cfg.IntervalSec = DefaultIntervalSec
	}
	if cfg.Sweeper == nil {
		cfg.Sweeper = cfg.Switch
	}
	return &Guard{cfg: cfg}, nil
}

// Stats returns a snapshot of guard activity counters.
func (g *Guard) Stats() Stats { return g.stats }

// Tick runs the monitor at virtual time now. cpuPct is the current
// slow-path CPU utilisation (the `top` reading of Alg. 2 line 9); callers
// in the simulator derive it from SlowPathCPUPct. It returns the number of
// megaflows deleted in this sweep (0 when the cadence or threshold did not
// trigger).
func (g *Guard) Tick(now int64, cpuPct float64) int {
	if g.ran && now-g.lastRun < g.cfg.IntervalSec {
		return 0
	}
	g.lastRun = now
	g.ran = true
	g.stats.Sweeps++

	sw := g.cfg.Switch
	m := sw.MFC().MaskCount() // Alg. 2 line 2: checkNumberOfMasks
	if m <= g.cfg.MaskThreshold {
		return 0
	}
	g.stats.Triggered++

	deleted := 0
	if g.cfg.DeleteAllDrops {
		deleted = g.cfg.Sweeper.DeleteMegaflows(func(e *tss.Entry) bool {
			return e.Action == flowtable.Drop
		})
		g.stats.Deleted += deleted
		return deleted
	}

	// Alg. 2 lines 4–13: per flow-table rule, look for the TSE pattern
	// and delete the matching entries, re-checking the CPU budget after
	// each rule's wipe.
	layout := sw.Layout()
	for _, r := range sw.FlowTable().Rules() {
		if r.Action != flowtable.Allow {
			continue
		}
		rule := r
		n := g.cfg.Sweeper.DeleteMegaflows(func(e *tss.Entry) bool {
			return matchesTSEPattern(layout, rule, e)
		})
		deleted += n
		g.stats.Deleted += n
		// Line 9–12: each deletion batch shifts denied traffic to the
		// slow path; stop when the projected load crosses c_th.
		if cpuPct >= g.cfg.CPUThreshold {
			g.stats.CPUAborts++
			break
		}
	}
	return deleted
}

// matchesTSEPattern reports whether a megaflow looks like a TSE-spawned
// deny entry for the given allow rule (§3–§4): its action is drop and its
// mask constrains the rule's matched field with a non-empty MSB prefix —
// the unwildcarding signature of a mismatch proof against that rule.
// Requirement (i) is structural: allow entries never match.
func matchesTSEPattern(l *bitvec.Layout, rule *flowtable.Rule, e *tss.Entry) bool {
	if e.Action != flowtable.Drop {
		return false
	}
	for f := 0; f < l.NumFields(); f++ {
		w := l.Field(f).Width
		ruleBits := 0
		for i := 0; i < w; i++ {
			if rule.Mask.FieldBit(l, f, i) {
				ruleBits++
			}
		}
		if ruleBits == 0 {
			continue // rule does not constrain this field
		}
		// The entry must carry an MSB-first prefix (possibly full) of
		// the rule's field: contiguous from bit 0, no gaps.
		plen := 0
		for i := 0; i < w; i++ {
			if !e.Mask.FieldBit(l, f, i) {
				break
			}
			plen++
		}
		if plen == 0 {
			return false // deny proof against this rule would need bits here
		}
		// Bits after the prefix must be wildcarded (pure prefix shape).
		for i := plen; i < w; i++ {
			if e.Mask.FieldBit(l, f, i) {
				return false
			}
		}
	}
	return true
}

// MaxCPUPct caps the modelled slow-path utilisation: the paper's testbed
// shows ovs-vswitchd saturating around 250 % (multiple revalidator
// threads, Fig. 9c's y-axis).
const MaxCPUPct = 250

// SlowPathCPUPct models Fig. 9c: the CPU utilisation of the slow-path
// daemon (ovs-vswitchd) as a function of the packet rate hitting the slow
// path once MFCGuard keeps the adversarial entries out of the fast path.
// Anchors from the paper: ~15 % at 1 000 pps, ~80 % at 10 000 pps,
// saturation around 250 % towards 50 000 pps.
func SlowPathCPUPct(pps float64) float64 {
	pct := 7.8 + 0.0072*pps
	if pct > MaxCPUPct {
		pct = MaxCPUPct
	}
	return pct
}
