package mitigation

import (
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/vswitch"
)

// attackedSwitch builds a SipDp switch with a completed co-located attack
// (513 masks) plus a warm victim flow.
func attackedSwitch(t *testing.T) (*vswitch.Switch, bitvec.Vec) {
	t.Helper()
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	l := bitvec.IPv4Tuple
	victim := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	sip, _ := l.FieldIndex("ip_src")
	victim.SetField(l, dp, 80)
	victim.SetField(l, sip, 0x0a000099)
	sw.Process(victim, 0)

	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	core.Replay(sw, tr, 0)
	if sw.MFC().MaskCount() < 500 {
		t.Fatalf("attack setup failed: %d masks", sw.MFC().MaskCount())
	}
	return sw, victim
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("guard without switch accepted")
	}
	sw, _ := attackedSwitch(t)
	if _, err := New(Config{Switch: sw}); err == nil {
		t.Error("zero mask threshold accepted")
	}
}

// TestMFCGuardRestoresBaseline is §8's headline result: after the guard
// cleans the MFC, "the performance of the victim's traffic goes back to
// its baseline" — the victim's lookup cost returns to a handful of probes.
func TestMFCGuardRestoresBaseline(t *testing.T) {
	sw, victim := attackedSwitch(t)
	_, probesBefore, ok := sw.MFC().Lookup(victim, 1)
	if !ok {
		t.Fatal("victim entry missing")
	}

	g, err := New(Config{Switch: sw, MaskThreshold: 100, CPUThreshold: 200})
	if err != nil {
		t.Fatal(err)
	}
	deleted := g.Tick(10, 15)
	if deleted < 500 {
		t.Fatalf("guard deleted %d entries, want the attack's ~512", deleted)
	}
	// Requirement (i): the victim's allow entry survived.
	e, probesAfter, ok := sw.MFC().Lookup(victim, 11)
	if !ok || e.Action != flowtable.Allow {
		t.Fatal("victim allow entry was deleted (violates requirement (i))")
	}
	// Allow-action entries survive (requirement (i)), so a few masks
	// remain — near-baseline cost, versus hundreds under attack.
	if probesAfter > 20 {
		t.Errorf("victim probes after clean = %d, want near-baseline (was %d)", probesAfter, probesBefore)
	}
	if probesBefore <= probesAfter {
		t.Errorf("attack had no effect to begin with: %d -> %d", probesBefore, probesAfter)
	}
	if st := g.Stats(); st.Triggered != 1 || st.Deleted != deleted {
		t.Errorf("stats = %+v", st)
	}
}

// TestDeletedEntriesNeverRespawn verifies the quirk interaction (§8):
// after the guard wipes the attack entries, replaying the same attack
// leaves classification in the slow path — the masks do not come back.
func TestDeletedEntriesNeverRespawn(t *testing.T) {
	sw, _ := attackedSwitch(t)
	g, err := New(Config{Switch: sw, MaskThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	g.Tick(10, 15)
	masksClean := sw.MFC().MaskCount()

	tbl := sw.FlowTable()
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	core.Replay(sw, tr, 20)
	if got := sw.MFC().MaskCount(); got > masksClean+1 {
		t.Errorf("attack re-spawned %d masks after clean (quirk should suppress)", got-masksClean)
	}
	// The re-played attack ran in the slow path.
	if c := sw.Counters(); c.Suppressed == 0 {
		t.Error("no suppressed installs recorded")
	}
}

func TestGuardBelowThresholdDoesNothing(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.Dp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := core.CoLocated(tbl, core.CoLocatedOptions{})
	core.Replay(sw, tr, 0) // 16 masks
	g, _ := New(Config{Switch: sw, MaskThreshold: 100})
	if n := g.Tick(0, 10); n != 0 {
		t.Errorf("guard deleted %d below threshold", n)
	}
	if st := g.Stats(); st.Sweeps != 1 || st.Triggered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGuardCadence(t *testing.T) {
	sw, _ := attackedSwitch(t)
	g, _ := New(Config{Switch: sw, MaskThreshold: 100})
	g.Tick(0, 10)
	// 5 seconds later: within the 10 s interval, no sweep.
	if g.Tick(5, 10); g.Stats().Sweeps != 1 {
		t.Errorf("sweep ran within the interval: %+v", g.Stats())
	}
	if g.Tick(10, 10); g.Stats().Sweeps != 2 {
		t.Errorf("sweep did not run after the interval: %+v", g.Stats())
	}
}

func TestGuardCPUThresholdAbort(t *testing.T) {
	sw, _ := attackedSwitch(t)
	g, _ := New(Config{Switch: sw, MaskThreshold: 100, CPUThreshold: 50})
	// Current CPU already above c_th: the sweep stops after the first
	// rule's deletions.
	g.Tick(0, 80)
	if st := g.Stats(); st.CPUAborts == 0 {
		t.Errorf("no CPU abort recorded: %+v", st)
	}
}

func TestDeleteAllDropsVariant(t *testing.T) {
	sw, victim := attackedSwitch(t)
	g, _ := New(Config{Switch: sw, MaskThreshold: 100, DeleteAllDrops: true})
	g.Tick(0, 10)
	for _, e := range sw.MFC().Entries() {
		if e.Action == flowtable.Drop {
			t.Fatal("drop entry survived DeleteAllDrops sweep")
		}
	}
	if _, _, ok := sw.MFC().Lookup(victim, 1); !ok {
		t.Error("allow entry deleted")
	}
}

func TestMatchesTSEPattern(t *testing.T) {
	l := bitvec.IPv4Tuple
	tbl := flowtable.UseCaseACL(flowtable.Dp, flowtable.ACLParams{})
	rule := tbl.Rules()[0] // allow tp_dst 80
	dp, _ := l.FieldIndex("tp_dst")
	sip, _ := l.FieldIndex("ip_src")

	prefixEntry := &tss.Entry{Key: bitvec.NewVec(l), Mask: bitvec.PrefixMask(l, dp, 3),
		Action: flowtable.Drop}
	if !matchesTSEPattern(l, rule, prefixEntry) {
		t.Error("prefix drop entry should match the TSE pattern")
	}
	allowEntry := &tss.Entry{Key: bitvec.NewVec(l), Mask: bitvec.PrefixMask(l, dp, 16),
		Action: flowtable.Allow}
	if matchesTSEPattern(l, rule, allowEntry) {
		t.Error("allow entry must never match (requirement (i))")
	}
	// A drop entry not constraining the rule's field is not TSE-shaped
	// for this rule.
	other := &tss.Entry{Key: bitvec.NewVec(l), Mask: bitvec.PrefixMask(l, sip, 4),
		Action: flowtable.Drop}
	if matchesTSEPattern(l, rule, other) {
		t.Error("entry without the rule's field matched")
	}
	// Non-prefix (gappy) masks are not the TSE signature.
	gappy := bitvec.NewVec(l)
	gappy.SetFieldBit(l, dp, 0)
	gappy.SetFieldBit(l, dp, 5)
	g := &tss.Entry{Key: bitvec.NewVec(l), Mask: gappy, Action: flowtable.Drop}
	if matchesTSEPattern(l, rule, g) {
		t.Error("gappy mask matched the prefix pattern")
	}
}

func TestSlowPathCPUPct(t *testing.T) {
	// Fig. 9c anchors: ~15 % at 1 kpps, ~80 % at 10 kpps, capped at 250 %.
	if got := SlowPathCPUPct(1000); got < 10 || got > 20 {
		t.Errorf("CPU @1kpps = %.1f%%, want ≈15", got)
	}
	if got := SlowPathCPUPct(10000); got < 70 || got > 90 {
		t.Errorf("CPU @10kpps = %.1f%%, want ≈80", got)
	}
	if got := SlowPathCPUPct(50000); got != MaxCPUPct {
		t.Errorf("CPU @50kpps = %.1f%%, want capped at %d", got, MaxCPUPct)
	}
	// Monotone.
	prev := -1.0
	for _, pps := range []float64{10, 100, 1000, 5000, 10000, 20000, 50000} {
		if got := SlowPathCPUPct(pps); got < prev {
			t.Fatal("CPU model not monotone")
		} else {
			prev = got
		}
	}
}
