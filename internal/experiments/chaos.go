package experiments

import (
	"fmt"
	"io"

	"tse/internal/dataplane"
	"tse/internal/telemetry"
)

func init() {
	register(Experiment{
		ID:    "chaos",
		Title: "Chaos — slow-path fault injection: unsupervised wedge vs supervised self-healing under attack",
		Run:   RunChaos,
	})
}

// chaosSummary condenses one chaos run into the table row the experiment
// prints (and tsebench -json exports).
type chaosSummary struct {
	Mode dataplane.ChaosMode
	// LateUnderGbps is the mid-attack victim's throughput averaged over
	// [20, 35) — the fault schedule lands at t=23..33, squarely on this
	// window. UnderGbps and PostGbps mirror the fairness experiment.
	LateUnderGbps, UnderGbps, PostGbps float64
	// PeakBacklog is the worst end-of-second queue depth; PendingLeaked is
	// the pending-table size at the end of the run — nonzero means upcalls
	// whose waiters never got a verdict (the leak the supervisor and the
	// reaper exist to prevent).
	PeakBacklog, PendingLeaked int
	// Supervisor ledger: injected panics observed, stalls detected,
	// respawns, orphaned in-flight upcalls requeued, aged pending entries
	// reaped.
	Panics, Stalls, Restarts, Requeued, Reaped int
	// Breaker ledger: trips open and submissions shed while non-closed.
	BreakerTrips, BreakerShed int
	// Fault-plan side effects observed: failed megaflow installs and
	// revalidator sweeps suppressed.
	InstallErrors, SweepStalls int
	// FaultSec is the second the first fault landed (-1 if none did);
	// RecoverySec is how many seconds after FaultSec the victims were back
	// inside 1.5x their pre-fault flow-setup p99 envelope (-1 = never).
	FaultSec, RecoverySec int
	// WorstVictimP99 is the worst per-second victim flow-setup p99 during
	// the attack window, the damage the fault schedule adds on top of the
	// flood (-1 when no victim upcall was handled under attack).
	WorstVictimP99 int
}

// victimP99 is the worst victim-port flow-setup p99 of one sample (-1 when
// neither victim port handled an upcall that second).
func victimP99(u *dataplane.UpcallSample) int {
	p99 := -1
	for _, port := range []int{1, 2} {
		if port < len(u.PortFlowSetupP99) && u.PortFlowSetupP99[port] > p99 {
			p99 = u.PortFlowSetupP99[port]
		}
	}
	return p99
}

// foldChaos summarises one run. Recovery is measured against the victims'
// own flow-setup latency: preP99 is the worst victim p99 in the 5 seconds
// before the first fault, and the run has recovered at the first second >=
// FaultSec where the victims are healthy again — either their setup p99 is
// back inside max(1, 1.5*preP99), or no victim upcall was needed at all
// *and* both victims are moving traffic (their megaflows are installed and
// serving, the steady state the slow path exists to reach).
func foldChaos(mode dataplane.ChaosMode, samples []dataplane.Sample) chaosSummary {
	s := chaosSummary{Mode: mode, FaultSec: -1, RecoverySec: -1, WorstVictimP99: -1}
	lateSum, lateN := 0.0, 0
	for _, smp := range samples {
		u := smp.Upcall
		if u == nil {
			continue
		}
		if u.Backlog > s.PeakBacklog {
			s.PeakBacklog = u.Backlog
		}
		s.PendingLeaked = u.PendingFlows // last sample wins
		s.Panics += u.HandlerPanics
		s.Stalls += u.StallsDetected
		s.Restarts += u.HandlerRestarts
		s.Requeued += u.Requeued
		s.Reaped += u.PendingReaped
		s.BreakerTrips += u.BreakerTrips
		s.BreakerShed += u.BreakerShed
		s.InstallErrors += u.InstallErrors
		s.SweepStalls += u.SweepStalls
		if s.FaultSec < 0 && (u.HandlerPanics > 0 || u.StallsDetected > 0 ||
			u.InstallErrors > 0 || u.SweepStalls > 0) {
			s.FaultSec = smp.Sec
		}
		if smp.Sec >= 20 && smp.Sec < 35 && len(smp.VictimGbps) > 1 {
			lateSum += smp.VictimGbps[1]
			lateN++
		}
		if smp.Sec >= 5 && smp.Sec < 35 {
			if p := victimP99(u); p > s.WorstVictimP99 {
				s.WorstVictimP99 = p
			}
		}
	}
	if lateN > 0 {
		s.LateUnderGbps = lateSum / float64(lateN)
	}
	s.UnderGbps = avgVictimGbps(samples, 20, 35)
	s.PostGbps = avgVictimGbps(samples, 40, 45)
	if s.FaultSec >= 0 {
		s.RecoverySec = chaosRecovery(samples, s.FaultSec)
	}
	return s
}

// chaosRecovery finds the first healthy second at or after faultSec and
// returns its distance from faultSec, or -1 if the run never recovers.
func chaosRecovery(samples []dataplane.Sample, faultSec int) int {
	pre := -1
	for _, smp := range samples {
		if smp.Sec < faultSec-5 || smp.Sec >= faultSec || smp.Upcall == nil {
			continue
		}
		if p := victimP99(smp.Upcall); p > pre {
			pre = p
		}
	}
	thresh := 1
	if t := pre + pre/2; t > thresh { // 1.5x pre-fault, integer seconds
		thresh = t
	}
	for _, smp := range samples {
		if smp.Sec < faultSec || smp.Upcall == nil {
			continue
		}
		p := victimP99(smp.Upcall)
		healthy := p >= 0 && p <= thresh
		if p < 0 && len(smp.VictimGbps) > 1 {
			healthy = smp.VictimGbps[0] > 0 && smp.VictimGbps[1] > 0
		}
		if healthy {
			return smp.Sec - faultSec
		}
	}
	return -1
}

// runChaos builds and runs one chaos mode, returning the run's slice of
// the control-plane event journal alongside the summary.
func runChaos(mode dataplane.ChaosMode) (chaosSummary, []dataplane.Sample, []telemetry.Event, error) {
	sc, err := dataplane.ChaosScenario(mode)
	if err != nil {
		return chaosSummary{}, nil, nil, err
	}
	hub := runHub()
	sc.Telemetry = hub
	mark := hub.Journal.Seq()
	samples, err := sc.Run()
	if err != nil {
		return chaosSummary{}, nil, nil, err
	}
	return foldChaos(mode, samples), samples, hub.Journal.EventsSince(mark), nil
}

// RunChaos replays the port-fairness attack under the deterministic fault
// schedule (handler panic at flood peak, wedged revalidator, failing
// installs, delivery faults, a stalled handler) in three configurations:
// fault-free baseline, unsupervised (the ablation that wedges), and
// supervised self-healing with the SLO breaker.
func RunChaos(w io.Writer) error {
	fmt.Fprintf(w, "%-12s %11s %8s %7s %7s %7s %7s %7s %7s %6s %6s %8s %8s\n",
		"chaos mode", "late victim", "backlog", "pending",
		"panics", "stalls", "respawn", "requeue", "reaped",
		"trips", "shed", "recovery", "vfct-p99")
	var supSamples []dataplane.Sample
	var supEvents []telemetry.Event
	for _, mode := range []dataplane.ChaosMode{
		dataplane.ChaosFaultFree,
		dataplane.ChaosUnsupervised,
		dataplane.ChaosSupervised,
	} {
		s, samples, events, err := runChaos(mode)
		if err != nil {
			return err
		}
		if mode == dataplane.ChaosSupervised {
			supSamples, supEvents = samples, events
		}
		rec := "-"
		if s.RecoverySec >= 0 {
			rec = fmt.Sprintf("%ds", s.RecoverySec)
		}
		fmt.Fprintf(w, "%-12s %10.2fG %8d %7d %7d %7d %7d %7d %7d %6d %6d %8s %7ds\n",
			s.Mode, s.LateUnderGbps, s.PeakBacklog, s.PendingLeaked,
			s.Panics, s.Stalls, s.Restarts, s.Requeued, s.Reaped,
			s.BreakerTrips, s.BreakerShed, rec, s.WorstVictimP99)
	}
	fmt.Fprintln(w, "\nThe fault schedule lands at attack peak: a handler panics at t=23")
	fmt.Fprintln(w, "(one tick after a policy-churn event, so its in-flight burst holds the")
	fmt.Fprintln(w, "victims' re-establishment upcalls), the revalidator wedges for 3 s,")
	fmt.Fprintln(w, "megaflow installs fail for 1 s, the flooding port's deliveries are")
	fmt.Fprintln(w, "delayed then duplicated, and a second handler stalls for 4 s at t=30.")
	fmt.Fprintln(w, "Unsupervised, the dead handlers never come back: service halves, the")
	fmt.Fprintln(w, "orphaned upcalls leak in the pending table (the pending column), and")
	fmt.Fprintln(w, "the backlog outlives the attack. Supervised, the panic respawns the")
	fmt.Fprintln(w, "handler on the next drain, the stall is detected within the 1 s")
	fmt.Fprintln(w, "timeout, orphans are requeued and served, the revalidator's reaper")
	fmt.Fprintln(w, "fails any pending entry that still slipped through, and the per-port")
	fmt.Fprintln(w, "SLO breaker sheds the flooding port's submissions while its backlog")
	fmt.Fprintln(w, "residence violates the 2 s SLO — so victim flow setup returns to its")
	fmt.Fprintln(w, "pre-fault envelope within the recovery column's bound while the flood")
	fmt.Fprintln(w, "still rages.")

	// The causal timeline: the supervised run's control-plane journal,
	// filtered to injections and the self-healing reactions, so cause
	// (fault fires) reads strictly above effect (respawn, trip, close).
	fmt.Fprintln(w, "\ncausal timeline — supervised run (control-plane event journal):")
	telemetry.RenderTimeline(w, telemetry.FilterEvents(supEvents,
		telemetry.EvFaultInjected, telemetry.EvDeliveryFault,
		telemetry.EvHandlerPanic, telemetry.EvOrphanRequeue,
		telemetry.EvHandlerStall, telemetry.EvHandlerRestart,
		telemetry.EvBreakerTrip, telemetry.EvBreakerHalfOpen,
		telemetry.EvBreakerClose, telemetry.EvInstallError,
		telemetry.EvSweepStall, telemetry.EvPendingReaped))
	return renderFCTPanel(w, "chaos supervised", supSamples)
}
