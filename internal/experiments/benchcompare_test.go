package experiments

import (
	"bytes"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func rep(results ...BenchResult) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Results: results}
}

func TestCompareBenchReports(t *testing.T) {
	oldRep := rep(
		BenchResult{Name: "tss_lookup_miss_masks_4096", NsPerOp: 20000},
		BenchResult{Name: "victim_lookup_SipDp", NsPerOp: 2000},
		BenchResult{Name: "tss_install_batched_masks_4096", NsPerOp: 150000},
		BenchResult{Name: "datapath_attack_workers_4", NsPerOp: 500000},
	)

	t.Run("improvement passes", func(t *testing.T) {
		newRep := rep(
			BenchResult{Name: "tss_lookup_miss_masks_4096", NsPerOp: 12000},
			BenchResult{Name: "victim_lookup_SipDp", NsPerOp: 1500},
		)
		var buf bytes.Buffer
		if err := CompareBenchReports(&buf, oldRep, newRep, 2.0); err != nil {
			t.Fatalf("improvement flagged as regression: %v", err)
		}
		if !strings.Contains(buf.String(), "0.60x") {
			t.Errorf("table missing ratio:\n%s", buf.String())
		}
	})

	t.Run("mild noise passes", func(t *testing.T) {
		newRep := rep(BenchResult{Name: "tss_lookup_miss_masks_4096", NsPerOp: 30000})
		if err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0); err != nil {
			t.Fatalf("1.5x noise tripped the 2x gate: %v", err)
		}
	})

	t.Run("gated slowdown fails", func(t *testing.T) {
		newRep := rep(BenchResult{Name: "victim_lookup_SipDp", NsPerOp: 4100})
		err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0)
		if err == nil || !strings.Contains(err.Error(), "victim_lookup_SipDp") {
			t.Fatalf("2.05x gated slowdown not flagged: %v", err)
		}
	})

	t.Run("ungated slowdown passes", func(t *testing.T) {
		newRep := rep(BenchResult{Name: "datapath_attack_workers_4", NsPerOp: 5000000})
		if err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0); err != nil {
			t.Fatalf("ungated bench tripped the gate: %v", err)
		}
	})

	t.Run("batched-install slowdown fails", func(t *testing.T) {
		// The publish-amortisation win is gated: losing it (a >2x slowdown
		// of the InsertBatch transaction) must fail the diff.
		newRep := rep(BenchResult{Name: "tss_install_batched_masks_4096", NsPerOp: 400000})
		err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0)
		if err == nil || !strings.Contains(err.Error(), "tss_install_batched_masks_4096") {
			t.Fatalf("gated batched-install slowdown not flagged: %v", err)
		}
	})

	t.Run("new allocation on hot path fails", func(t *testing.T) {
		newRep := rep(BenchResult{Name: "tss_lookup_miss_masks_4096", NsPerOp: 10000, AllocsPerOp: 1})
		err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0)
		if err == nil || !strings.Contains(err.Error(), "allocates") {
			t.Fatalf("hot-path allocation not flagged: %v", err)
		}
	})

	t.Run("names only in one file are ignored", func(t *testing.T) {
		newRep := rep(BenchResult{Name: "tss_lookup_miss_masks_99999", NsPerOp: 1e9})
		if err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0); err != nil {
			t.Fatalf("unmatched name tripped the gate: %v", err)
		}
	})
}

// TestCompareCommittedBenchFiles runs the actual CI gate over the newest
// two committed trajectory files (discovered by glob, so committing
// BENCH_prN.json automatically gates it against its predecessor without
// anyone remembering to bump this test), so a PR cannot commit a BENCH
// file that fails its own gate.
func TestCompareCommittedBenchFiles(t *testing.T) {
	files, err := filepath.Glob("../../BENCH_pr*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("found %d committed BENCH files, need at least 2 to diff", len(files))
	}
	// PR numbers sort numerically; pad so pr10 follows pr9.
	sort.Slice(files, func(i, j int) bool { return benchPR(files[i]) < benchPR(files[j]) })
	oldPath, newPath := files[len(files)-2], files[len(files)-1]
	var buf bytes.Buffer
	if err := CompareBenchFiles(&buf, oldPath, newPath); err != nil {
		t.Fatalf("committed trajectory %s -> %s fails the gate: %v\n%s",
			oldPath, newPath, err, buf.String())
	}
}

// benchPR extracts the PR number from a BENCH_pr<N>.json path (-1 if
// unparseable, sorting malformed names first so they are never "newest").
func benchPR(path string) int {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	n, err := strconv.Atoi(strings.TrimPrefix(base, "BENCH_pr"))
	if err != nil {
		return -1
	}
	return n
}
