package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func rep(results ...BenchResult) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Results: results}
}

func TestCompareBenchReports(t *testing.T) {
	oldRep := rep(
		BenchResult{Name: "tss_lookup_miss_masks_4096", NsPerOp: 20000},
		BenchResult{Name: "victim_lookup_SipDp", NsPerOp: 2000},
		BenchResult{Name: "upcall_roundtrip_suppressed", NsPerOp: 800},
	)

	t.Run("improvement passes", func(t *testing.T) {
		newRep := rep(
			BenchResult{Name: "tss_lookup_miss_masks_4096", NsPerOp: 12000},
			BenchResult{Name: "victim_lookup_SipDp", NsPerOp: 1500},
		)
		var buf bytes.Buffer
		if err := CompareBenchReports(&buf, oldRep, newRep, 2.0); err != nil {
			t.Fatalf("improvement flagged as regression: %v", err)
		}
		if !strings.Contains(buf.String(), "0.60x") {
			t.Errorf("table missing ratio:\n%s", buf.String())
		}
	})

	t.Run("mild noise passes", func(t *testing.T) {
		newRep := rep(BenchResult{Name: "tss_lookup_miss_masks_4096", NsPerOp: 30000})
		if err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0); err != nil {
			t.Fatalf("1.5x noise tripped the 2x gate: %v", err)
		}
	})

	t.Run("gated slowdown fails", func(t *testing.T) {
		newRep := rep(BenchResult{Name: "victim_lookup_SipDp", NsPerOp: 4100})
		err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0)
		if err == nil || !strings.Contains(err.Error(), "victim_lookup_SipDp") {
			t.Fatalf("2.05x gated slowdown not flagged: %v", err)
		}
	})

	t.Run("ungated slowdown passes", func(t *testing.T) {
		newRep := rep(BenchResult{Name: "upcall_roundtrip_suppressed", NsPerOp: 8000})
		if err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0); err != nil {
			t.Fatalf("ungated bench tripped the gate: %v", err)
		}
	})

	t.Run("new allocation on hot path fails", func(t *testing.T) {
		newRep := rep(BenchResult{Name: "tss_lookup_miss_masks_4096", NsPerOp: 10000, AllocsPerOp: 1})
		err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0)
		if err == nil || !strings.Contains(err.Error(), "allocates") {
			t.Fatalf("hot-path allocation not flagged: %v", err)
		}
	})

	t.Run("names only in one file are ignored", func(t *testing.T) {
		newRep := rep(BenchResult{Name: "tss_lookup_miss_masks_99999", NsPerOp: 1e9})
		if err := CompareBenchReports(new(bytes.Buffer), oldRep, newRep, 2.0); err != nil {
			t.Fatalf("unmatched name tripped the gate: %v", err)
		}
	})
}

// TestCompareCommittedBenchFiles runs the actual CI gate over the
// committed trajectory files, so a PR cannot commit a BENCH file that
// fails its own gate.
func TestCompareCommittedBenchFiles(t *testing.T) {
	var buf bytes.Buffer
	if err := CompareBenchFiles(&buf, "../../BENCH_pr3.json", "../../BENCH_pr4.json"); err != nil {
		t.Fatalf("committed trajectory fails the gate: %v\n%s", err, buf.String())
	}
}
