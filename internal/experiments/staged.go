package experiments

import (
	"fmt"
	"io"
	"time"

	"tse/internal/bitvec"
	"tse/internal/dataplane"
	"tse/internal/tss"
)

func init() {
	register(Experiment{
		ID:    "stagedscan",
		Title: "Staged subtable lookup — Fig. 9a-style mask sweep, staging on vs off",
		Run:   runStagedScan,
	})
}

// stagedScanMaskPoints are the measured x-axis points. They include the
// §5.2 use-case maxima (516 ≈ SipDp) and the 4096/8200 flood regime where
// Observation 1's linear term dominates.
var stagedScanMaskPoints = []int{16, 256, 516, 1024, 4096}

// measureMissNs times the full-scan miss lookup (the attack-regime cost)
// on a classifier, returning ns/op. Manual timing rather than
// testing.Benchmark keeps the experiment a sub-second affair even when
// every registered experiment runs back to back.
func measureMissNs(c *tss.Classifier, h bitvec.Vec) float64 {
	// Warm the scan once, then time batches until ~25 ms have elapsed.
	c.Lookup(h, 0)
	const batch = 512
	var (
		iters int
		total time.Duration
	)
	for total < 25*time.Millisecond {
		start := time.Now()
		for i := 0; i < batch; i++ {
			c.Lookup(h, 0)
		}
		total += time.Since(start)
		iters += batch
	}
	return float64(total.Nanoseconds()) / float64(iters)
}

// runStagedScan regenerates the Fig. 9a mask-vs-throughput curve with the
// staged subtable lookup on and off. The left half of the table is
// measured on the real classifier (full-miss scan, the TSE flood shape of
// one megaflow per mask); the right half prices the victim flow with the
// dataplane cost model, its SkippedProbeCost fitted from the measured
// staged-vs-unstaged per-probe ratio at the largest mask count.
func runStagedScan(w io.Writer) error {
	l := bitvec.IPv4Tuple
	miss := bitvec.NewVec(l)
	sip, _ := l.FieldIndex("ip_src")
	miss.SetField(l, sip, 0xffffffff)

	type point struct {
		masks                int
		unstagedNs, stagedNs float64
		skipFrac             float64
	}
	points := make([]point, 0, len(stagedScanMaskPoints))
	for _, masks := range stagedScanMaskPoints {
		staged := tss.New(l, tss.Options{DisableOverlapCheck: true})
		unstaged := tss.New(l, tss.Options{DisableOverlapCheck: true, DisableStagedLookup: true})
		if err := populateMasks(staged, l, masks); err != nil {
			return err
		}
		if err := populateMasks(unstaged, l, masks); err != nil {
			return err
		}
		p := point{
			masks:      masks,
			unstagedNs: measureMissNs(unstaged, miss),
			stagedNs:   measureMissNs(staged, miss),
		}
		if s := staged.Stats(); s.Probes > 0 {
			p.skipFrac = float64(s.StageSkips) / float64(s.Probes)
		}
		points = append(points, p)
	}

	// Fit the model's skipped-probe cost from the largest measured point,
	// where the per-probe linear term dominates the fixed lookup overhead.
	last := points[len(points)-1]
	ratio := last.stagedNs / last.unstagedNs
	prof := dataplane.TCPGroOff
	prof.SkippedProbeCost = prof.ProbeCost * ratio
	m := dataplane.NewModel(prof)

	fmt.Fprintf(w, "staged subtable lookup, TSE flood shape (one megaflow per mask), %s\n", l)
	fmt.Fprintf(w, "measured full-miss scan (real classifier)        modelled victim flow (%s)\n", prof.Name)
	fmt.Fprintf(w, "%-7s %12s %12s %8s %9s   %12s %12s %8s\n",
		"masks", "off[ns]", "on[ns]", "speedup", "skip%", "off[Gbps]", "on[Gbps]", "gain")
	for _, p := range points {
		offG := m.ThroughputForMasks(p.masks)
		onG := m.ThroughputForMasksStaged(p.masks)
		gain := 1.0
		if offG > 0 {
			gain = onG / offG
		}
		fmt.Fprintf(w, "%-7d %12.1f %12.1f %7.2fx %8.1f%%   %12.3f %12.3f %7.2fx\n",
			p.masks, p.unstagedNs, p.stagedNs, p.unstagedNs/p.stagedNs, 100*p.skipFrac,
			offG, onG, gain)
	}
	fmt.Fprintf(w, "fitted skipped-probe cost: %.2f of a full probe (from the %d-mask point)\n",
		ratio, last.masks)
	fmt.Fprintf(w, "staging does not change Observation 1 — the scan stays O(|M|) — it divides\n")
	fmt.Fprintf(w, "the constant: most probes reject on first-stage words without the full\n")
	fmt.Fprintf(w, "masked hash+compare (OVS lib/classifier.c \"staged lookup\").\n")
	return nil
}
