package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table/figure of the evaluation must be registered.
	want := []string{
		"constructions", "masks", "ipv6", "cms", "alt", "guard", "theorems",
		"fig9a", "fig8a", "fig8b", "fig8c", "fig9b", "fig9c", "general",
		"remedies", "bandwidth", "multicore", "saturation", "stagedscan",
		"portfairness", "chaos", "fleetchaos", "replay",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a ghost")
	}
	if len(IDs()) != len(want) {
		t.Error("IDs() length mismatch")
	}
}

// TestLightExperimentsProduceOutput runs the fast experiments end to end
// and sanity-checks their output.
func TestLightExperimentsProduceOutput(t *testing.T) {
	cases := map[string][]string{
		"constructions": {"masks=3 entries=4", "masks=13", "masks=1 entries=8"},
		"cms":           {"OpenStack", "8192", "262144"},
		"fig9a":         {"masks", "8200", "FCT"},
		"fig9c":         {"CPU", "250.0"},
		"theorems":      {"Theorem 4.1", "8192"},
		"guard":         {"victim lookup probes", "->"},
		"ipv6":          {"entries", "handful"},
		"bandwidth":     {"SipSpDp", "kbps"},
		"remedies":      {"MFC off", "GRO ON"},
		"stagedscan":    {"speedup", "4096", "skipped-probe cost"},
	}
	for id, needles := range cases {
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q missing", id)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, needle := range needles {
				if !strings.Contains(out, needle) {
					t.Errorf("output missing %q:\n%s", needle, out)
				}
			}
		})
	}
}

func TestHeavyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiments skipped with -short")
	}
	for _, id := range []string{"masks", "fig8a", "fig8b", "fig9b", "general", "alt"} {
		t.Run(id, func(t *testing.T) {
			e, _ := ByID(id)
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Error("no output")
			}
		})
	}
}
