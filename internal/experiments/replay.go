package experiments

import (
	"fmt"
	"io"
	"reflect"

	"tse/internal/bitvec"
	"tse/internal/dataplane"
	"tse/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "replay",
		Title: "Wire-rate trace replay — achieved Mpps, victim mix vs TSE attack",
		Run:   runReplay,
	})
}

// RunTraceReplay backs tsebench -replay: open the trace file (mmap'd),
// drive it through a freshly built pipeline, print the achieved rate.
// workers <= 0 means one worker; prefetch is the per-burst prefetch
// depth in cache lines.
func RunTraceReplay(w io.Writer, path string, workers, prefetch int) error {
	rd, err := trace.Open(path)
	if err != nil {
		return err
	}
	defer rd.Close()
	fmt.Fprintf(w, "replaying %s: %d records, layout %s\n", path, rd.Count(), rd.LayoutString())
	rep, err := dataplane.RunReplay(dataplane.ReplayConfig{
		Workers: workers, PrefetchDepth: prefetch, TickSwitch: true}, rd)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "achieved %.2f Mpps (%d packets in %.2f ms; %d masks, %d emc hits, %d slow path)\n",
		rep.Mpps, rep.Packets, rep.WallMs, rep.Masks, rep.Totals.EMC.Hits, rep.Totals.SlowPath)
	return nil
}

// runReplay measures what the real pipeline ingests per wall second: the
// victim-mix trace (EMC-hit steady state, the wire-rate ceiling) and the
// TSE-attack trace (the same mix with the co-located SipSpDp flood),
// each with the prefetch pass off and on. Where the virtual-time
// scenarios model the paper's testbed, this experiment replays encoded
// traces through mmap-style zero-copy decode and 32-packet bursts and
// reports the achieved rate directly. A final check replays the same
// flow sequence from memory (never encoded) and asserts the verdict
// counters are bit-identical to the trace-driven run.
func runReplay(w io.Writer) error {
	fmt.Fprintf(w, "%-12s %-10s %10s %12s %10s %8s %12s %12s\n",
		"trace", "prefetch", "packets", "wall_ms", "mpps", "masks", "emc_hits", "slow_path")
	for _, preset := range []dataplane.ReplayPreset{dataplane.ReplayVictimMix, dataplane.ReplayTSE} {
		for _, depth := range []int{0, 8} {
			rd, _, err := dataplane.ReplayScenario(preset, 2)
			if err != nil {
				return err
			}
			rep, err := dataplane.RunReplay(dataplane.ReplayConfig{
				PrefetchDepth: depth, TickSwitch: true}, rd)
			if err != nil {
				return err
			}
			label := "off"
			if depth > 0 {
				label = fmt.Sprintf("depth=%d", depth)
			}
			fmt.Fprintf(w, "%-12s %-10s %10d %12.2f %10.2f %8d %12d %12d\n",
				preset, label, rep.Packets, rep.WallMs, rep.Mpps, rep.Masks,
				rep.Totals.EMC.Hits, rep.Totals.SlowPath)
		}
	}

	// Replay-vs-synthetic identity: trace-driven counters must equal the
	// never-encoded in-memory run of the same flow sequence.
	opts := trace.SynthOptions{Seconds: 1, Victims: 16, VictimPps: 500, Ports: 4}
	var buf trace.Buffer
	tw, err := trace.NewWriter(&buf, bitvec.IPv4Tuple)
	if err != nil {
		return err
	}
	if err := trace.Synthesize(tw, opts); err != nil {
		return err
	}
	rd, err := trace.NewReader(buf.Bytes())
	if err != nil {
		return err
	}
	traceRep, err := dataplane.RunReplay(dataplane.ReplayConfig{TickSwitch: true}, rd)
	if err != nil {
		return err
	}
	var ticks []int64
	var ports []int
	var keys []bitvec.Vec
	err = trace.SynthRecords(opts, func(tick int64, port int, key bitvec.Vec) error {
		ticks = append(ticks, tick)
		ports = append(ports, port)
		keys = append(keys, key.Clone())
		return nil
	})
	if err != nil {
		return err
	}
	synthRep, err := dataplane.RunReplayRecords(dataplane.ReplayConfig{TickSwitch: true},
		ticks, ports, keys)
	if err != nil {
		return err
	}
	identical := reflect.DeepEqual(traceRep.Totals, synthRep.Totals)
	fmt.Fprintf(w, "\nreplay-vs-synthetic verdict counters identical: %v "+
		"(replayed %d, synthetic %d, allowed %d/%d, dropped %d/%d)\n",
		identical, traceRep.Packets, synthRep.Packets,
		traceRep.Totals.Allowed, synthRep.Totals.Allowed,
		traceRep.Totals.Dropped, synthRep.Totals.Dropped)
	if !identical {
		return fmt.Errorf("replay: trace-driven and synthetic counters diverge")
	}
	return nil
}
