package experiments

import "tse/internal/telemetry"

// liveHub, when set via SetTelemetry, is the process-wide hub the -serve
// flag installs: experiment runs thread it through their scenarios so the
// live /metrics, /journal and pprof endpoints observe the runs as they
// happen. Runs mark the journal sequence before starting and slice with
// EventsSince after, so several runs can share one live journal without
// seeing each other's events.
var liveHub *telemetry.Hub

// SetTelemetry installs the live hub (nil restores private per-run hubs).
func SetTelemetry(h *telemetry.Hub) { liveHub = h }

// runHub returns the hub an experiment run should thread through its
// scenario: the live hub when one is serving, otherwise a private hub
// with just a journal — enough for the causal timelines the experiments
// print, without the registry registration churn.
func runHub() *telemetry.Hub {
	if liveHub != nil {
		return liveHub
	}
	return &telemetry.Hub{Journal: telemetry.NewJournal(0)}
}
