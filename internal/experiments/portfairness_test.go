package experiments

import (
	"testing"

	"tse/internal/dataplane"
)

// TestPortFairnessOrdering is the acceptance criterion: under the SipSpDp
// flood (with mid-attack policy churn), victim throughput is strictly
// better with port-keyed adaptive quotas than with the legacy worker-keyed
// quotas — and each fairness layer buys a strict improvement.
func TestPortFairnessOrdering(t *testing.T) {
	run := func(mode dataplane.PortFairnessMode) fairnessSummary {
		t.Helper()
		s, err := runPortFairness(mode)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	wk := run(dataplane.FairnessWorkerKeyed)
	pk := run(dataplane.FairnessPortKeyed)
	ad := run(dataplane.FairnessAdaptive)

	// The headline inequality: adaptive port-keyed beats worker-keyed on
	// victim throughput under attack, for the mid-attack joiner and in
	// aggregate.
	if !(ad.UnderGbps > wk.UnderGbps) {
		t.Errorf("adaptive under-attack %.3fG not strictly better than worker-keyed %.3fG",
			ad.UnderGbps, wk.UnderGbps)
	}
	if !(ad.LateUnderGbps > wk.LateUnderGbps) {
		t.Errorf("adaptive late-victim %.3fG not strictly better than worker-keyed %.3fG",
			ad.LateUnderGbps, wk.LateUnderGbps)
	}
	// Static port-keying already fixes the admission share: victims'
	// re-establishment after policy churn is admitted instead of starved.
	if !(pk.LateUnderGbps > wk.LateUnderGbps) {
		t.Errorf("port-keyed late-victim %.3fG not strictly better than worker-keyed %.3fG",
			pk.LateUnderGbps, wk.LateUnderGbps)
	}
	// The adaptive loop's own channel: the flooding port's quota is
	// throttled below base, capping mask growth below the static runs.
	if ad.FloodQuotaEnd >= 64 {
		t.Errorf("adaptive flood-port quota %d did not shrink below base 64", ad.FloodQuotaEnd)
	}
	if !(ad.PeakMasks < pk.PeakMasks/2) {
		t.Errorf("adaptive peak masks %d not well below port-keyed %d", ad.PeakMasks, pk.PeakMasks)
	}
	// Worker-keyed starves victims at admission; port-keyed must not.
	if wk.QuotaDrops == 0 || pk.QuotaDrops == 0 {
		t.Error("flood was never quota-limited")
	}
}
