package experiments

import (
	"testing"

	"tse/internal/dataplane"
)

// TestPortFairnessOrdering is the acceptance criterion: under the SipSpDp
// flood (with mid-attack policy churn), victim throughput is strictly
// better with port-keyed adaptive quotas than with the legacy worker-keyed
// quotas — and each fairness layer buys a strict improvement.
func TestPortFairnessOrdering(t *testing.T) {
	run := func(mode dataplane.PortFairnessMode) fairnessSummary {
		t.Helper()
		s, _, _, err := runPortFairness(mode)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	wk := run(dataplane.FairnessWorkerKeyed)
	pk := run(dataplane.FairnessPortKeyed)
	ad := run(dataplane.FairnessAdaptive)

	// The headline inequality: adaptive port-keyed beats worker-keyed on
	// victim throughput under attack, for the mid-attack joiner and in
	// aggregate.
	if !(ad.UnderGbps > wk.UnderGbps) {
		t.Errorf("adaptive under-attack %.3fG not strictly better than worker-keyed %.3fG",
			ad.UnderGbps, wk.UnderGbps)
	}
	if !(ad.LateUnderGbps > wk.LateUnderGbps) {
		t.Errorf("adaptive late-victim %.3fG not strictly better than worker-keyed %.3fG",
			ad.LateUnderGbps, wk.LateUnderGbps)
	}
	// Static port-keying already fixes the admission share: victims'
	// re-establishment after policy churn is admitted instead of starved.
	if !(pk.LateUnderGbps > wk.LateUnderGbps) {
		t.Errorf("port-keyed late-victim %.3fG not strictly better than worker-keyed %.3fG",
			pk.LateUnderGbps, wk.LateUnderGbps)
	}
	// The adaptive loop's own channel: the flooding port's quota is
	// throttled below base, capping mask growth below the static runs.
	if ad.FloodQuotaEnd >= 64 {
		t.Errorf("adaptive flood-port quota %d did not shrink below base 64", ad.FloodQuotaEnd)
	}
	if !(ad.PeakMasks < pk.PeakMasks/2) {
		t.Errorf("adaptive peak masks %d not well below port-keyed %d", ad.PeakMasks, pk.PeakMasks)
	}
	// Worker-keyed starves victims at admission; port-keyed must not.
	if wk.QuotaDrops == 0 || pk.QuotaDrops == 0 {
		t.Error("flood was never quota-limited")
	}
}

// TestPortFairnessQuotaStability is the de-flap acceptance criterion: over
// the sustained mid-attack window [15, 35) the flood's pressure regime does
// not shift, so the smoothed controller must hold the flooding port's quota
// still — no ±1 oscillation, no churn-induced bounce back toward base. The
// raw single-input ablation run under the identical flood demonstrates the
// flap being fixed: its quota chases every sweep's footprint sample.
func TestPortFairnessQuotaStability(t *testing.T) {
	quotaSeries := func(mode dataplane.PortFairnessMode) []int {
		t.Helper()
		_, samples, _, err := runPortFairness(mode)
		if err != nil {
			t.Fatal(err)
		}
		var q []int
		for _, smp := range samples {
			if smp.Sec < 15 || smp.Sec >= 35 {
				continue
			}
			if u := smp.Upcall; u != nil && len(u.PortQuota) > 0 {
				q = append(q, u.PortQuota[0])
			}
		}
		return q
	}
	changes := func(q []int) (n, reversals int) {
		lastDir := 0
		for i := 1; i < len(q); i++ {
			d := q[i] - q[i-1]
			if d == 0 {
				continue
			}
			n++
			dir := 1
			if d < 0 {
				dir = -1
			}
			if lastDir != 0 && dir != lastDir {
				reversals++
			}
			lastDir = dir
		}
		return n, reversals
	}

	smooth := quotaSeries(dataplane.FairnessAdaptive)
	raw := quotaSeries(dataplane.FairnessAdaptiveRaw)
	if len(smooth) == 0 || len(raw) == 0 {
		t.Fatal("no quota samples in the steady window")
	}

	sn, sr := changes(smooth)
	rn, rr := changes(raw)
	// One sustained regime (the flood neither starts nor stops inside the
	// window) allows at most one quota move — the controller finishing its
	// descent — and no direction reversals at all.
	if sn > 1 {
		t.Errorf("smoothed controller changed quota %d times in steady window %v (want <= 1)", sn, smooth)
	}
	if sr != 0 {
		t.Errorf("smoothed controller reversed direction %d times in steady window %v (want 0)", sr, smooth)
	}
	// The ablation must still exhibit the flap this PR fixes; if it stops
	// flapping, the comparison row (and this test) lost its baseline.
	if rn <= 1 || rr == 0 {
		t.Errorf("raw ablation no longer flaps (changes=%d reversals=%d, series %v); stability assertion is vacuous",
			rn, rr, raw)
	}
	// Recovery: after the flood stops the smoothed controller must walk the
	// quota back to base rather than latching low.
	_, samples, _, err := runPortFairness(dataplane.FairnessAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	last := samples[len(samples)-1]
	if u := last.Upcall; u == nil || len(u.PortQuota) == 0 || u.PortQuota[0] != 64 {
		t.Errorf("flood-port quota did not recover to base after attack: %+v", last.Upcall)
	}
}
