package experiments

import (
	"fmt"
	"io"

	"tse/internal/ascii"
	"tse/internal/dataplane"
)

func init() {
	register(Experiment{
		ID:    "saturation",
		Title: "Slow-path saturation — SipSpDp upcall flood vs bounded queues/quotas",
		Run:   func(w io.Writer) error { return RunSaturation(w, 2) },
	})
}

// satSummary condenses one saturation run into the table row the
// experiment prints (and tsebench -json exports).
type satSummary struct {
	PeakMasks, PeakBacklog                             int
	Enqueued, Deduped, QueueDrops, QuotaDrops, Handled int
	PreGbps, UnderGbps, PostGbps                       float64
	// FctP50Under/FctP99Under are the worst per-second flow-setup latency
	// percentiles during the attack window, in virtual seconds of upcall
	// residence — the queueing delay a new flow's first packet pays behind
	// the backlog before its megaflow installs. -1 when the configuration
	// handled no upcalls that window (the inline slow path has no queue).
	FctP50Under, FctP99Under int
}

// summarise folds a sample series into a satSummary. The attack window of
// SaturationScenario is [5, 35) over 45 seconds.
func summarise(samples []dataplane.Sample) satSummary {
	s := satSummary{FctP50Under: -1, FctP99Under: -1}
	for _, smp := range samples {
		if smp.Masks > s.PeakMasks {
			s.PeakMasks = smp.Masks
		}
		if u := smp.Upcall; u != nil {
			if u.Backlog > s.PeakBacklog {
				s.PeakBacklog = u.Backlog
			}
			s.Enqueued += u.Enqueued
			s.Deduped += u.Deduped
			s.QueueDrops += u.QueueDrops
			s.QuotaDrops += u.QuotaDrops
			s.Handled += u.Handled
			if smp.Sec >= 5 && smp.Sec < 35 {
				if u.FlowSetupP50 > s.FctP50Under {
					s.FctP50Under = u.FlowSetupP50
				}
				if u.FlowSetupP99 > s.FctP99Under {
					s.FctP99Under = u.FlowSetupP99
				}
			}
		}
	}
	s.PreGbps = avgVictimGbps(samples, 0, 5)
	s.UnderGbps = avgVictimGbps(samples, 15, 35)
	s.PostGbps = avgVictimGbps(samples, 40, 45)
	return s
}

// renderFCTPanel charts the per-second flow-setup latency series (p50 and
// p99 of upcall residence) for one scenario run — the FCT time series the
// paper's victim plots imply but never show. Seconds with no handled
// upcalls chart as zero. The panel is skipped when the run recorded no
// residence at all (inline mode).
func renderFCTPanel(w io.Writer, title string, samples []dataplane.Sample) error {
	p50 := make([]float64, len(samples))
	p99 := make([]float64, len(samples))
	any := false
	for i, smp := range samples {
		u := smp.Upcall
		if u == nil {
			continue
		}
		if u.FlowSetupP99 >= 0 {
			any = true
			p50[i] = float64(u.FlowSetupP50)
			p99[i] = float64(u.FlowSetupP99)
		}
	}
	if !any {
		return nil
	}
	chart := &ascii.Chart{
		Title: title + " — flow-setup latency", YLabel: "sec", XLabel: "t[s]",
		Series: []ascii.Series{
			{Name: "flow-setup p50", Values: p50, Marker: '5'},
			{Name: "flow-setup p99", Values: p99, Marker: '9'},
		},
	}
	fmt.Fprintln(w)
	return chart.Render(w)
}

// runSaturationConfig builds and runs one saturation configuration.
// mode "inline" strips the upcall dimension (the synchronous slow path on
// the PMD cores); "unbounded" and "bounded" run the async subsystem.
func runSaturationConfig(workers int, mode string) (satSummary, []dataplane.Sample, error) {
	sc, err := dataplane.SaturationScenario(workers, mode == "bounded")
	if err != nil {
		return satSummary{}, nil, err
	}
	if mode == "inline" {
		sc.Upcall = nil
	}
	sc.Telemetry = runHub()
	samples, err := sc.Run()
	if err != nil {
		return satSummary{}, nil, err
	}
	return summarise(samples), samples, nil
}

// RunSaturation tabulates the saturation scenario under three slow-path
// configurations: the synchronous inline pipeline, the asynchronous
// subsystem with no bounds (the paper's overload regime — handlers install
// every attack megaflow and the mask count runs to the SipSpDp maximum of
// ~8.2k), and the bounded configuration in which per-source quotas, queue
// caps and a finite handler service rate refuse most of the flood and cap
// MFC mask growth.
func RunSaturation(w io.Writer, workers int) error {
	fmt.Fprintf(w, "%-16s %10s %8s %9s %8s %8s %11s %8s %10s %10s %10s %8s %8s\n",
		"slow path", "peak masks", "backlog", "enqueued", "deduped",
		"q-drops", "quota-drops", "handled", "pre-attack", "under-atk", "post",
		"fct-p50", "fct-p99")
	var boundedSamples []dataplane.Sample
	for _, mode := range []string{"inline", "unbounded", "bounded"} {
		s, samples, err := runSaturationConfig(workers, mode)
		if err != nil {
			return err
		}
		if mode == "bounded" {
			boundedSamples = samples
		}
		fmt.Fprintf(w, "%-16s %10d %8d %9d %8d %8d %11d %8d %9.2fG %9.2fG %9.2fG %7ds %7ds\n",
			mode, s.PeakMasks, s.PeakBacklog, s.Enqueued, s.Deduped,
			s.QueueDrops, s.QuotaDrops, s.Handled,
			s.PreGbps, s.UnderGbps, s.PostGbps,
			s.FctP50Under, s.FctP99Under)
	}
	fmt.Fprintln(w, "\nEvery attack packet is a flow miss, so the whole flood lands on the")
	fmt.Fprintln(w, "upcall path. Unbounded, the handlers install each spawned megaflow and")
	fmt.Fprintln(w, "the mask count reaches the SipSpDp maximum (~8.2k, §5.2): victim")
	fmt.Fprintln(w, "lookups pay the full linear scan and throughput collapses. Bounded,")
	fmt.Fprintln(w, "the per-source quota refuses the bulk of the flood, the backlog hits")
	fmt.Fprintln(w, "the queue cap, and installs are limited to the handler service rate —")
	fmt.Fprintln(w, "MFC mask growth is capped an order of magnitude below the unbounded")
	fmt.Fprintln(w, "run while the round-robin drain keeps the victims' own upcalls served.")
	fmt.Fprintln(w, "The fct columns are the price of that cap: an admitted upcall waits")
	fmt.Fprintln(w, "queue-cap/service-rate seconds behind the standing backlog before its")
	fmt.Fprintln(w, "megaflow installs (Little's law), so bounded queues trade mask growth")
	fmt.Fprintln(w, "for flow-setup latency — the unbounded run sets up flows instantly")
	fmt.Fprintln(w, "and pays in masks instead.")
	return renderFCTPanel(w, "saturation bounded", boundedSamples)
}
