package experiments

import (
	"fmt"
	"io"

	"tse/internal/dataplane"
)

func init() {
	register(Experiment{
		ID:    "saturation",
		Title: "Slow-path saturation — SipSpDp upcall flood vs bounded queues/quotas",
		Run:   func(w io.Writer) error { return RunSaturation(w, 2) },
	})
}

// satSummary condenses one saturation run into the table row the
// experiment prints (and tsebench -json exports).
type satSummary struct {
	PeakMasks, PeakBacklog                             int
	Enqueued, Deduped, QueueDrops, QuotaDrops, Handled int
	PreGbps, UnderGbps, PostGbps                       float64
}

// summarise folds a sample series into a satSummary. The attack window of
// SaturationScenario is [5, 35) over 45 seconds.
func summarise(samples []dataplane.Sample) satSummary {
	var s satSummary
	for _, smp := range samples {
		if smp.Masks > s.PeakMasks {
			s.PeakMasks = smp.Masks
		}
		if u := smp.Upcall; u != nil {
			if u.Backlog > s.PeakBacklog {
				s.PeakBacklog = u.Backlog
			}
			s.Enqueued += u.Enqueued
			s.Deduped += u.Deduped
			s.QueueDrops += u.QueueDrops
			s.QuotaDrops += u.QuotaDrops
			s.Handled += u.Handled
		}
	}
	s.PreGbps = avgVictimGbps(samples, 0, 5)
	s.UnderGbps = avgVictimGbps(samples, 15, 35)
	s.PostGbps = avgVictimGbps(samples, 40, 45)
	return s
}

// runSaturationConfig builds and runs one saturation configuration.
// mode "inline" strips the upcall dimension (the synchronous slow path on
// the PMD cores); "unbounded" and "bounded" run the async subsystem.
func runSaturationConfig(workers int, mode string) (satSummary, error) {
	sc, err := dataplane.SaturationScenario(workers, mode == "bounded")
	if err != nil {
		return satSummary{}, err
	}
	if mode == "inline" {
		sc.Upcall = nil
	}
	samples, err := sc.Run()
	if err != nil {
		return satSummary{}, err
	}
	return summarise(samples), nil
}

// RunSaturation tabulates the saturation scenario under three slow-path
// configurations: the synchronous inline pipeline, the asynchronous
// subsystem with no bounds (the paper's overload regime — handlers install
// every attack megaflow and the mask count runs to the SipSpDp maximum of
// ~8.2k), and the bounded configuration in which per-source quotas, queue
// caps and a finite handler service rate refuse most of the flood and cap
// MFC mask growth.
func RunSaturation(w io.Writer, workers int) error {
	fmt.Fprintf(w, "%-16s %10s %8s %9s %8s %8s %11s %8s %10s %10s %10s\n",
		"slow path", "peak masks", "backlog", "enqueued", "deduped",
		"q-drops", "quota-drops", "handled", "pre-attack", "under-atk", "post")
	for _, mode := range []string{"inline", "unbounded", "bounded"} {
		s, err := runSaturationConfig(workers, mode)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %10d %8d %9d %8d %8d %11d %8d %9.2fG %9.2fG %9.2fG\n",
			mode, s.PeakMasks, s.PeakBacklog, s.Enqueued, s.Deduped,
			s.QueueDrops, s.QuotaDrops, s.Handled,
			s.PreGbps, s.UnderGbps, s.PostGbps)
	}
	fmt.Fprintln(w, "\nEvery attack packet is a flow miss, so the whole flood lands on the")
	fmt.Fprintln(w, "upcall path. Unbounded, the handlers install each spawned megaflow and")
	fmt.Fprintln(w, "the mask count reaches the SipSpDp maximum (~8.2k, §5.2): victim")
	fmt.Fprintln(w, "lookups pay the full linear scan and throughput collapses. Bounded,")
	fmt.Fprintln(w, "the per-source quota refuses the bulk of the flood, the backlog hits")
	fmt.Fprintln(w, "the queue cap, and installs are limited to the handler service rate —")
	fmt.Fprintln(w, "MFC mask growth is capped an order of magnitude below the unbounded")
	fmt.Fprintln(w, "run while the round-robin drain keeps the victims' own upcalls served.")
	return nil
}
