package experiments

import (
	"fmt"
	"io"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/dataplane"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

func init() {
	register(Experiment{
		ID:    "remedies",
		Title: "§8 — immediate remedies and their costs, quantified",
		Run:   runRemedies,
	})
	register(Experiment{
		ID:    "bandwidth",
		Title: "§1/§5/§6 — the attack is low-rate: bandwidth arithmetic",
		Run:   runBandwidth,
	})
}

// runRemedies quantifies the §8 immediate remedies on the SipDp attack:
// (iii) switching the MFC off trades attack immunity for per-packet
// slow-path cost; jumbo frames/GRO coalescing shields TCP but not UDP.
func runRemedies(w io.Writer) error {
	l := bitvec.IPv4Tuple
	victim := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	victim.SetField(l, dp, 80)

	type row struct {
		name string
		cfg  vswitch.Config
		nic  dataplane.NICProfile
	}
	rows := []row{
		{"baseline (MFC on, GRO OFF)",
			vswitch.Config{Table: flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}), DisableMicroflow: true},
			dataplane.TCPGroOff},
		{"remedy: MFC off (iii)",
			vswitch.Config{Table: flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}), DisableMicroflow: true, DisableMegaflow: true},
			dataplane.TCPGroOff},
		{"remedy: jumbo frames / GRO ON",
			vswitch.Config{Table: flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{}), DisableMicroflow: true},
			dataplane.TCPGroOn},
	}
	fmt.Fprintf(w, "%-30s %8s %14s %16s\n", "configuration", "masks", "victim cost", "victim Gbps")
	for _, r := range rows {
		sw, err := vswitch.New(r.cfg)
		if err != nil {
			return err
		}
		sw.Process(victim, 0)
		tbl := sw.FlowTable()
		tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
		if err != nil {
			return err
		}
		core.Replay(sw, tr, 0)
		v := sw.Process(victim, 1)
		model := dataplane.NewModel(r.nic)
		cost := model.PacketCost(float64(v.Probes))
		if v.Path == vswitch.PathSlow {
			cost += r.nic.SlowPathCost / r.nic.Coalesce
		}
		gbps := model.Budget() / cost * dataplane.PacketBytes * 8 / 1e9
		if line := r.nic.LineRateGbps; gbps > line {
			gbps = line
		}
		fmt.Fprintf(w, "%-30s %8d %8.1f units %13.2f G\n",
			r.name, sw.MFC().MaskCount(), cost, gbps)
	}
	fmt.Fprintf(w, "paper: (iii) forfeits \"the biggest performance improvement so far\"; GRO\n")
	fmt.Fprintf(w, "shields TCP only — QUIC/UDP remains exposed; see `alt` for remedy (i).\n")
	return nil
}

// runBandwidth reproduces the low-rate headline numbers: the §5.2 traces
// are so small that full tuple-space explosion fits in well under 1 Mbps.
func runBandwidth(w io.Writer) error {
	const frameBytes = 64 // minimum-size attack frames, as in the paper
	fmt.Fprintf(w, "%-10s %10s %12s %14s %18s\n",
		"use case", "packets", "trace bytes", "@1000pps", "sustain (cycle/10s)")
	for _, u := range []flowtable.UseCase{flowtable.Dp, flowtable.SpDp, flowtable.SipDp, flowtable.SipSpDp} {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
		if err != nil {
			return err
		}
		bytes := tr.Len() * frameBytes
		// One full pass at 1000 pps:
		secs := float64(tr.Len()) / 1000
		// Sustaining the explosion requires touching every entry within
		// the 10 s idle timeout: rate >= len/10, bandwidth accordingly.
		sustainKbps := float64(tr.Len()) / 10 * frameBytes * 8 / 1000
		fmt.Fprintf(w, "%-10s %10d %12d %11.1f s %15.1f kbps\n",
			u, tr.Len(), bytes, secs, sustainKbps)
	}
	fmt.Fprintf(w, "paper: \"as little as 670 kbps ... can easily degrade a single OVS instance\n")
	fmt.Fprintf(w, "from its full capacity of 10 Gbps to 2 Mbps\" — the SipSpDp trace above\n")
	fmt.Fprintf(w, "sustains full explosion at ~%0.0f kbps.\n", 9537.0/10*64*8/1000)
	return nil
}
