package experiments

import (
	"fmt"
	"io"

	"tse/internal/cluster"
	"tse/internal/telemetry"
)

func init() {
	register(Experiment{
		ID:    "fleetchaos",
		Title: "Fleet chaos — N-node fabric: blast-radius containment under node death, partition and push failures at attack peak",
		Run:   RunFleetChaos,
	})
}

// runFleetMode runs one fleet variant against the shared journal idiom:
// mark the sequence, run, slice the fleet's events back out.
func runFleetMode(mode cluster.FleetMode) (*cluster.FleetChaosResult, []telemetry.Event, error) {
	hub := runHub()
	mark := hub.Journal.Seq()
	_, res, err := cluster.RunFleetChaos(mode, hub.Journal)
	if err != nil {
		return nil, nil, err
	}
	return res, hub.Journal.EventsSince(mark), nil
}

// RunFleetChaos scales the chaos story out to the fleet: a 4-node fabric
// with a co-located TSE attacker pinned to node 0, policy churn rolling
// fabric-wide every 5 s, and — at attack peak — one node crashed, one
// partitioned from the controller, one with failing ACL pushes, plus
// node-local handler/revalidator faults. Three configurations: fault-free
// baseline, unsupervised ablation (no failover, no retry, no slow-path
// supervision), and the full fault-tolerant control plane.
func RunFleetChaos(w io.Writer) error {
	fmt.Fprintf(w, "%-14s %7s %9s %9s %9s %8s %8s %8s\n",
		"fleet mode", "blast", "failover", "acl-conv", "deaths", "moves", "retries", "leaked")
	var supEvents []telemetry.Event
	var supRes *cluster.FleetChaosResult
	for _, mode := range []cluster.FleetMode{
		cluster.FleetFaultFree,
		cluster.FleetUnsupervised,
		cluster.FleetSupervised,
	} {
		res, events, err := runFleetMode(mode)
		if err != nil {
			return err
		}
		if mode == cluster.FleetSupervised {
			supEvents, supRes = events, res
		}
		deaths, moves, retries := 0, 0, 0
		for _, e := range events {
			switch e.Kind {
			case telemetry.EvNodeDead:
				deaths++
			case telemetry.EvTenantFailover:
				moves++
			case telemetry.EvACLPushRetry:
				retries++
			}
		}
		leaked := 0
		if n := len(res.Samples); n > 0 {
			for _, ns := range res.Samples[n-1].Nodes {
				leaked += ns.PendingFlows
			}
		}
		fo, conv := "-", "-"
		if res.FailoverSec >= 0 {
			fo = fmt.Sprintf("%ds", res.FailoverSec)
		}
		if res.ACLConvergenceSec >= 0 {
			conv = fmt.Sprintf("%ds", res.ACLConvergenceSec)
		}
		fmt.Fprintf(w, "%-14s %6.0f%% %9s %9s %9d %8d %8d %8d\n",
			res.Mode, 100*res.BlastRadiusFrac, fo, conv, deaths, moves, retries, leaked)
	}

	fmt.Fprintln(w, "\nThe fault burst lands at attack peak: node 1 crashes at t=23, node 2")
	fmt.Fprintln(w, "is partitioned from the controller for 4 s, ACL pushes to node 3 fail")
	fmt.Fprintln(w, "for 2 s, node 3's revalidator wedges, and a handler panics on the")
	fmt.Fprintln(w, "attacked node. Fault-free, the blast radius is already 25%: the two")
	fmt.Fprintln(w, "victims sharing node 0 with the attacker pay the TSE tax — that is the")
	fmt.Fprintln(w, "paper's attack, and no controller can repeal it. Unsupervised, the")
	fmt.Fprintln(w, "crash doubles the radius: the dead node's tenants go dark for good,")
	fmt.Fprintln(w, "the failed push is never retried, and the attacked node leaks pending")
	fmt.Fprintln(w, "upcalls past the end of the run. Supervised, the heartbeat detector")
	fmt.Fprintln(w, "declares the node dead after 5 missed beats, its tenants fail over to")
	fmt.Fprintln(w, "the least-loaded survivors (re-admitted through a warming quota), the")
	fmt.Fprintln(w, "partitioned node keeps forwarding on its last-known generation and")
	fmt.Fprintln(w, "reports staleness instead of stalling, and pushes retry with backoff —")
	fmt.Fprintln(w, "the radius stays at the fault-free 25% and the only casualties of the")
	fmt.Fprintln(w, "crash are its own tenants' few seconds of detection gap.")

	if supRes != nil {
		fmt.Fprintf(w, "\nsupervised containment: death=t%d, failover gap %ds, worst ACL convergence %ds\n",
			supRes.DeathSec, supRes.FailoverSec, supRes.ACLConvergenceSec)
	}
	fmt.Fprintln(w, "\ncausal timeline — supervised run (fleet control-plane journal):")
	telemetry.RenderTimeline(w, telemetry.FilterEvents(supEvents,
		telemetry.EvFaultInjected,
		telemetry.EvNodeSuspect, telemetry.EvNodeDead, telemetry.EvNodeRejoin,
		telemetry.EvNodeStale, telemetry.EvTenantFailover,
		telemetry.EvACLPushRetry, telemetry.EvACLConverged))
	return nil
}
