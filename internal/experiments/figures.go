package experiments

import (
	"fmt"
	"io"

	"tse/internal/analysis"
	"tse/internal/ascii"
	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/dataplane"
	"tse/internal/flowtable"
	"tse/internal/mitigation"
	"tse/internal/vswitch"
)

func init() {
	register(Experiment{
		ID:    "fig9a",
		Title: "Fig. 9a — victim throughput and FCT vs number of MFC masks",
		Run:   runFig9a,
	})
	register(Experiment{
		ID:    "fig8a",
		Title: "Fig. 8a — 3 TCP victims, SipDp attack (synthetic testbed)",
		Run:   func(w io.Writer) error { return runFig8(w, dataplane.Fig8aScenario) },
	})
	register(Experiment{
		ID:    "fig8b",
		Title: "Fig. 8b — OpenStack SipDp time series",
		Run:   func(w io.Writer) error { return runFig8(w, dataplane.Fig8bScenario) },
	})
	register(Experiment{
		ID:    "fig8c",
		Title: "Fig. 8c — Kubernetes SipSpDp time series with megaflow count",
		Run:   func(w io.Writer) error { return runFig8(w, dataplane.Fig8cScenario) },
	})
	register(Experiment{
		ID:    "fig9b",
		Title: "Fig. 9b — expected (E) vs measured (M) masks, general TSE",
		Run:   runFig9b,
	})
	register(Experiment{
		ID:    "fig9c",
		Title: "Fig. 9c — MFCGuard slow-path CPU usage vs attack rate",
		Run:   runFig9c,
	})
	register(Experiment{
		ID:    "general",
		Title: "§6.2 — general TSE capacity degradation table",
		Run:   runGeneralDegradation,
	})
}

// fig9aMaskPoints are the x-axis sample points, including the §5.2 use
// case maxima the paper annotates (Dp/SpDp/SipDp/SipSpDp).
var fig9aMaskPoints = []int{1, 10, 17, 100, 260, 516, 1000, 4000, 8200}

func runFig9a(w io.Writer) error {
	models := make([]*dataplane.Model, len(dataplane.Profiles))
	for i, p := range dataplane.Profiles {
		models[i] = dataplane.NewModel(p)
	}
	fmt.Fprintf(w, "%-8s", "masks")
	for _, p := range dataplane.Profiles {
		fmt.Fprintf(w, " %14s", p.Name)
	}
	fmt.Fprintf(w, " %14s\n", "FCT 1GB (OFF)")
	for _, masks := range fig9aMaskPoints {
		fmt.Fprintf(w, "%-8d", masks)
		for _, m := range models {
			g := m.ThroughputForMasks(masks)
			fmt.Fprintf(w, " %7.3fG %4.1f%%", g, m.BaselinePct(g))
		}
		off := models[indexOf("TCP GRO OFF")]
		fmt.Fprintf(w, " %13.1fs\n", off.FlowCompletionSec(1e9, masks))
	}
	fmt.Fprintf(w, "paper anchors (%% of own baseline): GRO OFF 53/10/4.7/0.2, GRO ON 97/95/76/3.9, FHO 88/43/29/2.1 at 17/260/516/8200 masks\n")
	return nil
}

func indexOf(name string) int {
	for i, p := range dataplane.Profiles {
		if p.Name == name {
			return i
		}
	}
	return 0
}

func runFig8(w io.Writer, build func() (*dataplane.Scenario, error)) error {
	sc, err := build()
	if err != nil {
		return err
	}
	samples, err := sc.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario: %s\n", sc.Name)
	fmt.Fprintf(w, "%4s %10s", "t[s]", "sum[Gbps]")
	for _, v := range sc.Victims {
		fmt.Fprintf(w, " %10s", v.Name)
	}
	fmt.Fprintf(w, " %8s %8s %9s\n", "atk[pps]", "masks", "entries")
	for _, s := range samples {
		if s.Sec%5 != 0 {
			continue
		}
		fmt.Fprintf(w, "%4d %10.2f", s.Sec, s.TotalVictimGbps)
		for _, g := range s.VictimGbps {
			fmt.Fprintf(w, " %10.2f", g)
		}
		fmt.Fprintf(w, " %8d %8d %9d\n", s.AttackPps, s.Masks, s.Entries)
	}

	// The paper presents these as plots; render the same series as an
	// ASCII chart (victim throughput plus the attack-activity square wave
	// scaled to the victim axis).
	total := make([]float64, len(samples))
	attack := make([]float64, len(samples))
	peak := 0.0
	for i, s := range samples {
		total[i] = s.TotalVictimGbps
		if s.TotalVictimGbps > peak {
			peak = s.TotalVictimGbps
		}
	}
	maxPps := 0
	for _, s := range samples {
		if s.AttackPps > maxPps {
			maxPps = s.AttackPps
		}
	}
	for i, s := range samples {
		if maxPps > 0 {
			attack[i] = float64(s.AttackPps) / float64(maxPps) * peak * 0.25
		}
	}
	chart := &ascii.Chart{
		Title: sc.Name, YLabel: "Gbps", XLabel: "t[s]",
		Series: []ascii.Series{
			{Name: "attacker activity (scaled)", Values: attack, Marker: 'a'},
			{Name: "victim sum", Values: total, Marker: 'v'},
		},
	}
	fmt.Fprintln(w)
	return chart.Render(w)
}

// fig9bPacketCounts is the Fig. 9b x axis.
var fig9bPacketCounts = []int{10, 17, 50, 100, 260, 516, 1000, 5000, 10000, 50000}

func runFig9b(w io.Writer) error {
	uses := []flowtable.UseCase{flowtable.Dp, flowtable.SipDp, flowtable.SipSpDp}
	fmt.Fprintf(w, "%-8s", "packets")
	for _, u := range uses {
		fmt.Fprintf(w, " %10s %10s", u.String()+"(E)", u.String()+"(M)")
	}
	fmt.Fprintln(w)

	type runState struct {
		sw *vswitch.Switch
		tr *core.Trace
	}
	states := make([]runState, len(uses))
	curves := make([][]float64, len(uses))
	for i, u := range uses {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		curve, err := analysis.ExpectedMasksCurve(tbl, fig9bPacketCounts)
		if err != nil {
			return err
		}
		curves[i] = curve
		sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
		if err != nil {
			return err
		}
		tr, err := core.General(bitvec.IPv4Tuple, nil, fig9bPacketCounts[len(fig9bPacketCounts)-1],
			core.GeneralOptions{Seed: 1})
		if err != nil {
			return err
		}
		states[i] = runState{sw: sw, tr: tr}
	}
	sent := 0
	for pi, n := range fig9bPacketCounts {
		for _, st := range states {
			for k := sent; k < n; k++ {
				st.sw.Process(st.tr.Headers[k], 0)
			}
		}
		sent = n
		fmt.Fprintf(w, "%-8d", n)
		for i := range uses {
			fmt.Fprintf(w, " %10.1f %10d", curves[i][pi], states[i].sw.MFC().MaskCount())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "paper @50k packets: Dp ≈ 16, SipDp ≈ 122, SipSpDp ≈ 581 masks\n")
	return nil
}

func runFig9c(w io.Writer) error {
	fmt.Fprintf(w, "%10s %10s\n", "rate[pps]", "CPU[%]")
	for _, pps := range []float64{10, 100, 1000, 5000, 10000, 20000, 50000} {
		fmt.Fprintf(w, "%10.0f %10.1f\n", pps, mitigation.SlowPathCPUPct(pps))
	}
	fmt.Fprintf(w, "paper: <=15%% below 1k pps; ~80%% at 10k pps; above that the attack is volumetric\n")
	return nil
}

func runGeneralDegradation(w io.Writer) error {
	// §6.2: degradation attainable by General TSE with 1 000 and 50 000
	// random packets per use case and NIC configuration, as a percentage
	// of each configuration's baseline.
	uses := []flowtable.UseCase{flowtable.Dp, flowtable.SipDp, flowtable.SipSpDp}
	counts := []int{1000, 50000}
	fmt.Fprintf(w, "%-10s %-8s %10s", "use case", "packets", "E[masks]")
	for _, p := range dataplane.Profiles {
		fmt.Fprintf(w, " %13s", p.Name)
	}
	fmt.Fprintln(w)
	for _, u := range uses {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		for _, n := range counts {
			e, err := analysis.ExpectedMasks(tbl, n)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %-8d %10.1f", u, n, e)
			for _, p := range dataplane.Profiles {
				m := dataplane.NewModel(p)
				pct := m.BaselinePct(m.ThroughputForMasks(int(e + 0.5)))
				fmt.Fprintf(w, " %12.1f%%", pct)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "paper @50k (GRO OFF): Dp 52%%, SipDp 12%%, SipSpDp 1%%; @1k: 72.8%%, 25.4%%, 11.7%%\n")
	return nil
}
