package experiments

import (
	"fmt"
	"io"

	"tse/internal/dataplane"
	"tse/internal/telemetry"
)

func init() {
	register(Experiment{
		ID:    "portfairness",
		Title: "Per-port slow-path fairness — worker-keyed vs port-keyed vs adaptive (raw/smoothed) quotas",
		Run:   RunPortFairness,
	})
}

// fairnessSummary condenses one port-fairness run into the table row the
// experiment prints (and tsebench -json exports).
type fairnessSummary struct {
	Mode       dataplane.PortFairnessMode
	PeakMasks  int
	Enqueued   int
	QuotaDrops int
	// LateUnderGbps is the mid-attack victim's throughput averaged over
	// [20, 35) — the flow that tries to establish while the flood rages,
	// the paper's newly-established-flow casualty. UnderGbps is all
	// victims' total over the same window, PostGbps after recovery.
	LateUnderGbps, UnderGbps, PostGbps float64
	// FloodQuotaEnd is the flooding source's admission quota at the end
	// of the attack window (BaseQuota unless the adaptive loop shrank it).
	FloodQuotaEnd int
	// VictimFctP99 is the worst per-second flow-setup latency p99 either
	// victim port pays during the attack window, in virtual seconds of
	// upcall residence (-1 when no victim upcall was handled under attack).
	VictimFctP99 int
	// QuotaChanges counts the seconds in the steady mid-attack window
	// [15, 35) where the flooding port's quota differs from the previous
	// second — the oscillation figure the de-flapped controller exists to
	// drive to zero.
	QuotaChanges int
	// OrphanPressure totals the revalidator's dumped-entry count for
	// ingress ports outside the upcall subsystem's source range over the
	// run: slow-path load the adaptive controller measured but had no
	// quota to feed it back into. Nonzero means the scenario drives ports
	// the admission layer was not sized for.
	OrphanPressure int
}

// foldPortFairness summarises one run; the attack window of
// PortFairnessScenario is [5, 35) with the late victim joining at 15.
func foldPortFairness(mode dataplane.PortFairnessMode, samples []dataplane.Sample) fairnessSummary {
	s := fairnessSummary{Mode: mode, VictimFctP99: -1}
	lateSum, lateN := 0.0, 0
	prevQuota := -1
	for _, smp := range samples {
		if smp.Masks > s.PeakMasks {
			s.PeakMasks = smp.Masks
		}
		u := smp.Upcall
		if u == nil {
			continue
		}
		s.Enqueued += u.Enqueued
		s.QuotaDrops += u.QuotaDrops
		s.OrphanPressure += u.OrphanPressure
		if smp.Sec >= 20 && smp.Sec < 35 && len(smp.VictimGbps) > 1 {
			lateSum += smp.VictimGbps[1]
			lateN++
		}
		if smp.Sec == 34 && len(u.PortQuota) > 0 {
			s.FloodQuotaEnd = u.PortQuota[0]
		}
		if smp.Sec >= 5 && smp.Sec < 35 {
			// Victim vports are 1 (present from t=0) and 2 (joins at 15).
			for _, port := range []int{1, 2} {
				if port < len(u.PortFlowSetupP99) && u.PortFlowSetupP99[port] > s.VictimFctP99 {
					s.VictimFctP99 = u.PortFlowSetupP99[port]
				}
			}
		}
		if smp.Sec >= 15 && smp.Sec < 35 && len(u.PortQuota) > 0 {
			if prevQuota >= 0 && u.PortQuota[0] != prevQuota {
				s.QuotaChanges++
			}
			prevQuota = u.PortQuota[0]
		}
	}
	if lateN > 0 {
		s.LateUnderGbps = lateSum / float64(lateN)
	}
	s.UnderGbps = avgVictimGbps(samples, 20, 35)
	s.PostGbps = avgVictimGbps(samples, 40, 45)
	return s
}

// runPortFairness builds and runs one port-fairness mode, returning the
// run's slice of the control-plane event journal alongside the summary.
func runPortFairness(mode dataplane.PortFairnessMode) (fairnessSummary, []dataplane.Sample, []telemetry.Event, error) {
	sc, err := dataplane.PortFairnessScenario(mode)
	if err != nil {
		return fairnessSummary{}, nil, nil, err
	}
	hub := runHub()
	sc.Telemetry = hub
	mark := hub.Journal.Seq()
	samples, err := sc.Run()
	if err != nil {
		return fairnessSummary{}, nil, nil, err
	}
	return foldPortFairness(mode, samples), samples, hub.Journal.EventsSince(mark), nil
}

// RunPortFairness regenerates the victim-throughput-under-flood comparison
// across the quota keyings: one PMD worker shared by an attacking vport
// and two victim vports, with the second victim joining mid-flood. The
// adaptiveraw row is the ablation — the single-input controller retuning
// on raw per-sweep pressure, whose quota wanders every second — against
// which the smoothed two-input controller's flat quota line reads.
func RunPortFairness(w io.Writer) error {
	fmt.Fprintf(w, "%-12s %10s %9s %11s %11s %10s %8s %11s %9s %8s %9s\n",
		"quota mode", "peak masks", "enqueued", "quota-drops",
		"late victim", "under-atk", "post", "flood quota",
		"q-changes", "vfct-p99", "orphan-pr")
	var adaptiveSamples []dataplane.Sample
	var rawEvents, adaptiveEvents []telemetry.Event
	for _, mode := range []dataplane.PortFairnessMode{
		dataplane.FairnessWorkerKeyed,
		dataplane.FairnessPortKeyed,
		dataplane.FairnessAdaptiveRaw,
		dataplane.FairnessAdaptive,
	} {
		s, samples, events, err := runPortFairness(mode)
		if err != nil {
			return err
		}
		switch mode {
		case dataplane.FairnessAdaptiveRaw:
			rawEvents = events
		case dataplane.FairnessAdaptive:
			adaptiveSamples, adaptiveEvents = samples, events
		}
		fmt.Fprintf(w, "%-12s %10d %9d %11d %10.2fG %10.2fG %7.2fG %11d %9d %7ds %9d\n",
			s.Mode, s.PeakMasks, s.Enqueued, s.QuotaDrops,
			s.LateUnderGbps, s.UnderGbps, s.PostGbps, s.FloodQuotaEnd,
			s.QuotaChanges, s.VictimFctP99, s.OrphanPressure)
	}
	fmt.Fprintln(w, "\nAll three vports share ONE PMD worker. Worker-keyed (the pre-vport")
	fmt.Fprintln(w, "shape), the flood drains the shared admission bucket every second, so")
	fmt.Fprintln(w, "the victim joining mid-attack cannot even install its megaflow: its")
	fmt.Fprintln(w, "setup packets are refused at admission and it moves nothing until the")
	fmt.Fprintln(w, "attack ends. Port-keyed, the victim owns its bucket and establishes")
	fmt.Fprintln(w, "immediately — but the flood still installs its full per-port quota of")
	fmt.Fprintln(w, "masks, taxing every lookup. Adaptive quotas close the loop: the")
	fmt.Fprintln(w, "revalidator sees the flooding port's megaflow footprint explode and")
	fmt.Fprintln(w, "throttles that port toward the floor, so mask growth — and with it")
	fmt.Fprintln(w, "both victims' scan cost — stays an order of magnitude lower while the")
	fmt.Fprintln(w, "victims keep their full budgets. OVS sizes its vport-granular upcall")
	fmt.Fprintln(w, "rate limiter from observed load for exactly this reason.")
	fmt.Fprintln(w, "The q-changes column counts mid-attack quota moves for the flooding")
	fmt.Fprintln(w, "port: raw single-input retuning chases every sweep's footprint sample")
	fmt.Fprintln(w, "up and down (churn empties the cache, the quota bounces, the flood")
	fmt.Fprintln(w, "refills it), while the EWMA+hysteresis controller settles once per")
	fmt.Fprintln(w, "regime shift and holds. vfct-p99 is the victims' worst flow-setup")
	fmt.Fprintln(w, "latency under attack — the metric the whole quota exercise protects.")
	fmt.Fprintln(w, "orphan-pr totals revalidator pressure from ports outside the")
	fmt.Fprintln(w, "admission layer's source range: load measured but untunable.")

	// The flap story, straight from the journal: every quota move the two
	// adaptive controllers made. The raw ablation's timeline is dense
	// (one retune per churn bounce); the smoothed controller's is a few
	// lines — the whole de-flapping argument in two ASCII rails.
	fmt.Fprintln(w, "\nquota-retune timeline — adaptiveraw (every move is a flap):")
	telemetry.RenderTimeline(w, telemetry.FilterEvents(rawEvents, telemetry.EvQuotaRetune))
	fmt.Fprintln(w, "\nquota-retune timeline — adaptive (EWMA + hysteresis):")
	telemetry.RenderTimeline(w, telemetry.FilterEvents(adaptiveEvents, telemetry.EvQuotaRetune))
	return renderFCTPanel(w, "portfairness adaptive", adaptiveSamples)
}
