package experiments

import (
	"fmt"
	"io"

	"tse/internal/dataplane"
)

func init() {
	register(Experiment{
		ID:    "multicore",
		Title: "PMD-style datapath scaling — SipDp attack vs 1/4/8 cores",
		Run:   func(w io.Writer) error { return RunMulticore(w, []int{1, 4, 8}) },
	})
}

// RunMulticore runs the multicore scenario at each worker count and
// tabulates victim throughput before, during, and after the attack window.
// The table makes the scaling story quantitative: per-core budgets absorb
// the attack's sharded slow-path CPU load, but the shared megaflow cache's
// mask count — and with it the per-packet linear scan tax — is identical
// at every core count, so recovery plateaus well below baseline.
func RunMulticore(w io.Writer, counts []int) error {
	fmt.Fprintf(w, "%-8s %10s %12s %12s %10s %12s\n",
		"workers", "pre-attack", "under-attack", "post-attack", "peak masks", "attack cost")
	for _, n := range counts {
		sc, err := dataplane.MulticoreScenario(n)
		if err != nil {
			return err
		}
		samples, err := sc.Run()
		if err != nil {
			return err
		}
		peakMasks, peakCost := 0, 0.0
		for _, s := range samples {
			if s.Masks > peakMasks {
				peakMasks = s.Masks
			}
			if s.AttackCost > peakCost {
				peakCost = s.AttackCost
			}
		}
		budget := samples[0].Budget
		fmt.Fprintf(w, "%-8d %9.2fG %11.2fG %11.2fG %10d %11.1f%%\n",
			n,
			avgVictimGbps(samples, 10, 30),
			avgVictimGbps(samples, 60, 90),
			avgVictimGbps(samples, 105, 120),
			peakMasks,
			100*peakCost/budget)
	}
	fmt.Fprintln(w, "\nPer-core budgets shard the attack's slow-path load (attack cost % of")
	fmt.Fprintln(w, "aggregate budget falls with cores), but peak masks are identical: the")
	fmt.Fprintln(w, "megaflow cache is shared, so the per-lookup scan tax survives scale-out.")
	return nil
}

// avgVictimGbps averages TotalVictimGbps over sample seconds [from, to).
func avgVictimGbps(samples []dataplane.Sample, from, to int) float64 {
	sum, n := 0.0, 0
	for _, s := range samples {
		if s.Sec >= from && s.Sec < to {
			sum += s.TotalVictimGbps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
