package experiments

import (
	"reflect"
	"testing"

	"tse/internal/dataplane"
	"tse/internal/telemetry"
)

// TestChaosSelfHealing is the acceptance criterion, asserted on the
// deterministic drive-mode run: with a handler killed at the attack peak
// (plus a wedged revalidator, failing installs, delivery faults and a
// stalled second handler), the supervised slow path keeps the mid-attack
// victim above the unsupervised floor, leaks zero pending-table entries,
// and returns victim flow-setup p99 to within 1.5x its pre-fault level
// within 10 modelled seconds.
func TestChaosSelfHealing(t *testing.T) {
	run := func(mode dataplane.ChaosMode) (chaosSummary, []telemetry.Event) {
		t.Helper()
		s, _, events, err := runChaos(mode)
		if err != nil {
			t.Fatal(err)
		}
		return s, events
	}
	sup, supEvents := run(dataplane.ChaosSupervised)
	unsup, _ := run(dataplane.ChaosUnsupervised)

	// The fault schedule fired and was fully observed.
	if sup.FaultSec < 20 || sup.FaultSec > 30 {
		t.Fatalf("first fault at t=%d, want inside the attack peak", sup.FaultSec)
	}
	if sup.Panics != 1 {
		t.Errorf("panics = %d, want the 1 injected", sup.Panics)
	}
	if sup.Stalls < 1 {
		t.Errorf("stalls detected = %d, want >= 1 (the t=30 wedge)", sup.Stalls)
	}
	if sup.Restarts < 2 {
		t.Errorf("restarts = %d, want >= 2 (panic respawn + stall respawn)", sup.Restarts)
	}
	if sup.Requeued < 1 {
		t.Errorf("requeued = %d, want the panicked handler's orphans back in the queue", sup.Requeued)
	}
	if sup.InstallErrors < 1 || sup.SweepStalls < 1 {
		t.Errorf("install-errors=%d sweep-stalls=%d, want >= 1 each", sup.InstallErrors, sup.SweepStalls)
	}

	// Zero pending-table leaks, supervised; the unsupervised ablation leaks.
	if sup.PendingLeaked != 0 {
		t.Errorf("supervised run leaked %d pending entries, want 0", sup.PendingLeaked)
	}
	if unsup.PendingLeaked == 0 {
		t.Error("unsupervised ablation leaked nothing: the wedge the supervisor prevents is gone")
	}

	// Recovery: victim flow setup back inside 1.5x pre-fault within 10 s.
	if sup.RecoverySec < 0 || sup.RecoverySec > 10 {
		t.Errorf("recovery = %d s, want within [0, 10]", sup.RecoverySec)
	}

	// Victim throughput floor: the mid-attack victim stays above the
	// bounded-saturation floor the unsupervised wedge sinks to. The 0.30
	// floor is the supervised run's empirical 0.39 G with margin; the
	// unsupervised run sits at ~0.17 G.
	if sup.LateUnderGbps < 0.30 {
		t.Errorf("supervised late victim %.3f G under faults, want >= 0.30 G", sup.LateUnderGbps)
	}
	if !(sup.LateUnderGbps > unsup.LateUnderGbps) {
		t.Errorf("supervised late victim %.3f G not above unsupervised %.3f G",
			sup.LateUnderGbps, unsup.LateUnderGbps)
	}

	// The breaker participated: the flooding port tripped and shed.
	if sup.BreakerTrips < 1 || sup.BreakerShed < 1 {
		t.Errorf("breaker trips=%d shed=%d, want >= 1 each", sup.BreakerTrips, sup.BreakerShed)
	}

	// The control-plane journal tells the self-healing story in causal
	// order: the injected panic, then the supervisor's respawn, then the
	// breaker tripping on the degraded backlog, then its recovery close.
	firstFrom := func(kind telemetry.EventKind, from int) int {
		for i := from; i < len(supEvents); i++ {
			if supEvents[i].Kind == kind {
				return i
			}
		}
		return -1
	}
	// The panic chain, each step searched strictly after its cause: the
	// injected panic, the supervisor's respawn, the breaker tripping on
	// the degraded service, and the breaker entering its half-open
	// recovery probe. (The run's final trip lands after the flood dies,
	// so the half-open probe — not a close — is the last recovery step
	// the journal can show; a closed-loop trip→close cycle is asserted
	// separately below on the mid-flood cycle.)
	panicAt := firstFrom(telemetry.EvHandlerPanic, 0)
	restartAt, tripAt, probeAt := -1, -1, -1
	if panicAt >= 0 {
		restartAt = firstFrom(telemetry.EvHandlerRestart, panicAt+1)
	}
	if restartAt >= 0 {
		tripAt = firstFrom(telemetry.EvBreakerTrip, restartAt+1)
	}
	if tripAt >= 0 {
		probeAt = firstFrom(telemetry.EvBreakerHalfOpen, tripAt+1)
	}
	for _, step := range []struct {
		name string
		at   int
	}{
		{"handler-panic", panicAt},
		{"handler-restart after the panic", restartAt},
		{"breaker-trip after the restart", tripAt},
		{"breaker-half-open after the trip", probeAt},
	} {
		if step.at < 0 {
			t.Fatalf("journal recorded no %s event (chain: panic@%d restart@%d trip@%d half-open@%d)",
				step.name, panicAt, restartAt, tripAt, probeAt)
		}
	}
	// Ticks agree with the order (Seq is monotonic, ticks must be too).
	if supEvents[panicAt].Tick > supEvents[restartAt].Tick ||
		supEvents[tripAt].Tick > supEvents[probeAt].Tick {
		t.Errorf("journal ticks disagree with order: panic t=%d restart t=%d trip t=%d half-open t=%d",
			supEvents[panicAt].Tick, supEvents[restartAt].Tick,
			supEvents[tripAt].Tick, supEvents[probeAt].Tick)
	}
	// A full trip→close recovery cycle happened while the flood (and its
	// residence signal) was still alive.
	firstTrip := firstFrom(telemetry.EvBreakerTrip, 0)
	if closeAt := firstFrom(telemetry.EvBreakerClose, firstTrip+1); firstTrip < 0 || closeAt < 0 {
		t.Errorf("journal shows no trip→close recovery cycle (trip@%d close@%d)", firstTrip, closeAt)
	}
}

// TestChaosDeterministic: the fault schedule is scripted against the
// virtual clock, so two supervised runs fold to identical summaries —
// bit-for-bit replayability is what makes the chaos assertions stable.
func TestChaosDeterministic(t *testing.T) {
	a, _, aEv, err := runChaos(dataplane.ChaosSupervised)
	if err != nil {
		t.Fatal(err)
	}
	b, _, bEv, err := runChaos(dataplane.ChaosSupervised)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two supervised chaos runs diverged:\n%+v\n%+v", a, b)
	}
	// The journal replays identically too, modulo the global sequence
	// numbers (each run gets its own journal, so Seq restarts — compare
	// the (tick, kind, actor, value) stream).
	if len(aEv) != len(bEv) {
		t.Fatalf("journal lengths diverged: %d vs %d", len(aEv), len(bEv))
	}
	for i := range aEv {
		x, y := aEv[i], bEv[i]
		if x.Tick != y.Tick || x.Kind != y.Kind || x.Actor != y.Actor || x.Value != y.Value {
			t.Errorf("journal event %d diverged: %v vs %v", i, x, y)
		}
	}
}

// TestChaosFaultFreeClean: without a fault plan no fault counters move and
// no recovery clock starts — the injector hooks are inert when nil.
func TestChaosFaultFreeClean(t *testing.T) {
	s, _, events, err := runChaos(dataplane.ChaosFaultFree)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(telemetry.FilterEvents(events, telemetry.EvFaultInjected,
		telemetry.EvDeliveryFault, telemetry.EvHandlerPanic,
		telemetry.EvHandlerStall, telemetry.EvInstallError,
		telemetry.EvSweepStall)); n != 0 {
		t.Errorf("fault-free journal recorded %d fault events", n)
	}
	if s.Panics != 0 || s.Stalls != 0 || s.Restarts != 0 || s.Requeued != 0 ||
		s.InstallErrors != 0 || s.SweepStalls != 0 {
		t.Errorf("fault-free run observed faults: %+v", s)
	}
	if s.FaultSec != -1 || s.RecoverySec != -1 {
		t.Errorf("fault-free run started a recovery clock: fault=%d recovery=%d", s.FaultSec, s.RecoverySec)
	}
	if s.PendingLeaked != 0 {
		t.Errorf("fault-free run leaked %d pending entries", s.PendingLeaked)
	}
}
