package experiments

import (
	"reflect"
	"testing"

	"tse/internal/dataplane"
)

// TestChaosSelfHealing is the acceptance criterion, asserted on the
// deterministic drive-mode run: with a handler killed at the attack peak
// (plus a wedged revalidator, failing installs, delivery faults and a
// stalled second handler), the supervised slow path keeps the mid-attack
// victim above the unsupervised floor, leaks zero pending-table entries,
// and returns victim flow-setup p99 to within 1.5x its pre-fault level
// within 10 modelled seconds.
func TestChaosSelfHealing(t *testing.T) {
	run := func(mode dataplane.ChaosMode) chaosSummary {
		t.Helper()
		s, _, err := runChaos(mode)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sup := run(dataplane.ChaosSupervised)
	unsup := run(dataplane.ChaosUnsupervised)

	// The fault schedule fired and was fully observed.
	if sup.FaultSec < 20 || sup.FaultSec > 30 {
		t.Fatalf("first fault at t=%d, want inside the attack peak", sup.FaultSec)
	}
	if sup.Panics != 1 {
		t.Errorf("panics = %d, want the 1 injected", sup.Panics)
	}
	if sup.Stalls < 1 {
		t.Errorf("stalls detected = %d, want >= 1 (the t=30 wedge)", sup.Stalls)
	}
	if sup.Restarts < 2 {
		t.Errorf("restarts = %d, want >= 2 (panic respawn + stall respawn)", sup.Restarts)
	}
	if sup.Requeued < 1 {
		t.Errorf("requeued = %d, want the panicked handler's orphans back in the queue", sup.Requeued)
	}
	if sup.InstallErrors < 1 || sup.SweepStalls < 1 {
		t.Errorf("install-errors=%d sweep-stalls=%d, want >= 1 each", sup.InstallErrors, sup.SweepStalls)
	}

	// Zero pending-table leaks, supervised; the unsupervised ablation leaks.
	if sup.PendingLeaked != 0 {
		t.Errorf("supervised run leaked %d pending entries, want 0", sup.PendingLeaked)
	}
	if unsup.PendingLeaked == 0 {
		t.Error("unsupervised ablation leaked nothing: the wedge the supervisor prevents is gone")
	}

	// Recovery: victim flow setup back inside 1.5x pre-fault within 10 s.
	if sup.RecoverySec < 0 || sup.RecoverySec > 10 {
		t.Errorf("recovery = %d s, want within [0, 10]", sup.RecoverySec)
	}

	// Victim throughput floor: the mid-attack victim stays above the
	// bounded-saturation floor the unsupervised wedge sinks to. The 0.30
	// floor is the supervised run's empirical 0.39 G with margin; the
	// unsupervised run sits at ~0.17 G.
	if sup.LateUnderGbps < 0.30 {
		t.Errorf("supervised late victim %.3f G under faults, want >= 0.30 G", sup.LateUnderGbps)
	}
	if !(sup.LateUnderGbps > unsup.LateUnderGbps) {
		t.Errorf("supervised late victim %.3f G not above unsupervised %.3f G",
			sup.LateUnderGbps, unsup.LateUnderGbps)
	}

	// The breaker participated: the flooding port tripped and shed.
	if sup.BreakerTrips < 1 || sup.BreakerShed < 1 {
		t.Errorf("breaker trips=%d shed=%d, want >= 1 each", sup.BreakerTrips, sup.BreakerShed)
	}
}

// TestChaosDeterministic: the fault schedule is scripted against the
// virtual clock, so two supervised runs fold to identical summaries —
// bit-for-bit replayability is what makes the chaos assertions stable.
func TestChaosDeterministic(t *testing.T) {
	a, _, err := runChaos(dataplane.ChaosSupervised)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runChaos(dataplane.ChaosSupervised)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two supervised chaos runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestChaosFaultFreeClean: without a fault plan no fault counters move and
// no recovery clock starts — the injector hooks are inert when nil.
func TestChaosFaultFreeClean(t *testing.T) {
	s, _, err := runChaos(dataplane.ChaosFaultFree)
	if err != nil {
		t.Fatal(err)
	}
	if s.Panics != 0 || s.Stalls != 0 || s.Restarts != 0 || s.Requeued != 0 ||
		s.InstallErrors != 0 || s.SweepStalls != 0 {
		t.Errorf("fault-free run observed faults: %+v", s)
	}
	if s.FaultSec != -1 || s.RecoverySec != -1 {
		t.Errorf("fault-free run started a recovery clock: fault=%d recovery=%d", s.FaultSec, s.RecoverySec)
	}
	if s.PendingLeaked != 0 {
		t.Errorf("fault-free run leaked %d pending entries", s.PendingLeaked)
	}
}
