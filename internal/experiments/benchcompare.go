package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"tse/internal/ascii"
)

// regressionPrefixes name the benchmark families the CI regression gate
// watches: the O(|M|) mask-scan cost and the victim's lookup under attack
// states (the quantities every perf PR in this repository exists to
// move), the upcall submit path (admission must stay cheap or bounded
// queues stop being a defense), the megaflow-install publish cost —
// per-install and batched — so the InsertBatch amortisation win cannot
// silently regress, and the residence accounting on the upcall service
// loop (the per-pop histogram update and the per-second quantile read the
// flow-setup latency metric added), and the telemetry primitives
// themselves (a counter increment or histogram observe that slows down or
// starts allocating taxes every instrumented family at once), and the
// trace-replay ingest path (the mmap'd zero-copy decode and its
// burst-dispatch composition — the wire-rate numbers are only meaningful
// while that loop stays lean). Other results (scenario summaries) are
// trajectory data but not gated: they mix policy with speed.
var regressionPrefixes = []string{
	"tss_lookup_miss_", "victim_lookup_",
	"tss_install_", "upcall_submit_", "upcall_roundtrip_",
	"upcall_residence_", "telemetry_", "trace_replay_",
}

// RegressionFactor is the slowdown the gate tolerates between two
// committed BENCH files: generous enough for cross-host noise (the files
// are measured wherever the PR was built), tight enough that an
// accidental O(|M|) constant-factor regression cannot land silently.
const RegressionFactor = 2.0

// LoadBenchReport reads a tsebench -json file.
func LoadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &rep, nil
}

// gated reports whether a benchmark name is in a gated family.
func gated(name string) bool {
	for _, p := range regressionPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// CompareBenchReports diffs two bench reports and returns an error if any
// gated benchmark present in both slowed down by more than factor, or
// newly allocates on a previously allocation-free hot path. The full
// comparison table is written to w either way.
func CompareBenchReports(w io.Writer, oldRep, newRep *BenchReport, factor float64) error {
	oldBy := make(map[string]BenchResult, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	var regressions []string
	fmt.Fprintf(w, "%-36s %12s %12s %8s\n", "benchmark", "old[ns]", "new[ns]", "ratio")
	for _, nr := range newRep.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			continue
		}
		ratio := 0.0
		if or.NsPerOp > 0 {
			ratio = nr.NsPerOp / or.NsPerOp
		}
		mark := ""
		if gated(nr.Name) {
			if ratio > factor {
				mark = "  << REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.1f ns -> %.1f ns (%.2fx > %.2fx)",
						nr.Name, or.NsPerOp, nr.NsPerOp, ratio, factor))
			}
			if or.AllocsPerOp == 0 && nr.AllocsPerOp > 0 {
				mark = "  << ALLOCATES"
				regressions = append(regressions,
					fmt.Sprintf("%s: hot path now allocates (%d allocs/op, was 0)",
						nr.Name, nr.AllocsPerOp))
			}
		}
		fmt.Fprintf(w, "%-36s %12.1f %12.1f %7.2fx%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, ratio, mark)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench regression gate failed:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}

// CompareBenchTrajectory renders the gated families' perf history across
// three or more committed BENCH files (oldest first): for every gated
// benchmark name present in any report, the first and last measured
// ns/op, the end-to-end ratio, and an ASCII sparkline of the whole
// series — one glyph per file, a space where the file predates the
// benchmark. The trajectory is informational (the pairwise gate is
// CompareBenchFiles); it exists so a slow drift spread over many PRs,
// each inside the 2x gate, is still visible in one glance.
func CompareBenchTrajectory(w io.Writer, paths []string) error {
	if len(paths) < 3 {
		return fmt.Errorf("trajectory mode needs >= 3 bench files, got %d", len(paths))
	}
	reps := make([]*BenchReport, len(paths))
	for i, p := range paths {
		rep, err := LoadBenchReport(p)
		if err != nil {
			return err
		}
		reps[i] = rep
	}
	// Collect gated names in first-appearance order across the series.
	var names []string
	seen := make(map[string]bool)
	for _, rep := range reps {
		for _, r := range rep.Results {
			if gated(r.Name) && !seen[r.Name] {
				seen[r.Name] = true
				names = append(names, r.Name)
			}
		}
	}
	fmt.Fprintf(w, "perf trajectory over %d reports: %s -> %s\n",
		len(paths), paths[0], paths[len(paths)-1])
	fmt.Fprintf(w, "%-36s %12s %12s %8s  %s\n",
		"benchmark", "first[ns]", "last[ns]", "ratio", "trajectory")
	for _, name := range names {
		series := make([]float64, len(reps))
		first, last := math.NaN(), math.NaN()
		for i, rep := range reps {
			series[i] = math.NaN()
			for _, r := range rep.Results {
				if r.Name == name {
					series[i] = r.NsPerOp
					if math.IsNaN(first) {
						first = r.NsPerOp
					}
					last = r.NsPerOp
					break
				}
			}
		}
		ratio := last / first // NaN propagates when either end is missing
		fmt.Fprintf(w, "%-36s %12.1f %12.1f %7.2fx  |%s|\n",
			name, first, last, ratio, ascii.Sparkline(series))
	}
	return nil
}

// CompareBenchFiles is CompareBenchReports over two committed JSON files,
// the form the CI gate invokes (tsebench -compare old.json new.json).
func CompareBenchFiles(w io.Writer, oldPath, newPath string) error {
	oldRep, err := LoadBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := LoadBenchReport(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "comparing %s (gomaxprocs=%d) -> %s (gomaxprocs=%d), gate %.1fx on %s\n",
		oldPath, oldRep.GoMaxProcs, newPath, newRep.GoMaxProcs,
		RegressionFactor, strings.Join(regressionPrefixes, "*, ")+"*")
	return CompareBenchReports(w, oldRep, newRep, RegressionFactor)
}
