// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment writes the same rows/series the paper
// reports, annotated with the paper's published values where applicable,
// so paper-vs-reproduction comparison is a diff away (EXPERIMENTS.md holds
// the recorded comparison).
//
// The cmd/tsebench binary is a thin CLI over this package; the top-level
// benchmark suite times the underlying primitives.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the CLI handle, e.g. "fig9a".
	ID string
	// Title describes what the paper shows.
	Title string
	// Run writes the regenerated rows/series to w.
	Run func(w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment handles.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment, separated by banners.
func RunAll(w io.Writer) error {
	for _, e := range registry {
		banner(w, e)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func banner(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "================================================================\n")
	fmt.Fprintf(w, "%s — %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "================================================================\n")
}
