package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/dataplane"
	"tse/internal/flowtable"
	"tse/internal/microflow"
	"tse/internal/tss"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// BenchSchema versions the JSON layout so downstream tooling can detect
// format changes. v2 adds the upcall micro-benchmarks and the scenarios
// section (slow-path saturation summaries).
const BenchSchema = "tse-bench/v2"

// BenchResult is one measured micro-benchmark in the JSON report.
type BenchResult struct {
	// Name identifies the benchmark, stable across PRs (the perf
	// trajectory is a join on this field).
	Name string `json:"name"`
	// NsPerOp, AllocsPerOp, BytesPerOp mirror testing.BenchmarkResult.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// N is the iteration count the timing is averaged over.
	N int `json:"n"`
	// Extra carries benchmark-specific dimensions (mask counts etc.).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// ScenarioResult summarises one dataplane scenario run: the
// upcall-saturation suite records the slow-path overload regime (peak
// masks, drops, victim throughput) so the BENCH_*.json trajectory captures
// behaviour, not just hot-path timings.
type ScenarioResult struct {
	// Name identifies the scenario configuration, stable across PRs.
	Name string `json:"name"`
	// Workers is the PMD worker count of the run.
	Workers int `json:"workers"`
	// PeakMasks is the MFC mask high-water mark (Observation 1's |M|);
	// PeakBacklog the upcall-queue high-water mark.
	PeakMasks   int `json:"peak_masks"`
	PeakBacklog int `json:"peak_backlog"`
	// Enqueued..Handled total the upcall admission outcomes over the run.
	Enqueued   int `json:"enqueued"`
	Deduped    int `json:"deduped"`
	QueueDrops int `json:"queue_drops"`
	QuotaDrops int `json:"quota_drops"`
	Handled    int `json:"handled"`
	// VictimPreGbps/UnderGbps/PostGbps average total victim throughput
	// before, during, and after the attack window.
	VictimPreGbps   float64 `json:"victim_pre_gbps"`
	VictimUnderGbps float64 `json:"victim_under_gbps"`
	VictimPostGbps  float64 `json:"victim_post_gbps"`
	// WallMs is the host wall-clock time of the run (informational; the
	// scenario itself is virtual-time deterministic).
	WallMs float64 `json:"wall_ms"`
}

// BenchReport is the machine-readable perf snapshot tsebench -json emits.
type BenchReport struct {
	Schema    string           `json:"schema"`
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	NumCPU    int              `json:"num_cpu"`
	Results   []BenchResult    `json:"results"`
	Scenarios []ScenarioResult `json:"scenarios,omitempty"`
}

// populateMasks installs n entries under n distinct masks (prefix
// combinations over ip_src/ip_dst/tp_dst), the synthetic TSE attack shape
// the hot-path benchmarks scan. It mirrors populateDistinctMasks in
// internal/tss/tss_test.go (unreachable from here without exporting a
// bench-only helper); keep the two in sync so the JSON trajectory stays
// comparable with BenchmarkLookupMasks.
func populateMasks(c *tss.Classifier, l *bitvec.Layout, n int) error {
	sip, _ := l.FieldIndex("ip_src")
	dip, _ := l.FieldIndex("ip_dst")
	dp, _ := l.FieldIndex("tp_dst")
	count := 0
	for k := 0; k <= 32 && count < n; k++ {
		for i := 1; i <= 32 && count < n; i++ {
			for j := 1; j <= 16 && count < n; j++ {
				mask := bitvec.PrefixMask(l, sip, i).Or(bitvec.PrefixMask(l, dp, j))
				key := bitvec.NewVec(l)
				key.SetFieldBit(l, sip, i-1)
				key.SetFieldBit(l, dp, j-1)
				if k > 0 {
					mask = mask.Or(bitvec.PrefixMask(l, dip, k))
					key.SetFieldBit(l, dip, k-1)
				}
				e := &tss.Entry{Key: key.And(mask), Mask: mask, Action: flowtable.Drop}
				if err := c.Insert(e, 0); err != nil {
					return err
				}
				count++
			}
		}
	}
	if count < n {
		return fmt.Errorf("benchjson: could only build %d of %d masks", count, n)
	}
	return nil
}

// benchVictimKey is the benign web flow used as the probe header.
func benchVictimKey() bitvec.Vec {
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	set := func(name string, v uint64) {
		i, _ := l.FieldIndex(name)
		h.SetField(l, i, v)
	}
	set("ip_src", 0x08080808)
	set("ip_dst", 0xc0a80002)
	set("ip_proto", 6)
	set("tp_src", 40000)
	set("tp_dst", 80)
	return h
}

// BenchJSON measures the hot-path benchmark suite and returns the report.
// The suite is intentionally small (a few seconds) and stable-named so
// successive PRs' JSON files diff into a perf trajectory.
func BenchJSON() (*BenchReport, error) {
	rep := &BenchReport{
		Schema:    BenchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	add := func(name string, extra map[string]float64, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rep.Results = append(rep.Results, BenchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			Extra:       extra,
		})
	}

	// TSS mask-scan cost (Observation 1): full-miss scan at |M| masks.
	l := bitvec.IPv4Tuple
	for _, masks := range []int{16, 256, 4096} {
		c := tss.New(l, tss.Options{DisableOverlapCheck: true})
		if err := populateMasks(c, l, masks); err != nil {
			return nil, err
		}
		miss := bitvec.NewVec(l)
		sip, _ := l.FieldIndex("ip_src")
		miss.SetField(l, sip, 0xffffffff)
		add(fmt.Sprintf("tss_lookup_miss_masks_%d", masks),
			map[string]float64{"masks": float64(masks)},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					c.Lookup(miss, 0)
				}
			})
	}

	// Victim lookup under the co-located attack per §5.2 use case.
	for _, u := range []flowtable.UseCase{flowtable.Baseline, flowtable.Dp, flowtable.SipDp} {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
		if err != nil {
			return nil, err
		}
		victim := benchVictimKey()
		sw.Process(victim, 0)
		if u != flowtable.Baseline {
			tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
			if err != nil {
				return nil, err
			}
			core.Replay(sw, tr, 0)
		}
		add(fmt.Sprintf("victim_lookup_%s", u),
			map[string]float64{"masks": float64(sw.MFC().MaskCount())},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sw.MFC().Lookup(victim, 0)
				}
			})
	}

	// EMC exact-match lookup, hit and miss.
	emc := microflow.New(0)
	hit := benchVictimKey()
	emc.Insert(hit, microflow.Result{Action: flowtable.Allow})
	miss := benchVictimKey()
	dp, _ := l.FieldIndex("tp_dst")
	miss.SetField(l, dp, 81)
	add("emc_lookup_hit", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			emc.Lookup(hit)
		}
	})
	add("emc_lookup_miss", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			emc.Lookup(miss)
		}
	})

	// Upcall subsystem hot paths: the pending-table dedup hit (the cost a
	// same-flow miss burst pays per packet after the first) and the full
	// submit→queue→handle round trip. The round trip runs against a
	// suppressed megaflow (monitor-deleted with the quirk active), the one
	// slow-path shape that is stationary under repetition: classification
	// happens, no install mutates the cache.
	{
		tbl := flowtable.UseCaseACL(flowtable.Dp, flowtable.ACLParams{})
		sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
		if err != nil {
			return nil, err
		}
		sub, err := upcall.New(sw, 1, upcall.Options{})
		if err != nil {
			return nil, err
		}
		h := benchVictimKey()
		sw.Process(h, 0)
		sw.DeleteMegaflows(func(*tss.Entry) bool { return true })
		add("upcall_roundtrip_suppressed", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sub.SubmitSync(0, h, 0)
			}
		})
		// Park one upcall as pending so every Submit coalesces onto it.
		sub2, err := upcall.New(sw, 1, upcall.Options{})
		if err != nil {
			return nil, err
		}
		sub2.Submit(0, h, 0)
		add("upcall_submit_dedup", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sub2.Submit(0, h, 0)
			}
		})
	}

	// The upcall-saturation suite: the slow-path overload regime of the
	// paper (every attack packet a flow miss), unbounded vs bounded. The
	// series is folded by the same summarise the `saturation` experiment
	// prints, so the JSON trajectory and the table cannot diverge.
	for _, bounded := range []bool{false, true} {
		sc, err := dataplane.SaturationScenario(2, bounded)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		samples, err := sc.Run()
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		s := summarise(samples)
		rep.Scenarios = append(rep.Scenarios, ScenarioResult{
			Name:            sc.Name,
			Workers:         sc.Workers,
			PeakMasks:       s.PeakMasks,
			PeakBacklog:     s.PeakBacklog,
			Enqueued:        s.Enqueued,
			Deduped:         s.Deduped,
			QueueDrops:      s.QueueDrops,
			QuotaDrops:      s.QuotaDrops,
			Handled:         s.Handled,
			VictimPreGbps:   s.PreGbps,
			VictimUnderGbps: s.UnderGbps,
			VictimPostGbps:  s.PostGbps,
			WallMs:          float64(wall.Nanoseconds()) / 1e6,
		})
	}
	return rep, nil
}

// WriteBenchJSON runs the suite and writes the report to path, logging
// progress to w.
func WriteBenchJSON(w io.Writer, path string) error {
	fmt.Fprintf(w, "running hot-path benchmark suite (this takes a few seconds)...\n")
	rep, err := BenchJSON()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-28s %12.1f ns/op %6d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	for _, s := range rep.Scenarios {
		fmt.Fprintf(w, "%-36s peak_masks=%-5d drops=%-6d under=%.2fG (%.0f ms)\n",
			s.Name, s.PeakMasks, s.QueueDrops+s.QuotaDrops, s.VictimUnderGbps, s.WallMs)
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
