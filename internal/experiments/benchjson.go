package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"tse/internal/bitvec"
	"tse/internal/cluster"
	"tse/internal/core"
	"tse/internal/datapath"
	"tse/internal/dataplane"
	"tse/internal/flowtable"
	"tse/internal/microflow"
	"tse/internal/telemetry"
	trc "tse/internal/trace"
	"tse/internal/tss"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// BenchSchema versions the JSON layout so downstream tooling can detect
// format changes. v2 added the upcall micro-benchmarks and the scenarios
// section (slow-path saturation summaries); v3 records the host's
// GOMAXPROCS and a per-result worker count, so multi-worker results are
// no longer conflated with single-core runs (the committed BENCH_pr2/pr3
// files were measured on a num_cpu=1 host, which their multi-worker
// figures silently inherited); v4 adds the upcall_residence_*
// micro-benchmarks, flow-setup latency (fct_*) fields on scenario rows,
// and the portfairness adaptiveraw ablation scenario; v5 adds the chaos
// fault-injection scenarios and the self-healing fields on scenario rows
// (handler_restarts, breaker_trips, recovery_sec — recovery_sec is -1 for
// scenarios without a fault schedule); v6 adds the telemetry_*
// micro-benchmarks (the sharded counter/histogram hot-path cost the gate
// now watches), runs the upcall micro-benchmarks with a live metrics
// registry attached — the gate measures the instrumented path, not the
// nil-hub fast path — and exports each scenario's end-of-run telemetry
// snapshot in the metrics field; v7 adds the FleetChaos-* scenario rows
// (the N-node cluster fabric under node death, controller partition and
// push failures) and their containment fields (blast_radius_frac,
// failover_sec, acl_convergence_sec — -1/-1 on single-box rows); v8 adds
// the trace_replay_* micro-benchmarks (mmap'd zero-copy trace ingest:
// decode, decode+burst-dispatch, parallel replay) and the Replay-*
// scenario rows with their achieved-ingest mpps field.
const BenchSchema = "tse-bench/v8"

// BenchResult is one measured micro-benchmark in the JSON report.
type BenchResult struct {
	// Name identifies the benchmark, stable across PRs (the perf
	// trajectory is a join on this field).
	Name string `json:"name"`
	// NsPerOp, AllocsPerOp, BytesPerOp mirror testing.BenchmarkResult.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// N is the iteration count the timing is averaged over.
	N int `json:"n"`
	// Workers is the worker/goroutine count of the measurement: 0 for a
	// plain single-goroutine benchmark, the pool size for datapath
	// benches, GOMAXPROCS for RunParallel benches. Joined with the
	// report's GoMaxProcs it tells whether a multi-worker figure had real
	// cores behind it.
	Workers int `json:"workers,omitempty"`
	// Extra carries benchmark-specific dimensions (mask counts etc.).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// ScenarioResult summarises one dataplane scenario run: the
// upcall-saturation suite records the slow-path overload regime (peak
// masks, drops, victim throughput) so the BENCH_*.json trajectory captures
// behaviour, not just hot-path timings.
type ScenarioResult struct {
	// Name identifies the scenario configuration, stable across PRs.
	Name string `json:"name"`
	// Workers is the PMD worker count of the run.
	Workers int `json:"workers"`
	// PeakMasks is the MFC mask high-water mark (Observation 1's |M|);
	// PeakBacklog the upcall-queue high-water mark.
	PeakMasks   int `json:"peak_masks"`
	PeakBacklog int `json:"peak_backlog"`
	// Enqueued..Handled total the upcall admission outcomes over the run.
	Enqueued   int `json:"enqueued"`
	Deduped    int `json:"deduped"`
	QueueDrops int `json:"queue_drops"`
	QuotaDrops int `json:"quota_drops"`
	Handled    int `json:"handled"`
	// VictimPreGbps/UnderGbps/PostGbps average total victim throughput
	// before, during, and after the attack window.
	VictimPreGbps   float64 `json:"victim_pre_gbps"`
	VictimUnderGbps float64 `json:"victim_under_gbps"`
	VictimPostGbps  float64 `json:"victim_post_gbps"`
	// FctP50UnderSec/FctP99UnderSec are the worst per-second flow-setup
	// latency percentiles during the attack window, in virtual seconds of
	// upcall residence (-1 when the run handled no upcalls in the window).
	FctP50UnderSec int `json:"fct_p50_under_sec"`
	FctP99UnderSec int `json:"fct_p99_under_sec"`
	// HandlerRestarts and BreakerTrips total the supervisor respawns and
	// breaker trip-opens over the run; RecoverySec is the chaos recovery
	// bound (seconds from first injected fault until the victims' flow
	// setup is back inside 1.5x its pre-fault p99; -1 when no fault was
	// injected or the run never recovered).
	HandlerRestarts int `json:"handler_restarts"`
	BreakerTrips    int `json:"breaker_trips"`
	RecoverySec     int `json:"recovery_sec"`
	// Fleet containment metrics, meaningful on FleetChaos-* rows only:
	// the fraction of fleet victims degraded through the fault window,
	// the dead node's tenants' service gap in seconds (-1 = never
	// recovered / no failover), and the worst fabric-wide ACL
	// convergence of any generation that converged (-1 = none).
	// Single-box scenario rows carry 0/-1/-1.
	BlastRadiusFrac   float64 `json:"blast_radius_frac"`
	FailoverSec       int     `json:"failover_sec"`
	ACLConvergenceSec int     `json:"acl_convergence_sec"`
	// Mpps is the achieved ingest rate of Replay-* rows — millions of
	// packets per wall second sustained through decode plus
	// classification; 0 on virtual-time scenario rows, where wall-clock
	// rate is meaningless.
	Mpps float64 `json:"mpps,omitempty"`
	// WallMs is the host wall-clock time of the run (informational; the
	// scenario itself is virtual-time deterministic).
	WallMs float64 `json:"wall_ms"`
	// Metrics is the run's end-of-run telemetry registry snapshot: every
	// nonzero counter total and gauge level (histograms are omitted — the
	// fct_* fields already carry the quantiles). Process-level gauges
	// (tse_up, tse_goroutines) are excluded so the map stays
	// deterministic.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the machine-readable perf snapshot tsebench -json emits.
type BenchReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the scheduler's parallelism at measurement time: the
	// number of cores multi-worker results could actually use. On a
	// GoMaxProcs=1 host, worker-scaling figures measure scheduling
	// overhead, not parallel speedup — record it so they are never again
	// read as if cores were behind them.
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []BenchResult    `json:"results"`
	Scenarios  []ScenarioResult `json:"scenarios,omitempty"`
}

// populateMasks installs n entries under n distinct masks (prefix
// combinations over ip_src/ip_dst/tp_dst), the synthetic TSE attack shape
// the hot-path benchmarks scan. It mirrors populateDistinctMasks in
// internal/tss/tss_test.go (unreachable from here without exporting a
// bench-only helper); keep the two in sync so the JSON trajectory stays
// comparable with BenchmarkLookupMasks.
func populateMasks(c *tss.Classifier, l *bitvec.Layout, n int) error {
	sip, _ := l.FieldIndex("ip_src")
	dip, _ := l.FieldIndex("ip_dst")
	dp, _ := l.FieldIndex("tp_dst")
	count := 0
	for k := 0; k <= 32 && count < n; k++ {
		for i := 1; i <= 32 && count < n; i++ {
			for j := 1; j <= 16 && count < n; j++ {
				mask := bitvec.PrefixMask(l, sip, i).Or(bitvec.PrefixMask(l, dp, j))
				key := bitvec.NewVec(l)
				key.SetFieldBit(l, sip, i-1)
				key.SetFieldBit(l, dp, j-1)
				if k > 0 {
					mask = mask.Or(bitvec.PrefixMask(l, dip, k))
					key.SetFieldBit(l, dip, k-1)
				}
				e := &tss.Entry{Key: key.And(mask), Mask: mask, Action: flowtable.Drop}
				if err := c.Insert(e, 0); err != nil {
					return err
				}
				count++
			}
		}
	}
	if count < n {
		return fmt.Errorf("benchjson: could only build %d of %d masks", count, n)
	}
	return nil
}

// benchVictimKey is the benign web flow used as the probe header.
func benchVictimKey() bitvec.Vec {
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	set := func(name string, v uint64) {
		i, _ := l.FieldIndex(name)
		h.SetField(l, i, v)
	}
	set("ip_src", 0x08080808)
	set("ip_dst", 0xc0a80002)
	set("ip_proto", 6)
	set("tp_src", 40000)
	set("tp_dst", 80)
	return h
}

// BenchJSON measures the hot-path benchmark suite and returns the report.
// The suite is intentionally small (a few seconds) and stable-named so
// successive PRs' JSON files diff into a perf trajectory.
func BenchJSON() (*BenchReport, error) {
	rep := &BenchReport{
		Schema:     BenchSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	addW := func(name string, workers int, extra map[string]float64, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rep.Results = append(rep.Results, BenchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			Workers:     workers,
			Extra:       extra,
		})
	}
	add := func(name string, extra map[string]float64, fn func(b *testing.B)) {
		addW(name, 0, extra, fn)
	}

	// TSS mask-scan cost (Observation 1): full-miss scan at |M| masks.
	// The default classifier stages its probes; the 4096-point also runs
	// the unstaged ablation so the staged win stays visible in one file.
	l := bitvec.IPv4Tuple
	for _, masks := range []int{16, 256, 4096} {
		for _, unstaged := range []bool{false, true} {
			if unstaged && masks != 4096 {
				continue
			}
			c := tss.New(l, tss.Options{DisableOverlapCheck: true, DisableStagedLookup: unstaged})
			if err := populateMasks(c, l, masks); err != nil {
				return nil, err
			}
			miss := bitvec.NewVec(l)
			sip, _ := l.FieldIndex("ip_src")
			miss.SetField(l, sip, 0xffffffff)
			name := fmt.Sprintf("tss_lookup_miss_masks_%d", masks)
			if unstaged {
				name += "_unstaged"
			}
			add(name, map[string]float64{"masks": float64(masks)},
				func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						c.Lookup(miss, 0)
					}
				})
		}
	}

	// Parallel miss scan over one shared classifier: every goroutine holds
	// its own Handle, so the snapshot read path runs lock-free. Workers
	// records GOMAXPROCS — on a single-core host this measures the absence
	// of reader contention, not parallel speedup.
	{
		c := tss.New(l, tss.Options{DisableOverlapCheck: true})
		if err := populateMasks(c, l, 4096); err != nil {
			return nil, err
		}
		miss := bitvec.NewVec(l)
		sip, _ := l.FieldIndex("ip_src")
		miss.SetField(l, sip, 0xffffffff)
		addW("tss_lookup_parallel_masks_4096", runtime.GOMAXPROCS(0),
			map[string]float64{"masks": 4096},
			func(b *testing.B) {
				b.ReportAllocs()
				b.RunParallel(func(pb *testing.PB) {
					hd := c.NewHandle()
					for pb.Next() {
						hd.Lookup(miss, 0)
					}
				})
			})
	}

	// Victim lookup under the co-located attack per §5.2 use case.
	for _, u := range []flowtable.UseCase{flowtable.Baseline, flowtable.Dp, flowtable.SipDp} {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
		if err != nil {
			return nil, err
		}
		victim := benchVictimKey()
		sw.Process(victim, 0)
		if u != flowtable.Baseline {
			tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
			if err != nil {
				return nil, err
			}
			core.Replay(sw, tr, 0)
		}
		add(fmt.Sprintf("victim_lookup_%s", u),
			map[string]float64{"masks": float64(sw.MFC().MaskCount())},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sw.MFC().Lookup(victim, 0)
				}
			})
	}

	// Attack-regime datapath throughput vs worker count: every packet of
	// the co-located flood pays the shared mask scan (EMCs off — attack
	// headers never repeat), the regime PR 1 measured flat across workers
	// because all PMDs serialised on the classifier's reader/writer lock.
	// With lock-free snapshots the scan itself is contention-free; whether
	// added workers buy wall-clock throughput depends on GoMaxProcs (a
	// 1-core host runs the workers sequentially, and this file says so).
	{
		tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
		attackTr, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 3})
		if err != nil {
			return nil, err
		}
		trace := attackTr.Headers
		for _, workers := range []int{1, 2, 4} {
			sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
			if err != nil {
				return nil, err
			}
			pool, err := datapath.New(datapath.Config{Switch: sw, Workers: workers, DisableEMC: true})
			if err != nil {
				return nil, err
			}
			out := pool.ProcessBatch(trace, 0, nil) // warm: install megaflows
			name := fmt.Sprintf("datapath_attack_workers_%d", workers)
			addW(name, workers, map[string]float64{
				"pkts_per_op": float64(len(trace)),
				"masks":       float64(sw.MFC().MaskCount()),
			}, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out = pool.ProcessBatch(trace, 1, out)
				}
			})
			// Record throughput explicitly so the trajectory diff reads in
			// pkts/s without dividing by the trace length.
			last := &rep.Results[len(rep.Results)-1]
			if last.NsPerOp > 0 {
				last.Extra["pkts_per_sec"] = float64(len(trace)) / (last.NsPerOp / 1e9)
			}
		}
	}

	// EMC exact-match lookup, hit and miss.
	emc := microflow.New(0)
	hit := benchVictimKey()
	emc.Insert(hit, microflow.Result{Action: flowtable.Allow})
	miss := benchVictimKey()
	dp, _ := l.FieldIndex("tp_dst")
	miss.SetField(l, dp, 81)
	add("emc_lookup_hit", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			emc.Lookup(hit)
		}
	})
	add("emc_lookup_miss", nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			emc.Lookup(miss)
		}
	})

	// Upcall subsystem hot paths: the pending-table dedup hit (the cost a
	// same-flow miss burst pays per packet after the first) and the full
	// submit→queue→handle round trip. The round trip runs against a
	// suppressed megaflow (monitor-deleted with the quirk active), the one
	// slow-path shape that is stationary under repetition: classification
	// happens, no install mutates the cache. Both subsystems run with a
	// live metrics registry attached — the gate measures the telemetry
	// bill the production path pays, not the nil-registry fast path.
	{
		tbl := flowtable.UseCaseACL(flowtable.Dp, flowtable.ACLParams{})
		sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
		if err != nil {
			return nil, err
		}
		sub, err := upcall.New(sw, 1, upcall.Options{Metrics: telemetry.NewRegistry(4)})
		if err != nil {
			return nil, err
		}
		h := benchVictimKey()
		sw.Process(h, 0)
		sw.DeleteMegaflows(func(*tss.Entry) bool { return true })
		add("upcall_roundtrip_suppressed", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sub.SubmitSync(0, h, 0)
			}
		})
		// Park one upcall as pending so every Submit coalesces onto it.
		sub2, err := upcall.New(sw, 1, upcall.Options{Metrics: telemetry.NewRegistry(4)})
		if err != nil {
			return nil, err
		}
		sub2.Submit(0, h, 0)
		add("upcall_submit_dedup", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sub2.Submit(0, h, 0)
			}
		})
	}

	// Telemetry primitive hot paths: the sharded-counter increment every
	// instrumented touch pays and the histogram observe on the upcall
	// residence path. Both must stay allocation-free — the whole padded
	// per-shard design exists so instrumentation never shows up in the
	// families above.
	{
		reg := telemetry.NewRegistry(4)
		ctr := reg.Counter("bench_ctr", "benchmark counter")
		add("telemetry_counter_inc", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctr.Inc(0)
			}
		})
		hist := reg.Histogram("bench_hist", "benchmark histogram",
			[]int64{1, 2, 4, 8, 16})
		add("telemetry_hist_observe", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hist.Observe(0, int64(i&15))
			}
		})
	}

	// Flow-setup latency accounting: the per-pop histogram update every
	// handled upcall now pays, and the quantile read the sampler and the
	// revalidator's residence sensor issue once per virtual second. Both
	// sit on the slow-path service loop, so the gate watches them.
	{
		var h upcall.LatencyHist
		sec := int64(0)
		add("upcall_residence_observe", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Observe(sec & 15)
				sec++
			}
		})
		var q upcall.LatencyHist
		for s := int64(0); s < 64; s++ {
			q.Observe(s & 15)
		}
		add("upcall_residence_quantile", nil, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.P99()
			}
		})
	}

	// Megaflow-install cost at 4096 masks: the copy-on-write publish bill
	// of the lock-free read path, per install (the writer re-copies the
	// O(|M|) probe mirror on every publish) vs amortised over a 32-entry
	// InsertBatch transaction — the handler-drain burst shape, which
	// publishes once per burst. Installs are idempotent refreshes
	// round-robin over the 4096 seeded megaflows (the one-entry-per-mask
	// attack shape), so the classifier stays in steady state for any
	// iteration count and the publish — the quantity under test —
	// dominates. per_install_ns in the batched row is the direct
	// comparison figure; the regression gate watches both rows.
	{
		const burst = 32
		mkClassifier := func() (*tss.Classifier, error) {
			c := tss.New(l, tss.Options{DisableOverlapCheck: true})
			if err := populateMasks(c, l, 4096); err != nil {
				return nil, err
			}
			return c, nil
		}
		c1, err := mkClassifier()
		if err != nil {
			return nil, err
		}
		seed := c1.Entries()
		n := 0
		add("tss_install_masks_4096", map[string]float64{"masks": 4096},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e := seed[n%len(seed)]
					n++
					c1.Insert(&tss.Entry{Key: e.Key, Mask: e.Mask, Action: flowtable.Drop}, 0)
				}
			})
		c2, err := mkClassifier()
		if err != nil {
			return nil, err
		}
		seed2 := c2.Entries()
		es := make([]*tss.Entry, burst)
		n = 0
		add("tss_install_batched_masks_4096",
			map[string]float64{"masks": 4096, "batch": burst},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for j := range es {
						e := seed2[n%len(seed2)]
						n++
						es[j] = &tss.Entry{Key: e.Key, Mask: e.Mask, Action: flowtable.Drop}
					}
					c2.InsertBatch(es, 0)
				}
			})
		// One batched op installs `burst` megaflows; record the per-install
		// figure so the trajectory reads without dividing.
		last := &rep.Results[len(rep.Results)-1]
		last.Extra["per_install_ns"] = last.NsPerOp / burst
	}

	// Trace-replay ingest: the wire-rate path tsebench -replay drives.
	// trace_replay_decode is the pure mmap-image→SoA-batch decode;
	// trace_replay_burst adds the serial dispatch through the pool's
	// 32-packet bursts on a warm EMC. Both must stay at 0 allocs/op —
	// the zero-copy contract of the ingest path — and the gate watches
	// their timings. trace_replay_parallel replays the same mix through a
	// 4-worker pool with goroutine dispatch (on a 1-core host this prices
	// the handoff, not parallel ingest; see GoMaxProcs).
	{
		mkImage := func(attack bool) ([]byte, error) {
			opts := trc.SynthOptions{Seconds: 1, Victims: 16, VictimPps: 500, Ports: 4}
			if attack {
				tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
				atk, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 1})
				if err != nil {
					return nil, err
				}
				opts.Attack, opts.AttackPps = atk, 500
			}
			var buf trc.Buffer
			w, err := trc.NewWriter(&buf, bitvec.IPv4Tuple)
			if err != nil {
				return nil, err
			}
			if err := trc.Synthesize(w, opts); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}
		image, err := mkImage(false)
		if err != nil {
			return nil, err
		}
		rd, err := trc.NewReader(image)
		if err != nil {
			return nil, err
		}
		batch := trc.NewBatch(rd.Words(), trc.DefaultChunk)
		add("trace_replay_decode", map[string]float64{"chunk": trc.DefaultChunk},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if rd.Next(batch) == 0 {
						rd.Reset()
					}
				}
			})
		mkPool := func(workers int) (*datapath.Pool, error) {
			tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
			sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
			if err != nil {
				return nil, err
			}
			return datapath.New(datapath.Config{
				Switch: sw, Workers: workers, Ports: 4, PrefetchDepth: 8})
		}
		pool, err := mkPool(1)
		if err != nil {
			return nil, err
		}
		rr := &trc.Replayer{Pool: pool, Serial: true}
		rd.Reset()
		rr.Run(rd) // warm: EMC primed, dispatch buffers grown
		rd.Reset()
		add("trace_replay_burst", map[string]float64{"chunk": trc.DefaultChunk},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					n := rd.Next(batch)
					if n == 0 {
						rd.Reset()
						continue
					}
					rr.Dispatch(batch, 0)
				}
			})
		pool4, err := mkPool(4)
		if err != nil {
			return nil, err
		}
		rd.Reset()
		rr4 := &trc.Replayer{Pool: pool4}
		addW("trace_replay_parallel", 4,
			map[string]float64{"pkts_per_op": float64(rd.Count())},
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rd.Reset()
					rr4.Run(rd)
				}
			})
	}

	// The upcall-saturation suite: the slow-path overload regime of the
	// paper (every attack packet a flow miss), unbounded vs bounded. The
	// series is folded by the same summarise the `saturation` experiment
	// prints, so the JSON trajectory and the table cannot diverge.
	runScenario := func(sc *dataplane.Scenario) error {
		hub := telemetry.NewHub()
		sc.Telemetry = hub
		start := time.Now()
		samples, err := sc.Run()
		if err != nil {
			return err
		}
		wall := time.Since(start)
		s := summarise(samples)
		restarts, trips := 0, 0
		faultSec, recovery := -1, -1
		for _, smp := range samples {
			if u := smp.Upcall; u != nil {
				restarts += u.HandlerRestarts
				trips += u.BreakerTrips
				if faultSec < 0 && (u.HandlerPanics > 0 || u.StallsDetected > 0 ||
					u.InstallErrors > 0 || u.SweepStalls > 0) {
					faultSec = smp.Sec
				}
			}
		}
		if faultSec >= 0 {
			recovery = chaosRecovery(samples, faultSec)
		}
		metrics := make(map[string]float64)
		for _, p := range hub.Reg.Snapshot().Points {
			if p.Kind == telemetry.KindHistogram || p.Value == 0 ||
				p.Name == "tse_up" || p.Name == "tse_goroutines" {
				continue
			}
			metrics[p.Name] = p.Value
		}
		rep.Scenarios = append(rep.Scenarios, ScenarioResult{
			Name:              sc.Name,
			Workers:           sc.Workers,
			FailoverSec:       -1,
			ACLConvergenceSec: -1,
			PeakMasks:         s.PeakMasks,
			PeakBacklog:       s.PeakBacklog,
			Enqueued:          s.Enqueued,
			Deduped:           s.Deduped,
			QueueDrops:        s.QueueDrops,
			QuotaDrops:        s.QuotaDrops,
			Handled:           s.Handled,
			VictimPreGbps:     s.PreGbps,
			VictimUnderGbps:   s.UnderGbps,
			VictimPostGbps:    s.PostGbps,
			FctP50UnderSec:    s.FctP50Under,
			FctP99UnderSec:    s.FctP99Under,
			HandlerRestarts:   restarts,
			BreakerTrips:      trips,
			RecoverySec:       recovery,
			WallMs:            float64(wall.Nanoseconds()) / 1e6,
			Metrics:           metrics,
		})
		return nil
	}
	for _, bounded := range []bool{false, true} {
		sc, err := dataplane.SaturationScenario(2, bounded)
		if err != nil {
			return nil, err
		}
		if err := runScenario(sc); err != nil {
			return nil, err
		}
	}

	// The port-fairness suite: worker-keyed vs port-keyed vs adaptive
	// quotas under the same flood + policy churn (see the portfairness
	// experiment). Their victim_under rows are the fairness trajectory;
	// adaptiveraw is the un-smoothed single-input controller kept as the
	// flap ablation.
	for _, mode := range []dataplane.PortFairnessMode{
		dataplane.FairnessWorkerKeyed,
		dataplane.FairnessPortKeyed,
		dataplane.FairnessAdaptiveRaw,
		dataplane.FairnessAdaptive,
	} {
		sc, err := dataplane.PortFairnessScenario(mode)
		if err != nil {
			return nil, err
		}
		if err := runScenario(sc); err != nil {
			return nil, err
		}
	}

	// The chaos suite: the same attack with the slow path failing mid-flood
	// (see the chaos experiment). The unsupervised row pins the wedge's
	// cost in the trajectory; the supervised row's recovery_sec is the
	// self-healing bound the CI smoke asserts.
	for _, mode := range []dataplane.ChaosMode{
		dataplane.ChaosUnsupervised,
		dataplane.ChaosSupervised,
	} {
		sc, err := dataplane.ChaosScenario(mode)
		if err != nil {
			return nil, err
		}
		if err := runScenario(sc); err != nil {
			return nil, err
		}
	}

	// The fleet suite: the cluster fabric under the fleetchaos fault
	// burst. The unsupervised row pins the uncontained blast radius in
	// the trajectory; the supervised row's failover_sec is the
	// detection-plus-recovery bound the CI fleet smoke asserts.
	for _, mode := range []cluster.FleetMode{
		cluster.FleetUnsupervised,
		cluster.FleetSupervised,
	} {
		cfg, err := cluster.FleetChaosConfig(mode, nil)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		_, res, err := cluster.RunFleetChaos(mode, nil)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		row := ScenarioResult{
			Name:              "FleetChaos-" + string(mode),
			Workers:           cfg.Nodes * cfg.WorkersPerNode,
			BlastRadiusFrac:   res.BlastRadiusFrac,
			FailoverSec:       int(res.FailoverSec),
			ACLConvergenceSec: int(res.ACLConvergenceSec),
			RecoverySec:       int(res.FailoverSec),
			FctP50UnderSec:    -1,
			FctP99UnderSec:    -1,
			WallMs:            float64(wall.Nanoseconds()) / 1e6,
		}
		pre, under := 0.0, 0.0
		for i, w := range cfg.Workloads {
			if w.Attacker {
				continue
			}
			pre += res.PreFault[i]
			under += res.FaultWin[i]
		}
		row.VictimPreGbps, row.VictimUnderGbps = pre, under
		for _, s := range res.Samples {
			for _, ns := range s.Nodes {
				if ns.Masks > row.PeakMasks {
					row.PeakMasks = ns.Masks
				}
				if ns.Backlog > row.PeakBacklog {
					row.PeakBacklog = ns.Backlog
				}
				row.Enqueued += ns.Enqueued
				row.QueueDrops += ns.QueueDrops
				row.QuotaDrops += ns.QuotaDrops
				row.Handled += ns.Handled
			}
		}
		rep.Scenarios = append(rep.Scenarios, row)
	}

	// The replay suite: achieved wall-clock ingest for the two canned
	// traces. Victim-mix is the wire-rate ceiling (the CI smoke asserts
	// it nonzero); the TSE row pins the collapse-under-attack rate and
	// mask count in the trajectory. The virtual-time fields carry their
	// not-applicable conventions (-1).
	for _, preset := range []dataplane.ReplayPreset{
		dataplane.ReplayVictimMix,
		dataplane.ReplayTSE,
	} {
		rd, _, err := dataplane.ReplayScenario(preset, 2)
		if err != nil {
			return nil, err
		}
		res, err := dataplane.RunReplay(dataplane.ReplayConfig{
			PrefetchDepth: 8, TickSwitch: true}, rd)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, ScenarioResult{
			Name:              "Replay-" + string(preset),
			Workers:           1,
			PeakMasks:         res.Masks,
			FctP50UnderSec:    -1,
			FctP99UnderSec:    -1,
			RecoverySec:       -1,
			FailoverSec:       -1,
			ACLConvergenceSec: -1,
			Mpps:              res.Mpps,
			WallMs:            res.WallMs,
		})
	}
	return rep, nil
}

// WriteBenchJSON runs the suite and writes the report to path, logging
// progress to w.
func WriteBenchJSON(w io.Writer, path string) error {
	fmt.Fprintf(w, "running hot-path benchmark suite (this takes a few seconds)...\n")
	rep, err := BenchJSON()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-28s %12.1f ns/op %6d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	for _, s := range rep.Scenarios {
		fmt.Fprintf(w, "%-36s peak_masks=%-5d drops=%-6d under=%.2fG (%.0f ms)\n",
			s.Name, s.PeakMasks, s.QueueDrops+s.QuotaDrops, s.VictimUnderGbps, s.WallMs)
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
