package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"tse/internal/alt"
	"tse/internal/analysis"
	"tse/internal/bitvec"
	"tse/internal/cloud"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/mitigation"
	"tse/internal/vswitch"
)

func init() {
	register(Experiment{
		ID:    "constructions",
		Title: "Fig. 2/3/5 — MFC constructions for the toy ACLs",
		Run:   runConstructions,
	})
	register(Experiment{
		ID:    "masks",
		Title: "§5.2 — attainable MFC masks per use case (co-located TSE)",
		Run:   runMaskCounts,
	})
	register(Experiment{
		ID:    "ipv6",
		Title: "§5.4 — IPv6 exact-match corner: few masks, entry blow-up",
		Run:   runIPv6,
	})
	register(Experiment{
		ID:    "cms",
		Title: "§7 — CMS API restrictions bound attainable masks",
		Run:   runCMS,
	})
	register(Experiment{
		ID:    "alt",
		Title: "§1/§7 — alternative classifiers are insensitive to TSE state",
		Run:   runAlt,
	})
	register(Experiment{
		ID:    "guard",
		Title: "§8 — MFCGuard restores near-baseline lookup cost",
		Run:   runGuard,
	})
	register(Experiment{
		ID:    "theorems",
		Title: "Thm. 4.1/4.2 — space-time trade-off, constructions vs bounds",
		Run:   runTheorems,
	})
}

func runConstructions(w io.Writer) error {
	type tc struct {
		name     string
		table    *flowtable.Table
		strategy map[string]vswitch.Strategy
		headers  func() []bitvec.Vec
	}
	allHYP := func() []bitvec.Vec {
		var hs []bitvec.Vec
		for v := uint64(0); v < 8; v++ {
			h := bitvec.NewVec(bitvec.HYP)
			h.SetField(bitvec.HYP, 0, v)
			hs = append(hs, h)
		}
		return hs
	}
	allHYP2 := func() []bitvec.Vec {
		var hs []bitvec.Vec
		for a := uint64(0); a < 8; a++ {
			for b := uint64(0); b < 16; b++ {
				h := bitvec.NewVec(bitvec.HYP2)
				h.SetField(bitvec.HYP2, 0, a)
				h.SetField(bitvec.HYP2, 1, b)
				hs = append(hs, h)
			}
		}
		return hs
	}
	cases := []tc{
		{"Fig. 2 (exact-match strategy, Fig. 1 ACL)", flowtable.Fig1(),
			map[string]vswitch.Strategy{"HYP": vswitch.StrategyExact}, allHYP},
		{"Fig. 3 (wildcarding strategy, Fig. 1 ACL)", flowtable.Fig1(), nil, allHYP},
		{"Fig. 5 (two headers, Fig. 4 ACL)", flowtable.Fig4(), nil, allHYP2},
	}
	for _, c := range cases {
		sw, err := vswitch.New(vswitch.Config{Table: c.table, DisableMicroflow: true,
			Strategy: c.strategy})
		if err != nil {
			return err
		}
		for _, h := range c.headers() {
			sw.Process(h, 0)
		}
		fmt.Fprintf(w, "%s\n", c.name)
		fmt.Fprintf(w, "  masks=%d entries=%d\n", sw.MFC().MaskCount(), sw.MFC().EntryCount())
		if sw.MFC().EntryCount() <= 16 {
			for _, e := range sw.MFC().Entries() {
				fmt.Fprintf(w, "    %s\n", e.Format(c.table.Layout()))
			}
		}
	}
	fmt.Fprintf(w, "paper: Fig. 2 = 1 mask / 8 entries; Fig. 3 = 3 masks / 4 entries; Fig. 5 = 13 masks\n")
	return nil
}

func runMaskCounts(w io.Writer) error {
	paper := map[flowtable.UseCase]string{
		flowtable.Baseline: "1",
		flowtable.Dp:       "~17",
		flowtable.SpDp:     "~256",
		flowtable.SipDp:    "~512",
		flowtable.SipSpDp:  "~8200",
	}
	fmt.Fprintf(w, "%-10s %10s %10s %10s %12s\n",
		"use case", "paper", "measured", "entries", "trace pkts")
	for _, u := range flowtable.UseCases {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		if u == flowtable.Baseline {
			fmt.Fprintf(w, "%-10s %10s %10d %10d %12d\n", u, paper[u], 1, 1, 0)
			continue
		}
		tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
		if err != nil {
			return err
		}
		sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
		if err != nil {
			return err
		}
		st := core.Replay(sw, tr, 0)
		fmt.Fprintf(w, "%-10s %10s %10d %10d %12d\n",
			u, paper[u], st.MasksAfter, st.EntriesAfter, tr.Len())
	}
	return nil
}

func runIPv6(w io.Writer) error {
	l := bitvec.IPv6Tuple
	tbl := flowtable.New(l)
	dp, _ := l.FieldIndex("tp_dst")
	key := bitvec.NewVec(l)
	key.SetField(l, dp, 80)
	tbl.MustAdd(&flowtable.Rule{Name: "#1", Priority: 10, Action: flowtable.Allow,
		Key: key, Mask: bitvec.FieldMask(l, dp)})
	sip, _ := l.FieldIndex("ip6_src")
	allowSrc := bitvec.NewVec(l)
	allowSrc.SetFieldBytes(l, sip, []byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	tbl.MustAdd(&flowtable.Rule{Name: "#2", Priority: 5, Action: flowtable.Allow,
		Key: allowSrc, Mask: bitvec.FieldMask(l, sip)})
	tbl.MustAdd(&flowtable.Rule{Name: "#4", Priority: 0, Action: flowtable.Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})

	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true,
		Strategy: map[string]vswitch.Strategy{"ip6_src": vswitch.StrategyExact}})
	if err != nil {
		return err
	}
	tr, err := core.General(l, nil, 20000, core.GeneralOptions{
		Fields: []string{"ip6_src", "tp_dst"}, Seed: 42})
	if err != nil {
		return err
	}
	st := core.Replay(sw, tr, 0)
	fmt.Fprintf(w, "SipDp over IPv6, ip6_src handled by exact matching (as observed in OVS):\n")
	fmt.Fprintf(w, "  random packets: %d\n  masks:   %d (a handful)\n  entries: %d (≈ one per packet: memory/CPU blow-up, not lookup slow-down)\n",
		st.Packets, st.MasksAfter, st.EntriesAfter)
	fmt.Fprintf(w, "paper: \"only a handful of masks but hundreds of thousands of MFC entries\"\n")
	return nil
}

func runCMS(w io.Writer) error {
	fmt.Fprintf(w, "%-12s %-28s %10s\n", "CMS", "filterable ingress fields", "max masks")
	for _, c := range []cloud.CMS{cloud.OpenStack, cloud.Kubernetes, cloud.Calico} {
		fmt.Fprintf(w, "%-12s %-28s %10d\n", c.Name, strings.Join(c.IngressFields, ","), c.MaxMasks(false))
	}
	fmt.Fprintf(w, "%-12s %-28s %10d\n", "Calico", "ingress+egress (+ip_dst)", cloud.Calico.MaxMasks(true))
	fmt.Fprintf(w, "paper (§7): 512 / 512 / 8192; egress ≈ 200 thousand\n")
	return nil
}

func runAlt(w io.Writer) error {
	tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	ht, err := alt.NewHTrie(tbl)
	if err != nil {
		return err
	}
	hc, err := alt.NewHyperCuts(tbl, 0)
	if err != nil {
		return err
	}
	classifiers := []alt.Classifier{alt.NewLinear(tbl), ht, hc}

	// TSS under attack, for contrast.
	sw, err := vswitch.New(vswitch.Config{Table: flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{}),
		DisableMicroflow: true})
	if err != nil {
		return err
	}
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{SkipAllowCombos: true})
	if err != nil {
		return err
	}

	probe := bitvec.NewVec(bitvec.IPv4Tuple)
	probe.SetField(bitvec.IPv4Tuple, 0, 0x12345678)
	probe.SetField(bitvec.IPv4Tuple, 4, 9999)

	measure := func(f func()) time.Duration {
		const iters = 2000
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start) / iters
	}

	fmt.Fprintf(w, "%-20s %16s %16s\n", "classifier", "cost pre-attack", "cost under attack")
	for _, c := range classifiers {
		c.Lookup(probe)
		pre := c.Cost()
		preT := measure(func() { c.Lookup(probe) })
		// "Attack": classify the whole adversarial trace (no state changes).
		for _, h := range tr.Headers {
			c.Lookup(h)
		}
		c.Lookup(probe)
		post := c.Cost()
		postT := measure(func() { c.Lookup(probe) })
		fmt.Fprintf(w, "%-20s %6d steps %6s %6d steps %6s\n",
			c.Name(), pre, preT.Round(time.Nanosecond), post, postT.Round(time.Nanosecond))
	}
	// TSS: probes explode with the attack.
	sw.Process(probe, 0)
	_, preProbes, _ := sw.MFC().Lookup(probe, 0)
	core.Replay(sw, tr, 0)
	_, postProbes, _ := sw.MFC().Lookup(probe, 0)
	fmt.Fprintf(w, "%-20s %6d probes        %6d probes   (masks: %d)\n",
		"tss-megaflow-cache", preProbes, postProbes, sw.MFC().MaskCount())
	fmt.Fprintf(w, "paper: tries/HyperCuts \"seem to be unaffected by the TSE attack\"\n")
	return nil
}

func runGuard(w io.Writer) error {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		return err
	}
	l := bitvec.IPv4Tuple
	victim := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	victim.SetField(l, dp, 80)
	sw.Process(victim, 0)

	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
	if err != nil {
		return err
	}
	core.Replay(sw, tr, 0)
	_, before, _ := sw.MFC().Lookup(victim, 0)
	masksBefore := sw.MFC().MaskCount()

	g, err := mitigation.New(mitigation.Config{Switch: sw, MaskThreshold: 100, CPUThreshold: 200})
	if err != nil {
		return err
	}
	deleted := g.Tick(10, mitigation.SlowPathCPUPct(100))
	_, after, _ := sw.MFC().Lookup(victim, 11)
	fmt.Fprintf(w, "SipDp attack, then one MFCGuard sweep (m_th=100):\n")
	fmt.Fprintf(w, "  masks: %d -> %d (deleted %d adversarial megaflows)\n",
		masksBefore, sw.MFC().MaskCount(), deleted)
	fmt.Fprintf(w, "  victim lookup probes: %d -> %d (near-baseline)\n", before, after)
	fmt.Fprintf(w, "  slow-path CPU if attack continues at given rate (Fig. 9c):\n")
	for _, pps := range []float64{10, 100, 1000, 5000, 10000, 20000, 50000} {
		fmt.Fprintf(w, "    %7.0f pps -> %5.1f %%\n", pps, mitigation.SlowPathCPUPct(pps))
	}
	fmt.Fprintf(w, "paper: ~15%% at 1k pps, ~80%% at 10k pps, saturation ~250%%\n")
	return nil
}

func runTheorems(w io.Writer) error {
	l := bitvec.MustLayout(bitvec.Field{Name: "F", Width: 12})
	fmt.Fprintf(w, "Theorem 4.1, w=12: k masks vs deny entries (bound = k(2^(w/k)-1))\n")
	fmt.Fprintf(w, "%4s %12s %12s\n", "k", "bound", "constructed")
	for _, k := range []int{1, 2, 3, 4, 6, 12} {
		entries, err := analysis.KMaskConstruction(l, 0, 0xABC, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%4d %12.0f %12d\n", k, analysis.Theorem41Space(12, k), len(entries)-1)
	}
	fmt.Fprintf(w, "Theorem 4.2, SipSpDp at the wildcarding extreme: time=%d masks, space=%.0f entries\n",
		analysis.Theorem42Time([]int{32, 16, 16}),
		analysis.Theorem42Space([]int{32, 16, 16}, []int{32, 16, 16}))
	return nil
}
