package alt

import (
	"fmt"
	"math/rand"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
)

// buildAll constructs every classifier over the table, failing the test on
// construction errors.
func buildAll(t *testing.T, tbl *flowtable.Table) []Classifier {
	t.Helper()
	ht, err := NewHTrie(tbl)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHyperCuts(tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	return []Classifier{NewLinear(tbl), ht, hc}
}

func randomHeader(l *bitvec.Layout, rng *rand.Rand) bitvec.Vec {
	h := bitvec.NewVec(l)
	for f := 0; f < l.NumFields(); f++ {
		h.SetField(l, f, rng.Uint64())
	}
	return h
}

// TestAgreementOnPaperACLs: every classifier agrees with the flow table on
// the paper's ACLs for exhaustive (toy) or randomized (IPv4) headers.
func TestAgreementOnPaperACLs(t *testing.T) {
	// Toy protocols, exhaustive.
	for name, tbl := range map[string]*flowtable.Table{
		"Fig1": flowtable.Fig1(), "Fig4": flowtable.Fig4(),
	} {
		cs := buildAll(t, tbl)
		l := tbl.Layout()
		total := 1 << uint(l.Bits())
		for v := 0; v < total; v++ {
			h := bitvec.NewVec(l)
			for b := 0; b < l.Bits(); b++ {
				if v>>uint(b)&1 == 1 {
					h.SetBit(b)
				}
			}
			want := tbl.Lookup(h)
			for _, c := range cs {
				if got := c.Lookup(h); got != want {
					t.Fatalf("%s/%s: header %s -> %v, want %v",
						name, c.Name(), h.Format(l), got, want)
				}
			}
		}
	}
	// IPv4 use cases, randomized.
	rng := rand.New(rand.NewSource(11))
	for _, u := range flowtable.UseCases {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		cs := buildAll(t, tbl)
		for n := 0; n < 2000; n++ {
			h := randomHeader(tbl.Layout(), rng)
			want := tbl.Lookup(h)
			for _, c := range cs {
				if got := c.Lookup(h); got != want {
					t.Fatalf("%v/%s: mismatch (got %v want %v)", u, c.Name(), got, want)
				}
			}
		}
	}
}

// TestAgreementOnRandomPrefixTables: property test against random
// prefix-form rule tables.
func TestAgreementOnRandomPrefixTables(t *testing.T) {
	l := bitvec.HYP2
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		tbl := flowtable.New(l)
		for i := 0; i < 1+rng.Intn(8); i++ {
			key, mask := bitvec.NewVec(l), bitvec.NewVec(l)
			for f := 0; f < l.NumFields(); f++ {
				plen := rng.Intn(l.Field(f).Width + 1)
				for b := 0; b < plen; b++ {
					mask.SetFieldBit(l, f, b)
					if rng.Intn(2) == 1 {
						key.SetFieldBit(l, f, b)
					}
				}
			}
			tbl.MustAdd(&flowtable.Rule{Name: fmt.Sprintf("r%d", i), Priority: rng.Intn(5),
				Action: flowtable.Action(rng.Intn(2)), Key: key, Mask: mask})
		}
		cs := buildAll(t, tbl)
		for a := uint64(0); a < 8; a++ {
			for b := uint64(0); b < 16; b++ {
				h := bitvec.NewVec(l)
				h.SetField(l, 0, a)
				h.SetField(l, 1, b)
				want := tbl.Lookup(h)
				for _, c := range cs {
					if got := c.Lookup(h); got != want {
						t.Fatalf("trial %d %s: %03b|%04b -> %v, want %v",
							trial, c.Name(), a, b, got, want)
					}
				}
			}
		}
	}
}

// TestCostIndependentOfAttackTraffic is the §1/§7 claim: the alternative
// classifiers' lookup cost does not change no matter how much adversarial
// traffic has been classified, because they hold no per-flow state.
func TestCostIndependentOfAttackTraffic(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	cs := buildAll(t, tbl)
	probe := randomHeader(bitvec.IPv4Tuple, rand.New(rand.NewSource(3)))
	costBefore := make([]int, len(cs))
	for i, c := range cs {
		c.Lookup(probe)
		costBefore[i] = c.Cost()
	}
	// "Classify" the full co-located adversarial trace.
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range tr.Headers {
		for _, c := range cs {
			c.Lookup(h)
		}
	}
	for i, c := range cs {
		c.Lookup(probe)
		if c.Cost() != costBefore[i] {
			t.Errorf("%s: probe cost changed %d -> %d after attack traffic",
				c.Name(), costBefore[i], c.Cost())
		}
	}
}

func TestPrefixFormRejection(t *testing.T) {
	l := bitvec.HYP
	tbl := flowtable.New(l)
	// Mask 101: a gappy, non-prefix mask.
	key, mask := bitvec.NewVec(l), bitvec.NewVec(l)
	mask.SetFieldBit(l, 0, 0)
	mask.SetFieldBit(l, 0, 2)
	tbl.MustAdd(&flowtable.Rule{Name: "gappy", Priority: 1, Action: flowtable.Drop,
		Key: key, Mask: mask})
	if _, err := NewHTrie(tbl); err == nil {
		t.Error("HTrie accepted non-prefix rule")
	}
	if _, err := NewHyperCuts(tbl, 0); err == nil {
		t.Error("HyperCuts accepted non-prefix rule")
	}
}

func TestHyperCutsWideFieldRejection(t *testing.T) {
	l := bitvec.IPv6Tuple
	tbl := flowtable.New(l)
	tbl.MustAdd(&flowtable.Rule{Name: "dd", Priority: 0, Action: flowtable.Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	if _, err := NewHyperCuts(tbl, 0); err == nil {
		t.Error("HyperCuts accepted 128-bit fields")
	}
	// HTrie handles wide fields fine.
	if _, err := NewHTrie(tbl); err != nil {
		t.Errorf("HTrie rejected IPv6 table: %v", err)
	}
}

func TestLookupNoMatch(t *testing.T) {
	l := bitvec.HYP
	tbl := flowtable.New(l)
	k, m := bitvec.MustPattern(l, "111")
	tbl.MustAdd(&flowtable.Rule{Name: "only", Priority: 1, Action: flowtable.Allow, Key: k, Mask: m})
	h := bitvec.NewVec(l) // 000 matches nothing
	for _, c := range buildAll(t, tbl) {
		if got := c.Lookup(h); got != nil {
			t.Errorf("%s: want nil, got %v", c.Name(), got)
		}
	}
}

func TestTieBreakMatchesTable(t *testing.T) {
	l := bitvec.HYP
	tbl := flowtable.New(l)
	tbl.MustAdd(&flowtable.Rule{Name: "first", Priority: 5, Action: flowtable.Allow,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	tbl.MustAdd(&flowtable.Rule{Name: "second", Priority: 5, Action: flowtable.Drop,
		Key: bitvec.NewVec(l), Mask: bitvec.NewVec(l)})
	h := bitvec.NewVec(l)
	want := tbl.Lookup(h)
	for _, c := range buildAll(t, tbl) {
		if got := c.Lookup(h); got != want {
			t.Errorf("%s tie-break: got %q want %q", c.Name(), got.Name, want.Name)
		}
	}
}

func BenchmarkClassifiers(b *testing.B) {
	tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	ht, _ := NewHTrie(tbl)
	hc, _ := NewHyperCuts(tbl, 0)
	rng := rand.New(rand.NewSource(9))
	headers := make([]bitvec.Vec, 256)
	for i := range headers {
		headers[i] = randomHeader(bitvec.IPv4Tuple, rng)
	}
	for _, c := range []Classifier{NewLinear(tbl), ht, hc} {
		b.Run(c.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Lookup(headers[i%len(headers)])
			}
		})
	}
}
