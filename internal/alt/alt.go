// Package alt implements the packet classifiers the paper recommends as
// long-term replacements for TSS (§1, §7): hierarchical tries [31] and a
// HyperCuts-style decision tree [10], next to a priority linear scan as
// the correctness baseline.
//
// All three classify against the *rule set itself* rather than a per-flow
// cache, so adversarial traffic cannot inflate their state or their lookup
// cost — the structural reason they are "not vulnerable to the TSE attack".
// The top-level benchmarks contrast their lookup cost under attack with
// the exploding TSS megaflow cache.
//
// The tree classifiers require prefix-form rules: every constrained field
// matches an MSB-first prefix. The paper's ACLs (exact or fully wildcarded
// fields) are all prefix-form.
package alt

import (
	"fmt"

	"tse/internal/bitvec"
	"tse/internal/flowtable"
)

// Classifier is a packet classifier over a fixed rule set.
type Classifier interface {
	// Name identifies the algorithm.
	Name() string
	// Lookup returns the highest-priority rule matching h, or nil.
	Lookup(h bitvec.Vec) *flowtable.Rule
	// Cost returns the number of elementary steps (node visits or rule
	// comparisons) the last Lookup performed. Not safe for concurrent
	// use; intended for the evaluation harness.
	Cost() int
}

// prefixLen returns the MSB-prefix length of field f in mask, and whether
// the field's constrained bits form a pure prefix.
func prefixLen(l *bitvec.Layout, mask bitvec.Vec, f int) (int, bool) {
	w := l.Field(f).Width
	n := 0
	for i := 0; i < w; i++ {
		if !mask.FieldBit(l, f, i) {
			break
		}
		n++
	}
	for i := n; i < w; i++ {
		if mask.FieldBit(l, f, i) {
			return 0, false
		}
	}
	return n, true
}

// checkPrefixForm validates that every rule constrains every field by a
// (possibly empty) prefix.
func checkPrefixForm(tbl *flowtable.Table) error {
	l := tbl.Layout()
	for _, r := range tbl.Rules() {
		for f := 0; f < l.NumFields(); f++ {
			if _, ok := prefixLen(l, r.Mask, f); !ok {
				return fmt.Errorf("alt: rule %q field %q is not prefix-form",
					r.Name, l.Field(f).Name)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Linear scan
// ---------------------------------------------------------------------

// Linear is the priority linear-scan reference classifier.
type Linear struct {
	tbl  *flowtable.Table
	cost int
}

// NewLinear wraps a flow table.
func NewLinear(tbl *flowtable.Table) *Linear { return &Linear{tbl: tbl} }

// Name implements Classifier.
func (c *Linear) Name() string { return "linear" }

// Lookup implements Classifier.
func (c *Linear) Lookup(h bitvec.Vec) *flowtable.Rule {
	c.cost = 0
	for _, r := range c.tbl.Rules() {
		c.cost++
		if r.Matches(h) {
			return r
		}
	}
	return nil
}

// Cost implements Classifier.
func (c *Linear) Cost() int { return c.cost }

// ---------------------------------------------------------------------
// Hierarchical tries
// ---------------------------------------------------------------------

// HTrie is a hierarchical ("trie of tries") classifier: a binary trie on
// the first field's prefixes whose nodes hang tries over the second field,
// and so on, with backtracking on lookup [Gupta & McKeown, 2001].
type HTrie struct {
	layout *bitvec.Layout
	root   *hnode
	order  map[*flowtable.Rule]int // match order for tie-breaking
	cost   int
}

type hnode struct {
	children [2]*hnode
	next     *hnode            // trie over the following field
	rules    []*flowtable.Rule // rules terminating here (last field only)
}

// NewHTrie builds the trie; the table must be prefix-form.
func NewHTrie(tbl *flowtable.Table) (*HTrie, error) {
	if err := checkPrefixForm(tbl); err != nil {
		return nil, err
	}
	l := tbl.Layout()
	t := &HTrie{layout: l, root: &hnode{}, order: make(map[*flowtable.Rule]int)}
	for i, r := range tbl.Rules() {
		t.order[r] = i
		t.insert(r)
	}
	return t, nil
}

func (t *HTrie) insert(r *flowtable.Rule) {
	l := t.layout
	node := t.root
	for f := 0; f < l.NumFields(); f++ {
		plen, _ := prefixLen(l, r.Mask, f)
		for b := 0; b < plen; b++ {
			bit := 0
			if r.Key.FieldBit(l, f, b) {
				bit = 1
			}
			if node.children[bit] == nil {
				node.children[bit] = &hnode{}
			}
			node = node.children[bit]
		}
		if f < l.NumFields()-1 {
			if node.next == nil {
				node.next = &hnode{}
			}
			node = node.next
		}
	}
	node.rules = append(node.rules, r)
}

// Name implements Classifier.
func (t *HTrie) Name() string { return "hierarchical-trie" }

// Lookup implements Classifier. It walks the first-field trie along the
// header bits and, at every visited node, backtracks into the next-field
// trie — O(W^d) node visits for d fields of width W, independent of any
// traffic history.
func (t *HTrie) Lookup(h bitvec.Vec) *flowtable.Rule {
	t.cost = 0
	var best *flowtable.Rule
	t.search(t.root, h, 0, &best)
	return best
}

// Cost implements Classifier.
func (t *HTrie) Cost() int { return t.cost }

func (t *HTrie) search(node *hnode, h bitvec.Vec, f int, best **flowtable.Rule) {
	l := t.layout
	w := l.Field(f).Width
	for b := 0; node != nil; b++ {
		t.cost++
		if f == l.NumFields()-1 {
			for _, r := range node.rules {
				t.consider(r, best)
			}
		} else if node.next != nil {
			t.search(node.next, h, f+1, best)
		}
		if b >= w {
			break
		}
		bit := 0
		if h.FieldBit(l, f, b) {
			bit = 1
		}
		node = node.children[bit]
	}
}

func (t *HTrie) consider(r *flowtable.Rule, best **flowtable.Rule) {
	if *best == nil {
		*best = r
		return
	}
	if t.order[r] < t.order[*best] {
		*best = r
	}
}

// ---------------------------------------------------------------------
// HyperCuts-style decision tree
// ---------------------------------------------------------------------

// HyperCuts is a simplified HyperCuts/HiCuts decision tree: internal nodes
// cut one dimension into equal-width intervals; leaves hold at most binth
// rules scanned linearly in match order.
type HyperCuts struct {
	layout *bitvec.Layout
	root   *hcnode
	cost   int
}

type hcnode struct {
	leaf     bool
	rules    []*flowtable.Rule // leaf payload, in match order
	dim      int               // cut dimension (field index)
	lo, hi   uint64            // node's bounds on dim (inclusive)
	children []*hcnode
}

// DefaultBinth is the default leaf size.
const DefaultBinth = 4

// DefaultCuts is the number of intervals per cut (a power of two).
const DefaultCuts = 4

// NewHyperCuts builds the tree; the table must be prefix-form and all
// fields at most 64 bits wide.
func NewHyperCuts(tbl *flowtable.Table, binth int) (*HyperCuts, error) {
	if err := checkPrefixForm(tbl); err != nil {
		return nil, err
	}
	l := tbl.Layout()
	for f := 0; f < l.NumFields(); f++ {
		if l.Field(f).Width > 64 {
			return nil, fmt.Errorf("alt: hypercuts needs fields <= 64 bits, %q has %d",
				l.Field(f).Name, l.Field(f).Width)
		}
	}
	if binth <= 0 {
		binth = DefaultBinth
	}
	hc := &HyperCuts{layout: l}
	bounds := make([][2]uint64, l.NumFields())
	for f := range bounds {
		bounds[f] = [2]uint64{0, maxVal(l.Field(f).Width)}
	}
	hc.root = hc.build(tbl.Rules(), bounds, binth, 0)
	return hc, nil
}

func maxVal(w int) uint64 {
	if w == 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// ruleRange converts a prefix rule field into an inclusive value range.
func ruleRange(l *bitvec.Layout, r *flowtable.Rule, f int) (uint64, uint64) {
	w := l.Field(f).Width
	plen, _ := prefixLen(l, r.Mask, f)
	if plen == 0 {
		return 0, maxVal(w)
	}
	var val uint64
	for i := 0; i < w; i++ {
		val <<= 1
		if i < plen && r.Key.FieldBit(l, f, i) {
			val |= 1
		}
	}
	span := maxVal(w - plen)
	if w-plen == 0 {
		span = 0
	}
	return val, val + span
}

func (hc *HyperCuts) build(rules []*flowtable.Rule, bounds [][2]uint64, binth, depth int) *hcnode {
	node := &hcnode{}
	if len(rules) <= binth || depth > 32 {
		node.leaf = true
		node.rules = rules
		return node
	}
	// Choose the dimension with the most distinct rule ranges within the
	// node's bounds (a standard HyperCuts heuristic).
	l := hc.layout
	bestDim, bestDistinct := -1, 1
	for f := 0; f < l.NumFields(); f++ {
		if bounds[f][0] == bounds[f][1] {
			continue
		}
		distinct := map[[2]uint64]bool{}
		for _, r := range rules {
			lo, hi := ruleRange(l, r, f)
			distinct[[2]uint64{lo, hi}] = true
		}
		if len(distinct) > bestDistinct {
			bestDistinct, bestDim = len(distinct), f
		}
	}
	if bestDim == -1 {
		node.leaf = true
		node.rules = rules
		return node
	}
	lo, hi := bounds[bestDim][0], bounds[bestDim][1]
	span := hi - lo
	step := span/DefaultCuts + 1
	node.dim, node.lo, node.hi = bestDim, lo, hi
	progress := false
	for c := 0; c < DefaultCuts; c++ {
		clo := lo + uint64(c)*step
		if clo > hi {
			break
		}
		chi := clo + step - 1
		if chi > hi || chi < clo /* overflow */ {
			chi = hi
		}
		var sub []*flowtable.Rule
		for _, r := range rules {
			rlo, rhi := ruleRange(l, r, bestDim)
			if rlo <= chi && rhi >= clo {
				sub = append(sub, r)
			}
		}
		if len(sub) < len(rules) {
			progress = true
		}
		cb := make([][2]uint64, len(bounds))
		copy(cb, bounds)
		cb[bestDim] = [2]uint64{clo, chi}
		node.children = append(node.children, hc.build(sub, cb, binth, depth+1))
	}
	if !progress {
		// No child got smaller: cutting this dimension cannot help.
		node.leaf = true
		node.rules = rules
		node.children = nil
	}
	return node
}

// Name implements Classifier.
func (hc *HyperCuts) Name() string { return "hypercuts" }

// Lookup implements Classifier.
func (hc *HyperCuts) Lookup(h bitvec.Vec) *flowtable.Rule {
	hc.cost = 0
	node := hc.root
	for !node.leaf {
		hc.cost++
		v := h.FieldUint64(hc.layout, node.dim)
		span := node.hi - node.lo
		step := span/DefaultCuts + 1
		idx := int((v - node.lo) / step)
		if idx >= len(node.children) {
			idx = len(node.children) - 1
		}
		node = node.children[idx]
	}
	for _, r := range node.rules {
		hc.cost++
		if r.Matches(h) {
			return r
		}
	}
	return nil
}

// Cost implements Classifier.
func (hc *HyperCuts) Cost() int { return hc.cost }
