package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
)

// Hub bundles the three telemetry surfaces a run threads through the
// stack. Any field may be nil: the instrumented paths are nil-safe, so
// a hub with only a journal (the chaos tests) or only a registry (the
// serve endpoint) costs nothing extra.
type Hub struct {
	Reg     *Registry
	Journal *Journal
	Tracer  *Tracer
}

// NewHub builds a hub with a registry sharded for the current
// GOMAXPROCS and a default-capacity journal; attach a Tracer separately
// when spans are wanted (they allocate per sample, so they are opt-in).
func NewHub() *Hub {
	shards := runtime.GOMAXPROCS(0)
	if shards < 4 {
		shards = 4
	}
	h := &Hub{Reg: NewRegistry(shards), Journal: NewJournal(0)}
	up := h.Reg.Gauge("tse_up", "1 while the process is serving telemetry.")
	up.Set(1)
	h.Reg.GaugeFunc("tse_goroutines", "Live goroutines in the process.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	return h
}

// registry / journal unwrap a possibly-nil hub.
func (h *Hub) registry() *Registry {
	if h == nil {
		return nil
	}
	return h.Reg
}

var expvarOnce sync.Once

// Handler builds the exposition mux: Prometheus text format on
// /metrics, the event journal as a timeline on /journal, expvar on
// /debug/vars, and the standard pprof handlers under /debug/pprof/.
func Handler(reg *Registry, j *Journal) http.Handler {
	expvarOnce.Do(func() {
		expvar.Publish("tse_metrics", expvar.Func(func() any {
			if reg == nil {
				return nil
			}
			s := reg.Snapshot()
			m := make(map[string]float64, len(s.Points))
			for _, p := range s.Points {
				if p.Kind != KindHistogram {
					m[p.Name] = p.Value
				}
			}
			return m
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			WritePrometheus(w, reg.Snapshot())
		}
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		RenderTimeline(w, j.Events())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "tse telemetry: /metrics /journal /debug/vars /debug/pprof/")
	})
	return mux
}

// Serve binds addr (":0" picks a free port) and serves the exposition
// mux in a background goroutine. It returns the server and the bound
// address; callers own Shutdown.
func Serve(addr string, h *Hub) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	var j *Journal
	if h != nil {
		j = h.Journal
	}
	srv := &http.Server{Handler: Handler(h.registry(), j)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
