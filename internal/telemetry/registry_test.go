package telemetry

import (
	"sync"
	"testing"
)

// TestCounterSharded: increments land regardless of shard index (masked,
// so out-of-range worker IDs are safe) and Value sums every shard.
func TestCounterSharded(t *testing.T) {
	r := NewRegistry(4)
	c := r.Counter("c", "")
	c.Inc(0)
	c.Add(1, 2)
	c.Add(3, 3)
	c.Inc(7) // masked down into range
	if got := c.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

// TestRegistryIdempotent: same-name registration returns the same
// metric; func-backed metrics swap closures; kind conflicts panic.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry(1)
	a := r.Counter("x", "")
	if b := r.Counter("x", "other help"); b != a {
		t.Fatal("re-registration built a second counter")
	}
	r.GaugeFunc("g", "", func() int64 { return 1 })
	r.GaugeFunc("g", "", func() int64 { return 2 })
	if v := r.Snapshot().Value("g"); v != 2 {
		t.Fatalf("GaugeFunc re-registration kept the old closure: %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestHistogramBuckets: observations land in the first bound >= v, with
// an implicit +Inf overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(2)
	h := r.Histogram("h", "", []int64{0, 1, 4})
	for _, v := range []int64{0, 0, 1, 3, 4, 9} {
		h.Observe(0, v)
	}
	h.Observe(1, 2) // second shard merges into the same snapshot
	p, ok := r.Snapshot().Get("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []uint64{2, 1, 3, 1} // le=0, le=1, le=4, +Inf
	for i, b := range p.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, b, want[i], p.Buckets)
		}
	}
	if p.Count != 7 || p.Sum != 19 {
		t.Fatalf("count=%d sum=%d, want 7/19", p.Count, p.Sum)
	}
}

// TestSnapshotDelta: counters and histograms subtract, gauges pass
// through at their current level.
func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry(1)
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []int64{1})
	c.Add(0, 5)
	g.Set(10)
	h.Observe(0, 1)
	prev := r.Snapshot()
	c.Add(0, 3)
	g.Set(4)
	h.Observe(0, 2)
	d := r.Snapshot().Delta(prev)
	if v := d.Value("c"); v != 3 {
		t.Errorf("counter delta = %v, want 3", v)
	}
	if v := d.Value("g"); v != 4 {
		t.Errorf("gauge in delta = %v, want current level 4", v)
	}
	p, _ := d.Get("h")
	if p.Count != 1 || p.Sum != 2 || p.Buckets[1] != 1 {
		t.Errorf("histogram delta = %+v, want count=1 sum=2 +Inf=1", p)
	}
}

// TestHotPathAllocs is the zero-alloc acceptance assertion: counter,
// gauge, and histogram writes must be free of allocation so attaching a
// registry cannot move the hot-path regression gate.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry(4)
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []int64{0, 1, 2, 4, 8})
	if n := testing.AllocsPerRun(1000, func() { c.Inc(1) }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3, 2) }); n != 0 {
		t.Errorf("Counter.Add allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(2, 3) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op, want 0", n)
	}
}

// TestConcurrentIncrementSnapshot hammers one counter and one histogram
// from parallel writers while a reader snapshots — the -race CI job
// proves the sharded cells and snapshot reads never conflict.
func TestConcurrentIncrementSnapshot(t *testing.T) {
	r := NewRegistry(8)
	c := r.Counter("c", "")
	h := r.Histogram("h", "", []int64{1, 2})
	const writers, perWriter = 8, 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc(shard)
				h.Observe(shard, int64(i%4))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	p, _ := r.Snapshot().Get("h")
	if p.Count != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", p.Count, writers*perWriter)
	}
}
