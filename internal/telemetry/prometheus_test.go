package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact exposition bytes: name-sorted
// families, HELP/TYPE preambles, cumulative le-labelled histogram
// buckets with +Inf, integer-rendered totals. The CI /metrics smoke
// test greps this format, so it is frozen here.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry(2)
	c := r.Counter("tse_upcall_enqueued_total", "Upcalls admitted to a queue.")
	c.Add(0, 41)
	c.Inc(1)
	g := r.Gauge("tse_backlog", "Queued upcalls right now.")
	g.Set(7)
	h := r.Histogram("tse_residence_seconds", "Backlog residence.", []int64{0, 2})
	h.Observe(0, 0)
	h.Observe(0, 1)
	h.Observe(1, 5)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP tse_backlog Queued upcalls right now.
# TYPE tse_backlog gauge
tse_backlog 7
# HELP tse_residence_seconds Backlog residence.
# TYPE tse_residence_seconds histogram
tse_residence_seconds_bucket{le="0"} 1
tse_residence_seconds_bucket{le="2"} 2
tse_residence_seconds_bucket{le="+Inf"} 3
tse_residence_seconds_sum 6
tse_residence_seconds_count 3
# HELP tse_upcall_enqueued_total Upcalls admitted to a queue.
# TYPE tse_upcall_enqueued_total counter
tse_upcall_enqueued_total 42
`
	if b.String() != golden {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
}
