package telemetry

import (
	"strings"
	"testing"
)

// TestJournalOrdering: events come back oldest-first with monotonically
// increasing Seq, and EventsSince slices a later run's events off a
// shared journal.
func TestJournalOrdering(t *testing.T) {
	j := NewJournal(16)
	j.Record(1, EvHandlerPanic, 0, 3)
	j.Record(1, EvHandlerRestart, 0, 0)
	j.Record(4, EvBreakerTrip, 2, 5)
	ev := j.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("Seq not monotonic: %v", ev)
		}
	}
	if ev[0].Kind != EvHandlerPanic || ev[1].Kind != EvHandlerRestart || ev[2].Kind != EvBreakerTrip {
		t.Fatalf("order lost: %v", ev)
	}
	mark := j.Seq()
	j.Record(9, EvBreakerClose, 2, 1)
	since := j.EventsSince(mark)
	if len(since) != 1 || since[0].Kind != EvBreakerClose {
		t.Fatalf("EventsSince(%d) = %v, want just the close", mark, since)
	}
}

// TestJournalWrapAround: the ring keeps the newest cap events, Dropped
// counts evictions, and Seq survives the wrap so ordering stays
// provable.
func TestJournalWrapAround(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(int64(i), EvSweep, -1, int64(i))
	}
	ev := j.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	if ev[0].Tick != 6 || ev[3].Tick != 9 {
		t.Fatalf("wrong window after wrap: %v", ev)
	}
	if ev[0].Seq != 6 {
		t.Fatalf("Seq reset on wrap: %v", ev[0])
	}
	if j.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", j.Dropped())
	}
	if j.Seq() != 10 {
		t.Fatalf("Seq = %d, want 10", j.Seq())
	}
}

// TestJournalNilSafe: a nil journal swallows records and reads — the
// instrumented paths record unconditionally.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(1, EvSweep, -1, 0)
	j.RecordNote(1, EvFaultInjected, 0, 0, "x")
	if j.Events() != nil || j.Seq() != 0 || j.Dropped() != 0 {
		t.Fatal("nil journal not inert")
	}
}

// TestRenderTimeline: tick labels appear once per tick, the rail closes
// on the tick's last event, and notes/values render.
func TestRenderTimeline(t *testing.T) {
	j := NewJournal(8)
	j.Record(23, EvHandlerPanic, 0, 12)
	j.Record(23, EvHandlerRestart, 0, 0)
	j.RecordNote(26, EvFaultInjected, -1, 0, "install-error")
	var b strings.Builder
	RenderTimeline(&b, j.Events())
	out := b.String()
	for _, want := range []string{
		"t=23  ├ handler-panic",
		"└ handler-restart",
		"t=26  └ fault-injected",
		"(install-error)",
		"handler=0 n=12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "t=23") != 1 {
		t.Errorf("tick label repeated:\n%s", out)
	}
	var empty strings.Builder
	RenderTimeline(&empty, nil)
	if !strings.Contains(empty.String(), "(no events)") {
		t.Errorf("empty timeline = %q", empty.String())
	}
}

// TestFilterEvents keeps only requested kinds in order.
func TestFilterEvents(t *testing.T) {
	j := NewJournal(8)
	j.Record(1, EvSweep, -1, 2)
	j.Record(2, EvBreakerTrip, 0, 3)
	j.Record(3, EvSweep, -1, 1)
	got := FilterEvents(j.Events(), EvBreakerTrip)
	if len(got) != 1 || got[0].Tick != 2 {
		t.Fatalf("FilterEvents = %v", got)
	}
}
