package telemetry

import (
	"fmt"
	"io"
	"sync"
)

// EventKind classifies a control-plane journal event.
type EventKind uint8

const (
	// EvHandlerPanic: an upcall handler panicked (actor = handler slot,
	// value = orphaned in-flight items requeued on its behalf).
	EvHandlerPanic EventKind = iota
	// EvHandlerStall: the supervisor (or drive-mode model) detected a
	// wedged handler past its heartbeat deadline (actor = handler slot).
	EvHandlerStall
	// EvHandlerRestart: a handler slot was respawned (actor = slot).
	EvHandlerRestart
	// EvHandlerAbandoned: Stop gave up on a wedged handler (actor = slot).
	EvHandlerAbandoned
	// EvOrphanRequeue: a dead handler's in-flight items went back to the
	// head of their queues (actor = handler slot, value = item count).
	EvOrphanRequeue
	// EvPendingReaped: the pending-table reaper expired stuck dedup
	// entries (value = entries reaped).
	EvPendingReaped
	// EvBreakerTrip: a source's SLO breaker opened (actor = port,
	// value = the violating residence p99 in virtual seconds).
	EvBreakerTrip
	// EvBreakerHalfOpen: cooldown elapsed, probe trickle admitted
	// (actor = port).
	EvBreakerHalfOpen
	// EvBreakerClose: probes met the SLO, admission restored
	// (actor = port, value = the passing p99).
	EvBreakerClose
	// EvQuotaRetune: the adaptive controller moved a port's admission
	// quota (actor = port, value = the new quota).
	EvQuotaRetune
	// EvSweep: a revalidator sweep deleted megaflows (value = expired +
	// invalidated).
	EvSweep
	// EvSweepStall: an injected revalidator wedge skipped a due sweep.
	EvSweepStall
	// EvInstallError: megaflow installs failed this interval
	// (value = failure count).
	EvInstallError
	// EvACLSwap: the control plane swapped the ACL table mid-run
	// (actor = port the phase targets, -1 for all).
	EvACLSwap
	// EvDeliveryFault: injected delivery faults (delays/duplicates)
	// touched submissions this interval (value = count).
	EvDeliveryFault
	// EvFaultInjected: a scheduled fault from internal/faults fired
	// (note names the fault kind, actor = its target).
	EvFaultInjected
	// EvNodeSuspect: the fleet failure detector saw a node miss enough
	// consecutive heartbeats to suspect it (actor = node, value = missed
	// heartbeats). No failover yet — a short partition heals from here.
	EvNodeSuspect
	// EvNodeDead: the failure detector declared a node dead (actor =
	// node, value = missed heartbeats); tenant failover follows.
	EvNodeDead
	// EvNodeRejoin: a suspected node answered heartbeats again (actor =
	// node, value = the ACL generations it fell behind while unreachable).
	EvNodeRejoin
	// EvNodeStale: a node is serving on an old ACL generation (actor =
	// node, value = generations behind) — graceful degradation, reported
	// once per widening of the gap instead of stalling the dataplane.
	EvNodeStale
	// EvTenantFailover: the scheduler re-placed a dead node's tenant
	// (actor = destination node, note names the tenant and origin).
	EvTenantFailover
	// EvACLPush: the fleet controller applied an ACL generation on a node
	// (actor = node, value = generation).
	EvACLPush
	// EvACLPushRetry: a push attempt failed (partition or push fault) and
	// was rescheduled with backoff (actor = node, value = attempt count).
	EvACLPushRetry
	// EvACLConverged: every live node reached the target ACL generation
	// (value = generation).
	EvACLConverged
)

// String names the kind for timelines.
func (k EventKind) String() string {
	switch k {
	case EvHandlerPanic:
		return "handler-panic"
	case EvHandlerStall:
		return "handler-stall"
	case EvHandlerRestart:
		return "handler-restart"
	case EvHandlerAbandoned:
		return "handler-abandoned"
	case EvOrphanRequeue:
		return "orphan-requeue"
	case EvPendingReaped:
		return "pending-reaped"
	case EvBreakerTrip:
		return "breaker-trip"
	case EvBreakerHalfOpen:
		return "breaker-half-open"
	case EvBreakerClose:
		return "breaker-close"
	case EvQuotaRetune:
		return "quota-retune"
	case EvSweep:
		return "revalidator-sweep"
	case EvSweepStall:
		return "sweep-stall"
	case EvInstallError:
		return "install-error"
	case EvACLSwap:
		return "acl-swap"
	case EvDeliveryFault:
		return "delivery-fault"
	case EvFaultInjected:
		return "fault-injected"
	case EvNodeSuspect:
		return "node-suspect"
	case EvNodeDead:
		return "node-dead"
	case EvNodeRejoin:
		return "node-rejoin"
	case EvNodeStale:
		return "node-stale"
	case EvTenantFailover:
		return "tenant-failover"
	case EvACLPush:
		return "acl-push"
	case EvACLPushRetry:
		return "acl-push-retry"
	case EvACLConverged:
		return "acl-converged"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// actorNoun names what Actor indexes for a kind ("" when Actor is
// meaningless and -1).
func (k EventKind) actorNoun() string {
	switch k {
	case EvHandlerPanic, EvHandlerStall, EvHandlerRestart, EvHandlerAbandoned, EvOrphanRequeue:
		return "handler"
	case EvBreakerTrip, EvBreakerHalfOpen, EvBreakerClose, EvQuotaRetune, EvACLSwap:
		return "port"
	case EvNodeSuspect, EvNodeDead, EvNodeRejoin, EvNodeStale, EvTenantFailover,
		EvACLPush, EvACLPushRetry:
		return "node"
	default:
		return ""
	}
}

// Event is one tick-stamped control-plane occurrence. Seq is the global
// record index (survives ring wrap-around, so ordering is provable even
// after old events are evicted).
type Event struct {
	Seq   uint64
	Tick  int64
	Kind  EventKind
	Actor int
	Value int64
	Note  string
}

// String renders one timeline line: "t=23  handler-panic      handler=0 n=5".
func (e Event) String() string {
	return fmt.Sprintf("t=%-4d %s", e.Tick, e.body())
}

// body is the line sans tick column, shared with RenderTimeline.
func (e Event) body() string {
	s := fmt.Sprintf("%-18s", e.Kind.String())
	if noun := e.Kind.actorNoun(); noun != "" && e.Actor >= 0 {
		s += fmt.Sprintf(" %s=%d", noun, e.Actor)
	}
	if e.Value != 0 {
		switch e.Kind {
		case EvBreakerTrip, EvBreakerClose:
			s += fmt.Sprintf(" p99=%ds", e.Value)
		case EvQuotaRetune:
			s += fmt.Sprintf(" quota=%d", e.Value)
		case EvACLPush, EvACLConverged:
			s += fmt.Sprintf(" gen=%d", e.Value)
		case EvNodeSuspect, EvNodeDead:
			s += fmt.Sprintf(" missed=%d", e.Value)
		case EvNodeStale, EvNodeRejoin:
			s += fmt.Sprintf(" behind=%d", e.Value)
		case EvACLPushRetry:
			s += fmt.Sprintf(" attempt=%d", e.Value)
		default:
			s += fmt.Sprintf(" n=%d", e.Value)
		}
	}
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// Journal is a fixed-capacity ring buffer of control-plane events. All
// methods are nil-receiver-safe (the faults.Plan discipline), so
// instrumented code records unconditionally and un-instrumented runs pay
// one nil check.
type Journal struct {
	mu  sync.Mutex
	buf []Event
	seq uint64 // total events ever recorded
}

// DefaultJournalCap bounds the ring when NewJournal is given <= 0.
const DefaultJournalCap = 1024

// NewJournal builds a ring holding the last capacity events.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, 0, capacity)}
}

// Record appends an event; the oldest event is evicted once the ring is
// full. Safe on a nil journal.
func (j *Journal) Record(tick int64, kind EventKind, actor int, value int64) {
	j.RecordNote(tick, kind, actor, value, "")
}

// RecordNote is Record with a free-form annotation (fault kind names,
// ACL table tags). Control-plane events are rare, so the string is
// affordable.
func (j *Journal) RecordNote(tick int64, kind EventKind, actor int, value int64, note string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	e := Event{Seq: j.seq, Tick: tick, Kind: kind, Actor: actor, Value: value, Note: note}
	j.seq++
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, e)
		return
	}
	copy(j.buf, j.buf[1:])
	j.buf[len(j.buf)-1] = e
}

// Seq reports the total number of events ever recorded (the next
// event's Seq). Safe on a nil journal.
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Dropped reports how many events the ring has evicted.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq - uint64(len(j.buf))
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event { return j.EventsSince(0) }

// EventsSince returns retained events with Seq >= since, oldest first.
// Experiments mark the journal's Seq before a run and slice their own
// events out afterwards, so several runs can share one live journal.
func (j *Journal) EventsSince(since uint64) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	start := 0
	for start < len(j.buf) && j.buf[start].Seq < since {
		start++
	}
	return append([]Event(nil), j.buf[start:]...)
}

// FilterEvents keeps only events of the given kinds, preserving order.
func FilterEvents(events []Event, kinds ...EventKind) []Event {
	keep := make(map[EventKind]bool, len(kinds))
	for _, k := range kinds {
		keep[k] = true
	}
	var out []Event
	for _, e := range events {
		if keep[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// RenderTimeline prints events as a causal ASCII timeline: one line per
// event, a tick label on the first event of each tick, a vertical rail
// tying same-tick events together.
//
//	t=23  ├ handler-panic      handler=0 n=12
//	      ├ orphan-requeue     handler=0 n=12
//	      └ handler-restart    handler=0
func RenderTimeline(w io.Writer, events []Event) {
	for i, e := range events {
		label := "     "
		if i == 0 || events[i-1].Tick != e.Tick {
			label = fmt.Sprintf("t=%-3d", e.Tick)
		}
		rail := "├"
		if i == len(events)-1 || events[i+1].Tick != e.Tick {
			rail = "└"
		}
		fmt.Fprintf(w, "  %s %s %s\n", label, rail, e.body())
	}
	if len(events) == 0 {
		fmt.Fprintln(w, "  (no events)")
	}
}
