package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestTracerSampling: 1/N sampling admits every Nth offer, honors the
// span cap, and is inert on a nil tracer.
func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4, 3)
	var sampled int
	for i := 0; i < 16; i++ {
		if sp := tr.Sample(1); sp != nil {
			sampled++
			if sp.Enqueue != -1 || sp.Pop != -1 {
				t.Fatalf("fresh span not blank: %+v", sp)
			}
		}
	}
	if sampled != 3 { // 16/4 = 4 hits, capped at 3
		t.Fatalf("sampled %d spans, want cap of 3", sampled)
	}
	if tr.Seen() != 16 {
		t.Fatalf("Seen = %d, want 16", tr.Seen())
	}
	var nilTr *Tracer
	if nilTr.Sample(0) != nil || nilTr.Spans() != nil || nilTr.Seen() != 0 {
		t.Fatal("nil tracer not inert")
	}
}

// TestWriteChromeTrace: the export is valid Trace Event Format — a
// traceEvents array of "X" slices with µs timestamps — and spans that
// never reached a handler are skipped.
func TestWriteChromeTrace(t *testing.T) {
	done := &Span{ID: 1, Port: 2, Enqueue: 5, Admit: 5, Pop: 7, Install: 7, Publish: 7}
	shed := &Span{ID: 2, Port: 0, Enqueue: -1, Admit: -1, Pop: -1, Install: -1, Publish: -1}
	var b strings.Builder
	if err := WriteChromeTrace(&b, []*Span{done, shed}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want queued+service for the completed span: %s", len(doc.TraceEvents), b.String())
	}
	q := doc.TraceEvents[0]
	if q.Name != "queued" || q.Ph != "X" || q.TS != 5*tickUS || q.Dur != 2*tickUS || q.PID != 2 {
		t.Errorf("queued slice wrong: %+v", q)
	}
	s := doc.TraceEvents[1]
	if s.Name != "service" || s.Dur == 0 {
		t.Errorf("service slice wrong: %+v", s)
	}
}

// TestServeEndpoint spins the real exposition server on a free port and
// checks all three surfaces answer: Prometheus text on /metrics, expvar
// JSON on /debug/vars, the pprof index, and the journal timeline.
func TestServeEndpoint(t *testing.T) {
	hub := NewHub()
	hub.Reg.Counter("tse_upcall_enqueued_total", "x").Add(0, 9)
	hub.Journal.Record(3, EvBreakerTrip, 1, 4)
	srv, addr, err := Serve("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if m := get("/metrics"); !strings.Contains(m, "tse_up 1") || !strings.Contains(m, "tse_upcall_enqueued_total 9") {
		t.Errorf("/metrics missing counters:\n%s", m)
	}
	if v := get("/debug/vars"); !strings.Contains(v, "tse_metrics") {
		t.Errorf("/debug/vars missing tse_metrics:\n%s", v)
	}
	if p := get("/debug/pprof/"); !strings.Contains(p, "goroutine") {
		t.Errorf("pprof index looks wrong:\n%s", p)
	}
	if j := get("/journal"); !strings.Contains(j, "breaker-trip") {
		t.Errorf("/journal missing event:\n%s", j)
	}
}
