package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Span is one sampled upcall's flow-setup lifecycle in virtual-second
// ticks, extending the PR 6 enqueue stamp to the full chain:
//
//	enqueue → admit → pop → install → publish
//
// Enqueue is when the miss was offered to the subsystem; Admit is when
// it actually joined its queue (later than Enqueue only under injected
// delivery delay); Pop is when a handler took it; Install and Publish
// are when its burst's megaflows were written and the COW snapshot went
// live (one publish per burst, so they coincide at burst granularity).
// A stamp of -1 means the stage was never reached (shed, coalesced
// away, or dropped).
type Span struct {
	ID      uint64
	Port    int
	Enqueue int64
	Admit   int64
	Pop     int64
	Install int64
	Publish int64
}

// Tracer samples every Nth admitted upcall into a bounded span table.
// All methods are nil-receiver-safe so the instrumented path costs one
// nil check when tracing is off.
type Tracer struct {
	every uint64
	max   int
	n     atomic.Uint64
	mu    sync.Mutex
	spans []*Span
}

// NewTracer samples one of every `every` admissions, retaining at most
// max spans (first-come: once full, later samples are dropped — the
// interesting window in this repo's scenarios is the flood onset).
func NewTracer(every, max int) *Tracer {
	if every <= 0 {
		every = 1
	}
	if max <= 0 {
		max = 4096
	}
	return &Tracer{every: uint64(every), max: max}
}

// Sample decides whether this admission is traced. It returns a span
// with all stamps -1 (caller fills them in) or nil when unsampled.
func (t *Tracer) Sample(port int) *Span {
	if t == nil {
		return nil
	}
	n := t.n.Add(1)
	if (n-1)%t.every != 0 {
		return nil
	}
	sp := &Span{ID: n - 1, Port: port, Enqueue: -1, Admit: -1, Pop: -1, Install: -1, Publish: -1}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		return nil
	}
	t.spans = append(t.spans, sp)
	return sp
}

// Spans returns the sampled spans in admission order.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// Seen reports how many admissions passed through the sampler.
func (t *Tracer) Seen() uint64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// chrome://tracing JSON ("Trace Event Format"): complete events
// (ph "X") with microsecond timestamps. One virtual second maps to 1ms
// of trace time so the viewer's zoom levels behave.
const tickUS = 1000

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]int `json:"args,omitempty"`
}

// WriteChromeTrace emits spans in the Trace Event Format consumed by
// chrome://tracing and Perfetto: per span a "queued" slice
// (enqueue→pop) and a "service" slice (pop→publish), grouped by ingress
// port (pid) with one lane per span (tid).
func WriteChromeTrace(w io.Writer, spans []*Span) error {
	events := make([]traceEvent, 0, 2*len(spans))
	for _, sp := range spans {
		if sp.Enqueue < 0 {
			continue
		}
		args := map[string]int{
			"enqueue_tick": int(sp.Enqueue), "admit_tick": int(sp.Admit),
			"pop_tick": int(sp.Pop), "install_tick": int(sp.Install), "publish_tick": int(sp.Publish),
		}
		if sp.Pop >= 0 {
			events = append(events, traceEvent{
				Name: "queued", Ph: "X",
				TS: sp.Enqueue * tickUS, Dur: (sp.Pop - sp.Enqueue) * tickUS,
				PID: sp.Port, TID: sp.ID, Args: args,
			})
		}
		if sp.Pop >= 0 && sp.Publish >= sp.Pop {
			// Zero-duration service (handled within the tick) still gets a
			// sliver so the slice is visible.
			dur := (sp.Publish - sp.Pop) * tickUS
			if dur == 0 {
				dur = tickUS / 10
			}
			events = append(events, traceEvent{
				Name: "service", Ph: "X",
				TS: sp.Pop * tickUS, Dur: dur,
				PID: sp.Port, TID: sp.ID, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}

// WriteChromeTraceFile writes spans to path.
func WriteChromeTraceFile(path string, spans []*Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
