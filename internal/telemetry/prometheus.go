package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE preamble per family, cumulative
// le-labelled buckets for histograms. Snapshots are name-sorted, so the
// output is deterministic — the golden test relies on that.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, p := range s.Points {
		if p.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, p.Help); err != nil {
				return err
			}
		}
		var err error
		switch p.Kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", p.Name, p.Name, formatFloat(p.Value))
		case KindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", p.Name, p.Name, formatFloat(p.Value))
		case KindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", p.Name); err != nil {
				return err
			}
			var cum uint64
			for i, b := range p.Buckets {
				cum += b
				le := "+Inf"
				if i < len(p.Bounds) {
					le = strconv.FormatInt(p.Bounds[i], 10)
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", p.Name, le, cum); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", p.Name, p.Sum, p.Name, p.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders whole numbers without an exponent or trailing
// zeros ("42", not "4.2e+01"), which is what the text format wants for
// counter totals.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
