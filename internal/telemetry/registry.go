// Package telemetry is the unified observability layer: a sharded
// metrics registry (counters/gauges/fixed-bucket histograms with
// cache-line-padded per-worker cells and zero-alloc hot-path
// increments), a fixed-capacity control-plane event journal, 1/N-sampled
// flow-setup trace spans, and a live exposition endpoint (Prometheus
// text format, expvar, pprof).
//
// The design splits metrics into two camps, mirroring OVS's
// coverage-counter vs. appctl-query split:
//
//   - push metrics (Counter.Add / Histogram.Observe) for paths the
//     producer already serializes (the upcall subsystem under its mutex,
//     datapath workers on their own shard index): one relaxed atomic add
//     on a private cache line, no allocation, no map lookup;
//   - pull metrics (CounterFunc / GaugeFunc) for values a subsystem
//     already maintains behind its own synchronization (switch counters,
//     classifier mask counts): the closure is evaluated only at snapshot
//     time, so the hot path is untouched.
//
// Snapshots are point-in-time, name-sorted, and support Delta() so the
// same registry serves both monotonic /metrics exposition and the
// per-interval series the experiment folds consume.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric types in a Snapshot.
type Kind uint8

const (
	// KindCounter is a monotonically increasing total.
	KindCounter Kind = iota
	// KindGauge is an instantaneous level.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// padCell is one shard's counter cell, padded out to a cache line so
// adjacent shards never false-share (the tss stat-shard discipline).
type padCell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonic total, sharded per worker. Writers pass their
// shard index (worker ID); single-writer callers use shard 0. When fn is
// set the counter is pull-model: Value defers to the closure and the
// cells are unused.
type Counter struct {
	name, help string
	cells      []padCell
	mask       int
	fn         func() uint64
}

// Add increments the counter by n on the caller's shard. Zero-alloc,
// one atomic add on a private cache line.
func (c *Counter) Add(shard int, n uint64) { c.cells[shard&c.mask].n.Add(n) }

// Inc increments the counter by one on the caller's shard.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value sums the shards (or calls the pull closure).
func (c *Counter) Value() uint64 {
	if c.fn != nil {
		return c.fn()
	}
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Name reports the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous level with atomic Set/Add. When fn is set
// the gauge is pull-model and Set/Add are ignored by Value.
type Gauge struct {
	name, help string
	v          atomic.Int64
	fn         func() int64
}

// Set stores the gauge level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge level by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the gauge level (or calls the pull closure).
func (g *Gauge) Value() int64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

// histShard is one shard of a histogram: count/sum on a padded line plus
// a per-bound bucket array private to the shard.
type histShard struct {
	count   atomic.Uint64
	sum     atomic.Int64
	_       [48]byte
	buckets []atomic.Uint64
}

// Histogram is a fixed-bucket distribution over int64 observations
// (virtual-second ticks in this repo). Bounds are inclusive upper
// bounds; one implicit +Inf bucket catches the rest.
type Histogram struct {
	name, help string
	bounds     []int64
	shards     []histShard
	mask       int
}

// Observe records one observation on the caller's shard: a linear scan
// over the (few) bounds and three atomic adds, no allocation.
func (h *Histogram) Observe(shard int, v int64) {
	s := &h.shards[shard&h.mask]
	s.count.Add(1)
	s.sum.Add(v)
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	s.buckets[i].Add(1)
}

// metric is one registered name: exactly one of c/g/h is non-nil.
type metric struct {
	c *Counter
	g *Gauge
	h *Histogram
}

func (m metric) name() string {
	switch {
	case m.c != nil:
		return m.c.name
	case m.g != nil:
		return m.g.name
	default:
		return m.h.name
	}
}

// Registry owns the named metrics. Registration is idempotent by name
// (a second request for an existing name returns the existing metric,
// so scenario re-runs behind a live -serve endpoint keep accumulating
// into the same counters); func-backed metrics swap in the newest
// closure instead, so pull collectors always read the current run's
// objects. Kind mismatches panic: they are programmer errors.
type Registry struct {
	shards int // power of two
	mu     sync.Mutex
	byName map[string]metric
	order  []metric
}

// NewRegistry builds a registry whose push metrics carry the given
// number of shards, rounded up to a power of two (shard indexes are
// masked, so any worker ID is safe regardless of the configured count).
func NewRegistry(shards int) *Registry {
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Registry{shards: n, byName: make(map[string]metric)}
}

func (r *Registry) lookup(name string, want Kind) (metric, bool) {
	m, ok := r.byName[name]
	if !ok {
		return metric{}, false
	}
	got := KindHistogram
	if m.c != nil {
		got = KindCounter
	} else if m.g != nil {
		got = KindGauge
	}
	if got != want {
		panic("telemetry: metric " + name + " re-registered with a different kind")
	}
	return m, true
}

func (r *Registry) add(m metric) {
	r.byName[m.name()] = m
	r.order = append(r.order, m)
}

// Counter registers (or returns) a sharded push counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, KindCounter); ok {
		return m.c
	}
	c := &Counter{name: name, help: help, cells: make([]padCell, r.shards), mask: r.shards - 1}
	r.add(metric{c: c})
	return c
}

// CounterFunc registers a pull counter whose value is read from fn at
// snapshot time. Re-registering replaces the closure, so each scenario
// run re-points the collector at its live objects.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, KindCounter); ok {
		m.c.fn = fn
		return
	}
	r.add(metric{c: &Counter{name: name, help: help, fn: fn}})
}

// Gauge registers (or returns) a push gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, KindGauge); ok {
		return m.g
	}
	g := &Gauge{name: name, help: help}
	r.add(metric{g: g})
	return g
}

// GaugeFunc registers a pull gauge; re-registering replaces the closure.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, KindGauge); ok {
		m.g.fn = fn
		return
	}
	r.add(metric{g: &Gauge{name: name, help: help, fn: fn}})
}

// Histogram registers (or returns) a sharded fixed-bucket histogram.
// bounds are inclusive upper bounds in ascending order; an implicit
// +Inf bucket is appended.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, KindHistogram); ok {
		return m.h
	}
	h := &Histogram{name: name, help: help, bounds: append([]int64(nil), bounds...), mask: r.shards - 1}
	h.shards = make([]histShard, r.shards)
	for i := range h.shards {
		h.shards[i].buckets = make([]atomic.Uint64, len(bounds)+1)
	}
	r.add(metric{h: h})
	return h
}

// Point is one metric's value inside a Snapshot.
type Point struct {
	Name string
	Help string
	Kind Kind
	// Value carries counter totals and gauge levels.
	Value float64
	// Histogram payload: per-bound counts (one extra for +Inf), total
	// count and sum.
	Bounds  []int64
	Buckets []uint64
	Count   uint64
	Sum     int64
}

// Snapshot is a point-in-time, name-sorted read of every registered
// metric.
type Snapshot struct {
	Points []Point
}

// Snapshot reads every metric. Pull closures run here, never on the
// hot path.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := append([]metric(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name() < metrics[j].name() })
	s := Snapshot{Points: make([]Point, 0, len(metrics))}
	for _, m := range metrics {
		switch {
		case m.c != nil:
			s.Points = append(s.Points, Point{Name: m.c.name, Help: m.c.help, Kind: KindCounter, Value: float64(m.c.Value())})
		case m.g != nil:
			s.Points = append(s.Points, Point{Name: m.g.name, Help: m.g.help, Kind: KindGauge, Value: float64(m.g.Value())})
		case m.h != nil:
			p := Point{Name: m.h.name, Help: m.h.help, Kind: KindHistogram,
				Bounds: m.h.bounds, Buckets: make([]uint64, len(m.h.bounds)+1)}
			for i := range m.h.shards {
				sh := &m.h.shards[i]
				p.Count += sh.count.Load()
				p.Sum += sh.sum.Load()
				for b := range sh.buckets {
					p.Buckets[b] += sh.buckets[b].Load()
				}
			}
			s.Points = append(s.Points, p)
		}
	}
	return s
}

// Get finds a point by name (snapshots are sorted, so binary search).
func (s Snapshot) Get(name string) (Point, bool) {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].Name >= name })
	if i < len(s.Points) && s.Points[i].Name == name {
		return s.Points[i], true
	}
	return Point{}, false
}

// Value reads a counter/gauge by name, 0 when absent.
func (s Snapshot) Value(name string) float64 {
	p, _ := s.Get(name)
	return p.Value
}

// Delta subtracts prev from s: counters and histograms become
// per-interval increments (names missing from prev pass through);
// gauges keep their current level. The result is what the per-second
// experiment series consume.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{Points: make([]Point, 0, len(s.Points))}
	for _, p := range s.Points {
		q, ok := prev.Get(p.Name)
		if ok && q.Kind == p.Kind {
			switch p.Kind {
			case KindCounter:
				p.Value -= q.Value
			case KindHistogram:
				b := make([]uint64, len(p.Buckets))
				for i := range p.Buckets {
					b[i] = p.Buckets[i]
					if i < len(q.Buckets) {
						b[i] -= q.Buckets[i]
					}
				}
				p.Buckets = b
				p.Count -= q.Count
				p.Sum -= q.Sum
			}
		}
		out.Points = append(out.Points, p)
	}
	return out
}
